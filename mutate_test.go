package wikisearch

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"wikisearch/internal/graph"
)

var mutWords = []string{"database", "graph", "keyword", "search", "engine",
	"parallel", "wiki", "knowledge", "system", "query", "steiner", "central"}

var mutRels = []string{"next", "linked to", "part of", "instance of", "near"}

// mutModel is the reference final state a mutation stream should produce:
// replaying it through a fresh Builder gives the graph the mutated engine
// must be answer-identical to.
type mutModel struct {
	labels, descs []string
	edges         []mutEdge
}

type mutEdge struct {
	from, to NodeID
	rel      string
}

func (m *mutModel) build(t *testing.T, relOrder []string) *Graph {
	t.Helper()
	b := NewBuilder()
	// Pre-intern relations in the mutated graph's order: adjacency lists
	// sort by (endpoint, RelID), so matching ids is part of bit-identity.
	for _, r := range relOrder {
		b.Rel(r)
	}
	for i := range m.labels {
		b.AddNode(m.labels[i], m.descs[i])
	}
	for _, e := range m.edges {
		b.AddEdgeNamed(e.from, e.to, e.rel)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mutText(rng *rand.Rand) string {
	n := 1 + rng.Intn(3)
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += mutWords[rng.Intn(len(mutWords))]
	}
	return s
}

// randomMutBase builds a random connected-ish base graph and its model.
func randomMutBase(t *testing.T, rng *rand.Rand) (*Graph, *mutModel) {
	t.Helper()
	n := 20 + rng.Intn(20)
	mo := &mutModel{}
	b := NewBuilder()
	for _, r := range mutRels {
		b.Rel(r)
	}
	for i := 0; i < n; i++ {
		l, d := mutText(rng), mutText(rng)
		mo.labels = append(mo.labels, l)
		mo.descs = append(mo.descs, d)
		b.AddNode(l, d)
	}
	for i := 0; i < 3*n; i++ {
		e := mutEdge{NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), mutRels[rng.Intn(len(mutRels))]}
		mo.edges = append(mo.edges, e)
		b.AddEdgeNamed(e.from, e.to, e.rel)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, mo
}

// applyRandomOps drives one random mutation against both the mutator and
// the reference model.
func applyRandomOp(t *testing.T, rng *rand.Rand, m *Mutator, mo *mutModel) {
	t.Helper()
	switch op := rng.Intn(10); {
	case op < 2: // add node
		l, d := mutText(rng), mutText(rng)
		v, err := m.AddNode(l, d)
		if err != nil {
			t.Fatal(err)
		}
		if int(v) != len(mo.labels) {
			t.Fatalf("AddNode id %d, want %d", v, len(mo.labels))
		}
		mo.labels = append(mo.labels, l)
		mo.descs = append(mo.descs, d)
	case op < 6: // add edge
		e := mutEdge{NodeID(rng.Intn(len(mo.labels))), NodeID(rng.Intn(len(mo.labels))), mutRels[rng.Intn(len(mutRels))]}
		if err := m.AddEdge(e.from, e.to, e.rel); err != nil {
			t.Fatal(err)
		}
		mo.edges = append(mo.edges, e)
	case op < 8: // remove a random existing edge
		if len(mo.edges) == 0 {
			return
		}
		i := rng.Intn(len(mo.edges))
		e := mo.edges[i]
		if err := m.RemoveEdge(e.from, e.to, e.rel); err != nil {
			t.Fatal(err)
		}
		mo.edges = append(mo.edges[:i], mo.edges[i+1:]...)
	default: // retext
		v := NodeID(rng.Intn(len(mo.labels)))
		l, d := mutText(rng), mutText(rng)
		if err := m.SetKeywords(v, l, d); err != nil {
			t.Fatal(err)
		}
		mo.labels[v], mo.descs[v] = l, d
	}
}

func mutQueries(rng *rand.Rand) []string {
	qs := make([]string, 4)
	for i := range qs {
		a, b := rng.Intn(len(mutWords)), rng.Intn(len(mutWords))
		for b == a {
			b = rng.Intn(len(mutWords))
		}
		qs[i] = mutWords[a] + " " + mutWords[b]
	}
	return qs
}

// TestMutateCompactEquivalence is the PR's core acceptance suite: an engine
// that absorbed N random mutations and compacted is answer-identical — bit
// for bit, including scores and weights — to a fresh engine built from the
// final graph, at Tnum=1 and at GOMAXPROCS.
func TestMutateCompactEquivalence(t *testing.T) {
	const pinnedA = 3.5 // both engines skip distance sampling
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			base, mo := randomMutBase(t, rng)
			eng, err := NewEngine(base, EngineOptions{Threads: 2, AvgDistance: pinnedA})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			m, err := eng.NewMutator(MutatorOptions{CompactAfterOps: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()

			ops := 40 + rng.Intn(40)
			for i := 0; i < ops; i++ {
				applyRandomOp(t, rng, m, mo)
				if rng.Intn(16) == 0 { // interleave publishes: chained overlays
					if _, err := m.Publish(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if _, err := m.Publish(); err != nil {
				t.Fatal(err)
			}
			info, err := m.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if !info.Compacted {
				t.Fatal("Compact did not report a compacted snapshot")
			}
			if eng.Graph().HasOverlay() {
				t.Fatal("overlay survived compaction")
			}
			if st := eng.EpochStats(); st.DeltaNodes != 0 || st.DeltaEdges != 0 || st.DeltaTerms != 0 {
				t.Fatalf("delta gauges nonzero after compaction: %+v", st)
			}

			relOrder := make([]string, eng.Graph().NumRels())
			for r := range relOrder {
				relOrder[r] = eng.Graph().RelName(graph.RelID(r))
			}
			fresh, err := NewEngine(mo.build(t, relOrder), EngineOptions{Threads: 2, AvgDistance: pinnedA})
			if err != nil {
				t.Fatal(err)
			}
			defer fresh.Close()

			if got, want := eng.Graph().NumNodes(), fresh.Graph().NumNodes(); got != want {
				t.Fatalf("node count %d, want %d", got, want)
			}
			if got, want := eng.Graph().NumEdges(), fresh.Graph().NumEdges(); got != want {
				t.Fatalf("edge count %d, want %d", got, want)
			}
			if !reflect.DeepEqual(eng.Weights(), fresh.Weights()) {
				t.Fatal("weights not bit-identical after compaction")
			}

			for _, threads := range []int{1, runtime.GOMAXPROCS(0)} {
				for _, text := range mutQueries(rng) {
					q := Query{Text: text, TopK: 5, Threads: threads}
					a, errA := eng.Search(context.Background(), q)
					b, errB := fresh.Search(context.Background(), q)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("q=%q threads=%d: err %v vs %v", text, threads, errA, errB)
					}
					if errA != nil {
						continue // both reject (e.g. no keyword hit)
					}
					label := fmt.Sprintf("q=%q threads=%d", text, threads)
					if !reflect.DeepEqual(a.Terms, b.Terms) {
						t.Fatalf("%s: terms %v vs %v", label, a.Terms, b.Terms)
					}
					if a.Depth != b.Depth || a.Candidates != b.Candidates {
						t.Fatalf("%s: depth/candidates %d/%d vs %d/%d", label, a.Depth, a.Candidates, b.Depth, b.Candidates)
					}
					if !reflect.DeepEqual(a.Answers, b.Answers) {
						t.Fatalf("%s: answers differ:\n%+v\n%+v", label, a.Answers, b.Answers)
					}
				}
			}
		})
	}
}

// TestMutatePublishedViewEquivalence checks the overlay path itself (before
// any compaction): a published but unmerged delta answers identically to a
// fresh engine on the same logical graph.
func TestMutatePublishedViewEquivalence(t *testing.T) {
	const pinnedA = 3.5
	rng := rand.New(rand.NewSource(99))
	base, mo := randomMutBase(t, rng)
	eng, err := NewEngine(base, EngineOptions{Threads: 2, AvgDistance: pinnedA})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	m, err := eng.NewMutator(MutatorOptions{CompactAfterOps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 30; i++ {
		applyRandomOp(t, rng, m, mo)
	}
	if _, err := m.Publish(); err != nil {
		t.Fatal(err)
	}
	if !eng.Graph().HasOverlay() {
		t.Fatal("expected an overlay view before compaction")
	}

	relOrder := make([]string, eng.Graph().NumRels())
	for r := range relOrder {
		relOrder[r] = eng.Graph().RelName(graph.RelID(r))
	}
	fresh, err := NewEngine(mo.build(t, relOrder), EngineOptions{Threads: 2, AvgDistance: pinnedA})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	for _, text := range mutQueries(rng) {
		q := Query{Text: text, TopK: 5, Threads: 2}
		a, errA := eng.Search(context.Background(), q)
		b, errB := fresh.Search(context.Background(), q)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("q=%q: err %v vs %v", text, errA, errB)
		}
		if errA == nil && !reflect.DeepEqual(a.Answers, b.Answers) {
			t.Fatalf("q=%q: overlay view answers differ from fresh build", text)
		}
	}
}

// TestMutateVisibility: mutations are invisible until Publish, then visible.
func TestMutateVisibility(t *testing.T) {
	eng := newTestEngine(t)
	defer eng.Close()
	m, err := eng.NewMutator(MutatorOptions{CompactAfterOps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if n := eng.KeywordFrequency("zebra"); n != 0 {
		t.Fatalf("zebra already indexed: %d", n)
	}
	v, err := m.AddNode("Zebra", "striped query animal")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddEdge(v, 0, "instance of"); err != nil {
		t.Fatal(err)
	}
	if n := eng.KeywordFrequency("zebra"); n != 0 {
		t.Fatalf("unpublished mutation visible: %d", n)
	}
	epoch0 := eng.Epoch()
	info, err := m.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != epoch0+1 {
		t.Fatalf("epoch %d after publish, want %d", info.Epoch, epoch0+1)
	}
	if n := eng.KeywordFrequency("zebra"); n != 1 {
		t.Fatalf("published node not indexed: %d", n)
	}
	res, err := eng.Search(context.Background(), Query{Text: "zebra sql", TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Answers {
		for _, n := range a.Nodes {
			if n.ID == v {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("added node unreachable through search")
	}
}

// TestMutateReweight: an operator override survives publish and compaction.
func TestMutateReweight(t *testing.T) {
	eng := newTestEngine(t)
	defer eng.Close()
	m, err := eng.NewMutator(MutatorOptions{CompactAfterOps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Reweight(2, 0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Publish(); err != nil {
		t.Fatal(err)
	}
	if w := eng.Weight(2); w != 0.9 {
		t.Fatalf("published weight %v, want 0.9", w)
	}
	if _, err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	if w := eng.Weight(2); w != 0.9 {
		t.Fatalf("override lost at compaction: %v", w)
	}
	if err := m.Reweight(9999, 0.5); err == nil {
		t.Fatal("reweight of unknown node accepted")
	}
	if err := m.Reweight(1, 1.5); err == nil {
		t.Fatal("out-of-range weight accepted")
	}
}

// TestMutateReplay: a saved delta segment replayed onto the same base
// reproduces the mutated graph exactly.
func TestMutateReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base, mo := randomMutBase(t, rng)
	engA, err := NewEngine(base, EngineOptions{Threads: 2, AvgDistance: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer engA.Close()
	mA, err := engA.NewMutator(MutatorOptions{CompactAfterOps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mA.Close()
	for i := 0; i < 25; i++ {
		applyRandomOp(t, rng, mA, mo)
	}
	if _, err := mA.Publish(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/delta.wsdl"
	if err := mA.SaveDelta(path); err != nil {
		t.Fatal(err)
	}

	l, err := LoadDeltaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	engB, err := NewEngine(base, EngineOptions{Threads: 2, AvgDistance: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer engB.Close()
	mB, err := engB.NewMutator(MutatorOptions{CompactAfterOps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mB.Close()
	if err := mB.Replay(l); err != nil {
		t.Fatal(err)
	}
	if _, err := mB.Publish(); err != nil {
		t.Fatal(err)
	}
	ga, gb := engA.Graph(), engB.Graph()
	if ga.NumNodes() != gb.NumNodes() || ga.NumEdges() != gb.NumEdges() {
		t.Fatalf("replayed shape %d/%d, want %d/%d", gb.NumNodes(), gb.NumEdges(), ga.NumNodes(), ga.NumEdges())
	}
	if !reflect.DeepEqual(engA.Weights(), engB.Weights()) {
		t.Fatal("replayed weights differ")
	}
	res, err := engB.Search(context.Background(), Query{Text: mutWords[0] + " " + mutWords[1], TopK: 3})
	if err == nil && len(res.Answers) == 0 {
		t.Fatal("replayed engine returned no answers")
	}

	// Replay onto a mismatched base is rejected.
	l.BaseNodes++
	if err := mB.Replay(l); err == nil {
		t.Fatal("replay onto mismatched base accepted")
	}
}

// TestMutateShardingExclusion: mutation and sharding are mutually exclusive.
func TestMutateShardingExclusion(t *testing.T) {
	eng := newTestEngine(t)
	defer eng.Close()
	if err := eng.EnableSharding(2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.NewMutator(MutatorOptions{}); err == nil {
		t.Fatal("mutator opened while sharding enabled")
	}
	eng.DisableSharding()
	m, err := eng.NewMutator(MutatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableSharding(2); err == nil {
		t.Fatal("sharding enabled while mutator open")
	}
	if _, err := eng.NewMutator(MutatorOptions{}); err == nil {
		t.Fatal("second mutator opened")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableSharding(2); err != nil {
		t.Fatalf("sharding after mutator close: %v", err)
	}
	eng.DisableSharding()
	if _, err := m.AddNode("x", ""); err == nil {
		t.Fatal("closed mutator accepted a mutation")
	}
}

// TestMutateWhileSearchingStress is the torn-epoch test: a writer toggles
// the graph between two states A and B (publishing and occasionally
// compacting) while reader goroutines search continuously. Every result
// must be bit-identical to the pure-A or the pure-B answer — anything else
// means a search observed a mix of two epochs.
func TestMutateWhileSearchingStress(t *testing.T) {
	eng := newTestEngine(t) // paper graph = state A
	defer eng.Close()
	q := Query{Text: "xml rdf sql", TopK: 5, Threads: 2}
	refA, err := eng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	m, err := eng.NewMutator(MutatorOptions{CompactAfterOps: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// A→B: retext one hub node and rewire one edge; both the keyword
	// overlay and the graph overlay change together, so a torn view would
	// change the answer set.
	toB := func() {
		if err := m.SetKeywords(3, "SPARQL query language for XML", ""); err != nil {
			t.Error(err)
		}
		if err := m.AddEdge(0, 3, "related to"); err != nil {
			t.Error(err)
		}
	}
	toA := func() {
		if err := m.SetKeywords(3, "SPARQL query language for RDF", ""); err != nil {
			t.Error(err)
		}
		if err := m.RemoveEdge(0, 3, "related to"); err != nil {
			t.Error(err)
		}
	}
	toB()
	if _, err := m.Publish(); err != nil {
		t.Fatal(err)
	}
	refB, err := eng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(refA.Answers, refB.Answers) {
		t.Fatal("states A and B are not distinguishable; stress test is vacuous")
	}

	const toggles = 30
	done := make(chan struct{})
	var wg sync.WaitGroup
	torn := make(chan string, 1)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := eng.Search(context.Background(), q)
				if err != nil {
					select {
					case torn <- fmt.Sprintf("search error: %v", err):
					default:
					}
					return
				}
				if !reflect.DeepEqual(res.Answers, refA.Answers) && !reflect.DeepEqual(res.Answers, refB.Answers) {
					select {
					case torn <- fmt.Sprintf("torn answers: %+v", res.Answers):
					default:
					}
					return
				}
			}
		}()
	}
	inB := true
	for i := 0; i < toggles; i++ {
		if inB {
			toA()
		} else {
			toB()
		}
		inB = !inB
		if _, err := m.Publish(); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if _, err := m.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(done)
	wg.Wait()
	select {
	case msg := <-torn:
		t.Fatal(msg)
	default:
	}
	if st := eng.EpochStats(); st.Epoch < toggles {
		t.Fatalf("epoch %d after %d publishes", st.Epoch, toggles)
	}
}

// TestSearchAllocationFreeWithIdleMutator is the allocguard variant for the
// live-mutation PR: with a mutator open and its delta empty, the warm
// kernel path — epoch pin, snapshot term lookup, bottom-up search — still
// allocates nothing.
func TestSearchAllocationFreeWithIdleMutator(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	eng := newTestEngine(t)
	defer eng.Close()
	m, err := eng.NewMutator(MutatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	q := Query{Text: "xml rdf sql", TopK: 5, Threads: 4}
	for i := 0; i < 3; i++ {
		if _, err := eng.Search(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		ep := eng.pinEpoch()
		if ep.snap.lookupTerm("xml") == nil {
			t.Fatal("term lost")
		}
		ep.unpin()
	})
	if allocs != 0 {
		t.Fatalf("epoch pin + overlay-aware lookup allocates %.1f times, want 0", allocs)
	}

	in, _, err := eng.snap().prepare(q.Text)
	if err != nil {
		t.Fatal(err)
	}
	p := eng.snap().params(q)
	in.Levels = eng.activationLevels(p.Alpha, p.Threads)
	st := eng.acquireState()
	defer eng.releaseState(st)
	st.SetTracing(true)
	if _, err := st.BottomUp(in, p); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(50, func() {
		if _, err := st.BottomUp(in, p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm kernel path with idle mutator allocates %.1f times per query, want 0", allocs)
	}
}
