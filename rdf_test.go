package wikisearch

import (
	"context"
	"strings"
	"testing"
)

func TestImportNTriplesPublic(t *testing.T) {
	const nt = `<http://kb/Q1> <http://www.w3.org/2000/01/rdf-schema#label> "SPARQL" .
<http://kb/Q2> <http://www.w3.org/2000/01/rdf-schema#label> "RDF" .
<http://kb/Q1> <http://kb/p/designedFor> <http://kb/Q2> .
`
	g, st, err := ImportNTriples(strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	if st.Triples != 3 || st.Edges != 1 || st.Labels != 2 {
		t.Fatalf("stats = %+v", st)
	}
	eng, err := NewEngine(g, EngineOptions{DistanceSamplePairs: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Search(context.Background(), Query{Text: "sparql rdf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers on imported RDF graph")
	}
	if _, _, err := ImportNTriples(strings.NewReader("garbage line\n")); err == nil {
		t.Fatal("malformed N-Triples accepted")
	}
}

func TestImportWikidataJSONPublic(t *testing.T) {
	const dump = `[
{"type":"item","id":"Q1","labels":{"en":{"value":"SPARQL"}},"descriptions":{"en":{"value":"RDF query language"}},"claims":{"P31":[{"mainsnak":{"snaktype":"value","datavalue":{"type":"wikibase-entityid","value":{"id":"Q2"}}}}]}},
{"type":"item","id":"Q2","labels":{"en":{"value":"query language"}}},
{"type":"property","id":"P31","labels":{"en":{"value":"instance of"}}},
]`
	g, st, err := ImportWikidataJSON(strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	if st.Entities != 2 || st.Properties != 1 || st.Edges != 1 {
		t.Fatalf("stats = %+v", st)
	}
	eng, err := NewEngine(g, EngineOptions{DistanceSamplePairs: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Search(context.Background(), Query{Text: "sparql query language"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers on imported Wikidata graph")
	}
	if _, _, err := ImportWikidataJSON(strings.NewReader("{bad")); err == nil {
		t.Fatal("malformed dump accepted")
	}
	if _, _, err := ImportWikidataFile("/nonexistent/dump.json"); err == nil {
		t.Fatal("missing dump file accepted")
	}
}
