package wikisearch

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// sameResult compares the query-visible parts of two results, ignoring
// timing (Phases, Total).
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Terms, b.Terms) {
		t.Fatalf("%s: terms %v vs %v", label, a.Terms, b.Terms)
	}
	if a.Depth != b.Depth || a.Candidates != b.Candidates {
		t.Fatalf("%s: depth/candidates %d/%d vs %d/%d", label, a.Depth, a.Candidates, b.Depth, b.Candidates)
	}
	if !reflect.DeepEqual(a.Answers, b.Answers) {
		t.Fatalf("%s: answers differ:\n%+v\n%+v", label, a.Answers, b.Answers)
	}
}

// batchTestQueries is a compatible workload: same α/λ/threads, varied text
// and k.
func batchTestQueries() []Query {
	return []Query{
		{Text: "xml rdf sql", TopK: 3, Threads: 2},
		{Text: "sparql rdf", TopK: 2, Threads: 2},
		{Text: "xml xpath", TopK: 4, Threads: 2},
		{Text: "sql query language", TopK: 1, Threads: 2},
	}
}

// TestEngineBatchingEquivalence: with batching enabled, concurrent
// compatible searches return exactly what they return solo.
func TestEngineBatchingEquivalence(t *testing.T) {
	eng := newTestEngine(t)
	queries := batchTestQueries()
	refs := make([]*Result, len(queries))
	for i, q := range queries {
		r, err := eng.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = r
	}

	var mu sync.Mutex
	var execs []BatchExecution
	eng.EnableBatching(BatchOptions{
		Window:   50 * time.Millisecond,
		Observer: func(ex BatchExecution) { mu.Lock(); execs = append(execs, ex); mu.Unlock() },
	})
	defer eng.DisableBatching()

	for round := 0; round < 3; round++ {
		got := make([]*Result, len(queries))
		errs := make([]error, len(queries))
		var wg sync.WaitGroup
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q Query) {
				defer wg.Done()
				got[i], errs[i] = eng.Search(context.Background(), q)
			}(i, q)
		}
		wg.Wait()
		for i := range queries {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			sameResult(t, fmt.Sprintf("round %d query %d", round, i), refs[i], got[i])
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(execs) == 0 {
		t.Fatal("observer saw no batch executions")
	}
	var coalesced bool
	for _, ex := range execs {
		if ex.Queries > 1 {
			coalesced = true
		}
		if ex.Queries == 1 && !ex.Solo {
			t.Fatalf("single-query batch not marked solo: %+v", ex)
		}
	}
	if !coalesced {
		t.Fatalf("no execution coalesced more than one query: %+v", execs)
	}
}

// TestEngineBatchingDedup: identical concurrent queries collapse into one
// column group — the observer reports fewer distinct groups than callers —
// and every caller still gets the exact solo answer set.
func TestEngineBatchingDedup(t *testing.T) {
	eng := newTestEngine(t)
	q := Query{Text: "xml rdf sql", TopK: 3, Threads: 2}
	companion := Query{Text: "sparql rdf", TopK: 2, Threads: 2}
	refQ, err := eng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	refC, err := eng.Search(context.Background(), companion)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var execs []BatchExecution
	eng.EnableBatching(BatchOptions{
		Window:   50 * time.Millisecond,
		Observer: func(ex BatchExecution) { mu.Lock(); execs = append(execs, ex); mu.Unlock() },
	})
	defer eng.DisableBatching()

	const dups = 6
	got := make([]*Result, dups)
	errs := make([]error, dups)
	var gotC *Result
	var errC error
	var wg sync.WaitGroup
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = eng.Search(context.Background(), q)
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		gotC, errC = eng.Search(context.Background(), companion)
	}()
	wg.Wait()
	for i := 0; i < dups; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		sameResult(t, fmt.Sprintf("dup %d", i), refQ, got[i])
	}
	if errC != nil {
		t.Fatal(errC)
	}
	sameResult(t, "companion", refC, gotC)

	mu.Lock()
	defer mu.Unlock()
	deduped := false
	for _, ex := range execs {
		if ex.Distinct < 1 || ex.Distinct > ex.Queries {
			t.Fatalf("execution with bad distinct count: %+v", ex)
		}
		if ex.Distinct < ex.Queries {
			deduped = true
		}
	}
	if !deduped {
		t.Fatalf("no execution collapsed duplicate queries: %+v", execs)
	}
}

// TestEngineBatchingIncompatibleKnobs: queries differing in α must not
// share a batch — the activation levels shape the whole expansion.
func TestEngineBatchingIncompatibleKnobs(t *testing.T) {
	eng := newTestEngine(t)
	ref1, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 2, Threads: 2, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}

	eng.EnableBatching(BatchOptions{Window: 50 * time.Millisecond})
	defer eng.DisableBatching()
	var wg sync.WaitGroup
	var got1, got2 *Result
	var err1, err2 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		got1, err1 = eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 2, Threads: 2})
	}()
	go func() {
		defer wg.Done()
		got2, err2 = eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 2, Threads: 2, Alpha: 0.5})
	}()
	wg.Wait()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	sameResult(t, "alpha 0.1", ref1, got1)
	sameResult(t, "alpha 0.5", ref2, got2)
}

// TestEngineBatchingCancelledMember: a member whose context fires before
// the batch launches gets its context error; companions are unaffected.
func TestEngineBatchingCancelledMember(t *testing.T) {
	eng := newTestEngine(t)
	ref, err := eng.Search(context.Background(), Query{Text: "sparql rdf", TopK: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}

	eng.EnableBatching(BatchOptions{Window: 100 * time.Millisecond})
	defer eng.DisableBatching()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var wg sync.WaitGroup
	var gotErr error
	var companion *Result
	var companionErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, gotErr = eng.Search(ctx, Query{Text: "xml rdf sql", TopK: 2, Threads: 2})
	}()
	go func() {
		defer wg.Done()
		companion, companionErr = eng.Search(context.Background(), Query{Text: "sparql rdf", TopK: 2, Threads: 2})
	}()
	wg.Wait()
	if !errors.Is(gotErr, context.Canceled) {
		t.Fatalf("cancelled member: err = %v", gotErr)
	}
	if companionErr != nil {
		t.Fatal(companionErr)
	}
	sameResult(t, "companion", ref, companion)
}

// TestEngineBatchingOverflow: a query that cannot fit the open batch fires
// it early; an oversized query bypasses batching entirely. Both still
// answer correctly.
func TestEngineBatchingOverflow(t *testing.T) {
	eng := newTestEngine(t)
	eng.EnableBatching(BatchOptions{Window: 10 * time.Millisecond, MaxColumns: 2})
	defer eng.DisableBatching()
	// Three columns > MaxColumns 2: ineligible, runs solo, still correct.
	res, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	// Two two-column queries overflow a MaxColumns-2 batch; the second
	// fires the first early and both complete.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Search(context.Background(), Query{Text: "sparql rdf", TopK: 1}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestQueryValidate exercises the shared knob bounds.
func TestQueryValidate(t *testing.T) {
	valid := []Query{
		{},
		{TopK: 1, Alpha: 0.01, Lambda: 1, MaxLevel: 250},
		{TopK: 200, Variant: BANKS},
		{Variant: ExactGST, MaxStates: 10},
	}
	for i, q := range valid {
		if err := q.Validate(); err != nil {
			t.Errorf("valid query %d rejected: %v", i, err)
		}
	}
	invalid := map[string]Query{
		"k low":       {TopK: -1},
		"k high":      {TopK: 201},
		"alpha low":   {Alpha: -0.1},
		"alpha high":  {Alpha: 1},
		"lambda low":  {Lambda: -0.5},
		"lambda high": {Lambda: 1.5},
		"maxlevel":    {MaxLevel: 251},
		"variant":     {Variant: Variant(99)},
	}
	for name, q := range invalid {
		if err := q.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
