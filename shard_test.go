package wikisearch

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// TestEngineShardedEquivalence: with sharding enabled at several shard
// counts, the engine's public Search returns exactly what the solo path
// returns — answers, depth, candidates — for both eligible variants, and
// stamps Result.Shard with a consistent execution summary.
func TestEngineShardedEquivalence(t *testing.T) {
	eng := newTestEngine(t)
	defer eng.Close()
	queries := []Query{
		{Text: "xml rdf sql"},
		{Text: "xml rdf sql", Variant: Sequential},
		{Text: "database query", TopK: 3},
	}
	solo := make([]*Result, len(queries))
	for i, q := range queries {
		res, err := eng.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Shard != nil {
			t.Fatal("solo search carries shard info")
		}
		solo[i] = res
	}
	for _, n := range []int{1, 2, 4} {
		if err := eng.EnableSharding(n); err != nil {
			t.Fatal(err)
		}
		if got := eng.ShardCount(); got != n {
			t.Fatalf("ShardCount = %d, want %d", got, n)
		}
		for i, q := range queries {
			res, err := eng.Search(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("shards=%d query %d", n, i)
			if res.Shard == nil || res.Shard.Shards != n {
				t.Fatalf("%s: shard info = %+v", label, res.Shard)
			}
			if res.Depth != solo[i].Depth || res.Candidates != solo[i].Candidates {
				t.Fatalf("%s: depth/candidates %d/%d vs solo %d/%d",
					label, res.Depth, res.Candidates, solo[i].Depth, solo[i].Candidates)
			}
			if !reflect.DeepEqual(res.Answers, solo[i].Answers) {
				t.Fatalf("%s: answers differ from solo", label)
			}
		}
		st, ok := eng.ShardStats()
		if !ok || st.Shards != n || st.Queries != int64(len(queries)) || len(st.PerShard) != n {
			t.Fatalf("shards=%d: stats = %+v ok=%v", n, st, ok)
		}
	}
	eng.DisableSharding()
	if _, ok := eng.ShardStats(); ok || eng.ShardCount() != 0 {
		t.Fatal("sharding still reported after disable")
	}
	res, err := eng.Search(context.Background(), queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Shard != nil {
		t.Fatal("post-disable search still sharded")
	}
}

// TestEngineShardedDumpRoundTrip: SaveSharded → EnableShardingFrom serves
// from disk-loaded shard segments with answers identical to in-memory
// sharding and the solo path.
func TestEngineShardedDumpRoundTrip(t *testing.T) {
	eng := newTestEngine(t)
	defer eng.Close()
	q := Query{Text: "xml rdf sql"}
	solo, err := eng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := eng.SaveSharded(dir, 4); err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableShardingFrom(dir); err != nil {
		t.Fatal(err)
	}
	if got := eng.ShardCount(); got != 4 {
		t.Fatalf("ShardCount = %d", got)
	}
	res, err := eng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Answers, solo.Answers) {
		t.Fatal("disk-loaded sharded answers differ from solo")
	}
	if res.Shard == nil || res.Shard.Shards != 4 {
		t.Fatalf("shard info = %+v", res.Shard)
	}
	eng.DisableSharding()
}

// TestEngineShardedTraceCollected: sharded searches land in the trace
// collector with shard attribution and the coordinator's exchange/merge
// spans available through PhaseNs.
func TestEngineShardedTraceCollected(t *testing.T) {
	eng := newTestEngine(t)
	defer eng.Close()
	if err := eng.EnableSharding(2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Search(context.Background(), Query{Text: "xml rdf sql"}); err != nil {
		t.Fatal(err)
	}
	recent := eng.Traces().Recent()
	if len(recent) == 0 {
		t.Fatal("no trace collected")
	}
	qt := recent[0]
	if qt.Shards != 2 {
		t.Fatalf("trace shards = %d", qt.Shards)
	}
	if len(qt.Events) == 0 {
		t.Fatal("trace has no events")
	}
}

// TestEngineShardedIneligibleVariants: the dynamic and GPU variants bypass
// the sharded runtime and still agree with the solo baseline.
func TestEngineShardedIneligibleVariants(t *testing.T) {
	eng := newTestEngine(t)
	defer eng.Close()
	base, err := eng.Search(context.Background(), Query{Text: "xml rdf sql"})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableSharding(4); err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{CPUParD, GPUPar} {
		res, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		if res.Shard != nil {
			t.Fatalf("%v ran sharded", v)
		}
		if !reflect.DeepEqual(res.Answers, base.Answers) {
			t.Fatalf("%v answers differ", v)
		}
	}
}
