package wikisearch

import (
	"io"

	"wikisearch/internal/ntriples"
	"wikisearch/internal/wikidata"
)

// NTriplesStats summarizes an RDF import.
type NTriplesStats struct {
	Triples     int // triples parsed
	Edges       int // object-property triples turned into graph edges
	Labels      int // rdfs:label-style literals applied as node labels
	Descs       int // description literals applied
	SkippedLits int // other literal triples ignored
	SkippedLang int // non-English language-tagged literals dropped
}

// ImportNTriples reads an RDF N-Triples stream (the export format of
// Wikidata, Freebase, Yago and most triple stores) and builds a searchable
// knowledge graph: object-property triples become labeled edges,
// rdfs:label / skos:prefLabel / schema:name literals become node labels,
// and schema:description / rdfs:comment literals become descriptions.
func ImportNTriples(r io.Reader) (*Graph, NTriplesStats, error) {
	im := ntriples.NewImporter()
	if err := im.Read(r); err != nil {
		return nil, NTriplesStats{}, err
	}
	g, st, err := im.Build()
	return g, NTriplesStats{
		Triples:     st.Triples,
		Edges:       st.Edges,
		Labels:      st.Labels,
		Descs:       st.Descs,
		SkippedLits: st.SkippedLits,
		SkippedLang: st.SkippedLang,
	}, err
}

// WikidataStats summarizes a Wikidata JSON dump import.
type WikidataStats struct {
	Entities   int // item entities parsed
	Properties int // property entities parsed
	Claims     int // statements examined
	Edges      int // entity-valued statements turned into edges
	Skipped    int // datatype-valued or valueless snaks skipped
	Dangling   int // referenced-but-undefined entities materialized
}

func toWikidataStats(st wikidata.Stats) WikidataStats {
	return WikidataStats{
		Entities:   st.Entities,
		Properties: st.Properties,
		Claims:     st.Claims,
		Edges:      st.Edges,
		Skipped:    st.Skipped,
		Dangling:   st.Dangling,
	}
}

// ImportWikidataJSON reads a Wikidata JSON entity dump (the array-per-line
// layout of dumps.wikimedia.org, or JSON-Lines) and builds a searchable
// knowledge graph: items become nodes with their English labels and
// descriptions, entity-valued statements become edges, and property
// entities name the relationship types.
func ImportWikidataJSON(r io.Reader) (*Graph, WikidataStats, error) {
	g, st, err := wikidata.ImportJSON(r)
	return g, toWikidataStats(st), err
}

// ImportWikidataFile imports a dump file, transparently decompressing
// ".gz" — `wikigen -import dump.json.gz` uses this path.
func ImportWikidataFile(path string) (*Graph, WikidataStats, error) {
	g, st, err := wikidata.ImportFile(path)
	return g, toWikidataStats(st), err
}
