package wikisearch_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§VI). Each benchmark exercises the code path that regenerates the
// corresponding artifact; cmd/benchrunner runs the full parameter sweeps
// and prints the paper-formatted tables (see DESIGN.md's per-experiment
// index and EXPERIMENTS.md for paper-vs-measured).
//
// Run with: go test -bench=. -benchmem

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"wikisearch"
	"wikisearch/internal/bench"
	"wikisearch/internal/eval"
	"wikisearch/internal/graph"
)

var (
	envOnce sync.Once
	envVal  *bench.Env
)

// env prepares the wiki2017-sim environment once for all benchmarks.
func env(b *testing.B) *bench.Env {
	b.Helper()
	envOnce.Do(func() {
		e, err := bench.NewEnv(bench.Config{
			Preset:            "wiki2017-sim",
			QueriesPerSetting: 5,
			BanksMaxVisits:    30000,
			Threads:           4,
		})
		if err != nil {
			panic(err)
		}
		envVal = e
	})
	return envVal
}

// queries returns a fixed workload of the given keyword count.
func queries(b *testing.B, knum int) []string {
	b.Helper()
	qs := env(b).Workload(knum, 5)
	if len(qs) == 0 {
		b.Fatal("empty workload")
	}
	return qs
}

func searchBench(b *testing.B, v wikisearch.Variant, knum, topk int, alpha float64, threads int) {
	e := env(b)
	qs := queries(b, knum)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Eng.Search(context.Background(), wikisearch.Query{
			Text: qs[i%len(qs)], TopK: topk, Alpha: alpha, Threads: threads, Variant: v,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Answers) == 0 {
			b.Fatal("no answers")
		}
	}
}

// BenchmarkTable2DatasetStats — Table II: sampled average-distance
// estimation (per 100 sampled pairs).
func BenchmarkTable2DatasetStats(b *testing.B) {
	e := env(b)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := graph.SampleAverageDistance(e.KB.Graph, 100, rng)
		if s.Mean <= 0 {
			b.Fatal("bad sample")
		}
	}
}

// BenchmarkFig3ActivationDistribution — Fig. 3: node distribution over
// minimum activation levels across the paper's three α values.
func BenchmarkFig3ActivationDistribution(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, raw := e.Fig3([]float64{0.05, 0.1, 0.4}); len(raw) != 3 {
			b.Fatal("bad distribution")
		}
	}
}

// BenchmarkExp1VaryKnum* — Fig. 6/7 series: one full query at the default
// Knum=6 per variant (the sweep itself is benchrunner -exp exp1).

func BenchmarkExp1VaryKnumCPUPar(b *testing.B) {
	searchBench(b, wikisearch.CPUPar, 6, 20, 0.1, 4)
}

func BenchmarkExp1VaryKnumGPUPar(b *testing.B) {
	searchBench(b, wikisearch.GPUPar, 6, 20, 0.1, 4)
}

func BenchmarkExp1VaryKnumCPUParDynamic(b *testing.B) {
	searchBench(b, wikisearch.CPUParD, 6, 20, 0.1, 4)
}

func BenchmarkExp1VaryKnumBANKS2(b *testing.B) {
	e := env(b)
	qs := queries(b, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Eng.Search(context.Background(), wikisearch.Query{
			Text: qs[i%len(qs)], TopK: 20, Variant: wikisearch.BANKS,
			Bidirectional: true, MaxVisits: e.Cfg.BanksMaxVisits,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkExp2VaryTopk — Fig. 8 row 1's extreme point (Topk=50).
func BenchmarkExp2VaryTopk50(b *testing.B) {
	searchBench(b, wikisearch.CPUPar, 6, 50, 0.1, 4)
}

// BenchmarkExp3VaryAlpha — Fig. 8 row 2's extreme points.
func BenchmarkExp3VaryAlpha005(b *testing.B) {
	searchBench(b, wikisearch.CPUPar, 6, 20, 0.05, 4)
}

func BenchmarkExp3VaryAlpha040(b *testing.B) {
	searchBench(b, wikisearch.CPUPar, 6, 20, 0.4, 4)
}

// BenchmarkExp4VaryThreads — Fig. 9/10's endpoints: sequential vs Tnum=8.
func BenchmarkExp4VaryThreadsT1(b *testing.B) {
	searchBench(b, wikisearch.Sequential, 6, 20, 0.1, 1)
}

func BenchmarkExp4VaryThreadsT8(b *testing.B) {
	searchBench(b, wikisearch.CPUPar, 6, 20, 0.1, 8)
}

// BenchmarkTable4Storage — Table IV: storage accounting plus the §V-B
// matrix-transfer arithmetic.
func BenchmarkTable4Storage(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, costs := bench.Table4([]*bench.Env{e}, 8)
		if costs[0].MaxRunning <= 0 {
			b.Fatal("bad accounting")
		}
	}
}

// BenchmarkTable5QueryStats — Table V: keyword-frequency resolution for
// the effectiveness queries.
func BenchmarkTable5QueryStats(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := bench.Table5([]*bench.Env{e})
		if len(t.Rows) != 11 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig11Effectiveness — Fig. 11/12: one planted query end to end,
// including relevance judgment against the oracle.
func BenchmarkFig11Effectiveness(b *testing.B) {
	e := env(b)
	p := &e.KB.Planted[3] // Q4: the phrase-splitting query BANKS fails
	oracle := eval.NewOracle(p, e.Ix)
	q := strings.Join(p.Keywords, " ")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Eng.Search(context.Background(), wikisearch.Query{Text: q, TopK: 20, Threads: 4})
		if err != nil {
			b.Fatal(err)
		}
		sets := make([][]graph.NodeID, 0, len(res.Answers))
		for j := range res.Answers {
			sets = append(sets, res.Answers[j].NodeIDs())
		}
		if p := oracle.PrecisionAtK(sets, 20); p < 0 || p > 1 {
			b.Fatal("bad precision")
		}
	}
}

// BenchmarkFig12EffectivenessBANKS — the BANKS-II side of Fig. 11/12.
func BenchmarkFig12EffectivenessBANKS(b *testing.B) {
	e := env(b)
	p := &e.KB.Planted[3]
	oracle := eval.NewOracle(p, e.Ix)
	q := strings.Join(p.Keywords, " ")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full, err := e.Eng.Search(context.Background(), wikisearch.Query{
			Text: q, TopK: 20, Variant: wikisearch.BANKS,
			Bidirectional: true, MaxVisits: e.Cfg.BanksMaxVisits,
		})
		if err != nil {
			b.Fatal(err)
		}
		res := full.Banks
		sets := make([][]graph.NodeID, 0, len(res.Trees))
		for j := range res.Trees {
			sets = append(sets, res.Trees[j].Nodes)
		}
		_ = oracle.PrecisionAtK(sets, 20)
	}
}
