package wikisearch

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"wikisearch/internal/core"
	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
	"wikisearch/internal/shard"
	"wikisearch/internal/storage"
	"wikisearch/internal/text"
	"wikisearch/internal/trace"
	"wikisearch/internal/weight"
)

// Graph is the knowledge graph the engine searches: a bi-directed,
// node- and edge-labeled graph in CSR form. Build one with NewBuilder or
// generate one with GenerateDataset.
type Graph = graph.Graph

// Builder incrementally assembles a Graph.
type Builder = graph.Builder

// NodeID identifies a graph node.
type NodeID = graph.NodeID

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return graph.NewBuilder() }

// EngineOptions configures engine preparation.
type EngineOptions struct {
	// Threads bounds preparation parallelism (weight computation). <= 0
	// selects GOMAXPROCS.
	Threads int
	// DistanceSamplePairs is the number of node pairs sampled to estimate
	// the average shortest distance A (the paper samples 10,000; default
	// here 2,000). Ignored when AvgDistance is set.
	DistanceSamplePairs int
	// AvgDistance overrides sampling with a known A (> 0).
	AvgDistance float64
	// Seed drives distance sampling; 0 means 1.
	Seed int64
}

func (o EngineOptions) defaults() EngineOptions {
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.DistanceSamplePairs <= 0 {
		o.DistanceSamplePairs = 2000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Engine is a prepared search engine over one knowledge graph: inverted
// keyword index, degree-of-summary weights, and the sampled average
// distance that anchors the activation-level mapping. An Engine is safe
// for concurrent Search calls, and — through NewMutator — for live graph
// mutations concurrent with searches: every search pins one immutable
// epoch snapshot for its lifetime (see epoch.go).
type Engine struct {
	name string

	// epoch points at the current published snapshot (graph, weights,
	// index + delta overlay, level caches). Searches pin it lock-free;
	// Mutator.Publish and the compactor install successors.
	epoch         atomic.Pointer[epoch]
	epochSeq      atomic.Uint64 // last published epoch id
	epochsRetired atomic.Int64  // replaced epochs fully drained
	// oldEpochs (guarded by mu) tracks replaced epochs that may still be
	// pinned by in-flight searches.
	oldEpochs []*epoch
	// pubMu serializes epoch publication (mutator publishes, compaction).
	pubMu sync.Mutex

	// mut (guarded by mu) is the active Mutator; at most one may exist,
	// and mutation is mutually exclusive with sharding.
	mut *Mutator
	// publishObs, when set, is invoked after every epoch publication; the
	// serving layer uses it to purge its result cache and update gauges.
	publishObs atomic.Pointer[PublishObserver]

	// mu guards the cross-cutting cold-path engine state: oldEpochs, mut,
	// shardDumps and shardCache.
	mu sync.Mutex

	// levelComputes counts level-vector computations (observability and
	// the singleflight regression test).
	levelComputes atomic.Int64

	// states recycles per-query search state (matrix, bitsets, frontier
	// buffers, worker pool) across CPU-Par/Sequential searches, so
	// steady-state serving does not re-allocate the O(n·q) kernel arrays
	// per query. stateNews/stateReuses expose the pool's effectiveness.
	states      sync.Pool
	stateNews   atomic.Int64
	stateReuses atomic.Int64

	// observer, when set, is invoked after every Search call with the
	// outcome; the serving layer uses it to feed latency metrics.
	observer atomic.Pointer[SearchObserver]

	// batcher, when set (EnableBatching), coalesces concurrent compatible
	// searches into shared bottom-up expansions.
	batcher atomic.Pointer[batcher]

	// sharding, when set (EnableSharding), routes CPU-Par/Sequential
	// searches through the in-process sharded runtime: edge-cut CSR
	// partitions, per-level frontier exchange, monotone global top-k merge.
	// shardDumps (guarded by mu) retains the per-shard segment dumps when
	// the topology came off disk (EnableShardingFrom); their mappings back
	// the shard subgraphs and are closed on the next setSharding.
	// shardCache (guarded by mu) keeps in-memory coordinators per shard
	// count so toggling sharding on/off or between counts reuses the
	// already-built partition and warm Run pools instead of repartitioning;
	// Close releases every cached coordinator.
	sharding   atomic.Pointer[shard.Coordinator]
	shardDumps []*storage.Dump
	shardCache map[int]*shard.Coordinator

	// tracer retains per-query trace trees assembled from the kernel's
	// span rings; traceOff is inverted so the zero value means tracing is
	// on (it is cheap enough to be always-on; see SetTracing).
	tracer   *TraceCollector
	traceOff atomic.Bool

	// dump retains the loaded dump when the engine came from LoadEngine:
	// for a memory-mapped v3 dump the graph/weight/index arrays alias the
	// mapping it owns, which Close releases.
	dump *storage.Dump
}

// DumpFormat selects the on-disk format for Engine.SaveFormat.
type DumpFormat int

const (
	// FormatV2 is the streamed record format: compact, decoded fully into
	// heap memory at load.
	FormatV2 DumpFormat = 2
	// FormatV3 is the mmap-able section format: page-aligned arrays loaded
	// as zero-copy views for near-instant startup. The default.
	FormatV3 DumpFormat = 3
)

// LoadInfo describes how a loaded engine's dump got into memory.
type LoadInfo struct {
	// Format is the on-disk version read (1, 2 or 3); 0 for engines built
	// in memory by NewEngine.
	Format int
	// Mode is "decode" (v1/v2), "mmap" (v3 zero-copy) or "read" (v3
	// fallback); empty for in-memory engines.
	Mode string
	// MappedBytes is the live mapping size (0 unless Mode is "mmap").
	MappedBytes int64
	// FileBytes is the dump file size.
	FileBytes int64
}

// levelEntry is one per-α cache slot. The sync.Once guarantees the level
// vector is computed exactly once per α even under concurrent first
// requests, and callers hold the entry pointer, so a concurrent cache
// eviction can never drop a vector out from under an in-flight search.
type levelEntry struct {
	once sync.Once
	lv   []uint8
}

// SearchObserver receives the outcome of every SearchContext call: the
// query, the result (nil on error) and the error (nil on success). It must
// be safe for concurrent use.
type SearchObserver func(q Query, res *Result, err error)

// SetSearchObserver installs (or, with nil, removes) the observer invoked
// after every search. Safe to call concurrently with searches.
func (e *Engine) SetSearchObserver(obs SearchObserver) {
	if obs == nil {
		e.observer.Store(nil)
		return
	}
	e.observer.Store(&obs)
}

// observe reports a search outcome to the installed observer, if any.
func (e *Engine) observe(q Query, res *Result, err error) {
	if p := e.observer.Load(); p != nil {
		(*p)(q, res, err)
	}
}

// NewEngine prepares an engine over g: builds the inverted index, computes
// normalized Eq. 2 weights, and samples the average shortest distance.
func NewEngine(g *Graph, o EngineOptions) (*Engine, error) {
	o = o.defaults()
	if g == nil {
		return nil, fmt.Errorf("wikisearch: nil graph")
	}
	pool := parallel.NewPool(o.Threads)
	defer pool.Close()
	w := weight.Compute(g, pool)
	return newEngineFrom("", g, w, o)
}

// LoadEngine reads a dump produced by Engine.Save (or cmd/wikigen) and
// prepares an engine over it. Version-2 dumps carry the inverted index and
// the sampled distance statistics, so loading skips both recomputations;
// version-1 dumps rebuild the index and resample (A may still be
// overridden through o.AvgDistance).
func LoadEngine(path string, o EngineOptions) (*Engine, error) {
	d, err := storage.LoadDumpFile(path)
	if err != nil {
		return nil, err
	}
	o = o.defaults()
	e := &Engine{
		name:   d.Name,
		tracer: trace.NewCollector(),
		dump:   d,
	}
	ix := d.Index
	if ix == nil {
		ix = text.BuildIndex(d.Graph)
	}
	avgDist, stddev := d.AvgDist, d.Deviation
	if o.AvgDistance > 0 {
		avgDist, stddev = o.AvgDistance, 0
	}
	if avgDist <= 0 {
		s := graph.SampleAverageDistance(d.Graph, o.DistanceSamplePairs, rand.New(rand.NewSource(o.Seed)))
		avgDist, stddev = s.Mean, s.Deviation
		if avgDist <= 0 {
			avgDist = 1
		}
	}
	e.installEpoch(newSnapshot(d.Graph, ix, nil, d.Weights, avgDist, stddev))
	return e, nil
}

func newEngineFrom(name string, g *Graph, w []float64, o EngineOptions) (*Engine, error) {
	e := &Engine{
		name:   name,
		tracer: trace.NewCollector(),
	}
	var avgDist, stddev float64
	if o.AvgDistance > 0 {
		avgDist = o.AvgDistance
	} else {
		s := graph.SampleAverageDistance(g, o.DistanceSamplePairs, rand.New(rand.NewSource(o.Seed)))
		avgDist, stddev = s.Mean, s.Deviation
		if avgDist <= 0 {
			avgDist = 1 // degenerate graphs: keep the mapping sane
		}
	}
	e.installEpoch(newSnapshot(g, text.BuildIndex(g), nil, w, avgDist, stddev))
	return e, nil
}

// Save writes the engine's dump to path in the default format (v3, the
// mmap-able layout), so LoadEngine starts without recomputation — and,
// on platforms with mmap, without even reading the arrays up front.
func (e *Engine) Save(path string) error {
	return e.SaveFormat(path, FormatV3)
}

// SaveFormat writes the engine's dump to path in the requested format:
// graph, weights, distance statistics and the inverted index. An unmerged
// mutation delta is folded in first: the dump always carries a flat CSR
// graph and an exact index, so a reloaded engine starts compacted.
func (e *Engine) SaveFormat(path string, format DumpFormat) error {
	sn := e.snap()
	g, ix := sn.g, sn.ix
	if g.HasOverlay() {
		g = g.Materialize()
		ix = text.BuildIndex(g)
	}
	d := &storage.Dump{
		Name:      e.name,
		Graph:     g,
		Weights:   sn.weights,
		AvgDist:   sn.avgDist,
		Deviation: sn.stddev,
		Index:     ix,
	}
	switch format {
	case FormatV2:
		return storage.SaveDumpFile(path, d)
	case FormatV3:
		return storage.SaveDumpFileV3(path, d)
	default:
		return fmt.Errorf("wikisearch: unknown dump format %d", format)
	}
}

// LoadInfo reports how this engine's dump was loaded. Engines built in
// memory (NewEngine) return a zero LoadInfo.
func (e *Engine) LoadInfo() LoadInfo {
	if e.dump == nil {
		return LoadInfo{}
	}
	s := e.dump.Source
	return LoadInfo{Format: s.Format, Mode: s.Mode, MappedBytes: s.MappedBytes, FileBytes: s.Bytes}
}

// Close releases the memory mapping backing a v3-loaded engine. The caller
// must guarantee no search is in flight — after Close, the graph, weights
// and index views are invalid. Close on an in-memory or v2-loaded engine
// is a no-op; it is idempotent.
func (e *Engine) Close() error {
	// Stop the mutator's compactor first (no-op when none is active), then
	// release the sharded runtime's worker pools and segment mappings, and
	// every cached coordinator.
	e.mu.Lock()
	m := e.mut
	e.mu.Unlock()
	if m != nil {
		m.Close()
	}
	e.setSharding(nil, nil)
	e.closeShardCache()
	if e.dump == nil {
		return nil
	}
	return e.dump.Close()
}

// VerifyDumpFile fully verifies a dump file of any version, including the
// per-section CRCs a v3 load skips for instant startup. Use it after
// copying dumps between machines or converting formats.
func VerifyDumpFile(path string) error { return storage.VerifyDumpFile(path) }

// SetName sets the dataset name recorded in dumps.
func (e *Engine) SetName(name string) { e.name = name }

// Name returns the dataset name ("wiki2018-sim", …).
func (e *Engine) Name() string { return e.name }

// Graph returns the current epoch's graph. During live mutation the view
// changes on publish; hold the result rather than re-reading it when a
// consistent view matters (or pin via Search, which does this per query).
func (e *Engine) Graph() *Graph { return e.snap().g }

// AvgDistance returns the sampled (or configured) average shortest
// distance A.
func (e *Engine) AvgDistance() float64 { return e.snap().avgDist }

// DistanceDeviation returns the sampling standard deviation (0 when A was
// configured explicitly).
func (e *Engine) DistanceDeviation() float64 { return e.snap().stddev }

// VocabSize returns the keyword vocabulary size after stopword filtering
// and stemming, adjusted for the live-mutation delta.
func (e *Engine) VocabSize() int { return e.snap().vocabSize() }

// KeywordFrequency returns the number of nodes containing the raw keyword
// (Table V's kwf), delta-aware.
func (e *Engine) KeywordFrequency(raw string) int { return len(e.snap().lookup(raw)) }

// Weight returns node v's normalized degree-of-summary weight.
func (e *Engine) Weight(v NodeID) float64 { return e.snap().weights[v] }

// Weights returns the current epoch's weight vector; the slice aliases
// snapshot state and must not be modified.
func (e *Engine) Weights() []float64 { return e.snap().weights }

// activationLevels returns the current snapshot's per-node minimum
// activation levels for α; see snapshot.activationLevels.
func (e *Engine) activationLevels(alpha float64, threads int) []uint8 {
	return e.snap().activationLevels(alpha, threads, &e.levelComputes)
}

// acquireState takes a reusable search state from the engine's pool, or
// creates one on first use / after GC eviction.
func (e *Engine) acquireState() *core.SearchState {
	if st, ok := e.states.Get().(*core.SearchState); ok {
		e.stateReuses.Add(1)
		return st
	}
	e.stateNews.Add(1)
	return core.NewSearchState()
}

// releaseState returns a search state to the pool for the next query.
// States evicted by the GC release their worker goroutines via finalizer.
func (e *Engine) releaseState(st *core.SearchState) { e.states.Put(st) }

// SearchStateStats reports how many pooled search states have been created
// versus reused — at steady state reuses dominate, meaning searches run on
// warm, allocation-free kernel buffers.
func (e *Engine) SearchStateStats() (created, reused int64) {
	return e.stateNews.Load(), e.stateReuses.Load()
}

// LevelComputations returns how many activation-level vectors have been
// computed (cache misses); the per-α cache makes repeats free.
func (e *Engine) LevelComputations() int64 { return e.levelComputes.Load() }

// ActivationDistribution buckets all nodes by minimum activation level for
// α — the data behind Fig. 3. The final bucket aggregates levels ≥
// buckets−1.
func (e *Engine) ActivationDistribution(alpha float64, buckets int) []int {
	return weight.Distribution(e.activationLevels(alpha, 0), buckets)
}
