package wikisearch

// Scale smoke test: the paper's target is real-time response on large
// graphs; this test generates a KB an order of magnitude beyond the bench
// presets and checks a multi-keyword query still answers in interactive
// time. Skipped with -short.

import (
	"context"
	"testing"
	"time"
)

func TestLargeScaleSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping large-scale generation in -short mode")
	}
	ds, err := GenerateDataset(DatasetConfig{
		Name:      "scale-sim",
		Nodes:     400000,
		AvgDegree: 8,
		VocabSize: 30000,
		Seed:      77,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	if g.NumNodes() < 400000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	eng, err := NewEngine(g, EngineOptions{DistanceSamplePairs: 500})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := eng.Search(context.Background(), Query{Text: "bayesian inference markov network", TopK: 20})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(res.Answers) == 0 {
		t.Fatal("no answers at scale")
	}
	// "Interactive time" with generous slack for CI machines.
	if elapsed > 30*time.Second {
		t.Fatalf("query took %v on %d nodes", elapsed, g.NumNodes())
	}
	for i := range res.Answers {
		a := &res.Answers[i]
		seen := map[string]bool{}
		for _, n := range a.Nodes {
			for _, kw := range n.Keywords {
				seen[kw] = true
			}
		}
		for _, term := range res.Terms {
			if !seen[term] {
				t.Fatalf("answer %d misses keyword %q", i, term)
			}
		}
	}
	t.Logf("%d nodes / %d edges: %d answers in %v (d=%d, %d candidates)",
		g.NumNodes(), g.NumEdges(), len(res.Answers), elapsed, res.Depth, res.Candidates)
}
