package wikisearch

import (
	"context"
	"fmt"
	"time"

	"wikisearch/internal/core"
	"wikisearch/internal/graph"
	"wikisearch/internal/shard"
	"wikisearch/internal/storage"
)

// ShardStats is a snapshot of the sharded runtime's cumulative serving
// totals plus the static partition shape; see Engine.ShardStats.
type ShardStats = shard.Stats

// ShardInfo describes how one query's sharded execution went; attached to
// Result.Shard on searches served by the sharded runtime.
type ShardInfo struct {
	// Shards is the partition's shard count.
	Shards int
	// Levels is the number of BFS levels the coordinator ran.
	Levels int
	// Messages is the number of boundary activations exchanged across
	// shards over all levels.
	Messages int64
	// Exchange and Merge are the coordinator's wall time applying boundary
	// messages and merging Central Nodes / absorbing matrices.
	Exchange time.Duration
	Merge    time.Duration
	// Imbalance is max/mean of the shards' busy time (1.0 = perfectly
	// balanced); Stall is max−mean, the wait the slowest shard imposed on
	// the rest across the per-level barriers.
	Imbalance float64
	Stall     time.Duration
}

// EnableSharding partitions the engine's graph into n edge-cut shards and
// routes subsequent CPU-Par/Sequential searches through the in-process
// sharded runtime: per-shard bottom-up kernels with per-level cross-shard
// frontier exchange and a monotone global top-k merge. Results are
// bit-identical to the solo path. The coordinator for each shard count is
// built once and cached on the engine, so toggling sharding on/off or
// switching between counts is cheap after the first call; Close releases
// the cache. Not meant to race with in-flight searches (they finish on the
// runtime they started with).
func (e *Engine) EnableSharding(n int) error {
	if n < 1 {
		return fmt.Errorf("wikisearch: shard count %d < 1", n)
	}
	e.mu.Lock()
	if e.mut != nil {
		e.mu.Unlock()
		return fmt.Errorf("wikisearch: cannot enable sharding while a mutator is open")
	}
	co := e.shardCache[n]
	e.mu.Unlock()
	if co == nil {
		top, err := shard.NewTopology(e.snap().g.Materialize(), n)
		if err != nil {
			return err
		}
		co = shard.NewCoordinator(top)
		e.mu.Lock()
		if e.shardCache == nil {
			e.shardCache = make(map[int]*shard.Coordinator)
		}
		e.shardCache[n] = co
		e.mu.Unlock()
	}
	e.setSharding(co, nil)
	return nil
}

// SaveSharded partitions the engine's graph into n edge-cut shards and
// writes the sharded dump layout under dir: a manifest plus one mmap-able v3
// segment and partition-map file per shard. EnableShardingFrom loads it
// without re-partitioning.
func (e *Engine) SaveSharded(dir string, n int) error {
	if n < 1 {
		return fmt.Errorf("wikisearch: shard count %d < 1", n)
	}
	sn := e.snap()
	g := sn.g.Materialize()
	part, err := graph.PartitionGraph(g, n)
	if err != nil {
		return err
	}
	d := &storage.Dump{
		Name:      e.name,
		Graph:     g,
		Weights:   sn.weights,
		AvgDist:   sn.avgDist,
		Deviation: sn.stddev,
	}
	_, err = storage.SaveSharded(dir, d, part)
	return err
}

// EnableShardingFrom enables sharded search from a sharded dump directory
// written by SaveSharded: shard subgraphs come straight off their own v3
// segments (memory-mapped where the platform allows), skipping the
// partitioning work. The segments must have been cut from this engine's
// graph.
func (e *Engine) EnableShardingFrom(dir string) error {
	e.mu.Lock()
	if e.mut != nil {
		e.mu.Unlock()
		return fmt.Errorf("wikisearch: cannot enable sharding while a mutator is open")
	}
	e.mu.Unlock()
	g := e.snap().g.Materialize()
	part, dumps, err := storage.LoadSharded(dir, g)
	if err != nil {
		return err
	}
	e.setSharding(shard.NewCoordinator(shard.FromPartition(g, part)), dumps)
	return nil
}

// DisableSharding returns subsequent searches to the solo path.
func (e *Engine) DisableSharding() { e.setSharding(nil, nil) }

// setSharding swaps the sharded runtime, releasing the previous one's worker
// pools and any dump mappings backing its shard subgraphs. Coordinators held
// in the engine's cache are kept warm for the next EnableSharding instead of
// being closed; closeShardCache releases them.
func (e *Engine) setSharding(co *shard.Coordinator, dumps []*storage.Dump) {
	old := e.sharding.Swap(co)
	e.mu.Lock()
	oldDumps := e.shardDumps
	e.shardDumps = dumps
	cached := false
	for _, c := range e.shardCache {
		if c == old {
			cached = true
			break
		}
	}
	e.mu.Unlock()
	if old != nil && old != co && !cached {
		old.Close()
	}
	for _, d := range oldDumps {
		d.Close()
	}
}

// closeShardCache closes every cached coordinator; the active one (if any)
// was swapped out by the caller first.
func (e *Engine) closeShardCache() {
	e.mu.Lock()
	cache := e.shardCache
	e.shardCache = nil
	e.mu.Unlock()
	for _, c := range cache {
		c.Close()
	}
}

// ShardCount returns the active shard count (0 when sharding is disabled).
func (e *Engine) ShardCount() int {
	if co := e.sharding.Load(); co != nil {
		return co.Topology().N
	}
	return 0
}

// ShardStats snapshots the sharded runtime's cumulative totals; ok is false
// when sharding is disabled.
func (e *Engine) ShardStats() (st ShardStats, ok bool) {
	if co := e.sharding.Load(); co != nil {
		return co.Stats(), true
	}
	return ShardStats{}, false
}

// shardEligible reports whether the variant runs on the sharded runtime.
// The dynamic, GPU and baseline variants keep their dedicated paths.
func shardEligible(v Variant) bool { return v == CPUPar || v == Sequential }

// runSharded executes a prepared query on the sharded runtime.
func (e *Engine) runSharded(ctx context.Context, co *shard.Coordinator, ep *epoch, q Query, in core.Input, terms []string, start searchStart) (*Result, error) {
	sn := ep.snap
	p := sn.params(q)
	if ctx != nil && ctx != context.Background() {
		p.Ctx = ctx
	}
	if q.DisableActivation {
		in.Levels = sn.zeroLevels()
	} else {
		in.Levels = sn.activationLevels(p.Alpha, p.Threads, &e.levelComputes)
	}
	res, info, events, dropped, err := co.Search(in, p, e.TracingEnabled())
	m := traceMeta{start: start, epoch: ep.id, groupCols: len(in.Sources), events: events, dropped: dropped, shard: info}
	if err != nil {
		e.collectTrace(ctx, q, terms, nil, err, m)
		return nil, err
	}
	out := sn.resolve(terms, res, 0)
	out.Shard = &ShardInfo{
		Shards:    info.Shards,
		Levels:    info.Levels,
		Messages:  info.Messages,
		Exchange:  info.Exchange,
		Merge:     info.Merge,
		Imbalance: info.Imbalance,
		Stall:     info.Stall,
	}
	e.collectTrace(ctx, q, terms, out, nil, m)
	return out, nil
}
