package wikisearch_test

import (
	"context"
	"fmt"
	"strings"

	"wikisearch"
)

// ExampleEngine_Search builds a minimal knowledge graph and runs a keyword
// query; the top answer is the Central Graph connecting all keywords.
func ExampleEngine_Search() {
	b := wikisearch.NewBuilder()
	sql := b.AddNode("SQL", "query language for relational databases")
	hub := b.AddNode("Query language", "")
	sparql := b.AddNode("SPARQL", "RDF query language")
	xq := b.AddNode("XQuery", "XML query language")
	b.AddEdgeNamed(sql, hub, "instance of")
	b.AddEdgeNamed(sparql, hub, "instance of")
	b.AddEdgeNamed(xq, hub, "instance of")
	g, _ := b.Build()

	eng, _ := wikisearch.NewEngine(g, wikisearch.EngineOptions{AvgDistance: 2})
	res, _ := eng.Search(context.Background(), wikisearch.Query{Text: "xml rdf sql", TopK: 1})

	a := res.Answers[0]
	fmt.Println("central:", a.CentralLabel)
	for _, n := range a.Nodes[1:] {
		fmt.Printf("%s {%s}\n", n.Label, strings.Join(n.Keywords, ","))
	}
	// Output:
	// central: Query language
	// SQL {sql}
	// SPARQL {rdf}
	// XQuery {xml}
}

// ExampleImportNTriples loads RDF data and reports what was imported.
func ExampleImportNTriples() {
	const nt = `<http://kb/Q1> <http://www.w3.org/2000/01/rdf-schema#label> "SPARQL" .
<http://kb/Q1> <http://kb/p/designedFor> <http://kb/Q2> .
<http://kb/Q2> <http://www.w3.org/2000/01/rdf-schema#label> "RDF" .
`
	g, stats, _ := wikisearch.ImportNTriples(strings.NewReader(nt))
	fmt.Printf("%d nodes, %d edges, %d labels\n", g.NumNodes(), g.NumEdges(), stats.Labels)
	// Output:
	// 2 nodes, 1 edges, 2 labels
}
