// Command wikisearch runs keyword queries against a knowledge-base dump,
// either one-shot (-q) or as an interactive prompt.
//
// Usage:
//
//	wikisearch -kb wiki2017-sim.wskb -q "sql rdf knowledge base"
//	wikisearch -kb wiki2017-sim.wskb -alpha 0.4 -k 10 -variant gpu
//	wikisearch -kb wiki2017-sim.wskb            # interactive
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wikisearch"
)

func main() {
	var (
		kbPath  = flag.String("kb", "", "knowledge-base dump produced by wikigen (required)")
		query   = flag.String("q", "", "one-shot query (interactive prompt when empty)")
		topk    = flag.Int("k", 20, "top-k answers")
		alpha   = flag.Float64("alpha", 0.1, "activation preference α")
		threads = flag.Int("threads", 0, "Tnum (0 = GOMAXPROCS)")
		variant = flag.String("variant", "cpu", "cpu | cpu-d | gpu | seq | banks1 | banks2")
		verbose = flag.Bool("v", false, "print full answer graphs")
		dotOut  = flag.String("dot", "", "write the top answer as Graphviz DOT to this file")
	)
	flag.Parse()
	if *kbPath == "" {
		fmt.Fprintln(os.Stderr, "wikisearch: -kb is required (generate one with wikigen)")
		os.Exit(2)
	}

	t0 := time.Now()
	eng, err := wikisearch.LoadEngine(*kbPath, wikisearch.EngineOptions{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s: %d nodes, %d edges, A=%.2f (%v)\n",
		eng.Name(), eng.Graph().NumNodes(), eng.Graph().NumEdges(),
		eng.AvgDistance(), time.Since(t0).Round(time.Millisecond))

	run := func(q string) {
		switch *variant {
		case "banks1", "banks2":
			full, err := eng.Search(context.Background(), wikisearch.Query{
				Text: q, TopK: *topk, Variant: wikisearch.BANKS,
				Bidirectional: *variant == "banks2", MaxVisits: 500000,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			res := full.Banks
			fmt.Printf("%d trees in %v (%d nodes visited)\n", len(res.Trees), res.Elapsed.Round(time.Microsecond), res.Visited)
			for i, t := range res.Trees {
				fmt.Printf("%2d. [%.3f] root: %s (%d nodes)\n", i+1, t.Score, t.RootLabel, len(t.Nodes))
			}
			return
		}
		var v wikisearch.Variant
		switch *variant {
		case "cpu":
			v = wikisearch.CPUPar
		case "cpu-d":
			v = wikisearch.CPUParD
		case "gpu":
			v = wikisearch.GPUPar
		case "seq":
			v = wikisearch.Sequential
		default:
			fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
			return
		}
		res, err := eng.Search(context.Background(), wikisearch.Query{
			Text: q, TopK: *topk, Alpha: *alpha, Threads: *threads, Variant: v,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		fmt.Printf("terms=%v  d=%d  candidates=%d  total=%v\n",
			res.Terms, res.Depth, res.Candidates, res.Total.Round(time.Microsecond))
		for name, d := range res.Phases {
			fmt.Printf("  %-26s %v\n", name+":", d.Round(time.Microsecond))
		}
		for i := range res.Answers {
			a := &res.Answers[i]
			fmt.Printf("%2d. [%.4f] %s (depth %d, %d nodes, %d edges, %d pruned)\n",
				i+1, a.Score, a.CentralLabel, a.Depth, len(a.Nodes), len(a.Edges), a.PrunedNodes)
			if *verbose {
				printAnswer(a)
			}
		}
		if *dotOut != "" && len(res.Answers) > 0 {
			f, err := os.Create(*dotOut) //wikisearch:volatile best-effort visualization output, not engine state
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			if err := res.Answers[0].WriteDOT(f); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			fmt.Printf("wrote %s (render with: dot -Tsvg %s -o answer.svg)\n", *dotOut, *dotOut)
		}
	}

	if *query != "" {
		run(*query)
		return
	}
	fmt.Println("interactive mode — enter keyword queries, empty line to quit")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			break
		}
		run(line)
	}
}

func printAnswer(a *wikisearch.Answer) {
	for _, n := range a.Nodes {
		mark := "   "
		if n.IsCentral {
			mark = " * "
		}
		kw := ""
		if len(n.Keywords) > 0 {
			kw = " {" + strings.Join(n.Keywords, ",") + "}"
		}
		fmt.Printf("    %s%-40s w=%.3f%s\n", mark, n.Label, n.Weight, kw)
	}
	for _, e := range a.Edges {
		dir := "->"
		if !e.Forward {
			dir = "<-"
		}
		fmt.Printf("      %d %s %d  (%s) via %v\n", e.From, dir, e.To, e.Rel, e.Keywords)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wikisearch:", err)
	os.Exit(1)
}
