// Command wikilint runs the repository's static-analysis suite (package
// internal/analysis) over the given package patterns and reports findings.
//
// Usage:
//
//	wikilint [-list] [patterns ...]
//
// Patterns are directory paths relative to the current module, "./..." by
// default. The command exits 0 when the tree is clean, 1 when any analyzer
// reports a finding, and 2 on load or usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"wikisearch/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: wikilint [-list] [patterns ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wikilint: %v\n", err)
		os.Exit(2)
	}
	loadErrs := 0
	for _, pkg := range prog.Packages {
		for _, e := range pkg.Errs {
			fmt.Fprintf(os.Stderr, "wikilint: %s: %v\n", pkg.Path, e)
			loadErrs++
		}
	}
	if loadErrs > 0 {
		os.Exit(2)
	}

	diags := analysis.RunAnalyzers(prog, analyzers)
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "wikilint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
