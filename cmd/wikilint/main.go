// Command wikilint runs the repository's static-analysis suite (package
// internal/analysis) over the given package patterns and reports findings.
//
// Usage:
//
//	wikilint [-list] [-format text|json|sarif|github] [-nocache] [-cache-dir dir] [patterns ...]
//
// Patterns are directory paths relative to the current module, "./..." by
// default. The command exits 0 when the tree is clean, 1 when any analyzer
// reports a finding, and 2 on load or usage errors.
//
// Results are cached under a content hash of the module source (every .go
// file plus go.mod, the pattern list, the analyzer set and the Go version),
// so a warm run skips loading and type-checking entirely; -nocache forces a
// fresh analysis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"wikisearch/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	format := flag.String("format", "text", "output format: text, json, sarif, or github (workflow annotations)")
	nocache := flag.Bool("nocache", false, "bypass the result cache and re-analyze")
	cacheDir := flag.String("cache-dir", analysis.DefaultCacheDir(), "result cache directory")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: wikilint [-list] [-format text|json|sarif|github] [-nocache] [-cache-dir dir] [patterns ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	render, ok := formatters[*format]
	if !ok {
		fmt.Fprintf(os.Stderr, "wikilint: unknown -format %q (text, json, sarif, github)\n", *format)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	key := ""
	if modDir, err := analysis.FindModuleDir("."); err == nil {
		if k, err := analysis.CacheKey(modDir, patterns, analyzers); err == nil {
			key = k
		}
	}
	if !*nocache && key != "" {
		if diags, hit := analysis.LookupCache(*cacheDir, key); hit {
			report(render, diags)
			return
		}
	}

	prog, err := analysis.LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wikilint: %v\n", err)
		os.Exit(2)
	}
	loadErrs := 0
	for _, pkg := range prog.Packages {
		for _, e := range pkg.Errs {
			fmt.Fprintf(os.Stderr, "wikilint: %s: %v\n", pkg.Path, e)
			loadErrs++
		}
	}
	if loadErrs > 0 {
		os.Exit(2)
	}

	diags := analysis.ResolveDiagnostics(prog, analysis.RunAnalyzers(prog, analyzers))
	if key != "" {
		analysis.SaveCache(*cacheDir, key, diags) // best-effort
	}
	report(render, diags)
}

// report renders the findings and exits 1 when there are any.
func report(render func([]analysis.CachedDiagnostic), diags []analysis.CachedDiagnostic) {
	render(diags)
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "wikilint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

var formatters = map[string]func([]analysis.CachedDiagnostic){
	"text":   renderText,
	"json":   renderJSON,
	"sarif":  renderSARIF,
	"github": renderGitHub,
}

func renderText(diags []analysis.CachedDiagnostic) {
	for _, d := range diags {
		fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	}
}

func renderJSON(diags []analysis.CachedDiagnostic) {
	if diags == nil {
		diags = []analysis.CachedDiagnostic{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(diags)
}

// renderGitHub emits GitHub Actions workflow commands, which the runner
// turns into inline PR annotations.
func renderGitHub(diags []analysis.CachedDiagnostic) {
	esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	escProp := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	for _, d := range diags {
		fmt.Printf("::error file=%s,line=%d,col=%d,title=wikilint/%s::%s\n",
			escProp.Replace(d.File), d.Line, d.Col, escProp.Replace(d.Analyzer), esc.Replace(d.Message))
	}
	renderText(diags) // keep the log readable alongside the annotations
}

// SARIF 2.1.0, the minimal subset GitHub code scanning ingests.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string     `json:"id"`
	ShortDescription sarifDText `json:"shortDescription"`
}

type sarifDText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifDText      `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func renderSARIF(diags []analysis.CachedDiagnostic) {
	rules := []sarifRule{}
	seen := map[string]bool{}
	for _, a := range analysis.All() {
		if !seen[a.Name] {
			seen[a.Name] = true
			rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifDText{a.Doc}})
		}
	}
	results := []sarifResult{}
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifDText{d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: d.File},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "wikilint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(log)
}
