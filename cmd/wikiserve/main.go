// Command wikiserve exposes the engine as an HTTP JSON service — the
// reproduction of the paper's online WikiSearch demo. See internal/server
// for the endpoints.
//
// Usage:
//
//	wikiserve -kb wiki2017-sim.wskb -addr :8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"wikisearch"
	"wikisearch/internal/server"
)

func main() {
	var (
		kbPath = flag.String("kb", "", "knowledge-base dump produced by wikigen (required)")
		addr   = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	if *kbPath == "" {
		fmt.Fprintln(os.Stderr, "wikiserve: -kb is required")
		os.Exit(2)
	}
	eng, err := wikisearch.LoadEngine(*kbPath, wikisearch.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("wikiserve: %s (%d nodes, %d edges) on %s",
		eng.Name(), eng.Graph().NumNodes(), eng.Graph().NumEdges(), *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(eng),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
