// Command wikiserve exposes the engine as an HTTP JSON service — the
// reproduction of the paper's online WikiSearch demo, hardened with
// request deadlines, concurrency limiting, result caching and a
// Prometheus metrics endpoint. See internal/server for the endpoints.
//
// Usage:
//
//	wikiserve -kb wiki2017-sim.wskb -addr :8080 \
//	    -timeout 5s -max-inflight 64 -cache 256
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wikisearch"
	"wikisearch/internal/server"
)

func main() {
	var (
		kbPath      = flag.String("kb", "", "knowledge-base dump produced by wikigen (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request search deadline (<=0 disables)")
		maxInFlight = flag.Int("max-inflight", 64, "max concurrent searches before fast-fail 503 (<=0 disables)")
		cacheSize   = flag.Int("cache", 256, "query-result cache entries (<=0 disables)")
		batchWindow = flag.Duration("batch-window", 200*time.Microsecond,
			"coalescing window for shared-frontier query batching (<=0 disables)")
		batchCols = flag.Int("batch-columns", 8, "max keyword columns per batch")
		slowQuery = flag.Duration("slow-query", 500*time.Millisecond,
			"searches slower than this get a structured slow-query log line and land in the /v1/debug/traces slow ring (<=0 disables)")
		shards = flag.Int("shards", 0,
			"partition the graph into N edge-cut shards and serve CPU-Par/Sequential searches on the in-process sharded runtime (<=1 disables)")
		mutate = flag.Bool("mutate", false,
			"accept live graph mutations via POST /v1/mutate (single-writer, epoch-snapshotted; mutually exclusive with -shards)")
		compactAfter = flag.Int("compact-after", 4096,
			"delta size in mutation ops at which the background compactor folds the delta into a fresh base snapshot (<=0 disables auto-compaction; requires -mutate)")
		debugAddr = flag.String("debug-addr", "",
			"private listen address for net/http/pprof profiling endpoints (empty disables)")
		grace = flag.Duration("grace", 10*time.Second, "graceful shutdown drain window")
	)
	flag.Parse()
	if *kbPath == "" {
		fmt.Fprintln(os.Stderr, "wikiserve: -kb is required")
		os.Exit(2)
	}
	t0 := time.Now()
	eng, err := wikisearch.LoadEngine(*kbPath, wikisearch.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	info := eng.LoadInfo()
	log.Printf("wikiserve: loaded %s in %v (format=v%d mode=%s mapped=%.1fMB file=%.1fMB)",
		*kbPath, time.Since(t0).Round(time.Millisecond), info.Format, info.Mode,
		float64(info.MappedBytes)/(1<<20), float64(info.FileBytes)/(1<<20))
	if *shards > 1 {
		t1 := time.Now()
		if err := eng.EnableSharding(*shards); err != nil {
			log.Fatal(err)
		}
		st, _ := eng.ShardStats()
		log.Printf("wikiserve: partitioned into %d edge-cut shards in %v (%d cut edges)",
			*shards, time.Since(t1).Round(time.Millisecond), st.CutEdges)
	}
	cfg := server.Config{
		Timeout:      *timeout,
		MaxInFlight:  *maxInFlight,
		CacheSize:    *cacheSize,
		BatchWindow:  *batchWindow,
		BatchColumns: *batchCols,
		SlowQuery:    *slowQuery,
		Logger:       log.Default(),
	}
	// The flag convention is <=0 disables; Config uses negative for that
	// and 0 for defaults, so map explicitly.
	if *timeout <= 0 {
		cfg.Timeout = -1
	}
	if *maxInFlight <= 0 {
		cfg.MaxInFlight = -1
	}
	if *cacheSize <= 0 {
		cfg.CacheSize = -1
	}
	if *batchWindow <= 0 {
		cfg.BatchWindow = -1
	}
	if *slowQuery <= 0 {
		cfg.SlowQuery = -1
	}
	if *debugAddr != "" {
		// pprof stays off the public mux: it leaks internals and can stall
		// the process, so it binds its own (typically loopback) address.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() { //wikisearch:daemon debug listener intentionally serves for the process lifetime
			log.Printf("wikiserve: pprof on %s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				log.Printf("wikiserve: debug listener: %v", err)
			}
		}()
	}
	log.Printf("wikiserve: %s (%d nodes, %d edges) on %s (timeout=%v max-inflight=%d cache=%d batch-window=%v)",
		eng.Name(), eng.Graph().NumNodes(), eng.Graph().NumEdges(), *addr,
		*timeout, *maxInFlight, *cacheSize, *batchWindow)
	h := server.NewWithConfig(eng, cfg)
	if *mutate {
		after := *compactAfter
		if after <= 0 {
			after = -1
		}
		if err := h.EnableMutation(wikisearch.MutatorOptions{CompactAfterOps: after}); err != nil {
			log.Fatal(err)
		}
		defer h.Close()
		log.Printf("wikiserve: live mutations enabled on POST /v1/mutate (compact-after=%d)", *compactAfter)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("wikiserve: shutting down, draining for up to %v", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("wikiserve: shutdown: %v", err)
			os.Exit(1)
		}
		log.Print("wikiserve: bye")
	}
}
