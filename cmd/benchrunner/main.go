// Command benchrunner regenerates the paper's tables and figures on the
// synthetic datasets. Each experiment prints the same rows/series the paper
// reports (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
// paper-vs-measured record).
//
// Usage:
//
//	benchrunner -exp all
//	benchrunner -exp exp1 -dataset wiki2018-sim -queries 50
//	benchrunner -exp table2,fig3,fig11
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"wikisearch/internal/bench"
	"wikisearch/internal/blinks"
)

func main() {
	var (
		exp           = flag.String("exp", "all", "comma-separated experiments: table2,fig3,exp1,exp2,exp3,exp4,table4,table5,fig11,fig12,ablation,blinks,scaling,core,batch,obs,startup,shard,mutate or 'all' (blinks, scaling, core, batch, obs, startup, shard and mutate are opt-in)")
		dataset       = flag.String("dataset", "wiki2017-sim", "dataset for single-dataset experiments (exp1..exp4)")
		queries       = flag.Int("queries", 10, "queries averaged per setting (paper: 50)")
		threads       = flag.Int("threads", 8, "Tnum for efficiency experiments (paper default: 30)")
		visits        = flag.Int("banks-visits", 100000, "BANKS-II visit cap per query (analogue of the paper's 500s timeout)")
		seed          = flag.Int64("seed", 1, "workload seed")
		coreOut       = flag.String("core-out", "BENCH_core.json", "output path for the core kernel benchmark (-exp core)")
		batchOut      = flag.String("batch-out", "BENCH_batch.json", "output path for the query-batching benchmark (-exp batch)")
		obsOut        = flag.String("obs-out", "BENCH_obs.json", "output path for the tracing-overhead benchmark (-exp obs)")
		clients       = flag.Int("clients", 32, "concurrent clients for -exp batch, -exp obs and -exp mutate")
		startupOut    = flag.String("startup-out", "BENCH_startup.json", "output path for the cold-start benchmark (-exp startup)")
		startupPreset = flag.String("startup-preset", "wiki2018-sim", "dataset preset for -exp startup")
		shardOut      = flag.String("shard-out", "BENCH_shard.json", "output path for the sharded-search benchmark (-exp shard)")
		shardPreset   = flag.String("shard-preset", "", "dataset preset for -exp shard (default wiki2017-sim)")
		shardCounts   = flag.String("shard-counts", "", "comma-separated shard counts for -exp shard (default 2,4,8)")
		mutateOut     = flag.String("mutate-out", "BENCH_mutate.json", "output path for the live-mutation benchmark (-exp mutate)")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	cfg := bench.Config{
		QueriesPerSetting: *queries,
		Threads:           *threads,
		BanksMaxVisits:    *visits,
		Seed:              *seed,
	}

	// Single-dataset env for exp1..exp4 and the per-dataset figures.
	need1 := all || want["exp1"] || want["exp2"] || want["exp3"] || want["exp4"] || want["fig3"]
	needBoth := all || want["table2"] || want["table4"] || want["table5"] || want["fig11"] || want["fig12"]

	var envs map[string]*bench.Env = map[string]*bench.Env{}
	getEnv := func(name string) *bench.Env {
		if e, ok := envs[name]; ok {
			return e
		}
		fmt.Fprintf(os.Stderr, "preparing %s...\n", name)
		t0 := time.Now()
		c := cfg
		c.Preset = name
		e, err := bench.NewEnv(c)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "  %s ready in %v (%d nodes, %d edges, A=%.2f)\n",
			name, time.Since(t0).Round(time.Millisecond),
			e.KB.Graph.NumNodes(), e.KB.Graph.NumEdges(), e.Eng.AvgDistance())
		envs[name] = e
		return e
	}

	var env *bench.Env
	if need1 {
		env = getEnv(*dataset)
	}
	var both []*bench.Env
	if needBoth {
		both = []*bench.Env{getEnv("wiki2017-sim"), getEnv("wiki2018-sim")}
	}

	show := func(t bench.Table) { fmt.Println(t.String()) }

	if all || want["table2"] {
		t, _ := bench.Table2(both)
		show(t)
	}
	if all || want["fig3"] {
		t, _ := env.Fig3(nil)
		show(t)
	}
	if all || want["exp1"] {
		tables, _, err := env.Exp1VaryKnum(nil)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			show(t)
		}
	}
	if all || want["exp2"] {
		t, _, err := env.Exp2VaryTopk(nil)
		if err != nil {
			fatal(err)
		}
		show(t)
	}
	if all || want["exp3"] {
		t, _, err := env.Exp3VaryAlpha(nil)
		if err != nil {
			fatal(err)
		}
		show(t)
	}
	if all || want["exp4"] {
		tables, _, err := env.Exp4VaryThreads(nil)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			show(t)
		}
	}
	if all || want["table4"] {
		t, _ := bench.Table4(both, 8)
		show(t)
	}
	if all || want["table5"] {
		show(bench.Table5(both))
	}
	if all || want["fig11"] {
		tables, _, err := both[0].Effectiveness(nil, nil)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			show(t)
		}
	}
	if all || want["ablation"] {
		if env == nil {
			env = getEnv(*dataset)
		}
		t, _, err := env.AblationLevelCover(env.Cfg.Knum)
		if err != nil {
			fatal(err)
		}
		show(t)
		t, _, err = env.AblationActivation(env.Cfg.Knum)
		if err != nil {
			fatal(err)
		}
		show(t)
		bt, err := env.AblationBaselines(env.Cfg.Knum)
		if err != nil {
			fatal(err)
		}
		show(bt)
		// §VI-B's repetition anecdote, quantified on the rare-keyword query.
		rt := bench.Table{
			ID:     "ablation/repetition",
			Title:  "Top-20 answer repetition on " + env.KB.Name + " (Q11, §VI-B)",
			Header: []string{"system", "mean pairwise Jaccard", "max node recurrence", "answers"},
		}
		reps, err := env.Repetition("Q11", 20)
		if err != nil {
			fatal(err)
		}
		for _, r := range reps {
			rt.Rows = append(rt.Rows, []string{
				r.System,
				fmt.Sprintf("%.3f", r.MeanJaccard),
				fmt.Sprintf("%d", r.MaxNodeRecurrence),
				fmt.Sprintf("%d", r.Answers),
			})
		}
		show(rt)
	}
	if want["blinks"] { // opt-in feasibility study (not part of 'all')
		if env == nil {
			env = getEnv(*dataset)
		}
		rep, err := blinks.Feasibility(env.KB.Graph, env.Ix, []int{50, 100, 200}, 0)
		if err != nil {
			fatal(err)
		}
		t := bench.Table{
			ID:     "blinks",
			Title:  "BLINKS precomputation feasibility on " + env.KB.Name + " (§II's exclusion, measured)",
			Header: []string{"indexed terms", "build time", "index bytes"},
		}
		for _, p := range rep.Points {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", p.Terms),
				fmt.Sprintf("%.2fs", p.BuildSeconds),
				fmt.Sprintf("%.1fMB", float64(p.Bytes)/(1<<20)),
			})
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d (full vocab, projected)", rep.FullVocabTerms),
			fmt.Sprintf("%.0fs", rep.ProjectedSeconds),
			fmt.Sprintf("%.1fGB", float64(rep.ProjectedBytes)/(1<<30)),
		})
		show(t)
	}
	if want["core"] { // opt-in kernel micro-benchmark (not part of 'all')
		fmt.Fprintln(os.Stderr, "running core kernel benchmark...")
		rep, err := bench.CoreBench(bench.CoreBenchConfig{})
		if err != nil {
			fatal(err)
		}
		show(rep.Table())
		show(rep.SpeedupTable())
		if err := bench.WriteCoreBench(*coreOut, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *coreOut)
	}
	if want["batch"] { // opt-in throughput benchmark (not part of 'all')
		fmt.Fprintln(os.Stderr, "running query-batching benchmark...")
		rep, err := bench.BatchBench(bench.BatchBenchConfig{Clients: *clients, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		show(bench.BatchBenchTable(rep))
		if err := bench.WriteBatchBench(*batchOut, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *batchOut)
	}
	if want["obs"] { // opt-in tracing-overhead benchmark (not part of 'all')
		fmt.Fprintln(os.Stderr, "running tracing-overhead benchmark...")
		rep, err := bench.ObsBench(bench.ObsBenchConfig{Clients: *clients, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		show(bench.ObsBenchTable(rep))
		if err := bench.WriteObsBench(*obsOut, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *obsOut)
	}
	if want["startup"] { // opt-in cold-start benchmark (not part of 'all')
		fmt.Fprintln(os.Stderr, "running cold-start benchmark...")
		rep, err := bench.StartupBench(bench.StartupBenchConfig{Preset: *startupPreset, Seed: *seed, Threads: *threads})
		if err != nil {
			fatal(err)
		}
		show(rep.Table())
		if err := bench.WriteStartupBench(*startupOut, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *startupOut)
	}
	if want["shard"] { // opt-in sharded-search benchmark (not part of 'all')
		fmt.Fprintln(os.Stderr, "running sharded-search benchmark...")
		scfg := bench.ShardBenchConfig{Preset: *shardPreset, Seed: *seed}
		if *shardCounts != "" {
			for _, s := range strings.Split(*shardCounts, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || n < 1 {
					fatal(fmt.Errorf("bad -shard-counts entry %q", s))
				}
				scfg.Shards = append(scfg.Shards, n)
			}
		}
		rep, err := bench.ShardBench(scfg)
		if err != nil {
			fatal(err)
		}
		show(bench.ShardBenchTable(rep))
		if err := bench.WriteShardBench(*shardOut, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *shardOut)
	}
	if want["mutate"] { // opt-in live-mutation benchmark (not part of 'all')
		fmt.Fprintln(os.Stderr, "running live-mutation benchmark...")
		rep, err := bench.MutateBench(bench.MutateBenchConfig{Clients: *clients, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		show(bench.MutateBenchTable(rep))
		if err := bench.WriteMutateBench(*mutateOut, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *mutateOut)
	}
	if want["scaling"] { // opt-in: generates several graphs (not part of 'all')
		t, _, err := bench.Scaling(cfg, nil)
		if err != nil {
			fatal(err)
		}
		show(t)
	}
	if all || want["fig12"] {
		tables, _, err := both[1].Effectiveness(nil, nil)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			show(t)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrunner:", err)
	os.Exit(1)
}
