// Command wikigen generates a synthetic Wikidata-like knowledge base,
// computes its degree-of-summary weights, and writes a binary dump that
// cmd/wikisearch and cmd/wikiserve load.
//
// Usage:
//
//	wikigen -preset wiki2017-sim -out wiki2017-sim.wskb
//	wikigen -nodes 500000 -avg-degree 9 -seed 99 -out big.wskb
//	wikigen -import wikidata-dump.json.gz -out wikidata.wskb
//	wikigen -import-nt export.nt -out kb.wskb
//	wikigen -convert old.wskb -format v3 -out old.v3.wskb
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wikisearch"
)

func main() {
	var (
		preset   = flag.String("preset", "wiki2017-sim", "dataset preset: wiki2017-sim, wiki2018-sim, tiny-sim, or empty for custom")
		out      = flag.String("out", "", "output dump path (default <preset>.wskb)")
		format   = flag.String("format", "v3", "dump format: v3 (mmap-able, instant startup) or v2 (streamed)")
		nodes    = flag.Int("nodes", 0, "override node count")
		degree   = flag.Float64("avg-degree", 0, "override average degree")
		vocab    = flag.Int("vocab", 0, "override vocabulary size")
		seed     = flag.Int64("seed", 0, "override generation seed")
		name     = flag.String("name", "", "override dataset name")
		importWD = flag.String("import", "", "import a Wikidata JSON dump (.json or .json.gz) instead of generating")
		importNT = flag.String("import-nt", "", "import an RDF N-Triples file instead of generating")
		convert  = flag.String("convert", "", "convert an existing dump to -format instead of generating")
	)
	flag.Parse()

	df, err := parseFormat(*format)
	if err != nil {
		fatal(err)
	}

	if *convert != "" {
		if *out == "" {
			fatal(fmt.Errorf("-convert requires -out"))
		}
		if err := convertDump(*convert, *out, df); err != nil {
			fatal(err)
		}
		return
	}

	var (
		g      *wikisearch.Graph
		dsName string
	)
	t0 := time.Now()
	switch {
	case *importWD != "":
		gr, st, err := wikisearch.ImportWikidataFile(*importWD)
		if err != nil {
			fatal(err)
		}
		g, dsName = gr, *importWD
		fmt.Printf("imported %s: %d entities, %d properties, %d/%d claims as edges (%d skipped, %d dangling) in %v\n",
			*importWD, st.Entities, st.Properties, st.Edges, st.Claims, st.Skipped, st.Dangling,
			time.Since(t0).Round(time.Millisecond))
	case *importNT != "":
		f, err := os.Open(*importNT)
		if err != nil {
			fatal(err)
		}
		gr, st, err := wikisearch.ImportNTriples(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		g, dsName = gr, *importNT
		fmt.Printf("imported %s: %d triples, %d edges, %d labels in %v\n",
			*importNT, st.Triples, st.Edges, st.Labels, time.Since(t0).Round(time.Millisecond))
	default:
		ds, err := wikisearch.GenerateDataset(wikisearch.DatasetConfig{
			Preset:             *preset,
			Name:               *name,
			Nodes:              *nodes,
			AvgDegree:          *degree,
			VocabSize:          *vocab,
			Seed:               *seed,
			PlantEffectiveness: true,
		})
		if err != nil {
			fatal(err)
		}
		g, dsName = ds.Graph, ds.Name
		fmt.Printf("generated %s: %d nodes, %d edges in %v\n",
			ds.Name, g.NumNodes(), g.NumEdges(), time.Since(t0).Round(time.Millisecond))
	}
	if *name != "" {
		dsName = *name
	}

	t0 = time.Now()
	eng, err := wikisearch.NewEngine(g, wikisearch.EngineOptions{})
	if err != nil {
		fatal(err)
	}
	eng.SetName(dsName)
	fmt.Printf("prepared engine in %v: A=%.2f (±%.2f), %d keywords\n",
		time.Since(t0).Round(time.Millisecond), eng.AvgDistance(), eng.DistanceDeviation(), eng.VocabSize())

	path := *out
	if path == "" {
		path = *preset + ".wskb"
	}
	if err := eng.SaveFormat(path, df); err != nil {
		fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%s, %.1f MB)\n", path, *format, float64(st.Size())/(1<<20))
}

// convertDump re-encodes an existing dump (any version) into the requested
// format and verifies the result end to end before reporting success.
func convertDump(in, out string, df wikisearch.DumpFormat) error {
	t0 := time.Now()
	eng, err := wikisearch.LoadEngine(in, wikisearch.EngineOptions{})
	if err != nil {
		return err
	}
	defer eng.Close()
	info := eng.LoadInfo()
	fmt.Printf("loaded %s (v%d, %s) in %v: %d nodes, %d edges\n",
		in, info.Format, info.Mode, time.Since(t0).Round(time.Millisecond),
		eng.Graph().NumNodes(), eng.Graph().NumEdges())

	t0 = time.Now()
	if err := eng.SaveFormat(out, df); err != nil {
		return err
	}
	if err := wikisearch.VerifyDumpFile(out); err != nil {
		return fmt.Errorf("converted dump failed verification: %w", err)
	}
	st, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote and verified %s (v%d, %.1f MB) in %v\n",
		out, int(df), float64(st.Size())/(1<<20), time.Since(t0).Round(time.Millisecond))
	return nil
}

func parseFormat(s string) (wikisearch.DumpFormat, error) {
	switch strings.ToLower(s) {
	case "v2", "2":
		return wikisearch.FormatV2, nil
	case "v3", "3":
		return wikisearch.FormatV3, nil
	default:
		return 0, fmt.Errorf("unknown format %q (want v2 or v3)", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wikigen:", err)
	os.Exit(1)
}
