package wikisearch

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders an answer graph in Graphviz DOT format: the Central
// Node is drawn as a double circle, keyword nodes are filled and labeled
// with the keywords they contain, and hitting-path edges carry their
// relationship names. Pipe the output through `dot -Tsvg` to visualize the
// paper's Fig. 1-style answers.
func (a *Answer) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph answer {\n")
	fmt.Fprintf(&b, "  rankdir=LR;\n")
	fmt.Fprintf(&b, "  label=%q;\n", fmt.Sprintf("central: %s (score %.4f, depth %d)", a.CentralLabel, a.Score, a.Depth))
	fmt.Fprintf(&b, "  node [fontname=\"Helvetica\"];\n")
	for _, n := range a.Nodes {
		attrs := []string{fmt.Sprintf("label=%q", nodeCaption(n))}
		if n.IsCentral {
			attrs = append(attrs, "shape=doublecircle", "style=bold")
		} else if len(n.Keywords) > 0 {
			attrs = append(attrs, "shape=box", "style=filled", "fillcolor=lightyellow")
		} else {
			attrs = append(attrs, "shape=ellipse")
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", n.ID, strings.Join(attrs, ", "))
	}
	for _, e := range a.Edges {
		// Draw the underlying directed edge in its stored orientation.
		from, to := e.From, e.To
		if !e.Forward {
			from, to = to, from
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", from, to, e.Rel)
	}
	fmt.Fprintf(&b, "}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func nodeCaption(n AnswerNode) string {
	if len(n.Keywords) == 0 {
		return n.Label
	}
	return fmt.Sprintf("%s\n{%s}", n.Label, strings.Join(n.Keywords, ", "))
}
