package wikisearch

import (
	"context"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"

	"wikisearch/internal/text"
)

// TestFormatEquivalence is the v3 acceptance suite: an engine loaded from
// a memory-mapped v3 dump must answer every query bit-identically to the
// same engine loaded from the v2 dump, across variants and thread counts.
// Queries are randomized from real node labels so term matching, frontier
// expansion and scoring all run over the zero-copy views.
func TestFormatEquivalence(t *testing.T) {
	ds, err := GenerateDataset(DatasetConfig{Preset: "tiny-sim", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds.Graph, EngineOptions{Threads: 2, DistanceSamplePairs: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetName(ds.Name)

	dir := t.TempDir()
	v2Path := filepath.Join(dir, "kb.v2.wskb")
	v3Path := filepath.Join(dir, "kb.v3.wskb")
	if err := eng.SaveFormat(v2Path, FormatV2); err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveFormat(v3Path, FormatV3); err != nil {
		t.Fatal(err)
	}

	e2, err := LoadEngine(v2Path, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	e3, err := LoadEngine(v3Path, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()

	if info := e2.LoadInfo(); info.Format != 2 || info.Mode != "decode" {
		t.Fatalf("v2 load info = %+v", info)
	}
	info := e3.LoadInfo()
	if info.Format != 3 {
		t.Fatalf("v3 load info = %+v", info)
	}
	if runtime.GOOS == "linux" || runtime.GOOS == "darwin" {
		if info.Mode != "mmap" || info.MappedBytes <= 0 {
			t.Fatalf("v3 not mmap-loaded: %+v", info)
		}
	}

	for _, q := range equivalenceQueries(t, e2, 25) {
		for _, v := range []Variant{CPUPar, Sequential, CPUParD} {
			for _, threads := range []int{1, runtime.GOMAXPROCS(0)} {
				if v == Sequential && threads != 1 {
					continue // Sequential forces one thread anyway
				}
				q.Variant, q.Threads = v, threads
				r2, err2 := e2.Search(context.Background(), q)
				r3, err3 := e3.Search(context.Background(), q)
				if (err2 == nil) != (err3 == nil) {
					t.Fatalf("%q v%d t%d: v2 err %v, v3 err %v", q.Text, v, threads, err2, err3)
				}
				if err2 != nil {
					continue
				}
				sameResult(t, q.Text, r2, r3)
			}
		}
	}
}

// equivalenceQueries derives n randomized keyword queries from the
// engine's own node labels, so most of them actually match terms.
func equivalenceQueries(t *testing.T, e *Engine, n int) []Query {
	t.Helper()
	g := e.Graph()
	rng := rand.New(rand.NewSource(99))
	qs := make([]Query, 0, n)
	for len(qs) < n {
		var words []string
		for k := 0; k < 1+rng.Intn(3); k++ {
			v := NodeID(rng.Intn(g.NumNodes()))
			terms := text.Normalize(g.Label(v))
			if len(terms) > 0 {
				words = append(words, terms[rng.Intn(len(terms))])
			}
		}
		if len(words) == 0 {
			continue
		}
		text := ""
		for i, w := range words {
			if i > 0 {
				text += " "
			}
			text += w
		}
		qs = append(qs, Query{Text: text, TopK: 1 + rng.Intn(5)})
	}
	return qs
}
