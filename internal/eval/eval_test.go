package eval

import (
	"math"
	"testing"

	"wikisearch/internal/gen"
	"wikisearch/internal/graph"
	"wikisearch/internal/text"
)

func coreOnlyOracle() *Oracle {
	return NewOracle(&gen.PlantedQuery{
		ID:    "Q1",
		Cores: []graph.NodeID{10, 11, 12},
	}, nil)
}

func TestRelevantByCore(t *testing.T) {
	o := coreOnlyOracle()
	if o.QueryID() != "Q1" {
		t.Fatalf("QueryID = %q", o.QueryID())
	}
	if o.Witnesses() != 3 {
		t.Fatalf("Witnesses = %d", o.Witnesses())
	}
	if !o.Relevant([]graph.NodeID{1, 2, 11}) {
		t.Fatal("answer containing a core judged irrelevant")
	}
	if o.Relevant([]graph.NodeID{1, 2, 3}) {
		t.Fatal("answer with no witness judged relevant")
	}
	if o.Relevant(nil) {
		t.Fatal("empty answer judged relevant")
	}
}

func TestRelevantByOrganicCoOccurrence(t *testing.T) {
	// Node 0 contains both keywords (witness); nodes 1 and 2 contain one
	// each (isolated fragments).
	b := graph.NewBuilder()
	b.AddNode("relational database systems", "") // witness: both keywords
	b.AddNode("relational algebra", "")          // only "relational"
	b.AddNode("database tuning", "")             // only "database"
	g, _ := b.Build()
	ix := text.BuildIndex(g)
	o := NewOracle(&gen.PlantedQuery{
		ID:       "Qx",
		Keywords: []string{"relational", "database"},
	}, ix)
	if o.Witnesses() != 1 {
		t.Fatalf("Witnesses = %d, want 1", o.Witnesses())
	}
	if !o.Relevant([]graph.NodeID{0, 1}) {
		t.Fatal("answer with the co-occurrence node judged irrelevant")
	}
	if o.Relevant([]graph.NodeID{1, 2}) {
		t.Fatal("fragment-stitched answer judged relevant (the BANKS failure mode)")
	}
}

func TestPrecisionAtK(t *testing.T) {
	o := coreOnlyOracle()
	answers := [][]graph.NodeID{
		{10},    // relevant
		{1, 2},  // not
		{11, 3}, // relevant
		{4},     // not
	}
	if p := o.PrecisionAtK(answers, 4); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("P@4 = %v, want 0.5", p)
	}
	if p := o.PrecisionAtK(answers, 1); p != 1 {
		t.Fatalf("P@1 = %v, want 1", p)
	}
	if p := o.PrecisionAtK(answers, 2); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("P@2 = %v, want 0.5", p)
	}
	// k beyond list length judges over what exists.
	if p := o.PrecisionAtK(answers[:1], 10); p != 1 {
		t.Fatalf("P@10 over 1 answer = %v, want 1", p)
	}
	if p := o.PrecisionAtK(nil, 5); p != 0 {
		t.Fatalf("P over empty = %v, want 0", p)
	}
}

func TestIntersectInto(t *testing.T) {
	dst := map[graph.NodeID]struct{}{}
	intersectInto([]graph.NodeID{1, 3, 5, 7}, []graph.NodeID{2, 3, 7, 9}, dst)
	if len(dst) != 2 {
		t.Fatalf("intersection = %v", dst)
	}
	if _, ok := dst[3]; !ok {
		t.Fatal("missing 3")
	}
	if _, ok := dst[7]; !ok {
		t.Fatal("missing 7")
	}
}
