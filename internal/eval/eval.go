// Package eval implements the effectiveness methodology of §VI-B: top-k
// precision — "the percentage of relevant answers that appear in top-k
// results" — with the paper's manual relevance judgment replaced by a
// mechanical restatement of what the paper reports its judges rewarded:
//
//   - answers carrying a node where several query keywords genuinely
//     co-occur ("phrases appear together") are relevant;
//   - answers stitched from isolated keyword fragments via hub nodes (the
//     decoy pattern BANKS-II falls for: "Statistical relational learning"
//     split across unrelated nodes) are irrelevant.
//
// Concretely, an answer is relevant iff it contains a *witness*: a node
// whose text contains at least two distinct query keywords, or one of the
// generator's planted relevant cores (which are themselves multi-keyword
// co-occurrence nodes wired into a compact relevant neighborhood).
package eval

import (
	"wikisearch/internal/gen"
	"wikisearch/internal/graph"
	"wikisearch/internal/text"
)

// Oracle judges answers for one effectiveness query.
type Oracle struct {
	id        string
	witnesses map[graph.NodeID]struct{}
}

// NewOracle builds the oracle for a planted query: the witness set is the
// union of the planted cores and every organic node where two or more
// distinct query keywords co-occur (computed by intersecting the keywords'
// posting lists).
func NewOracle(p *gen.PlantedQuery, ix *text.Index) *Oracle {
	o := &Oracle{id: p.ID, witnesses: make(map[graph.NodeID]struct{})}
	for _, c := range p.Cores {
		o.witnesses[c] = struct{}{}
	}
	if ix == nil {
		return o
	}
	postings := make([][]graph.NodeID, 0, len(p.Keywords))
	for _, kw := range p.Keywords {
		postings = append(postings, ix.Lookup(kw))
	}
	for i := 0; i < len(postings); i++ {
		for j := i + 1; j < len(postings); j++ {
			intersectInto(postings[i], postings[j], o.witnesses)
		}
	}
	return o
}

// intersectInto adds the intersection of two sorted posting lists to dst.
func intersectInto(a, b []graph.NodeID, dst map[graph.NodeID]struct{}) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst[a[i]] = struct{}{}
			i++
			j++
		}
	}
}

// QueryID returns the query's id ("Q1" …).
func (o *Oracle) QueryID() string { return o.id }

// Witnesses returns the number of relevance witnesses.
func (o *Oracle) Witnesses() int { return len(o.witnesses) }

// Relevant judges one answer by its node set: relevant iff it contains a
// witness.
func (o *Oracle) Relevant(nodes []graph.NodeID) bool {
	for _, v := range nodes {
		if _, ok := o.witnesses[v]; ok {
			return true
		}
	}
	return false
}

// PrecisionAtK returns the top-k precision of a ranked answer list, each
// answer given as its node set. Fewer than k answers are judged over the
// answers present (the paper's convention for sparse result lists); an
// empty list scores 0.
func (o *Oracle) PrecisionAtK(answers [][]graph.NodeID, k int) float64 {
	if k < len(answers) {
		answers = answers[:k]
	}
	if len(answers) == 0 {
		return 0
	}
	rel := 0
	for _, a := range answers {
		if o.Relevant(a) {
			rel++
		}
	}
	return float64(rel) / float64(len(answers))
}
