package core

import (
	"math/bits"
	"sync/atomic"
	"time"

	"wikisearch/internal/graph"
	"wikisearch/internal/trace"
)

// BoundaryMsg is one cross-shard activation: during expansion a shard that
// hits a ghost copy of a remote node batches the hit columns into its
// workers' out buffers instead of enqueuing the ghost. Node is a shard-local
// id — the sender's ghost-local id when drained, rewritten to the owner
// shard's local id by the coordinator's precomputed ghost routing tables
// before ApplyBoundary sees it. Keeping both hops shard-local means the
// whole exchange path probes only compact per-ghost tables, never a
// full-graph array.
type BoundaryMsg struct {
	Node graph.NodeID // shard-local id (sender's ghost, then owner's node)
	Cols uint64       // keyword columns hit (bit i ⇔ column i)
}

// BeginShard prepares the state as one shard of a sharded search: in is the
// shard-local input (subgraph, gathered activation levels, local source
// lists — possibly empty for keywords with no sources on this shard) and
// owned is the count of owned local ids (larger ids are ghosts). Unlike
// BottomUp it performs no input validation (shard inputs intentionally break
// the solo invariants: no weights, possibly empty source lists) and runs no
// levels — the coordinator drives ShardEnqueue/ShardIdentify/ShardExpand
// level-synchronously across all shards, because no shard may terminate on
// local evidence alone: an empty local frontier still receives boundary
// activations from its peers.
func (ss *SearchState) BeginShard(in Input, p Params, owned int) {
	ss.ensurePool(p.Threads)
	s := &ss.st
	s.buf = &ss.buf
	ss.buf.Reset()
	t0 := trace.Now()
	s.prepareCommon(in, p, ss.pool)
	s.localN = owned
	s.initSources()
	t1 := trace.Now()
	s.prof.Phases[PhaseInit] = time.Duration(t1 - t0)
	ss.buf.Record(0, trace.KindInit, t0, t1, -1, 0, int64(len(in.Sources)), 0)
}

// ShardEnqueue runs the sequential frontier-enqueue step for the current
// level and returns the local frontier size. The global frontier is the
// disjoint union over shards (ghosts are never enqueued), so the coordinator
// sums the returns to evaluate the solo loop's exhaustion condition exactly.
func (ss *SearchState) ShardEnqueue() int {
	s := &ss.st
	t0 := trace.Now()
	s.enqueueFrontiers()
	t1 := trace.Now()
	s.prof.Phases[PhaseEnqueue] += time.Duration(t1 - t0)
	ss.buf.Record(0, trace.KindEnqueue, t0, t1, s.level, 1, int64(len(s.frontier)), 0)
	return len(s.frontier)
}

// ShardIdentify runs Central Node identification for the current level and
// returns the newly identified centrals in local frontier order (ascending
// local id, which for owned nodes is ascending global id — the k-way merge
// across shards therefore reproduces the solo identification order). The
// returned slice aliases state and is valid until the next level.
func (ss *SearchState) ShardIdentify() []graph.NodeID {
	s := &ss.st
	t0 := trace.Now()
	gr := &s.groups[0]
	prev := len(gr.centrals)
	s.identifyCentrals()
	t1 := trace.Now()
	s.prof.Phases[PhaseIdentify] += time.Duration(t1 - t0)
	s.prof.Levels++
	ss.buf.Record(0, trace.KindIdentify, t0, t1, s.level, 1, int64(len(s.frontier)), int64(len(gr.centrals)-prev))
	return gr.centrals[prev:]
}

// ShardExpand runs the expansion step for the current level and advances the
// shard to the next one. Hits on owned nodes are enqueued locally; hits on
// ghosts land in the per-worker out buffers for DrainBoundary.
func (ss *SearchState) ShardExpand() {
	s := &ss.st
	t0 := trace.Now()
	prevEdges := s.prof.EdgesScanned
	s.expand()
	t1 := trace.Now()
	s.prof.Phases[PhaseExpand] += time.Duration(t1 - t0)
	ss.buf.Record(0, trace.KindExpand, t0, t1, s.level, 1, int64(len(s.frontier)), s.prof.EdgesScanned-prevEdges)
	s.level++
}

// DrainBoundary appends every boundary activation recorded by the last
// expansion to dst, resets the workers' out buffers, and returns the
// extended slice. Messages from different workers may interleave in any
// order; application is order-independent (idempotent same-level writes
// behind a newly-hit filter).
//
//wikisearch:hotpath
func (ss *SearchState) DrainBoundary(dst []BoundaryMsg) []BoundaryMsg {
	for i := range ss.st.scratch {
		sc := &ss.st.scratch[i]
		dst = append(dst, sc.out...)
		sc.out = sc.out[:0]
	}
	return dst
}

// ApplyBoundary applies remote activations to this (owner) shard before the
// level's enqueue: level is the hitting level the senders recorded (their
// expansion level + 1, i.e. the coordinator's current level). Each message's
// Node has already been rewritten to this shard's local id by the
// coordinator's ghost routing tables. The newly mask drops columns another
// shard or the local expansion already hit — possibly at an earlier level —
// so the monotone ∞→level matrix writes are never corrupted and duplicate
// messages are harmless. Runs sequentially on the shard (the coordinator
// parallelizes across shards, whose states are disjoint), so the frontier
// marks go through worker 0's scratch.
//
//wikisearch:hotpath
func (ss *SearchState) ApplyBoundary(msgs []BoundaryMsg, level int) {
	s := &ss.st
	sc := &s.scratch[0]
	hit := uint8(level)
	one := s.m.WordsPerRow() == 1
	for _, m := range msgs {
		lo := m.Node
		newly := m.Cols & s.m.MissMask(lo)
		if newly == 0 {
			continue
		}
		if one {
			s.m.MarkHitsWord(lo, newly, hit)
		} else {
			for b := newly; b != 0; b &= b - 1 {
				s.m.MarkHit(lo, bits.TrailingZeros64(b), hit)
			}
		}
		s.markFrontier(sc, lo)
	}
}

// EndShard drops the shard input references so a pooled shard state does not
// pin the topology's slices between queries.
func (ss *SearchState) EndShard() { ss.st.in = Input{} }

// BeginMerge prepares the state as the global merge target of a sharded
// search: full-graph matrix and contains masks over the solo input, but no
// source marking and no bottom-up loop — the matrix content arrives via
// AbsorbShard and the central set via AddCentral, after which FinishMerge
// runs the unchanged top-down extraction so answers are bit-identical to the
// solo path. p must already have defaults resolved.
func (ss *SearchState) BeginMerge(in Input, p Params) {
	ss.ensurePool(p.Threads)
	s := &ss.st
	s.buf = &ss.buf
	ss.buf.Reset()
	s.prepareCommon(in, p, ss.pool)
	for i := range in.Sources {
		bit := uint64(1) << uint(i)
		for _, v := range in.Sources[i] {
			s.contains[v] |= bit
		}
	}
}

// infWord is a matrix word whose every cell is Infinity — the post-Reset
// fill, i.e. a row (or row word) no expansion ever touched.
const infWord = ^uint64(0)

// AbsorbShard scatters a shard's owned matrix rows into the global merge
// matrix. Rows are word-aligned and ownership is disjoint across shards, so
// the coordinator can absorb all shards in parallel; the word copies go
// through atomics to honor the matrix's access contract (the shards' own
// expansion has already joined, so the values are quiescent). Words still
// at the all-Infinity fill are skipped: the merge matrix was reset to
// Infinity, so only hit rows pay the scattered global store.
//
//wikisearch:hotpath
func (ss *SearchState) AbsorbShard(sh *SearchState, l2g []graph.NodeID, owned int) {
	dst := ss.st.m.Words()
	src := sh.st.m.Words()
	wpr := ss.st.m.WordsPerRow()
	if wpr == 1 {
		for lo := 0; lo < owned; lo++ {
			if w := atomic.LoadUint64(&src[lo]); w != infWord {
				atomic.StoreUint64(&dst[l2g[lo]], w)
			}
		}
		return
	}
	for lo := 0; lo < owned; lo++ {
		db := int(l2g[lo]) * wpr
		sb := lo * wpr
		for w := 0; w < wpr; w++ {
			if v := atomic.LoadUint64(&src[sb+w]); v != infWord {
				atomic.StoreUint64(&dst[db+w], v)
			}
		}
	}
}

// AddCentral appends one Central Node (global id) identified at the given
// level. The coordinator calls it in the solo identification order: level
// by level, ascending global id within a level.
func (ss *SearchState) AddCentral(v graph.NodeID, level int) {
	gr := &ss.st.groups[0]
	gr.centralAt[v] = int32(level)
	gr.centrals = append(gr.centrals, v)
}

// FinishMerge runs the top-down extraction over the absorbed global state
// and assembles the search result; depth is the level the coordinator's
// monotone termination fixed (identical to the solo loop's d by
// construction). The caller owns profile assembly — the returned Profile
// carries only this state's top-down timing.
func (ss *SearchState) FinishMerge(depth int) (*Result, error) {
	s := &ss.st
	t0 := trace.Now()
	answers, err := s.topDown()
	t1 := trace.Now()
	if err != nil {
		s.in = Input{}
		return nil, err
	}
	s.prof.Phases[PhaseTopDown] = time.Duration(t1 - t0)
	ss.buf.Record(0, trace.KindTopDown, t0, t1, -1, 1, int64(len(answers)), int64(len(s.groups[0].centrals)))
	res := &Result{
		Answers:           answers,
		DepthD:            depth,
		CentralCandidates: len(s.groups[0].centrals),
		Profile:           s.prof,
	}
	s.in = Input{}
	return res, nil
}

// CentralCount returns the number of Central Nodes collected so far (merge
// states; the coordinator's monotone termination bound).
func (ss *SearchState) CentralCount() int { return len(ss.st.groups[0].centrals) }
