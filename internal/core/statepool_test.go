package core

import (
	"fmt"
	"runtime"
	"testing"
)

// TestKernelsEquivalent: the flattened expansion kernel and the per-column
// reference kernel return byte-identical results, at Tnum=1 and at
// Tnum=GOMAXPROCS.
func TestKernelsEquivalent(t *testing.T) {
	threads := []int{1, runtime.GOMAXPROCS(0)}
	for seed := int64(400); seed < 440; seed++ {
		in, p := randomScenario(t, seed)
		for _, tn := range threads {
			pf := p
			pf.Threads = tn
			pf.Kernel = KernelFlat
			flat, err := Search(in, pf)
			if err != nil {
				t.Fatal(err)
			}
			pr := pf
			pr.Kernel = KernelReference
			ref, err := Search(in, pr)
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, fmt.Sprintf("seed %d flat vs reference T=%d", seed, tn), ref, flat)
			if flat.Profile.EdgesScanned > ref.Profile.EdgesScanned {
				t.Fatalf("seed %d T=%d: flat kernel scanned %d edges > reference %d",
					seed, tn, flat.Profile.EdgesScanned, ref.Profile.EdgesScanned)
			}
		}
	}
}

// TestPooledStateReuse: one SearchState serving many queries — different
// graph sizes, keyword counts, thread counts, with repeats — returns exactly
// what a fresh single-use state returns for every one of them. This is the
// equivalence property the engine's state pool rests on.
func TestPooledStateReuse(t *testing.T) {
	ss := NewSearchState()
	defer ss.Close()
	threads := []int{1, 2, 4, 8}
	for i := 0; i < 120; i++ {
		// 30 distinct scenarios, each served 4 times from the warm state at
		// varying thread counts (so the pool is also rebuilt under reuse).
		seed := int64(500 + i%30)
		in, p := randomScenario(t, seed)
		p.Threads = threads[(i/30+i)%len(threads)]
		got, err := ss.Search(in, p)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Search(in, p)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, fmt.Sprintf("query %d (seed %d, T=%d)", i, seed, p.Threads), fresh, got)
	}
}

// TestPooledStateKernelReuse repeats the reuse property with the reference
// kernel interleaved, so kernel switching on a warm state is also covered.
func TestPooledStateKernelReuse(t *testing.T) {
	ss := NewSearchState()
	defer ss.Close()
	for i := 0; i < 40; i++ {
		in, p := randomScenario(t, int64(700+i%10))
		p.Threads = 1 + i%4
		if i%2 == 1 {
			p.Kernel = KernelReference
		}
		got, err := ss.Search(in, p)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Search(in, p)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, fmt.Sprintf("query %d", i), fresh, got)
	}
}

// TestSearchPathAllocationFree is the zero-allocation guard: on a warm
// SearchState, the whole kernel path — parameter resolution, state reset,
// source initialization and every bottom-up level — performs zero heap
// allocations, sequentially and with a worker pool.
func TestSearchPathAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	for _, tn := range []int{1, 4} {
		t.Run(fmt.Sprintf("threads=%d", tn), func(t *testing.T) {
			in, p := randomScenario(t, 7)
			p.Threads = tn
			ss := NewSearchState()
			defer ss.Close()
			// Tracing on: the span record path must be allocation-free too.
			ss.SetTracing(true)
			for i := 0; i < 3; i++ { // warm buffers, workers and caps
				if _, err := ss.Search(in, p); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(50, func() {
				if _, err := ss.BottomUp(in, p); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("warm bottom-up stage allocates %.1f times per query, want 0", allocs)
			}
		})
	}
}

// TestSearchStateClose: a closed state's pool degrades to serial execution
// rather than failing, and Close is idempotent.
func TestSearchStateClose(t *testing.T) {
	ss := NewSearchState()
	in, p := randomScenario(t, 11)
	p.Threads = 4
	want, err := ss.Search(in, p)
	if err != nil {
		t.Fatal(err)
	}
	ss.Close()
	ss.Close()
	got, err := Search(in, p)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "after close", want, got)
}
