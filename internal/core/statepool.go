package core

import (
	"time"

	"wikisearch/internal/parallel"
)

// SearchState owns every allocation of the two-stage search — the
// node-keyword matrix, both identifier bitsets, the contains/centralAt
// arrays, frontier buffers, per-worker scratch, and a persistent worker
// pool. A state is reused across queries: after the first few searches warm
// its buffers to the graph's size, the bottom-up stage runs without
// allocating at all (the top-down stage still allocates the answers it
// returns). A SearchState is not safe for concurrent use; serve concurrent
// queries from a pool of states (see the engine's sync.Pool). A SearchState
// must not be copied: a copy aliases the owned search structures.
//
//wikisearch:nocopy
type SearchState struct {
	st   state
	pool *parallel.Pool
}

// NewSearchState returns an empty reusable state. Buffers and the worker
// pool are sized lazily by the first Search.
func NewSearchState() *SearchState { return &SearchState{} }

// Close releases the worker pool's goroutines. A dropped SearchState is
// also cleaned up by the pool's finalizer, so sync.Pool eviction does not
// leak goroutines; Close just makes teardown deterministic.
func (ss *SearchState) Close() {
	if ss.pool != nil {
		ss.pool.Close()
		ss.pool = nil
	}
}

// ensurePool (re)builds the worker pool when the thread count changes; it
// is a no-op on repeat queries with the same Tnum.
func (ss *SearchState) ensurePool(threads int) {
	if ss.pool == nil || ss.pool.Workers() != threads {
		if ss.pool != nil {
			ss.pool.Close()
		}
		ss.pool = parallel.NewPool(threads)
	}
}

// BottomUp runs parameter resolution, state preparation and the bottom-up
// stage only, returning the depth d of the top-(k,d) problem. This is the
// part of the search that is allocation-free on a warm state; it exists for
// kernel benchmarks and allocation guards — Search is the real entry point.
func (ss *SearchState) BottomUp(in Input, p Params) (int, error) {
	p = p.Defaults()
	if err := in.Validate(); err != nil {
		return 0, err
	}
	ss.ensurePool(p.Threads)
	s := &ss.st

	t0 := time.Now()
	s.prepare(in, p, ss.pool)
	s.prof.Phases[PhaseInit] = time.Since(t0)
	return s.bottomUp()
}

// Profile returns the profile of the state's last (possibly partial)
// search.
func (ss *SearchState) Profile() Profile { return ss.st.prof }

// Search runs the full two-stage algorithm on the reusable state: CPU-Par
// when p.Threads > 1, the sequential baseline when p.Threads == 1. The
// worker pool persists across calls and is only rebuilt when p.Threads
// changes.
func (ss *SearchState) Search(in Input, p Params) (*Result, error) {
	p = p.Defaults()
	d, err := ss.BottomUp(in, p)
	s := &ss.st
	if err != nil {
		s.in = Input{}
		return nil, err
	}

	t0 := time.Now()
	answers, err := s.topDown()
	if err != nil {
		s.in = Input{}
		return nil, err
	}
	s.prof.Phases[PhaseTopDown] = time.Since(t0)

	res := &Result{
		Answers:           answers,
		DepthD:            d,
		CentralCandidates: len(s.groups[0].centrals),
		Profile:           s.prof,
	}
	// Drop the query's input references so a pooled state does not pin the
	// caller's graph and source slices between queries.
	s.in = Input{}
	return res, nil
}
