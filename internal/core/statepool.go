package core

import (
	"time"

	"wikisearch/internal/parallel"
	"wikisearch/internal/trace"
)

// SearchState owns every allocation of the two-stage search — the
// node-keyword matrix, both identifier bitsets, the contains/centralAt
// arrays, frontier buffers, per-worker scratch, and a persistent worker
// pool. A state is reused across queries: after the first few searches warm
// its buffers to the graph's size, the bottom-up stage runs without
// allocating at all (the top-down stage still allocates the answers it
// returns). A SearchState is not safe for concurrent use; serve concurrent
// queries from a pool of states (see the engine's sync.Pool). A SearchState
// must not be copied: a copy aliases the owned search structures.
//
//wikisearch:nocopy
type SearchState struct {
	st   state
	pool *parallel.Pool

	// buf is the state's trace buffer: one event ring per pool worker,
	// recorded into during the search (when enabled) and drained by the
	// engine afterwards. Owned here so its rings share the state's
	// lifecycle and the warm record path never allocates.
	buf trace.Buffer
}

// NewSearchState returns an empty reusable state. Buffers and the worker
// pool are sized lazily by the first Search.
func NewSearchState() *SearchState { return &SearchState{} }

// Close releases the worker pool's goroutines. A dropped SearchState is
// also cleaned up by the pool's finalizer, so sync.Pool eviction does not
// leak goroutines; Close just makes teardown deterministic.
func (ss *SearchState) Close() {
	if ss.pool != nil {
		ss.pool.Close()
		ss.pool = nil
	}
}

// SetTracing enables or disables span recording for subsequent searches on
// this state. Rings are sized by the first search's pool setup.
func (ss *SearchState) SetTracing(on bool) { ss.buf.SetEnabled(on) }

// DrainTrace appends the events recorded by the state's last search to dst
// and returns the extended slice plus the count lost to ring overflow.
func (ss *SearchState) DrainTrace(dst []trace.Event) ([]trace.Event, int) {
	return ss.buf.Drain(dst)
}

// ensurePool (re)builds the worker pool when the thread count changes; it
// is a no-op on repeat queries with the same Tnum. The trace buffer is
// (re)sized alongside so every worker has its own event ring.
func (ss *SearchState) ensurePool(threads int) {
	if ss.pool == nil || ss.pool.Workers() != threads {
		if ss.pool != nil {
			ss.pool.Close()
		}
		ss.pool = parallel.NewPool(threads)
		ss.buf.Ensure(ss.pool.Workers())
		ss.pool.SetTrace(&ss.buf)
	}
}

// BottomUp runs parameter resolution, state preparation and the bottom-up
// stage only, returning the depth d of the top-(k,d) problem. This is the
// part of the search that is allocation-free on a warm state — including
// span recording when tracing is enabled; it exists for kernel benchmarks
// and allocation guards — Search is the real entry point.
func (ss *SearchState) BottomUp(in Input, p Params) (int, error) {
	p = p.Defaults()
	if err := in.Validate(); err != nil {
		return 0, err
	}
	ss.ensurePool(p.Threads)
	s := &ss.st
	s.buf = &ss.buf
	ss.buf.Reset()

	t0 := trace.Now()
	s.prepare(in, p, ss.pool)
	t1 := trace.Now()
	s.prof.Phases[PhaseInit] = time.Duration(t1 - t0)
	ss.buf.Record(0, trace.KindInit, t0, t1, -1, 0, int64(len(in.Sources)), 0)
	d, err := s.bottomUp()
	ss.buf.Record(0, trace.KindBottomUp, t0, trace.Now(), -1, 0, s.prof.FrontierTotal, s.prof.EdgesScanned)
	return d, err
}

// Profile returns the profile of the state's last (possibly partial)
// search.
func (ss *SearchState) Profile() Profile { return ss.st.prof }

// Search runs the full two-stage algorithm on the reusable state: CPU-Par
// when p.Threads > 1, the sequential baseline when p.Threads == 1. The
// worker pool persists across calls and is only rebuilt when p.Threads
// changes.
func (ss *SearchState) Search(in Input, p Params) (*Result, error) {
	p = p.Defaults()
	d, err := ss.BottomUp(in, p)
	s := &ss.st
	if err != nil {
		s.in = Input{}
		return nil, err
	}

	t0 := trace.Now()
	answers, err := s.topDown()
	t1 := trace.Now()
	if err != nil {
		s.in = Input{}
		return nil, err
	}
	s.prof.Phases[PhaseTopDown] = time.Duration(t1 - t0)
	ss.buf.Record(0, trace.KindTopDown, t0, t1, -1, 1, int64(len(answers)), int64(len(s.groups[0].centrals)))

	res := &Result{
		Answers:           answers,
		DepthD:            d,
		CentralCandidates: len(s.groups[0].centrals),
		Profile:           s.prof,
	}
	// Drop the query's input references so a pooled state does not pin the
	// caller's graph and source slices between queries.
	s.in = Input{}
	return res, nil
}
