package core

import (
	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
)

// Infinity marks a never-hit cell in the node-keyword matrix (the paper's ∞;
// one byte per hitting level, §V-B).
const Infinity = parallel.Infinity

// Matrix is the node-keyword matrix M: mij records the hitting level of
// node v_i w.r.t. BFS instance B_j. It is the only structure the expansion
// kernel writes concurrently, and all concurrent writes to one cell write
// the same value (Theorem V.2), so atomic byte stores suffice — no locks.
type Matrix struct {
	cells *parallel.ByteArray
	q     int
}

// NewMatrix allocates an n×q matrix filled with Infinity.
func NewMatrix(n, q int) *Matrix {
	return &Matrix{cells: parallel.NewByteArray(n*q, Infinity), q: q}
}

// Q returns the number of keyword columns.
func (m *Matrix) Q() int { return m.q }

// Get returns the hitting level of node v for keyword j.
func (m *Matrix) Get(v graph.NodeID, j int) uint8 { return m.cells.Get(int(v)*m.q + j) }

// Set stores the hitting level of node v for keyword j.
func (m *Matrix) Set(v graph.NodeID, j int, level uint8) { m.cells.Set(int(v)*m.q+j, level) }

// Hit reports whether node v has been hit by BFS instance j.
func (m *Matrix) Hit(v graph.NodeID, j int) bool { return m.Get(v, j) != Infinity }

// AllHit reports whether node v has been hit by every BFS instance — the
// Central Node condition of Definition 3.
func (m *Matrix) AllHit(v graph.NodeID) bool {
	base := int(v) * m.q
	for j := 0; j < m.q; j++ {
		if m.cells.Get(base+j) == Infinity {
			return false
		}
	}
	return true
}

// MaxHit returns the largest finite hitting level of node v — the Central
// Graph depth of Eq. 1 when v is central. The second return is false when
// some instance never hit v.
func (m *Matrix) MaxHit(v graph.NodeID) (uint8, bool) {
	var mx uint8
	base := int(v) * m.q
	for j := 0; j < m.q; j++ {
		h := m.cells.Get(base + j)
		if h == Infinity {
			return 0, false
		}
		if h > mx {
			mx = h
		}
	}
	return mx, true
}

// Row copies node v's hitting levels into dst (len q).
func (m *Matrix) Row(v graph.NodeID, dst []uint8) {
	base := int(v) * m.q
	for j := 0; j < m.q; j++ {
		dst[j] = m.cells.Get(base + j)
	}
}

// ByteSize returns the matrix footprint in bytes, for the storage accounting
// of Table IV.
func (m *Matrix) ByteSize() int64 { return int64(m.cells.Len()) }
