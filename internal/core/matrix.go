package core

import (
	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
)

// Infinity marks a never-hit cell in the node-keyword matrix (the paper's ∞;
// one byte per hitting level, §V-B).
const Infinity = parallel.Infinity

// Matrix is the node-keyword matrix M: mij records the hitting level of
// node v_i w.r.t. BFS instance B_j. It is the only structure the expansion
// kernel writes concurrently, and all concurrent writes to one cell write
// the same value (Theorem V.2), so atomic byte stores suffice — no locks.
//
// Rows are padded to a multiple of eight cells so every row starts on a
// uint64 word boundary: MissMask and AllHit then test a q ≤ 8 row with one
// atomic load, and larger rows with ⌈q/8⌉ loads, never straddling words.
// Padding cells stay at Infinity and are masked out of every query. A
// Matrix must not be copied: a copy aliases the shared cell storage while
// forking the dimension fields.
//
//wikisearch:nocopy
type Matrix struct {
	cells   *parallel.ByteArray
	q       int
	stride  int    // bytes per row: q rounded up to a multiple of 8
	colMask uint64 // low q bits
}

// rowStride returns q rounded up to a whole number of 8-byte words.
func rowStride(q int) int { return (q + 7) &^ 7 }

// NewMatrix allocates an n×q matrix filled with Infinity.
func NewMatrix(n, q int) *Matrix {
	m := &Matrix{}
	m.dimension(n, q, true)
	return m
}

// Reset re-dimensions the matrix to n×q and refills it with Infinity,
// reusing the cell storage when capacity suffices — the state pool's
// allocation-free steady state depends on it. Requires exclusive access.
func (m *Matrix) Reset(n, q int) {
	m.dimension(n, q, false)
}

func (m *Matrix) dimension(n, q int, fresh bool) {
	m.q = q
	m.stride = rowStride(q)
	m.colMask = ^uint64(0) >> uint(64-q)
	if fresh {
		m.cells = parallel.NewByteArray(n*m.stride, Infinity)
	} else {
		m.cells.Resize(n*m.stride, Infinity)
	}
}

// Q returns the number of keyword columns.
func (m *Matrix) Q() int { return m.q }

// Get returns the hitting level of node v for keyword j.
//
//wikisearch:hotpath
func (m *Matrix) Get(v graph.NodeID, j int) uint8 { return m.cells.Get(int(v)*m.stride + j) }

// Set stores the hitting level of node v for keyword j.
//
//wikisearch:hotpath
func (m *Matrix) Set(v graph.NodeID, j int, level uint8) { m.cells.Set(int(v)*m.stride+j, level) }

// MarkHit stores the hitting level of node v for keyword j with a single
// atomic AND (no CAS loop). Valid only for the search's ∞ → level transition
// — the cell must currently be Infinity or already hold level.
//
//wikisearch:hotpath
func (m *Matrix) MarkHit(v graph.NodeID, j int, level uint8) {
	m.cells.SetMonotone(int(v)*m.stride+j, level)
}

// MarkHitsWord stores level into every column of node v named by colMask
// (bit j → column j) with one atomic AND — the whole visit of a neighbor,
// across all multiplexed queries, in a single operation. Valid only under
// MarkHit's ∞ → level precondition and only when the row fits one word
// (q ≤ 8, i.e. WordsPerRow() == 1).
//
//wikisearch:hotpath
func (m *Matrix) MarkHitsWord(v graph.NodeID, colMask uint64, level uint8) {
	m.cells.SetMonotoneFlags(int(v), colMask, level)
}

// Hit reports whether node v has been hit by BFS instance j.
//
//wikisearch:hotpath
func (m *Matrix) Hit(v graph.NodeID, j int) bool { return m.Get(v, j) != Infinity }

// AllHit reports whether node v has been hit by every BFS instance — the
// Central Node condition of Definition 3.
//
//wikisearch:hotpath
func (m *Matrix) AllHit(v graph.NodeID) bool { return m.MissMask(v) == 0 }

// MaxHit returns the largest finite hitting level of node v — the Central
// Graph depth of Eq. 1 when v is central. The second return is false when
// some instance never hit v.
//
//wikisearch:hotpath
func (m *Matrix) MaxHit(v graph.NodeID) (uint8, bool) {
	var mx uint8
	base := int(v) * m.stride
	for j := 0; j < m.q; j++ {
		h := m.cells.Get(base + j)
		if h == Infinity {
			return 0, false
		}
		if h > mx {
			mx = h
		}
	}
	return mx, true
}

// Row copies node v's hitting levels into dst (len q) with word-wide loads.
//
//wikisearch:hotpath
func (m *Matrix) Row(v graph.NodeID, dst []uint8) {
	m.cells.LoadRow(int(v)*m.stride, dst)
}

// RowSlice copies node v's hitting levels for columns [off, off+len(dst))
// into dst — the column-group view a batched query's top-down stage reads.
//
//wikisearch:hotpath
func (m *Matrix) RowSlice(v graph.NodeID, off int, dst []uint8) {
	m.cells.LoadRow(int(v)*m.stride+off, dst)
}

// MissMask returns a bitmask with bit j set iff node v has not been hit by
// BFS instance j (cell == Infinity). Thanks to the padded stride one aligned
// word-wide load covers eight columns, so the flattened kernel tests all q
// instances of a neighbor in one or two loads instead of q point reads.
//
//wikisearch:hotpath
func (m *Matrix) MissMask(v graph.NodeID) uint64 {
	wi := int(v) * (m.stride >> 3)
	mask := m.cells.MatchWord(wi, Infinity)
	for k := 1; k < m.stride>>3; k++ {
		mask |= m.cells.MatchWord(wi+k, Infinity) << uint(k*8)
	}
	return mask & m.colMask
}

// WordsPerRow returns the number of uint64 words a padded row spans (1 for
// q ≤ 8 — the common case the expansion kernel specializes for).
//
//wikisearch:hotpath
func (m *Matrix) WordsPerRow() int { return m.stride >> 3 }

// Words exposes the backing words, one row per WordsPerRow() words. Hot
// loops combine it with parallel.MatchFlags to test a whole row per atomic
// load without any call overhead; everything else should use the cell API.
//
//wikisearch:atomicalias
//wikisearch:hotpath
func (m *Matrix) Words() []uint64 { return m.cells.Words() }

// ByteSize returns the matrix footprint in bytes (including row padding),
// for the storage accounting of Table IV.
func (m *Matrix) ByteSize() int64 { return int64(m.cells.Len()) }
