package core

import (
	"fmt"
	"time"

	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
	"wikisearch/internal/trace"
)

// MaxBatchQueries bounds the number of queries one state can multiplex: the
// owner-group attribution packs one bit per query into a byte (see gfid).
const MaxBatchQueries = 8

// BatchQuery is one member of a shared-frontier batch: a prepared query
// plus the per-query knobs that stay exact per query (topK, maxLevel and
// level-cover are evaluated against the query's own column group). Knobs
// that shape the shared expansion — α-derived activation levels, λ, thread
// count, kernel — live in the batch's Params and must be common to all
// members; the engine's batcher only coalesces queries that agree on them.
type BatchQuery struct {
	Terms   []string
	Sources [][]graph.NodeID
	// TopK is k for this query (default 20).
	TopK int
	// MaxLevel bounds this query's BFS depth (default 32).
	MaxLevel int
	// DisableLevelCover skips the §V-C pruning for this query's answers.
	DisableLevelCover bool
}

// BatchInput is a set of prepared queries multiplexed into one bottom-up
// expansion over the same graph, weights and activation levels.
type BatchInput struct {
	G       *graph.Graph
	Weights []float64
	Levels  []uint8 // minimum activation levels for the batch's shared α
	Queries []BatchQuery
}

// Validate rejects structurally impossible batches.
func (b *BatchInput) Validate() error {
	if b.G == nil {
		return fmt.Errorf("core: nil graph")
	}
	n := b.G.NumNodes()
	if len(b.Weights) != n || len(b.Levels) != n {
		return fmt.Errorf("core: weights/levels sized %d/%d, want %d", len(b.Weights), len(b.Levels), n)
	}
	if len(b.Queries) == 0 {
		return fmt.Errorf("core: batch has no queries")
	}
	if len(b.Queries) > MaxBatchQueries {
		return fmt.Errorf("core: %d queries exceeds batch maximum %d", len(b.Queries), MaxBatchQueries)
	}
	cols := 0
	for qi := range b.Queries {
		bq := &b.Queries[qi]
		q := len(bq.Sources)
		if q == 0 {
			return fmt.Errorf("core: batch query %d has no keywords", qi)
		}
		if len(bq.Terms) != q {
			return fmt.Errorf("core: batch query %d has %d terms for %d source sets", qi, len(bq.Terms), q)
		}
		for i, src := range bq.Sources {
			if len(src) == 0 {
				return fmt.Errorf("core: batch query %d keyword %q matches no nodes", qi, bq.Terms[i])
			}
			for _, v := range src {
				if v < 0 || int(v) >= n {
					return fmt.Errorf("core: source node %d out of range", v)
				}
			}
		}
		cols += q
	}
	if cols > MaxKeywords {
		return fmt.Errorf("core: batch spans %d keyword columns; maximum is %d", cols, MaxKeywords)
	}
	return nil
}

// prepareBatch lays the batch out as column groups over a single flattened
// matrix and runs the Initialization phase. The flattened term/source
// buffers are reused across batches so a warm state prepares without
// allocating.
func (s *state) prepareBatch(bin BatchInput, p Params, pool *parallel.Pool) {
	terms := s.batchTerms[:0]
	sources := s.batchSources[:0]
	for qi := range bin.Queries {
		terms = append(terms, bin.Queries[qi].Terms...)
		sources = append(sources, bin.Queries[qi].Sources...)
	}
	s.batchTerms, s.batchSources = terms, sources
	in := Input{G: bin.G, Weights: bin.Weights, Levels: bin.Levels, Terms: terms, Sources: sources}
	s.prepareShared(in, p, pool)
	s.groups = s.groupsBuf[:len(bin.Queries)]
	off := 0
	for qi := range bin.Queries {
		bq := &bin.Queries[qi]
		gr := &s.groups[qi]
		gr.off = off
		gr.q = len(bq.Sources)
		gr.mask = allMask(gr.q) << uint(off)
		gr.topK = bq.TopK
		if gr.topK <= 0 {
			gr.topK = 20
		}
		gr.maxLevel = bq.MaxLevel
		if gr.maxLevel <= 0 || gr.maxLevel > 250 {
			gr.maxLevel = 32
		}
		gr.noLevelCover = bq.DisableLevelCover
		off += gr.q
	}
	s.resetGroupRuntime(bin.G.NumNodes())
	s.initSources()
}

// dropBatchRefs releases the batch's graph and source references so a
// pooled state does not pin them between queries; the buffers' capacity is
// kept for the next batch.
func (s *state) dropBatchRefs() {
	s.in = Input{}
	clear(s.batchTerms)
	clear(s.batchSources)
	s.batchTerms = s.batchTerms[:0]
	s.batchSources = s.batchSources[:0]
}

// BottomUpBatch runs parameter resolution, batch preparation and the shared
// bottom-up stage only. Like BottomUp it is allocation-free on a warm state
// and exists for kernel benchmarks and allocation guards; SearchBatch is
// the real entry point.
func (ss *SearchState) BottomUpBatch(bin BatchInput, p Params) error {
	p = p.Defaults()
	if err := bin.Validate(); err != nil {
		return err
	}
	ss.ensurePool(p.Threads)
	s := &ss.st
	s.buf = &ss.buf
	ss.buf.Reset()

	t0 := trace.Now()
	s.prepareBatch(bin, p, ss.pool)
	t1 := trace.Now()
	s.prof.Phases[PhaseInit] = time.Duration(t1 - t0)
	ss.buf.Record(0, trace.KindInit, t0, t1, -1, 0, int64(len(s.batchSources)), 0)
	_, err := s.bottomUp()
	ss.buf.Record(0, trace.KindBottomUp, t0, trace.Now(), -1, 0, s.prof.FrontierTotal, s.prof.EdgesScanned)
	return err
}

// SearchBatch multiplexes the batch's queries through one shared bottom-up
// expansion, then runs the top-down stage per column group. Results are
// positional (result i answers Queries[i]) and bit-identical to running
// each query alone through Search with the same shared Params and per-query
// knobs — the batch only amortizes traversal work, it never changes
// answers.
func (ss *SearchState) SearchBatch(bin BatchInput, p Params) ([]*Result, error) {
	p = p.Defaults()
	if err := ss.BottomUpBatch(bin, p); err != nil {
		ss.st.dropBatchRefs()
		return nil, err
	}
	s := &ss.st

	t0 := trace.Now()
	answers := make([][]*Answer, len(s.groups))
	for gi := range s.groups {
		g0 := trace.Now()
		a, err := s.topDownGroup(&s.groups[gi])
		if err != nil {
			s.dropBatchRefs()
			return nil, err
		}
		answers[gi] = a
		// Per-group extraction span: this work belongs to exactly one
		// member query, unlike the shared bottom-up spans.
		ss.buf.Record(0, trace.KindTopDown, g0, trace.Now(), -1, 1<<uint(gi),
			int64(len(a)), int64(len(s.groups[gi].centrals)))
	}
	s.prof.Phases[PhaseTopDown] = time.Duration(trace.Now() - t0)

	out := make([]*Result, len(s.groups))
	for gi := range s.groups {
		gr := &s.groups[gi]
		out[gi] = &Result{
			Answers:           answers[gi],
			DepthD:            gr.depth,
			CentralCandidates: len(gr.centrals),
			// The profile describes the shared run; every member reports it.
			Profile: s.prof,
		}
	}
	s.dropBatchRefs()
	return out, nil
}
