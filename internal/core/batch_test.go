package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"

	"wikisearch/internal/graph"
)

// batchScenario builds one shared random graph with nq independent random
// queries over it, all deterministic in seed. It returns the batch input
// plus each member's equivalent solo input and params (identical shared
// knobs, per-query topK). wide forces q=3 per query so a four-query batch
// spans more than eight columns and exercises the multi-word row path.
func batchScenario(t testing.TB, seed int64, nq int, wide bool) (BatchInput, []Input, []Params) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 20 + rng.Intn(60)
	m := n + rng.Intn(3*n)
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("n%d", i), "")
	}
	rels := []graph.RelID{b.Rel("r0"), b.Rel("r1"), b.Rel("r2")}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), rels[rng.Intn(3)])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	levels := make([]uint8, n)
	weights := make([]float64, n)
	for i := range levels {
		levels[i] = uint8(rng.Intn(4))
		weights[i] = float64(rng.Intn(1024)) / 1024
	}
	bin := BatchInput{G: g, Weights: weights, Levels: levels}
	var solos []Input
	var params []Params
	for j := 0; j < nq; j++ {
		q := 1 + rng.Intn(3)
		if wide {
			q = 3
		}
		sources := make([][]graph.NodeID, q)
		terms := make([]string, q)
		for i := range sources {
			terms[i] = fmt.Sprintf("q%dt%d", j, i)
			sz := 1 + rng.Intn(4)
			seen := map[graph.NodeID]bool{}
			for len(sources[i]) < sz {
				v := graph.NodeID(rng.Intn(n))
				if !seen[v] {
					seen[v] = true
					sources[i] = append(sources[i], v)
				}
			}
			sort.Slice(sources[i], func(a, b int) bool { return sources[i][a] < sources[i][b] })
		}
		topK := 1 + rng.Intn(8)
		bin.Queries = append(bin.Queries, BatchQuery{
			Terms: terms, Sources: sources, TopK: topK, MaxLevel: 16,
		})
		solos = append(solos, Input{G: g, Weights: weights, Levels: levels, Terms: terms, Sources: sources})
		params = append(params, Params{TopK: topK, MaxLevel: 16, Threads: 1})
	}
	return bin, solos, params
}

// soloRefs runs every member of the batch alone and returns the reference
// results the batched run must reproduce bit-identically.
func soloRefs(t *testing.T, solos []Input, params []Params) []*Result {
	t.Helper()
	refs := make([]*Result, len(solos))
	for j := range solos {
		r, err := Search(solos[j], params[j])
		if err != nil {
			t.Fatal(err)
		}
		refs[j] = r
	}
	return refs
}

// TestBatchSoloEquivalence is the batch layer's core property: multiplexing
// queries through one shared bottom-up expansion returns, for every member,
// exactly the answers, depth d and central-candidate count its solo search
// produces — across batch sizes, thread counts and a reused pooled state.
func TestBatchSoloEquivalence(t *testing.T) {
	threadCounts := []int{1, runtime.GOMAXPROCS(0)}
	ss := NewSearchState()
	defer ss.Close()
	for seed := int64(400); seed < 436; seed++ {
		nq := 1 + int(seed-400)%4
		bin, solos, params := batchScenario(t, seed, nq, false)
		refs := soloRefs(t, solos, params)
		for _, threads := range threadCounts {
			got, err := ss.SearchBatch(bin, Params{Threads: threads, MaxLevel: 16})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != nq {
				t.Fatalf("seed %d: %d results for %d queries", seed, len(got), nq)
			}
			for j := range got {
				resultsEqual(t, fmt.Sprintf("seed %d T=%d member %d/%d", seed, threads, j, nq), refs[j], got[j])
			}
		}
	}
}

// TestBatchCompositionInvariance: a query's result must not depend on which
// other queries share the state or on its column placement — the full batch,
// the reversed batch and every singleton batch all reproduce the solo runs.
func TestBatchCompositionInvariance(t *testing.T) {
	ss := NewSearchState()
	defer ss.Close()
	for seed := int64(440); seed < 456; seed++ {
		nq := 2 + int(seed-440)%3
		bin, solos, params := batchScenario(t, seed, nq, false)
		refs := soloRefs(t, solos, params)

		rev := BatchInput{G: bin.G, Weights: bin.Weights, Levels: bin.Levels}
		for j := nq - 1; j >= 0; j-- {
			rev.Queries = append(rev.Queries, bin.Queries[j])
		}
		got, err := ss.SearchBatch(rev, Params{Threads: 4, MaxLevel: 16})
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			resultsEqual(t, fmt.Sprintf("seed %d reversed member %d", seed, j), refs[nq-1-j], got[j])
		}

		for j := 0; j < nq; j++ {
			one := BatchInput{G: bin.G, Weights: bin.Weights, Levels: bin.Levels, Queries: bin.Queries[j : j+1]}
			got, err := ss.SearchBatch(one, Params{Threads: 4, MaxLevel: 16})
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, fmt.Sprintf("seed %d singleton %d", seed, j), refs[j], got[0])
		}
	}
}

// TestBatchWideEquivalence covers batches spanning more than eight matrix
// columns, where neighbor rows take the multi-word MissMask path instead of
// the single-word MatchFlags fast path.
func TestBatchWideEquivalence(t *testing.T) {
	ss := NewSearchState()
	defer ss.Close()
	for seed := int64(460); seed < 472; seed++ {
		bin, solos, params := batchScenario(t, seed, 4, true) // 12 columns
		refs := soloRefs(t, solos, params)
		for _, threads := range []int{1, 8} {
			got, err := ss.SearchBatch(bin, Params{Threads: threads, MaxLevel: 16})
			if err != nil {
				t.Fatal(err)
			}
			for j := range got {
				resultsEqual(t, fmt.Sprintf("seed %d wide T=%d member %d", seed, threads, j), refs[j], got[j])
			}
		}
	}
}

// TestBatchInputValidate exercises the structural rejections.
func TestBatchInputValidate(t *testing.T) {
	bin, _, _ := batchScenario(t, 99, 2, false)
	check := func(name string, mutate func(b *BatchInput), want string) {
		t.Helper()
		bad := bin
		bad.Queries = append([]BatchQuery(nil), bin.Queries...)
		mutate(&bad)
		err := bad.Validate()
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: err = %v, want substring %q", name, err, want)
		}
	}
	check("nil graph", func(b *BatchInput) { b.G = nil }, "nil graph")
	check("bad weights", func(b *BatchInput) { b.Weights = b.Weights[:1] }, "weights/levels")
	check("no queries", func(b *BatchInput) { b.Queries = nil }, "no queries")
	check("too many queries", func(b *BatchInput) {
		for len(b.Queries) <= MaxBatchQueries {
			b.Queries = append(b.Queries, b.Queries[0])
		}
	}, "exceeds batch maximum")
	check("no keywords", func(b *BatchInput) {
		b.Queries[0] = BatchQuery{}
	}, "no keywords")
	check("terms mismatch", func(b *BatchInput) {
		q := b.Queries[0]
		q.Terms = q.Terms[:0]
		b.Queries[0] = q
	}, "terms")
	check("empty source set", func(b *BatchInput) {
		q := b.Queries[0]
		q.Sources = append([][]graph.NodeID{nil}, q.Sources...)
		q.Terms = append([]string{"empty"}, q.Terms...)
		b.Queries[0] = q
	}, "matches no nodes")
	check("node out of range", func(b *BatchInput) {
		q := b.Queries[0]
		q.Sources = append([][]graph.NodeID{{graph.NodeID(b.G.NumNodes())}}, q.Sources...)
		q.Terms = append([]string{"oob"}, q.Terms...)
		b.Queries[0] = q
	}, "out of range")

	if err := bin.Validate(); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
}

// TestBatchCancellation: a fired context aborts the batch between levels and
// the error surfaces from SearchBatch.
func TestBatchCancellation(t *testing.T) {
	bin, _, _ := batchScenario(t, 123, 3, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ss := NewSearchState()
	defer ss.Close()
	if _, err := ss.SearchBatch(bin, Params{Threads: 2, MaxLevel: 16, Ctx: ctx}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The state must remain usable after the aborted batch.
	if _, err := ss.SearchBatch(bin, Params{Threads: 2, MaxLevel: 16}); err != nil {
		t.Fatalf("state unusable after cancellation: %v", err)
	}
}

// TestBatchBottomUpAllocationFree: on a warm pooled state the shared
// bottom-up stage — batch preparation, owner-group attribution, expansion,
// identification — must not allocate at all.
func TestBatchBottomUpAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	bin, _, _ := batchScenario(t, 7, 3, false)
	p := Params{Threads: 4, MaxLevel: 16}
	ss := NewSearchState()
	defer ss.Close()
	// Tracing on: the span record path must be allocation-free too.
	ss.SetTracing(true)
	for i := 0; i < 3; i++ {
		if _, err := ss.SearchBatch(bin, p); err != nil {
			t.Fatal(err)
		}
	}
	var err error
	allocs := testing.AllocsPerRun(20, func() {
		err = ss.BottomUpBatch(bin, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("warm batched bottom-up allocates %v per run", allocs)
	}
}
