package core

import (
	"fmt"
	"math/rand"
	"testing"

	"wikisearch/internal/device"
	"wikisearch/internal/graph"
)

// benchScenario builds a mid-size random scenario once per benchmark.
func benchScenario(b *testing.B) (Input, Params) {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	const n, m = 20000, 120000
	gb := graph.NewBuilder()
	for i := 0; i < n; i++ {
		gb.AddNode(fmt.Sprintf("n%d", i), "")
	}
	rels := []graph.RelID{gb.Rel("a"), gb.Rel("b"), gb.Rel("c")}
	for i := 0; i < m; i++ {
		gb.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), rels[rng.Intn(3)])
	}
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	levels := make([]uint8, n)
	weights := make([]float64, n)
	for i := range levels {
		levels[i] = uint8(rng.Intn(4))
		weights[i] = rng.Float64()
	}
	q := 4
	sources := make([][]graph.NodeID, q)
	for i := range sources {
		for len(sources[i]) < 20 {
			sources[i] = append(sources[i], graph.NodeID(rng.Intn(n)))
		}
	}
	terms := make([]string, q)
	for i := range terms {
		terms[i] = fmt.Sprintf("t%d", i)
	}
	in := Input{G: g, Weights: weights, Levels: levels, Terms: terms, Sources: sources}
	return in, Params{TopK: 20, Threads: 4, MaxLevel: 16}
}

// BenchmarkSearchLockFree measures the lock-free two-stage search (the
// paper's CPU-Par) end to end.
func BenchmarkSearchLockFree(b *testing.B) {
	in, p := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(in, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchDynamicLocked measures the lock-based CPU-Par-d variant —
// the paper's Exp-1 lock-free-vs-locked comparison in microcosm.
func BenchmarkSearchDynamicLocked(b *testing.B) {
	in, p := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SearchDynamic(in, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchGPUSimulated measures the SIMT-mapped variant.
func BenchmarkSearchGPUSimulated(b *testing.B) {
	in, p := benchScenario(b)
	dev := device.GTX1080Ti()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SearchGPU(in, p, dev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchSequential is the Tnum=1 baseline of Fig. 9/10.
func BenchmarkSearchSequential(b *testing.B) {
	in, p := benchScenario(b)
	p.Threads = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(in, p); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkKernel measures the kernel path only (state reset + bottom-up
// stage) on a warm reusable state, reporting the true edge-scan throughput.
// With -benchmem, allocs/op must read 0 — the zero-allocation steady state.
func benchmarkKernel(b *testing.B, kernel KernelKind, threads int) {
	in, p := benchScenario(b)
	p.Threads = threads
	p.Kernel = kernel
	ss := NewSearchState()
	defer ss.Close()
	if _, err := ss.BottomUp(in, p); err != nil { // warm buffers and workers
		b.Fatal(err)
	}
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		if _, err := ss.BottomUp(in, p); err != nil {
			b.Fatal(err)
		}
		edges += ss.Profile().EdgesScanned
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(edges)/s, "edges/s")
	}
}

// BenchmarkExpandFlat: the flattened one-pass-per-node expansion kernel.
func BenchmarkExpandFlat(b *testing.B) {
	for _, tn := range []int{1, 4} {
		b.Run(fmt.Sprintf("Tnum=%d", tn), func(b *testing.B) { benchmarkKernel(b, KernelFlat, tn) })
	}
}

// BenchmarkExpandReference: the original per-keyword-column kernel shape,
// the comparison point for the flat kernel's speedup.
func BenchmarkExpandReference(b *testing.B) {
	for _, tn := range []int{1, 4} {
		b.Run(fmt.Sprintf("Tnum=%d", tn), func(b *testing.B) { benchmarkKernel(b, KernelReference, tn) })
	}
}
