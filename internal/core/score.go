package core

import (
	"math"

	"wikisearch/internal/parallel"
)

// Score is the ranking function of Eq. 6: S(C) = d(C)^λ · Σ_{v∈C} w_v.
// Weights are degrees of summary (penalties), so lower scores rank better:
// the function rewards compact answers made of informative nodes, with λ
// controlling how strongly depth widens the penalty.
func Score(depth int, sumWeights, lambda float64) float64 {
	return math.Pow(float64(depth), lambda) * sumWeights
}

// newSearchPool builds the fork/join pool for one search.
func newSearchPool(threads int) *parallel.Pool {
	return parallel.NewPool(threads)
}
