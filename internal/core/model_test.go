package core

// Model-based testing: a deliberately naive, obviously-correct simulator of
// the §III–V semantics (per-level full scans, no frontier bookkeeping, no
// concurrency) cross-checked against the optimized implementation. If the
// lock-free frontier machinery ever diverges from the model — a lost
// retained frontier, a premature hit, a missed central — these tests catch
// it on random graphs.

import (
	"testing"

	"wikisearch/internal/graph"
)

// modelState is the naive simulator's world: hitting levels per (node,
// keyword), the central set, and the level each central was found at.
type modelState struct {
	in       Input
	hit      [][]int // [node][keyword] hitting level, -1 = ∞
	frontier map[graph.NodeID]bool
	central  map[graph.NodeID]int // node → identification level
	centrals []graph.NodeID       // order of identification (by level, then id)
	level    int
}

func newModel(in Input) *modelState {
	n := in.G.NumNodes()
	q := len(in.Sources)
	m := &modelState{
		in:       in,
		hit:      make([][]int, n),
		frontier: map[graph.NodeID]bool{},
		central:  map[graph.NodeID]int{},
	}
	for v := 0; v < n; v++ {
		m.hit[v] = make([]int, q)
		for j := range m.hit[v] {
			m.hit[v][j] = -1
		}
	}
	for i, src := range in.Sources {
		for _, v := range src {
			m.hit[v][i] = 0
			m.frontier[v] = true
		}
	}
	return m
}

func (m *modelState) containsAny(v graph.NodeID) bool {
	for i := range m.in.Sources {
		for _, s := range m.in.Sources[i] {
			if s == v {
				return true
			}
		}
	}
	return false
}

// identify marks frontier nodes hit by every instance as central, in id
// order (matching the sorted frontier of the real implementation).
func (m *modelState) identify() {
	for v := 0; v < len(m.hit); v++ {
		if !m.frontier[graph.NodeID(v)] {
			continue
		}
		if _, done := m.central[graph.NodeID(v)]; done {
			continue
		}
		all := true
		for _, h := range m.hit[v] {
			if h < 0 {
				all = false
				break
			}
		}
		if all {
			m.central[graph.NodeID(v)] = m.level
			m.centrals = append(m.centrals, graph.NodeID(v))
		}
	}
}

// expand: every active, non-central frontier expands each instance it has
// been hit by; the next frontier is rebuilt from scratch.
func (m *modelState) expand() {
	next := map[graph.NodeID]bool{}
	for v := range m.frontier {
		if _, isCentral := m.central[v]; isCentral {
			continue
		}
		if int(m.in.Levels[v]) > m.level {
			next[v] = true // inactive: retained
			continue
		}
		for i := range m.in.Sources {
			if h := m.hit[v][i]; h < 0 || h > m.level {
				continue
			}
			m.in.G.ForEachNeighbor(v, func(nb graph.NodeID, _ graph.RelID, _ bool) {
				if m.hit[nb][i] >= 0 {
					return
				}
				if !m.containsAny(nb) && int(m.in.Levels[nb]) > m.level+1 {
					next[v] = true // blocked neighbor: retain the frontier
					return
				}
				m.hit[nb][i] = m.level + 1
				next[nb] = true
			})
		}
	}
	m.frontier = next
}

// run executes the model with bottomUp's exact loop: enqueue/empty-check,
// identify, k-check, maxLevel-check, expand, level++.
func (m *modelState) run(k, maxLevel int) int {
	for {
		if len(m.frontier) == 0 {
			return m.level
		}
		m.identify()
		if len(m.central) >= k {
			return m.level
		}
		if m.level >= maxLevel {
			return m.level
		}
		m.expand()
		m.level++
	}
}

func TestModelCrossCheck(t *testing.T) {
	for seed := int64(500); seed < 540; seed++ {
		in, p := randomScenario(t, seed)
		p = p.Defaults()

		// Run the real implementation's bottom-up stage.
		pool := newSearchPool(4)
		s := newState(in, Params{TopK: p.TopK, Threads: 4, MaxLevel: p.MaxLevel,
			Alpha: p.Alpha, Lambda: p.Lambda}.Defaults(), pool)
		d, err := s.bottomUp()
		if err != nil {
			t.Fatal(err)
		}

		// Run the model to the same depth.
		model := newModel(in)
		md := model.run(p.TopK, p.MaxLevel)

		if d != md {
			t.Fatalf("seed %d: d = %d, model d = %d", seed, d, md)
		}
		// Central sets and identification levels agree.
		if len(s.groups[0].centrals) != len(model.centrals) {
			t.Fatalf("seed %d: %d centrals vs model %d (%v vs %v)",
				seed, len(s.groups[0].centrals), len(model.centrals), s.groups[0].centrals, model.centrals)
		}
		for _, v := range s.groups[0].centrals {
			ml, ok := model.central[v]
			if !ok {
				t.Fatalf("seed %d: central %d not in model", seed, v)
			}
			if int(s.groups[0].centralAt[v]) != ml {
				t.Fatalf("seed %d: central %d at level %d, model %d", seed, v, s.groups[0].centralAt[v], ml)
			}
		}
		// Hitting levels agree everywhere the model ran: the real search
		// may have recorded hits at the final level's expansion the model
		// also performed, so compare cell by cell.
		q := len(in.Sources)
		for v := 0; v < in.G.NumNodes(); v++ {
			for j := 0; j < q; j++ {
				got := int(s.m.Get(graph.NodeID(v), j))
				if got == Infinity {
					got = -1
				}
				want := model.hit[v][j]
				if got != want {
					t.Fatalf("seed %d: h^%d(%d) = %d, model %d", seed, j, v, got, want)
				}
			}
		}
	}
}
