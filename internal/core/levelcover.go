package core

import (
	"math/bits"
	"sort"

	"wikisearch/internal/graph"
)

// levelCover applies the keyword-co-occurrence level-cover strategy (§V-C)
// to an extracted Central Graph and returns the kept nodes in extraction
// order.
//
// Keyword nodes are classified into levels by the number of query keywords
// they contain; the Central Node is always at the top. Walking levels from
// most-contributing down, a level's nodes are judged against the coverage
// accumulated from *previous* levels only — so nodes never cause pruning of
// nodes within their own level, preserving as many keyword nodes as
// possible. A keyword node is pruned when every keyword it contains is
// already covered; once coverage is complete, all remaining lower levels
// are pruned. Finally the hitting paths that served only pruned keyword
// nodes are dropped: a path node survives iff it is reachable from a kept
// keyword node (or is the Central Node or on a kept node's downstream path).
func (env *assembleEnv) levelCover(ex *extraction) []graph.NodeID {
	all := allMask(env.q)

	// Classify keyword nodes (nodes containing ≥1 query keyword) by
	// containment count. The central node seeds coverage unconditionally.
	covered := env.contains[ex.central]
	type kwNode struct {
		v    graph.NodeID
		mask uint64
	}
	var kws []kwNode
	for _, v := range ex.order {
		if v == ex.central {
			continue
		}
		if m := env.contains[v]; m != 0 {
			kws = append(kws, kwNode{v, m})
		}
	}
	sort.SliceStable(kws, func(i, j int) bool {
		return bits.OnesCount64(kws[i].mask) > bits.OnesCount64(kws[j].mask)
	})

	keptKw := map[graph.NodeID]struct{}{}
	for lo := 0; lo < len(kws); {
		cnt := bits.OnesCount64(kws[lo].mask)
		hi := lo
		for hi < len(kws) && bits.OnesCount64(kws[hi].mask) == cnt {
			hi++
		}
		if covered == all {
			break // prune all remaining (lower) levels
		}
		levelCoverage := covered
		for _, kn := range kws[lo:hi] {
			if kn.mask&^covered != 0 { // contributes an uncovered keyword
				keptKw[kn.v] = struct{}{}
				levelCoverage |= kn.mask
			}
		}
		covered = levelCoverage
		lo = hi
	}

	// Keep path nodes reachable from kept keyword nodes (and the central
	// node) along expansion edges — everything else served only pruned
	// keyword nodes.
	kept := map[graph.NodeID]struct{}{ex.central: {}}
	for v := range keptKw {
		kept[v] = struct{}{}
	}
	adj := map[graph.NodeID][]graph.NodeID{}
	for _, e := range ex.edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	queue := make([]graph.NodeID, 0, len(kept))
	for v := range kept {
		queue = append(queue, v)
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range adj[v] {
			if _, ok := kept[w]; !ok {
				kept[w] = struct{}{}
				queue = append(queue, w)
			}
		}
	}

	out := make([]graph.NodeID, 0, len(kept))
	for _, v := range ex.order {
		if _, ok := kept[v]; ok {
			out = append(out, v)
		}
	}
	return out
}
