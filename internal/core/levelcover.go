package core

import (
	"math/bits"
	"slices"

	"wikisearch/internal/graph"
)

// levelCover applies the keyword-co-occurrence level-cover strategy (§V-C)
// to an extracted Central Graph and returns the kept nodes in extraction
// order. The returned slice lives in sc and is valid until sc's next use.
//
// Keyword nodes are classified into levels by the number of query keywords
// they contain; the Central Node is always at the top. Walking levels from
// most-contributing down, a level's nodes are judged against the coverage
// accumulated from *previous* levels only — so nodes never cause pruning of
// nodes within their own level, preserving as many keyword nodes as
// possible. A keyword node is pruned when every keyword it contains is
// already covered; once coverage is complete, all remaining lower levels
// are pruned. Finally the hitting paths that served only pruned keyword
// nodes are dropped: a path node survives iff it is reachable from a kept
// keyword node (or is the Central Node or on a kept node's downstream path).
func (env *assembleEnv) levelCover(ex *extraction, sc *tdScratch) []graph.NodeID {
	all := allMask(env.q)

	// Classify keyword nodes (nodes containing ≥1 query keyword) by
	// containment count. The central node seeds coverage unconditionally.
	covered := env.contains(ex.central)
	kws := sc.kws[:0]
	for _, v := range ex.order {
		if v == ex.central {
			continue
		}
		if m := env.contains(v); m != 0 {
			kws = append(kws, kwNode{v, m})
		}
	}
	sc.kws = kws
	slices.SortStableFunc(kws, func(a, b kwNode) int {
		return bits.OnesCount64(b.mask) - bits.OnesCount64(a.mask)
	})

	keptKw := sc.keptKw
	if keptKw == nil {
		keptKw = map[graph.NodeID]struct{}{}
		sc.keptKw = keptKw
	} else {
		clear(keptKw)
	}
	for lo := 0; lo < len(kws); {
		cnt := bits.OnesCount64(kws[lo].mask)
		hi := lo
		for hi < len(kws) && bits.OnesCount64(kws[hi].mask) == cnt {
			hi++
		}
		if covered == all {
			break // prune all remaining (lower) levels
		}
		levelCoverage := covered
		for _, kn := range kws[lo:hi] {
			if kn.mask&^covered != 0 { // contributes an uncovered keyword
				keptKw[kn.v] = struct{}{}
				levelCoverage |= kn.mask
			}
		}
		covered = levelCoverage
		lo = hi
	}

	// Keep path nodes reachable from kept keyword nodes (and the central
	// node) along expansion edges — everything else served only pruned
	// keyword nodes. Extractions are small, so the BFS rescans the edge
	// list per popped node instead of building an adjacency map.
	kept := sc.kept
	if kept == nil {
		kept = map[graph.NodeID]struct{}{}
		sc.kept = kept
	} else {
		clear(kept)
	}
	kept[ex.central] = struct{}{}
	queue := append(sc.covOut[:0], ex.central)
	for v := range keptKw {
		if _, ok := kept[v]; !ok {
			kept[v] = struct{}{}
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, e := range ex.edges {
			if e.From != v {
				continue
			}
			if _, ok := kept[e.To]; !ok {
				kept[e.To] = struct{}{}
				queue = append(queue, e.To)
			}
		}
	}

	out := queue[:0] // reuse the drained queue's backing array
	for _, v := range ex.order {
		if _, ok := kept[v]; ok {
			out = append(out, v)
		}
	}
	sc.covOut = out
	return out
}
