package core

import (
	"math/bits"
	"slices"
	"sync/atomic"
	"time"

	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
)

// workerScratch is one worker's private expansion scratch: the frontier
// node's matrix row snapshot, the list of FIdentifier words this worker
// dirtied first (so the enqueue step visits only touched words instead of
// scanning the whole bitset), and the worker's edge-scan tally. The trailing
// pad keeps adjacent workers' hot fields off a shared cache line. A
// workerScratch must not be copied: a copy aliases the row and touched
// buffers.
//
//wikisearch:nocopy
type workerScratch struct {
	row     []uint8
	touched []int32
	edges   int64
	_       [64]byte
}

// state carries the shared structures of one two-stage search: the three
// lock-free arrays of §V-B (node-keyword matrix M, FIdentifier, CIdentifier)
// plus frontier bookkeeping. A state is reusable: prepare re-dimensions and
// resets every structure in place, so a pooled state serves queries without
// allocating on the hot path (see SearchState). A state must not be copied:
// a copy aliases every shared search structure.
//
//wikisearch:nocopy
type state struct {
	in   Input
	p    Params
	pool *parallel.Pool

	m   *Matrix
	fid *parallel.Bitset // FIdentifier: frontier flags for the next level
	cid *parallel.Bitset // CIdentifier: already-identified Central Nodes

	// contains[v] is the mask of query keywords node v contains (v ∈ T_i).
	// Nonzero means "keyword node" in the sense of §IV-B.
	contains []uint64

	frontier     []int32
	touchedWords []int32        // merged per-worker touched-word lists (enqueue scratch)
	centralAt    []int32        // BFS level at which v was identified central, -1 otherwise
	centrals     []graph.NodeID // identification order
	scratch      []workerScratch
	level        int

	// Prebound phase bodies, created once per state lifetime: steady-state
	// levels dispatch through the pool without allocating a closure.
	initFn      func(w, i int)
	identifyFn  func(i int)
	expandFn    func(w, start, end int)
	expandRefFn func(w, start, end int)

	prof Profile
}

// prepareCommon re-dimensions and resets every search structure for a query
// over in with p, reusing prior allocations whenever capacities suffice. It
// performs no source initialization — the CPU path's prepare and the GPU
// path's device kernel layer that on top.
func (s *state) prepareCommon(in Input, p Params, pool *parallel.Pool) {
	n := in.G.NumNodes()
	q := len(in.Sources)
	s.in, s.p, s.pool = in, p, pool
	s.level = 0
	s.prof = Profile{}
	if s.m == nil {
		s.m = NewMatrix(n, q)
	} else {
		s.m.Reset(n, q)
	}
	if s.fid == nil {
		s.fid = parallel.NewBitset(n)
		s.cid = parallel.NewBitset(n)
	} else {
		s.fid.Resize(n)
		s.cid.Resize(n)
	}
	if cap(s.contains) < n {
		s.contains = make([]uint64, n)
	} else {
		s.contains = s.contains[:n]
		clear(s.contains)
	}
	if cap(s.centralAt) < n {
		s.centralAt = make([]int32, n)
	} else {
		s.centralAt = s.centralAt[:n]
	}
	for i := range s.centralAt {
		s.centralAt[i] = -1
	}
	s.frontier = s.frontier[:0]
	s.touchedWords = s.touchedWords[:0]
	s.centrals = s.centrals[:0]
	w := pool.Workers()
	if cap(s.scratch) < w {
		s.scratch = make([]workerScratch, w)
	} else {
		s.scratch = s.scratch[:w]
	}
	for i := range s.scratch {
		if s.scratch[i].row == nil {
			s.scratch[i].row = make([]uint8, MaxKeywords)
		}
		s.scratch[i].touched = s.scratch[i].touched[:0]
		s.scratch[i].edges = 0
	}
	if s.initFn == nil {
		s.initFn = s.initKeyword
		s.identifyFn = s.identifyOne
		s.expandFn = s.expandChunk
		s.expandRefFn = s.expandRefChunk
	}
}

// prepare runs the Initialization phase of Algorithm 1 on a (re)used state:
// reset M, FIdentifier and CIdentifier, set m_ij = 0 for keyword nodes and
// flag them as level-0 frontiers — one fork/join task per keyword, each
// writing disjoint columns (contains[] is merged sequentially to stay
// race-free at negligible cost).
func (s *state) prepare(in Input, p Params, pool *parallel.Pool) {
	s.prepareCommon(in, p, pool)
	q := len(in.Sources)
	pool.ForWorker(q, s.initFn)
	for i := 0; i < q; i++ {
		bit := uint64(1) << uint(i)
		for _, v := range in.Sources[i] {
			s.contains[v] |= bit
		}
	}
}

// newState allocates a fresh single-use state (tests and the one-shot Search
// entry point; pooled serving goes through SearchState).
func newState(in Input, p Params, pool *parallel.Pool) *state {
	s := &state{}
	s.prepare(in, p, pool)
	return s
}

// initKeyword is the per-keyword initialization task run by worker w.
//
//wikisearch:hotpath
func (s *state) initKeyword(w, i int) {
	sc := &s.scratch[w]
	for _, v := range s.in.Sources[i] {
		s.m.MarkHit(v, i, 0)
		s.markFrontier(sc, v)
	}
}

// markFrontier flags v in FIdentifier and, when this worker is the first to
// dirty v's word, records the word in the worker's touched list. The lists
// across workers partition the dirty words exactly (the atomic OR linearizes
// the empty→non-empty transition), so enqueueFrontiers drains only dirty
// words instead of scanning and resetting the whole O(n) bitset per level.
//
//wikisearch:hotpath
func (s *state) markFrontier(sc *workerScratch, v graph.NodeID) {
	if wi, first := s.fid.SetTouch(int(v)); first {
		sc.touched = append(sc.touched, int32(wi))
	}
}

// enqueueFrontiers extracts the frontier queue from FIdentifier and resets
// the flags — sequential on CPU, exactly as the paper found fastest (§V-B,
// "on CPU locked writing is so expensive and the fastest way is to enqueue
// frontiers in a sequential manner"). One joint frontier array serves all
// BFS instances. Only words recorded by markFrontier are visited: merging
// the per-worker touched lists, sorting them and draining each word in
// ascending order yields the same canonical ascending frontier as a full
// bitset scan at O(frontier) instead of O(n) cost.
//
//wikisearch:hotpath
func (s *state) enqueueFrontiers() {
	tw := s.touchedWords[:0]
	for i := range s.scratch {
		tw = append(tw, s.scratch[i].touched...)
		s.scratch[i].touched = s.scratch[i].touched[:0]
	}
	slices.Sort(tw)
	s.touchedWords = tw
	s.frontier = s.frontier[:0]
	for _, wi := range tw {
		s.frontier = s.fid.DrainWord(int(wi), s.frontier)
	}
	s.prof.FrontierTotal += int64(len(s.frontier))
}

// identifyOne tests frontier entry i for the Central Node condition.
//
//wikisearch:hotpath
func (s *state) identifyOne(i int) {
	v := graph.NodeID(s.frontier[i])
	if s.cid.Get(int(v)) {
		return
	}
	if s.m.AllHit(v) {
		s.cid.Set(int(v))
		s.centralAt[v] = int32(s.level) // each frontier entry is unique: no race
	}
}

// identifyCentrals scans the frontier for nodes hit by every BFS instance
// (Definition 3) that are not yet central, marks them in CIdentifier and
// records the identification level, which by Lemma V.1 equals the depth of
// the Central Graph. Returns the number of new Central Nodes.
func (s *state) identifyCentrals() int {
	s.pool.For(len(s.frontier), s.identifyFn)
	// Collect in frontier order so results are deterministic regardless of
	// the number of threads.
	lvl := int32(s.level)
	found := 0
	for _, f := range s.frontier {
		if s.centralAt[f] == lvl {
			s.centrals = append(s.centrals, graph.NodeID(f))
			found++
		}
	}
	return found
}

// expand runs Algorithm 2 (the Expansion procedure) for the current level:
// every frontier not identified as central and active at this level expands
// each BFS instance it belongs to into its bi-directed neighbors. All
// writes are the idempotent lock-free writes of Theorem V.2.
func (s *state) expand() {
	fn := s.expandFn
	if s.p.Kernel == KernelReference {
		fn = s.expandRefFn
	}
	s.pool.ForChunksWorker(len(s.frontier), fn)
	for i := range s.scratch {
		s.prof.EdgesScanned += s.scratch[i].edges
		s.scratch[i].edges = 0
	}
}

// expandChunk is the flattened expansion kernel (KernelFlat): each frontier
// node's CSR adjacency is walked exactly once, with all q keyword columns
// processed per neighbor through word-wide matrix reads, instead of one
// adjacency pass per column. The node's row is snapshotted once into
// per-worker scratch; cells of that row can concurrently flip ∞ → l+1, but
// both values exclude the column from the active set, so the snapshot
// decides identically to a just-in-time read.
//
//wikisearch:hotpath
func (s *state) expandChunk(w, start, end int) {
	sc := &s.scratch[w]
	g := s.in.G
	l := s.level
	q := s.m.Q()
	row := sc.row[:q]
	var words []uint64 // non-nil iff a row is a single word (q ≤ 8)
	if s.m.WordsPerRow() == 1 {
		words = s.m.Words()
	}
	for fi := start; fi < end; fi++ {
		vf := graph.NodeID(s.frontier[fi])
		if s.cid.Get(int(vf)) {
			continue // central nodes are unavailable for expansion
		}
		if int(s.in.Levels[vf]) > l {
			// Not yet active: stay a frontier and retry next level.
			s.markFrontier(sc, vf)
			continue
		}
		s.m.Row(vf, row)
		var active uint64 // columns whose BFS frontier vf currently is (h ≤ l)
		for i := 0; i < q; i++ {
			if int(row[i]) <= l {
				active |= 1 << uint(i)
			}
		}
		if active == 0 {
			continue
		}
		// One pass over the bi-directed adjacency, regardless of how many
		// columns are active — this is the kernel's true edge-scan count.
		sc.edges += int64(g.Degree(vf))
		retry := false
		if active&(active-1) == 0 {
			// Single active column: a point read per neighbor beats the
			// word-wide mask, and there is no adjacency pass to amortize.
			i := bits.TrailingZeros64(active)
			for _, vn := range g.OutNeighbors(vf) {
				if s.visitOne(sc, vn, i, l) {
					retry = true
				}
			}
			for _, vn := range g.InNeighbors(vf) {
				if s.visitOne(sc, vn, i, l) {
					retry = true
				}
			}
		} else if words != nil {
			// q ≤ 8: a row is one aligned word, so the miss filter — the
			// dominant work in saturated regions, where nearly every
			// neighbor is already hit in every active column — runs inline
			// with a single atomic load and no per-edge calls.
			for _, vn := range g.OutNeighbors(vf) {
				todo := active & parallel.MatchFlags(atomic.LoadUint64(&words[vn]), Infinity)
				if todo != 0 && s.visitTodo(sc, vn, todo, l) {
					retry = true
				}
			}
			for _, vn := range g.InNeighbors(vf) {
				todo := active & parallel.MatchFlags(atomic.LoadUint64(&words[vn]), Infinity)
				if todo != 0 && s.visitTodo(sc, vn, todo, l) {
					retry = true
				}
			}
		} else {
			for _, vn := range g.OutNeighbors(vf) {
				if s.visit(sc, vn, active, l) {
					retry = true
				}
			}
			for _, vn := range g.InNeighbors(vf) {
				if s.visit(sc, vn, active, l) {
					retry = true
				}
			}
		}
		if retry {
			s.markFrontier(sc, vf)
		}
	}
}

// visitOne is visit specialized to a single active column i; it performs
// the identical writes, so the two paths are interchangeable.
//
//wikisearch:hotpath
func (s *state) visitOne(sc *workerScratch, vn graph.NodeID, i, l int) (retry bool) {
	if s.m.Get(vn, i) != Infinity {
		return false
	}
	if s.contains[vn] == 0 && int(s.in.Levels[vn]) > l+1 {
		return true
	}
	s.m.MarkHit(vn, i, uint8(l+1))
	s.markFrontier(sc, vn)
	return false
}

// visit processes one neighbor for every active BFS instance in a single
// word-wide read: todo is the set of active columns that have not hit vn
// yet. Non-keyword nodes respect their activation level — they can only be
// hit once the next level reaches it; until then the expanding frontier is
// retained so the expansion retries (§IV-B).
//
//wikisearch:hotpath
func (s *state) visit(sc *workerScratch, vn graph.NodeID, active uint64, l int) (retry bool) {
	todo := active & s.m.MissMask(vn)
	if todo == 0 {
		return false // already hit in every active instance
	}
	return s.visitTodo(sc, vn, todo, l)
}

// visitTodo finishes a visit whose not-yet-hit active columns (todo, non-
// empty) have already been computed.
//
//wikisearch:hotpath
func (s *state) visitTodo(sc *workerScratch, vn graph.NodeID, todo uint64, l int) (retry bool) {
	if s.contains[vn] == 0 && int(s.in.Levels[vn]) > l+1 {
		return true
	}
	hit := uint8(l + 1)
	for m := todo; m != 0; m &= m - 1 {
		s.m.MarkHit(vn, bits.TrailingZeros64(m), hit)
	}
	s.markFrontier(sc, vn)
	return false
}

// expandRefChunk is the per-keyword-column reference kernel — the shape the
// paper's pseudocode suggests and this engine originally shipped: each
// active column walks the closure-based adjacency separately. Kept as the
// equivalence baseline and the benchmark comparison point; it must return
// byte-identical results to expandChunk.
func (s *state) expandRefChunk(w, start, end int) {
	sc := &s.scratch[w]
	l := s.level
	q := s.m.Q()
	for fi := start; fi < end; fi++ {
		vf := graph.NodeID(s.frontier[fi])
		if s.cid.Get(int(vf)) {
			continue
		}
		if int(s.in.Levels[vf]) > l {
			s.markFrontier(sc, vf)
			continue
		}
		for i := 0; i < q; i++ {
			if int(s.m.Get(vf, i)) > l {
				continue // not (yet) a frontier of B_i
			}
			// This kernel genuinely re-walks the adjacency per column, so
			// charging the degree per active column is its true scan count.
			sc.edges += int64(s.in.G.Degree(vf))
			s.in.G.ForEachNeighbor(vf, func(vn graph.NodeID, _ graph.RelID, _ bool) {
				if s.m.Get(vn, i) != Infinity {
					return // already hit in B_i
				}
				if s.contains[vn] == 0 && int(s.in.Levels[vn]) > l+1 {
					s.markFrontier(sc, vf)
					return
				}
				s.m.MarkHit(vn, i, uint8(l+1))
				s.markFrontier(sc, vn)
			})
		}
	}
}

// bottomUp runs stage one of Algorithm 1 and returns d — the smallest depth
// at which at least k Central Nodes exist (Definition 4) — or the level at
// which the search exhausted the graph or hit MaxLevel. A cancelled context
// aborts between levels.
func (s *state) bottomUp() (int, error) {
	k := s.p.TopK
	for {
		if err := cancelled(s.p); err != nil {
			return s.level, err
		}
		t0 := time.Now()
		s.enqueueFrontiers()
		s.prof.Phases[PhaseEnqueue] += time.Since(t0)
		if len(s.frontier) == 0 {
			break // graph exhausted: fewer than k Central Graphs exist
		}

		t0 = time.Now()
		s.identifyCentrals()
		s.prof.Phases[PhaseIdentify] += time.Since(t0)
		s.prof.Levels++
		if len(s.centrals) >= k {
			break // d found: all Central Graphs of depth ≤ level collected
		}
		if s.level >= s.p.MaxLevel {
			break
		}

		t0 = time.Now()
		s.expand()
		s.prof.Phases[PhaseExpand] += time.Since(t0)
		s.level++
	}
	return s.level, nil
}

// cancelled reports the context error, if a context was set and fired.
func cancelled(p Params) error {
	if p.Ctx == nil {
		return nil
	}
	return p.Ctx.Err()
}
