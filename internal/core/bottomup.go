package core

import (
	"math/bits"
	"slices"
	"sync/atomic"
	"time"

	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
	"wikisearch/internal/trace"
)

// workerScratch is one worker's private expansion scratch: the frontier
// node's matrix row snapshot, the list of FIdentifier words this worker
// dirtied first (so the enqueue step visits only touched words instead of
// scanning the whole bitset), the boundary activations the worker produced
// for remote shards (sharded states only), and the worker's edge-scan tally.
// The trailing pad keeps adjacent workers' hot fields off a shared cache
// line. A workerScratch must not be copied: a copy aliases the row, touched
// and out buffers.
//
//wikisearch:nocopy
type workerScratch struct {
	row     []uint8
	touched []int32
	out     []BoundaryMsg
	edges   int64
	_       [64]byte
}

// group is one query multiplexed into the shared search state: it owns the
// contiguous matrix columns [off, off+q) and carries the per-query
// bookkeeping that keeps Lemma V.1 and the top-down extraction exact per
// query — Central Node identification, termination and depth d are all
// evaluated against the group's column submask, never the whole matrix. A
// solo search is the one-group special case spanning every column. A group
// must not be copied: a copy aliases the centralAt and centrals buffers.
//
//wikisearch:nocopy
type group struct {
	off  int    // first matrix column owned by this query
	q    int    // number of keyword columns
	mask uint64 // columns [off, off+q) as a bitmask

	topK         int
	maxLevel     int
	noLevelCover bool

	done  bool
	depth int // d of the query's top-(k,d) problem, set when the group finishes

	centralAt []int32        // BFS level at which v was identified central for this query, -1 otherwise
	centrals  []graph.NodeID // identification order
	front     int            // frontier entries owned by this group at the current level (multi only)
}

// state carries the shared structures of one two-stage search: the
// lock-free arrays of §V-B (node-keyword matrix M, FIdentifier) plus
// frontier bookkeeping, partitioned into per-query column groups. A state
// is reusable: prepare re-dimensions and resets every structure in place,
// so a pooled state serves queries without allocating on the hot path (see
// SearchState). A state must not be copied: a copy aliases every shared
// search structure.
//
//wikisearch:nocopy
type state struct {
	in   Input
	p    Params
	pool *parallel.Pool

	m   *Matrix
	fid *parallel.Bitset // FIdentifier: frontier flags for the next level

	// contains[v] is the mask of query keywords node v contains (v ∈ T_i).
	// Nonzero within a group's submask means "keyword node" for that query
	// in the sense of §IV-B.
	contains []uint64

	// groups partitions the matrix columns per query; solo searches use a
	// single group spanning all columns. Backed by groupsBuf so a pooled
	// state re-dimensions without allocating.
	groups    []group
	groupsBuf [MaxBatchQueries]group
	live      uint8  // bitmask of groups still searching
	liveCols  uint64 // union of live groups' column masks
	multi     bool   // len(groups) > 1: owner-group attribution active

	// gfid holds each node's owner-group byte — bit g set iff the node is a
	// next-level frontier of group g. Written with atomic ORs during
	// expansion, consumed and cleared by the sequential drain (multi only).
	gfid    *parallel.ByteArray
	fgroups []uint8 // frontier[i]'s owner groups, parallel to frontier (multi only)

	frontier     []int32
	touchedWords []int32 // merged per-worker touched-word lists (enqueue scratch)
	scratch      []workerScratch
	// td is sliced per worker inside topDownGroup (the annotated owner);
	// worker w touches only td[w], so the slots need no synchronization
	// beyond the pool's fork/join barrier.
	//
	//wikisearch:singlewriter
	td    []tdScratch // per-worker top-down buffers (see tdScratch)
	level int

	// localN windows the kernel onto a shard: local node ids below localN
	// are owned, ids at or above are ghost copies of remote nodes. A hit
	// ghost is not enqueued — its activation is batched into the worker's
	// out buffer under its local id (the coordinator's precomputed ghost
	// tables translate to owner shard and remote local id, so the kernel
	// never probes a full-graph array). Solo states set localN = n, so the
	// ghost comparison is a single never-taken branch.
	localN int

	// Flattened batch input buffers, reused across batches so the warm
	// batched path stays allocation-free.
	batchTerms   []string
	batchSources [][]graph.NodeID

	// Prebound phase bodies, created once per state lifetime: steady-state
	// levels dispatch through the pool without allocating a closure.
	initFn          func(w, i int)
	identifyFn      func(i int)
	identifyBatchFn func(i int)
	expandFn        func(w, start, end int)
	expandBatchFn   func(w, start, end int)
	expandRefFn     func(w, start, end int)

	// buf is the owning SearchState's trace buffer (nil on the one-shot
	// state path); the bottom-up loop records per-level phase spans into
	// ring 0 — the loop runs on the calling goroutine, the pool records the
	// helpers' spans itself.
	buf *trace.Buffer

	prof Profile
}

// prepareShared re-dimensions and resets the group-independent search
// structures for a query over in with p, reusing prior allocations whenever
// capacities suffice.
func (s *state) prepareShared(in Input, p Params, pool *parallel.Pool) {
	n := in.G.NumNodes()
	q := len(in.Sources)
	s.in, s.p, s.pool = in, p, pool
	s.level = 0
	s.prof = Profile{}
	s.localN = n
	if s.m == nil {
		s.m = NewMatrix(n, q)
	} else {
		s.m.Reset(n, q)
	}
	if s.fid == nil {
		s.fid = parallel.NewBitset(n)
	} else {
		s.fid.Resize(n)
	}
	if cap(s.contains) < n {
		s.contains = make([]uint64, n)
	} else {
		s.contains = s.contains[:n]
		clear(s.contains)
	}
	s.frontier = s.frontier[:0]
	s.touchedWords = s.touchedWords[:0]
	w := pool.Workers()
	if cap(s.scratch) < w {
		s.scratch = make([]workerScratch, w)
	} else {
		s.scratch = s.scratch[:w]
	}
	for i := range s.scratch {
		if s.scratch[i].row == nil {
			s.scratch[i].row = make([]uint8, MaxKeywords)
		}
		s.scratch[i].touched = s.scratch[i].touched[:0]
		s.scratch[i].out = s.scratch[i].out[:0]
		s.scratch[i].edges = 0
	}
	if s.initFn == nil {
		s.initFn = s.initKeyword
		s.identifyFn = s.identifyOne
		s.identifyBatchFn = s.identifyBatchOne
		s.expandFn = s.expandChunk
		s.expandBatchFn = s.expandBatchChunk
		s.expandRefFn = s.expandRefChunk
	}
}

// resetGroupRuntime resets the per-group runtime bookkeeping (central
// tracking, termination, owner-group attribution) after s.groups has been
// laid out.
func (s *state) resetGroupRuntime(n int) {
	s.live = 0
	s.liveCols = 0
	s.multi = len(s.groups) > 1
	for gi := range s.groups {
		gr := &s.groups[gi]
		gr.done = false
		gr.depth = 0
		gr.front = 0
		if cap(gr.centralAt) < n {
			gr.centralAt = make([]int32, n)
		} else {
			gr.centralAt = gr.centralAt[:n]
		}
		for i := range gr.centralAt {
			gr.centralAt[i] = -1
		}
		gr.centrals = gr.centrals[:0]
		s.live |= 1 << uint(gi)
		s.liveCols |= gr.mask
	}
	if s.multi {
		if s.gfid == nil {
			s.gfid = parallel.NewByteArray(n, 0)
		} else {
			s.gfid.Resize(n, 0)
		}
		s.fgroups = s.fgroups[:0]
	}
}

// prepareCommon is prepareShared plus the solo column-group layout: one
// group spanning every matrix column, with the query-level knobs taken from
// p. It performs no source initialization — the CPU path's prepare and the
// GPU path's device kernel layer that on top.
func (s *state) prepareCommon(in Input, p Params, pool *parallel.Pool) {
	s.prepareShared(in, p, pool)
	q := len(in.Sources)
	s.groups = s.groupsBuf[:1]
	gr := &s.groups[0]
	gr.off, gr.q, gr.mask = 0, q, allMask(q)
	gr.topK, gr.maxLevel, gr.noLevelCover = p.TopK, p.MaxLevel, p.DisableLevelCover
	s.resetGroupRuntime(in.G.NumNodes())
}

// prepare runs the Initialization phase of Algorithm 1 on a (re)used state:
// reset M and FIdentifier, set m_ij = 0 for keyword nodes and flag them as
// level-0 frontiers — one fork/join task per keyword, each writing disjoint
// columns (contains[] is merged sequentially to stay race-free at
// negligible cost).
func (s *state) prepare(in Input, p Params, pool *parallel.Pool) {
	s.prepareCommon(in, p, pool)
	s.initSources()
}

// initSources runs the parallel per-keyword init tasks and the sequential
// contains merge over whatever groups are laid out.
func (s *state) initSources() {
	q := len(s.in.Sources)
	s.pool.ForWorker(q, s.initFn)
	for i := 0; i < q; i++ {
		bit := uint64(1) << uint(i)
		for _, v := range s.in.Sources[i] {
			s.contains[v] |= bit
		}
	}
}

// newState allocates a fresh single-use state (tests and the one-shot Search
// entry point; pooled serving goes through SearchState).
func newState(in Input, p Params, pool *parallel.Pool) *state {
	s := &state{}
	s.prepare(in, p, pool)
	return s
}

// initKeyword is the per-keyword initialization task run by worker w.
//
//wikisearch:hotpath
func (s *state) initKeyword(w, i int) {
	sc := &s.scratch[w]
	if s.multi {
		gb := s.colGroups(uint64(1) << uint(i))
		for _, v := range s.in.Sources[i] {
			s.m.MarkHit(v, i, 0)
			s.markFrontierG(sc, v, gb)
		}
		return
	}
	for _, v := range s.in.Sources[i] {
		s.m.MarkHit(v, i, 0)
		if int(v) >= s.localN {
			continue // ghost source: the owner shard enqueues its copy
		}
		s.markFrontier(sc, v)
	}
}

// colGroups returns the bitmask of groups owning any column in cols.
//
//wikisearch:hotpath
func (s *state) colGroups(cols uint64) uint8 {
	var gb uint8
	for gi := range s.groups {
		if cols&s.groups[gi].mask != 0 {
			gb |= 1 << uint(gi)
		}
	}
	return gb
}

// groupCols returns the union of the column masks of the groups in gb.
//
//wikisearch:hotpath
func (s *state) groupCols(gb uint8) uint64 {
	var cols uint64
	for ; gb != 0; gb &= gb - 1 {
		cols |= s.groups[bits.TrailingZeros8(gb)].mask
	}
	return cols
}

// markFrontier flags v in FIdentifier and, when this worker is the first to
// dirty v's word, records the word in the worker's touched list. The lists
// across workers partition the dirty words exactly (the atomic OR linearizes
// the empty→non-empty transition), so enqueueFrontiers drains only dirty
// words instead of scanning and resetting the whole O(n) bitset per level.
//
//wikisearch:hotpath
func (s *state) markFrontier(sc *workerScratch, v graph.NodeID) {
	if wi, first := s.fid.SetTouch(int(v)); first {
		sc.touched = append(sc.touched, int32(wi))
	}
}

// markFrontierG is markFrontier plus owner-group attribution: the groups in
// gb claim v as one of their next-level frontiers. Only used when multiple
// queries share the state.
//
//wikisearch:hotpath
func (s *state) markFrontierG(sc *workerScratch, v graph.NodeID, gb uint8) {
	s.gfid.Or(int(v), gb)
	s.markFrontier(sc, v)
}

// enqueueFrontiers extracts the frontier queue from FIdentifier and resets
// the flags — sequential on CPU, exactly as the paper found fastest (§V-B,
// "on CPU locked writing is so expensive and the fastest way is to enqueue
// frontiers in a sequential manner"). One joint frontier array serves all
// BFS instances. Only words recorded by markFrontier are visited: merging
// the per-worker touched lists, sorting them and draining each word in
// ascending order yields the same canonical ascending frontier as a full
// bitset scan at O(frontier) instead of O(n) cost.
//
// When multiple queries share the state, the drain also attributes each
// frontier node to its owner groups: the node's gfid byte is consumed into
// fgroups and counted per group, giving every query exactly the frontier
// its solo search would have had.
//
//wikisearch:hotpath
func (s *state) enqueueFrontiers() {
	tw := s.touchedWords[:0]
	for i := range s.scratch {
		tw = append(tw, s.scratch[i].touched...)
		s.scratch[i].touched = s.scratch[i].touched[:0]
	}
	slices.Sort(tw)
	s.touchedWords = tw
	s.frontier = s.frontier[:0]
	for _, wi := range tw {
		s.frontier = s.fid.DrainWord(int(wi), s.frontier)
	}
	s.prof.FrontierTotal += int64(len(s.frontier))
	if !s.multi {
		return
	}
	s.fgroups = s.fgroups[:0]
	for gi := range s.groups {
		s.groups[gi].front = 0
	}
	for _, f := range s.frontier {
		gb := s.gfid.Get(int(f))
		s.gfid.ClearByte(int(f))
		s.fgroups = append(s.fgroups, gb)
		for ob := gb; ob != 0; ob &= ob - 1 {
			s.groups[bits.TrailingZeros8(ob)].front++
		}
	}
}

// identifyOne tests frontier entry i for the Central Node condition (solo).
//
//wikisearch:hotpath
func (s *state) identifyOne(i int) {
	v := graph.NodeID(s.frontier[i])
	gr := &s.groups[0]
	if gr.centralAt[v] >= 0 {
		return
	}
	if s.m.AllHit(v) {
		gr.centralAt[v] = int32(s.level) // each frontier entry is unique: no race
	}
}

// identifyBatchOne tests frontier entry i for the Central Node condition of
// every live owner group: the group's submask of the node's miss mask must
// be empty (Definition 3 restricted to the query's columns). A node can
// only become all-hit for a group at the level the group's last column hits
// it, and at that level the group owns the node, so checking owner groups
// only is exact.
//
//wikisearch:hotpath
func (s *state) identifyBatchOne(i int) {
	v := graph.NodeID(s.frontier[i])
	owners := s.fgroups[i] & s.live
	if owners == 0 {
		return
	}
	miss := s.m.MissMask(v)
	for ; owners != 0; owners &= owners - 1 {
		gr := &s.groups[bits.TrailingZeros8(owners)]
		if gr.centralAt[v] >= 0 {
			continue
		}
		if miss&gr.mask == 0 {
			gr.centralAt[v] = int32(s.level) // each frontier entry is unique: no race
		}
	}
}

// identifyCentrals scans the frontier for nodes hit by every BFS instance
// of their query (Definition 3) that are not yet central, and records the
// identification level, which by Lemma V.1 equals the depth of the Central
// Graph. Collection runs sequentially in frontier order so results are
// deterministic regardless of the number of threads.
func (s *state) identifyCentrals() {
	lvl := int32(s.level)
	if s.multi {
		s.pool.For(len(s.frontier), s.identifyBatchFn)
		for fi, f := range s.frontier {
			for ob := s.fgroups[fi] & s.live; ob != 0; ob &= ob - 1 {
				gr := &s.groups[bits.TrailingZeros8(ob)]
				if gr.centralAt[f] == lvl {
					gr.centrals = append(gr.centrals, graph.NodeID(f))
				}
			}
		}
		return
	}
	s.pool.For(len(s.frontier), s.identifyFn)
	gr := &s.groups[0]
	for _, f := range s.frontier {
		if gr.centralAt[f] == lvl {
			gr.centrals = append(gr.centrals, graph.NodeID(f))
		}
	}
}

// expand runs Algorithm 2 (the Expansion procedure) for the current level:
// every frontier not identified as central and active at this level expands
// each BFS instance it belongs to into its bi-directed neighbors. All
// writes are the idempotent lock-free writes of Theorem V.2.
func (s *state) expand() {
	fn := s.expandFn
	if s.multi {
		fn = s.expandBatchFn
	} else if s.p.Kernel == KernelReference {
		fn = s.expandRefFn
	}
	s.pool.ForChunksWorker(len(s.frontier), fn)
	for i := range s.scratch {
		s.prof.EdgesScanned += s.scratch[i].edges
		s.scratch[i].edges = 0
	}
}

// expandChunk is the flattened expansion kernel (KernelFlat): each frontier
// node's CSR adjacency is walked exactly once, with all q keyword columns
// processed per neighbor through word-wide matrix reads, instead of one
// adjacency pass per column. The node's row is snapshotted once into
// per-worker scratch; cells of that row can concurrently flip ∞ → l+1, but
// both values exclude the column from the active set, so the snapshot
// decides identically to a just-in-time read.
//
//wikisearch:hotpath
func (s *state) expandChunk(w, start, end int) {
	sc := &s.scratch[w]
	g := s.in.G
	l := s.level
	q := s.m.Q()
	row := sc.row[:q]
	centralAt := s.groups[0].centralAt
	var words []uint64 // non-nil iff a row is a single word (q ≤ 8)
	if s.m.WordsPerRow() == 1 {
		words = s.m.Words()
	}
	for fi := start; fi < end; fi++ {
		vf := graph.NodeID(s.frontier[fi])
		if centralAt[vf] >= 0 {
			continue // central nodes are unavailable for expansion
		}
		if int(s.in.Levels[vf]) > l {
			// Not yet active: stay a frontier and retry next level.
			s.markFrontier(sc, vf)
			continue
		}
		s.m.Row(vf, row)
		var active uint64 // columns whose BFS frontier vf currently is (h ≤ l)
		for i := 0; i < q; i++ {
			if int(row[i]) <= l {
				active |= 1 << uint(i)
			}
		}
		if active == 0 {
			continue
		}
		// One pass over the bi-directed adjacency, regardless of how many
		// columns are active — this is the kernel's true edge-scan count.
		sc.edges += int64(g.Degree(vf))
		retry := false
		if active&(active-1) == 0 {
			// Single active column: a point read per neighbor beats the
			// word-wide mask, and there is no adjacency pass to amortize.
			i := bits.TrailingZeros64(active)
			for _, vn := range g.OutNeighbors(vf) {
				if s.visitOne(sc, vn, i, l) {
					retry = true
				}
			}
			for _, vn := range g.InNeighbors(vf) {
				if s.visitOne(sc, vn, i, l) {
					retry = true
				}
			}
		} else if words != nil {
			// q ≤ 8: a row is one aligned word, so the miss filter — the
			// dominant work in saturated regions, where nearly every
			// neighbor is already hit in every active column — runs inline
			// with a single atomic load and no per-edge calls.
			for _, vn := range g.OutNeighbors(vf) {
				todo := active & parallel.MatchFlags(atomic.LoadUint64(&words[vn]), Infinity)
				if todo != 0 && s.visitTodo(sc, vn, todo, l) {
					retry = true
				}
			}
			for _, vn := range g.InNeighbors(vf) {
				todo := active & parallel.MatchFlags(atomic.LoadUint64(&words[vn]), Infinity)
				if todo != 0 && s.visitTodo(sc, vn, todo, l) {
					retry = true
				}
			}
		} else {
			for _, vn := range g.OutNeighbors(vf) {
				if s.visit(sc, vn, active, l) {
					retry = true
				}
			}
			for _, vn := range g.InNeighbors(vf) {
				if s.visit(sc, vn, active, l) {
					retry = true
				}
			}
		}
		if retry {
			s.markFrontier(sc, vf)
		}
	}
}

// expandBatchChunk is the group-aware flattened kernel: like expandChunk,
// each frontier node's adjacency is walked exactly once for all multiplexed
// queries, but the active set is restricted to the columns of the node's
// live, non-central owner groups, and every frontier mark carries the owner
// groups it belongs to. Per group the writes are exactly the writes its
// solo search would perform, so batched results stay bit-identical.
//
//wikisearch:hotpath
func (s *state) expandBatchChunk(w, start, end int) {
	sc := &s.scratch[w]
	g := s.in.G
	l := s.level
	q := s.m.Q()
	row := sc.row[:q]
	var words []uint64 // non-nil iff a row is a single word (q ≤ 8)
	if s.m.WordsPerRow() == 1 {
		words = s.m.Words()
	}
	for fi := start; fi < end; fi++ {
		vf := graph.NodeID(s.frontier[fi])
		owners := s.fgroups[fi] & s.live
		avail := s.groupCols(owners)
		for ob := owners; ob != 0; ob &= ob - 1 {
			gr := &s.groups[bits.TrailingZeros8(ob)]
			if gr.centralAt[vf] >= 0 {
				avail &^= gr.mask // central for this query: unavailable for expansion
			}
		}
		if avail == 0 {
			continue
		}
		if int(s.in.Levels[vf]) > l {
			// Not yet active: stay a frontier of the remaining owners and
			// retry next level.
			s.markFrontierG(sc, vf, s.colGroups(avail))
			continue
		}
		s.m.Row(vf, row)
		var active uint64 // columns whose BFS frontier vf currently is (h ≤ l)
		for i := 0; i < q; i++ {
			if int(row[i]) <= l {
				active |= 1 << uint(i)
			}
		}
		active &= avail
		if active == 0 {
			continue
		}
		// One shared pass over the bi-directed adjacency serves every
		// multiplexed query — the batch layer's whole point.
		sc.edges += int64(g.Degree(vf))
		var retry uint8
		if words != nil {
			for _, vn := range g.OutNeighbors(vf) {
				todo := active & parallel.MatchFlags(atomic.LoadUint64(&words[vn]), Infinity)
				if todo != 0 {
					retry |= s.visitTodoBatch(sc, vn, todo, l)
				}
			}
			for _, vn := range g.InNeighbors(vf) {
				todo := active & parallel.MatchFlags(atomic.LoadUint64(&words[vn]), Infinity)
				if todo != 0 {
					retry |= s.visitTodoBatch(sc, vn, todo, l)
				}
			}
		} else {
			for _, vn := range g.OutNeighbors(vf) {
				todo := active & s.m.MissMask(vn)
				if todo != 0 {
					retry |= s.visitTodoBatch(sc, vn, todo, l)
				}
			}
			for _, vn := range g.InNeighbors(vf) {
				todo := active & s.m.MissMask(vn)
				if todo != 0 {
					retry |= s.visitTodoBatch(sc, vn, todo, l)
				}
			}
		}
		if retry != 0 {
			s.markFrontierG(sc, vf, retry)
		}
	}
}

// visitOne is visit specialized to a single active column i; it performs
// the identical writes, so the two paths are interchangeable.
//
//wikisearch:hotpath
func (s *state) visitOne(sc *workerScratch, vn graph.NodeID, i, l int) (retry bool) {
	if s.m.Get(vn, i) != Infinity {
		return false
	}
	if s.contains[vn] == 0 && int(s.in.Levels[vn]) > l+1 {
		return true
	}
	s.m.MarkHit(vn, i, uint8(l+1))
	if int(vn) >= s.localN {
		sc.out = append(sc.out, BoundaryMsg{Node: vn, Cols: 1 << uint(i)})
		return false
	}
	s.markFrontier(sc, vn)
	return false
}

// visit processes one neighbor for every active BFS instance in a single
// word-wide read: todo is the set of active columns that have not hit vn
// yet. Non-keyword nodes respect their activation level — they can only be
// hit once the next level reaches it; until then the expanding frontier is
// retained so the expansion retries (§IV-B).
//
//wikisearch:hotpath
func (s *state) visit(sc *workerScratch, vn graph.NodeID, active uint64, l int) (retry bool) {
	todo := active & s.m.MissMask(vn)
	if todo == 0 {
		return false // already hit in every active instance
	}
	return s.visitTodo(sc, vn, todo, l)
}

// visitTodo finishes a visit whose not-yet-hit active columns (todo, non-
// empty) have already been computed.
//
//wikisearch:hotpath
func (s *state) visitTodo(sc *workerScratch, vn graph.NodeID, todo uint64, l int) (retry bool) {
	if s.contains[vn] == 0 && int(s.in.Levels[vn]) > l+1 {
		return true
	}
	hit := uint8(l + 1)
	if s.m.WordsPerRow() == 1 {
		s.m.MarkHitsWord(vn, todo, hit) // all not-yet-hit columns in one atomic AND
	} else {
		for m := todo; m != 0; m &= m - 1 {
			s.m.MarkHit(vn, bits.TrailingZeros64(m), hit)
		}
	}
	if int(vn) >= s.localN {
		sc.out = append(sc.out, BoundaryMsg{Node: vn, Cols: todo})
		return false
	}
	s.markFrontier(sc, vn)
	return false
}

// visitTodoBatch is visitTodo with the §IV-B activation gate evaluated per
// owner group: a not-yet-active neighbor may only be hit by the queries for
// which it is a keyword node (its contains bits within that group's
// submask); every other query retains its frontier and retries — exactly
// the decision its solo search would make against its own q-column matrix.
// Returns the groups that must retry.
//
//wikisearch:hotpath
func (s *state) visitTodoBatch(sc *workerScratch, vn graph.NodeID, todo uint64, l int) (retry uint8) {
	if int(s.in.Levels[vn]) > l+1 {
		c := s.contains[vn]
		var ok uint64
		for ob := s.colGroups(todo); ob != 0; ob &= ob - 1 {
			gi := bits.TrailingZeros8(ob)
			if c&s.groups[gi].mask != 0 {
				ok |= s.groups[gi].mask
			} else {
				retry |= 1 << uint(gi)
			}
		}
		todo &= ok
		if todo == 0 {
			return retry
		}
	}
	hit := uint8(l + 1)
	if s.m.WordsPerRow() == 1 {
		s.m.MarkHitsWord(vn, todo, hit) // all columns of every group in one atomic AND
	} else {
		for m := todo; m != 0; m &= m - 1 {
			s.m.MarkHit(vn, bits.TrailingZeros64(m), hit)
		}
	}
	s.markFrontierG(sc, vn, s.colGroups(todo))
	return retry
}

// expandRefChunk is the per-keyword-column reference kernel — the shape the
// paper's pseudocode suggests and this engine originally shipped: each
// active column walks the closure-based adjacency separately. Kept as the
// equivalence baseline and the benchmark comparison point; it must return
// byte-identical results to expandChunk. Solo only: batches always run the
// flattened kernel.
func (s *state) expandRefChunk(w, start, end int) {
	sc := &s.scratch[w]
	l := s.level
	q := s.m.Q()
	centralAt := s.groups[0].centralAt
	for fi := start; fi < end; fi++ {
		vf := graph.NodeID(s.frontier[fi])
		if centralAt[vf] >= 0 {
			continue
		}
		if int(s.in.Levels[vf]) > l {
			s.markFrontier(sc, vf)
			continue
		}
		for i := 0; i < q; i++ {
			if int(s.m.Get(vf, i)) > l {
				continue // not (yet) a frontier of B_i
			}
			// This kernel genuinely re-walks the adjacency per column, so
			// charging the degree per active column is its true scan count.
			sc.edges += int64(s.in.G.Degree(vf))
			s.in.G.ForEachNeighbor(vf, func(vn graph.NodeID, _ graph.RelID, _ bool) {
				if s.m.Get(vn, i) != Infinity {
					return // already hit in B_i
				}
				if s.contains[vn] == 0 && int(s.in.Levels[vn]) > l+1 {
					s.markFrontier(sc, vf)
					return
				}
				s.m.MarkHit(vn, i, uint8(l+1))
				if int(vn) >= s.localN {
					sc.out = append(sc.out, BoundaryMsg{Node: vn, Cols: 1 << uint(i)})
					return
				}
				s.markFrontier(sc, vn)
			})
		}
	}
}

// finishGroup retires group gi at the current level: its depth d is fixed
// and its columns are frozen out of every subsequent expansion, so no cell
// of a finished query is ever written again — batched hitting levels stay
// bit-identical to the query's solo run.
func (s *state) finishGroup(gi int) {
	gr := &s.groups[gi]
	gr.done = true
	gr.depth = s.level
	s.live &^= 1 << uint(gi)
	s.liveCols &^= gr.mask
}

// bottomUp runs stage one of Algorithm 1 for every column group and returns
// d of the first group — the smallest depth at which at least k Central
// Nodes exist (Definition 4), or the level at which the search exhausted
// the graph or hit MaxLevel. Each group terminates independently, exactly
// when its solo search would: its own frontier empties, it collects topK
// centrals, or it reaches maxLevel. A cancelled context aborts between
// levels.
func (s *state) bottomUp() (int, error) {
	for {
		if err := cancelled(s.p); err != nil {
			return s.level, err
		}
		// lvl0/live open the level's trace span; phase timings share the
		// trace clock so profile and spans can never disagree.
		lvl0 := trace.Now()
		live := uint32(s.live)
		s.enqueueFrontiers()
		t1 := trace.Now()
		s.prof.Phases[PhaseEnqueue] += time.Duration(t1 - lvl0)
		front := int64(len(s.frontier))
		s.buf.Record(0, trace.KindEnqueue, lvl0, t1, s.level, live, front, 0)
		if len(s.frontier) == 0 {
			// Graph exhausted for every remaining query: fewer than k
			// Central Graphs exist.
			for gi := range s.groups {
				if !s.groups[gi].done {
					s.finishGroup(gi)
				}
			}
			s.buf.Record(0, trace.KindLevel, lvl0, trace.Now(), s.level, live, 0, 0)
			break
		}
		if s.multi {
			// A group whose own frontier emptied is exhausted even while
			// others continue — nothing can ever be hit in its columns again.
			for gi := range s.groups {
				if gr := &s.groups[gi]; !gr.done && gr.front == 0 {
					s.finishGroup(gi)
				}
			}
			if s.live == 0 {
				s.buf.Record(0, trace.KindLevel, lvl0, trace.Now(), s.level, live, front, 0)
				break
			}
		}

		t1 = trace.Now()
		prevCentrals := s.centralCount()
		s.identifyCentrals()
		t2 := trace.Now()
		s.prof.Phases[PhaseIdentify] += time.Duration(t2 - t1)
		s.buf.Record(0, trace.KindIdentify, t1, t2, s.level, uint32(s.live), front, s.centralCount()-prevCentrals)
		s.prof.Levels++
		for gi := range s.groups {
			gr := &s.groups[gi]
			if gr.done {
				continue
			}
			if len(gr.centrals) >= gr.topK || s.level >= gr.maxLevel {
				s.finishGroup(gi) // d found for this query
			}
		}
		if s.live == 0 {
			s.buf.Record(0, trace.KindLevel, lvl0, trace.Now(), s.level, live, front, 0)
			break
		}

		t2 = trace.Now()
		prevEdges := s.prof.EdgesScanned
		s.expand()
		t3 := trace.Now()
		s.prof.Phases[PhaseExpand] += time.Duration(t3 - t2)
		edges := s.prof.EdgesScanned - prevEdges
		s.buf.Record(0, trace.KindExpand, t2, t3, s.level, uint32(s.live), front, edges)
		s.buf.Record(0, trace.KindLevel, lvl0, t3, s.level, live, front, edges)
		s.level++
	}
	return s.groups[0].depth, nil
}

// centralCount sums the Central Nodes collected so far across groups (a
// handful of length reads; used to attribute per-level identification
// counts to trace spans).
func (s *state) centralCount() int64 {
	var n int64
	for gi := range s.groups {
		n += int64(len(s.groups[gi].centrals))
	}
	return n
}

// cancelled reports the context error, if a context was set and fired.
func cancelled(p Params) error {
	if p.Ctx == nil {
		return nil
	}
	return p.Ctx.Err()
}
