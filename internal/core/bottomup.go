package core

import (
	"sync/atomic"
	"time"

	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
)

// state carries the shared structures of one two-stage search: the three
// lock-free arrays of §V-B (node-keyword matrix M, FIdentifier, CIdentifier)
// plus frontier bookkeeping.
type state struct {
	in   Input
	p    Params
	pool *parallel.Pool

	m   *Matrix
	fid *parallel.Bitset // FIdentifier: frontier flags for the next level
	cid *parallel.Bitset // CIdentifier: already-identified Central Nodes

	// contains[v] is the mask of query keywords node v contains (v ∈ T_i).
	// Nonzero means "keyword node" in the sense of §IV-B.
	contains []uint64

	frontier  []int32
	centralAt []int32        // BFS level at which v was identified central, -1 otherwise
	centrals  []graph.NodeID // identification order
	level     int

	prof Profile
}

// newState runs the Initialization phase of Algorithm 1: allocate M,
// FIdentifier and CIdentifier, set m_ij = 0 for keyword nodes and flag them
// as level-0 frontiers.
func newState(in Input, p Params, pool *parallel.Pool) *state {
	n := in.G.NumNodes()
	q := len(in.Sources)
	s := &state{
		in:        in,
		p:         p,
		pool:      pool,
		m:         NewMatrix(n, q),
		fid:       parallel.NewBitset(n),
		cid:       parallel.NewBitset(n),
		contains:  make([]uint64, n),
		centralAt: make([]int32, n),
	}
	for i := range s.centralAt {
		s.centralAt[i] = -1
	}
	// fork(); Initialize B_i for all t_i in Q; join(); — one task per
	// keyword, each writing disjoint columns (duplicated source nodes write
	// the containment mask atomically via the bitset-free OR below being
	// per-keyword disjoint; contains[] is merged sequentially to stay
	// race-free at negligible cost).
	thunks := make([]func(), q)
	for i := 0; i < q; i++ {
		i := i
		thunks[i] = func() {
			for _, v := range in.Sources[i] {
				s.m.Set(v, i, 0)
				s.fid.Set(int(v))
			}
		}
	}
	pool.Run(thunks...)
	for i := 0; i < q; i++ {
		bit := uint64(1) << uint(i)
		for _, v := range in.Sources[i] {
			s.contains[v] |= bit
		}
	}
	return s
}

// enqueueFrontiers extracts the frontier queue from FIdentifier and resets
// the flags — sequential on CPU, exactly as the paper found fastest (§V-B,
// "on CPU locked writing is so expensive and the fastest way is to enqueue
// frontiers in a sequential manner"). One joint frontier array serves all
// BFS instances.
func (s *state) enqueueFrontiers() {
	s.frontier = s.fid.AppendSet(s.frontier[:0])
	s.fid.Reset()
	s.prof.FrontierTotal += int64(len(s.frontier))
}

// identifyCentrals scans the frontier for nodes hit by every BFS instance
// (Definition 3) that are not yet central, marks them in CIdentifier and
// records the identification level, which by Lemma V.1 equals the depth of
// the Central Graph. Returns the number of new Central Nodes.
func (s *state) identifyCentrals() int {
	lvl := int32(s.level)
	s.pool.For(len(s.frontier), func(i int) {
		v := graph.NodeID(s.frontier[i])
		if s.cid.Get(int(v)) {
			return
		}
		if s.m.AllHit(v) {
			s.cid.Set(int(v))
			s.centralAt[v] = lvl // each frontier entry is unique: no race
		}
	})
	// Collect in frontier order so results are deterministic regardless of
	// the number of threads.
	found := 0
	for _, f := range s.frontier {
		if s.centralAt[f] == lvl {
			s.centrals = append(s.centrals, graph.NodeID(f))
			found++
		}
	}
	return found
}

// expand runs Algorithm 2 (the Expansion procedure) for the current level:
// every frontier not identified as central and active at this level expands
// each BFS instance it belongs to into its bi-directed neighbors. All
// writes are the idempotent lock-free writes of Theorem V.2.
func (s *state) expand() {
	l := s.level
	q := s.m.Q()
	var scanned atomic.Int64
	s.pool.ForChunks(len(s.frontier), func(start, end int) {
		var local int64
		for fi := start; fi < end; fi++ {
			vf := graph.NodeID(s.frontier[fi])
			if s.cid.Get(int(vf)) {
				continue // central nodes are unavailable for expansion
			}
			af := int(s.in.Levels[vf])
			if af > l {
				// Not yet active: stay a frontier and retry next level.
				s.fid.Set(int(vf))
				continue
			}
			for i := 0; i < q; i++ {
				hif := s.m.Get(vf, i)
				if int(hif) > l {
					continue // not (yet) a frontier of B_i
				}
				local += int64(s.in.G.Degree(vf))
				s.in.G.ForEachNeighbor(vf, func(vn graph.NodeID, _ graph.RelID, _ bool) {
					if s.m.Get(vn, i) != Infinity {
						return // already hit in B_i
					}
					if s.contains[vn] == 0 {
						// Non-keyword nodes respect their activation level:
						// they can only be hit once the next level reaches
						// it; until then the frontier is retained so the
						// expansion retries (§IV-B).
						if int(s.in.Levels[vn]) > l+1 {
							s.fid.Set(int(vf))
							return
						}
					}
					s.m.Set(vn, i, uint8(l+1))
					s.fid.Set(int(vn))
				})
			}
		}
		scanned.Add(local)
	})
	s.prof.EdgesScanned += scanned.Load()
}

// bottomUp runs stage one of Algorithm 1 and returns d — the smallest depth
// at which at least k Central Nodes exist (Definition 4) — or the level at
// which the search exhausted the graph or hit MaxLevel. A cancelled context
// aborts between levels.
func (s *state) bottomUp() (int, error) {
	k := s.p.TopK
	for {
		if err := cancelled(s.p); err != nil {
			return s.level, err
		}
		t0 := time.Now()
		s.enqueueFrontiers()
		s.prof.Phases[PhaseEnqueue] += time.Since(t0)
		if len(s.frontier) == 0 {
			break // graph exhausted: fewer than k Central Graphs exist
		}

		t0 = time.Now()
		s.identifyCentrals()
		s.prof.Phases[PhaseIdentify] += time.Since(t0)
		s.prof.Levels++
		if len(s.centrals) >= k {
			break // d found: all Central Graphs of depth ≤ level collected
		}
		if s.level >= s.p.MaxLevel {
			break
		}

		t0 = time.Now()
		s.expand()
		s.prof.Phases[PhaseExpand] += time.Since(t0)
		s.level++
	}
	return s.level, nil
}

// cancelled reports the context error, if a context was set and fired.
func cancelled(p Params) error {
	if p.Ctx == nil {
		return nil
	}
	return p.Ctx.Err()
}
