package core

import (
	"sync"
	"time"

	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
)

// This file implements CPU-Par-d, the comparison point of §VI: "a parallel
// algorithm with dynamic memory allocation, which does not require
// node-keyword matrix but needs locks on writes and reads. In addition,
// there is no extraction phase needed, since all Central Graphs are
// recorded during search."
//
// Every node carries a lazily allocated record of per-keyword hitting
// levels and hitting-path parents, guarded by a per-node mutex. The
// expansion logic is identical to the lock-free variant, so both produce
// the same Central Nodes, depths and answers; what differs is the cost of
// locked reads and writes on the hot path — which is exactly what Exp-1 and
// Exp-4 measure.

// dynParent is one recorded hitting-path step into a node.
type dynParent struct {
	node    graph.NodeID
	rel     graph.RelID
	forward bool
}

// dynRecord is a node's dynamically allocated search state.
type dynRecord struct {
	hit     map[int]uint8       // keyword → hitting level
	parents map[int][]dynParent // keyword → hitting-path parents
}

// dynNode pairs the record with its lock.
type dynNode struct {
	mu  sync.Mutex
	rec *dynRecord
}

func (d *dynNode) record() *dynRecord {
	if d.rec == nil {
		d.rec = &dynRecord{hit: make(map[int]uint8), parents: make(map[int][]dynParent)}
	}
	return d.rec
}

type dynState struct {
	in   Input
	p    Params
	pool *parallel.Pool

	nodes []dynNode
	fid   *parallel.Bitset
	cid   *parallel.Bitset

	contains  []uint64
	frontier  []int32
	centralAt []int32
	centrals  []graph.NodeID
	level     int

	prof Profile
}

func newDynState(in Input, p Params, pool *parallel.Pool) *dynState {
	n := in.G.NumNodes()
	q := len(in.Sources)
	s := &dynState{
		in:        in,
		p:         p,
		pool:      pool,
		nodes:     make([]dynNode, n),
		fid:       parallel.NewBitset(n),
		cid:       parallel.NewBitset(n),
		contains:  make([]uint64, n),
		centralAt: make([]int32, n),
	}
	for i := range s.centralAt {
		s.centralAt[i] = -1
	}
	thunks := make([]func(), q)
	for i := 0; i < q; i++ {
		i := i
		thunks[i] = func() {
			for _, v := range in.Sources[i] {
				nd := &s.nodes[v]
				nd.mu.Lock()
				nd.record().hit[i] = 0
				nd.mu.Unlock()
				s.fid.Set(int(v))
			}
		}
	}
	pool.Run(thunks...)
	for i := 0; i < q; i++ {
		bit := uint64(1) << uint(i)
		for _, v := range in.Sources[i] {
			s.contains[v] |= bit
		}
	}
	return s
}

// hitLevel reads a node's hitting level for keyword i under its lock.
func (s *dynState) hitLevel(v graph.NodeID, i int) (uint8, bool) {
	nd := &s.nodes[v]
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.rec == nil {
		return 0, false
	}
	h, ok := nd.rec.hit[i]
	return h, ok
}

func (s *dynState) enqueueFrontiers() {
	s.frontier = s.fid.AppendSet(s.frontier[:0])
	s.fid.Reset()
	s.prof.FrontierTotal += int64(len(s.frontier))
}

func (s *dynState) identifyCentrals() {
	q := len(s.in.Sources)
	lvl := int32(s.level)
	s.pool.For(len(s.frontier), func(i int) {
		v := graph.NodeID(s.frontier[i])
		if s.cid.Get(int(v)) {
			return
		}
		nd := &s.nodes[v]
		nd.mu.Lock()
		all := nd.rec != nil && len(nd.rec.hit) == q
		nd.mu.Unlock()
		if all {
			s.cid.Set(int(v))
			s.centralAt[v] = lvl
		}
	})
	for _, f := range s.frontier {
		if s.centralAt[f] == lvl {
			s.centrals = append(s.centrals, graph.NodeID(f))
		}
	}
}

// expand mirrors Algorithm 2 but every hitting-level read and write goes
// through the per-node mutex, and hitting-path parents are recorded inline
// (this is what spares CPU-Par-d the extraction phase at the price of
// locked traversal).
func (s *dynState) expand() {
	l := s.level
	q := len(s.in.Sources)
	s.pool.ForChunks(len(s.frontier), func(start, end int) {
		for fi := start; fi < end; fi++ {
			vf := graph.NodeID(s.frontier[fi])
			if s.cid.Get(int(vf)) {
				continue
			}
			af := int(s.in.Levels[vf])
			if af > l {
				s.fid.Set(int(vf))
				continue
			}
			for i := 0; i < q; i++ {
				hif, ok := s.hitLevel(vf, i)
				if !ok || int(hif) > l {
					continue
				}
				s.in.G.ForEachNeighbor(vf, func(vn graph.NodeID, rel graph.RelID, out bool) {
					nd := &s.nodes[vn]
					nd.mu.Lock()
					rec := nd.record()
					if hin, hit := rec.hit[i]; hit {
						// Another hitting path at the same level: record the
						// extra parent (multi-path answers, §III-B).
						if int(hin) == l+1 {
							rec.parents[i] = append(rec.parents[i], dynParent{vf, rel, out})
						}
						nd.mu.Unlock()
						return
					}
					if s.contains[vn] == 0 && int(s.in.Levels[vn]) > l+1 {
						nd.mu.Unlock()
						s.fid.Set(int(vf))
						return
					}
					rec.hit[i] = uint8(l + 1)
					rec.parents[i] = append(rec.parents[i], dynParent{vf, rel, out})
					nd.mu.Unlock()
					s.fid.Set(int(vn))
				})
			}
		}
	})
}

func (s *dynState) bottomUp() (int, error) {
	k := s.p.TopK
	for {
		if err := cancelled(s.p); err != nil {
			return s.level, err
		}
		t0 := time.Now()
		s.enqueueFrontiers()
		s.prof.Phases[PhaseEnqueue] += time.Since(t0)
		if len(s.frontier) == 0 {
			break
		}
		t0 = time.Now()
		s.identifyCentrals()
		s.prof.Phases[PhaseIdentify] += time.Since(t0)
		s.prof.Levels++
		if len(s.centrals) >= k {
			break
		}
		if s.level >= s.p.MaxLevel {
			break
		}
		t0 = time.Now()
		s.expand()
		s.prof.Phases[PhaseExpand] += time.Since(t0)
		s.level++
	}
	return s.level, nil
}

// recover rebuilds the Central Graph at vc from the recorded parents — a
// walk over stored paths rather than a re-traversal of the data graph.
func (s *dynState) recover(vc graph.NodeID) *extraction {
	q := len(s.in.Sources)
	ex := &extraction{
		central:   vc,
		onPaths:   map[graph.NodeID]uint64{vc: allMask(q)},
		order:     []graph.NodeID{vc},
		edgeIndex: map[edgeKey]int{},
	}
	depth := 0
	for i := 0; i < q; i++ {
		if h, ok := s.hitLevel(vc, i); ok && int(h) > depth {
			depth = int(h)
		}
	}
	ex.depth = depth
	work := []workItem{{vc, allMask(q)}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		vf := it.node
		nd := &s.nodes[vf]
		for i := 0; i < q; i++ {
			if it.bits&(1<<uint(i)) == 0 {
				continue
			}
			nd.mu.Lock()
			var parents []dynParent
			if nd.rec != nil {
				parents = nd.rec.parents[i]
			}
			nd.mu.Unlock()
			for _, p := range parents {
				ex.addEdge(p.node, vf, p.rel, p.forward, uint64(1)<<uint(i))
				prev, known := ex.onPaths[p.node]
				fresh := (uint64(1) << uint(i)) &^ prev
				if fresh == 0 {
					continue
				}
				if !known {
					if len(ex.order) >= s.p.MaxGraphNodes {
						ex.truncated = true
						continue
					}
					ex.order = append(ex.order, p.node)
				}
				ex.onPaths[p.node] = prev | fresh
				work = append(work, workItem{p.node, fresh})
			}
		}
	}
	return ex
}

func (s *dynState) env() *assembleEnv {
	q := len(s.in.Sources)
	return &assembleEnv{
		q:            q,
		contains:     func(v graph.NodeID) uint64 { return s.contains[v] },
		weights:      s.in.Weights,
		lambda:       s.p.Lambda,
		noLevelCover: s.p.DisableLevelCover,
		row: func(v graph.NodeID, dst []uint8) {
			for i := 0; i < q; i++ {
				if h, ok := s.hitLevel(v, i); ok {
					dst[i] = h
				} else {
					dst[i] = Infinity
				}
			}
		},
	}
}

func (s *dynState) topDown() ([]*Answer, error) {
	env := s.env()
	td := make([]tdScratch, s.pool.Workers())
	cands := make([]*candidate, len(s.centrals))
	s.pool.ForWorker(len(s.centrals), func(w, i int) {
		if cancelled(s.p) != nil {
			return
		}
		ex := s.recover(s.centrals[i])
		cands[i] = env.assemble(ex, i, &td[w])
	})
	if err := cancelled(s.p); err != nil {
		return nil, err
	}
	return selectTopK(cands, s.p.TopK), nil
}

// SearchDynamic runs the CPU-Par-d variant of the two-stage algorithm.
func SearchDynamic(in Input, p Params) (*Result, error) {
	p = p.Defaults()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	pool := newSearchPool(p.Threads)
	defer pool.Close()

	t0 := time.Now()
	s := newDynState(in, p, pool)
	s.prof.Phases[PhaseInit] = time.Since(t0)

	d, err := s.bottomUp()
	if err != nil {
		return nil, err
	}

	t0 = time.Now()
	answers, err := s.topDown()
	if err != nil {
		return nil, err
	}
	s.prof.Phases[PhaseTopDown] = time.Since(t0)

	return &Result{
		Answers:           answers,
		DepthD:            d,
		CentralCandidates: len(s.centrals),
		Profile:           s.prof,
	}, nil
}
