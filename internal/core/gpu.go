package core

import (
	"sort"
	"time"

	"wikisearch/internal/device"
	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
)

// This file implements GPU-Par on the SIMT simulator of internal/device,
// preserving the paper's GPU decomposition of Algorithm 1/2:
//
//   - the node-keyword matrix is initialized by a device kernel,
//   - frontiers are enqueued by a device kernel with locked (atomic ticket)
//     writes — viable on GPUs thanks to DDR5X bandwidth (§V-B),
//   - Central Node identification is a flat 1D kernel over frontiers,
//   - expansion launches one warp per (frontier, BFS instance) with lanes
//     striding over the frontier's neighbors,
//   - top-down processing runs on the CPU ("it not only needs dynamic
//     memory allocation … but also diverges a lot", §V-C),
//   - the matrix transfer back to the host is accounted by the device's
//     bandwidth model.

// GPUResult extends Result with the simulated device-transfer accounting.
type GPUResult struct {
	Result
	// TransferSeconds is the simulated device→host time for the
	// node-keyword matrix (the paper's ~25 ms for 300 MB arithmetic).
	TransferSeconds float64
	// MatrixBytes is the size of the transferred matrix.
	MatrixBytes int64
}

// SearchGPU runs the two-stage algorithm with the bottom-up stage mapped
// onto the simulated device and the top-down stage on p.Threads CPU
// workers. Results are identical to Search.
func SearchGPU(in Input, p Params, dev *device.Device) (*GPUResult, error) {
	p = p.Defaults()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	pool := newSearchPool(p.Threads)
	defer pool.Close()

	t0 := time.Now()
	s := newGPUState(in, p, pool, dev)
	s.prof.Phases[PhaseInit] = time.Since(t0)

	d, err := s.bottomUpGPU()
	if err != nil {
		return nil, err
	}

	t0 = time.Now()
	answers, err := s.topDown()
	if err != nil {
		return nil, err
	}
	s.prof.Phases[PhaseTopDown] = time.Since(t0)

	return &GPUResult{
		Result: Result{
			Answers:           answers,
			DepthD:            d,
			CentralCandidates: len(s.groups[0].centrals),
			Profile:           s.prof,
		},
		TransferSeconds: dev.TransferTime(s.m.ByteSize()),
		MatrixBytes:     s.m.ByteSize(),
	}, nil
}

// gpuState wraps the shared state with the device and its frontier queue.
type gpuState struct {
	*state
	dev   *device.Device
	queue *device.Queue
}

func newGPUState(in Input, p Params, pool *parallel.Pool, dev *device.Device) *gpuState {
	n := in.G.NumNodes()
	q := len(in.Sources)
	s := &state{}
	s.prepareCommon(in, p, pool)
	// Device-side initialization kernel: one thread per source entry. The
	// GPU variant flags frontiers directly (its enqueue kernel scans the
	// whole FIdentifier, so touched-word tracking is not needed).
	offsets := make([]int, q+1)
	for i, src := range in.Sources {
		offsets[i+1] = offsets[i] + len(src)
	}
	total := offsets[q]
	dev.Launch1D(total, func(t int) {
		i := sort.SearchInts(offsets[1:], t+1)
		v := in.Sources[i][t-offsets[i]]
		s.m.Set(v, i, 0)
		s.fid.Set(int(v))
	})
	for i := 0; i < q; i++ {
		bit := uint64(1) << uint(i)
		for _, v := range in.Sources[i] {
			s.contains[v] |= bit
		}
	}
	return &gpuState{state: s, dev: dev, queue: device.NewQueue(n)}
}

// enqueueFrontiersGPU parallelizes the FIdentifier scan with locked queue
// appends, then sorts the queue: real GPU frontiers are order-free, but a
// canonical order keeps results bit-identical to the CPU variants.
func (s *gpuState) enqueueFrontiersGPU() {
	n := s.in.G.NumNodes()
	s.queue.Reset()
	s.dev.Launch1D(n, func(v int) {
		if s.fid.Get(v) {
			s.queue.Append(int32(v))
		}
	})
	s.fid.Reset()
	items := s.queue.Items()
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	s.frontier = append(s.frontier[:0], items...)
	s.prof.FrontierTotal += int64(len(s.frontier))
}

// identifyCentralsGPU is a flat kernel over frontiers.
func (s *gpuState) identifyCentralsGPU() {
	gr := &s.groups[0]
	lvl := int32(s.level)
	s.dev.Launch1D(len(s.frontier), func(i int) {
		v := graph.NodeID(s.frontier[i])
		if gr.centralAt[v] >= 0 {
			return
		}
		if s.m.AllHit(v) {
			gr.centralAt[v] = lvl
		}
	})
	for _, f := range s.frontier {
		if gr.centralAt[f] == lvl {
			gr.centrals = append(gr.centrals, graph.NodeID(f))
		}
	}
}

// expandGPU launches one warp per (frontier, BFS instance); lanes stride
// over the frontier's neighbors — the paper's GPU mapping of Algorithm 2.
func (s *gpuState) expandGPU() {
	l := s.level
	q := s.m.Q()
	ws := s.dev.WarpSize
	if ws <= 0 {
		ws = 32
	}
	centralAt := s.groups[0].centralAt
	warps := len(s.frontier) * q
	s.dev.Launch(warps, func(w, lane int) {
		vf := graph.NodeID(s.frontier[w/q])
		i := w % q
		if centralAt[vf] >= 0 {
			return
		}
		af := int(s.in.Levels[vf])
		if af > l {
			if i == 0 && lane == 0 {
				s.fid.Set(int(vf))
			}
			return
		}
		if int(s.m.Get(vf, i)) > l {
			return
		}
		deg := s.in.G.Degree(vf)
		for j := lane; j < deg; j += ws {
			vn, _, _ := s.in.G.Neighbor(vf, j)
			if s.m.Get(vn, i) != Infinity {
				continue
			}
			if s.contains[vn] == 0 && int(s.in.Levels[vn]) > l+1 {
				s.fid.Set(int(vf))
				continue
			}
			s.m.Set(vn, i, uint8(l+1))
			s.fid.Set(int(vn))
		}
	})
}

func (s *gpuState) bottomUpGPU() (int, error) {
	k := s.p.TopK
	for {
		if err := cancelled(s.p); err != nil {
			return s.level, err
		}
		t0 := time.Now()
		s.enqueueFrontiersGPU()
		s.prof.Phases[PhaseEnqueue] += time.Since(t0)
		if len(s.frontier) == 0 {
			break
		}
		t0 = time.Now()
		s.identifyCentralsGPU()
		s.prof.Phases[PhaseIdentify] += time.Since(t0)
		s.prof.Levels++
		if len(s.groups[0].centrals) >= k {
			break
		}
		if s.level >= s.p.MaxLevel {
			break
		}
		t0 = time.Now()
		s.expandGPU()
		s.prof.Phases[PhaseExpand] += time.Since(t0)
		s.level++
	}
	return s.level, nil
}
