package core

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"wikisearch/internal/device"
	"wikisearch/internal/graph"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(10, 3)
	if m.Q() != 3 {
		t.Fatalf("Q = %d", m.Q())
	}
	if m.ByteSize() != 80 { // 10 rows × stride 8 (q=3 padded to a word)
		t.Fatalf("ByteSize = %d", m.ByteSize())
	}
	for v := graph.NodeID(0); v < 10; v++ {
		for j := 0; j < 3; j++ {
			if m.Hit(v, j) {
				t.Fatal("fresh matrix has hits")
			}
		}
	}
	m.Set(4, 1, 7)
	if !m.Hit(4, 1) || m.Get(4, 1) != 7 {
		t.Fatal("Set/Get broken")
	}
	if m.Hit(4, 0) || m.Hit(4, 2) {
		t.Fatal("neighbor columns disturbed")
	}
	if m.AllHit(4) {
		t.Fatal("AllHit with missing columns")
	}
	m.Set(4, 0, 2)
	m.Set(4, 2, 5)
	if !m.AllHit(4) {
		t.Fatal("AllHit false after all columns set")
	}
	mx, ok := m.MaxHit(4)
	if !ok || mx != 7 {
		t.Fatalf("MaxHit = %d,%v", mx, ok)
	}
	if _, ok := m.MaxHit(5); ok {
		t.Fatal("MaxHit true for unhit node")
	}
	row := make([]uint8, 3)
	m.Row(4, row)
	if row[0] != 2 || row[1] != 7 || row[2] != 5 {
		t.Fatalf("Row = %v", row)
	}
}

func TestMatrixQuickRowConsistency(t *testing.T) {
	f := func(vals []byte, qSeed uint8) bool {
		q := int(qSeed%8) + 1
		n := len(vals)/q + 1
		m := NewMatrix(n, q)
		for i, v := range vals {
			m.Set(graph.NodeID(i/q), i%q, v)
		}
		row := make([]uint8, q)
		for v := 0; v < n; v++ {
			m.Row(graph.NodeID(v), row)
			for j := 0; j < q; j++ {
				if row[j] != m.Get(graph.NodeID(v), j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAllMask(t *testing.T) {
	if allMask(1) != 1 || allMask(3) != 7 || allMask(64) != ^uint64(0) {
		t.Fatalf("allMask wrong: %x %x %x", allMask(1), allMask(3), allMask(64))
	}
}

func TestMaxGraphNodesCap(t *testing.T) {
	// A dense bipartite blow-up: many parallel 2-hop paths. With a tiny
	// cap, extraction truncates but must not hang or panic, and the
	// candidate is dropped if coverage is lost.
	b := graph.NewBuilder()
	s0 := b.AddNode("s0", "")
	s1 := b.AddNode("s1", "")
	r := b.Rel("e")
	for i := 0; i < 50; i++ {
		mid := b.AddNode("mid", "")
		b.AddEdge(s0, mid, r)
		b.AddEdge(mid, s1, r)
	}
	g, _ := b.Build()
	in := buildInput(g, nil, nil, []graph.NodeID{s0}, []graph.NodeID{s1})
	res, err := Search(in, Params{TopK: 100, Threads: 1, MaxGraphNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Answers {
		if len(a.Nodes) > 4 {
			t.Fatalf("answer has %d nodes, cap was 4", len(a.Nodes))
		}
		if !a.ContainsAllKeywords(2) {
			t.Fatal("kept answer lost keyword coverage")
		}
	}
}

func TestDisableLevelCoverKeepsEverything(t *testing.T) {
	// Fig. 5 scenario: with pruning, decoys vanish; without, they stay.
	b := graph.NewBuilder()
	c := b.AddNode("central", "")
	ju := b.AddNode("ju", "")
	su := b.AddNode("su", "")
	d1 := b.AddNode("d1", "")
	r := b.Rel("e")
	b.AddEdge(ju, c, r)
	b.AddEdge(su, c, r)
	b.AddEdge(d1, c, r)
	g, _ := b.Build()
	sources := [][]graph.NodeID{{su}, {ju, d1}, {ju}}
	in := buildInput(g, nil, nil, sources...)

	pruned, err := Search(in, Params{TopK: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	kept, err := Search(in, Params{TopK: 1, Threads: 1, DisableLevelCover: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Answers) != 1 || len(kept.Answers) != 1 {
		t.Fatal("missing answers")
	}
	if pruned.Answers[0].PrunedNodes != 1 {
		t.Fatalf("pruned = %d, want 1 (the decoy)", pruned.Answers[0].PrunedNodes)
	}
	if kept.Answers[0].PrunedNodes != 0 {
		t.Fatal("ablated run still pruned")
	}
	if len(kept.Answers[0].Nodes) != len(pruned.Answers[0].Nodes)+1 {
		t.Fatalf("node counts %d vs %d", len(kept.Answers[0].Nodes), len(pruned.Answers[0].Nodes))
	}
}

func TestSearchCancellation(t *testing.T) {
	in, p := randomScenario(t, 42)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Ctx = ctx
	if _, err := Search(in, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("Search with cancelled ctx: err = %v", err)
	}
	if _, err := SearchDynamic(in, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchDynamic with cancelled ctx: err = %v", err)
	}
	if _, err := SearchGPU(in, p, device.GTX1080Ti()); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchGPU with cancelled ctx: err = %v", err)
	}
	// A live context changes nothing.
	p.Ctx = context.Background()
	if _, err := Search(in, p); err != nil {
		t.Fatalf("Search with live ctx: %v", err)
	}
}

func TestVariantsEquivalentWithoutLevelCover(t *testing.T) {
	for seed := int64(400); seed < 415; seed++ {
		in, p := randomScenario(t, seed)
		p.DisableLevelCover = true
		ref, err := Search(in, p)
		if err != nil {
			t.Fatal(err)
		}
		pp := p
		pp.Threads = 4
		par, err := Search(in, pp)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, "no-levelcover CPU-Par", ref, par)
		dyn, err := SearchDynamic(in, pp)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, "no-levelcover CPU-Par-d", ref, dyn)
	}
}
