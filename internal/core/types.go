// Package core implements the paper's primary contribution: the Central
// Graph answer model (§III) and the two-stage parallel algorithm that
// computes top-k Central Graphs (§V) — a lock-free bottom-up multi-BFS that
// solves the top-(k,d) Central Graph problem, followed by top-down
// extraction (Theorem V.4), level-cover pruning and ranking.
package core

import (
	"context"
	"fmt"
	"time"

	"wikisearch/internal/graph"
)

// MaxKeywords bounds the number of BFS instances per query; keyword masks
// are stored in a uint64.
const MaxKeywords = 64

// KernelKind selects the expansion kernel of the bottom-up stage.
type KernelKind int

const (
	// KernelFlat (the default) walks each frontier node's CSR adjacency
	// exactly once, processing all q keyword columns per neighbor with
	// word-wide matrix reads.
	KernelFlat KernelKind = iota
	// KernelReference is the original per-keyword-column kernel: one
	// closure-based adjacency pass per active column. Retained as the
	// equivalence baseline and benchmark comparison point.
	KernelReference
)

// Params are the runtime knobs of a search (Table III of the paper).
type Params struct {
	TopK    int     // k: answers to return (paper default 20)
	Alpha   float64 // α: degree-of-summary preference (paper default 0.1)
	Lambda  float64 // λ: depth exponent in the scoring function (default 0.2)
	AvgDist float64 // A: sampled average shortest distance of the graph
	// MaxLevel is l_max, the maximum BFS expansion depth; it bounds runaway
	// searches when fewer than k Central Graphs exist.
	MaxLevel int
	// Threads is Tnum, the fork/join parallelism. 1 runs the sequential
	// algorithm, matching the paper's Tnum=1 baseline.
	Threads int
	// MaxGraphNodes caps the size of a single extracted Central Graph
	// (defensive; Central Graphs are compact in practice, §V-C).
	MaxGraphNodes int
	// DisableLevelCover skips the level-cover pruning of §V-C (ablation:
	// answers keep every extracted node).
	DisableLevelCover bool
	// Ctx, when non-nil, cancels the search: the bottom-up stage checks it
	// between levels and the top-down stage between extractions. A
	// cancelled search returns the context's error.
	Ctx context.Context
	// Kernel selects the expansion kernel (default KernelFlat). Both
	// kernels return byte-identical results; KernelReference exists for
	// equivalence testing and speedup measurement.
	Kernel KernelKind
}

// Defaults fills unset parameters with the paper's defaults.
func (p Params) Defaults() Params {
	if p.TopK <= 0 {
		p.TopK = 20
	}
	if p.Alpha <= 0 {
		p.Alpha = 0.1
	}
	if p.Lambda < 0 {
		p.Lambda = 0
	}
	if p.Lambda == 0 {
		p.Lambda = 0.2
	}
	if p.MaxLevel <= 0 || p.MaxLevel > 250 {
		p.MaxLevel = 32
	}
	if p.Threads <= 0 {
		p.Threads = 1
	}
	if p.MaxGraphNodes <= 0 {
		p.MaxGraphNodes = 4096
	}
	return p
}

// Input is a prepared query against a prepared graph: the activation levels
// already reflect the query's α, and Sources[i] is T_i, the set of nodes
// containing keyword i.
type Input struct {
	G       *graph.Graph
	Weights []float64 // normalized degree-of-summary weights, len |V|
	Levels  []uint8   // minimum activation levels for the query's α, len |V|
	Terms   []string  // normalized keyword terms, len q
	Sources [][]graph.NodeID
}

// Validate rejects structurally impossible inputs.
func (in *Input) Validate() error {
	if in.G == nil {
		return fmt.Errorf("core: nil graph")
	}
	n := in.G.NumNodes()
	if len(in.Weights) != n || len(in.Levels) != n {
		return fmt.Errorf("core: weights/levels sized %d/%d, want %d", len(in.Weights), len(in.Levels), n)
	}
	q := len(in.Sources)
	if q == 0 {
		return fmt.Errorf("core: query has no keywords")
	}
	if q > MaxKeywords {
		return fmt.Errorf("core: %d keywords exceeds maximum %d", q, MaxKeywords)
	}
	if len(in.Terms) != q {
		return fmt.Errorf("core: %d terms for %d source sets", len(in.Terms), q)
	}
	for i, s := range in.Sources {
		if len(s) == 0 {
			return fmt.Errorf("core: keyword %q matches no nodes", in.Terms[i])
		}
		for _, v := range s {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("core: source node %d out of range", v)
			}
		}
	}
	return nil
}

// Phase identifies one profiled step of Algorithm 1.
type Phase int

// The profiled phases, matching the panels of Fig. 6/7.
const (
	PhaseInit Phase = iota
	PhaseEnqueue
	PhaseIdentify
	PhaseExpand
	PhaseTopDown
	// PhaseExchange and PhaseMerge exist only on sharded searches: the
	// per-level cross-shard boundary application and the global central
	// merge plus matrix absorption (solo profiles leave them zero).
	PhaseExchange
	PhaseMerge
	numPhases
)

// String returns the paper's name for the phase.
func (p Phase) String() string {
	switch p {
	case PhaseInit:
		return "Initialization"
	case PhaseEnqueue:
		return "Enqueuing Frontiers"
	case PhaseIdentify:
		return "Identifying Central Nodes"
	case PhaseExpand:
		return "Expansion"
	case PhaseTopDown:
		return "Top-down Processing"
	case PhaseExchange:
		return "Frontier Exchange"
	case PhaseMerge:
		return "Global Merge"
	}
	return "Unknown"
}

// Profile records per-phase wall time plus search-shape counters.
type Profile struct {
	Phases        [numPhases]time.Duration
	Levels        int   // BFS levels executed
	FrontierTotal int64 // Σ frontier sizes over all levels
	// EdgesScanned counts adjacency entries actually walked during
	// expansion: KernelFlat charges each expanded frontier node's degree
	// once (one pass covers all columns); KernelReference re-walks the
	// adjacency per active column and is charged accordingly.
	EdgesScanned int64
}

// Total returns the summed phase time (the "Total time" panel).
func (pr *Profile) Total() time.Duration {
	var t time.Duration
	for _, d := range pr.Phases {
		t += d
	}
	return t
}

// Add accumulates another profile into pr (for workload averaging).
func (pr *Profile) Add(o *Profile) {
	for i := range pr.Phases {
		pr.Phases[i] += o.Phases[i]
	}
	pr.Levels += o.Levels
	pr.FrontierTotal += o.FrontierTotal
	pr.EdgesScanned += o.EdgesScanned
}

// AnswerEdge is one hitting-path step inside an answer graph. From expanded
// to To during the bottom-up search (so paths flow keyword sources → Central
// Node); Rel is the label of the underlying graph edge and Forward tells
// whether that edge is stored as From→To (true) or To→From (false) in the
// directed knowledge graph.
type AnswerEdge struct {
	From, To graph.NodeID
	Rel      graph.RelID
	Forward  bool
	Keywords uint64 // mask of keyword indices whose hitting paths use this edge
}

// AnswerNode is one node of an answer graph.
type AnswerNode struct {
	ID graph.NodeID
	// Contains is the mask of query keywords the node itself contains
	// (bit i set ⇔ node ∈ T_i).
	Contains uint64
	// OnPaths is the mask of keywords whose hitting paths traverse the node.
	OnPaths uint64
	// HitLevels[i] is the node's hitting level w.r.t. BFS instance B_i
	// (0xFF when the node was never hit by B_i).
	HitLevels []uint8
}

// Answer is one pruned, scored Central Graph.
type Answer struct {
	Central graph.NodeID
	Depth   int // d(C), Eq. 1
	Score   float64
	Nodes   []AnswerNode
	Edges   []AnswerEdge
	// PrunedNodes counts nodes removed by the level-cover strategy.
	PrunedNodes int
}

// NodeIDs returns the ids of the answer's nodes in extraction order.
func (a *Answer) NodeIDs() []graph.NodeID {
	out := make([]graph.NodeID, len(a.Nodes))
	for i, n := range a.Nodes {
		out[i] = n.ID
	}
	return out
}

// ContainsAllKeywords reports whether the answer's node set covers every
// query keyword by containment — an invariant the engine guarantees.
func (a *Answer) ContainsAllKeywords(q int) bool {
	var mask uint64
	for _, n := range a.Nodes {
		mask |= n.Contains
	}
	return mask == allMask(q)
}

// Result is the outcome of a full two-stage search.
type Result struct {
	Answers []*Answer
	// DepthD is d of the top-(k,d) problem: the level at which the
	// bottom-up stage stopped.
	DepthD int
	// CentralCandidates is the number of Central Nodes identified by the
	// bottom-up stage, i.e. |top-(k,d) set| before pruning and ranking.
	CentralCandidates int
	Profile           Profile
}

func allMask(q int) uint64 {
	if q >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(q)) - 1
}
