package core

import (
	"math"
	"testing"

	"wikisearch/internal/graph"
)

// buildInput assembles an Input with explicit activation levels (bypassing
// the weight pipeline) so tests control search behavior exactly.
func buildInput(g *graph.Graph, levels []uint8, weights []float64, sources ...[]graph.NodeID) Input {
	n := g.NumNodes()
	if levels == nil {
		levels = make([]uint8, n)
	}
	if weights == nil {
		weights = make([]float64, n)
	}
	terms := make([]string, len(sources))
	for i := range terms {
		terms[i] = "t" + string(rune('0'+i))
	}
	return Input{G: g, Weights: weights, Levels: levels, Terms: terms, Sources: sources}
}

// fig2Graph builds the graph of the paper's Fig. 2: v0–v3, v1–v3, v1–v4,
// v2–v4, v3–v4 (undirected semantics via bi-directed traversal).
func fig2Graph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	for i := 0; i < 5; i++ {
		b.AddNode("v", "")
	}
	r := b.Rel("e")
	b.AddEdge(0, 3, r)
	b.AddEdge(1, 3, r)
	b.AddEdge(1, 4, r)
	b.AddEdge(2, 4, r)
	b.AddEdge(3, 4, r)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFig2HittingLevels(t *testing.T) {
	// Example 1: B0 from {v0}, B1 from {v1, v2}. With k forcing a full run,
	// h¹₁ = h¹₂ = 0, h¹₃ = h¹₄ = 1.
	g := fig2Graph(t)
	in := buildInput(g, nil, nil, []graph.NodeID{0}, []graph.NodeID{1, 2})
	p := Params{TopK: 100, Threads: 1}.Defaults()
	pool := newSearchPool(1)
	s := newState(in, p, pool)
	s.bottomUp()
	check := func(v graph.NodeID, j int, want uint8) {
		t.Helper()
		if got := s.m.Get(v, j); got != want {
			t.Errorf("h^%d(v%d) = %d, want %d", j, v, got, want)
		}
	}
	check(1, 1, 0)
	check(2, 1, 0)
	check(3, 1, 1)
	check(4, 1, 1)
	check(0, 0, 0)
	check(3, 0, 1)
}

func TestFig2CentralNodeV3(t *testing.T) {
	// Example 3: the Central Graph at v3 has depth 1 and covers hitting
	// paths v0→v3 and v1→v3.
	g := fig2Graph(t)
	in := buildInput(g, nil, nil, []graph.NodeID{0}, []graph.NodeID{1, 2})
	res, err := Search(in, Params{TopK: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DepthD != 1 {
		t.Fatalf("d = %d, want 1", res.DepthD)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("answers = %d, want 1", len(res.Answers))
	}
	a := res.Answers[0]
	if a.Central != 3 || a.Depth != 1 {
		t.Fatalf("central = v%d depth %d, want v3 depth 1", a.Central, a.Depth)
	}
	ids := map[graph.NodeID]bool{}
	for _, n := range a.Nodes {
		ids[n.ID] = true
	}
	if !ids[0] || !ids[1] || !ids[3] {
		t.Fatalf("answer nodes = %v, want {v0,v1,v3}", a.NodeIDs())
	}
	if ids[4] || ids[2] {
		t.Fatalf("answer contains nodes off the hitting paths: %v", a.NodeIDs())
	}
	if !a.ContainsAllKeywords(2) {
		t.Fatal("answer does not cover all keywords")
	}
}

func TestFig2CentralNodeV4MultiPath(t *testing.T) {
	// Removing v1–v3 makes v4 the sole depth-2 central with multi-paths
	// v1→v4 and v2→v4 from keyword 1 plus v0→v3→v4 from keyword 0.
	b := graph.NewBuilder()
	for i := 0; i < 5; i++ {
		b.AddNode("v", "")
	}
	r := b.Rel("e")
	b.AddEdge(0, 3, r)
	b.AddEdge(1, 4, r)
	b.AddEdge(2, 4, r)
	b.AddEdge(3, 4, r)
	g, _ := b.Build()
	in := buildInput(g, nil, nil, []graph.NodeID{0}, []graph.NodeID{1, 2})
	// Both v3 (m=[1,2]) and v4 (m=[2,1]) become central at level 2.
	res, err := Search(in, Params{TopK: 2, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}
	var a *Answer
	for _, cand := range res.Answers {
		if cand.Central == 4 {
			a = cand
		}
	}
	if a == nil || a.Depth != 2 {
		t.Fatalf("no depth-2 answer centered at v4 in %v", res.Answers)
	}
	// Multi-path: both v1 and v2 (same keyword) present.
	ids := map[graph.NodeID]bool{}
	for _, n := range a.Nodes {
		ids[n.ID] = true
	}
	for _, want := range []graph.NodeID{0, 1, 2, 3, 4} {
		if !ids[want] {
			t.Fatalf("missing node v%d in %v", want, a.NodeIDs())
		}
	}
	// Hitting-path edges: v1→v4 and v2→v4 both present (multi-path).
	var intoCentral int
	for _, e := range a.Edges {
		if e.To == 4 && (e.From == 1 || e.From == 2) {
			intoCentral++
		}
	}
	if intoCentral != 2 {
		t.Fatalf("multi-path edges into central = %d, want 2", intoCentral)
	}
}

func TestActivationDelaysHit(t *testing.T) {
	// §IV-B: a non-keyword node with activation a cannot be hit before
	// level a; the frontier is retained and retries.
	// Path: s0 — mid — s1 with a(mid) = 3.
	b := graph.NewBuilder()
	b.AddNode("s0", "")
	b.AddNode("mid", "")
	b.AddNode("s1", "")
	r := b.Rel("e")
	b.AddEdge(0, 1, r)
	b.AddEdge(1, 2, r)
	g, _ := b.Build()
	levels := []uint8{0, 3, 0}
	in := buildInput(g, levels, nil, []graph.NodeID{0}, []graph.NodeID{2})
	res, err := Search(in, Params{TopK: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("answers = %d, want 1", len(res.Answers))
	}
	a := res.Answers[0]
	if a.Central != 1 {
		t.Fatalf("central = v%d, want mid", a.Central)
	}
	// mid is hit no earlier than its activation level.
	for _, n := range a.Nodes {
		if n.ID != 1 {
			continue
		}
		for j, h := range n.HitLevels {
			if h != Infinity && int(h) < 3 {
				t.Fatalf("mid hit at level %d for keyword %d, before activation 3", h, j)
			}
		}
	}
	if a.Depth < 3 {
		t.Fatalf("depth %d < activation 3", a.Depth)
	}
}

func TestKeywordNodeHitWithoutActivation(t *testing.T) {
	// §IV-B compromise: keyword nodes are hit regardless of activation but
	// expand only once the level reaches their activation.
	// s0 — kw(activation 5) — s1; kw contains keyword 1 = {kw, s1}? Use
	// three keywords to force paths through kw.
	b := graph.NewBuilder()
	b.AddNode("s0", "")
	b.AddNode("kw", "") // keyword node with high activation
	b.AddNode("s1", "")
	r := b.Rel("e")
	b.AddEdge(0, 1, r)
	b.AddEdge(1, 2, r)
	g, _ := b.Build()
	levels := []uint8{0, 5, 0}
	in := buildInput(g, levels, nil, []graph.NodeID{0}, []graph.NodeID{1}, []graph.NodeID{2})
	res, err := Search(in, Params{TopK: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	a := res.Answers[0]
	if a.Central != 1 {
		t.Fatalf("central = v%d, want kw", a.Central)
	}
	// kw is hit by keywords 0 and 2 at level 1, despite activation 5 —
	// being a keyword node, hitting is unrestricted.
	for _, n := range a.Nodes {
		if n.ID != 1 {
			continue
		}
		if n.HitLevels[0] != 1 || n.HitLevels[2] != 1 {
			t.Fatalf("kw hit levels = %v, want keyword 0 and 2 at level 1", n.HitLevels)
		}
	}
	// But its expansion is delayed: s0 can only be hit by keyword 2 (via
	// kw) at level ≥ 6.
	if a.Depth != 1 {
		t.Fatalf("depth = %d, want 1 (kw itself is the central)", a.Depth)
	}
}

func TestCentralUnavailableForExpansion(t *testing.T) {
	// Once v3 is central it stops expanding: with k=2 on the Fig. 2 graph,
	// B0 can never reach v4 (its only route is through v3), so only one
	// central exists.
	g := fig2Graph(t)
	in := buildInput(g, nil, nil, []graph.NodeID{0}, []graph.NodeID{1, 2})
	res, err := Search(in, Params{TopK: 2, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CentralCandidates != 1 {
		t.Fatalf("central candidates = %d, want 1 (v3 blocks the path)", res.CentralCandidates)
	}
	if len(res.Answers) != 1 || res.Answers[0].Central != 3 {
		t.Fatalf("answers = %v", res.Answers)
	}
}

func TestSourceNodeContainingAllKeywordsIsDepthZeroCentral(t *testing.T) {
	b := graph.NewBuilder()
	b.AddNode("all", "")
	b.AddNode("other", "")
	b.AddEdgeNamed(0, 1, "e")
	g, _ := b.Build()
	in := buildInput(g, nil, nil, []graph.NodeID{0}, []graph.NodeID{0, 1})
	res, err := Search(in, Params{TopK: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DepthD != 0 {
		t.Fatalf("d = %d, want 0", res.DepthD)
	}
	a := res.Answers[0]
	if a.Central != 0 || a.Depth != 0 || len(a.Nodes) != 1 {
		t.Fatalf("answer = central v%d depth %d nodes %v", a.Central, a.Depth, a.NodeIDs())
	}
	if a.Score != 0 {
		t.Fatalf("depth-0 score = %v, want 0 (d^λ = 0)", a.Score)
	}
}

func TestNoAnswersOnDisconnectedKeywords(t *testing.T) {
	b := graph.NewBuilder()
	b.AddNode("a", "")
	b.AddNode("b", "")
	g, _ := b.Build()
	in := buildInput(g, nil, nil, []graph.NodeID{0}, []graph.NodeID{1})
	res, err := Search(in, Params{TopK: 5, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 || res.CentralCandidates != 0 {
		t.Fatalf("expected no answers, got %d (%d candidates)", len(res.Answers), res.CentralCandidates)
	}
}

func TestValidateErrors(t *testing.T) {
	g := fig2Graph(t)
	cases := []struct {
		name string
		in   Input
	}{
		{"nil graph", Input{}},
		{"no keywords", buildInput(g, nil, nil)},
		{"empty source set", buildInput(g, nil, nil, []graph.NodeID{})},
		{"out of range source", buildInput(g, nil, nil, []graph.NodeID{99})},
		{"bad weights", Input{G: g, Weights: []float64{1}, Levels: make([]uint8, 5), Terms: []string{"x"}, Sources: [][]graph.NodeID{{0}}}},
	}
	for _, c := range cases {
		if _, err := Search(c.in, Params{}); err == nil {
			t.Errorf("%s: Search accepted invalid input", c.name)
		}
		if _, err := SearchDynamic(c.in, Params{}); err == nil {
			t.Errorf("%s: SearchDynamic accepted invalid input", c.name)
		}
	}
	// Too many keywords.
	many := make([][]graph.NodeID, MaxKeywords+1)
	for i := range many {
		many[i] = []graph.NodeID{0}
	}
	in := buildInput(g, nil, nil, many...)
	if _, err := Search(in, Params{}); err == nil {
		t.Error("Search accepted > MaxKeywords keywords")
	}
}

func TestMaxLevelBoundsSearch(t *testing.T) {
	// A long path with k unreachable within MaxLevel terminates at MaxLevel.
	b := graph.NewBuilder()
	const n = 50
	for i := 0; i < n; i++ {
		b.AddNode("v", "")
	}
	r := b.Rel("e")
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), r)
	}
	g, _ := b.Build()
	in := buildInput(g, nil, nil, []graph.NodeID{0}, []graph.NodeID{n - 1})
	res, err := Search(in, Params{TopK: 1, Threads: 1, MaxLevel: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Fatalf("found answers within MaxLevel=5 on a 50-path: %v", res.Answers)
	}
	if res.DepthD > 5 {
		t.Fatalf("search ran to level %d, beyond MaxLevel", res.DepthD)
	}
}

func TestScoreEquation6(t *testing.T) {
	if got := Score(4, 2.5, 0.2); math.Abs(got-math.Pow(4, 0.2)*2.5) > 1e-12 {
		t.Fatalf("Score = %v", got)
	}
	if Score(0, 5, 0.2) != 0 {
		t.Fatal("Score(0, ·) must be 0")
	}
	// λ=0 ignores depth.
	if Score(7, 3, 0) != 3 {
		t.Fatal("λ=0 must ignore depth")
	}
}

func TestScoringPrefersInformativeNodes(t *testing.T) {
	// Two parallel 2-hop routes between the keyword endpoints; the route
	// through the low-weight (informative) middle node must rank first.
	b := graph.NewBuilder()
	b.AddNode("s0", "")      // 0
	b.AddNode("summary", "") // 1: heavy
	b.AddNode("info", "")    // 2: light
	b.AddNode("s1", "")      // 3
	r := b.Rel("e")
	b.AddEdge(0, 1, r)
	b.AddEdge(1, 3, r)
	b.AddEdge(0, 2, r)
	b.AddEdge(2, 3, r)
	g, _ := b.Build()
	weights := []float64{0, 0.875, 0.125, 0}
	in := buildInput(g, nil, weights, []graph.NodeID{0}, []graph.NodeID{3})
	res, err := Search(in, Params{TopK: 2, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(res.Answers))
	}
	if res.Answers[0].Central != 2 || res.Answers[1].Central != 1 {
		t.Fatalf("ranking = [v%d, v%d], want [info, summary]", res.Answers[0].Central, res.Answers[1].Central)
	}
	if res.Answers[0].Score >= res.Answers[1].Score {
		t.Fatal("scores not ascending")
	}
}

func TestProfilePhasesPopulated(t *testing.T) {
	g := fig2Graph(t)
	in := buildInput(g, nil, nil, []graph.NodeID{0}, []graph.NodeID{1, 2})
	res, err := Search(in, Params{TopK: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.Levels == 0 || res.Profile.FrontierTotal == 0 {
		t.Fatalf("profile counters empty: %+v", res.Profile)
	}
	if res.Profile.Total() <= 0 {
		t.Fatal("total time not positive")
	}
	// Phase names for the harness.
	want := []string{"Initialization", "Enqueuing Frontiers", "Identifying Central Nodes", "Expansion", "Top-down Processing"}
	for i, w := range want {
		if Phase(i).String() != w {
			t.Errorf("Phase(%d) = %q, want %q", i, Phase(i), w)
		}
	}
}
