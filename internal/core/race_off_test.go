//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; allocation
// guards skip under -race because race instrumentation itself allocates.
const raceEnabled = false
