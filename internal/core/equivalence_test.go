package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"wikisearch/internal/device"
	"wikisearch/internal/graph"
)

// randomScenario builds a random graph, activation levels, dyadic weights
// (so score sums are bit-exact regardless of summation split) and a random
// multi-keyword query, all deterministic in seed.
func randomScenario(t testing.TB, seed int64) (Input, Params) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 20 + rng.Intn(60)
	m := n + rng.Intn(3*n)
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("n%d", i), "")
	}
	rels := []graph.RelID{b.Rel("r0"), b.Rel("r1"), b.Rel("r2")}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), rels[rng.Intn(3)])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	levels := make([]uint8, n)
	weights := make([]float64, n)
	for i := range levels {
		levels[i] = uint8(rng.Intn(4))
		weights[i] = float64(rng.Intn(1024)) / 1024
	}
	q := 2 + rng.Intn(3)
	sources := make([][]graph.NodeID, q)
	for i := range sources {
		sz := 1 + rng.Intn(4)
		seen := map[graph.NodeID]bool{}
		for len(sources[i]) < sz {
			v := graph.NodeID(rng.Intn(n))
			if !seen[v] {
				seen[v] = true
				sources[i] = append(sources[i], v)
			}
		}
		sort.Slice(sources[i], func(a, b int) bool { return sources[i][a] < sources[i][b] })
	}
	in := buildInput(g, levels, weights, sources...)
	p := Params{TopK: 1 + rng.Intn(8), Threads: 1, MaxLevel: 16}
	return in, p
}

// answerFingerprint reduces an answer to a comparable canonical form.
type answerFingerprint struct {
	central graph.NodeID
	depth   int
	score   float64
	nodes   string
	edges   string
}

func fingerprint(a *Answer) answerFingerprint {
	ids := a.NodeIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	nodes := fmt.Sprint(ids)
	es := make([]string, len(a.Edges))
	for i, e := range a.Edges {
		es[i] = fmt.Sprintf("%d>%d:%d:%v:%x", e.From, e.To, e.Rel, e.Forward, e.Keywords)
	}
	sort.Strings(es)
	return answerFingerprint{a.Central, a.Depth, math.Round(a.Score*1e9) / 1e9, nodes, fmt.Sprint(es)}
}

func resultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.DepthD != b.DepthD {
		t.Fatalf("%s: d mismatch %d vs %d", label, a.DepthD, b.DepthD)
	}
	if a.CentralCandidates != b.CentralCandidates {
		t.Fatalf("%s: candidates %d vs %d", label, a.CentralCandidates, b.CentralCandidates)
	}
	if len(a.Answers) != len(b.Answers) {
		t.Fatalf("%s: answer counts %d vs %d", label, len(a.Answers), len(b.Answers))
	}
	for i := range a.Answers {
		fa, fb := fingerprint(a.Answers[i]), fingerprint(b.Answers[i])
		if fa != fb {
			t.Fatalf("%s: answer %d differs:\n  %+v\n  %+v", label, i, fa, fb)
		}
	}
}

// TestVariantsEquivalent is the core integration property: the sequential
// algorithm, CPU-Par at several thread counts, and the lock-based dynamic
// variant all return identical results.
func TestVariantsEquivalent(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		in, p := randomScenario(t, seed)
		ref, err := Search(in, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{2, 4, 8} {
			pp := p
			pp.Threads = threads
			got, err := Search(in, pp)
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, fmt.Sprintf("seed %d CPU-Par T=%d", seed, threads), ref, got)
		}
		for _, threads := range []int{1, 4} {
			pp := p
			pp.Threads = threads
			got, err := SearchDynamic(in, pp)
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, fmt.Sprintf("seed %d CPU-Par-d T=%d", seed, threads), ref, got)
		}
	}
}

// TestGPUEquivalent: the SIMT-mapped variant returns identical results to
// the CPU variants across device shapes.
func TestGPUEquivalent(t *testing.T) {
	shapes := []*device.Device{
		{SMs: 1, WarpSize: 1}, // fully serialized
		{SMs: 4, WarpSize: 8}, // small grid
		device.GTX1080Ti(),    // paper hardware shape
	}
	for seed := int64(50); seed < 80; seed++ {
		in, p := randomScenario(t, seed)
		ref, err := Search(in, p)
		if err != nil {
			t.Fatal(err)
		}
		for si, dev := range shapes {
			got, err := SearchGPU(in, p, dev)
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, fmt.Sprintf("seed %d GPU shape %d", seed, si), ref, &got.Result)
			if got.MatrixBytes != int64(in.G.NumNodes()*rowStride(len(in.Sources))) {
				t.Fatalf("matrix bytes = %d", got.MatrixBytes)
			}
			if dev.HostBandwidth > 0 && got.TransferSeconds <= 0 {
				t.Fatal("transfer time not accounted")
			}
		}
	}
}

// TestSearchDeterministic re-runs the same parallel search and demands
// byte-identical results (lock-free writes must not introduce schedule
// dependence).
func TestSearchDeterministic(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		in, p := randomScenario(t, seed)
		p.Threads = 8
		a, err := Search(in, p)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			b, err := Search(in, p)
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, fmt.Sprintf("seed %d rep %d", seed, rep), a, b)
		}
	}
}

// TestAnswerInvariants checks the model invariants of §III–V on random
// scenarios:
//   - every answer covers every keyword by containment (level-cover safety),
//   - depth equals the central node's maximum hitting level and is ≤ d,
//   - non-keyword nodes are never hit before their activation level,
//   - at most k answers, scores ascending,
//   - every answer edge connects nodes of the answer and its keyword mask
//     is consistent with hitting levels (Theorem V.4 soundness),
//   - answers are connected: every node reaches the central node via edges.
func TestAnswerInvariants(t *testing.T) {
	for seed := int64(200); seed < 260; seed++ {
		in, p := randomScenario(t, seed)
		p.Threads = 4
		res, err := Search(in, p)
		if err != nil {
			t.Fatal(err)
		}
		q := len(in.Sources)
		if len(res.Answers) > p.Defaults().TopK {
			t.Fatalf("seed %d: %d answers > k", seed, len(res.Answers))
		}
		for i := 1; i < len(res.Answers); i++ {
			if res.Answers[i].Score < res.Answers[i-1].Score {
				t.Fatalf("seed %d: scores not ascending", seed)
			}
		}
		for ai, a := range res.Answers {
			if !a.ContainsAllKeywords(q) {
				t.Fatalf("seed %d answer %d: does not cover all keywords", seed, ai)
			}
			if a.Depth > res.DepthD {
				t.Fatalf("seed %d answer %d: depth %d > d %d", seed, ai, a.Depth, res.DepthD)
			}
			inAnswer := map[graph.NodeID]*AnswerNode{}
			for j := range a.Nodes {
				n := &a.Nodes[j]
				inAnswer[n.ID] = n
				isKeywordNode := n.Contains != 0
				var maxHit uint8
				for _, h := range n.HitLevels {
					if h == Infinity {
						continue
					}
					if h > maxHit {
						maxHit = h
					}
					if !isKeywordNode && int(h) < int(in.Levels[n.ID]) {
						t.Fatalf("seed %d: node %d hit at %d before activation %d",
							seed, n.ID, h, in.Levels[n.ID])
					}
				}
				if n.ID == a.Central && int(maxHit) != a.Depth {
					t.Fatalf("seed %d: central max hit %d != depth %d (Eq. 1)", seed, maxHit, a.Depth)
				}
			}
			// Edges connect answer nodes; undirected connectivity to central.
			reach := map[graph.NodeID]bool{a.Central: true}
			adj := map[graph.NodeID][]graph.NodeID{}
			for _, e := range a.Edges {
				if inAnswer[e.From] == nil || inAnswer[e.To] == nil {
					t.Fatalf("seed %d: edge endpoints outside answer", seed)
				}
				if e.Keywords == 0 {
					t.Fatalf("seed %d: edge with empty keyword mask", seed)
				}
				adj[e.From] = append(adj[e.From], e.To)
				adj[e.To] = append(adj[e.To], e.From)
			}
			stack := []graph.NodeID{a.Central}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range adj[v] {
					if !reach[w] {
						reach[w] = true
						stack = append(stack, w)
					}
				}
			}
			for id := range inAnswer {
				if !reach[id] {
					t.Fatalf("seed %d: node %d disconnected from central %d", seed, id, a.Central)
				}
			}
		}
	}
}

// TestExtractionSoundness verifies Theorem V.4 directly: for every answer
// edge parent→child on keyword i, the recorded hitting levels satisfy the
// theorem's equality.
func TestExtractionSoundness(t *testing.T) {
	for seed := int64(300); seed < 340; seed++ {
		in, p := randomScenario(t, seed)
		res, err := Search(in, p)
		if err != nil {
			t.Fatal(err)
		}
		contains := make(map[graph.NodeID]bool)
		for _, src := range in.Sources {
			for _, v := range src {
				contains[v] = true
			}
		}
		for _, a := range res.Answers {
			hit := map[graph.NodeID][]uint8{}
			for _, n := range a.Nodes {
				hit[n.ID] = n.HitLevels
			}
			for _, e := range a.Edges {
				for i := 0; i < len(in.Sources); i++ {
					if e.Keywords&(1<<uint(i)) == 0 {
						continue
					}
					hChild := int(hit[e.To][i])
					hParent := int(hit[e.From][i])
					aParent := int(in.Levels[e.From])
					want := 1 + max(aParent, hParent)
					if !contains[e.To] {
						want = 1 + max(aParent, hParent, int(in.Levels[e.To])-1)
					}
					if hChild != want {
						t.Fatalf("seed %d: edge %d→%d keyword %d: child hit %d, Theorem V.4 gives %d",
							seed, e.From, e.To, i, hChild, want)
					}
				}
			}
		}
	}
}

// TestLevelCoverPreservesCoverage exercises the Fig. 5 scenario: decoy
// single-keyword nodes sharing a level with a needed single-keyword node
// are pruned, the needed one kept.
func TestLevelCoverFig5(t *testing.T) {
	// Central c; a 2-keyword node ju ("Jeffrey Ullman"); a 1-keyword node
	// su ("Stanford University"); two decoys containing only "Jeffrey".
	b := graph.NewBuilder()
	c := b.AddNode("central", "")
	ju := b.AddNode("jeffrey ullman", "")
	su := b.AddNode("stanford university", "")
	d1 := b.AddNode("jeffrey decoy 1", "")
	d2 := b.AddNode("jeffrey decoy 2", "")
	r := b.Rel("e")
	b.AddEdge(ju, c, r)
	b.AddEdge(su, c, r)
	b.AddEdge(d1, c, r)
	b.AddEdge(d2, c, r)
	g, _ := b.Build()
	// Keywords: 0=stanford {su}, 1=jeffrey {ju,d1,d2}, 2=ullman {ju}.
	in := buildInput(g, nil, nil,
		[]graph.NodeID{su}, []graph.NodeID{ju, d1, d2}, []graph.NodeID{ju})
	res, err := Search(in, Params{TopK: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("answers = %d", len(res.Answers))
	}
	a := res.Answers[0]
	if a.Central != c {
		t.Fatalf("central = %d, want %d", a.Central, c)
	}
	ids := map[graph.NodeID]bool{}
	for _, n := range a.Nodes {
		ids[n.ID] = true
	}
	if !ids[ju] || !ids[su] {
		t.Fatalf("kept nodes %v must include ju and su", a.NodeIDs())
	}
	if ids[d1] || ids[d2] {
		t.Fatalf("decoys not pruned: %v", a.NodeIDs())
	}
	if a.PrunedNodes != 2 {
		t.Fatalf("PrunedNodes = %d, want 2", a.PrunedNodes)
	}
	if !a.ContainsAllKeywords(3) {
		t.Fatal("coverage lost by pruning")
	}
}

// TestSupersetAnswersRemoved: an answer whose node set strictly contains a
// better-ranked answer's node set is dropped from the top-k.
func TestSupersetAnswersRemoved(t *testing.T) {
	cands := []*candidate{
		mkCand(0, 1.0, []graph.NodeID{1, 2, 3}, 0),
		mkCand(1, 2.0, []graph.NodeID{1, 2, 3, 4, 5}, 1), // superset of first
		mkCand(2, 3.0, []graph.NodeID{6, 7}, 2),
	}
	out := selectTopK(cands, 10)
	if len(out) != 2 {
		t.Fatalf("kept %d answers, want 2", len(out))
	}
	if out[0].Central != 0 || out[1].Central != 2 {
		t.Fatalf("kept centrals %d,%d", out[0].Central, out[1].Central)
	}
}

// TestSelectTopKProperties: on random candidate pools, selection (a) never
// exceeds k, (b) is sorted by score, (c) never keeps a strict superset of
// an earlier (better) answer, (d) drops non-covering candidates and nils.
func TestSelectTopKProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(20)
		cands := make([]*candidate, 0, n+1)
		for i := 0; i < n; i++ {
			size := 1 + rng.Intn(5)
			seen := map[graph.NodeID]bool{}
			ids := make([]graph.NodeID, 0, size)
			for len(ids) < size {
				v := graph.NodeID(rng.Intn(8))
				if !seen[v] {
					seen[v] = true
					ids = append(ids, v)
				}
			}
			c := mkCand(graph.NodeID(i), float64(rng.Intn(6)), ids, i)
			c.covers = rng.Intn(5) > 0
			cands = append(cands, c)
		}
		cands = append(cands, nil) // cancelled extraction slot
		k := 1 + rng.Intn(6)
		out := selectTopK(cands, k)
		if len(out) > k {
			t.Fatalf("trial %d: %d answers > k=%d", trial, len(out), k)
		}
		for i := 1; i < len(out); i++ {
			if out[i].Score < out[i-1].Score {
				t.Fatalf("trial %d: scores not ascending", trial)
			}
		}
		for i, a := range out {
			aset := map[graph.NodeID]bool{}
			for _, v := range a.NodeIDs() {
				aset[v] = true
			}
			for j := 0; j < i; j++ {
				b := out[j]
				if len(b.Nodes) >= len(a.Nodes) {
					continue
				}
				subset := true
				for _, v := range b.NodeIDs() {
					if !aset[v] {
						subset = false
						break
					}
				}
				if subset {
					t.Fatalf("trial %d: answer %d strictly contains answer %d", trial, i, j)
				}
			}
		}
	}
}

func mkCand(central graph.NodeID, score float64, ids []graph.NodeID, rank int) *candidate {
	set := map[graph.NodeID]struct{}{}
	var nodes []AnswerNode
	for _, id := range ids {
		set[id] = struct{}{}
		nodes = append(nodes, AnswerNode{ID: id, Contains: 1})
	}
	return &candidate{
		answer:  &Answer{Central: central, Score: score, Nodes: nodes, Depth: 1},
		nodeSet: set,
		covers:  true,
		rank:    rank,
	}
}
