package core

import (
	"sort"

	"wikisearch/internal/graph"
)

// extraction is one Central Graph being recovered from the node-keyword
// matrix (Algorithm 3). Nodes carry the mask of keywords whose hitting
// paths traverse them; edges are expansion steps (parent → child, flowing
// keyword sources → Central Node).
type extraction struct {
	central   graph.NodeID
	depth     int
	order     []graph.NodeID          // insertion order, central first
	onPaths   map[graph.NodeID]uint64 // keyword-path membership masks
	edges     []AnswerEdge            // deduplicated expansion steps
	edgeIndex map[edgeKey]int         // dedup: (from,to,rel,forward) → edges index
	truncated bool                    // hit the MaxGraphNodes cap
}

type edgeKey struct {
	from, to graph.NodeID
	rel      graph.RelID
	forward  bool
}

// workItem is a (node, fresh keyword bits) pair on the extraction worklist.
type workItem struct {
	node graph.NodeID
	bits uint64
}

// extract recovers the Central Graph centered at vc using the hitting-level
// heuristics of Theorem V.4: vn is a parent of vf on keyword i's hitting
// path iff h_i(vf) = 1 + max(a_n, h_i(vn)) when vf contains keywords, or
// 1 + max(a_n, h_i(vn), a_f − 1) when it does not. All qualifying parents
// are collected, which is what yields multi-path answers.
func (s *state) extract(vc graph.NodeID) *extraction {
	q := s.m.Q()
	ex := &extraction{
		central:   vc,
		onPaths:   map[graph.NodeID]uint64{vc: allMask(q)},
		order:     []graph.NodeID{vc},
		edgeIndex: map[edgeKey]int{},
	}
	if d, ok := s.m.MaxHit(vc); ok {
		ex.depth = int(d)
	}
	work := []workItem{{vc, allMask(q)}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		vf := it.node
		af := int(s.in.Levels[vf])
		fHasKeywords := s.contains[vf] != 0
		for i := 0; i < q; i++ {
			if it.bits&(1<<uint(i)) == 0 {
				continue
			}
			hif := int(s.m.Get(vf, i))
			if hif == 0 {
				continue // keyword source: hitting paths for i start here
			}
			s.in.G.ForEachNeighbor(vf, func(vn graph.NodeID, rel graph.RelID, out bool) {
				hin := s.m.Get(vn, i)
				if hin == Infinity {
					return
				}
				an := int(s.in.Levels[vn])
				target := 1 + max(an, int(hin))
				if !fHasKeywords {
					target = 1 + max(target-1, af-1)
				}
				if hif != target {
					return
				}
				// A node identified central before the expansion level
				// became unavailable for expansion (§III-B), so it cannot
				// have been a real parent; without this filter extraction
				// could claim paths the search never traversed.
				if ca := s.centralAt[vn]; ca >= 0 && int(ca) <= hif-1 {
					return
				}
				ex.addEdge(vn, vf, rel, !out, uint64(1)<<uint(i))
				prev, known := ex.onPaths[vn]
				fresh := (uint64(1) << uint(i)) &^ prev
				if fresh == 0 {
					return
				}
				if !known {
					if len(ex.order) >= s.p.MaxGraphNodes {
						ex.truncated = true
						return
					}
					ex.order = append(ex.order, vn)
				}
				ex.onPaths[vn] = prev | fresh
				work = append(work, workItem{vn, fresh})
			})
		}
	}
	return ex
}

// addEdge records one expansion step parent → child, merging keyword masks
// of duplicate steps. forward tells whether the underlying directed edge is
// stored parent → child.
func (ex *extraction) addEdge(from, to graph.NodeID, rel graph.RelID, forward bool, bits uint64) {
	k := edgeKey{from, to, rel, forward}
	if i, ok := ex.edgeIndex[k]; ok {
		ex.edges[i].Keywords |= bits
		return
	}
	ex.edgeIndex[k] = len(ex.edges)
	ex.edges = append(ex.edges, AnswerEdge{From: from, To: to, Rel: rel, Forward: forward, Keywords: bits})
}

// candidate is a pruned, scored Central Graph awaiting final selection.
type candidate struct {
	answer  *Answer
	nodeSet map[graph.NodeID]struct{}
	covers  bool
	rank    int // identification order, for deterministic ties
}

// assembleEnv carries the per-query context the top-down stage needs to
// prune and score an extracted Central Graph. Both the matrix-based and the
// dynamic (lock-based) variants assemble answers through it.
type assembleEnv struct {
	q            int
	contains     []uint64
	weights      []float64
	lambda       float64
	row          func(v graph.NodeID, dst []uint8) // hitting levels of v
	noLevelCover bool
}

func (s *state) env() *assembleEnv {
	return &assembleEnv{
		q:            s.m.Q(),
		contains:     s.contains,
		weights:      s.in.Weights,
		lambda:       s.p.Lambda,
		row:          s.m.Row,
		noLevelCover: s.p.DisableLevelCover,
	}
}

// assemble applies the level-cover strategy to an extraction and builds the
// scored Answer.
func (env *assembleEnv) assemble(ex *extraction, rank int) *candidate {
	kept := ex.order
	if !env.noLevelCover {
		kept = env.levelCover(ex)
	}
	var (
		nodes  []AnswerNode
		sumW   float64
		ids    = make(map[graph.NodeID]struct{}, len(kept))
		pruned = len(ex.order) - len(kept)
	)
	q := env.q
	for _, v := range kept {
		row := make([]uint8, q)
		env.row(v, row)
		nodes = append(nodes, AnswerNode{
			ID:        v,
			Contains:  env.contains[v],
			OnPaths:   ex.onPaths[v],
			HitLevels: row,
		})
		ids[v] = struct{}{}
	}
	// Canonical order — central node first, then ascending id; edges by
	// (From, To, Rel) — so answers are identical regardless of thread count
	// or scheduling.
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].ID == ex.central {
			return nodes[j].ID != ex.central
		}
		if nodes[j].ID == ex.central {
			return false
		}
		return nodes[i].ID < nodes[j].ID
	})
	for _, n := range nodes {
		sumW += env.weights[n.ID] // summed in canonical order: bit-stable
	}
	var edges []AnswerEdge
	for _, e := range ex.edges {
		if _, ok := ids[e.From]; !ok {
			continue
		}
		if _, ok := ids[e.To]; !ok {
			continue
		}
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Rel != b.Rel {
			return a.Rel < b.Rel
		}
		return a.Forward && !b.Forward
	})
	a := &Answer{
		Central:     ex.central,
		Depth:       ex.depth,
		Score:       Score(ex.depth, sumW, env.lambda),
		Nodes:       nodes,
		Edges:       edges,
		PrunedNodes: pruned,
	}
	return &candidate{
		answer:  a,
		nodeSet: ids,
		covers:  a.ContainsAllKeywords(q),
		rank:    rank,
	}
}

// topDown runs stage two of Algorithm 1: extract, prune and rank every
// Central Graph found by the bottom-up stage, then select the final top-k.
// Extraction and pruning of different Central Graphs run in parallel with
// dynamic scheduling ("we let one thread recover one or more Central
// Graphs", §V-C).
func (s *state) topDown() ([]*Answer, error) {
	env := s.env()
	cands := make([]*candidate, len(s.centrals))
	s.pool.For(len(s.centrals), func(i int) {
		if cancelled(s.p) != nil {
			return // drained quickly; the nil candidate is dropped below
		}
		ex := s.extract(s.centrals[i])
		cands[i] = env.assemble(ex, i)
	})
	if err := cancelled(s.p); err != nil {
		return nil, err
	}
	return selectTopK(cands, s.p.TopK), nil
}

// selectTopK ranks candidates by score and drops (a) candidates that do not
// cover every keyword (defensive: only possible under extraction caps) and
// (b) Central Graphs that completely contain a better-ranked, smaller
// answer ("we remove the Central Graph that completely contains smaller
// ones", §VI-B), then returns the best k.
func selectTopK(cands []*candidate, k int) []*Answer {
	ordered := make([]*candidate, 0, len(cands))
	for _, c := range cands {
		if c != nil && c.covers {
			ordered = append(ordered, c)
		}
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.answer.Score != b.answer.Score {
			return a.answer.Score < b.answer.Score
		}
		if a.answer.Depth != b.answer.Depth {
			return a.answer.Depth < b.answer.Depth
		}
		return a.rank < b.rank
	})
	var out []*Answer
	var keptSets []map[graph.NodeID]struct{}
	for _, c := range ordered {
		if len(out) >= k {
			break
		}
		superset := false
		for _, ks := range keptSets {
			if len(ks) >= len(c.nodeSet) {
				continue
			}
			if containsAll(c.nodeSet, ks) {
				superset = true
				break
			}
		}
		if superset {
			continue
		}
		out = append(out, c.answer)
		keptSets = append(keptSets, c.nodeSet)
	}
	return out
}

func containsAll(super, sub map[graph.NodeID]struct{}) bool {
	for v := range sub {
		if _, ok := super[v]; !ok {
			return false
		}
	}
	return true
}

// Search runs the full two-stage algorithm: CPU-Par when p.Threads > 1, the
// sequential baseline when p.Threads == 1. It is the one-shot entry point;
// repeated callers should hold a SearchState to reuse buffers and workers.
func Search(in Input, p Params) (*Result, error) {
	ss := NewSearchState()
	defer ss.Close()
	return ss.Search(in, p)
}
