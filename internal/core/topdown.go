package core

import (
	"slices"

	"wikisearch/internal/graph"
)

// extraction is one Central Graph being recovered from the node-keyword
// matrix (Algorithm 3). Nodes carry the mask of keywords whose hitting
// paths traverse them; edges are expansion steps (parent → child, flowing
// keyword sources → Central Node). All keyword masks are local to the
// owning query's column group: bit i means group column off+i.
type extraction struct {
	central   graph.NodeID
	depth     int
	order     []graph.NodeID          // insertion order, central first
	onPaths   map[graph.NodeID]uint64 // keyword-path membership masks
	edges     []AnswerEdge            // deduplicated expansion steps
	edgeIndex map[edgeKey]int         // dedup: (from,to,rel,forward) → edges index
	truncated bool                    // hit the MaxGraphNodes cap
}

// reset prepares ex for a new Central Graph, reusing its maps and slices.
func (ex *extraction) reset(central graph.NodeID, local uint64) {
	ex.central = central
	ex.depth = 0
	ex.truncated = false
	ex.order = append(ex.order[:0], central)
	ex.edges = ex.edges[:0]
	if ex.onPaths == nil {
		ex.onPaths = map[graph.NodeID]uint64{}
		ex.edgeIndex = map[edgeKey]int{}
	} else {
		clear(ex.onPaths)
		clear(ex.edgeIndex)
	}
	ex.onPaths[central] = local
}

type edgeKey struct {
	from, to graph.NodeID
	rel      graph.RelID
	forward  bool
}

// workItem is a (node, fresh keyword bits) pair on the extraction worklist.
type workItem struct {
	node graph.NodeID
	bits uint64
}

// kwNode is a keyword node with its containment mask, the unit the
// level-cover strategy classifies.
type kwNode struct {
	v    graph.NodeID
	mask uint64
}

// tdScratch is one worker's reusable top-down buffers: everything the
// extraction and assembly of a Central Graph touches that does not escape
// into the returned Answer. A state keeps one per worker so a warm
// top-down stage only allocates what the caller keeps (the answers
// themselves).
type tdScratch struct {
	ex     extraction
	work   []workItem
	kws    []kwNode                  // levelCover: keyword nodes by containment
	keptKw map[graph.NodeID]struct{} // levelCover: surviving keyword nodes
	kept   map[graph.NodeID]struct{} // levelCover: surviving nodes
	covOut []graph.NodeID            // levelCover: kept nodes, extraction order
	rowBuf []uint8                   // assemble: one row before it is kept
}

// extract recovers gr's Central Graph centered at vc using the hitting-level
// heuristics of Theorem V.4: vn is a parent of vf on keyword i's hitting
// path iff h_i(vf) = 1 + max(a_n, h_i(vn)) when vf contains keywords, or
// 1 + max(a_n, h_i(vn), a_f − 1) when it does not. All qualifying parents
// are collected, which is what yields multi-path answers. Every matrix read
// and keyword test is confined to the group's column window, so extraction
// from a batched state is identical to the query's solo extraction. The
// returned extraction lives in sc and is valid until sc's next use.
func (s *state) extract(sc *tdScratch, gr *group, vc graph.NodeID) *extraction {
	q := gr.q
	off := gr.off
	local := allMask(q)
	ex := &sc.ex
	ex.reset(vc, local)
	for i := 0; i < q; i++ {
		if h := s.m.Get(vc, off+i); h != Infinity && int(h) > ex.depth {
			ex.depth = int(h) // d(C), Eq. 1: the largest hitting level
		}
	}
	work := append(sc.work[:0], workItem{vc, local})
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		vf := it.node
		af := int(s.in.Levels[vf])
		fHasKeywords := s.contains[vf]&gr.mask != 0
		for i := 0; i < q; i++ {
			if it.bits&(1<<uint(i)) == 0 {
				continue
			}
			hif := int(s.m.Get(vf, off+i))
			if hif == 0 {
				continue // keyword source: hitting paths for i start here
			}
			s.in.G.ForEachNeighbor(vf, func(vn graph.NodeID, rel graph.RelID, out bool) {
				hin := s.m.Get(vn, off+i)
				if hin == Infinity {
					return
				}
				an := int(s.in.Levels[vn])
				target := 1 + max(an, int(hin))
				if !fHasKeywords {
					target = 1 + max(target-1, af-1)
				}
				if hif != target {
					return
				}
				// A node identified central before the expansion level
				// became unavailable for expansion (§III-B), so it cannot
				// have been a real parent; without this filter extraction
				// could claim paths the search never traversed.
				if ca := gr.centralAt[vn]; ca >= 0 && int(ca) <= hif-1 {
					return
				}
				ex.addEdge(vn, vf, rel, !out, uint64(1)<<uint(i))
				prev, known := ex.onPaths[vn]
				fresh := (uint64(1) << uint(i)) &^ prev
				if fresh == 0 {
					return
				}
				if !known {
					if len(ex.order) >= s.p.MaxGraphNodes {
						ex.truncated = true
						return
					}
					ex.order = append(ex.order, vn)
				}
				ex.onPaths[vn] = prev | fresh
				work = append(work, workItem{vn, fresh})
			})
		}
	}
	sc.work = work[:0] // keep the grown capacity
	return ex
}

// addEdge records one expansion step parent → child, merging keyword masks
// of duplicate steps. forward tells whether the underlying directed edge is
// stored parent → child.
func (ex *extraction) addEdge(from, to graph.NodeID, rel graph.RelID, forward bool, bits uint64) {
	k := edgeKey{from, to, rel, forward}
	if i, ok := ex.edgeIndex[k]; ok {
		ex.edges[i].Keywords |= bits
		return
	}
	ex.edgeIndex[k] = len(ex.edges)
	ex.edges = append(ex.edges, AnswerEdge{From: from, To: to, Rel: rel, Forward: forward, Keywords: bits})
}

// candidate is a pruned, scored Central Graph awaiting final selection.
type candidate struct {
	answer  *Answer
	nodeSet map[graph.NodeID]struct{}
	covers  bool
	rank    int // identification order, for deterministic ties
}

// assembleEnv carries the per-query context the top-down stage needs to
// prune and score an extracted Central Graph. Both the matrix-based and the
// dynamic (lock-based) variants assemble answers through it; contains and
// row present the query's own column window, so a batched group assembles
// exactly as its solo search would.
type assembleEnv struct {
	q            int
	contains     func(v graph.NodeID) uint64 // query-local keyword mask
	weights      []float64
	lambda       float64
	row          func(v graph.NodeID, dst []uint8) // hitting levels of v
	noLevelCover bool
}

// envGroup builds gr's assembly context over the shared state.
func (s *state) envGroup(gr *group) *assembleEnv {
	off := uint(gr.off)
	local := allMask(gr.q)
	return &assembleEnv{
		q:            gr.q,
		contains:     func(v graph.NodeID) uint64 { return (s.contains[v] >> off) & local },
		weights:      s.in.Weights,
		lambda:       s.p.Lambda,
		row:          func(v graph.NodeID, dst []uint8) { s.m.RowSlice(v, gr.off, dst) },
		noLevelCover: gr.noLevelCover,
	}
}

// assemble applies the level-cover strategy to an extraction and builds the
// scored Answer. Only the answer and its node set are freshly allocated;
// everything transient lives in sc.
func (env *assembleEnv) assemble(ex *extraction, rank int, sc *tdScratch) *candidate {
	kept := ex.order
	if !env.noLevelCover {
		kept = env.levelCover(ex, sc)
	}
	q := env.q
	var (
		nodes  = make([]AnswerNode, 0, len(kept))
		rows   = make([]uint8, len(kept)*q) // one backing array for all rows
		sumW   float64
		ids    = make(map[graph.NodeID]struct{}, len(kept))
		pruned = len(ex.order) - len(kept)
	)
	for ki, v := range kept {
		row := rows[ki*q : (ki+1)*q : (ki+1)*q]
		env.row(v, row)
		nodes = append(nodes, AnswerNode{
			ID:        v,
			Contains:  env.contains(v),
			OnPaths:   ex.onPaths[v],
			HitLevels: row,
		})
		ids[v] = struct{}{}
	}
	// Canonical order — central node first, then ascending id; edges by
	// (From, To, Rel) — so answers are identical regardless of thread count
	// or scheduling.
	central := ex.central
	slices.SortFunc(nodes, func(a, b AnswerNode) int {
		switch {
		case a.ID == b.ID:
			return 0
		case a.ID == central:
			return -1
		case b.ID == central:
			return 1
		case a.ID < b.ID:
			return -1
		}
		return 1
	})
	for _, n := range nodes {
		sumW += env.weights[n.ID] // summed in canonical order: bit-stable
	}
	edges := make([]AnswerEdge, 0, len(ex.edges))
	for _, e := range ex.edges {
		if _, ok := ids[e.From]; !ok {
			continue
		}
		if _, ok := ids[e.To]; !ok {
			continue
		}
		edges = append(edges, e)
	}
	slices.SortFunc(edges, func(a, b AnswerEdge) int {
		switch {
		case a.From != b.From:
			if a.From < b.From {
				return -1
			}
			return 1
		case a.To != b.To:
			if a.To < b.To {
				return -1
			}
			return 1
		case a.Rel != b.Rel:
			if a.Rel < b.Rel {
				return -1
			}
			return 1
		case a.Forward == b.Forward:
			return 0
		case a.Forward:
			return -1
		}
		return 1
	})
	a := &Answer{
		Central:     ex.central,
		Depth:       ex.depth,
		Score:       Score(ex.depth, sumW, env.lambda),
		Nodes:       nodes,
		Edges:       edges,
		PrunedNodes: pruned,
	}
	return &candidate{
		answer:  a,
		nodeSet: ids,
		covers:  a.ContainsAllKeywords(q),
		rank:    rank,
	}
}

// topDown runs stage two of Algorithm 1 for a solo search.
func (s *state) topDown() ([]*Answer, error) {
	return s.topDownGroup(&s.groups[0])
}

// topDownGroup runs stage two of Algorithm 1 for one query's column group:
// extract, prune and rank every Central Graph its bottom-up stage found,
// then select the final top-k. Extraction and pruning of different Central
// Graphs run in parallel with dynamic scheduling ("we let one thread
// recover one or more Central Graphs", §V-C), each worker on its own
// retained scratch. topDownGroup owns the per-worker td scratch slots:
// worker w dereferences only td[w], and the pool join publishes the
// results before anyone else runs.
//
//wikisearch:writer
func (s *state) topDownGroup(gr *group) ([]*Answer, error) {
	env := s.envGroup(gr)
	if w := s.pool.Workers(); cap(s.td) < w {
		s.td = make([]tdScratch, w)
	} else {
		s.td = s.td[:w]
	}
	cands := make([]*candidate, len(gr.centrals))
	s.pool.ForWorker(len(gr.centrals), func(w, i int) {
		if cancelled(s.p) != nil {
			return // drained quickly; the nil candidate is dropped below
		}
		sc := &s.td[w]
		ex := s.extract(sc, gr, gr.centrals[i])
		cands[i] = env.assemble(ex, i, sc)
	})
	if err := cancelled(s.p); err != nil {
		return nil, err
	}
	return selectTopK(cands, gr.topK), nil
}

// selectTopK ranks candidates by score and drops (a) candidates that do not
// cover every keyword (defensive: only possible under extraction caps) and
// (b) Central Graphs that completely contain a better-ranked, smaller
// answer ("we remove the Central Graph that completely contains smaller
// ones", §VI-B), then returns the best k.
func selectTopK(cands []*candidate, k int) []*Answer {
	ordered := make([]*candidate, 0, len(cands))
	for _, c := range cands {
		if c != nil && c.covers {
			ordered = append(ordered, c)
		}
	}
	slices.SortFunc(ordered, func(a, b *candidate) int {
		switch {
		case a.answer.Score != b.answer.Score:
			if a.answer.Score < b.answer.Score {
				return -1
			}
			return 1
		case a.answer.Depth != b.answer.Depth:
			return a.answer.Depth - b.answer.Depth
		}
		return a.rank - b.rank
	})
	var out []*Answer
	var keptSets []map[graph.NodeID]struct{}
	for _, c := range ordered {
		if len(out) >= k {
			break
		}
		superset := false
		for _, ks := range keptSets {
			if len(ks) >= len(c.nodeSet) {
				continue
			}
			if containsAll(c.nodeSet, ks) {
				superset = true
				break
			}
		}
		if superset {
			continue
		}
		out = append(out, c.answer)
		keptSets = append(keptSets, c.nodeSet)
	}
	return out
}

func containsAll(super, sub map[graph.NodeID]struct{}) bool {
	for v := range sub {
		if _, ok := super[v]; !ok {
			return false
		}
	}
	return true
}

// Search runs the full two-stage algorithm: CPU-Par when p.Threads > 1, the
// sequential baseline when p.Threads == 1. It is the one-shot entry point;
// repeated callers should hold a SearchState to reuse buffers and workers.
func Search(in Input, p Params) (*Result, error) {
	ss := NewSearchState()
	defer ss.Close()
	return ss.Search(in, p)
}
