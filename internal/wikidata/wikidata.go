// Package wikidata imports Wikidata JSON entity dumps — the format the
// paper's engine indexes ("we focus on one specific important knowledge
// graph, Wikidata Knowledge Base", §I) — into the knowledge-graph builder.
//
// The importer streams the standard dump layout (a JSON array with one
// entity object per line, as produced by dumps.wikimedia.org) or plain
// JSON-Lines:
//
//   - items become nodes; their English label and description become the
//     node text,
//   - statement main snaks whose value is another entity become directed
//     edges labeled with the property,
//   - property entities contribute their English labels as relationship
//     names (so P31 renders as "instance of"),
//   - quantity/string/time/etc. snaks are skipped — the engine indexes
//     entity text, not datatype values.
//
// Entities referenced but not defined in the stream (truncated dumps,
// samples) become nodes labeled by their id, so every edge resolves.
package wikidata

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"wikisearch/internal/graph"
)

// Stats summarizes one import.
type Stats struct {
	Entities   int // item entities parsed
	Properties int // property entities parsed
	Claims     int // statements examined
	Edges      int // entity-valued statements turned into edges
	Skipped    int // non-entity or somevalue/novalue snaks skipped
	Dangling   int // referenced-but-undefined entities materialized
}

// entity mirrors the parts of the dump schema the importer needs.
type entity struct {
	Type         string              `json:"type"`
	ID           string              `json:"id"`
	Labels       map[string]monoText `json:"labels"`
	Descriptions map[string]monoText `json:"descriptions"`
	Claims       map[string][]claim  `json:"claims"`
}

type monoText struct {
	Value string `json:"value"`
}

type claim struct {
	Mainsnak snak `json:"mainsnak"`
}

type snak struct {
	Snaktype  string `json:"snaktype"`
	Datavalue struct {
		Type  string          `json:"type"`
		Value json.RawMessage `json:"value"`
	} `json:"datavalue"`
}

type entityIDValue struct {
	ID string `json:"id"`
}

// pendingEdge defers edges until all entities are interned.
type pendingEdge struct {
	from, to graph.NodeID
	prop     int // index into props
}

// Importer accumulates a dump into a graph.
type Importer struct {
	nodes     map[string]graph.NodeID
	labels    []string // by node id
	descs     []string
	defined   map[graph.NodeID]bool
	propIdx   map[string]int
	propIDs   []string
	propNames []string // resolved English labels, "" until seen
	edges     []pendingEdge
	stats     Stats
}

// NewImporter returns an empty importer.
func NewImporter() *Importer {
	return &Importer{
		nodes:   map[string]graph.NodeID{},
		defined: map[graph.NodeID]bool{},
		propIdx: map[string]int{},
	}
}

func (im *Importer) node(id string) graph.NodeID {
	if v, ok := im.nodes[id]; ok {
		return v
	}
	v := graph.NodeID(len(im.labels))
	im.nodes[id] = v
	im.labels = append(im.labels, id) // fallback label
	im.descs = append(im.descs, "")
	return v
}

func (im *Importer) prop(pid string) int {
	if i, ok := im.propIdx[pid]; ok {
		return i
	}
	i := len(im.propIDs)
	im.propIdx[pid] = i
	im.propIDs = append(im.propIDs, pid)
	im.propNames = append(im.propNames, "")
	return i
}

// Read streams a dump. Lines that are pure array punctuation ("[", "]")
// are skipped; trailing commas after entity objects are trimmed; empty
// lines are ignored. A malformed entity aborts with its line number.
func (im *Importer) Read(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // entities can be large
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		line = strings.TrimSuffix(line, ",")
		if line == "" || line == "[" || line == "]" {
			continue
		}
		var e entity
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return fmt.Errorf("wikidata: line %d: %w", lineNo, err)
		}
		if err := im.entity(&e); err != nil {
			return fmt.Errorf("wikidata: line %d (%s): %w", lineNo, e.ID, err)
		}
	}
	return sc.Err()
}

func (im *Importer) entity(e *entity) error {
	if e.ID == "" {
		return fmt.Errorf("entity without id")
	}
	switch e.Type {
	case "property":
		im.stats.Properties++
		i := im.prop(e.ID)
		if l, ok := e.Labels["en"]; ok {
			im.propNames[i] = l.Value
		}
		return nil
	case "item", "": // some exports omit type on items
		im.stats.Entities++
	default:
		im.stats.Skipped++
		return nil
	}
	v := im.node(e.ID)
	im.defined[v] = true
	if l, ok := e.Labels["en"]; ok {
		im.labels[v] = l.Value
	}
	if d, ok := e.Descriptions["en"]; ok {
		im.descs[v] = d.Value
	}
	for pid, claims := range e.Claims {
		pi := im.prop(pid)
		for _, c := range claims {
			im.stats.Claims++
			if c.Mainsnak.Snaktype != "value" || c.Mainsnak.Datavalue.Type != "wikibase-entityid" {
				im.stats.Skipped++
				continue
			}
			var tv entityIDValue
			if err := json.Unmarshal(c.Mainsnak.Datavalue.Value, &tv); err != nil || tv.ID == "" {
				im.stats.Skipped++
				continue
			}
			im.edges = append(im.edges, pendingEdge{from: v, to: im.node(tv.ID), prop: pi})
			im.stats.Edges++
		}
	}
	return nil
}

// Build assembles the graph. Relationship names resolve to the property's
// English label when the dump defined it, otherwise the property id.
func (im *Importer) Build() (*graph.Graph, Stats, error) {
	b := graph.NewBuilder()
	for i, label := range im.labels {
		b.AddNode(label, im.descs[i])
		if !im.defined[graph.NodeID(i)] {
			im.stats.Dangling++
		}
	}
	rels := make([]graph.RelID, len(im.propIDs))
	for i, pid := range im.propIDs {
		name := im.propNames[i]
		if name == "" {
			name = pid
		}
		rels[i] = b.Rel(name)
	}
	for _, e := range im.edges {
		b.AddEdge(e.from, e.to, rels[e.prop])
	}
	g, err := b.Build()
	return g, im.stats, err
}

// ImportJSON reads a whole dump stream and builds the graph.
func ImportJSON(r io.Reader) (*graph.Graph, Stats, error) {
	im := NewImporter()
	if err := im.Read(r); err != nil {
		return nil, im.stats, err
	}
	return im.Build()
}

// ImportFile imports a dump file, transparently decompressing ".gz".
func ImportFile(path string) (*graph.Graph, Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Stats{}, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("wikidata: %s: %w", path, err)
		}
		defer zr.Close()
		r = zr
	}
	return ImportJSON(r)
}
