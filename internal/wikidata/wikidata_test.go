package wikidata

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wikisearch/internal/graph"
)

// sample mimics the standard dump layout: a JSON array, one entity per
// line, trailing commas.
const sample = `[
{"type":"item","id":"Q42","labels":{"en":{"language":"en","value":"Douglas Adams"},"fr":{"language":"fr","value":"Douglas Adams"}},"descriptions":{"en":{"language":"en","value":"English writer and humorist"}},"claims":{"P31":[{"mainsnak":{"snaktype":"value","datavalue":{"type":"wikibase-entityid","value":{"entity-type":"item","numeric-id":5,"id":"Q5"}}}}],"P800":[{"mainsnak":{"snaktype":"value","datavalue":{"type":"wikibase-entityid","value":{"entity-type":"item","id":"Q3107329"}}}}],"P569":[{"mainsnak":{"snaktype":"value","datavalue":{"type":"time","value":{"time":"+1952-03-11T00:00:00Z"}}}}]}},
{"type":"item","id":"Q5","labels":{"en":{"language":"en","value":"human"}},"claims":{}},
{"type":"property","id":"P31","labels":{"en":{"language":"en","value":"instance of"}}},
{"type":"item","id":"Q571","labels":{"en":{"language":"en","value":"book"}},"claims":{"P31":[{"mainsnak":{"snaktype":"somevalue"}}]}},
]`

func importSample(t *testing.T) (*graph.Graph, Stats) {
	t.Helper()
	g, st, err := ImportJSON(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	return g, st
}

func TestImportSample(t *testing.T) {
	g, st := importSample(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Entities != 3 || st.Properties != 1 {
		t.Fatalf("entities/properties = %d/%d", st.Entities, st.Properties)
	}
	// P31 Q5 edge + P800 dangling edge; time snak and somevalue skipped.
	if st.Edges != 2 {
		t.Fatalf("edges = %d, want 2", st.Edges)
	}
	if st.Skipped != 2 {
		t.Fatalf("skipped = %d, want 2", st.Skipped)
	}
	// Q3107329 referenced only: materialized as a dangling node.
	if st.Dangling != 1 {
		t.Fatalf("dangling = %d, want 1", st.Dangling)
	}
	// Q42, Q5, Q3107329, Q571 = 4 nodes.
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Text resolved (English only).
	labels := map[string]graph.NodeID{}
	for v := 0; v < g.NumNodes(); v++ {
		labels[g.Label(graph.NodeID(v))] = graph.NodeID(v)
	}
	adams, ok := labels["Douglas Adams"]
	if !ok {
		t.Fatalf("labels = %v", labels)
	}
	if g.Description(adams) != "English writer and humorist" {
		t.Fatalf("description = %q", g.Description(adams))
	}
	if _, ok := labels["human"]; !ok {
		t.Fatal("Q5 label missing")
	}
	if _, ok := labels["Q3107329"]; !ok {
		t.Fatal("dangling node should fall back to its id label")
	}
	// P31 resolved to its English name; P800 kept as id.
	relNames := map[string]bool{}
	for r := 0; r < g.NumRels(); r++ {
		relNames[g.RelName(graph.RelID(r))] = true
	}
	if !relNames["instance of"] || !relNames["P800"] {
		t.Fatalf("relations = %v", relNames)
	}
	// The instance-of edge lands on the human node.
	if !g.HasEdge(adams, labels["human"]) {
		t.Fatal("Q42 -instance of-> Q5 edge missing")
	}
}

func TestPropertyAfterUseStillResolves(t *testing.T) {
	// Property entity appears after the items that use it.
	input := `{"type":"item","id":"Q1","labels":{"en":{"value":"a"}},"claims":{"P9":[{"mainsnak":{"snaktype":"value","datavalue":{"type":"wikibase-entityid","value":{"id":"Q2"}}}}]}}
{"type":"item","id":"Q2","labels":{"en":{"value":"b"}}}
{"type":"property","id":"P9","labels":{"en":{"value":"part of"}}}`
	g, _, err := ImportJSON(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for r := 0; r < g.NumRels(); r++ {
		if g.RelName(graph.RelID(r)) == "part of" {
			found = true
		}
	}
	if !found {
		t.Fatal("late property label not applied")
	}
}

func TestMalformedEntity(t *testing.T) {
	for _, bad := range []string{
		`{not json}`,
		`{"type":"item"}`, // no id
	} {
		if _, _, err := ImportJSON(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	// Unknown entity types are skipped, not fatal.
	_, st, err := ImportJSON(strings.NewReader(`{"type":"lexeme","id":"L1"}`))
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != 1 {
		t.Fatalf("skipped = %d", st.Skipped)
	}
}

func TestImportFileGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dump.json.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write([]byte(sample)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, st, err := ImportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || st.Edges != 2 {
		t.Fatalf("gzip import: %d nodes, %d edges", g.NumNodes(), st.Edges)
	}
	// Plain path too.
	plain := filepath.Join(dir, "dump.json")
	if err := os.WriteFile(plain, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ImportFile(plain); err != nil {
		t.Fatal(err)
	}
	// Missing file and bad gzip error out.
	if _, _, err := ImportFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	badgz := filepath.Join(dir, "bad.gz")
	if err := os.WriteFile(badgz, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ImportFile(badgz); err == nil {
		t.Fatal("bad gzip accepted")
	}
}

func FuzzImportJSON(f *testing.F) {
	f.Add(sample)
	f.Add(`{"type":"item","id":"Q1"}`)
	f.Add("[\n]\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, _, err := ImportJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid graph: %v", err)
		}
	})
}
