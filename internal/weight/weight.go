// Package weight implements §IV of the paper: the degree-of-summary node
// weight (Eq. 2), its min-max normalization, and the Penalty-and-Reward
// mapping (Eq. 3–5) that turns a normalized weight and the tunable α into a
// minimum activation level.
//
// Summary nodes — nodes pointed to by a large number of same-labeled edges,
// like Wikidata's `human` — act as shortcuts producing meaningless
// connections; the weight quantifies that tendency so the activation level
// can delay such nodes during search.
package weight

import (
	"math"
	"sort"

	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
)

// Raw computes the unnormalized degree of summary of every node by Eq. 2:
//
//	w_i = Σ_{r∈R_i} cnt(r)·log2(1+cnt(r)) / Σ_{r∈R_i} cnt(r)
//
// where R_i is the set of in-edge labels of v_i and cnt(r) the number of
// in-edges of label r. Nodes with no in-edges get weight 0: nothing points
// at them, so they summarize nothing.
func Raw(g *graph.Graph, pool *parallel.Pool) []float64 {
	n := g.NumNodes()
	w := make([]float64, n)
	pool.ForChunks(n, func(start, end int) {
		counts := map[graph.RelID]int{}
		var vals []int
		for v := start; v < end; v++ {
			_, rels := g.InEdges(graph.NodeID(v))
			if len(rels) == 0 {
				continue
			}
			clear(counts)
			for _, r := range rels {
				counts[r]++
			}
			// Sum the per-relation terms in sorted count order: float
			// addition is order-sensitive, and map iteration order is not
			// deterministic, so summing counts directly would let two
			// preparations of the same graph disagree in the last bit.
			// Live mutation pins post-compaction answers bit-identical to
			// a fresh build, which needs bit-identical weights.
			vals = vals[:0]
			for _, c := range counts {
				vals = append(vals, c)
			}
			sort.Ints(vals)
			var num float64
			for _, c := range vals {
				num += float64(c) * math.Log2(1+float64(c))
			}
			w[v] = num / float64(len(rels))
		}
	})
	return w
}

// Normalize min-max rescales weights into [0, 1] in place, per §IV-A
// (w'_i = (w_i − min w) / (max w − min w)). A constant weight vector
// normalizes to all zeros.
func Normalize(w []float64) {
	if len(w) == 0 {
		return
	}
	mn, mx := w[0], w[0]
	for _, x := range w[1:] {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	d := mx - mn
	if d == 0 {
		for i := range w {
			w[i] = 0
		}
		return
	}
	for i := range w {
		w[i] = (w[i] - mn) / d
	}
}

// Compute returns the normalized degree-of-summary weights of every node.
func Compute(g *graph.Graph, pool *parallel.Pool) []float64 {
	w := Raw(g, pool)
	Normalize(w)
	return w
}

// MaxLevel is the largest representable activation level; the node-keyword
// matrix stores levels in a byte with 0xFF reserved for ∞.
const MaxLevel = 250

// Level maps one normalized weight to its minimum activation level by the
// Penalty-and-Reward rules (Eq. 3–5): weights above α add a penalty scaled
// into (0, A]; weights below α subtract a reward scaled into (0, A]; the
// result rounds to the nearest integer because activation levels compare
// against integral BFS levels.
func Level(w, avgDist, alpha float64) int {
	var v float64
	switch {
	case w < alpha:
		reward := avgDist * (alpha - w) / alpha
		v = avgDist - reward
	case w > alpha:
		penalty := avgDist * (w - alpha) / (1 - alpha)
		v = avgDist + penalty
	default:
		v = avgDist
	}
	l := int(math.Round(v))
	if l < 0 {
		l = 0
	}
	if l > MaxLevel {
		l = MaxLevel
	}
	return l
}

// Levels precomputes the activation level of every node for a given α and
// average distance A, packed into bytes for the search kernels.
func Levels(w []float64, avgDist, alpha float64, pool *parallel.Pool) []uint8 {
	out := make([]uint8, len(w))
	pool.For(len(w), func(i int) {
		out[i] = uint8(Level(w[i], avgDist, alpha))
	})
	return out
}

// Distribution buckets nodes by activation level: counts[l] is the number
// of nodes with level l for l < len(counts)-1, and the final bucket
// aggregates everything at or above it — the "≥4" bucket of Fig. 3.
func Distribution(levels []uint8, buckets int) []int {
	counts := make([]int, buckets)
	for _, l := range levels {
		b := int(l)
		if b >= buckets-1 {
			b = buckets - 1
		}
		counts[b]++
	}
	return counts
}
