package weight

import (
	"fmt"
	"math/rand"
	"testing"

	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
)

func BenchmarkComputeWeights(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const n, m = 20000, 120000
	gb := graph.NewBuilder()
	for i := 0; i < n; i++ {
		gb.AddNode(fmt.Sprintf("n%d", i), "")
	}
	rels := []graph.RelID{gb.Rel("a"), gb.Rel("b"), gb.Rel("c"), gb.Rel("d")}
	for i := 0; i < m; i++ {
		gb.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), rels[rng.Intn(4)])
	}
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	pool := parallel.NewPool(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Compute(g, pool)
	}
}

func BenchmarkActivationLevels(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	w := make([]float64, 1<<18)
	for i := range w {
		w[i] = rng.Float64()
	}
	pool := parallel.NewPool(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Levels(w, 3.7, 0.1, pool)
	}
}
