package weight

import (
	"math"
	"testing"
	"testing/quick"

	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
)

func pool() *parallel.Pool { return parallel.NewPool(2) }

func TestRawEquation2(t *testing.T) {
	// Node 0 receives: 3 edges labeled "a", 1 edge labeled "b".
	// w = (3·log2(4) + 1·log2(2)) / 4 = (6 + 1)/4 = 1.75.
	b := graph.NewBuilder()
	target := b.AddNode("target", "")
	for i := 0; i < 4; i++ {
		b.AddNode("src", "")
	}
	ra, rb := b.Rel("a"), b.Rel("b")
	b.AddEdge(1, target, ra)
	b.AddEdge(2, target, ra)
	b.AddEdge(3, target, ra)
	b.AddEdge(4, target, rb)
	g, _ := b.Build()
	w := Raw(g, pool())
	if math.Abs(w[target]-1.75) > 1e-12 {
		t.Fatalf("w[target] = %v, want 1.75", w[target])
	}
	// Source nodes have no in-edges.
	for i := 1; i <= 4; i++ {
		if w[i] != 0 {
			t.Fatalf("w[%d] = %v, want 0", i, w[i])
		}
	}
}

func TestRawSummaryNodeRanksHighest(t *testing.T) {
	// A "human"-like node with many same-labeled in-edges must out-weigh a
	// node with the same in-degree but diverse labels (the diversity
	// discount of §IV-A).
	b := graph.NewBuilder()
	summary := b.AddNode("human", "")
	diverse := b.AddNode("hub", "")
	for i := 0; i < 20; i++ {
		s := b.AddNode("x", "")
		b.AddEdgeNamed(s, summary, "instance of")
		b.AddEdgeNamed(s, diverse, "rel"+string(rune('a'+i)))
	}
	g, _ := b.Build()
	w := Raw(g, pool())
	if w[summary] <= w[diverse] {
		t.Fatalf("summary weight %v <= diverse weight %v", w[summary], w[diverse])
	}
	if math.Abs(w[diverse]-1.0) > 1e-12 { // 20 labels × 1 edge: log2(2)=1 each
		t.Fatalf("w[diverse] = %v, want 1.0", w[diverse])
	}
}

func TestNormalize(t *testing.T) {
	w := []float64{2, 4, 6}
	Normalize(w)
	want := []float64{0, 0.5, 1}
	for i := range w {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("Normalize = %v, want %v", w, want)
		}
	}
	// Constant vector → all zeros.
	c := []float64{3, 3, 3}
	Normalize(c)
	for _, x := range c {
		if x != 0 {
			t.Fatalf("constant Normalize = %v", c)
		}
	}
	Normalize(nil) // must not panic
}

func TestNormalizeQuickBounds(t *testing.T) {
	f := func(in []float64) bool {
		// Eq. 2 weights are finite non-negatives bounded by log2(1+indeg);
		// fold arbitrary floats into that realistic range.
		w := make([]float64, 0, len(in))
		for _, x := range in {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				w = append(w, math.Mod(math.Abs(x), 64))
			}
		}
		Normalize(w)
		for _, x := range w {
			if x < 0 || x > 1 || math.IsNaN(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLevelEquation345(t *testing.T) {
	const A = 3.68 // wiki2018's sampled average distance (Table II)
	cases := []struct {
		w, alpha float64
		want     int
	}{
		{0.1, 0.1, 4},  // w = α → round(A) = round(3.68)
		{0.0, 0.1, 0},  // full reward: A - A = 0
		{1.0, 0.1, 8},  // full penalty: A + A = 7.36 → 7? round(7.36)=7... see below
		{0.05, 0.1, 2}, // reward = 3.68·0.5 = 1.84 → 3.68-1.84 = 1.84 → 2
	}
	// Full penalty: A + A·(1-α)/(1-α) = 2A = 7.36 → rounds to 7.
	cases[2].want = 7
	for _, c := range cases {
		if got := Level(c.w, A, c.alpha); got != c.want {
			t.Errorf("Level(w=%v, α=%v) = %d, want %d", c.w, c.alpha, got, c.want)
		}
	}
}

func TestLevelMonotoneInWeight(t *testing.T) {
	f := func(a, b float64, alphaSeed float64) bool {
		clamp := func(x float64) float64 {
			x = math.Abs(x)
			x -= math.Floor(x)
			return x
		}
		w1, w2 := clamp(a), clamp(b)
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		alpha := 0.05 + 0.9*clamp(alphaSeed)
		return Level(w1, 3.7, alpha) <= Level(w2, 3.7, alpha)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelLargerAlphaNeverRaises(t *testing.T) {
	// §IV-C: a larger α maps more nodes to smaller activation levels; for
	// any fixed weight, raising α must not raise the level.
	f := func(wSeed, a1Seed, a2Seed float64) bool {
		clamp := func(x float64) float64 {
			x = math.Abs(x)
			x -= math.Floor(x)
			return x
		}
		w := clamp(wSeed)
		a1 := 0.05 + 0.9*clamp(a1Seed)
		a2 := 0.05 + 0.9*clamp(a2Seed)
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		return Level(w, 3.7, a2) <= Level(w, 3.7, a1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelClamped(t *testing.T) {
	if got := Level(1.0, 1000, 0.5); got != MaxLevel {
		t.Fatalf("Level = %d, want clamp at %d", got, MaxLevel)
	}
	if got := Level(0, 0.1, 0.5); got != 0 {
		t.Fatalf("Level = %d, want 0", got)
	}
}

func TestLevelsAndDistribution(t *testing.T) {
	w := []float64{0, 0.05, 0.1, 0.5, 1.0}
	levels := Levels(w, 3.68, 0.1, pool())
	if len(levels) != len(w) {
		t.Fatal("Levels length mismatch")
	}
	for i, x := range w {
		if int(levels[i]) != Level(x, 3.68, 0.1) {
			t.Fatalf("Levels[%d] = %d, want %d", i, levels[i], Level(x, 3.68, 0.1))
		}
	}
	dist := Distribution(levels, 5) // buckets 0,1,2,3,≥4
	total := 0
	for _, c := range dist {
		total += c
	}
	if total != len(w) {
		t.Fatalf("Distribution total = %d, want %d", total, len(w))
	}
	// w=1.0 maps to round(2·3.68)=7 → lands in the ≥4 bucket.
	if dist[4] == 0 {
		t.Fatal("≥4 bucket empty, expected the full-penalty node there")
	}
}
