package storage

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"wikisearch/internal/gen"
	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
	"wikisearch/internal/weight"
)

func sampleGraph(t *testing.T) (*graph.Graph, []float64) {
	t.Helper()
	b := graph.NewBuilder()
	b.AddNode("SQL", "query language")
	b.AddNode("SPARQL", "RDF query language")
	b.AddNode("Query language", "")
	b.AddEdgeNamed(0, 2, "instance of")
	b.AddEdgeNamed(1, 2, "instance of")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, []float64{0.25, 0.5, 1}
}

func TestRoundTrip(t *testing.T) {
	g, w := sampleGraph(t)
	var buf bytes.Buffer
	if err := Save(&buf, "sample", g, w); err != nil {
		t.Fatal(err)
	}
	name, g2, w2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "sample" {
		t.Fatalf("name = %q", name)
	}
	if !reflect.DeepEqual(w, w2) {
		t.Fatalf("weights differ: %v vs %v", w, w2)
	}
	assertGraphsEqual(t, g, g2)
}

func assertGraphsEqual(t *testing.T, g, g2 *graph.Graph) {
	t.Helper()
	if g.NumNodes() != g2.NumNodes() || g.NumEdges() != g2.NumEdges() || g.NumRels() != g2.NumRels() {
		t.Fatalf("shape differs: %d/%d/%d vs %d/%d/%d",
			g.NumNodes(), g.NumEdges(), g.NumRels(), g2.NumNodes(), g2.NumEdges(), g2.NumRels())
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		if g.Label(id) != g2.Label(id) || g.Description(id) != g2.Description(id) {
			t.Fatalf("node %d text differs", v)
		}
		d1, r1 := g.OutEdges(id)
		d2, r2 := g2.OutEdges(id)
		if !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(r1, r2) {
			t.Fatalf("node %d out edges differ", v)
		}
		s1, q1 := g.InEdges(id)
		s2, q2 := g2.InEdges(id)
		if !reflect.DeepEqual(s1, s2) || !reflect.DeepEqual(q1, q2) {
			t.Fatalf("node %d in edges differ", v)
		}
	}
	for r := 0; r < g.NumRels(); r++ {
		if g.RelName(graph.RelID(r)) != g2.RelName(graph.RelID(r)) {
			t.Fatalf("relation %d name differs", r)
		}
	}
}

func TestRoundTripGeneratedKB(t *testing.T) {
	kb := gen.Generate(gen.Config{Name: "rt", Seed: 3, Nodes: 2000})
	w := weight.Compute(kb.Graph, parallel.NewPool(2))
	var buf bytes.Buffer
	if err := Save(&buf, kb.Name, kb.Graph, w); err != nil {
		t.Fatal(err)
	}
	name, g2, w2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "rt" || len(w2) != len(w) {
		t.Fatalf("name %q, %d weights", name, len(w2))
	}
	assertGraphsEqual(t, kb.Graph, g2)
}

func TestSaveRejectsMismatchedWeights(t *testing.T) {
	g, _ := sampleGraph(t)
	var buf bytes.Buffer
	if err := Save(&buf, "x", g, []float64{1}); err == nil {
		t.Fatal("Save accepted wrong weight count")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	g, w := sampleGraph(t)
	var buf bytes.Buffer
	if err := Save(&buf, "x", g, w); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations at every prefix length must error, never panic.
	for _, cut := range []int{0, 1, 4, 8, 16, len(good) / 2, len(good) - 1} {
		if _, _, _, err := Load(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("Load accepted truncation at %d", cut)
		}
	}

	// Bit flips anywhere must be caught (CRC or structural validation).
	for _, pos := range []int{0, 5, 9, 20, len(good) / 2, len(good) - 2} {
		bad := append([]byte(nil), good...)
		bad[pos] ^= 0x40
		if _, _, _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Fatalf("Load accepted bit flip at %d", pos)
		}
	}
}

func TestLoadRejectsCorruptionQuick(t *testing.T) {
	g, w := sampleGraph(t)
	var buf bytes.Buffer
	if err := Save(&buf, "x", g, w); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	f := func(pos uint16, flip byte) bool {
		if flip == 0 {
			return true
		}
		bad := append([]byte(nil), good...)
		bad[int(pos)%len(bad)] ^= flip
		_, _, _, err := Load(bytes.NewReader(bad))
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	g, w := sampleGraph(t)
	path := filepath.Join(t.TempDir(), "kb.wskb")
	if err := SaveFile(path, "file-test", g, w); err != nil {
		t.Fatal(err)
	}
	name, g2, w2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "file-test" || g2.NumNodes() != g.NumNodes() || len(w2) != len(w) {
		t.Fatal("file round trip mismatch")
	}
	if _, _, _, err := LoadFile(filepath.Join(t.TempDir(), "missing.wskb")); err == nil {
		t.Fatal("LoadFile accepted missing file")
	}
}

func TestEmptyGraphRoundTrip(t *testing.T) {
	g, err := graph.NewBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, "empty", g, nil); err != nil {
		t.Fatal(err)
	}
	_, g2, w2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 0 || len(w2) != 0 {
		t.Fatal("empty graph round trip mismatch")
	}
}
