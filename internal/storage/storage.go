// Package storage persists a knowledge graph (CSR arrays, labels, relation
// names) and its precomputed node weights in a compact binary format, so
// the CLI tools and the service load a prepared dump instead of regenerating
// and re-weighting it. The format is little-endian, versioned, and guarded
// by a CRC32 of the payload; Load rejects truncated or corrupted files.
package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"wikisearch/internal/graph"
)

const (
	magic   = 0x57534b42 // "WSKB"
	version = 1
	// maxStr bounds a single string record; labels and descriptions are
	// short, so anything larger signals corruption.
	maxStr = 1 << 20
	// maxCount bounds node/edge counts (268M) against absurd allocations from a
	// corrupt header.
	maxCount = 1 << 28
)

// Save writes the graph, its dataset name and its node weights to w.
func Save(w io.Writer, name string, g *graph.Graph, weights []float64) error {
	if len(weights) != g.NumNodes() {
		return fmt.Errorf("storage: %d weights for %d nodes", len(weights), g.NumNodes())
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<20)
	enc := encoder{w: bw}

	enc.u32(magic)
	enc.u32(version)
	enc.str(name)
	writeGraphPayload(&enc, g, weights)
	if enc.err != nil {
		return enc.err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// CRC over everything written so far, as the trailer.
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// Load reads a graph previously written by Save. It validates the header,
// every array bound, the CSR invariants and the CRC trailer.
func Load(r io.Reader) (name string, g *graph.Graph, weights []float64, err error) {
	crc := crc32.NewIEEE()
	dec := decoder{r: bufio.NewReaderSize(r, 1<<20), crc: crc, remain: inputSize(r)}
	return loadV1(&dec)
}

func loadV1(dec *decoder) (name string, g *graph.Graph, weights []float64, err error) {
	if m := dec.u32(); dec.err == nil && m != magic {
		return "", nil, nil, fmt.Errorf("storage: bad magic %#x", m)
	}
	if v := dec.u32(); dec.err == nil && v != version {
		return "", nil, nil, fmt.Errorf("storage: unsupported version %d", v)
	}
	name = dec.str()
	g, weights, err = readGraphPayload(dec)
	if err != nil {
		return "", nil, nil, err
	}

	// Verify trailer: CRC of payload read so far against the stored value.
	want := dec.crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(dec.r, tail[:]); err != nil {
		return "", nil, nil, fmt.Errorf("storage: missing CRC trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return "", nil, nil, fmt.Errorf("storage: CRC mismatch (file %#x, computed %#x)", got, want)
	}
	if err := g.Validate(); err != nil {
		return "", nil, nil, fmt.Errorf("storage: %w", err)
	}
	return name, g, weights, nil
}

// SaveFile writes the dump to path atomically and durably (temp file +
// fsync + rename + parent-directory fsync).
func SaveFile(path, name string, g *graph.Graph, weights []float64) error {
	return atomicWriteFile(path, func(w io.Writer) error { return Save(w, name, g, weights) })
}

// atomicWriteFile writes path through a sibling temp file so readers never
// observe a partial dump, and makes the result durable: the temp file is
// fsynced before the rename and the parent directory after it — otherwise
// a crash right after os.Rename can leave the "atomically written" target
// empty or truncated. The temp file never survives a failed write.
func atomicWriteFile(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close() //wikisearch:volatile error path: the write already failed and the temp file is removed
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// LoadFile reads a dump from path.
func LoadFile(path string) (string, *graph.Graph, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return "", nil, nil, err
	}
	crc := crc32.NewIEEE()
	dec := decoder{r: bufio.NewReaderSize(f, 1<<20), crc: crc, remain: st.Size()}
	return loadV1(&dec)
}

type encoder struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (e *encoder) u32(v uint32) {
	if e.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	_, e.err = e.w.Write(e.buf[:4])
}

func (e *encoder) u64(v uint64) {
	if e.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	_, e.err = e.w.Write(e.buf[:8])
}

func (e *encoder) i32s(xs []int32) {
	for _, x := range xs {
		if e.err != nil {
			return
		}
		binary.LittleEndian.PutUint32(e.buf[:4], uint32(x))
		_, e.err = e.w.Write(e.buf[:4])
	}
}

func (e *encoder) str(s string) {
	if len(s) > maxStr {
		e.err = fmt.Errorf("storage: string of %d bytes exceeds limit", len(s))
		return
	}
	e.u32(uint32(len(s)))
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

type decoder struct {
	r   *bufio.Reader
	crc hash.Hash32
	err error
	buf [8]byte
	// remain is the number of input bytes left when the total input size
	// is known (file-backed and in-memory loads), -1 when it is not. It
	// lets need() reject declared section sizes that cannot fit the file
	// before anything is allocated.
	remain int64
}

// need checks that n more bytes can still be present in the input. It is
// called with a section's declared byte size before decoding it, so a
// crafted header cannot drive allocations beyond the real file size.
func (d *decoder) need(n int64) bool {
	if d.err != nil {
		return false
	}
	if d.remain >= 0 && n > d.remain {
		d.err = fmt.Errorf("storage: declared %d bytes with %d left in file", n, d.remain)
		return false
	}
	return true
}

// allocChunk caps the initial capacity of decoded arrays (in elements):
// slices grow by append as records actually arrive, so allocation is
// proportional to real input even when the input size is unknown and a
// corrupt header declares a huge count.
const allocChunk = 1 << 16

func (d *decoder) read(n int) []byte {
	if d.err != nil {
		return nil
	}
	b := d.buf[:n]
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = fmt.Errorf("storage: truncated file: %w", err)
		return nil
	}
	if d.remain >= 0 {
		d.remain -= int64(n)
	}
	d.crc.Write(b)
	return b
}

func (d *decoder) u32() uint32 {
	b := d.read(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.read(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) count() int {
	v := d.u64()
	if d.err == nil && v > maxCount {
		d.err = fmt.Errorf("storage: implausible count %d", v)
	}
	return int(v)
}

func (d *decoder) u64s(n int) []int64 {
	if d.err != nil || n < 0 || !d.need(int64(n)*8) {
		return nil
	}
	out := make([]int64, 0, min(n, allocChunk))
	for i := 0; i < n; i++ {
		v := int64(d.u64())
		if d.err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}

func (d *decoder) i32s(n int) []int32 {
	if d.err != nil || n < 0 || !d.need(int64(n)*4) {
		return nil
	}
	out := make([]int32, 0, min(n, allocChunk))
	for i := 0; i < n; i++ {
		b := d.read(4)
		if b == nil {
			return nil
		}
		out = append(out, int32(binary.LittleEndian.Uint32(b)))
	}
	return out
}

func (d *decoder) f64s(n int) []float64 {
	if d.err != nil || n < 0 || !d.need(int64(n)*8) {
		return nil
	}
	out := make([]float64, 0, min(n, allocChunk))
	for i := 0; i < n; i++ {
		v := math.Float64frombits(d.u64())
		if d.err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if n > maxStr {
		d.err = fmt.Errorf("storage: string of %d bytes exceeds limit", n)
		return ""
	}
	if !d.need(int64(n)) {
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = fmt.Errorf("storage: truncated string: %w", err)
		return ""
	}
	if d.remain >= 0 {
		d.remain -= int64(n)
	}
	d.crc.Write(b)
	return string(b)
}

func (d *decoder) strs(n int) []string {
	// Each string costs at least its 4-byte length prefix, so n strings
	// need 4n bytes — checked up front, and per-string as they decode.
	if d.err != nil || n < 0 || !d.need(int64(n)*4) {
		return nil
	}
	out := make([]string, 0, min(n, allocChunk))
	for i := 0; i < n; i++ {
		s := d.str()
		if d.err != nil {
			return nil
		}
		out = append(out, s)
	}
	return out
}
