package storage

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"slices"
	"unsafe"

	"wikisearch/internal/graph"
	"wikisearch/internal/text"
)

// Version 3 is the mmap-able dump format: the on-disk layout IS the
// in-memory layout. A fixed little-endian header page carries the graph
// shape, the dataset metadata and a section table; every section is a
// page-aligned run of fixed-width words (int64/int32/float64) or a raw
// byte blob addressed by an offset array, each guarded by its own CRC32.
// The loader hands graph.FromParts and text.FromParts zero-copy slice
// views straight into the mapping (unsafe.Slice / unsafe.String), so
// startup cost is O(validation) instead of O(decode), and cold sections
// of a graph larger than RAM page in on demand.
//
// Layout (all integers little-endian):
//
//	page 0   header: magic, version=3, page size, section count,
//	         n/m/nr/terms, avgDist, deviation, flags, file size,
//	         name string, section table, header CRC32
//	page 1+  sections, each starting on a page boundary:
//	         outOff inOff outDst outRel inSrc inRel weights
//	         labelOff labelBlob descOff descBlob relOff relBlob
//	         termOff termBlob postOff postIDs
//
// Offset arrays (labelOff &c.) have count+1 entries delimiting their blob,
// exactly like CSR offsets delimit adjacency — so a string i is
// blob[off[i]:off[i+1]] with no per-record framing to decode. See
// DESIGN.md §10 for the alignment and endianness rules and the mapping
// lifecycle.
const (
	version3 = 3
	// v3Page is the section alignment. It matches the common OS page size;
	// any multiple of 8 would satisfy the word-alignment requirement of
	// unsafe.Slice, but page alignment keeps section boundaries friendly to
	// madvise/readahead and to future per-section mapping.
	v3Page = 4096
	// v3MaxName bounds the dataset name so the header always fits page 0.
	v3MaxName = 2048
)

// Section kinds, in file order.
const (
	secOutOff uint32 = iota + 1
	secInOff
	secOutDst
	secOutRel
	secInSrc
	secInRel
	secWeights
	secLabelOff
	secLabelBlob
	secDescOff
	secDescBlob
	secRelOff
	secRelBlob
	secTermOff
	secTermBlob
	secPostOff
	secPostIDs

	numSections = int(secPostIDs)
)

// header flags.
const flagHasIndex = 1 << 0

// sectionEntry is one row of the on-disk section table.
type sectionEntry struct {
	kind  uint32
	crc   uint32 // CRC32 (IEEE) of the section's bytes
	off   uint64 // from file start; page-aligned
	size  uint64 // exact byte length (excluding padding)
	count uint64 // element count (== size for blobs)
}

const sectionEntrySize = 32

// hostLittleEndian reports whether this machine stores integers
// little-endian. The v3 zero-copy loader requires it; big-endian hosts
// must convert dumps to v2 (wikigen -convert -format=v2).
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// leBytes returns the little-endian byte image of a fixed-width word
// slice. On little-endian hosts this is a zero-copy unsafe view of the
// slice's backing array; on big-endian hosts it converts element-wise.
//
//wikisearch:mmapview
func leBytes[T int64 | int32 | uint64 | float64](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	size := int(unsafe.Sizeof(s[0]))
	if hostLittleEndian() {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*size)
	}
	out := make([]byte, len(s)*size)
	for i, v := range s {
		switch size {
		case 4:
			binary.LittleEndian.PutUint32(out[i*4:], uint32(any(v).(int32)))
		default:
			var bits uint64
			switch v := any(v).(type) {
			case int64:
				bits = uint64(v)
			case uint64:
				bits = v
			case float64:
				bits = math.Float64bits(v)
			}
			binary.LittleEndian.PutUint64(out[i*8:], bits)
		}
	}
	return out
}

// view reinterprets count elements of T at the start of b. The caller has
// verified length, 8-byte alignment of the base and little-endianness of
// the host, so this is the zero-copy read path.
//
//wikisearch:mmapview
func view[T int64 | int32 | float64](b []byte, count int) []T {
	if count == 0 {
		return []T{}
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), count)
}

// mapping owns one loaded v3 dump image — either an OS memory mapping or
// a heap buffer on platforms without mmap. Everything the loader returned
// (graph arrays, labels, index postings) aliases this memory, so it must
// not be unmapped while any of them is still reachable; Dump.Close (and
// Engine.Close above it) is the single release point.
//
//wikisearch:nocopy
//wikisearch:viewholder
type mapping struct {
	data   []byte
	unmap  func([]byte) error // nil for heap buffers
	closed bool
}

// Close releases the mapping. It is idempotent; the first call wins.
func (m *mapping) Close() error {
	if m == nil || m.closed {
		return nil
	}
	m.closed = true
	if m.unmap != nil {
		return m.unmap(m.data)
	}
	m.data = nil
	return nil
}

// blobAndOffsets flattens strings into one blob plus a count+1 offset
// array delimiting each string, the on-disk string representation.
func blobAndOffsets(ss []string) ([]byte, []int64) {
	var total int
	for _, s := range ss {
		total += len(s)
	}
	blob := make([]byte, 0, total)
	offs := make([]int64, len(ss)+1)
	for i, s := range ss {
		blob = append(blob, s...)
		offs[i+1] = int64(len(blob))
	}
	return blob, offs
}

// SaveDumpV3 writes a version-3 dump to w. The writer receives the exact
// mmap-able image: header page, then page-aligned sections.
func SaveDumpV3(w io.Writer, d *Dump) error {
	if d.Graph == nil {
		return fmt.Errorf("storage: nil graph")
	}
	if len(d.Weights) != d.Graph.NumNodes() {
		return fmt.Errorf("storage: %d weights for %d nodes", len(d.Weights), d.Graph.NumNodes())
	}
	if len(d.Name) > v3MaxName {
		return fmt.Errorf("storage: dataset name of %d bytes exceeds limit %d", len(d.Name), v3MaxName)
	}
	outOff, outDst, outRel, inOff, inSrc, inRel, labels, descs, relNames := d.Graph.Parts()

	labelBlob, labelOff := blobAndOffsets(labels)
	descBlob, descOff := blobAndOffsets(descs)
	relBlob, relOff := blobAndOffsets(relNames)

	var (
		termBlob []byte
		termOff  []int64
		postOff  []int64
		postIDs  []graph.NodeID
		nTerms   int
		flags    uint64
	)
	if d.Index != nil {
		flags |= flagHasIndex
		names, postings := d.Index.Export()
		nTerms = len(names)
		termBlob, termOff = blobAndOffsets(names)
		postOff = make([]int64, nTerms+1)
		var total int
		for i, p := range postings {
			total += len(p)
			postOff[i+1] = int64(total)
		}
		postIDs = make([]graph.NodeID, 0, total)
		for _, p := range postings {
			postIDs = append(postIDs, p...)
		}
	}

	sections := []struct {
		kind  uint32
		data  []byte
		count uint64
	}{
		{secOutOff, leBytes(outOff), uint64(len(outOff))},
		{secInOff, leBytes(inOff), uint64(len(inOff))},
		{secOutDst, leBytes(outDst), uint64(len(outDst))},
		{secOutRel, leBytes(outRel), uint64(len(outRel))},
		{secInSrc, leBytes(inSrc), uint64(len(inSrc))},
		{secInRel, leBytes(inRel), uint64(len(inRel))},
		{secWeights, leBytes(d.Weights), uint64(len(d.Weights))},
		{secLabelOff, leBytes(labelOff), uint64(len(labelOff))},
		{secLabelBlob, labelBlob, uint64(len(labelBlob))},
		{secDescOff, leBytes(descOff), uint64(len(descOff))},
		{secDescBlob, descBlob, uint64(len(descBlob))},
		{secRelOff, leBytes(relOff), uint64(len(relOff))},
		{secRelBlob, relBlob, uint64(len(relBlob))},
		{secTermOff, leBytes(termOff), uint64(len(termOff))},
		{secTermBlob, termBlob, uint64(len(termBlob))},
		{secPostOff, leBytes(postOff), uint64(len(postOff))},
		{secPostIDs, leBytes(postIDs), uint64(len(postIDs))},
	}

	// Lay out: sections start at page 1, each page-aligned; the file ends
	// page-aligned too, so the layout is a pure function of the section
	// sizes and empty trailing sections stay in bounds.
	entries := make([]sectionEntry, len(sections))
	off := uint64(v3Page)
	for i, s := range sections {
		entries[i] = sectionEntry{
			kind:  s.kind,
			crc:   crc32.ChecksumIEEE(s.data),
			off:   off,
			size:  uint64(len(s.data)),
			count: s.count,
		}
		off = pageCeil(off + uint64(len(s.data)))
	}
	fileSize := off

	// Assemble the header page.
	hdr := make([]byte, 0, v3Page)
	hdr = binary.LittleEndian.AppendUint32(hdr, magic)
	hdr = binary.LittleEndian.AppendUint32(hdr, version3)
	hdr = binary.LittleEndian.AppendUint32(hdr, v3Page)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(sections)))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(d.Graph.NumNodes()))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(d.Graph.NumEdges()))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(relNames)))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(nTerms))
	hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(d.AvgDist))
	hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(d.Deviation))
	hdr = binary.LittleEndian.AppendUint64(hdr, flags)
	hdr = binary.LittleEndian.AppendUint64(hdr, fileSize)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(d.Name)))
	hdr = append(hdr, d.Name...)
	for _, e := range entries {
		hdr = binary.LittleEndian.AppendUint32(hdr, e.kind)
		hdr = binary.LittleEndian.AppendUint32(hdr, e.crc)
		hdr = binary.LittleEndian.AppendUint64(hdr, e.off)
		hdr = binary.LittleEndian.AppendUint64(hdr, e.size)
		hdr = binary.LittleEndian.AppendUint64(hdr, e.count)
	}
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))
	if len(hdr) > v3Page {
		return fmt.Errorf("storage: v3 header of %d bytes exceeds one page", len(hdr))
	}

	bw := &padWriter{w: w}
	bw.write(hdr)
	bw.padTo(v3Page)
	for i, s := range sections {
		bw.write(s.data)
		if i+1 < len(entries) {
			bw.padTo(entries[i+1].off)
		} else {
			bw.padTo(fileSize)
		}
	}
	return bw.err
}

// pageCeil rounds up to the next page boundary.
func pageCeil(n uint64) uint64 { return (n + v3Page - 1) &^ uint64(v3Page-1) }

// padWriter tracks the write position and zero-fills up to section
// boundaries.
type padWriter struct {
	w   io.Writer
	pos uint64
	err error
}

func (p *padWriter) write(b []byte) {
	if p.err != nil || len(b) == 0 {
		return
	}
	var n int
	n, p.err = p.w.Write(b)
	p.pos += uint64(n)
}

var zeroPage [v3Page]byte

// padTo writes zeros until the position reaches target.
func (p *padWriter) padTo(target uint64) {
	for p.pos < target && p.err == nil {
		p.write(zeroPage[:min(target-p.pos, v3Page)])
	}
}

// SaveDumpFileV3 writes a version-3 dump to path atomically and durably
// (temp file, fsync, rename, parent-directory fsync).
func SaveDumpFileV3(path string, d *Dump) error {
	return atomicWriteFile(path, func(w io.Writer) error { return SaveDumpV3(w, d) })
}

// v3Header is the parsed header page.
type v3Header struct {
	n, m, nr, terms    int
	avgDist, deviation float64
	flags              uint64
	fileSize           uint64
	name               string
	sections           map[uint32]sectionEntry
}

// parseV3Header validates page 0 against the data length: magic, version,
// header CRC, bounded counts, and a section table whose every entry lies
// inside the file, 8-byte aligned, with a size that matches its element
// count. A crafted header can therefore never drive an out-of-bounds
// slice view or an allocation beyond the real file size.
func parseV3Header(data []byte) (*v3Header, error) {
	if len(data) < 96 {
		return nil, fmt.Errorf("storage: v3 header truncated (%d bytes)", len(data))
	}
	u32 := func(off int) uint32 { return binary.LittleEndian.Uint32(data[off:]) }
	u64 := func(off int) uint64 { return binary.LittleEndian.Uint64(data[off:]) }
	if u32(0) != magic {
		return nil, fmt.Errorf("storage: bad magic %#x", u32(0))
	}
	if u32(4) != version3 {
		return nil, fmt.Errorf("storage: not a v3 dump (version %d)", u32(4))
	}
	if u32(8) != v3Page {
		return nil, fmt.Errorf("storage: unsupported page size %d", u32(8))
	}
	nSec := int(u32(12))
	if nSec != numSections {
		return nil, fmt.Errorf("storage: %d sections, want %d", nSec, numSections)
	}
	h := &v3Header{
		n:         int(u64(16)),
		m:         int(u64(24)),
		nr:        int(u64(32)),
		terms:     int(u64(40)),
		avgDist:   math.Float64frombits(u64(48)),
		deviation: math.Float64frombits(u64(56)),
		flags:     u64(64),
		fileSize:  u64(72),
	}
	for _, c := range []int{h.n, h.m, h.nr, h.terms} {
		if c < 0 || c > maxCount {
			return nil, fmt.Errorf("storage: implausible count %d", c)
		}
	}
	if h.fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("storage: header says %d bytes, file has %d", h.fileSize, len(data))
	}
	nameLen := int(u32(80))
	if nameLen > v3MaxName || 84+nameLen+nSec*sectionEntrySize+4 > min(v3Page, len(data)) {
		return nil, fmt.Errorf("storage: v3 header overruns its page")
	}
	h.name = string(data[84 : 84+nameLen])
	tab := 84 + nameLen
	crcPos := tab + nSec*sectionEntrySize
	if got, want := crc32.ChecksumIEEE(data[:crcPos]), u32(crcPos); got != want {
		return nil, fmt.Errorf("storage: v3 header CRC mismatch (file %#x, computed %#x)", want, got)
	}
	h.sections = make(map[uint32]sectionEntry, nSec)
	for i := 0; i < nSec; i++ {
		e := sectionEntry{
			kind:  u32(tab + i*sectionEntrySize),
			crc:   u32(tab + i*sectionEntrySize + 4),
			off:   u64(tab + i*sectionEntrySize + 8),
			size:  u64(tab + i*sectionEntrySize + 16),
			count: u64(tab + i*sectionEntrySize + 24),
		}
		if e.kind == 0 || e.kind > uint32(numSections) {
			return nil, fmt.Errorf("storage: unknown section kind %d", e.kind)
		}
		if _, dup := h.sections[e.kind]; dup {
			return nil, fmt.Errorf("storage: duplicate section kind %d", e.kind)
		}
		if e.off%8 != 0 || e.off < v3Page || e.off+e.size < e.off || e.off+e.size > uint64(len(data)) {
			return nil, fmt.Errorf("storage: section %d [%d,+%d) outside file of %d bytes",
				e.kind, e.off, e.size, len(data))
		}
		h.sections[e.kind] = e
	}
	return h, nil
}

// section returns the bytes of one section after checking that its element
// count and byte size agree (elemSize 1 for blobs) and that the count is
// what the header's shape demands (wantCount < 0 skips that check).
func (h *v3Header) section(data []byte, kind uint32, elemSize int, wantCount int) ([]byte, sectionEntry, error) {
	e, ok := h.sections[kind]
	if !ok {
		return nil, e, fmt.Errorf("storage: missing section %d", kind)
	}
	if e.size != e.count*uint64(elemSize) {
		return nil, e, fmt.Errorf("storage: section %d: %d bytes for %d elements of %d",
			kind, e.size, e.count, elemSize)
	}
	if wantCount >= 0 && e.count != uint64(wantCount) {
		return nil, e, fmt.Errorf("storage: section %d has %d elements, want %d", kind, e.count, wantCount)
	}
	return data[e.off : e.off+e.size], e, nil
}

// stringViews builds the []string for one (offset array, blob) section
// pair, validating that offsets start at 0, never decrease, and end
// exactly at the blob length. The strings are zero-copy views into the
// mapping (unsafe.String), valid until the mapping closes.
//
//wikisearch:mmapview
func stringViews(offs []int64, blob []byte) ([]string, error) {
	n := len(offs) - 1
	if offs[0] != 0 || offs[n] != int64(len(blob)) {
		return nil, fmt.Errorf("storage: string offsets [%d,%d] do not span blob of %d", offs[0], offs[n], len(blob))
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		lo, hi := offs[i], offs[i+1]
		if lo > hi {
			return nil, fmt.Errorf("storage: non-monotone string offsets at %d", i)
		}
		if lo < hi {
			out[i] = unsafe.String(&blob[lo], int(hi-lo))
		}
	}
	return out, nil
}

// parseV3 builds a Dump whose arrays alias data. src, when non-nil, is
// the mapping that owns data and becomes the dump's closer; parseV3 does
// NOT close it on error — the caller does.
//
// Structural invariants (CSR monotonicity, edge endpoint and posting
// ranges, string-offset spans) are fully validated, so a loaded dump can
// never drive the kernel out of bounds. Per-section CRCs are NOT checked
// here — that is VerifyDump's job — because checking them would fault in
// every page and forfeit the instant-startup property.
func parseV3(data []byte, src *mapping) (*Dump, error) {
	if !hostLittleEndian() {
		return nil, fmt.Errorf("storage: v3 dumps require a little-endian host (convert to v2 with wikigen -convert)")
	}
	if len(data) > 0 && uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		// Heap buffers of this size are always 8-aligned in practice; a
		// misaligned base would make the word views fault on some
		// architectures, so refuse rather than risk it.
		return nil, fmt.Errorf("storage: v3 image base is not 8-byte aligned")
	}
	h, err := parseV3Header(data)
	if err != nil {
		return nil, err
	}

	want := func(kind uint32, elemSize, count int) ([]byte, error) {
		b, _, err := h.section(data, kind, elemSize, count)
		return b, err
	}
	outOffB, err := want(secOutOff, 8, h.n+1)
	if err != nil {
		return nil, err
	}
	inOffB, err := want(secInOff, 8, h.n+1)
	if err != nil {
		return nil, err
	}
	outDstB, err := want(secOutDst, 4, h.m)
	if err != nil {
		return nil, err
	}
	outRelB, err := want(secOutRel, 4, h.m)
	if err != nil {
		return nil, err
	}
	inSrcB, err := want(secInSrc, 4, h.m)
	if err != nil {
		return nil, err
	}
	inRelB, err := want(secInRel, 4, h.m)
	if err != nil {
		return nil, err
	}
	weightsB, err := want(secWeights, 8, h.n)
	if err != nil {
		return nil, err
	}
	labelOffB, err := want(secLabelOff, 8, h.n+1)
	if err != nil {
		return nil, err
	}
	labelBlob, _, err := h.section(data, secLabelBlob, 1, -1)
	if err != nil {
		return nil, err
	}
	descOffB, err := want(secDescOff, 8, h.n+1)
	if err != nil {
		return nil, err
	}
	descBlob, _, err := h.section(data, secDescBlob, 1, -1)
	if err != nil {
		return nil, err
	}
	relOffB, err := want(secRelOff, 8, h.nr+1)
	if err != nil {
		return nil, err
	}
	relBlob, _, err := h.section(data, secRelBlob, 1, -1)
	if err != nil {
		return nil, err
	}

	labels, err := stringViews(view[int64](labelOffB, h.n+1), labelBlob)
	if err != nil {
		return nil, err
	}
	descs, err := stringViews(view[int64](descOffB, h.n+1), descBlob)
	if err != nil {
		return nil, err
	}
	relNames, err := stringViews(view[int64](relOffB, h.nr+1), relBlob)
	if err != nil {
		return nil, err
	}

	g := graph.FromParts(
		view[int64](outOffB, h.n+1), view[int32](outDstB, h.m), view[int32](outRelB, h.m),
		view[int64](inOffB, h.n+1), view[int32](inSrcB, h.m), view[int32](inRelB, h.m),
		labels, descs, relNames)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}

	d := &Dump{
		Name:      h.name,
		Graph:     g,
		Weights:   view[float64](weightsB, h.n),
		AvgDist:   h.avgDist,
		Deviation: h.deviation,
		src:       src,
	}
	d.Source.Format = version3
	d.Source.Bytes = int64(len(data))

	if h.flags&flagHasIndex != 0 {
		termOffB, err := want(secTermOff, 8, h.terms+1)
		if err != nil {
			return nil, err
		}
		termBlob, _, err := h.section(data, secTermBlob, 1, -1)
		if err != nil {
			return nil, err
		}
		postOffB, err := want(secPostOff, 8, h.terms+1)
		if err != nil {
			return nil, err
		}
		postB, postE, err := h.section(data, secPostIDs, 4, -1)
		if err != nil {
			return nil, err
		}
		names, err := stringViews(view[int64](termOffB, h.terms+1), termBlob)
		if err != nil {
			return nil, err
		}
		postOff := view[int64](postOffB, h.terms+1)
		postIDs := view[int32](postB, int(postE.count))
		if postOff[0] != 0 || postOff[h.terms] != int64(postE.count) {
			return nil, fmt.Errorf("storage: posting offsets do not span %d ids", postE.count)
		}
		postings := make([][]graph.NodeID, h.terms)
		for i := 0; i < h.terms; i++ {
			lo, hi := postOff[i], postOff[i+1]
			if lo > hi {
				return nil, fmt.Errorf("storage: non-monotone posting offsets at term %d", i)
			}
			for _, v := range postIDs[lo:hi] {
				if v < 0 || int(v) >= h.n {
					return nil, fmt.Errorf("storage: posting references node %d of %d", v, h.n)
				}
			}
			postings[i] = postIDs[lo:hi]
		}
		ix, err := text.FromParts(names, postings)
		if err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
		d.Index = ix
	}
	return d, nil
}

// loadDumpFileV3 maps (or, where mmap is unavailable, reads) an open v3
// dump file and parses it in place.
func loadDumpFileV3(f *os.File, size int64) (*Dump, error) {
	if size > int64(maxV3Bytes) {
		return nil, fmt.Errorf("storage: v3 dump of %d bytes exceeds limit", size)
	}
	var m *mapping
	mode := LoadModeMmap
	if data, unmap, err := mmapFile(f, size); err == nil {
		m = &mapping{data: data, unmap: unmap}
	} else {
		mode = LoadModeRead
		buf := make([]byte, size)
		if _, err := f.ReadAt(buf, 0); err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
		m = &mapping{data: buf}
	}
	d, err := parseV3(m.data, m)
	if err != nil {
		m.Close()
		return nil, err
	}
	d.Source.Mode = mode
	if mode == LoadModeMmap {
		d.Source.MappedBytes = size
	}
	return d, nil
}

// VerifyDump checks every per-section CRC32 of a v3 image against its
// section table (the header CRC was already checked by the parse). It
// reads every byte, so it is for wikigen -convert, tests and offline
// integrity checks — not the serving startup path.
func VerifyDump(data []byte) error {
	h, err := parseV3Header(data)
	if err != nil {
		return err
	}
	for kind, e := range h.sections {
		if got := crc32.ChecksumIEEE(data[e.off : e.off+e.size]); got != e.crc {
			return fmt.Errorf("storage: section %d CRC mismatch (table %#x, computed %#x)", kind, e.crc, got)
		}
	}
	// Every byte between sections (and after the last one) is written as
	// zero padding; anything else means the file was modified outside the
	// CRC-covered ranges.
	covered := make([]sectionEntry, 0, len(h.sections))
	for _, e := range h.sections {
		covered = append(covered, e)
	}
	slices.SortFunc(covered, func(a, b sectionEntry) int { return cmp.Compare(a.off, b.off) })
	pos := uint64(v3Page)
	checkZero := func(lo, hi uint64) error {
		for _, b := range data[lo:hi] {
			if b != 0 {
				return fmt.Errorf("storage: nonzero padding in [%d, %d)", lo, hi)
			}
		}
		return nil
	}
	for _, e := range covered {
		if err := checkZero(pos, e.off); err != nil {
			return err
		}
		pos = e.off + e.size
	}
	return checkZero(pos, uint64(len(data)))
}

// VerifyDumpFile fully verifies a dump file of any version: v3 files get
// every section CRC checked; v1/v2 files are decoded end to end (their
// trailer CRC covers the whole payload).
func VerifyDumpFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err == nil && isV3Header(head[:]) {
		if st.Size() > int64(maxV3Bytes) {
			return fmt.Errorf("storage: v3 dump of %d bytes exceeds limit", st.Size())
		}
		data := make([]byte, st.Size())
		if _, err := f.ReadAt(data, 0); err != nil {
			return err
		}
		if err := VerifyDump(data); err != nil {
			return err
		}
		_, err := parseV3(data, nil)
		return err
	}
	_, err = LoadDumpFile(path)
	return err
}

// isV3Header reports whether the first 8 bytes announce a v3 dump.
func isV3Header(head []byte) bool {
	return len(head) >= 8 &&
		binary.LittleEndian.Uint32(head[:4]) == magic &&
		binary.LittleEndian.Uint32(head[4:8]) == version3
}

// maxV3Bytes bounds a v3 image (1 TiB) against absurd mappings from a
// corrupt size; real dumps at the 1<<28 count bound stay far below it.
const maxV3Bytes = 1 << 40
