//go:build unix

package storage

import "os"

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable — without it, a crash right after os.Rename can leave the
// target missing or pointing at a truncated inode.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
