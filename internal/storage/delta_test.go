package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleDelta() *DeltaLog {
	return &DeltaLog{
		Name:      "wiki-test",
		BaseNodes: 100,
		BaseEdges: 250,
		Ops: []DeltaOp{
			{Kind: DeltaAddNode, Label: "new node", Desc: "a description"},
			{Kind: DeltaAddEdge, From: 3, To: 100, Rel: "linked to"},
			{Kind: DeltaRemoveEdge, From: 7, To: 9, Rel: "next"},
			{Kind: DeltaSetText, V: 42, Label: "renamed", Desc: ""},
			{Kind: DeltaReweight, V: 5, W: 0.75},
			{Kind: DeltaAddNode, Label: "", Desc: ""},
		},
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	want := sampleDelta()
	var buf bytes.Buffer
	if err := SaveDelta(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestDeltaFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.wsdl")
	want := sampleDelta()
	if err := SaveDeltaFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDeltaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

func TestDeltaCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveDelta(&buf, sampleDelta()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Every single-byte flip must be rejected (CRC or structural check).
	for _, off := range []int{0, 8, len(raw) / 2, len(raw) - 2} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0xff
		if _, err := LoadDelta(bytes.NewReader(bad)); err == nil {
			t.Errorf("corruption at offset %d accepted", off)
		}
	}
	// Truncations too.
	for _, n := range []int{1, 8, len(raw) - 1} {
		if _, err := LoadDelta(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestDeltaEmptyLog(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveDelta(&buf, &DeltaLog{Name: "x", BaseNodes: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "x" || got.BaseNodes != 1 || len(got.Ops) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestDeltaUnknownOpRejected(t *testing.T) {
	if err := SaveDelta(&bytes.Buffer{}, &DeltaLog{Ops: []DeltaOp{{Kind: 99}}}); err == nil {
		t.Fatal("unknown op kind saved")
	}
}
