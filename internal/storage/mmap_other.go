//go:build !linux && !darwin

package storage

import (
	"fmt"
	"os"
)

// mmapFile is unavailable on this platform; loadDumpFileV3 falls back to
// reading the image into a heap buffer (LoadModeRead), which preserves
// the zero-decode property but not demand paging.
func mmapFile(_ *os.File, _ int64) ([]byte, func([]byte) error, error) {
	return nil, nil, fmt.Errorf("storage: mmap unsupported on this platform")
}
