//go:build linux || darwin

package storage

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared, so the page cache
// backs the dump directly: startup touches no graph pages, and graphs
// larger than RAM page in on demand. The returned release function is
// stored in the mapping and invoked by Dump.Close.
func mmapFile(f *os.File, size int64) ([]byte, func([]byte) error, error) {
	if size <= 0 || size > int64(^uint(0)>>1) {
		return nil, nil, fmt.Errorf("storage: cannot map %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: mmap: %w", err)
	}
	return data, syscall.Munmap, nil
}
