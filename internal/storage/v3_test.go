package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"slices"
	"testing"
	"testing/quick"

	"wikisearch/internal/gen"
	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
	"wikisearch/internal/text"
	"wikisearch/internal/weight"
)

// assertDumpsEqual compares the logical content of two dumps: metadata,
// graph, weights and every posting list (nil and empty slices compare
// equal, since the two formats represent absent data differently).
func assertDumpsEqual(t *testing.T, want, got *Dump) {
	t.Helper()
	if got.Name != want.Name || got.AvgDist != want.AvgDist || got.Deviation != want.Deviation {
		t.Fatalf("metadata differs: %q/%v/%v vs %q/%v/%v",
			got.Name, got.AvgDist, got.Deviation, want.Name, want.AvgDist, want.Deviation)
	}
	assertGraphsEqual(t, want.Graph, got.Graph)
	if !slices.Equal(want.Weights, got.Weights) {
		t.Fatal("weights differ")
	}
	if (want.Index == nil) != (got.Index == nil) {
		t.Fatalf("index presence differs: %v vs %v", got.Index != nil, want.Index != nil)
	}
	if want.Index == nil {
		return
	}
	if got.Index.NumTerms() != want.Index.NumTerms() {
		t.Fatalf("terms %d vs %d", got.Index.NumTerms(), want.Index.NumTerms())
	}
	names, postings := want.Index.Export()
	for i, name := range names {
		if !slices.Equal(got.Index.LookupTerm(name), postings[i]) {
			t.Fatalf("postings for %q differ", name)
		}
	}
}

func TestV3RoundTrip(t *testing.T) {
	d := sampleDump(t)
	var buf bytes.Buffer
	if err := SaveDumpV3(&buf, d); err != nil {
		t.Fatal(err)
	}
	if buf.Len()%v3Page != 0 {
		t.Fatalf("v3 image of %d bytes is not page-aligned", buf.Len())
	}
	d2, err := LoadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Source.Format != version3 || d2.Source.Mode != LoadModeRead {
		t.Fatalf("source = %+v", d2.Source)
	}
	assertDumpsEqual(t, d, d2)
	if err := VerifyDump(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestV3FileRoundTripMmap(t *testing.T) {
	d := sampleDump(t)
	path := filepath.Join(t.TempDir(), "v3.wskb")
	if err := SaveDumpFileV3(path, d); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDumpFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if runtime.GOOS == "linux" || runtime.GOOS == "darwin" {
		if d2.Source.Mode != LoadModeMmap {
			t.Fatalf("mode = %q, want mmap", d2.Source.Mode)
		}
		if d2.Source.MappedBytes == 0 || d2.Source.MappedBytes%v3Page != 0 {
			t.Fatalf("mapped bytes = %d", d2.Source.MappedBytes)
		}
	}
	assertDumpsEqual(t, d, d2)
	if err := VerifyDumpFile(path); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and releases the mapping.
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestV3WithoutIndex(t *testing.T) {
	d := sampleDump(t)
	d.Index = nil
	var buf bytes.Buffer
	if err := SaveDumpV3(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Index != nil {
		t.Fatal("index materialized from nothing")
	}
	assertDumpsEqual(t, d, d2)
}

func TestV3EmptyGraph(t *testing.T) {
	g, err := graph.NewBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	d := &Dump{Name: "empty", Graph: g}
	var buf bytes.Buffer
	if err := SaveDumpV3(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Graph.NumNodes() != 0 || d2.Graph.NumEdges() != 0 || len(d2.Weights) != 0 {
		t.Fatalf("empty graph round trip: %d nodes, %d edges", d2.Graph.NumNodes(), d2.Graph.NumEdges())
	}
}

func TestV3GeneratedKBRoundTrip(t *testing.T) {
	kb := gen.Generate(gen.Config{Name: "v3-rt", Seed: 7, Nodes: 2000})
	w := weight.Compute(kb.Graph, parallel.NewPool(2))
	d := &Dump{
		Name: kb.Name, Graph: kb.Graph, Weights: w,
		AvgDist: 4.2, Deviation: 1.1, Index: text.BuildIndex(kb.Graph),
	}
	path := filepath.Join(t.TempDir(), "gen.wskb")
	if err := SaveDumpFileV3(path, d); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDumpFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	assertDumpsEqual(t, d, d2)
}

// TestConvertRoundTrip is the v2→v3→v2 conversion path wikigen -convert
// exercises: content is preserved exactly in both directions.
func TestConvertRoundTrip(t *testing.T) {
	d := sampleDump(t)
	dir := t.TempDir()
	v2Path := filepath.Join(dir, "kb.v2.wskb")
	v3Path := filepath.Join(dir, "kb.v3.wskb")
	back := filepath.Join(dir, "kb.back.wskb")

	if err := SaveDumpFile(v2Path, d); err != nil {
		t.Fatal(err)
	}
	from2, err := LoadDumpFile(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	if from2.Source.Format != version2 || from2.Source.Mode != LoadModeDecode {
		t.Fatalf("v2 source = %+v", from2.Source)
	}
	if err := SaveDumpFileV3(v3Path, from2); err != nil {
		t.Fatal(err)
	}
	from3, err := LoadDumpFile(v3Path)
	if err != nil {
		t.Fatal(err)
	}
	defer from3.Close()
	assertDumpsEqual(t, d, from3)

	// And back: a v3-loaded (mmap-viewed) dump saves as valid v2.
	if err := SaveDumpFile(back, from3); err != nil {
		t.Fatal(err)
	}
	from2b, err := LoadDumpFile(back)
	if err != nil {
		t.Fatal(err)
	}
	assertDumpsEqual(t, d, from2b)
}

func TestV3CorruptionRejected(t *testing.T) {
	d := sampleDump(t)
	var buf bytes.Buffer
	if err := SaveDumpV3(&buf, d); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	for _, cut := range []int{0, 8, 80, v3Page - 1, v3Page, len(good) / 2, len(good) - 1} {
		if _, err := LoadDump(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	// Header bit flips are always caught at load (header CRC + structural
	// checks). The flip range covers the CRC'd header bytes — the rest of
	// page 0 is padding; section-body flips are the per-section CRCs' job.
	nameLen := int(uint32(good[80]) | uint32(good[81])<<8 | uint32(good[82])<<16 | uint32(good[83])<<24)
	hdrLen := 84 + nameLen + numSections*sectionEntrySize + 4
	f := func(pos uint16, flip byte) bool {
		if flip == 0 {
			return true
		}
		bad := append([]byte(nil), good...)
		bad[int(pos)%hdrLen] ^= flip
		_, err := LoadDump(bytes.NewReader(bad))
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}

	// VerifyDump catches any body flip, even ones load-time structural
	// validation cannot see (e.g. a weight bit).
	body := func(pos uint16, flip byte) bool {
		if flip == 0 {
			return true
		}
		bad := append([]byte(nil), good...)
		p := v3Page + int(pos)%(len(bad)-v3Page)
		bad[p] ^= flip
		return VerifyDump(bad) != nil
	}
	if err := quick.Check(body, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestV3HugeHeaderCountsRejected: a crafted header declaring huge counts
// must fail fast on the section-table bounds, never allocate.
func TestV3HugeHeaderCountsRejected(t *testing.T) {
	d := sampleDump(t)
	var buf bytes.Buffer
	if err := SaveDumpV3(&buf, d); err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{16, 24, 32, 40} { // n, m, nr, terms
		bad := append([]byte(nil), buf.Bytes()...)
		for i := 0; i < 8; i++ {
			bad[off+i] = 0xff
		}
		if _, err := LoadDump(bytes.NewReader(bad)); err == nil {
			t.Fatalf("huge count at header offset %d accepted", off)
		}
	}
}

// TestSaveDumpFileCleansUpOnError: the temp file never survives an encode
// error, in any format.
func TestSaveDumpFileCleansUpOnError(t *testing.T) {
	g, _ := sampleGraph(t)
	bad := &Dump{Name: "bad", Graph: g, Weights: []float64{1}} // wrong weight count
	for name, save := range map[string]func(string, *Dump) error{
		"v2": SaveDumpFile,
		"v3": SaveDumpFileV3,
	} {
		dir := t.TempDir()
		path := filepath.Join(dir, "kb.wskb")
		if err := save(path, bad); err == nil {
			t.Fatalf("%s: mismatched weights accepted", name)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Fatalf("%s: leftover files after failed save: %v", name, entries)
		}
	}
}

// TestDecoderRejectsOversizedDeclarations: a v2 header that declares more
// elements than the file could hold fails before decoding, and a
// truncated stream of unknown size never allocates the declared amount.
func TestDecoderRejectsOversizedDeclarations(t *testing.T) {
	d := sampleDump(t)
	var buf bytes.Buffer
	if err := SaveDump(&buf, d); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// The node count lives right after magic+version+name. Find it by
	// reading the name length.
	nameLen := int(uint32(good[8]) | uint32(good[9])<<8 | uint32(good[10])<<16 | uint32(good[11])<<24)
	nPos := 12 + nameLen
	bad := append([]byte(nil), good...)
	for i := 0; i < 4; i++ { // n = 0x0fffffff (within maxCount, way past file size)
		bad[nPos+i] = 0xff
	}
	bad[nPos+3] &= 0x0f
	for i := 4; i < 8; i++ {
		bad[nPos+i] = 0
	}
	if _, err := LoadDump(bytes.NewReader(bad)); err == nil {
		t.Fatal("oversized node count accepted")
	}
	if !reflect.DeepEqual(good, buf.Bytes()) {
		t.Fatal("source buffer mutated")
	}
}
