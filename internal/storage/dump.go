package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"wikisearch/internal/graph"
	"wikisearch/internal/text"
)

// Dump is the version-2 on-disk engine snapshot: graph, weights, the
// sampled average-distance statistics, and the inverted keyword index —
// everything the engine needs to start serving without recomputation.
type Dump struct {
	Name      string
	Graph     *graph.Graph
	Weights   []float64
	AvgDist   float64
	Deviation float64
	// Index may be nil, in which case the loader's caller rebuilds it.
	Index *text.Index
}

const version2 = 2

// SaveDump writes a version-2 dump to w: the version-1 payload followed by
// the distance statistics and the inverted index, all inside the CRC
// envelope.
func SaveDump(w io.Writer, d *Dump) error {
	if d.Graph == nil {
		return fmt.Errorf("storage: nil graph")
	}
	if len(d.Weights) != d.Graph.NumNodes() {
		return fmt.Errorf("storage: %d weights for %d nodes", len(d.Weights), d.Graph.NumNodes())
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<20)
	enc := encoder{w: bw}

	enc.u32(magic)
	enc.u32(version2)
	enc.str(d.Name)
	writeGraphPayload(&enc, d.Graph, d.Weights)

	enc.u64(math.Float64bits(d.AvgDist))
	enc.u64(math.Float64bits(d.Deviation))

	if d.Index == nil {
		enc.u64(0)
	} else {
		names, postings := d.Index.Export()
		enc.u64(uint64(len(names)))
		for i, name := range names {
			enc.str(name)
			enc.u64(uint64(len(postings[i])))
			enc.i32s(postings[i])
		}
	}
	if enc.err != nil {
		return enc.err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// LoadDump reads a version-1 or version-2 dump. Version-1 files yield a
// Dump with zero statistics and a nil index.
func LoadDump(r io.Reader) (*Dump, error) {
	crc := crc32.NewIEEE()
	dec := decoder{r: bufio.NewReaderSize(r, 1<<20), crc: crc}

	if m := dec.u32(); dec.err == nil && m != magic {
		return nil, fmt.Errorf("storage: bad magic %#x", m)
	}
	v := dec.u32()
	if dec.err == nil && v != version && v != version2 {
		return nil, fmt.Errorf("storage: unsupported version %d", v)
	}
	d := &Dump{}
	d.Name = dec.str()
	g, weights, err := readGraphPayload(&dec)
	if err != nil {
		return nil, err
	}
	d.Graph, d.Weights = g, weights

	if v == version2 {
		d.AvgDist = math.Float64frombits(dec.u64())
		d.Deviation = math.Float64frombits(dec.u64())
		nTerms := dec.count()
		if dec.err != nil {
			return nil, dec.err
		}
		if nTerms > 0 {
			names := make([]string, nTerms)
			postings := make([][]graph.NodeID, nTerms)
			for i := 0; i < nTerms; i++ {
				names[i] = dec.str()
				np := dec.count()
				postings[i] = dec.i32s(np)
				if dec.err != nil {
					return nil, dec.err
				}
			}
			ix, err := text.FromParts(names, postings)
			if err != nil {
				return nil, fmt.Errorf("storage: %w", err)
			}
			d.Index = ix
		}
	}
	if dec.err != nil {
		return nil, dec.err
	}

	want := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(dec.r, tail[:]); err != nil {
		return nil, fmt.Errorf("storage: missing CRC trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("storage: CRC mismatch (file %#x, computed %#x)", got, want)
	}
	if err := d.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	// Posting lists must reference valid nodes.
	if d.Index != nil {
		n := d.Graph.NumNodes()
		_, postings := d.Index.Export()
		for _, p := range postings {
			for _, v := range p {
				if v < 0 || int(v) >= n {
					return nil, fmt.Errorf("storage: posting references node %d of %d", v, n)
				}
			}
		}
	}
	return d, nil
}

// SaveDumpFile writes the dump to path atomically.
func SaveDumpFile(path string, d *Dump) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := SaveDump(f, d); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadDumpFile reads a dump from path.
func LoadDumpFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDump(f)
}

// writeGraphPayload emits the version-1 body (graph arrays + weights).
func writeGraphPayload(enc *encoder, g *graph.Graph, weights []float64) {
	outOff, outDst, outRel, inOff, inSrc, inRel, labels, descs, relNames := g.Parts()
	enc.u64(uint64(g.NumNodes()))
	enc.u64(uint64(g.NumEdges()))
	enc.u64(uint64(len(relNames)))
	for _, o := range outOff {
		enc.u64(uint64(o))
	}
	for _, o := range inOff {
		enc.u64(uint64(o))
	}
	enc.i32s(outDst)
	enc.i32s(outRel)
	enc.i32s(inSrc)
	enc.i32s(inRel)
	for _, s := range labels {
		enc.str(s)
	}
	for _, s := range descs {
		enc.str(s)
	}
	for _, s := range relNames {
		enc.str(s)
	}
	for _, x := range weights {
		enc.u64(math.Float64bits(x))
	}
}

// readGraphPayload parses the version-1 body.
func readGraphPayload(dec *decoder) (*graph.Graph, []float64, error) {
	n := dec.count()
	m := dec.count()
	nr := dec.count()
	if dec.err != nil {
		return nil, nil, dec.err
	}
	outOff := dec.u64s(n + 1)
	inOff := dec.u64s(n + 1)
	outDst := dec.i32s(m)
	outRel := dec.i32s(m)
	inSrc := dec.i32s(m)
	inRel := dec.i32s(m)
	labels := dec.strs(n)
	descs := dec.strs(n)
	relNames := dec.strs(nr)
	weights := dec.f64s(n)
	if dec.err != nil {
		return nil, nil, dec.err
	}
	g := graph.FromParts(outOff, outDst, outRel, inOff, inSrc, inRel, labels, descs, relNames)
	return g, weights, nil
}
