package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"

	"wikisearch/internal/graph"
	"wikisearch/internal/text"
)

// Dump is an on-disk engine snapshot: graph, weights, the sampled
// average-distance statistics, and the inverted keyword index —
// everything the engine needs to start serving without recomputation.
// Version 2 is the streamed record format; version 3 (v3.go) is the
// mmap-able section format whose loaded arrays alias the file mapping.
//
//wikisearch:viewholder
type Dump struct {
	Name      string
	Graph     *graph.Graph
	Weights   []float64
	AvgDist   float64
	Deviation float64
	// Index may be nil, in which case the loader's caller rebuilds it.
	Index *text.Index

	// Source describes how this dump was loaded (zero for dumps built in
	// memory for saving).
	Source LoadSource

	// src owns the v3 mapping (or heap image) the arrays alias; nil for
	// decoded v1/v2 dumps, whose arrays are ordinary heap allocations.
	src *mapping
}

// LoadSource describes the provenance of a loaded dump.
type LoadSource struct {
	// Format is the on-disk version that was read (1, 2 or 3).
	Format int
	// Mode is how the bytes got into memory: LoadModeDecode (v1/v2 record
	// decoding), LoadModeMmap (v3 zero-copy mapping) or LoadModeRead (v3
	// image read into a heap buffer).
	Mode string
	// MappedBytes is the size of the live memory mapping (0 unless Mode
	// is LoadModeMmap).
	MappedBytes int64
	// Bytes is the dump file size.
	Bytes int64
}

// Load modes reported in LoadSource.Mode and surfaced by wikiserve.
const (
	LoadModeDecode = "decode"
	LoadModeMmap   = "mmap"
	LoadModeRead   = "read"
)

// Close releases the memory mapping backing a v3-loaded dump. After Close
// every slice and string view handed out by the loader is invalid; the
// caller (Engine.Close) must guarantee no search is in flight. Close on a
// decoded or in-memory dump is a no-op. It is idempotent.
func (d *Dump) Close() error {
	if d == nil {
		return nil
	}
	return d.src.Close()
}

const version2 = 2

// SaveDump writes a version-2 dump to w: the version-1 payload followed by
// the distance statistics and the inverted index, all inside the CRC
// envelope.
func SaveDump(w io.Writer, d *Dump) error {
	if d.Graph == nil {
		return fmt.Errorf("storage: nil graph")
	}
	if len(d.Weights) != d.Graph.NumNodes() {
		return fmt.Errorf("storage: %d weights for %d nodes", len(d.Weights), d.Graph.NumNodes())
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<20)
	enc := encoder{w: bw}

	enc.u32(magic)
	enc.u32(version2)
	enc.str(d.Name)
	writeGraphPayload(&enc, d.Graph, d.Weights)

	enc.u64(math.Float64bits(d.AvgDist))
	enc.u64(math.Float64bits(d.Deviation))

	if d.Index == nil {
		enc.u64(0)
	} else {
		names, postings := d.Index.Export()
		enc.u64(uint64(len(names)))
		for i, name := range names {
			enc.str(name)
			enc.u64(uint64(len(postings[i])))
			enc.i32s(postings[i])
		}
	}
	if enc.err != nil {
		return enc.err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// LoadDump reads a dump of any version from r. Version-3 images are read
// fully into memory and parsed in place (use LoadDumpFile to get the
// zero-copy mmap path); version-1 files yield a Dump with zero statistics
// and a nil index.
func LoadDump(r io.Reader) (*Dump, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	if head, err := br.Peek(8); err == nil && isV3Header(head) {
		data, err := io.ReadAll(io.LimitReader(br, int64(maxV3Bytes)+1))
		if err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
		if int64(len(data)) > int64(maxV3Bytes) {
			return nil, fmt.Errorf("storage: v3 dump exceeds size limit")
		}
		d, err := parseV3(alignedImage(data), nil)
		if err != nil {
			return nil, err
		}
		d.Source.Mode = LoadModeRead
		return d, nil
	}
	return loadDumpStream(br, inputSize(r))
}

// inputSize reports the total remaining bytes of r when it is a
// length-aware in-memory reader (bytes.Reader, bytes.Buffer,
// strings.Reader), or -1 when unknown. File-backed loads pass the stat
// size instead. The decoder uses it to reject headers whose declared
// element counts could not possibly fit the input, before allocating.
func inputSize(r io.Reader) int64 {
	if l, ok := r.(interface{ Len() int }); ok {
		return int64(l.Len())
	}
	return -1
}

// alignedImage returns data, copied to a fresh buffer in the (practically
// impossible) case its base is not 8-byte aligned, so the v3 word views
// are always safe.
func alignedImage(data []byte) []byte {
	if len(data) == 0 || uintptr(unsafe.Pointer(&data[0]))%8 == 0 {
		return data
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out
}

// loadDumpStream decodes a version-1 or version-2 record stream. remain
// is the total input size in bytes when known (file size or in-memory
// length), -1 otherwise.
func loadDumpStream(br *bufio.Reader, remain int64) (*Dump, error) {
	crc := crc32.NewIEEE()
	dec := decoder{r: br, crc: crc, remain: remain}

	if m := dec.u32(); dec.err == nil && m != magic {
		return nil, fmt.Errorf("storage: bad magic %#x", m)
	}
	v := dec.u32()
	if dec.err == nil && v != version && v != version2 {
		return nil, fmt.Errorf("storage: unsupported version %d", v)
	}
	d := &Dump{}
	d.Name = dec.str()
	g, weights, err := readGraphPayload(&dec)
	if err != nil {
		return nil, err
	}
	d.Graph, d.Weights = g, weights

	if v == version2 {
		d.AvgDist = math.Float64frombits(dec.u64())
		d.Deviation = math.Float64frombits(dec.u64())
		nTerms := dec.count()
		if dec.err != nil {
			return nil, dec.err
		}
		if nTerms > 0 {
			names := make([]string, nTerms)
			postings := make([][]graph.NodeID, nTerms)
			for i := 0; i < nTerms; i++ {
				names[i] = dec.str()
				np := dec.count()
				postings[i] = dec.i32s(np)
				if dec.err != nil {
					return nil, dec.err
				}
			}
			ix, err := text.FromParts(names, postings)
			if err != nil {
				return nil, fmt.Errorf("storage: %w", err)
			}
			d.Index = ix
		}
	}
	if dec.err != nil {
		return nil, dec.err
	}

	want := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(dec.r, tail[:]); err != nil {
		return nil, fmt.Errorf("storage: missing CRC trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("storage: CRC mismatch (file %#x, computed %#x)", got, want)
	}
	if err := d.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	// Posting lists must reference valid nodes.
	if d.Index != nil {
		n := d.Graph.NumNodes()
		_, postings := d.Index.Export()
		for _, p := range postings {
			for _, v := range p {
				if v < 0 || int(v) >= n {
					return nil, fmt.Errorf("storage: posting references node %d of %d", v, n)
				}
			}
		}
	}
	d.Source = LoadSource{Format: int(v), Mode: LoadModeDecode, Bytes: remain}
	return d, nil
}

// SaveDumpFile writes a version-2 dump to path atomically and durably
// (temp file, fsync, rename, parent-directory fsync). SaveDumpFileV3
// writes the mmap-able version-3 format.
func SaveDumpFile(path string, d *Dump) error {
	return atomicWriteFile(path, func(w io.Writer) error { return SaveDump(w, d) })
}

// LoadDumpFile reads a dump from path, auto-detecting its version.
// Version-3 dumps are memory-mapped where the platform supports it
// (check Dump.Source.Mode), so loading is near-instant and the caller
// must keep the returned Dump's mapping alive — see Dump.Close.
func LoadDumpFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err == nil && isV3Header(head[:]) {
		return loadDumpFileV3(f, st.Size())
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return loadDumpStream(bufio.NewReaderSize(f, 1<<20), st.Size())
}

// writeGraphPayload emits the version-1 body (graph arrays + weights).
func writeGraphPayload(enc *encoder, g *graph.Graph, weights []float64) {
	outOff, outDst, outRel, inOff, inSrc, inRel, labels, descs, relNames := g.Parts()
	enc.u64(uint64(g.NumNodes()))
	enc.u64(uint64(g.NumEdges()))
	enc.u64(uint64(len(relNames)))
	for _, o := range outOff {
		enc.u64(uint64(o))
	}
	for _, o := range inOff {
		enc.u64(uint64(o))
	}
	enc.i32s(outDst)
	enc.i32s(outRel)
	enc.i32s(inSrc)
	enc.i32s(inRel)
	for _, s := range labels {
		enc.str(s)
	}
	for _, s := range descs {
		enc.str(s)
	}
	for _, s := range relNames {
		enc.str(s)
	}
	for _, x := range weights {
		enc.u64(math.Float64bits(x))
	}
}

// readGraphPayload parses the version-1 body.
func readGraphPayload(dec *decoder) (*graph.Graph, []float64, error) {
	n := dec.count()
	m := dec.count()
	nr := dec.count()
	if dec.err != nil {
		return nil, nil, dec.err
	}
	outOff := dec.u64s(n + 1)
	inOff := dec.u64s(n + 1)
	outDst := dec.i32s(m)
	outRel := dec.i32s(m)
	inSrc := dec.i32s(m)
	inRel := dec.i32s(m)
	labels := dec.strs(n)
	descs := dec.strs(n)
	relNames := dec.strs(nr)
	weights := dec.f64s(n)
	if dec.err != nil {
		return nil, nil, dec.err
	}
	g := graph.FromParts(outOff, outDst, outRel, inOff, inSrc, inRel, labels, descs, relNames)
	return g, weights, nil
}
