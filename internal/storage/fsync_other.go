//go:build !unix

package storage

// syncDir is a no-op where directory fsync is unsupported (e.g. Windows,
// whose rename path has different durability semantics).
func syncDir(string) error { return nil }
