package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"wikisearch/internal/graph"
)

// Delta segments persist a mutation batch — the operations a Mutator
// applied on top of a compacted base — in the dump formats' style:
// little-endian, versioned, CRC-guarded, written atomically and durably.
// A segment is a logical redo log: replaying its operations onto the base
// it names reproduces the mutated graph exactly, so a crash between
// compactions loses nothing that was saved.

const (
	deltaMagic   = 0x5753444c // "WSDL"
	deltaVersion = 1
)

// DeltaOpKind discriminates DeltaOp.
type DeltaOpKind uint8

// The mutation operations a delta segment records.
const (
	DeltaAddNode DeltaOpKind = iota + 1
	DeltaAddEdge
	DeltaRemoveEdge
	DeltaSetText
	DeltaReweight
)

func (k DeltaOpKind) String() string {
	switch k {
	case DeltaAddNode:
		return "add_node"
	case DeltaAddEdge:
		return "add_edge"
	case DeltaRemoveEdge:
		return "remove_edge"
	case DeltaSetText:
		return "set_keywords"
	case DeltaReweight:
		return "reweight"
	}
	return fmt.Sprintf("DeltaOpKind(%d)", uint8(k))
}

// DeltaOp is one recorded mutation. Field use by kind:
//
//	DeltaAddNode:    Label, Desc (the new node's id is implicit: base size
//	                 plus the number of preceding DeltaAddNode ops)
//	DeltaAddEdge:    From, To, Rel
//	DeltaRemoveEdge: From, To, Rel
//	DeltaSetText:    V, Label, Desc
//	DeltaReweight:   V, W
type DeltaOp struct {
	Kind        DeltaOpKind
	From, To, V graph.NodeID
	Rel         string
	Label, Desc string
	W           float64
}

// DeltaLog is one mutation batch rooted at a named base snapshot.
type DeltaLog struct {
	// Name is the dataset name of the base the ops apply to.
	Name string
	// BaseNodes/BaseEdges pin the base's shape; replay onto a different
	// graph is rejected.
	BaseNodes, BaseEdges int
	Ops                  []DeltaOp
}

// SaveDelta writes the delta segment to w (header, ops, CRC trailer).
func SaveDelta(w io.Writer, l *DeltaLog) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<16)
	enc := encoder{w: bw}
	enc.u32(deltaMagic)
	enc.u32(deltaVersion)
	enc.str(l.Name)
	enc.u64(uint64(l.BaseNodes))
	enc.u64(uint64(l.BaseEdges))
	enc.u64(uint64(len(l.Ops)))
	for i := range l.Ops {
		op := &l.Ops[i]
		enc.u32(uint32(op.Kind))
		switch op.Kind {
		case DeltaAddNode:
			enc.str(op.Label)
			enc.str(op.Desc)
		case DeltaAddEdge, DeltaRemoveEdge:
			enc.u64(uint64(op.From))
			enc.u64(uint64(op.To))
			enc.str(op.Rel)
		case DeltaSetText:
			enc.u64(uint64(op.V))
			enc.str(op.Label)
			enc.str(op.Desc)
		case DeltaReweight:
			enc.u64(uint64(op.V))
			enc.u64(math.Float64bits(op.W))
		default:
			return fmt.Errorf("storage: unknown delta op kind %d", op.Kind)
		}
	}
	if enc.err != nil {
		return enc.err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// LoadDelta reads a delta segment previously written by SaveDelta,
// validating bounds and the CRC trailer.
func LoadDelta(r io.Reader) (*DeltaLog, error) {
	dec := decoder{r: bufio.NewReaderSize(r, 1<<16), crc: crc32.NewIEEE(), remain: inputSize(r)}
	if m := dec.u32(); dec.err == nil && m != deltaMagic {
		return nil, fmt.Errorf("storage: bad delta magic %#x", m)
	}
	if v := dec.u32(); dec.err == nil && v != deltaVersion {
		return nil, fmt.Errorf("storage: unsupported delta version %d", v)
	}
	l := &DeltaLog{Name: dec.str()}
	l.BaseNodes = int(dec.u64())
	l.BaseEdges = int(dec.u64())
	n := dec.count()
	if dec.err != nil {
		return nil, dec.err
	}
	if l.BaseNodes < 0 || l.BaseNodes > maxCount || l.BaseEdges < 0 || l.BaseEdges > maxCount {
		return nil, fmt.Errorf("storage: absurd delta base %d nodes / %d edges", l.BaseNodes, l.BaseEdges)
	}
	l.Ops = make([]DeltaOp, 0, n)
	for i := 0; i < n; i++ {
		op := DeltaOp{Kind: DeltaOpKind(dec.u32())}
		switch op.Kind {
		case DeltaAddNode:
			op.Label = dec.str()
			op.Desc = dec.str()
		case DeltaAddEdge, DeltaRemoveEdge:
			op.From = graph.NodeID(dec.u64())
			op.To = graph.NodeID(dec.u64())
			op.Rel = dec.str()
		case DeltaSetText:
			op.V = graph.NodeID(dec.u64())
			op.Label = dec.str()
			op.Desc = dec.str()
		case DeltaReweight:
			op.V = graph.NodeID(dec.u64())
			op.W = math.Float64frombits(dec.u64())
		default:
			if dec.err != nil {
				return nil, dec.err
			}
			return nil, fmt.Errorf("storage: unknown delta op kind %d at op %d", op.Kind, i)
		}
		if dec.err != nil {
			return nil, dec.err
		}
		l.Ops = append(l.Ops, op)
	}
	want := dec.crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(dec.r, tail[:]); err != nil {
		return nil, fmt.Errorf("storage: missing delta CRC trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("storage: delta CRC mismatch (file %#x, computed %#x)", got, want)
	}
	return l, nil
}

// SaveDeltaFile writes the delta segment to path atomically and durably
// (temp file + fsync + rename + parent-directory fsync).
func SaveDeltaFile(path string, l *DeltaLog) error {
	return atomicWriteFile(path, func(w io.Writer) error { return SaveDelta(w, l) })
}

// LoadDeltaFile reads a delta segment from path.
func LoadDeltaFile(path string) (*DeltaLog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDelta(f)
}
