package storage

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"wikisearch/internal/graph"
)

// shardTestGraph builds a deterministic random graph plus weights.
func shardTestGraph(t testing.TB, seed int64, n, m int) (*graph.Graph, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("node %d", i), fmt.Sprintf("desc %d", i))
	}
	rels := []graph.RelID{b.Rel("cites"), b.Rel("links"), b.Rel("refers")}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), rels[rng.Intn(3)])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64()
	}
	return g, w
}

// globalEdgeSet renders every directed edge of g as "src>dst:rel", sorted.
func globalEdgeSet(g *graph.Graph) []string {
	var out []string
	for v := 0; v < g.NumNodes(); v++ {
		dsts, rels := g.OutEdges(graph.NodeID(v))
		for j, w := range dsts {
			out = append(out, fmt.Sprintf("%d>%d:%s", v, w, g.RelName(rels[j])))
		}
	}
	sort.Strings(out)
	return out
}

// reconstructEdges rebuilds the global directed edge set from a partition's
// shard subgraphs: each global edge appears in exactly one shard's owned
// out-adjacency (its source's owner), so the union over owned rows is the
// original edge set.
func reconstructEdges(part *graph.Partition) []string {
	var out []string
	for _, sh := range part.Shards {
		for li := 0; li < sh.Owned; li++ {
			src := sh.L2G[li]
			dsts, rels := sh.G.OutEdges(graph.NodeID(li))
			for j, w := range dsts {
				out = append(out, fmt.Sprintf("%d>%d:%s", src, sh.L2G[w], sh.G.RelName(rels[j])))
			}
		}
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedRoundTrip: partition → SaveSharded → LoadSharded reproduces the
// partition exactly — ownership, local id layout, per-shard weights — and
// the reloaded shard subgraphs reconstruct the original CSR edge for edge.
func TestShardedRoundTrip(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		g, w := shardTestGraph(t, int64(40+k), 60, 150)
		part, err := graph.PartitionGraph(g, k)
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(t.TempDir(), "shards")
		d := &Dump{Name: "roundtrip", Graph: g, Weights: w, AvgDist: 3.5, Deviation: 0.2}
		man, err := SaveSharded(dir, d, part)
		if err != nil {
			t.Fatal(err)
		}
		if man.Shards != k || man.Nodes != g.NumNodes() || man.Edges != g.NumEdges() || man.CutEdges != part.CutEdges {
			t.Fatalf("k=%d: manifest %+v", k, man)
		}
		got, dumps, err := LoadSharded(dir, g)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			for _, d := range dumps {
				d.Close()
			}
		}()
		if got.K != part.K || got.CutEdges != part.CutEdges {
			t.Fatalf("k=%d: partition shape %d/%d vs %d/%d", k, got.K, got.CutEdges, part.K, part.CutEdges)
		}
		for v := range part.Owner {
			if got.Owner[v] != part.Owner[v] || got.OwnerLocal[v] != part.OwnerLocal[v] {
				t.Fatalf("k=%d: node %d owner %d/%d vs %d/%d",
					k, v, got.Owner[v], got.OwnerLocal[v], part.Owner[v], part.OwnerLocal[v])
			}
		}
		for s := range part.Shards {
			a, b := got.Shards[s], part.Shards[s]
			if a.Owned != b.Owned || len(a.L2G) != len(b.L2G) || a.Edges != b.Edges {
				t.Fatalf("k=%d shard %d: shape mismatch", k, s)
			}
			for li := range b.L2G {
				if a.L2G[li] != b.L2G[li] {
					t.Fatalf("k=%d shard %d: l2g[%d] = %d vs %d", k, s, li, a.L2G[li], b.L2G[li])
				}
			}
			if err := a.G.Validate(); err != nil {
				t.Fatalf("k=%d shard %d: %v", k, s, err)
			}
			for li, gid := range b.L2G {
				if dw := dumps[s].Weights[li]; dw != w[gid] {
					t.Fatalf("k=%d shard %d: weight[%d] = %v, want %v", k, s, li, dw, w[gid])
				}
			}
		}
		if !equalStrings(reconstructEdges(got), globalEdgeSet(g)) {
			t.Fatalf("k=%d: reloaded shards do not reconstruct the original CSR", k)
		}
	}
}

// TestShardedLoadRejectsMismatch: a sharded dump cut from a different graph
// is rejected instead of silently serving wrong topology.
func TestShardedLoadRejectsMismatch(t *testing.T) {
	g, w := shardTestGraph(t, 1, 40, 90)
	part, err := graph.PartitionGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := SaveSharded(dir, &Dump{Name: "x", Graph: g, Weights: w}, part); err != nil {
		t.Fatal(err)
	}
	other, _ := shardTestGraph(t, 2, 41, 90)
	if _, _, err := LoadSharded(dir, other); err == nil {
		t.Fatal("mismatched graph accepted")
	}
}

// FuzzPartitionRoundTrip drives arbitrary graphs and shard counts through
// partition → per-shard v3 dump → reload, demanding the reloaded partition
// reconstructs the exact original CSR (the property the sharded engine's
// correctness rests on) and that ownership survives the disk round trip.
func FuzzPartitionRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(60))
	f.Add(int64(7), uint8(1), uint8(3))
	f.Add(int64(9), uint8(8), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, k uint8, sz uint8) {
		n := 1 + int(sz)
		kk := 1 + int(k)%8
		if kk > n {
			kk = n
		}
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder()
		for i := 0; i < n; i++ {
			b.AddNode(fmt.Sprintf("n%d", i), "")
		}
		rels := []graph.RelID{b.Rel("a"), b.Rel("b")}
		m := rng.Intn(3*n + 1)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), rels[rng.Intn(2)])
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		part, err := graph.PartitionGraph(g, kk)
		if err != nil {
			t.Fatal(err)
		}
		w := make([]float64, n)
		dir := t.TempDir()
		if _, err := SaveSharded(dir, &Dump{Name: "fuzz", Graph: g, Weights: w}, part); err != nil {
			t.Fatal(err)
		}
		got, dumps, err := LoadSharded(dir, g)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			for _, d := range dumps {
				d.Close()
			}
		}()
		for v := range part.Owner {
			if got.Owner[v] != part.Owner[v] {
				t.Fatalf("node %d owner %d, want %d", v, got.Owner[v], part.Owner[v])
			}
		}
		if !equalStrings(reconstructEdges(got), globalEdgeSet(g)) {
			t.Fatal("reloaded shards do not reconstruct the original CSR")
		}
	})
}
