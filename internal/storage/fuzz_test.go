package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"wikisearch/internal/graph"
	"wikisearch/internal/text"
)

// FuzzLoadDump throws arbitrary bytes at every decoder generation (v1
// stream via Load, v2 stream and v3 image via LoadDump, plus the
// file-backed mmap path via LoadDumpFile): none may panic, over-allocate
// against a tiny input, or accept a corrupted image whose header lies.
// Seeds cover valid dumps of each version and characteristic mutations.
func FuzzLoadDump(f *testing.F) {
	d := sampleDumpForFuzz(f)

	var v1, v2, v3 bytes.Buffer
	if err := Save(&v1, d.Name, d.Graph, d.Weights); err != nil {
		f.Fatal(err)
	}
	if err := SaveDump(&v2, d); err != nil {
		f.Fatal(err)
	}
	if err := SaveDumpV3(&v3, d); err != nil {
		f.Fatal(err)
	}

	for _, seed := range [][]byte{v1.Bytes(), v2.Bytes(), v3.Bytes()} {
		f.Add(seed)
		if len(seed) > 16 {
			f.Add(seed[:len(seed)/2]) // truncation
			flipped := append([]byte(nil), seed...)
			flipped[len(flipped)/3] ^= 0x40 // bit flip
			f.Add(flipped)
			huge := append([]byte(nil), seed...)
			for i := 16; i < 24 && i < len(huge); i++ {
				huge[i] = 0xff // absurd count in the header region
			}
			f.Add(huge)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("WSKB"))

	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		if d, err := LoadDump(bytes.NewReader(data)); err == nil {
			d.Close()
		}
		if _, _, _, err := Load(bytes.NewReader(data)); err != nil {
			_ = err
		}
		// The file-backed path takes the mmap branch for v3 images.
		path := filepath.Join(dir, "fuzz.wskb")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if d, err := LoadDumpFile(path); err == nil {
			assertDumpUsable(t, d)
			d.Close()
		}
		_ = VerifyDump(data)
	})
}

// sampleDumpForFuzz mirrors sampleDump without *testing.T (fuzz setup gets
// a *testing.F).
func sampleDumpForFuzz(f *testing.F) *Dump {
	f.Helper()
	b := graph.NewBuilder()
	b.AddNode("SQL", "query language")
	b.AddNode("SPARQL", "RDF query language")
	b.AddNode("Query language", "")
	b.AddEdgeNamed(0, 2, "instance of")
	b.AddEdgeNamed(1, 2, "instance of")
	g, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	return &Dump{
		Name:      "fuzz-kb",
		Graph:     g,
		Weights:   []float64{0.25, 0.5, 1},
		AvgDist:   3.68,
		Deviation: 0.98,
		Index:     text.BuildIndex(g),
	}
}

// assertDumpUsable touches every array a loaded dump exposes, so an
// accepted-but-inconsistent dump faults under the fuzzer instead of in a
// search kernel later.
func assertDumpUsable(t *testing.T, d *Dump) {
	t.Helper()
	g := d.Graph
	n := g.NumNodes()
	if len(d.Weights) != n && d.Weights != nil {
		t.Fatalf("%d weights for %d nodes", len(d.Weights), n)
	}
	for v := 0; v < n; v++ {
		_ = g.Label(int32(v))
		_ = g.Description(int32(v))
		dsts, _ := g.OutEdges(int32(v))
		for _, to := range dsts {
			if to < 0 || int(to) >= n {
				t.Fatalf("edge to %d of %d", to, n)
			}
		}
		srcs, _ := g.InEdges(int32(v))
		for _, from := range srcs {
			if from < 0 || int(from) >= n {
				t.Fatalf("edge from %d of %d", from, n)
			}
		}
	}
	if d.Index != nil {
		names, postings := d.Index.Export()
		for i := range names {
			for _, p := range postings[i] {
				if p < 0 || int(p) >= n {
					t.Fatalf("posting %d of %d nodes", p, n)
				}
			}
		}
	}
}
