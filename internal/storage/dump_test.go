package storage

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"wikisearch/internal/text"
)

func sampleDump(t *testing.T) *Dump {
	t.Helper()
	g, w := sampleGraph(t)
	return &Dump{
		Name:      "v2-sample",
		Graph:     g,
		Weights:   w,
		AvgDist:   3.68,
		Deviation: 0.98,
		Index:     text.BuildIndex(g),
	}
}

func TestDumpRoundTrip(t *testing.T) {
	d := sampleDump(t)
	var buf bytes.Buffer
	if err := SaveDump(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != d.Name || d2.AvgDist != d.AvgDist || d2.Deviation != d.Deviation {
		t.Fatalf("metadata: %+v", d2)
	}
	assertGraphsEqual(t, d.Graph, d2.Graph)
	if !reflect.DeepEqual(d.Weights, d2.Weights) {
		t.Fatal("weights differ")
	}
	if d2.Index == nil {
		t.Fatal("index lost")
	}
	if d2.Index.NumTerms() != d.Index.NumTerms() {
		t.Fatalf("terms %d vs %d", d2.Index.NumTerms(), d.Index.NumTerms())
	}
	// Every posting list survives byte-for-byte.
	names, postings := d.Index.Export()
	for i, name := range names {
		if !reflect.DeepEqual(d2.Index.LookupTerm(name), postings[i]) {
			t.Fatalf("postings for %q differ", name)
		}
	}
}

func TestDumpWithoutIndex(t *testing.T) {
	d := sampleDump(t)
	d.Index = nil
	var buf bytes.Buffer
	if err := SaveDump(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Index != nil {
		t.Fatal("index materialized from nothing")
	}
	if d2.AvgDist != d.AvgDist {
		t.Fatal("stats lost")
	}
}

func TestLoadDumpAcceptsVersion1(t *testing.T) {
	// A version-1 file (Save) loads as a Dump with no stats and no index.
	g, w := sampleGraph(t)
	var buf bytes.Buffer
	if err := Save(&buf, "legacy", g, w); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "legacy" || d.Index != nil || d.AvgDist != 0 {
		t.Fatalf("v1 dump = %+v", d)
	}
	assertGraphsEqual(t, g, d.Graph)
}

func TestDumpValidation(t *testing.T) {
	if err := SaveDump(&bytes.Buffer{}, &Dump{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g, _ := sampleGraph(t)
	if err := SaveDump(&bytes.Buffer{}, &Dump{Graph: g, Weights: []float64{1}}); err == nil {
		t.Fatal("mismatched weights accepted")
	}
}

func TestDumpCorruptionRejected(t *testing.T) {
	d := sampleDump(t)
	var buf bytes.Buffer
	if err := SaveDump(&buf, d); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for _, cut := range []int{0, 8, 40, len(good) / 2, len(good) - 1} {
		if _, err := LoadDump(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	f := func(pos uint16, flip byte) bool {
		if flip == 0 {
			return true
		}
		bad := append([]byte(nil), good...)
		bad[int(pos)%len(bad)] ^= flip
		_, err := LoadDump(bytes.NewReader(bad))
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDumpFileRoundTrip(t *testing.T) {
	d := sampleDump(t)
	path := filepath.Join(t.TempDir(), "v2.wskb")
	if err := SaveDumpFile(path, d); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDumpFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != d.Name || d2.Index == nil {
		t.Fatalf("file round trip: %+v", d2)
	}
	if _, err := LoadDumpFile(filepath.Join(t.TempDir(), "nope.wskb")); err == nil {
		t.Fatal("missing file accepted")
	}
}
