package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"wikisearch/internal/graph"
)

// The sharded layout splits one knowledge base into N edge-cut shard
// segments, each an ordinary v3 dump of the shard's subgraph (so the mmap
// fast path applies per shard and shards load independently) plus a compact
// binary partition-map file carrying the shard's ownership window and
// local→global table. manifest.json ties the segments together and pins the
// global shape they were cut from.

// ShardSegment describes one shard's pair of files, relative to the
// manifest's directory.
type ShardSegment struct {
	File  string `json:"file"` // v3 dump of the shard subgraph
	Map   string `json:"map"`  // binary partition map
	Owned int    `json:"owned"`
	Nodes int    `json:"nodes"` // owned + ghosts
	Edges int    `json:"edges"` // directed global edges included
}

// ShardManifest is the manifest.json of a sharded dump directory.
type ShardManifest struct {
	Name     string         `json:"name"`
	Shards   int            `json:"shards"`
	Nodes    int            `json:"nodes"` // global node count
	Edges    int            `json:"edges"` // global directed edge count
	CutEdges int            `json:"cut_edges"`
	Segments []ShardSegment `json:"segments"`
}

// ManifestName is the manifest file written into a sharded dump directory.
const ManifestName = "manifest.json"

const (
	shardMapMagic   = 0x574b534d // "WKSM"
	shardMapVersion = 1
)

// SaveSharded writes the sharded layout of d's graph under dir (created if
// missing): one v3 segment and one map file per shard, then the manifest.
// Weights are gathered per shard so each segment is a self-contained,
// loadable dump.
func SaveSharded(dir string, d *Dump, part *graph.Partition) (*ShardManifest, error) {
	if d.Graph == nil {
		return nil, fmt.Errorf("storage: nil graph")
	}
	if len(d.Weights) != d.Graph.NumNodes() {
		return nil, fmt.Errorf("storage: %d weights for %d nodes", len(d.Weights), d.Graph.NumNodes())
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man := &ShardManifest{
		Name:     d.Name,
		Shards:   part.K,
		Nodes:    d.Graph.NumNodes(),
		Edges:    d.Graph.NumEdges(),
		CutEdges: part.CutEdges,
	}
	for s, sh := range part.Shards {
		seg := ShardSegment{
			File:  fmt.Sprintf("shard-%d.v3", s),
			Map:   fmt.Sprintf("shard-%d.map", s),
			Owned: sh.Owned,
			Nodes: len(sh.L2G),
			Edges: sh.Edges,
		}
		w := make([]float64, len(sh.L2G))
		for li, gid := range sh.L2G {
			w[li] = d.Weights[gid]
		}
		sd := &Dump{
			Name:      fmt.Sprintf("%s-shard%d", d.Name, s),
			Graph:     sh.G,
			Weights:   w,
			AvgDist:   d.AvgDist,
			Deviation: d.Deviation,
		}
		if err := SaveDumpFileV3(filepath.Join(dir, seg.File), sd); err != nil {
			return nil, err
		}
		if err := saveShardMap(filepath.Join(dir, seg.Map), sh); err != nil {
			return nil, err
		}
		man.Segments = append(man.Segments, seg)
	}
	blob, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, err
	}
	err = atomicWriteFile(filepath.Join(dir, ManifestName), func(w io.Writer) error {
		_, err := w.Write(append(blob, '\n'))
		return err
	})
	if err != nil {
		return nil, err
	}
	return man, nil
}

// saveShardMap writes one shard's partition map: ownership window plus the
// local→global table, CRC-sealed.
func saveShardMap(path string, sh *graph.Shard) error {
	return atomicWriteFile(path, func(w io.Writer) error {
		buf := make([]byte, 16+4*len(sh.L2G)+4)
		binary.LittleEndian.PutUint32(buf[0:], shardMapMagic)
		binary.LittleEndian.PutUint32(buf[4:], shardMapVersion)
		binary.LittleEndian.PutUint32(buf[8:], uint32(sh.Owned))
		binary.LittleEndian.PutUint32(buf[12:], uint32(len(sh.L2G)))
		for i, gid := range sh.L2G {
			binary.LittleEndian.PutUint32(buf[16+4*i:], uint32(gid))
		}
		binary.LittleEndian.PutUint32(buf[len(buf)-4:], crc32.ChecksumIEEE(buf[:len(buf)-4]))
		_, err := w.Write(buf)
		return err
	})
}

// loadShardMap reads a partition map written by saveShardMap.
func loadShardMap(path string, maxNode int) (owned int, l2g []graph.NodeID, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(buf) < 20 {
		return 0, nil, fmt.Errorf("storage: shard map %s truncated", path)
	}
	if binary.LittleEndian.Uint32(buf[0:]) != shardMapMagic {
		return 0, nil, fmt.Errorf("storage: %s is not a shard map", path)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != shardMapVersion {
		return 0, nil, fmt.Errorf("storage: shard map %s has unsupported version %d", path, v)
	}
	owned = int(binary.LittleEndian.Uint32(buf[8:]))
	count := int(binary.LittleEndian.Uint32(buf[12:]))
	if len(buf) != 16+4*count+4 {
		return 0, nil, fmt.Errorf("storage: shard map %s sized %d, want %d entries", path, len(buf), count)
	}
	if got, want := binary.LittleEndian.Uint32(buf[len(buf)-4:]), crc32.ChecksumIEEE(buf[:len(buf)-4]); got != want {
		return 0, nil, fmt.Errorf("storage: shard map %s checksum mismatch", path)
	}
	if owned < 0 || owned > count {
		return 0, nil, fmt.Errorf("storage: shard map %s owns %d of %d nodes", path, owned, count)
	}
	l2g = make([]graph.NodeID, count)
	for i := range l2g {
		gid := int32(binary.LittleEndian.Uint32(buf[16+4*i:]))
		if gid < 0 || int(gid) >= maxNode {
			return 0, nil, fmt.Errorf("storage: shard map %s: global id %d out of range", path, gid)
		}
		l2g[i] = graph.NodeID(gid)
	}
	return owned, l2g, nil
}

// LoadSharded reads a sharded dump directory written by SaveSharded and
// reconstructs the partition over the given global graph. The returned dumps
// back the shard subgraphs (possibly as live memory mappings) and must stay
// open while the partition is in use; the caller closes them when done.
func LoadSharded(dir string, g *graph.Graph) (*graph.Partition, []*Dump, error) {
	blob, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, nil, err
	}
	var man ShardManifest
	if err := json.Unmarshal(blob, &man); err != nil {
		return nil, nil, fmt.Errorf("storage: manifest: %w", err)
	}
	n := g.NumNodes()
	if man.Nodes != n || man.Edges != g.NumEdges() {
		return nil, nil, fmt.Errorf("storage: sharded dump cut from a %d-node/%d-edge graph, engine has %d/%d",
			man.Nodes, man.Edges, n, g.NumEdges())
	}
	if man.Shards < 1 || len(man.Segments) != man.Shards {
		return nil, nil, fmt.Errorf("storage: manifest lists %d segments for %d shards", len(man.Segments), man.Shards)
	}
	part := &graph.Partition{
		K:          man.Shards,
		Owner:      make([]int32, n),
		OwnerLocal: make([]int32, n),
		Shards:     make([]*graph.Shard, man.Shards),
		CutEdges:   man.CutEdges,
	}
	for i := range part.Owner {
		part.Owner[i] = -1
	}
	var dumps []*Dump
	fail := func(err error) (*graph.Partition, []*Dump, error) {
		for _, d := range dumps {
			d.Close()
		}
		return nil, nil, err
	}
	for s, seg := range man.Segments {
		d, err := LoadDumpFile(filepath.Join(dir, seg.File))
		if err != nil {
			return fail(err)
		}
		dumps = append(dumps, d)
		owned, l2g, err := loadShardMap(filepath.Join(dir, seg.Map), n)
		if err != nil {
			return fail(err)
		}
		if d.Graph.NumNodes() != len(l2g) || owned != seg.Owned || len(l2g) != seg.Nodes {
			return fail(fmt.Errorf("storage: shard %d: segment has %d nodes, map has %d (owned %d vs %d)",
				s, d.Graph.NumNodes(), len(l2g), owned, seg.Owned))
		}
		sh := &graph.Shard{
			G:     d.Graph,
			Owned: owned,
			L2G:   l2g,
			G2L:   make([]int32, n),
			Edges: d.Graph.NumEdges(),
		}
		for i := range sh.G2L {
			sh.G2L[i] = -1
		}
		for li, gid := range l2g {
			if sh.G2L[gid] != -1 {
				return fail(fmt.Errorf("storage: shard %d: global node %d appears twice", s, gid))
			}
			sh.G2L[gid] = int32(li)
			if li < owned {
				if part.Owner[gid] != -1 {
					return fail(fmt.Errorf("storage: global node %d owned by shards %d and %d", gid, part.Owner[gid], s))
				}
				part.Owner[gid] = int32(s)
				part.OwnerLocal[gid] = int32(li)
			}
		}
		part.Shards[s] = sh
	}
	for v, o := range part.Owner {
		if o == -1 {
			return fail(fmt.Errorf("storage: global node %d owned by no shard", v))
		}
	}
	return part, dumps, nil
}
