package trace

import (
	"encoding/json"
	"io"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// QueryTrace is one completed query's assembled trace: identity, resolved
// knobs, batch attribution and the kernel's span events. For a batched
// query, Events holds the shared run's spans plus the member's own
// batch-wait/batch-run spans; Group/GroupMask identify the member's column
// group, so Tree can mark which spans worked for this query.
type QueryTrace struct {
	ID        uint64 `json:"id"`
	RequestID uint64 `json:"request_id,omitempty"`

	Query   string   `json:"query"`
	Terms   []string `json:"terms"`
	Variant string   `json:"variant"`
	TopK    int      `json:"k"`
	Alpha   float64  `json:"alpha"`
	Lambda  float64  `json:"lambda"`
	// Epoch is the search epoch the query ran against (see Engine.Epoch).
	Epoch uint64 `json:"epoch,omitempty"`

	Start    time.Time     `json:"start"`
	StartNs  int64         `json:"-"` // trace-clock start (admission for batch members)
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"error,omitempty"`
	Answers  int           `json:"answers"`

	// Batched marks a query served by a shared multi-query execution;
	// Solo marks one that went through the batcher but degenerated to the
	// ordinary solo path.
	Batched      bool          `json:"batched,omitempty"`
	Solo         bool          `json:"solo,omitempty"`
	BatchQueries int           `json:"batch_queries,omitempty"`
	BatchColumns int           `json:"batch_columns,omitempty"`
	BatchWait    time.Duration `json:"batch_wait_ns,omitempty"`
	Group        int           `json:"group"`      // this query's column-group index
	GroupOff     int           `json:"group_off"`  // first matrix column owned
	GroupCols    int           `json:"group_cols"` // keyword columns owned

	// Sharded-runtime attribution (zero on solo searches): topology size,
	// boundary activations exchanged, and per-shard busy-time imbalance.
	Shards         int     `json:"shards,omitempty"`
	ShardMessages  int64   `json:"shard_messages,omitempty"`
	ShardImbalance float64 `json:"shard_imbalance,omitempty"`

	Dropped int     `json:"dropped_events,omitempty"` // lost to ring overflow
	Events  []Event `json:"-"`                        // sorted by (Start asc, End desc)
}

// PhaseNs sums the durations of every span of kind k that worked for this
// query (its own column group or shared).
func (t *QueryTrace) PhaseNs(k Kind) int64 {
	var total int64
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Kind == k && t.mine(ev) {
			total += ev.End - ev.Start
		}
	}
	return total
}

// mine reports whether the span worked for this query's column group.
func (t *QueryTrace) mine(ev *Event) bool {
	return ev.Groups == 0 || ev.Groups&(1<<uint(t.Group)) != 0
}

// Span is one node of an assembled trace tree. Start is relative to the
// query's own start, so batched members see the shared spans offset by
// their individual admission times.
type Span struct {
	Name   string `json:"name"`
	Kind   Kind   `json:"-"`
	Start  int64  `json:"start_ns"`
	Dur    int64  `json:"dur_ns"`
	Worker int    `json:"worker"`
	Level  int    `json:"level,omitempty"` // -1 when not level-scoped
	// Groups is the span's owning column groups (0 = shared); Mine reports
	// whether this query's group participated.
	Groups   uint32  `json:"groups,omitempty"`
	Mine     bool    `json:"mine"`
	A        int64   `json:"a,omitempty"`
	B        int64   `json:"b,omitempty"`
	Children []*Span `json:"children,omitempty"`
}

// Tree assembles the trace's events into a span tree rooted at a synthetic
// "search" span covering the whole query. Events are nested by interval
// containment: the events come sorted by (Start asc, End desc), so a stack
// walk parents each span under the innermost span that contains it.
func (t *QueryTrace) Tree() *Span {
	end := t.Duration.Nanoseconds()
	for i := range t.Events {
		if rel := t.Events[i].End - t.StartNs; rel > end {
			end = rel
		}
	}
	root := &Span{Name: "search", Kind: numKinds, Start: 0, Dur: end, Level: -1, Mine: true}
	stack := []*Span{root}
	for i := range t.Events {
		ev := &t.Events[i]
		s := &Span{
			Name:   ev.Kind.String(),
			Kind:   ev.Kind,
			Start:  ev.Start - t.StartNs,
			Dur:    ev.End - ev.Start,
			Worker: int(ev.Worker),
			Level:  int(ev.Level),
			Groups: ev.Groups,
			Mine:   t.mine(ev),
			A:      ev.A,
			B:      ev.B,
		}
		for len(stack) > 1 && !contains(stack[len(stack)-1], s) {
			stack = stack[:len(stack)-1]
		}
		parent := stack[len(stack)-1]
		parent.Children = append(parent.Children, s)
		stack = append(stack, s)
	}
	return root
}

// contains reports whether child's interval lies within parent's.
func contains(parent, child *Span) bool {
	return child.Start >= parent.Start && child.Start+child.Dur <= parent.Start+parent.Dur
}

// chromeEvent is one complete ("ph":"X") event of the Chrome trace_event
// format, loadable by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the trace in Chrome trace_event JSON: one complete
// event per span, worker index as the thread id, timestamps relative to the
// query's start. Cold path, used by GET /v1/debug/trace?format=chrome.
func (t *QueryTrace) WriteChrome(w io.Writer) error {
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{{
		Name: "search", Cat: "wikisearch", Ph: "X",
		Ts: 0, Dur: float64(t.Duration.Nanoseconds()) / 1e3,
		Pid: 1, Tid: 0,
		Args: map[string]any{
			"query": t.Query, "variant": t.Variant,
			"trace_id": t.ID, "request_id": t.RequestID,
		},
	}}}
	for i := range t.Events {
		ev := &t.Events[i]
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.Kind.String(),
			Cat:  "wikisearch",
			Ph:   "X",
			Ts:   float64(ev.Start-t.StartNs) / 1e3,
			Dur:  float64(ev.End-ev.Start) / 1e3,
			Pid:  1,
			Tid:  int(ev.Worker),
			Args: map[string]any{
				"level": int(ev.Level), "groups": ev.Groups,
				"mine": t.mine(ev), "a": ev.A, "b": ev.B,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// collectorRing holds the last N traces added, newest last.
type collectorRing struct {
	buf  []*QueryTrace
	next int
	full bool
}

func (r *collectorRing) add(t *QueryTrace) {
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
}

// snapshot returns the held traces, newest first.
func (r *collectorRing) snapshot() []*QueryTrace {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]*QueryTrace, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Collector retains recently completed query traces — a bounded recent ring
// plus a separate ring for traces over the slow threshold, so a burst of
// fast queries cannot evict the slow outlier being debugged. All methods
// are safe for concurrent use; Add runs on the cold path after a search.
type Collector struct {
	nextID atomic.Uint64
	slowNs atomic.Int64
	obs    atomic.Pointer[func(*QueryTrace)]

	mu     sync.Mutex
	recent collectorRing
	slow   collectorRing
}

// Capacities of the collector's rings.
const (
	recentTraces = 128
	slowTraces   = 64
)

// NewCollector returns a collector with a 1s slow threshold.
func NewCollector() *Collector {
	c := &Collector{
		recent: collectorRing{buf: make([]*QueryTrace, recentTraces)},
		slow:   collectorRing{buf: make([]*QueryTrace, slowTraces)},
	}
	c.slowNs.Store(int64(time.Second))
	return c
}

// SetSlowThreshold sets the duration at or above which a trace is also
// retained in the slow ring; d <= 0 disables slow capture.
func (c *Collector) SetSlowThreshold(d time.Duration) { c.slowNs.Store(int64(d)) }

// SlowThreshold returns the current slow-capture threshold.
func (c *Collector) SlowThreshold() time.Duration { return time.Duration(c.slowNs.Load()) }

// SetObserver installs (or, with nil, removes) a function invoked with
// every trace added, before it can be evicted — the slow-query log and
// tests hook in here. It must be safe for concurrent use.
func (c *Collector) SetObserver(fn func(*QueryTrace)) {
	if fn == nil {
		c.obs.Store(nil)
		return
	}
	c.obs.Store(&fn)
}

// Add assigns the trace an ID, sorts its events for tree assembly, and
// retains it. The trace must not be mutated after Add.
func (c *Collector) Add(t *QueryTrace) {
	t.ID = c.nextID.Add(1)
	slices.SortStableFunc(t.Events, func(a, b Event) int {
		if a.Start != b.Start {
			if a.Start < b.Start {
				return -1
			}
			return 1
		}
		// Equal starts: the longer span is the parent; sort it first.
		if a.End != b.End {
			if a.End > b.End {
				return -1
			}
			return 1
		}
		return 0
	})
	c.mu.Lock()
	c.recent.add(t)
	if sl := c.slowNs.Load(); sl > 0 && t.Duration.Nanoseconds() >= sl {
		c.slow.add(t)
	}
	c.mu.Unlock()
	if p := c.obs.Load(); p != nil {
		(*p)(t)
	}
}

// Recent returns the retained recent traces, newest first.
func (c *Collector) Recent() []*QueryTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recent.snapshot()
}

// Slow returns the retained slow traces, newest first.
func (c *Collector) Slow() []*QueryTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slow.snapshot()
}

// Get returns the retained trace with the given ID, or nil.
func (c *Collector) Get(id uint64) *QueryTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range []*collectorRing{&c.recent, &c.slow} {
		for _, t := range r.buf {
			if t != nil && t.ID == id {
				return t
			}
		}
	}
	return nil
}

// FindRequest returns the most recent retained trace for the HTTP request
// ID, or nil. Batched companions have distinct request IDs, so the lookup
// is unambiguous.
func (c *Collector) FindRequest(reqID uint64) *QueryTrace {
	if reqID == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *QueryTrace
	for _, r := range []*collectorRing{&c.recent, &c.slow} {
		for _, t := range r.buf {
			if t != nil && t.RequestID == reqID && (best == nil || t.ID > best.ID) {
				best = t
			}
		}
	}
	return best
}
