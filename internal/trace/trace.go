// Package trace is the engine's always-on, allocation-free search tracing
// layer. Each worker of a search records fixed-width span events — phase,
// BFS level, owning column groups, frontier/edge counts, nanosecond
// timestamps — into its own single-writer ring buffer; after the search, a
// cold-path drain hands the events to a Collector that assembles per-query
// trace trees keyed by request ID. The record path takes no locks and
// performs no allocations (machine-checked by wikilint's hotpathalloc pass
// and the AllocationFree guards), so tracing stays on in production.
//
// Timestamps are nanoseconds since the package epoch (process start), read
// from the monotonic clock. All rings of one search share that clock, so
// events from different workers order and nest correctly.
package trace

import "time"

// epoch anchors every trace timestamp; Now reads the monotonic clock
// relative to it so events are plain int64 nanoseconds.
var epoch = time.Now()

// Now returns the current trace-clock time: monotonic nanoseconds since the
// package epoch.
//
//wikisearch:hotpath
func Now() int64 { return int64(time.Since(epoch)) }

// Kind identifies what a span measured.
type Kind uint8

// The span kinds, from the outermost handler down to one pool fork/join.
const (
	// KindBatchWait is a query's time in the batcher's coalescing window:
	// admission until its batch launched.
	KindBatchWait Kind = iota
	// KindBatchRun is the shared batched execution a query was a member of.
	KindBatchRun
	// KindBottomUp is stage one of Algorithm 1: initialization plus every
	// BFS level, shared by all column groups of a batch.
	KindBottomUp
	// KindInit is the Initialization phase (keyword marking).
	KindInit
	// KindLevel is one BFS level: enqueue, identify and expand.
	KindLevel
	// KindEnqueue is the sequential frontier-enqueue step of a level.
	KindEnqueue
	// KindIdentify is the Central Node identification step of a level.
	KindIdentify
	// KindExpand is the Expansion step of a level.
	KindExpand
	// KindTopDown is the top-down extraction of one column group.
	KindTopDown
	// KindPoolWork is one worker's busy time inside a fork/join phase.
	KindPoolWork
	// KindPoolJoin is the coordinator's wait after its own chunks ran out —
	// the chunk-scheduling stall signal: a long join under a short own span
	// means the dynamic chunks were skewed across helpers.
	KindPoolJoin
	// KindExchange is one level's cross-shard boundary application on a
	// sharded search: remote activation messages applied to owner shards
	// before the level's enqueue.
	KindExchange
	// KindMerge is the sharded coordinator's global merge work: per level
	// the k-way Central Node merge, and once at the end the owned-row
	// matrix absorption.
	KindMerge
	numKinds
)

var kindNames = [numKinds]string{
	"batch-wait", "batch-run", "bottom-up", "init", "level",
	"enqueue", "identify", "expand", "top-down", "pool-work", "pool-join",
	"exchange", "merge",
}

// String names the kind for trace trees and Chrome trace events.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one fixed-width span record (40 bytes): a closed interval on the
// trace clock plus the attribution needed to rebuild a query's tree. The
// meaning of the A/B counters depends on Kind:
//
//	KindBatchWait / KindBatchRun:  A=batch queries,  B=keyword columns
//	KindInit:                      A=keyword columns
//	KindLevel / KindExpand:        A=frontier size,  B=edges scanned
//	KindEnqueue:                   A=frontier size
//	KindIdentify:                  A=frontier size,  B=centrals found
//	KindTopDown:                   A=answers,        B=central candidates
//	KindPoolWork / KindPoolJoin:   A=phase items,    B=helpers woken
//	KindExchange:                  A=messages applied
//	KindMerge:                     A=centrals merged or rows absorbed, B=total centrals
type Event struct {
	Start int64 // trace-clock ns
	End   int64 // trace-clock ns
	A, B  int64 // kind-dependent counters (see above)
	// Groups is the bitmask of column groups the span worked for; 0 means
	// the span is shared by every member of the search.
	Groups uint32
	// Level is the BFS level for level-scoped kinds, -1 otherwise.
	Level  int16
	Kind   Kind
	Worker uint8
}

// ringEvents is the per-worker ring capacity (a power of two). At 40 bytes
// per event a full ring is 40KiB per worker; a deep search overwrites its
// oldest events and reports how many were dropped.
const ringEvents = 1024

// ring is a single-writer event ring: exactly one goroutine (the worker the
// ring belongs to) records into it, so a write is one slice store and one
// position increment — no atomics, no locks. The fork/join barriers of the
// owning search provide the happens-before edges the cold-path drain needs.
type ring struct {
	//wikisearch:singlewriter
	ev []Event // len ringEvents
	//wikisearch:singlewriter
	pos uint64 // events recorded since Reset; wraps the ring when > len
}

// record appends one event, overwriting the oldest when full.
//
//wikisearch:hotpath
//wikisearch:writer
func (r *ring) record(e Event) {
	r.ev[r.pos&uint64(len(r.ev)-1)] = e
	r.pos++
}

// Buffer is one search state's set of per-worker rings. It is owned by a
// SearchState and shares its lifecycle: sized once (Ensure), reset per
// search, recorded into by that search's workers only, drained after. A
// Buffer must not be copied: a copy aliases the rings.
//
//wikisearch:nocopy
type Buffer struct {
	rings   []ring
	enabled bool
}

// Ensure sizes the buffer for at least `workers` rings. Cold path: called
// when the owning state's worker pool is (re)built.
//
//wikisearch:coldpath sized when the worker pool is rebuilt, never per search
func (b *Buffer) Ensure(workers int) {
	if workers < 1 {
		workers = 1
	}
	for len(b.rings) < workers {
		b.rings = append(b.rings, ring{ev: make([]Event, ringEvents)})
	}
}

// SetEnabled turns recording on or off; a disabled buffer's Record is a
// single branch.
func (b *Buffer) SetEnabled(on bool) { b.enabled = on }

// On reports whether recording is live. Nil-safe, so un-traced states (the
// one-shot core.Search path) cost one comparison.
//
//wikisearch:hotpath
func (b *Buffer) On() bool { return b != nil && b.enabled }

// Reset forgets all recorded events; called at the start of each search.
// The search has not started, so the owner-only write discipline is
// trivially satisfied.
//
//wikisearch:hotpath
//wikisearch:writer
func (b *Buffer) Reset() {
	if b == nil {
		return
	}
	for i := range b.rings {
		b.rings[i].pos = 0
	}
}

// Record writes one completed span into worker w's ring. It is the only
// hot-path entry point: lock-free, allocation-free, and a no-op when the
// buffer is nil, disabled, or w is out of range.
//
//wikisearch:hotpath
func (b *Buffer) Record(w int, k Kind, start, end int64, level int, groups uint32, a, bb int64) {
	if b == nil || !b.enabled || w >= len(b.rings) {
		return
	}
	b.rings[w].record(Event{
		Start: start, End: end, A: a, B: bb,
		Groups: groups, Level: int16(level), Kind: k, Worker: uint8(w),
	})
}

// Drain appends every event recorded since Reset to dst (in per-ring record
// order) and returns the extended slice plus the number of events lost to
// ring overflow. Cold path: the caller sorts and owns the result, and the
// fork/join barrier of the finished search orders the reads after the
// workers' writes.
//
//wikisearch:drain
func (b *Buffer) Drain(dst []Event) ([]Event, int) {
	if b == nil {
		return dst, 0
	}
	dropped := 0
	for i := range b.rings {
		r := &b.rings[i]
		n := r.pos
		lo := uint64(0)
		if n > uint64(len(r.ev)) {
			dropped += int(n - uint64(len(r.ev)))
			lo = n - uint64(len(r.ev))
		}
		mask := uint64(len(r.ev) - 1)
		for j := lo; j < n; j++ {
			dst = append(dst, r.ev[j&mask])
		}
	}
	return dst, dropped
}
