package trace

import "context"

// reqIDKey is the context key carrying the serving layer's request ID.
type reqIDKey struct{}

// WithRequestID returns a context carrying the HTTP request ID, so the
// engine can stamp the traces it collects and the debug endpoints can
// correlate handler spans with engine spans.
func WithRequestID(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or 0. Nil-safe.
func RequestIDFrom(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	id, _ := ctx.Value(reqIDKey{}).(uint64)
	return id
}
