package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestRecordAllocationFree: the record path — the only code that runs
// inside the search kernel — must not allocate.
func TestRecordAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	var b Buffer
	b.Ensure(4)
	b.SetEnabled(true)
	allocs := testing.AllocsPerRun(200, func() {
		t0 := Now()
		for w := 0; w < 4; w++ {
			b.Record(w, KindExpand, t0, Now(), 3, 1, 100, 200)
		}
		b.Record(0, KindLevel, t0, Now(), 3, 1, 100, 200)
	})
	if allocs != 0 {
		t.Fatalf("record path allocated %.1f times per run; want 0", allocs)
	}
	// Overflow the ring: still no allocation.
	allocs = testing.AllocsPerRun(10, func() {
		t0 := Now()
		for i := 0; i < 2*ringEvents; i++ {
			b.Record(1, KindEnqueue, t0, t0, i, 0, 0, 0)
		}
	})
	if allocs != 0 {
		t.Fatalf("ring overflow allocated %.1f times per run; want 0", allocs)
	}
}

// TestBufferDrain: events recorded since Reset come back; overflow reports
// the dropped count; disabled and nil buffers record nothing.
func TestBufferDrain(t *testing.T) {
	var b Buffer
	b.Ensure(2)
	b.SetEnabled(true)
	b.Reset()
	b.Record(0, KindInit, 1, 2, -1, 0, 0, 0)
	b.Record(1, KindPoolWork, 3, 4, -1, 0, 0, 0)
	ev, dropped := b.Drain(nil)
	if len(ev) != 2 || dropped != 0 {
		t.Fatalf("drained %d events, %d dropped; want 2, 0", len(ev), dropped)
	}

	b.Reset()
	for i := 0; i < ringEvents+10; i++ {
		b.Record(0, KindEnqueue, int64(i), int64(i), 0, 0, 0, 0)
	}
	ev, dropped = b.Drain(nil)
	if len(ev) != ringEvents || dropped != 10 {
		t.Fatalf("overflow drain: %d events, %d dropped; want %d, 10", len(ev), dropped, ringEvents)
	}
	// The oldest 10 were overwritten: the first surviving event starts at 10.
	if ev[0].Start != 10 {
		t.Fatalf("first surviving event starts at %d; want 10", ev[0].Start)
	}

	b.SetEnabled(false)
	b.Reset()
	b.Record(0, KindInit, 1, 2, -1, 0, 0, 0)
	if ev, _ := b.Drain(nil); len(ev) != 0 {
		t.Fatalf("disabled buffer recorded %d events", len(ev))
	}
	var nb *Buffer
	if nb.On() {
		t.Fatal("nil buffer reports On")
	}
	nb.Record(0, KindInit, 1, 2, -1, 0, 0, 0) // must not panic
	nb.Reset()
	if ev, _ := nb.Drain(nil); len(ev) != 0 {
		t.Fatal("nil buffer drained events")
	}
}

// testTrace builds a small batched-looking trace: a bottom-up span holding
// two levels (each with enqueue inside), and per-group top-down spans.
func testTrace() *QueryTrace {
	tr := &QueryTrace{
		Query: "xml rdf", Terms: []string{"xml", "rdf"}, Variant: "CPU-Par",
		StartNs: 100, Start: time.Now(), Duration: 1000,
		Batched: true, BatchQueries: 2, Group: 1,
		Events: []Event{
			{Start: 110, End: 900, Kind: KindBottomUp, Level: -1},
			{Start: 120, End: 400, Kind: KindLevel, Level: 0, Groups: 3, A: 10},
			{Start: 120, End: 200, Kind: KindEnqueue, Level: 0, Groups: 3, A: 10},
			{Start: 410, End: 890, Kind: KindLevel, Level: 1, Groups: 3, A: 20},
			{Start: 905, End: 940, Kind: KindTopDown, Level: -1, Groups: 1},
			{Start: 945, End: 990, Kind: KindTopDown, Level: -1, Groups: 2},
		},
	}
	return tr
}

// TestTreeNesting: interval containment parents levels under bottom-up and
// steps under levels, and group attribution marks only this query's spans.
func TestTreeNesting(t *testing.T) {
	tr := testTrace()
	root := tr.Tree()
	if root.Name != "search" || len(root.Children) != 3 {
		t.Fatalf("root has %d children; want 3 (bottom-up + 2 top-down)", len(root.Children))
	}
	bu := root.Children[0]
	if bu.Kind != KindBottomUp || len(bu.Children) != 2 {
		t.Fatalf("bottom-up holds %d children; want 2 levels", len(bu.Children))
	}
	lvl0 := bu.Children[0]
	if lvl0.Kind != KindLevel || len(lvl0.Children) != 1 || lvl0.Children[0].Kind != KindEnqueue {
		t.Fatalf("level 0 does not nest its enqueue step: %+v", lvl0)
	}
	if lvl0.Start != 20 { // rebased to the query's own start
		t.Fatalf("level 0 starts at %d; want 20", lvl0.Start)
	}
	// Group attribution: this query is group 1, so the Groups=2 top-down is
	// mine, the Groups=1 one is the companion's.
	td0, td1 := root.Children[1], root.Children[2]
	if td0.Mine || !td1.Mine {
		t.Fatalf("top-down attribution wrong: mine=%v,%v; want false,true", td0.Mine, td1.Mine)
	}
	if !bu.Mine {
		t.Fatal("shared bottom-up span not attributed to the member")
	}
	if got, want := tr.PhaseNs(KindTopDown), int64(45); got != want {
		t.Fatalf("PhaseNs(top-down) = %d; want %d (own group only)", got, want)
	}
}

// TestWriteChrome: the export is valid trace_event JSON with complete
// events and microsecond timestamps.
func TestWriteChrome(t *testing.T) {
	tr := testTrace()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(out.TraceEvents) != len(tr.Events)+1 {
		t.Fatalf("%d trace events; want %d", len(out.TraceEvents), len(tr.Events)+1)
	}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" || ev.Name == "" || ev.Ts < 0 || ev.Dur < 0 || ev.Pid != 1 {
			t.Fatalf("malformed trace event: %+v", ev)
		}
	}
}

// TestCollectorRetention: recent/slow rings, Get, FindRequest, observer.
func TestCollectorRetention(t *testing.T) {
	c := NewCollector()
	c.SetSlowThreshold(500 * time.Millisecond)
	var seen []uint64
	c.SetObserver(func(tr *QueryTrace) { seen = append(seen, tr.ID) })

	fast := &QueryTrace{Query: "fast", RequestID: 7, Duration: time.Millisecond}
	slow := &QueryTrace{Query: "slow", RequestID: 8, Duration: time.Second}
	c.Add(fast)
	c.Add(slow)

	if r := c.Recent(); len(r) != 2 || r[0].Query != "slow" {
		t.Fatalf("recent = %d traces, first %q; want 2, slow (newest first)", len(r), r[0].Query)
	}
	if s := c.Slow(); len(s) != 1 || s[0].Query != "slow" {
		t.Fatalf("slow ring holds %d traces; want just the slow one", len(s))
	}
	if got := c.Get(fast.ID); got != fast {
		t.Fatal("Get did not find the fast trace")
	}
	if got := c.FindRequest(8); got != slow {
		t.Fatal("FindRequest did not find the slow trace")
	}
	if c.FindRequest(0) != nil || c.Get(999) != nil {
		t.Fatal("lookup invented a trace")
	}
	if len(seen) != 2 {
		t.Fatalf("observer saw %d traces; want 2", len(seen))
	}

	// Unsorted events get sorted for tree assembly at Add.
	tr := &QueryTrace{Events: []Event{
		{Start: 50, End: 60}, {Start: 10, End: 90}, {Start: 10, End: 40},
	}}
	c.Add(tr)
	if tr.Events[0].Start != 10 || tr.Events[0].End != 90 {
		t.Fatalf("events not sorted (Start asc, End desc): %+v", tr.Events)
	}
}

// TestKindNames: every kind stringifies without collisions.
func TestKindNames(t *testing.T) {
	names := map[string]bool{}
	for k := Kind(0); k < numKinds; k++ {
		n := k.String()
		if n == "" || n == "unknown" || names[n] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, n)
		}
		names[n] = true
	}
	if !strings.Contains(numKinds.String(), "unknown") {
		t.Fatal("out-of-range kind should stringify as unknown")
	}
}
