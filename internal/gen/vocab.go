// Package gen generates the synthetic Wikidata-like knowledge bases this
// reproduction uses in place of the paper's wiki2017/wiki2018 dumps (see the
// substitution table in DESIGN.md), plus the query workloads (the paper's
// AAAI'14 keyword lists) and the planted relevance used by the
// effectiveness experiments in place of human judgment.
//
// Everything is deterministic in the configured seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
)

// baseVocab is the head of the keyword vocabulary: real CS/IR words so the
// Table V queries and all examples read naturally. Zipf sampling makes
// these the frequent keywords, mirroring the kwf spreads of Table V.
var baseVocab = []string{
	// Table V query words (Q1–Q10; the deliberately rare Q11 words live in
	// rareTail below).
	"xml", "relational", "search", "database", "indexing", "ranking",
	"bayesian", "inference", "markov", "network", "statistical",
	"learning", "sql", "rdf", "knowledge", "base", "supervised",
	"gradient", "descent", "machine", "translation", "transfer",
	"auxiliary", "data", "retrieval", "text", "classification", "sharing",
	"mining", "medicine", "technique", "natural", "language", "processing",
	// Broader CS filler.
	"graph", "keyword", "query", "parallel", "engine", "system",
	"distributed", "storage", "optimization", "neural", "deep",
	"clustering", "regression", "semantic", "ontology", "entity",
	"linking", "embedding", "vector", "matrix", "tensor", "kernel",
	"sampling", "probabilistic", "logic", "reasoning", "planning",
	"vision", "speech", "recognition", "generation", "summarization",
	"recommendation", "filtering", "collaborative", "privacy",
	"security", "cryptography", "compression", "streaming", "temporal",
	"spatial", "crowdsourcing", "annotation", "benchmark", "evaluation",
	"scalable", "efficient", "robust", "adaptive", "dynamic", "static",
	"incremental", "approximate", "exact", "heuristic", "algorithm",
	"complexity", "bound", "proof", "model", "framework", "architecture",
	"protocol", "consensus", "replication", "transaction", "concurrency",
	"scheduling", "caching", "partitioning", "sharding", "compiler",
	"runtime", "virtualization", "container", "cloud", "edge", "mobile",
	"sensor", "wireless", "energy", "hardware", "accelerator", "gpu",
	"memory", "cache", "latency", "throughput", "bandwidth", "workload",
}

// rareTail words always take the lowest Zipf ranks, reproducing Table V's
// Q11: keywords with tiny frequency and little ambiguity.
var rareTail = []string{"wikidata", "freebase", "yahoo", "neo4j", "sparql"}

// syllables for synthetic tail words.
var (
	onsets = []string{"b", "br", "c", "cr", "d", "dr", "f", "g", "gl", "k", "l", "m", "n", "p", "pr", "qu", "r", "s", "st", "t", "tr", "v", "z"}
	nuclei = []string{"a", "e", "i", "o", "u", "ai", "ea", "io", "ou"}
	codas  = []string{"", "l", "n", "r", "s", "t", "x", "ck", "nd", "rm"}
)

// Vocab is a keyword vocabulary with Zipf-distributed sampling.
type Vocab struct {
	words []string
	// cumulative Zipf weights for sampling
	cum []float64
}

// NewVocab builds a vocabulary of the given size: the real base words first,
// then synthetic filler words, with Zipf(s≈1.07) rank weights — the shape of
// natural-language keyword frequencies (the paper's 5M-keyword vocabulary is
// heavily skewed).
func NewVocab(size int, rng *rand.Rand) *Vocab {
	if size < len(baseVocab)+len(rareTail) {
		size = len(baseVocab) + len(rareTail)
	}
	words := make([]string, 0, size)
	words = append(words, baseVocab...)
	seen := make(map[string]struct{}, size)
	for _, w := range words {
		seen[w] = struct{}{}
	}
	for _, w := range rareTail {
		seen[w] = struct{}{}
	}
	for len(words) < size-len(rareTail) {
		w := synthWord(rng)
		if _, dup := seen[w]; dup {
			w = fmt.Sprintf("%s%d", w, len(words))
		}
		seen[w] = struct{}{}
		words = append(words, w)
	}
	words = append(words, rareTail...)
	v := &Vocab{words: words, cum: make([]float64, len(words))}
	total := 0.0
	for i := range words {
		total += 1.0 / math.Pow(float64(i+1), 1.07)
		v.cum[i] = total
	}
	return v
}

// Size returns the number of words.
func (v *Vocab) Size() int { return len(v.words) }

// Word returns word i (rank order: smaller i is more frequent).
func (v *Vocab) Word(i int) string { return v.words[i] }

// Sample draws one word with Zipf probabilities.
func (v *Vocab) Sample(rng *rand.Rand) string {
	x := rng.Float64() * v.cum[len(v.cum)-1]
	lo, hi := 0, len(v.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return v.words[lo]
}

// SampleN draws n distinct words.
func (v *Vocab) SampleN(n int, rng *rand.Rand) []string {
	out := make([]string, 0, n)
	seen := map[string]struct{}{}
	for len(out) < n && len(seen) < v.Size() {
		w := v.Sample(rng)
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		out = append(out, w)
	}
	return out
}

func synthWord(rng *rand.Rand) string {
	n := 2 + rng.Intn(2) // 2–3 syllables
	w := ""
	for i := 0; i < n; i++ {
		w += onsets[rng.Intn(len(onsets))] + nuclei[rng.Intn(len(nuclei))]
	}
	return w + codas[rng.Intn(len(codas))]
}
