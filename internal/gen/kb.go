package gen

import (
	"fmt"
	"math/rand"

	"wikisearch/internal/graph"
)

// Config controls one synthetic knowledge-base generation.
type Config struct {
	Name string // dataset name, e.g. "wiki2017-sim"
	Seed int64
	// Nodes is the total node budget (classes + topics + venues + entities).
	Nodes int
	// AvgDegree is the target number of directed edges per node.
	AvgDegree float64
	// Classes is the number of class nodes; the first few ("human",
	// "research article", …) become the extreme summary hubs of §IV-A.
	Classes int
	// Topics is the number of topic nodes ("data mining"-like: many
	// same-labeled in-edges, few distinct labels).
	Topics int
	// Venues is the number of conference/journal nodes (mid-size summary
	// nodes, "usually around hundreds of in-edges").
	Venues int
	// VocabSize is the keyword vocabulary size.
	VocabSize int
	// PlantEffectiveness plants the relevance cores and decoys for the
	// Q1–Q11 effectiveness queries (Fig. 11/12).
	PlantEffectiveness bool
}

func (c Config) defaults() Config {
	if c.Name == "" {
		c.Name = "synthetic"
	}
	if c.Nodes <= 0 {
		c.Nodes = 20000
	}
	if c.AvgDegree <= 0 {
		c.AvgDegree = 8
	}
	if c.Classes <= 0 {
		c.Classes = 30
	}
	if c.Topics <= 0 {
		c.Topics = c.Nodes / 200
		if c.Topics < 20 {
			c.Topics = 20
		}
	}
	if c.Venues <= 0 {
		c.Venues = c.Nodes / 400
		if c.Venues < 10 {
			c.Venues = 10
		}
	}
	if c.VocabSize <= 0 {
		c.VocabSize = c.Nodes / 8
	}
	min := c.Classes + c.Topics + c.Venues + 100
	if c.Nodes < min {
		c.Nodes = min
	}
	return c
}

// Wiki2017Sim is the laptop-scale stand-in for the paper's wiki2017 dump
// (15.1M nodes / 124M edges scaled ≈250×).
func Wiki2017Sim() Config {
	return Config{Name: "wiki2017-sim", Seed: 2017, Nodes: 60000, AvgDegree: 8,
		VocabSize: 8000, PlantEffectiveness: true}
}

// Wiki2018Sim is the stand-in for the wiki2018 dump (30.6M nodes / 271M
// edges, scaled by the same factor; twice the nodes and ~2.2× the edges of
// Wiki2017Sim, preserving the dumps' relative growth).
func Wiki2018Sim() Config {
	return Config{Name: "wiki2018-sim", Seed: 2018, Nodes: 120000, AvgDegree: 9,
		VocabSize: 12000, PlantEffectiveness: true}
}

// TinySim is a small config for tests and examples.
func TinySim() Config {
	return Config{Name: "tiny-sim", Seed: 7, Nodes: 3000, AvgDegree: 6,
		VocabSize: 600, PlantEffectiveness: true}
}

// PlantedQuery records one effectiveness query and its planted ground truth.
type PlantedQuery struct {
	ID       string   // "Q1" … "Q11"
	Keywords []string // raw query keywords (Table V analogues)
	// Cores are the planted relevant nodes: entities whose labels co-occur
	// several query keywords. An answer is judged relevant iff it contains
	// at least one core (see internal/eval).
	Cores []graph.NodeID
	// Hub is the light-weight connector wired to every core.
	Hub graph.NodeID
	// Decoys carry exactly one isolated query keyword each, wired to
	// summary hubs — the short-but-meaningless connections BANKS-II falls
	// for.
	Decoys []graph.NodeID
}

// KB is one generated knowledge base.
type KB struct {
	Name    string
	Config  Config
	Graph   *graph.Graph
	Classes []graph.NodeID
	Topics  []graph.NodeID
	Venues  []graph.NodeID
	Planted []PlantedQuery
}

// classNames seeds the summary-class hubs; Zipf assignment makes "human"
// the 2M-in-edge-style superhub of §IV-A.
var classNames = []string{
	"human", "research article", "scholarly work", "city", "organization",
	"software", "book", "film", "protein", "gene", "taxon", "company",
	"university", "award", "event", "concept",
}

// Generate builds the knowledge base described by cfg. Generation is fully
// deterministic in cfg.Seed.
func Generate(cfg Config) *KB {
	cfg = cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := NewVocab(cfg.VocabSize, rng)
	b := graph.NewBuilder()
	kb := &KB{Name: cfg.Name, Config: cfg}

	relInstanceOf := b.Rel("instance of")
	relSubclassOf := b.Rel("subclass of")
	relMainTopic := b.Rel("main topic")
	relPublishedIn := b.Rel("published in")
	relAuthor := b.Rel("author")
	relCites := b.Rel("cites")
	relPartOf := b.Rel("part of")
	relRelated := b.Rel("related to")

	// 1. Class nodes. Labels are category-ish and deliberately generic.
	for i := 0; i < cfg.Classes; i++ {
		var label string
		if i < len(classNames) {
			label = classNames[i]
		} else {
			label = fmt.Sprintf("class %s", vocab.Sample(rng))
		}
		kb.Classes = append(kb.Classes, b.AddNode(label, ""))
	}
	// Shallow class taxonomy.
	for i := 1; i < len(kb.Classes); i++ {
		b.AddEdge(kb.Classes[i], kb.Classes[rng.Intn(i)], relSubclassOf)
	}

	// 2. Topic nodes: 1–2 head-vocabulary words ("data mining"-like).
	for i := 0; i < cfg.Topics; i++ {
		words := vocab.SampleN(1+rng.Intn(2), rng)
		label := words[0]
		if len(words) > 1 {
			label += " " + words[1]
		}
		v := b.AddNode(label, "field of study")
		kb.Topics = append(kb.Topics, v)
		b.AddEdge(v, kb.Classes[len(kb.Classes)-1], relInstanceOf) // concept
	}

	// 3. Venue nodes (conferences/journals): mid-size summary hubs.
	for i := 0; i < cfg.Venues; i++ {
		label := fmt.Sprintf("%s conference %d", vocab.Sample(rng), i)
		v := b.AddNode(label, "academic venue")
		kb.Venues = append(kb.Venues, v)
		b.AddEdge(v, kb.Classes[1%len(kb.Classes)], relInstanceOf)
	}

	// 4. Entities. prefTargets implements preferential attachment: every
	// edge endpoint is appended, so sampling uniformly from it picks nodes
	// proportionally to degree+1.
	entityStart := b.NumNodes()
	nEntities := cfg.Nodes - entityStart
	prefTargets := make([]graph.NodeID, 0, nEntities)
	for i := 0; i < nEntities; i++ {
		words := vocab.SampleN(2+rng.Intn(3), rng)
		label := words[0]
		for _, w := range words[1:] {
			label += " " + w
		}
		descWords := vocab.SampleN(rng.Intn(6), rng)
		desc := ""
		for j, w := range descWords {
			if j > 0 {
				desc += " "
			}
			desc += w
		}
		v := b.AddNode(label, desc)

		// instance-of with Zipf over classes: class 0 ("human") dominates.
		b.AddEdge(v, kb.Classes[zipfIndex(rng, len(kb.Classes))], relInstanceOf)

		kind := rng.Float64()
		switch {
		case kind < 0.45: // article-like
			for t := 0; t < 1+rng.Intn(2); t++ {
				b.AddEdge(v, kb.Topics[zipfIndex(rng, len(kb.Topics))], relMainTopic)
			}
			b.AddEdge(v, kb.Venues[zipfIndex(rng, len(kb.Venues))], relPublishedIn)
			if len(prefTargets) > 0 {
				b.AddEdge(v, prefTargets[rng.Intn(len(prefTargets))], relCites)
			}
			if len(prefTargets) > 0 {
				b.AddEdge(v, prefTargets[rng.Intn(len(prefTargets))], relAuthor)
			}
		case kind < 0.7: // person-like
			if len(prefTargets) > 0 {
				b.AddEdge(v, prefTargets[rng.Intn(len(prefTargets))], relRelated)
			}
		default: // thing-like
			if len(prefTargets) > 0 {
				b.AddEdge(v, prefTargets[rng.Intn(len(prefTargets))], relPartOf)
			}
		}
		prefTargets = append(prefTargets, v)
	}

	// 5. Extra preferential edges up to the degree budget.
	targetEdges := int(float64(cfg.Nodes) * cfg.AvgDegree)
	rels := []graph.RelID{relRelated, relCites, relPartOf}
	for edges := approxEdges(b); edges < targetEdges; edges++ {
		from := prefTargets[rng.Intn(len(prefTargets))]
		to := prefTargets[rng.Intn(len(prefTargets))]
		if from == to {
			continue
		}
		b.AddEdge(from, to, rels[rng.Intn(len(rels))])
	}

	// 6. Effectiveness planting.
	if cfg.PlantEffectiveness {
		kb.Planted = plantAll(b, vocab, rng, kb, relRelated, relInstanceOf, relPublishedIn)
	}

	g, err := b.Build()
	if err != nil {
		// Generation only adds edges between nodes it created; failure here
		// is a programming error, not an input error.
		panic(fmt.Sprintf("gen: %v", err))
	}
	kb.Graph = g
	return kb
}

// zipfIndex samples an index in [0,n) with P(i) ∝ 1/(i+1).
func zipfIndex(rng *rand.Rand, n int) int {
	// Inverse-CDF on the harmonic distribution via rejection-free trick:
	// approximate with exponential of uniform — cheap and adequately skewed.
	for {
		x := int(float64(n) * (rng.ExpFloat64() / 5))
		if x < n {
			return x
		}
	}
}

func approxEdges(b *graph.Builder) int {
	// Builder does not expose an edge count; track via node count heuristic
	// is fragile, so count precisely.
	return b.NumEdges()
}
