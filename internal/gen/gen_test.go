package gen

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
	"wikisearch/internal/text"
	"wikisearch/internal/weight"
)

func tinyKB(t *testing.T) *KB {
	t.Helper()
	return Generate(TinySim())
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(TinySim())
	b := Generate(TinySim())
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			a.Graph.NumNodes(), a.Graph.NumEdges(), b.Graph.NumNodes(), b.Graph.NumEdges())
	}
	for v := 0; v < a.Graph.NumNodes(); v++ {
		if a.Graph.Label(graph.NodeID(v)) != b.Graph.Label(graph.NodeID(v)) {
			t.Fatalf("label %d differs", v)
		}
		if a.Graph.Degree(graph.NodeID(v)) != b.Graph.Degree(graph.NodeID(v)) {
			t.Fatalf("degree %d differs", v)
		}
	}
	if !reflect.DeepEqual(a.Planted, b.Planted) {
		t.Fatal("planted queries differ between runs")
	}
}

func TestGenerateValidGraph(t *testing.T) {
	kb := tinyKB(t)
	if err := kb.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := TinySim().defaults()
	if kb.Graph.NumNodes() < cfg.Nodes {
		t.Fatalf("nodes = %d, want >= %d", kb.Graph.NumNodes(), cfg.Nodes)
	}
	// Degree budget roughly met (plantings add a few percent).
	avg := float64(kb.Graph.NumEdges()) / float64(kb.Graph.NumNodes())
	if avg < cfg.AvgDegree*0.7 || avg > cfg.AvgDegree*1.5 {
		t.Fatalf("average degree %.2f, want ≈ %.1f", avg, cfg.AvgDegree)
	}
}

func TestSummaryHubExists(t *testing.T) {
	// The "human" class must be the style of superhub §IV-A describes:
	// huge in-degree, dominated by one label.
	kb := tinyKB(t)
	human := kb.Classes[0]
	if kb.Graph.Label(human) != "human" {
		t.Fatalf("class 0 label = %q", kb.Graph.Label(human))
	}
	indeg := kb.Graph.InDegree(human)
	if indeg < kb.Graph.NumNodes()/20 {
		t.Fatalf("human in-degree %d too small for a superhub", indeg)
	}
	// It must also be among the heaviest nodes by Eq. 2.
	pool := parallel.NewPool(2)
	w := weight.Compute(kb.Graph, pool)
	heavier := 0
	for _, x := range w {
		if x > w[human] {
			heavier++
		}
	}
	if heavier > kb.Graph.NumNodes()/100 {
		t.Fatalf("human is not in the top 1%% by degree of summary (%d heavier)", heavier)
	}
}

func TestZipfKeywordFrequencies(t *testing.T) {
	kb := tinyKB(t)
	ix := text.BuildIndex(kb.Graph)
	// Head words are frequent; rare-tail words are rare (Table V's Q11).
	freqHead := ix.Frequency("learning")
	freqRare := ix.Frequency("wikidata")
	if freqHead == 0 || freqRare == 0 {
		t.Fatalf("frequencies: learning=%d wikidata=%d, both must be positive", freqHead, freqRare)
	}
	if freqHead < 10*freqRare {
		t.Fatalf("head word (%d) not ≫ rare word (%d)", freqHead, freqRare)
	}
}

func TestPlantedQueries(t *testing.T) {
	kb := tinyKB(t)
	if len(kb.Planted) != 11 {
		t.Fatalf("planted %d queries, want 11", len(kb.Planted))
	}
	ix := text.BuildIndex(kb.Graph)
	for _, p := range kb.Planted {
		if len(p.Cores) != coresPerQuery || len(p.Decoys) != decoysPerQuery {
			t.Fatalf("%s: %d cores / %d decoys", p.ID, len(p.Cores), len(p.Decoys))
		}
		// Every query keyword resolves in the index.
		for _, kw := range p.Keywords {
			if ix.Frequency(kw) == 0 {
				t.Fatalf("%s: keyword %q has no postings", p.ID, kw)
			}
		}
		// Core labels collectively cover all query keywords.
		covered := map[string]bool{}
		for _, c := range p.Cores {
			label := kb.Graph.Label(c)
			for _, kw := range p.Keywords {
				for _, tok := range text.Normalize(label) {
					for _, qt := range text.Normalize(kw) {
						if tok == qt {
							covered[kw] = true
						}
					}
				}
			}
			// Cores must connect to the hub.
			if !kb.Graph.HasEdge(c, p.Hub) {
				t.Fatalf("%s: core %d not wired to hub", p.ID, c)
			}
		}
		for _, kw := range p.Keywords {
			if !covered[kw] {
				t.Fatalf("%s: keyword %q not covered by any core", p.ID, kw)
			}
		}
		// Decoys carry at least one query keyword and sit on the superhub.
		for _, d := range p.Decoys {
			if !kb.Graph.HasEdge(d, kb.Classes[0]) {
				t.Fatalf("%s: decoy %d not wired to the superhub", p.ID, d)
			}
		}
	}
	if got := EffectivenessQueryIDs(); len(got) != 11 || got[0] != "Q1" || got[10] != "Q11" {
		t.Fatalf("EffectivenessQueryIDs = %v", got)
	}
}

func TestEfficiencyWorkload(t *testing.T) {
	kb := tinyKB(t)
	ix := text.BuildIndex(kb.Graph)
	for _, knum := range []int{2, 4, 6} {
		w := EfficiencyWorkload(kb, ix, knum, 20, 42)
		if len(w.Queries) != 20 {
			t.Fatalf("knum=%d: %d queries, want 20", knum, len(w.Queries))
		}
		for _, q := range w.Queries {
			terms := strings.Fields(q)
			if len(terms) != knum {
				t.Fatalf("query %q has %d terms, want %d", q, len(terms), knum)
			}
			for _, term := range terms {
				if len(ix.Lookup(term)) == 0 {
					t.Fatalf("query term %q unresolvable", term)
				}
			}
		}
	}
	// Deterministic in seed.
	a := EfficiencyWorkload(kb, ix, 4, 10, 1)
	b := EfficiencyWorkload(kb, ix, 4, 10, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("workload not deterministic")
	}
}

func TestVocab(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewVocab(500, rng)
	if v.Size() != 500 {
		t.Fatalf("Size = %d", v.Size())
	}
	// Rare tail occupies the last ranks.
	last := v.Word(v.Size() - 1)
	found := false
	for _, w := range rareTail {
		if w == last {
			found = true
		}
	}
	if !found {
		t.Fatalf("last word %q not from rare tail", last)
	}
	// Zipf skew: the most frequent word is sampled far more often than a
	// mid-rank one.
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[v.Sample(rng)]++
	}
	if counts[v.Word(0)] < 20*counts[v.Word(250)]/2 && counts[v.Word(0)] < 100 {
		t.Fatalf("head word count %d not dominant (mid-rank %d)", counts[v.Word(0)], counts[v.Word(250)])
	}
	// SampleN distinct.
	ws := v.SampleN(10, rng)
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w] {
			t.Fatalf("SampleN returned duplicate %q", w)
		}
		seen[w] = true
	}
}

func TestPresetConfigs(t *testing.T) {
	for _, cfg := range []Config{Wiki2017Sim(), Wiki2018Sim(), TinySim()} {
		d := cfg.defaults()
		if d.Nodes <= 0 || d.AvgDegree <= 0 || d.VocabSize <= 0 {
			t.Fatalf("%s: bad defaults %+v", cfg.Name, d)
		}
	}
	if Wiki2018Sim().Nodes <= Wiki2017Sim().Nodes {
		t.Fatal("wiki2018-sim must be larger than wiki2017-sim")
	}
}
