package gen

import (
	"math/rand"
	"strings"

	"wikisearch/internal/graph"
	"wikisearch/internal/text"
)

// Workload is a set of keyword queries for the efficiency experiments.
type Workload struct {
	Knum    int
	Queries []string
}

// EfficiencyWorkload samples `count` keyword queries of `knum` keywords
// each from the KB, standing in for the paper's AAAI'14 accepted-paper
// keyword lists: every query's keywords are drawn from one entity's
// neighborhood so they co-occur naturally, and every keyword is guaranteed
// to have a non-empty posting list in ix. Ultra-frequent terms (posting
// list over ~1% of nodes) are excluded, matching the relative keyword
// frequencies of Table V: the paper's topical AAAI keywords touch
// 0.01–0.2% of Wikidata, never whole-vocabulary head words.
func EfficiencyWorkload(kb *KB, ix *text.Index, knum, count int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	g := kb.Graph
	maxPosting := g.NumNodes() / 100
	if maxPosting < 10 {
		maxPosting = 10
	}
	w := Workload{Knum: knum}
	attempts := 0
	for len(w.Queries) < count && attempts < count*200 {
		attempts++
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		terms := gatherTerms(g, v, knum*3, rng)
		// Keep resolvable terms within the frequency band.
		kept := terms[:0]
		for _, t := range terms {
			n := len(ix.Lookup(t))
			if n == 0 || n > maxPosting {
				continue
			}
			kept = append(kept, t)
			if len(kept) == knum {
				break
			}
		}
		if len(kept) < knum {
			continue
		}
		w.Queries = append(w.Queries, strings.Join(kept, " "))
	}
	return w
}

// gatherTerms collects up to knum raw keywords from v's label, description
// and — if needed — its neighbors'. Keywords are raw (unstemmed) tokens —
// what a user would type — deduplicated by their normalized stem so the
// query resolves to exactly knum BFS instances. (Raw tokens matter: Porter
// stemming is not idempotent, so feeding stems back in as keywords would
// re-stem them into unknown terms.)
func gatherTerms(g *graph.Graph, v graph.NodeID, knum int, rng *rand.Rand) []string {
	var terms []string
	seen := map[string]struct{}{}
	add := func(s string) {
		for _, raw := range text.Tokenize(s) {
			if text.IsStopword(raw) {
				continue
			}
			norm := text.Normalize(raw)
			if len(norm) == 0 {
				continue
			}
			if _, dup := seen[norm[0]]; dup {
				continue
			}
			seen[norm[0]] = struct{}{}
			terms = append(terms, raw)
		}
	}
	add(g.Label(v))
	add(g.Description(v))
	if len(terms) >= knum {
		return terms
	}
	// One hop of neighbors, shuffled for variety.
	var nbs []graph.NodeID
	g.ForEachNeighbor(v, func(n graph.NodeID, _ graph.RelID, _ bool) {
		nbs = append(nbs, n)
	})
	rng.Shuffle(len(nbs), func(i, j int) { nbs[i], nbs[j] = nbs[j], nbs[i] })
	for _, n := range nbs {
		add(g.Label(n))
		if len(terms) >= knum {
			break
		}
	}
	return terms
}
