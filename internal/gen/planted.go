package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"wikisearch/internal/graph"
)

// effectivenessQueries mirrors Table V of the paper: eleven keyword queries
// over the CS/IR vocabulary, Q10 with heavy co-occurrence, Q11 with rare
// unambiguous keywords.
var effectivenessQueries = []struct {
	id       string
	keywords string
}{
	{"Q1", "xml relational search"},
	{"Q2", "database indexing ranking search"},
	{"Q3", "bayesian inference markov network"},
	{"Q4", "statistical relational learning inference"},
	{"Q5", "sql rdf knowledge base"},
	{"Q6", "supervised learning gradient descent machine translation"},
	{"Q7", "transfer learning auxiliary data retrieval text classification"},
	{"Q8", "xml rdf knowledge base sharing"},
	{"Q9", "network mining medicine retrieval technique"},
	{"Q10", "natural language processing machine learning"},
	{"Q11", "wikidata freebase yahoo neo4j sparql"},
}

// EffectivenessQueryIDs returns the Table V query ids in order.
func EffectivenessQueryIDs() []string {
	out := make([]string, len(effectivenessQueries))
	for i, q := range effectivenessQueries {
		out[i] = q.id
	}
	return out
}

const (
	coresPerQuery  = 5
	decoysPerQuery = 15
)

// plantAll plants, for every effectiveness query, (a) relevant cores —
// entities whose labels make several query keywords co-occur, wired through
// a light hub so a compact all-keyword Central Graph exists — and (b)
// decoys — entities carrying one isolated query keyword, wired to summary
// hubs so short-but-meaningless connection trees exist. This substitutes
// the paper's human relevance judgment: co-occurrence was what judges
// rewarded, isolated-keyword joins what they rejected (§VI-B).
func plantAll(b *graph.Builder, vocab *Vocab, rng *rand.Rand, kb *KB,
	relRelated, relInstanceOf, relPublishedIn graph.RelID) []PlantedQuery {
	var out []PlantedQuery
	for _, q := range effectivenessQueries {
		words := strings.Fields(q.keywords)
		p := PlantedQuery{ID: q.id, Keywords: words}

		// The hub: a light-weight collaboration-like entity.
		hub := b.AddNode(
			fmt.Sprintf("%s workshop on %s", q.id, words[0]),
			"collaborative project")
		p.Hub = hub

		// Cores: each co-occurs 2–3 consecutive query keywords (phrases),
		// together covering every keyword; Q10 cores co-occur everything
		// (the paper: "these keywords have lots of co-occurrences").
		for c := 0; c < coresPerQuery; c++ {
			var label string
			if q.id == "Q10" {
				label = q.keywords
			} else {
				span := 2 + rng.Intn(2)
				start := (c * 2) % len(words)
				var ws []string
				for j := 0; j < span; j++ {
					ws = append(ws, words[(start+j)%len(words)])
				}
				label = strings.Join(ws, " ")
			}
			core := b.AddNode(
				fmt.Sprintf("%s study %d", label, c),
				strings.Join(vocab.SampleN(2, rng), " "))
			p.Cores = append(p.Cores, core)
			b.AddEdge(core, hub, relRelated)
			// Keep cores embedded in the graph at large.
			b.AddEdge(core, kb.Venues[zipfIndex(rng, len(kb.Venues))], relPublishedIn)
		}

		// Decoys: exactly one query keyword, embedded next to summary hubs
		// (the superhub class and a common venue), forming the cheap
		// meaningless joins.
		for d := 0; d < decoysPerQuery; d++ {
			w := words[d%len(words)]
			filler := vocab.SampleN(2, rng)
			decoy := b.AddNode(
				fmt.Sprintf("%s %s %s", w, filler[0], filler[1]),
				"")
			p.Decoys = append(p.Decoys, decoy)
			b.AddEdge(decoy, kb.Classes[0], relInstanceOf) // the "human" superhub
			b.AddEdge(decoy, kb.Venues[zipfIndex(rng, len(kb.Venues))], relPublishedIn)
		}
		out = append(out, p)
	}
	return out
}
