// Package parallel provides the low-level concurrency primitives used by the
// two-stage search: atomic bitsets for the FIdentifier / CIdentifier arrays,
// a dynamically scheduled worker pool mirroring OpenMP's dynamic schedule,
// and lock-free byte stores for the node-keyword matrix.
//
// The paper's lock-free argument (Theorem V.2) relies on all concurrent
// writes to a location writing the same value (1 into FIdentifier, l+1 into
// M). In Go, concurrent plain writes of identical values are still data races
// under the memory model, so the bitset and matrix use atomic operations with
// relaxed semantics via sync/atomic; the level barrier (fork/join between
// phases) provides the required happens-before edges between levels.
package parallel

import (
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Bitset is a fixed-size bitset safe for concurrent Set/Get. All mutating
// operations other than Set/Clear assume exclusive access (they are called
// only between phases, under the level barrier). A Bitset must not be
// copied: a copy aliases the shared word storage.
//
//wikisearch:nocopy
type Bitset struct {
	// words is written concurrently by all workers during a phase.
	//wikisearch:atomic
	words []uint64
	n     int
}

// NewBitset returns a Bitset capable of holding n bits, all zero.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits the set holds.
func (b *Bitset) Len() int { return b.n }

// Set atomically sets bit i. Safe for concurrent use.
//
//wikisearch:hotpath
func (b *Bitset) Set(i int) {
	atomic.OrUint64(&b.words[i/wordBits], 1<<(uint(i)%wordBits))
}

// SetTouch atomically sets bit i and reports the bit's word index plus
// whether this call was the first to touch a previously-empty word. The
// atomic OR linearizes concurrent setters, so for any word exactly one
// caller observes the empty→non-empty transition — per-worker touched-word
// lists built from it partition the dirty words with no duplicates, letting
// frontier extraction and reset skip clean words entirely. Safe for
// concurrent use.
//
//wikisearch:hotpath
func (b *Bitset) SetTouch(i int) (word int, first bool) {
	wi := i / wordBits
	bit := uint64(1) << (uint(i) % wordBits)
	// Saturated regions re-mark already-flagged nodes constantly; a plain
	// load there avoids the contended read-modify-write. Whoever performed
	// the winning OR still gets (and keeps) the first-touch credit.
	if atomic.LoadUint64(&b.words[wi])&bit != 0 {
		return wi, false
	}
	old := atomic.OrUint64(&b.words[wi], bit)
	return wi, old == 0
}

// DrainWord appends the indices of the set bits of word wi to dst in
// ascending order and clears the word. Requires exclusive access. Draining
// exactly the touched words in ascending word order reproduces AppendSet's
// canonical ascending frontier without scanning the whole set.
//
//wikisearch:hotpath
//wikisearch:exclusive called between phases under the level barrier
func (b *Bitset) DrainWord(wi int, dst []int32) []int32 {
	w := b.words[wi]
	b.words[wi] = 0
	base := int32(wi * wordBits)
	for w != 0 {
		tz := bits.TrailingZeros64(w)
		dst = append(dst, base+int32(tz))
		w &= w - 1
	}
	return dst
}

// Clear atomically clears bit i. Safe for concurrent use.
//
//wikisearch:hotpath
func (b *Bitset) Clear(i int) {
	atomic.AndUint64(&b.words[i/wordBits], ^(uint64(1) << (uint(i) % wordBits)))
}

// Get reports whether bit i is set. Safe for concurrent use with Set/Clear
// on other bits; reads of a concurrently-written bit are linearized by the
// atomic load.
//
//wikisearch:hotpath
func (b *Bitset) Get(i int) bool {
	return atomic.LoadUint64(&b.words[i/wordBits])&(1<<(uint(i)%wordBits)) != 0
}

// Reset zeroes the whole set. Requires exclusive access.
//
//wikisearch:exclusive callers hold the only reference between phases
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Resize re-dimensions the set to hold n bits, all zero, reusing the backing
// array when its capacity suffices (the per-query state pool relies on this
// being allocation-free at steady state). Requires exclusive access.
//
//wikisearch:exclusive callers hold the only reference during (re)init
func (b *Bitset) Resize(n int) {
	words := (n + wordBits - 1) / wordBits
	if cap(b.words) < words {
		b.words = make([]uint64, words)
	} else {
		b.words = b.words[:words]
		for i := range b.words {
			b.words[i] = 0
		}
	}
	b.n = n
}

// Count returns the number of set bits. Requires exclusive access.
//
//wikisearch:exclusive called between phases under the level barrier
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AppendSet appends the indices of all set bits to dst and returns it.
// Requires exclusive access. This is the sequential frontier-enqueue step of
// Algorithm 1 ("on CPU locked writing is so expensive and the fastest way is
// to enqueue frontiers in a sequential manner").
//
//wikisearch:exclusive called between phases under the level barrier
func (b *Bitset) AppendSet(dst []int32) []int32 {
	for wi, w := range b.words {
		base := int32(wi * wordBits)
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			dst = append(dst, base+int32(tz))
			w &= w - 1
		}
	}
	return dst
}

// ForEachSet calls fn for every set bit in ascending order. Requires
// exclusive access.
//
//wikisearch:exclusive called between phases under the level barrier
func (b *Bitset) ForEachSet(fn func(i int)) {
	for wi, w := range b.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + tz)
			w &= w - 1
		}
	}
}
