package parallel

import (
	"sync/atomic"
	"testing"
)

// These guards pin the primitives' steady-state allocation behavior, which
// the engine's warm-query zero-allocation property (and wikilint's
// //wikisearch:hotpath annotations) are built on. They measure the warm
// state: pools after the helper spawn, bitsets and byte arrays after the
// backing storage has grown to capacity.

// TestPoolForAllocationFree: a warm pool dispatches For/ForWorker/ForChunks
// phases without allocating — the phase descriptor is a reused field and the
// bodies are prebound.
func TestPoolForAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	fnIdx := func(i int) { sink.Add(int64(i)) }
	fnIdxW := func(w, i int) { sink.Add(int64(w + i)) }
	fnChunk := func(start, end int) { sink.Add(int64(end - start)) }
	fnChunkW := func(w, start, end int) { sink.Add(int64(w + end - start)) }
	p.For(256, fnIdx) // spawn the persistent helpers
	allocs := testing.AllocsPerRun(100, func() {
		p.For(256, fnIdx)
		p.ForWorker(256, fnIdxW)
		p.ForChunks(256, fnChunk)
		p.ForChunksWorker(256, fnChunkW)
	})
	if allocs != 0 {
		t.Fatalf("warm pool phases allocate %.1f times per run, want 0", allocs)
	}
}

// TestPoolRunAllocationFree: Run with a prebuilt thunk slice reuses the
// descriptor and the spread slice — no per-dispatch allocation.
func TestPoolRunAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	thunks := []func(){
		func() { sink.Add(1) },
		func() { sink.Add(2) },
		func() { sink.Add(3) },
		func() { sink.Add(4) },
		func() { sink.Add(5) },
		func() { sink.Add(6) },
	}
	p.Run(thunks...) // spawn the persistent helpers
	allocs := testing.AllocsPerRun(100, func() {
		p.Run(thunks...)
	})
	if allocs != 0 {
		t.Fatalf("warm Run allocates %.1f times per dispatch, want 0", allocs)
	}
}

// TestBitsetSteadyStateAllocationFree: the per-level mark / drain / reset
// cycle of the search runs without allocating once the drain buffer has
// grown to capacity.
func TestBitsetSteadyStateAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	b := NewBitset(4096)
	dst := make([]int32, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		var touched [8]int
		nt := 0
		for i := 0; i < 4096; i += 17 {
			if wi, first := b.SetTouch(i); first && nt < len(touched) {
				touched[nt] = wi
				nt++
			}
			b.Set(i)
			if !b.Get(i) {
				t.Fatal("bit lost")
			}
		}
		dst = dst[:0]
		for wi := 0; wi < (4096+63)/64; wi++ {
			dst = b.DrainWord(wi, dst)
		}
		b.Reset()
	})
	if allocs != 0 {
		t.Fatalf("bitset steady state allocates %.1f times per cycle, want 0", allocs)
	}
}

// TestByteArrayAllocationFree: the matrix cell operations — point and
// word-wide, reads and writes — are allocation-free on warm storage.
func TestByteArrayAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	a := NewByteArray(1024, Infinity)
	row := make([]byte, 16)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1024; i += 7 {
			a.SetMonotone(i, 3)
			a.Set(i, 3)
			if a.Get(i) != 3 {
				t.Fatal("cell lost")
			}
		}
		a.LoadRow(64, row)
		_ = a.MatchMask(64, 16, Infinity)
		_ = a.MatchWord(8, Infinity)
		a.Resize(1024, Infinity)
	})
	if allocs != 0 {
		t.Fatalf("byte array operations allocate %.1f times per cycle, want 0", allocs)
	}
}
