package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPoolForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := NewPool(workers)
		if p.Workers() != workers {
			t.Fatalf("Workers = %d, want %d", p.Workers(), workers)
		}
		const n = 10000
		hits := make([]atomic.Int32, n)
		p.For(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestPoolForEmptyAndSmall(t *testing.T) {
	p := NewPool(8)
	p.For(0, func(int) { t.Fatal("fn called for n=0") })
	p.For(-3, func(int) { t.Fatal("fn called for n<0") })
	var c atomic.Int32
	p.For(1, func(i int) { c.Add(1) })
	if c.Load() != 1 {
		t.Fatalf("n=1 visited %d times", c.Load())
	}
}

func TestPoolForChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 3, 7} {
		p := NewPool(workers)
		const n = 5000
		seen := make([]atomic.Int32, n)
		p.ForChunks(n, func(start, end int) {
			if start < 0 || end > n || start >= end {
				t.Errorf("bad chunk [%d,%d)", start, end)
			}
			for i := start; i < end; i++ {
				seen[i].Add(1)
			}
		})
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, seen[i].Load())
			}
		}
	}
}

func TestPoolRun(t *testing.T) {
	p := NewPool(4)
	var sum atomic.Int64
	thunks := make([]func(), 20)
	for i := range thunks {
		v := int64(i)
		thunks[i] = func() { sum.Add(v) }
	}
	p.Run(thunks...)
	if sum.Load() != 190 {
		t.Fatalf("sum = %d, want 190", sum.Load())
	}
}

func TestPoolDefaultsWorkers(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Fatal("NewPool(0) has no workers")
	}
	if NewPool(-5).Workers() < 1 {
		t.Fatal("NewPool(-5) has no workers")
	}
}

func TestChunkForBounds(t *testing.T) {
	f := func(n uint16, workers uint8) bool {
		w := int(workers%64) + 1
		c := chunkFor(int(n), w)
		return c >= 1 && c <= 1024
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoolForSumEqualsSequential(t *testing.T) {
	// Property: parallel accumulation over disjoint cells equals the
	// sequential sum regardless of worker count.
	f := func(vals []int32, workers uint8) bool {
		w := int(workers%8) + 1
		p := NewPool(w)
		out := make([]int64, len(vals))
		p.For(len(vals), func(i int) { out[i] = int64(vals[i]) * 2 })
		for i, v := range vals {
			if out[i] != int64(v)*2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
