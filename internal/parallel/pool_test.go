package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPoolForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := NewPool(workers)
		if p.Workers() != workers {
			t.Fatalf("Workers = %d, want %d", p.Workers(), workers)
		}
		const n = 10000
		hits := make([]atomic.Int32, n)
		p.For(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestPoolForEmptyAndSmall(t *testing.T) {
	p := NewPool(8)
	p.For(0, func(int) { t.Fatal("fn called for n=0") })
	p.For(-3, func(int) { t.Fatal("fn called for n<0") })
	var c atomic.Int32
	p.For(1, func(i int) { c.Add(1) })
	if c.Load() != 1 {
		t.Fatalf("n=1 visited %d times", c.Load())
	}
}

func TestPoolForChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 3, 7} {
		p := NewPool(workers)
		const n = 5000
		seen := make([]atomic.Int32, n)
		p.ForChunks(n, func(start, end int) {
			if start < 0 || end > n || start >= end {
				t.Errorf("bad chunk [%d,%d)", start, end)
			}
			for i := start; i < end; i++ {
				seen[i].Add(1)
			}
		})
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, seen[i].Load())
			}
		}
	}
}

func TestPoolRun(t *testing.T) {
	p := NewPool(4)
	var sum atomic.Int64
	thunks := make([]func(), 20)
	for i := range thunks {
		v := int64(i)
		thunks[i] = func() { sum.Add(v) }
	}
	p.Run(thunks...)
	if sum.Load() != 190 {
		t.Fatalf("sum = %d, want 190", sum.Load())
	}
}

func TestPoolDefaultsWorkers(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Fatal("NewPool(0) has no workers")
	}
	if NewPool(-5).Workers() < 1 {
		t.Fatal("NewPool(-5) has no workers")
	}
}

func TestChunkForBounds(t *testing.T) {
	f := func(n uint16, workers uint8) bool {
		w := int(workers%64) + 1
		c := chunkFor(int(n), w)
		return c >= 1 && c <= 1024
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoolForWorkerIdentities(t *testing.T) {
	// Worker identities are in [0, Workers()) and every index is visited
	// exactly once; the caller participates as worker 0.
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		const n = 20000
		hits := make([]atomic.Int32, n)
		var bad atomic.Int32
		p.ForWorker(n, func(w, i int) {
			if w < 0 || w >= workers {
				bad.Add(1)
			}
			hits[i].Add(1)
		})
		if bad.Load() != 0 {
			t.Fatalf("workers=%d: %d out-of-range worker ids", workers, bad.Load())
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, hits[i].Load())
			}
		}
		p.Close()
	}
}

func TestPoolForChunksWorkerExclusiveScratch(t *testing.T) {
	// Per-worker scratch indexed by w must never be shared between two
	// concurrently running chunks — the expansion kernel relies on this.
	const workers = 4
	p := NewPool(workers)
	defer p.Close()
	const n = 50000
	var inUse [workers]atomic.Int32
	seen := make([]atomic.Int32, n)
	p.ForChunksWorker(n, func(w, start, end int) {
		if inUse[w].Add(1) != 1 {
			t.Errorf("worker %d scratch used concurrently", w)
		}
		for i := start; i < end; i++ {
			seen[i].Add(1)
		}
		inUse[w].Add(-1)
	})
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, seen[i].Load())
		}
	}
}

func TestPoolReusedAcrossPhases(t *testing.T) {
	// The same pool serves many heterogeneous phases back to back — the
	// persistent workers must not wedge or double-run a descriptor.
	p := NewPool(6)
	defer p.Close()
	for rep := 0; rep < 200; rep++ {
		var sum atomic.Int64
		n := 1 + rep%97
		p.For(n, func(i int) { sum.Add(int64(i)) })
		want := int64(n*(n-1)) / 2
		if sum.Load() != want {
			t.Fatalf("rep %d: For sum = %d, want %d", rep, sum.Load(), want)
		}
		sum.Store(0)
		p.ForChunks(n, func(start, end int) {
			var local int64
			for i := start; i < end; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
		if sum.Load() != want {
			t.Fatalf("rep %d: ForChunks sum = %d, want %d", rep, sum.Load(), want)
		}
	}
}

func TestPoolRunMoreThunksThanWorkers(t *testing.T) {
	// Every thunk runs exactly once even when thunks outnumber workers; the
	// caller participates, so dispatch cannot deadlock behind running thunks.
	p := NewPool(2)
	defer p.Close()
	const n = 64
	hits := make([]atomic.Int32, n)
	thunks := make([]func(), n)
	for i := range thunks {
		i := i
		thunks[i] = func() { hits[i].Add(1) }
	}
	p.Run(thunks...)
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("thunk %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestPoolCloseDegradesToSerial(t *testing.T) {
	p := NewPool(4)
	var sum atomic.Int64
	p.For(100, func(i int) { sum.Add(1) })
	p.Close()
	p.Close() // idempotent
	p.For(100, func(i int) { sum.Add(1) })
	p.ForWorker(10, func(w, i int) {
		if w != 0 {
			t.Errorf("closed pool used helper %d", w)
		}
		sum.Add(1)
	})
	p.Run(func() { sum.Add(1) }, func() { sum.Add(1) })
	if sum.Load() != 212 {
		t.Fatalf("sum = %d, want 212", sum.Load())
	}
}

func TestPoolForSumEqualsSequential(t *testing.T) {
	// Property: parallel accumulation over disjoint cells equals the
	// sequential sum regardless of worker count.
	f := func(vals []int32, workers uint8) bool {
		w := int(workers%8) + 1
		p := NewPool(w)
		out := make([]int64, len(vals))
		p.For(len(vals), func(i int) { out[i] = int64(vals[i]) * 2 })
		for i, v := range vals {
			if out[i] != int64(v)*2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
