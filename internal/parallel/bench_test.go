package parallel

import "testing"

func BenchmarkBitsetSet(b *testing.B) {
	s := NewBitset(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Set(i & ((1 << 20) - 1))
	}
}

func BenchmarkBitsetAppendSet(b *testing.B) {
	s := NewBitset(1 << 20)
	for i := 0; i < 1<<20; i += 37 {
		s.Set(i)
	}
	buf := make([]int32, 0, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.AppendSet(buf[:0])
	}
	if len(buf) == 0 {
		b.Fatal("empty")
	}
}

func BenchmarkByteArraySet(b *testing.B) {
	a := NewByteArray(1<<20, Infinity)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Set(i&((1<<20)-1), 3)
	}
}

func BenchmarkByteArrayGet(b *testing.B) {
	a := NewByteArray(1<<20, Infinity)
	var sink byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += a.Get(i & ((1 << 20) - 1))
	}
	_ = sink
}

func BenchmarkPoolFor(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "T1", 4: "T4", 16: "T16"}[workers], func(b *testing.B) {
			p := NewPool(workers)
			out := make([]int64, 1<<14)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.For(len(out), func(j int) { out[j] = int64(j) * 3 })
			}
		})
	}
}
