package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a reusable fork/join worker pool with dynamic scheduling, the Go
// analogue of the paper's OpenMP `schedule(dynamic)` loops: once a worker
// finishes a chunk it grabs the next one, so skewed per-item cost (frontiers
// with very different neighbor counts) balances automatically.
//
// A Pool is created once per search with Tnum workers and used for every
// fork/join phase of Algorithm 1; phases are separated by the implicit join,
// which supplies the happens-before edges the lock-free expansion relies on.
type Pool struct {
	workers int
}

// NewPool returns a pool that runs fork/join loops on `workers` goroutines.
// workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the configured degree of parallelism (the paper's Tnum).
func (p *Pool) Workers() int { return p.workers }

// chunkFor picks a dynamic-scheduling chunk size: small enough to balance
// skew, large enough to amortize the atomic fetch-add. Mirrors OpenMP's
// dynamic schedule with a modest chunk.
func chunkFor(n, workers int) int {
	c := n / (workers * 8)
	if c < 1 {
		c = 1
	}
	if c > 1024 {
		c = 1024
	}
	return c
}

// For runs fn(i) for every i in [0, n) across the pool's workers with
// dynamic scheduling, then joins. fn must be safe for concurrent invocation
// on distinct i. With one worker it degenerates to a plain loop (the paper's
// Tnum=1 sequential baseline) with zero goroutine overhead.
func (p *Pool) For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := chunkFor(n, p.workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	w := p.workers
	if w > n {
		w = n
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// ForChunks runs fn(start, end) over contiguous chunks of [0, n) with
// dynamic scheduling. Useful when per-chunk setup (scratch buffers) matters.
func (p *Pool) ForChunks(n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 {
		fn(0, n)
		return
	}
	chunk := chunkFor(n, p.workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	w := p.workers
	if w > n {
		w = n
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				fn(start, end)
			}
		}()
	}
	wg.Wait()
}

// Run executes the given thunks concurrently on up to Workers goroutines and
// joins. Used by fork/join steps that are heterogeneous rather than loops.
func (p *Pool) Run(thunks ...func()) {
	if len(thunks) == 1 || p.workers == 1 {
		for _, t := range thunks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, p.workers)
	wg.Add(len(thunks))
	for _, t := range thunks {
		t := t
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			t()
		}()
	}
	wg.Wait()
}
