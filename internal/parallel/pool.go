package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"wikisearch/internal/trace"
)

// Pool is a reusable fork/join worker pool with dynamic scheduling, the Go
// analogue of the paper's OpenMP `schedule(dynamic)` loops: once a worker
// finishes a chunk it grabs the next one, so skewed per-item cost (frontiers
// with very different neighbor counts) balances automatically.
//
// Workers are persistent: the first parallel phase spawns workers-1
// goroutines that park on a channel and are reused for every subsequent
// phase — across all levels of a search and across searches — instead of
// paying goroutine spawn and WaitGroup traffic per fork/join. The calling
// goroutine always participates as worker 0, so a phase wakes at most
// workers-1 helpers and a 1-worker pool never spawns anything.
//
// Phases must not overlap: a Pool runs one For/ForChunks/Run at a time (a
// mutex enforces this). The phase join supplies the happens-before edges the
// lock-free expansion relies on: every helper's writes complete before its
// completion token is received.
//
// Close releases the workers. It is optional — an unreachable Pool's workers
// are reclaimed by a finalizer — but deterministic cleanup is preferred for
// short-lived pools. A closed Pool degrades to serial execution rather than
// failing.
type Pool struct {
	workers int

	mu      sync.Mutex // serializes phases; guards started/closed
	started bool
	closed  bool
	work    chan *poolTask // parked helpers receive the phase descriptor
	done    chan struct{}  // helpers send one token per processed descriptor
	task    poolTask       // reused phase descriptor: no per-phase allocation

	// tr, when set (SetTrace), receives per-phase spans: each helper records
	// its busy time into its own ring, and the coordinator records its own
	// busy span plus the join wait — the chunk-scheduling stall signal.
	tr *trace.Buffer
}

// poolTask describes one fork/join phase. Exactly one of the fn* fields (or
// thunks) is set; next hands out dynamic-scheduling chunks. tr carries the
// pool's trace buffer to the helpers (nil when tracing is off).
type poolTask struct {
	n     int
	chunk int
	tr    *trace.Buffer
	next  atomic.Int64

	fnIdx    func(i int)
	fnIdxW   func(w, i int)
	fnChunk  func(start, end int)
	fnChunkW func(w, start, end int)
	thunks   []func()
}

// run executes the descriptor's share of work on behalf of worker w until
// the chunk counter is exhausted.
func (t *poolTask) run(w int) {
	for {
		start := int(t.next.Add(int64(t.chunk))) - t.chunk
		if start >= t.n {
			return
		}
		end := start + t.chunk
		if end > t.n {
			end = t.n
		}
		switch {
		case t.fnChunk != nil:
			t.fnChunk(start, end)
		case t.fnChunkW != nil:
			t.fnChunkW(w, start, end)
		case t.fnIdx != nil:
			for i := start; i < end; i++ {
				t.fnIdx(i)
			}
		case t.fnIdxW != nil:
			for i := start; i < end; i++ {
				t.fnIdxW(w, i)
			}
		case t.thunks != nil:
			for i := start; i < end; i++ {
				t.thunks[i]()
			}
		}
	}
}

// clear drops closure references so a parked pool does not retain caller
// state between phases.
func (t *poolTask) clear() {
	t.fnIdx, t.fnIdxW, t.fnChunk, t.fnChunkW, t.thunks = nil, nil, nil, nil, nil
}

// NewPool returns a pool that runs fork/join loops on `workers` goroutines
// (the calling goroutine plus workers-1 persistent helpers, spawned lazily
// on the first parallel phase). workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the configured degree of parallelism (the paper's Tnum).
func (p *Pool) Workers() int { return p.workers }

// start spawns the persistent helpers. Called with p.mu held.
//
//wikisearch:coldpath one-time lazy spawn; every later phase reuses the workers
func (p *Pool) start() {
	p.started = true
	p.work = make(chan *poolTask, p.workers-1)
	p.done = make(chan struct{}, p.workers-1)
	for g := 1; g < p.workers; g++ {
		// The helper closes over only the channels — never *Pool — so an
		// unreachable Pool can be finalized while helpers are parked.
		go poolWorker(g, p.work, p.done)
	}
	runtime.SetFinalizer(p, (*Pool).Close)
}

// poolWorker parks on work and executes phase descriptors until the channel
// closes. w is the worker's stable identity, handed to ForWorker /
// ForChunksWorker bodies for per-worker scratch indexing.
func poolWorker(w int, work <-chan *poolTask, done chan<- struct{}) {
	for t := range work {
		if t.tr.On() {
			t0 := trace.Now()
			t.run(w)
			// The ring is the helper's own and the done token below
			// publishes the write to the drain: single-writer, race-free.
			t.tr.Record(w, trace.KindPoolWork, t0, trace.Now(), -1, 0, int64(t.n), 0)
		} else {
			t.run(w)
		}
		done <- struct{}{}
	}
}

// Close stops the persistent workers. Idempotent and safe to call
// concurrently with nothing; after Close the pool executes phases serially.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	if p.started {
		close(p.work)
		runtime.SetFinalizer(p, nil)
	}
}

// dispatch runs the prepared p.task across the caller plus up to `helpers`
// parked workers and joins. Called with p.mu held and p.task populated.
func (p *Pool) dispatch(helpers int) {
	if helpers > p.workers-1 {
		helpers = p.workers - 1
	}
	if helpers > 0 && !p.closed {
		if !p.started {
			p.start()
		}
		p.task.tr = p.tr
		for i := 0; i < helpers; i++ {
			p.work <- &p.task
		}
		if p.tr.On() {
			t0 := trace.Now()
			p.task.run(0)
			own := trace.Now()
			for i := 0; i < helpers; i++ {
				<-p.done
			}
			p.tr.Record(0, trace.KindPoolWork, t0, own, -1, 0, int64(p.task.n), int64(helpers))
			p.tr.Record(0, trace.KindPoolJoin, own, trace.Now(), -1, 0, int64(p.task.n), int64(helpers))
		} else {
			p.task.run(0)
			for i := 0; i < helpers; i++ {
				<-p.done
			}
		}
	} else {
		p.task.run(0)
	}
	p.task.clear()
}

// SetTrace installs (or, with nil, removes) the per-worker trace buffer the
// pool's phases record spans into. The buffer must have at least Workers()
// rings (trace.Buffer.Ensure); the pool's owner wires both.
func (p *Pool) SetTrace(tr *trace.Buffer) {
	p.mu.Lock()
	p.tr = tr
	p.mu.Unlock()
}

// chunkFor picks a dynamic-scheduling chunk size: small enough to balance
// skew, large enough to amortize the atomic fetch-add. Mirrors OpenMP's
// dynamic schedule with a modest chunk.
func chunkFor(n, workers int) int {
	c := n / (workers * 8)
	if c < 1 {
		c = 1
	}
	if c > 1024 {
		c = 1024
	}
	return c
}

// prep stages a phase over n items. Returns the helper count.
func (p *Pool) prep(n int) int {
	p.task.n = n
	p.task.chunk = chunkFor(n, p.workers)
	p.task.next.Store(0)
	return n - 1
}

// For runs fn(i) for every i in [0, n) across the pool's workers with
// dynamic scheduling, then joins. fn must be safe for concurrent invocation
// on distinct i. With one worker it degenerates to a plain loop (the paper's
// Tnum=1 sequential baseline) with zero goroutine overhead.
//
//wikisearch:hotpath
func (p *Pool) For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	helpers := p.prep(n)
	p.task.fnIdx = fn
	p.dispatch(helpers)
}

// ForWorker is For with the executing worker's identity (in [0, Workers()))
// passed to fn, so bodies can index per-worker scratch without atomics. The
// caller is always worker 0.
//
//wikisearch:hotpath
func (p *Pool) ForWorker(n int, fn func(w, i int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	helpers := p.prep(n)
	p.task.fnIdxW = fn
	p.dispatch(helpers)
}

// ForChunks runs fn(start, end) over contiguous chunks of [0, n) with
// dynamic scheduling. Useful when per-chunk setup (scratch buffers) matters.
//
//wikisearch:hotpath
func (p *Pool) ForChunks(n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 {
		fn(0, n)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	helpers := p.prep(n)
	p.task.fnChunk = fn
	p.dispatch(helpers)
}

// ForChunksWorker is ForChunks with the executing worker's identity passed
// to fn — the expansion kernel uses it to reach its row scratch and local
// touched-word buffer.
//
//wikisearch:hotpath
func (p *Pool) ForChunksWorker(n int, fn func(w, start, end int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 {
		fn(0, 0, n)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	helpers := p.prep(n)
	p.task.fnChunkW = fn
	p.dispatch(helpers)
}

// Run executes the given thunks concurrently on up to Workers goroutines and
// joins. Used by fork/join steps that are heterogeneous rather than loops.
// Thunks are fed through the persistent workers with the caller
// participating, so dispatch never serializes behind running thunks even
// when len(thunks) exceeds the worker count.
//
//wikisearch:hotpath
func (p *Pool) Run(thunks ...func()) {
	n := len(thunks)
	if n == 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		for _, t := range thunks {
			t()
		}
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.task.n = n
	p.task.chunk = 1
	p.task.next.Store(0)
	p.task.thunks = thunks
	p.dispatch(n - 1)
}
