package parallel

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestBitsetBasic(t *testing.T) {
	b := NewBitset(200)
	if b.Len() != 200 {
		t.Fatalf("Len = %d, want 200", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	b.Reset()
	if got := b.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d, want 0", got)
	}
}

func TestBitsetAppendSetOrdered(t *testing.T) {
	b := NewBitset(1000)
	want := []int32{0, 3, 63, 64, 65, 500, 999}
	for _, i := range want {
		b.Set(int(i))
	}
	got := b.AppendSet(nil)
	if len(got) != len(want) {
		t.Fatalf("AppendSet returned %d indices, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendSet[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBitsetForEachSetMatchesAppendSet(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := NewBitset(1 << 16)
		for _, i := range idxs {
			b.Set(int(i))
		}
		var viaForEach []int32
		b.ForEachSet(func(i int) { viaForEach = append(viaForEach, int32(i)) })
		viaAppend := b.AppendSet(nil)
		if len(viaForEach) != len(viaAppend) {
			return false
		}
		for i := range viaAppend {
			if viaAppend[i] != viaForEach[i] {
				return false
			}
		}
		// Both must equal the sorted unique input.
		uniq := map[uint16]bool{}
		for _, i := range idxs {
			uniq[i] = true
		}
		if len(uniq) != len(viaAppend) {
			return false
		}
		return sort.SliceIsSorted(viaAppend, func(a, b int) bool { return viaAppend[a] < viaAppend[b] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetConcurrentSet(t *testing.T) {
	const n = 1 << 14
	b := NewBitset(n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				b.Set(r.Intn(n))
			}
		}(int64(g))
	}
	// Concurrently set every multiple of 7 so we can verify none are lost.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i += 7 {
			b.Set(i)
		}
	}()
	wg.Wait()
	for i := 0; i < n; i += 7 {
		if !b.Get(i) {
			t.Fatalf("lost concurrent Set of bit %d", i)
		}
	}
}

func TestByteArray(t *testing.T) {
	a := NewByteArray(10, Infinity)
	for i := 0; i < 10; i++ {
		if a.Get(i) != Infinity {
			t.Fatalf("cell %d = %d, want Infinity", i, a.Get(i))
		}
	}
	a.Set(3, 7)
	a.Set(4, 9) // same word as 3: must not disturb
	if a.Get(3) != 7 || a.Get(4) != 9 {
		t.Fatalf("Get(3)=%d Get(4)=%d, want 7,9", a.Get(3), a.Get(4))
	}
	if a.Get(5) != Infinity {
		t.Fatal("neighbor cell disturbed")
	}
	a.Fill(0)
	for i := 0; i < 10; i++ {
		if a.Get(i) != 0 {
			t.Fatalf("cell %d = %d after Fill(0)", i, a.Get(i))
		}
	}
}

func TestByteArrayConcurrentDistinctCells(t *testing.T) {
	const n = 4096
	a := NewByteArray(n, Infinity)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 4 {
				a.Set(i, byte(i%251))
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if a.Get(i) != byte(i%251) {
			t.Fatalf("cell %d = %d, want %d (adjacent-cell interference)", i, a.Get(i), byte(i%251))
		}
	}
}

func TestByteArraySameValueRace(t *testing.T) {
	// Theorem V.2 scenario: many writers writing the same value to the same
	// cell; the result must be that value.
	a := NewByteArray(64, Infinity)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Set(17, 5)
			}
		}()
	}
	wg.Wait()
	if a.Get(17) != 5 {
		t.Fatalf("cell = %d, want 5", a.Get(17))
	}
}

func TestByteArrayQuickRoundTrip(t *testing.T) {
	f := func(vals []byte) bool {
		if len(vals) == 0 {
			return true
		}
		a := NewByteArray(len(vals), 0)
		for i, v := range vals {
			a.Set(i, v)
		}
		for i, v := range vals {
			if a.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
