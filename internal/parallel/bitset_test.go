package parallel

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestBitsetBasic(t *testing.T) {
	b := NewBitset(200)
	if b.Len() != 200 {
		t.Fatalf("Len = %d, want 200", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	b.Reset()
	if got := b.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d, want 0", got)
	}
}

func TestBitsetAppendSetOrdered(t *testing.T) {
	b := NewBitset(1000)
	want := []int32{0, 3, 63, 64, 65, 500, 999}
	for _, i := range want {
		b.Set(int(i))
	}
	got := b.AppendSet(nil)
	if len(got) != len(want) {
		t.Fatalf("AppendSet returned %d indices, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendSet[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBitsetSetTouchFirstExactlyOnce(t *testing.T) {
	// For every word, exactly one SetTouch observes the empty→non-empty
	// transition — also under concurrency. This is what lets per-worker
	// touched-word lists partition the dirty words without duplicates.
	const n = 1 << 14
	b := NewBitset(n)
	rng := rand.New(rand.NewSource(42))
	idxs := rng.Perm(n)[:5000]

	var mu sync.Mutex
	firsts := map[int]int{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []int
			for i := w; i < len(idxs); i += 8 {
				if wi, first := b.SetTouch(idxs[i]); first {
					local = append(local, wi)
				}
			}
			mu.Lock()
			for _, wi := range local {
				firsts[wi]++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	want := map[int]bool{}
	for _, i := range idxs {
		want[i/64] = true
	}
	if len(firsts) != len(want) {
		t.Fatalf("%d words reported first-touch, want %d", len(firsts), len(want))
	}
	for wi, c := range firsts {
		if c != 1 {
			t.Fatalf("word %d reported first-touch %d times", wi, c)
		}
		if !want[wi] {
			t.Fatalf("word %d reported but never touched", wi)
		}
	}
	for _, i := range idxs {
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
}

func TestBitsetDrainWordMatchesAppendSet(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := NewBitset(1 << 16)
		words := map[int]bool{}
		for _, i := range idxs {
			wi, _ := b.SetTouch(int(i))
			words[wi] = true
		}
		want := b.AppendSet(nil)
		sorted := make([]int, 0, len(words))
		for wi := range words {
			sorted = append(sorted, wi)
		}
		sort.Ints(sorted)
		var got []int32
		for _, wi := range sorted {
			got = b.DrainWord(wi, got)
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return b.Count() == 0 // drained words are cleared
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetResize(t *testing.T) {
	b := NewBitset(100)
	b.Set(99)
	b.Resize(1000)
	if b.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", b.Len())
	}
	if b.Count() != 0 {
		t.Fatal("Resize did not clear bits")
	}
	b.Set(999)
	b.Resize(64) // shrink within capacity must also clear
	if b.Len() != 64 || b.Count() != 0 {
		t.Fatalf("after shrink: Len=%d Count=%d", b.Len(), b.Count())
	}
	b.Set(63)
	b.Resize(128) // regrow within capacity: previously-set bits stay cleared
	if b.Count() != 0 {
		t.Fatal("regrow exposed stale bits")
	}
}

func TestBitsetForEachSetMatchesAppendSet(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := NewBitset(1 << 16)
		for _, i := range idxs {
			b.Set(int(i))
		}
		var viaForEach []int32
		b.ForEachSet(func(i int) { viaForEach = append(viaForEach, int32(i)) })
		viaAppend := b.AppendSet(nil)
		if len(viaForEach) != len(viaAppend) {
			return false
		}
		for i := range viaAppend {
			if viaAppend[i] != viaForEach[i] {
				return false
			}
		}
		// Both must equal the sorted unique input.
		uniq := map[uint16]bool{}
		for _, i := range idxs {
			uniq[i] = true
		}
		if len(uniq) != len(viaAppend) {
			return false
		}
		return sort.SliceIsSorted(viaAppend, func(a, b int) bool { return viaAppend[a] < viaAppend[b] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetConcurrentSet(t *testing.T) {
	const n = 1 << 14
	b := NewBitset(n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				b.Set(r.Intn(n))
			}
		}(int64(g))
	}
	// Concurrently set every multiple of 7 so we can verify none are lost.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i += 7 {
			b.Set(i)
		}
	}()
	wg.Wait()
	for i := 0; i < n; i += 7 {
		if !b.Get(i) {
			t.Fatalf("lost concurrent Set of bit %d", i)
		}
	}
}

func TestByteArray(t *testing.T) {
	a := NewByteArray(10, Infinity)
	for i := 0; i < 10; i++ {
		if a.Get(i) != Infinity {
			t.Fatalf("cell %d = %d, want Infinity", i, a.Get(i))
		}
	}
	a.Set(3, 7)
	a.Set(4, 9) // same word as 3: must not disturb
	if a.Get(3) != 7 || a.Get(4) != 9 {
		t.Fatalf("Get(3)=%d Get(4)=%d, want 7,9", a.Get(3), a.Get(4))
	}
	if a.Get(5) != Infinity {
		t.Fatal("neighbor cell disturbed")
	}
	a.Fill(0)
	for i := 0; i < 10; i++ {
		if a.Get(i) != 0 {
			t.Fatalf("cell %d = %d after Fill(0)", i, a.Get(i))
		}
	}
}

func TestByteArrayConcurrentDistinctCells(t *testing.T) {
	const n = 4096
	a := NewByteArray(n, Infinity)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 4 {
				a.Set(i, byte(i%251))
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if a.Get(i) != byte(i%251) {
			t.Fatalf("cell %d = %d, want %d (adjacent-cell interference)", i, a.Get(i), byte(i%251))
		}
	}
}

func TestByteArraySameValueRace(t *testing.T) {
	// Theorem V.2 scenario: many writers writing the same value to the same
	// cell; the result must be that value.
	a := NewByteArray(64, Infinity)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Set(17, 5)
			}
		}()
	}
	wg.Wait()
	if a.Get(17) != 5 {
		t.Fatalf("cell = %d, want 5", a.Get(17))
	}
}

func TestByteArrayLoadRow(t *testing.T) {
	const n = 257
	a := NewByteArray(n, 0xFF)
	for i := 0; i < n; i++ {
		a.Set(i, byte(i*7))
	}
	// Rows at every alignment and several lengths, including ones spanning
	// multiple words and ending mid-word.
	for base := 0; base < 9; base++ {
		for _, q := range []int{1, 2, 3, 4, 5, 7, 8, 13, 64} {
			if base+q > n {
				continue
			}
			dst := make([]byte, q)
			a.LoadRow(base, dst)
			for j := range dst {
				if want := byte((base + j) * 7); dst[j] != want {
					t.Fatalf("LoadRow(base=%d,q=%d)[%d] = %d, want %d", base, q, j, dst[j], want)
				}
			}
		}
	}
}

func TestByteArrayMatchMask(t *testing.T) {
	const n = 128
	a := NewByteArray(n, 0xFF)
	set := map[int]bool{1: true, 5: true, 6: true, 63: true, 64: true, 70: true}
	for i := range set {
		a.Set(i, 3)
	}
	for base := 0; base < 8; base++ {
		for _, q := range []int{1, 3, 4, 6, 17, 64} {
			got := a.MatchMask(base, q, 0xFF)
			var want uint64
			for j := 0; j < q; j++ {
				if !set[base+j] {
					want |= 1 << uint(j)
				}
			}
			if got != want {
				t.Fatalf("MatchMask(base=%d,q=%d) = %#x, want %#x", base, q, got, want)
			}
		}
	}
}

func TestByteArrayResize(t *testing.T) {
	a := NewByteArray(10, 0)
	a.Set(9, 42)
	a.Resize(100, 0xFF)
	if a.Len() != 100 {
		t.Fatalf("Len = %d, want 100", a.Len())
	}
	for i := 0; i < 100; i++ {
		if a.Get(i) != 0xFF {
			t.Fatalf("cell %d = %d after Resize, want 0xFF", i, a.Get(i))
		}
	}
	a.Resize(7, 1) // shrink within capacity refills too
	for i := 0; i < 7; i++ {
		if a.Get(i) != 1 {
			t.Fatalf("cell %d = %d after shrink, want 1", i, a.Get(i))
		}
	}
}

func TestByteArrayQuickRoundTrip(t *testing.T) {
	f := func(vals []byte) bool {
		if len(vals) == 0 {
			return true
		}
		a := NewByteArray(len(vals), 0)
		for i, v := range vals {
			a.Set(i, v)
		}
		for i, v := range vals {
			if a.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
