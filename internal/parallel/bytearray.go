package parallel

import "sync/atomic"

// ByteArray is a byte slice with atomic element access, used for the
// node-keyword matrix M (one byte per hitting level, 0xFF = ∞) and for the
// per-node activation cache. The paper's Theorem V.2 shows every concurrent
// write to one cell writes the same value (the current level + 1), so any
// interleaving yields the same contents; atomic accesses make that reasoning
// sound under the Go memory model without locks.
//
// Cells are packed eight per uint64 word, so one atomic load covers eight
// cells — the expansion kernel's word-wide row reads (LoadRow, MatchMask)
// are built on that. A ByteArray must not be copied: a copy aliases the
// shared cell storage.
//
//wikisearch:nocopy
type ByteArray struct {
	// data is written concurrently by all workers during a phase,
	// one byte per cell, packed 8 per word.
	//wikisearch:atomic
	data []uint64
	n    int
}

// Infinity is the matrix value meaning "never hit" (the paper's ∞).
const Infinity = 0xFF

const (
	lowBytes  = 0x0101010101010101 // 0x01 in every byte
	low7Bytes = 0x7F7F7F7F7F7F7F7F
)

// broadcast returns v replicated into every byte of a word.
func broadcast(v byte) uint64 { return uint64(v) * lowBytes }

// NewByteArray returns an array of n cells initialized to fill.
//
//wikisearch:exclusive construction precedes publication
func NewByteArray(n int, fill byte) *ByteArray {
	a := &ByteArray{data: make([]uint64, (n+7)/8), n: n}
	if fill != 0 {
		w := broadcast(fill)
		for i := range a.data {
			a.data[i] = w
		}
	}
	return a
}

// Len returns the number of cells.
func (a *ByteArray) Len() int { return a.n }

// Get atomically loads cell i.
//
//wikisearch:hotpath
func (a *ByteArray) Get(i int) byte {
	w := atomic.LoadUint64(&a.data[i>>3])
	return byte(w >> (uint(i&7) * 8))
}

// Set atomically stores v into cell i without disturbing neighbors.
// Concurrent Sets to the same cell must write the same value (which the
// search guarantees); concurrent Sets to different cells in one word are
// resolved by the CAS loop.
//
//wikisearch:hotpath
func (a *ByteArray) Set(i int, v byte) {
	shift := uint(i&7) * 8
	mask := uint64(0xFF) << shift
	val := uint64(v) << shift
	p := &a.data[i>>3]
	for {
		old := atomic.LoadUint64(p)
		nw := (old &^ mask) | val
		if old == nw || atomic.CompareAndSwapUint64(p, old, nw) {
			return
		}
	}
}

// Or atomically ORs v into cell i without disturbing neighbors — a single
// atomic OR, no CAS loop. The batch kernel uses it to attribute a frontier
// node to the queries that reached it: each query's bit is set at most once
// per level and concurrent ORs of different bits commute.
//
//wikisearch:hotpath
func (a *ByteArray) Or(i int, v byte) {
	shift := uint(i&7) * 8
	atomic.OrUint64(&a.data[i>>3], uint64(v)<<shift)
}

// ClearByte atomically resets cell i to zero with a single atomic AND. The
// sequential frontier drain uses it to consume a node's owner-group byte.
//
//wikisearch:hotpath
func (a *ByteArray) ClearByte(i int) {
	shift := uint(i&7) * 8
	atomic.AndUint64(&a.data[i>>3], ^(uint64(0xFF) << shift))
}

// SetMonotone stores v into cell i with a single atomic AND instead of a CAS
// loop. It requires that the cell's current value has every bit of v set —
// which holds for the search's only write, the one-shot ∞ (0xFF) → level
// transition — and is idempotent, so Theorem V.2's same-value concurrent
// writes commute exactly as with Set.
//
//wikisearch:hotpath
func (a *ByteArray) SetMonotone(i int, v byte) {
	shift := uint(i&7) * 8
	atomic.AndUint64(&a.data[i>>3], uint64(v)<<shift|^(uint64(0xFF)<<shift))
}

// SpreadFlags expands a low-8-bit flag mask into its byte mask: bit k set →
// byte k = 0xFF, the inverse direction of compressFlags. Pure SWAR, no
// branches or tables.
//
//wikisearch:hotpath
func SpreadFlags(flags uint64) uint64 {
	// Replicate the 8 flag bits into every byte, then isolate bit k in
	// byte k, so byte k ∈ {0, 1<<k}.
	m := (flags & 0xFF) * lowBytes & 0x8040201008040201
	// 0x80 - m_k borrows nothing across bytes (m_k ≤ 0x80) and leaves bit 7
	// set exactly when m_k == 0; collapse that to a 0/1 byte and invert.
	z := ((broadcast(0x80) - m) >> 7) & lowBytes // byte k = 1 iff flag k clear
	return (lowBytes - z) * 0xFF                 // byte k = 0xFF iff flag k set
}

// SetMonotoneFlags is SetMonotone for several cells of one word at once:
// it stores v into every byte of word wi selected by flags (bit k → byte k)
// with a single atomic AND. Each selected cell must satisfy SetMonotone's
// precondition (current value has every bit of v set); unselected cells are
// untouched. The expansion kernel uses it to commit a whole visit — all
// not-yet-hit columns of a neighbor, across every multiplexed query — in
// one atomic operation.
//
//wikisearch:hotpath
func (a *ByteArray) SetMonotoneFlags(wi int, flags uint64, v byte) {
	bm := SpreadFlags(flags)
	atomic.AndUint64(&a.data[wi], broadcast(v)&bm|^bm)
}

// Fill resets every cell to v. Requires exclusive access.
//
//wikisearch:exclusive callers hold the only reference during (re)init
func (a *ByteArray) Fill(v byte) {
	w := broadcast(v)
	for i := range a.data {
		a.data[i] = w
	}
}

// Resize re-dimensions the array to n cells filled with fill, reusing the
// backing storage when its capacity suffices (the per-query state pool
// relies on this being allocation-free at steady state). Requires exclusive
// access.
//
//wikisearch:exclusive callers hold the only reference during (re)init
func (a *ByteArray) Resize(n int, fill byte) {
	words := (n + 7) / 8
	if cap(a.data) < words {
		a.data = make([]uint64, words)
	} else {
		a.data = a.data[:words]
	}
	a.n = n
	a.Fill(fill)
}

// LoadRow copies cells [base, base+len(dst)) into dst using word-wide atomic
// loads — one load per eight cells instead of one per cell. The expansion
// kernel uses it to snapshot a node's matrix row once per adjacency pass.
//
//wikisearch:hotpath
func (a *ByteArray) LoadRow(base int, dst []byte) {
	n := len(dst)
	i := 0
	for i < n {
		idx := base + i
		w := atomic.LoadUint64(&a.data[idx>>3])
		for off := idx & 7; off < 8 && i < n; off, i = off+1, i+1 {
			dst[i] = byte(w >> (uint(off) * 8))
		}
	}
}

// zeroBytes returns a flag word with bit 8p+7 set iff byte p of w is zero —
// the exact SWAR zero-byte detector (the classic (w-0x01…)&^w&0x80… variant
// has false positives above a zero byte; this one does not).
func zeroBytes(w uint64) uint64 {
	y := (w & low7Bytes) + low7Bytes
	return ^(y | w | low7Bytes)
}

// compressFlags compresses the eight per-byte flags (bits 7, 15, …, 63) of
// z into bits 0..7.
func compressFlags(z uint64) uint64 {
	return ((z >> 7) * 0x0102040810204080) >> 56
}

// MatchMask returns a bitmask with bit j set iff cell base+j equals v, for
// j in [0, q) with q <= 64. One word-wide atomic load covers eight cells,
// and a SWAR zero-byte detector compares them all at once — the kernel uses
// it to find a neighbor's not-yet-hit keyword columns in a single pass.
//
//wikisearch:hotpath
func (a *ByteArray) MatchMask(base, q int, v byte) uint64 {
	var mask uint64
	vb := broadcast(v)
	j := 0
	for j < q {
		idx := base + j
		w := atomic.LoadUint64(&a.data[idx>>3]) ^ vb // matching bytes become 0
		m8 := compressFlags(zeroBytes(w))
		off := idx & 7
		cnt := 8 - off
		if rem := q - j; cnt > rem {
			cnt = rem
		}
		mask |= (m8 >> uint(off)) & (1<<uint(cnt) - 1) << uint(j)
		j += cnt
	}
	return mask
}

// MatchWord returns the match flags of the eight cells of word wi (bit p set
// iff cell 8*wi+p equals v) with a single atomic load. Callers that keep
// rows word-aligned (the matrix pads its row stride) test a whole row in one
// call with no offset handling.
//
//wikisearch:hotpath
func (a *ByteArray) MatchWord(wi int, v byte) uint64 {
	return MatchFlags(atomic.LoadUint64(&a.data[wi]), v)
}

// MatchFlags returns a bitmask with bit p set iff byte p of w equals v. It
// is the pure SWAR core of MatchWord, exported so hot loops that hold the
// backing words (see Words) can test eight cells per load with everything
// inlined.
//
//wikisearch:hotpath
func MatchFlags(w uint64, v byte) uint64 {
	return compressFlags(zeroBytes(w ^ broadcast(v)))
}

// Words exposes the backing word slice (eight cells per word). Callers must
// access it with sync/atomic word operations and respect the same exclusive
// access rules as the cell API; it exists so the expansion kernel's inner
// loop can fold the word load into its own body.
//
//wikisearch:atomicalias
//wikisearch:hotpath
func (a *ByteArray) Words() []uint64 { return a.data }
