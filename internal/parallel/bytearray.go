package parallel

import "sync/atomic"

// ByteArray is a byte slice with atomic element access, used for the
// node-keyword matrix M (one byte per hitting level, 0xFF = ∞) and for the
// per-node activation cache. The paper's Theorem V.2 shows every concurrent
// write to one cell writes the same value (the current level + 1), so any
// interleaving yields the same contents; atomic accesses make that reasoning
// sound under the Go memory model without locks.
type ByteArray struct {
	data []uint32 // one byte per cell, packed 4 per word
	n    int
}

// Infinity is the matrix value meaning "never hit" (the paper's ∞).
const Infinity = 0xFF

// NewByteArray returns an array of n cells initialized to fill.
func NewByteArray(n int, fill byte) *ByteArray {
	a := &ByteArray{data: make([]uint32, (n+3)/4), n: n}
	if fill != 0 {
		w := uint32(fill)
		w |= w << 8
		w |= w << 16
		for i := range a.data {
			a.data[i] = w
		}
	}
	return a
}

// Len returns the number of cells.
func (a *ByteArray) Len() int { return a.n }

// Get atomically loads cell i.
func (a *ByteArray) Get(i int) byte {
	w := atomic.LoadUint32(&a.data[i/4])
	return byte(w >> (uint(i%4) * 8))
}

// Set atomically stores v into cell i without disturbing neighbors.
// Concurrent Sets to the same cell must write the same value (which the
// search guarantees); concurrent Sets to different cells in one word are
// resolved by the CAS loop.
func (a *ByteArray) Set(i int, v byte) {
	shift := uint(i%4) * 8
	mask := uint32(0xFF) << shift
	val := uint32(v) << shift
	p := &a.data[i/4]
	for {
		old := atomic.LoadUint32(p)
		nw := (old &^ mask) | val
		if old == nw || atomic.CompareAndSwapUint32(p, old, nw) {
			return
		}
	}
}

// Fill resets every cell to v. Requires exclusive access.
func (a *ByteArray) Fill(v byte) {
	w := uint32(v)
	w |= w << 8
	w |= w << 16
	for i := range a.data {
		a.data[i] = w
	}
}
