package blinks

import (
	"fmt"
	"math/rand"
	"testing"

	"wikisearch/internal/graph"
	"wikisearch/internal/text"
)

func smallKB(t testing.TB) (*graph.Graph, *text.Index) {
	t.Helper()
	b := graph.NewBuilder()
	b.AddNode("sql database", "")   // 0
	b.AddNode("hub", "")            // 1
	b.AddNode("rdf store", "")      // 2
	b.AddNode("xml parser", "")     // 3
	b.AddNode("isolated thing", "") // 4 (disconnected)
	b.AddEdgeNamed(0, 1, "e")
	b.AddEdgeNamed(2, 1, "e")
	b.AddEdgeNamed(3, 2, "e")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, text.BuildIndex(g)
}

func TestBuildAndLookup(t *testing.T) {
	g, ix := smallKB(t)
	idx, err := Build(g, ix, []string{"sql", "rdf"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Terms() != 2 {
		t.Fatalf("terms = %d", idx.Terms())
	}
	// Distances from "sql" (node 0): 0:0, 1:1, 2:2, 3:3, 4:-1.
	want := []int32{0, 1, 2, 3, -1}
	for v, w := range want {
		if d := idx.Distance(graph.NodeID(v), "sql"); d != w {
			t.Fatalf("MNK(%d, sql) = %d, want %d", v, d, w)
		}
	}
	// LKN("sql") sorted by distance.
	list := idx.List("sql")
	if len(list) != 4 {
		t.Fatalf("LKN(sql) = %v", list)
	}
	for i := 1; i < len(list); i++ {
		if list[i].Dist < list[i-1].Dist {
			t.Fatal("LKN not distance-sorted")
		}
	}
	if list[0].Node != 0 || list[0].Dist != 0 {
		t.Fatalf("LKN head = %+v", list[0])
	}
	if idx.List("nope") != nil || idx.Distance(0, "nope") != -1 {
		t.Fatal("unknown term must be empty")
	}
	if idx.Bytes() <= 0 {
		t.Fatal("Bytes = 0")
	}
}

func TestMaxDistBound(t *testing.T) {
	g, ix := smallKB(t)
	idx, err := Build(g, ix, []string{"sql"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.List("sql")) != 2 { // dist 0 and 1 only
		t.Fatalf("bounded LKN = %v", idx.List("sql"))
	}
	if idx.Distance(2, "sql") != -1 {
		t.Fatal("beyond-bound distance must be -1")
	}
}

func TestBuildUnknownTerm(t *testing.T) {
	g, ix := smallKB(t)
	if _, err := Build(g, ix, []string{"zzz"}, 0); err == nil {
		t.Fatal("unknown term accepted")
	}
}

func TestIndexMatchesDirectBFS(t *testing.T) {
	// Random graph: MNK must equal a direct multi-source BFS per term.
	rng := rand.New(rand.NewSource(4))
	b := graph.NewBuilder()
	words := []string{"alpha", "beta", "gamma", "delta"}
	const n = 60
	for i := 0; i < n; i++ {
		b.AddNode(words[rng.Intn(len(words))]+" node", "")
	}
	r := b.Rel("e")
	for i := 0; i < 150; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), r)
	}
	g, _ := b.Build()
	ix := text.BuildIndex(g)
	idx, err := Build(g, ix, []string{"alpha", "beta"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range []string{"alpha", "beta"} {
		ref := graph.BFSDistances(g, ix.LookupTerm(term)...)
		for v := 0; v < n; v++ {
			if got := idx.Distance(graph.NodeID(v), term); got != ref[v] {
				t.Fatalf("MNK(%d,%s) = %d, BFS = %d", v, term, got, ref[v])
			}
		}
	}
}

func TestFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := graph.NewBuilder()
	const n = 400
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("word%d filler%d", rng.Intn(40), rng.Intn(200)), "")
	}
	r := b.Rel("e")
	for i := 0; i < 1200; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), r)
	}
	g, _ := b.Build()
	ix := text.BuildIndex(g)
	rep, err := Feasibility(g, ix, []int{5, 10, 20}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	for i, p := range rep.Points {
		if p.Bytes <= 0 {
			t.Fatalf("point %d: bytes = %d", i, p.Bytes)
		}
		if i > 0 && p.Bytes < rep.Points[i-1].Bytes {
			t.Fatal("bytes must grow with terms")
		}
	}
	if rep.FullVocabTerms != ix.NumTerms() {
		t.Fatalf("full vocab = %d", rep.FullVocabTerms)
	}
	if rep.ProjectedBytes < rep.Points[2].Bytes {
		t.Fatal("projection must not shrink")
	}
}

// BenchmarkBuildPerTerm measures the per-keyword BFS cost of BLINKS
// precomputation — the unit that multiplies into the paper's
// infeasibility argument.
func BenchmarkBuildPerTerm(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	gb := graph.NewBuilder()
	const n = 20000
	words := []string{"alpha", "beta", "gamma"}
	for i := 0; i < n; i++ {
		gb.AddNode(words[rng.Intn(len(words))]+" entity", "")
	}
	r := gb.Rel("e")
	for i := 0; i < 120000; i++ {
		gb.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), r)
	}
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	ix := text.BuildIndex(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, ix, []string{"alpha"}, 0); err != nil {
			b.Fatal(err)
		}
	}
}
