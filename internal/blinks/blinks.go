// Package blinks implements the two precomputed index structures of BLINKS
// (He et al., "BLINKS: Ranked keyword searches on graphs", SIGMOD'07) that
// the paper names when explaining why BLINKS was excluded from its
// evaluation: "BLINKS needs to pre-compute keyword-node lists and
// node-keyword map, which are infeasible on Wikidata KB with 30 million
// nodes and over 5 million keywords" (§II, §VI).
//
//   - the keyword-node list LKN(w): for each keyword w, every node sorted
//     by its graph distance to the nearest node containing w;
//   - the node-keyword map MNK(v, w): for each node, the distance to each
//     keyword (the transpose view, used for O(1) lookups during search).
//
// Construction runs one multi-source BFS per keyword — Θ(K·(V+E)) time and
// Θ(K·V) space — which is exactly the quadratic-in-scale blowup the paper
// calls infeasible. The Feasibility helper builds the index for a growing
// keyword sample, measures time and bytes, and extrapolates to the full
// vocabulary, turning the paper's dismissal into a measured claim.
//
// A distance-bounded lookup API is provided so tests can validate the
// index against direct BFS; the full BLINKS search algorithm is out of
// scope here (the engine's evaluation baselines are BANKS-I/II and DPBF).
package blinks

import (
	"fmt"
	"sort"
	"time"

	"wikisearch/internal/graph"
	"wikisearch/internal/text"
)

// Entry is one keyword-node list element.
type Entry struct {
	Node graph.NodeID
	Dist int32
}

// Index holds the two BLINKS precomputations for a keyword subset.
type Index struct {
	terms map[string]int
	// lists[t] is LKN for term t: entries sorted by distance then node.
	lists [][]Entry
	// dist[t] is MNK's column for term t: distance per node (-1 =
	// unreachable).
	dist [][]int32
	// MaxDist bounds stored distances; entries farther are dropped
	// (BLINKS' practical variant); <= 0 means unbounded.
	MaxDist int32
}

// Build constructs the index for the given normalized terms over the
// inverted index ix. maxDist <= 0 stores all finite distances.
func Build(g *graph.Graph, ix *text.Index, terms []string, maxDist int32) (*Index, error) {
	idx := &Index{terms: make(map[string]int, len(terms)), MaxDist: maxDist}
	for _, term := range terms {
		sources := ix.LookupTerm(term)
		if len(sources) == 0 {
			return nil, fmt.Errorf("blinks: term %q has no posting list", term)
		}
		t := len(idx.lists)
		idx.terms[term] = t
		d := graph.BFSDistances(g, sources...)
		var list []Entry
		for v, dv := range d {
			if dv < 0 {
				continue
			}
			if maxDist > 0 && dv > maxDist {
				d[v] = -1
				continue
			}
			list = append(list, Entry{Node: graph.NodeID(v), Dist: dv})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].Dist != list[j].Dist {
				return list[i].Dist < list[j].Dist
			}
			return list[i].Node < list[j].Node
		})
		idx.lists = append(idx.lists, list)
		idx.dist = append(idx.dist, d)
	}
	return idx, nil
}

// Terms returns the number of indexed terms.
func (x *Index) Terms() int { return len(x.lists) }

// List returns LKN for a term (nil if unknown). The slice aliases index
// storage.
func (x *Index) List(term string) []Entry {
	t, ok := x.terms[term]
	if !ok {
		return nil
	}
	return x.lists[t]
}

// Distance returns MNK(v, term): the distance from v to the nearest node
// containing term, or -1 if unreachable/unknown/beyond MaxDist.
func (x *Index) Distance(v graph.NodeID, term string) int32 {
	t, ok := x.terms[term]
	if !ok {
		return -1
	}
	return x.dist[t][v]
}

// Bytes returns the index's storage footprint: 8 bytes per list entry plus
// 4 bytes per node-keyword cell.
func (x *Index) Bytes() int64 {
	var b int64
	for _, l := range x.lists {
		b += int64(len(l)) * 8
	}
	for _, d := range x.dist {
		b += int64(len(d)) * 4
	}
	return b
}

// FeasibilityPoint is one measurement of the precomputation sweep.
type FeasibilityPoint struct {
	Terms        int
	BuildSeconds float64
	Bytes        int64
}

// FeasibilityReport extrapolates the precomputation to a full vocabulary.
type FeasibilityReport struct {
	Points []FeasibilityPoint
	// FullVocabTerms is the vocabulary size extrapolated to.
	FullVocabTerms int
	// ProjectedSeconds / ProjectedBytes scale the last point linearly in
	// the number of terms (construction is one BFS per term).
	ProjectedSeconds float64
	ProjectedBytes   int64
}

// Feasibility builds the index for growing keyword samples (the most
// frequent terms first, the worst case for list sizes) and extrapolates to
// the full vocabulary — the paper's "infeasible" claim, measured.
func Feasibility(g *graph.Graph, ix *text.Index, samples []int, maxDist int32) (*FeasibilityReport, error) {
	// Rank terms by posting length, descending.
	type tf struct {
		term string
		n    int
	}
	all := make([]tf, 0, ix.NumTerms())
	for id := int32(0); int(id) < ix.NumTerms(); id++ {
		name := ix.TermName(id)
		all = append(all, tf{name, len(ix.LookupTerm(name))})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].term < all[j].term
	})
	rep := &FeasibilityReport{FullVocabTerms: ix.NumTerms()}
	for _, k := range samples {
		if k > len(all) {
			k = len(all)
		}
		terms := make([]string, k)
		for i := 0; i < k; i++ {
			terms[i] = all[i].term
		}
		start := time.Now()
		idx, err := Build(g, ix, terms, maxDist)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, FeasibilityPoint{
			Terms:        k,
			BuildSeconds: time.Since(start).Seconds(),
			Bytes:        idx.Bytes(),
		})
	}
	if n := len(rep.Points); n > 0 {
		last := rep.Points[n-1]
		scale := float64(rep.FullVocabTerms) / float64(last.Terms)
		rep.ProjectedSeconds = last.BuildSeconds * scale
		rep.ProjectedBytes = int64(float64(last.Bytes) * scale)
	}
	return rep, nil
}
