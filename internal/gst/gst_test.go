package gst

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"wikisearch/internal/graph"
)

func buildGraph(t testing.TB, n int, edges [][2]int, weights []float64) (*graph.Graph, []float64) {
	t.Helper()
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("v%d", i), "")
	}
	r := b.Rel("e")
	for _, e := range edges {
		b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]), r)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if weights == nil {
		weights = make([]float64, n)
	}
	return g, weights
}

func TestSingleNodeCoveringAll(t *testing.T) {
	g, w := buildGraph(t, 2, [][2]int{{0, 1}}, nil)
	res, err := Search(g, w, [][]graph.NodeID{{0}, {0}}, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) != 1 || res.Trees[0].Cost != 0 || res.Trees[0].Root != 0 {
		t.Fatalf("trees = %+v", res.Trees)
	}
	if len(res.Trees[0].Nodes) != 1 {
		t.Fatalf("nodes = %v", res.Trees[0].Nodes)
	}
}

func TestPathOptimum(t *testing.T) {
	// a — x — b, zero weights: optimum is the 2-edge path, cost 2.
	g, w := buildGraph(t, 3, [][2]int{{0, 1}, {1, 2}}, nil)
	res, err := Search(g, w, [][]graph.NodeID{{0}, {2}}, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trees[0].Cost != 2 {
		t.Fatalf("cost = %v, want 2", res.Trees[0].Cost)
	}
	if len(res.Trees[0].Nodes) != 3 || len(res.Trees[0].Edges) != 2 {
		t.Fatalf("tree = %+v", res.Trees[0])
	}
}

func TestSharingBeatsStarSum(t *testing.T) {
	// Shared trunk: root r — c1 — c2 — c3 — split to t1 and t2.
	// Tree cost = 3 (trunk) + 2 (split) = 5 edges → 5 with zero weights.
	// Star sum from r would be 4 + 4 = 8: the DP must exploit sharing.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {3, 5}}
	g, w := buildGraph(t, 6, edges, nil)
	// Groups: {r}, {t1}, {t2} = {0}, {4}, {5}.
	res, err := Search(g, w, [][]graph.NodeID{{0}, {4}, {5}}, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trees[0].Cost != 5 {
		t.Fatalf("cost = %v, want 5 (shared trunk)", res.Trees[0].Cost)
	}
}

func TestWeightsSteerTrees(t *testing.T) {
	// Two parallel 2-edge routes; heavy middle on one.
	edges := [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}}
	w := []float64{0, 0.9, 0.1, 0}
	g, _ := buildGraph(t, 4, edges, nil)
	res, err := Search(g, w, [][]graph.NodeID{{0}, {3}}, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Trees[0].Nodes {
		if v == 1 {
			t.Fatalf("optimal tree routes through the heavy node: %v", res.Trees[0].Nodes)
		}
	}
	// Expected: 2 edges via node 2: (1+0.05) + (1+0.05) = 2.1.
	if math.Abs(res.Trees[0].Cost-2.1) > 1e-9 {
		t.Fatalf("cost = %v, want 2.1", res.Trees[0].Cost)
	}
}

func TestDisconnected(t *testing.T) {
	g, w := buildGraph(t, 2, nil, nil)
	res, err := Search(g, w, [][]graph.NodeID{{0}, {1}}, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) != 0 {
		t.Fatalf("found trees across components: %+v", res.Trees)
	}
	c, err := OptimalCost(g, w, [][]graph.NodeID{{0}, {1}})
	if err != nil || !math.IsInf(c, 1) {
		t.Fatalf("OptimalCost = %v, %v", c, err)
	}
}

func TestErrors(t *testing.T) {
	g, w := buildGraph(t, 2, [][2]int{{0, 1}}, nil)
	if _, err := Search(g, w, nil, Options{}); err == nil {
		t.Fatal("no groups accepted")
	}
	many := make([][]graph.NodeID, MaxKeywords+1)
	for i := range many {
		many[i] = []graph.NodeID{0}
	}
	if _, err := Search(g, w, many, Options{}); err == nil {
		t.Fatal("too many groups accepted")
	}
}

func TestMaxStatesCap(t *testing.T) {
	g, w := randomGraph(t, 200, 800, 3)
	res, err := Search(g, w, [][]graph.NodeID{{0}, {1}, {2}}, Options{K: 5, MaxStates: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Popped > 50 {
		t.Fatalf("popped %d > cap", res.Popped)
	}
}

func randomGraph(t testing.TB, n, m int, seed int64) (*graph.Graph, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]int, m)
	for i := range edges {
		edges[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64()
	}
	g, _ := buildGraph(t, n, edges, nil)
	return g, w
}

// dijkstraEdgeCost computes single-source shortest distances under the
// same symmetric edge costs the DP uses.
func dijkstraEdgeCost(g *graph.Graph, w []float64, src []graph.NodeID) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	h := &costHeap{}
	for _, s := range src {
		dist[s] = 0
		heap.Push(h, costItem{s, 0})
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(costItem)
		if it.d > dist[it.v] {
			continue
		}
		g.ForEachNeighbor(it.v, func(u graph.NodeID, _ graph.RelID, _ bool) {
			nd := it.d + EdgeCost(w, it.v, u)
			if nd < dist[u] {
				dist[u] = nd
				heap.Push(h, costItem{u, nd})
			}
		})
	}
	return dist
}

type costItem struct {
	v graph.NodeID
	d float64
}

type costHeap []costItem

func (h costHeap) Len() int           { return len(h) }
func (h costHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h costHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *costHeap) Push(x any)        { *h = append(*h, x.(costItem)) }
func (h *costHeap) Pop() any          { o := *h; n := len(o); it := o[n-1]; *h = o[:n-1]; return it }

// TestTwoGroupsEqualsShortestPath: for l=2 the optimal Group Steiner Tree
// is exactly the cheapest path between the groups.
func TestTwoGroupsEqualsShortestPath(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g, w := randomGraph(t, 40, 120, seed)
		rng := rand.New(rand.NewSource(seed ^ 99))
		a := []graph.NodeID{graph.NodeID(rng.Intn(40))}
		b := []graph.NodeID{graph.NodeID(rng.Intn(40))}
		got, err := OptimalCost(g, w, [][]graph.NodeID{a, b})
		if err != nil {
			t.Fatal(err)
		}
		want := dijkstraEdgeCost(g, w, a)[b[0]]
		if math.Abs(got-want) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Fatalf("seed %d: DP = %v, shortest path = %v", seed, got, want)
		}
	}
}

// TestStarUpperBound: the DP optimum never exceeds the best star (sum of
// shortest paths from one root) and never beats the largest single-group
// distance (a lower bound).
func TestStarUpperBound(t *testing.T) {
	for seed := int64(20); seed < 35; seed++ {
		g, w := randomGraph(t, 35, 100, seed)
		rng := rand.New(rand.NewSource(seed ^ 7))
		groups := make([][]graph.NodeID, 3)
		for i := range groups {
			groups[i] = []graph.NodeID{graph.NodeID(rng.Intn(35))}
		}
		opt, err := OptimalCost(g, w, groups)
		if err != nil {
			t.Fatal(err)
		}
		dists := make([][]float64, len(groups))
		for i, src := range groups {
			dists[i] = dijkstraEdgeCost(g, w, src)
		}
		// Upper bound: the best star (one root, independent shortest paths).
		star := math.Inf(1)
		for v := 0; v < g.NumNodes(); v++ {
			sum := 0.0
			for i := range groups {
				sum += dists[i][v]
			}
			if sum < star {
				star = sum
			}
		}
		if opt > star+1e-9 {
			t.Fatalf("seed %d: DP %v exceeds star bound %v", seed, opt, star)
		}
		// Lower bound: the tree must at least connect the farthest pair.
		lower := 0.0
		for i := range groups {
			for j := i + 1; j < len(groups); j++ {
				best := math.Inf(1)
				for _, s := range groups[j] {
					if d := dists[i][s]; d < best {
						best = d
					}
				}
				if !math.IsInf(best, 1) && best > lower {
					lower = best
				}
			}
		}
		if !math.IsInf(opt, 1) && opt+1e-9 < lower {
			t.Fatalf("seed %d: DP %v beats the pairwise lower bound %v", seed, opt, lower)
		}
	}
}

// TestTreeStructureValid: reconstructed trees are connected, acyclic and
// cover every group.
func TestTreeStructureValid(t *testing.T) {
	for seed := int64(40); seed < 55; seed++ {
		g, w := randomGraph(t, 30, 90, seed)
		rng := rand.New(rand.NewSource(seed ^ 3))
		groups := make([][]graph.NodeID, 3)
		for i := range groups {
			for len(groups[i]) < 2 {
				groups[i] = append(groups[i], graph.NodeID(rng.Intn(30)))
			}
		}
		res, err := Search(g, w, groups, Options{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range res.Trees {
			if len(tr.Edges) != len(tr.Nodes)-1 {
				t.Fatalf("seed %d: %d edges for %d nodes (not a tree)", seed, len(tr.Edges), len(tr.Nodes))
			}
			// Connectivity via union of edges.
			adj := map[graph.NodeID][]graph.NodeID{}
			inTree := map[graph.NodeID]bool{}
			for _, v := range tr.Nodes {
				inTree[v] = true
			}
			cost := 0.0
			for _, e := range tr.Edges {
				if !inTree[e[0]] || !inTree[e[1]] {
					t.Fatalf("seed %d: edge endpoint outside tree", seed)
				}
				adj[e[0]] = append(adj[e[0]], e[1])
				adj[e[1]] = append(adj[e[1]], e[0])
				cost += EdgeCost(w, e[0], e[1])
			}
			if math.Abs(cost-tr.Cost) > 1e-9 {
				t.Fatalf("seed %d: edge cost sum %v != reported %v", seed, cost, tr.Cost)
			}
			seen := map[graph.NodeID]bool{tr.Root: true}
			stack := []graph.NodeID{tr.Root}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, u := range adj[v] {
					if !seen[u] {
						seen[u] = true
						stack = append(stack, u)
					}
				}
			}
			if len(seen) != len(tr.Nodes) {
				t.Fatalf("seed %d: tree disconnected", seed)
			}
			// Coverage.
			for i, grp := range groups {
				ok := false
				for _, s := range grp {
					if seen[s] {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("seed %d: group %d uncovered", seed, i)
				}
			}
		}
	}
}

// TestBanksNeverBeatsExact would require matching cost conventions; the
// analogous guarantee tested here is internal: top-k trees come out in
// nondecreasing cost order with distinct roots.
func TestTopKOrderedDistinctRoots(t *testing.T) {
	g, w := randomGraph(t, 50, 200, 9)
	res, err := Search(g, w, [][]graph.NodeID{{0, 1}, {2, 3}, {4}}, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	roots := map[graph.NodeID]bool{}
	for i, tr := range res.Trees {
		if roots[tr.Root] {
			t.Fatalf("duplicate root %d", tr.Root)
		}
		roots[tr.Root] = true
		if i > 0 && tr.Cost < res.Trees[i-1].Cost {
			t.Fatal("costs not nondecreasing")
		}
	}
}
