package gst

import (
	"fmt"
	"testing"

	"wikisearch/internal/graph"
)

// BenchmarkDPBFVaryL demonstrates the exponential-in-l complexity the
// paper quotes for [7] — O(3^l·n + 2^l·((l+log n)·n+m)) — and uses as the
// argument against exact GST methods at interactive latency: wall time per
// query grows sharply with the number of keyword groups.
func BenchmarkDPBFVaryL(b *testing.B) {
	g, w := randomGraph(b, 2000, 10000, 31)
	for _, l := range []int{2, 3, 4, 5, 6} {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			groups := make([][]graph.NodeID, l)
			for i := range groups {
				groups[i] = []graph.NodeID{graph.NodeID(i * 17), graph.NodeID(i*31 + 5)}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Search(g, w, groups, Options{K: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
