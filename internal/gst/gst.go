// Package gst implements DPBF — the parameterized dynamic program of Ding
// et al., "Finding top-k min-cost connected trees in databases" (ICDE'07),
// the paper's reference [7] — which solves the Group Steiner Tree problem
// exactly in O(3^l·n + 2^l·((l+log n)·n+m)) time.
//
// The paper uses [7] as the yardstick exact method that "is effective when
// the number of keywords is small, but is not very scalable in terms of
// the number of keywords"; this implementation exists to (a) provide exact
// optima that the BANKS baselines and tests can be validated against, and
// (b) let the benchmark harness demonstrate the exponential-in-l blowup
// that motivates the paper's Central Graph model.
//
// State: cost(v, S) = the minimum cost of a tree rooted at v covering the
// keyword subset S. Transitions: edge growth (re-root to a neighbor) and
// tree merge (two trees at the same root with disjoint keyword sets).
// States are processed in cost order from a priority queue, so the first
// time (v, full) pops its cost is the optimum for root v.
//
// Edge costs are root-independent (a requirement for the DP's soundness):
// cost(u,v) = 1 + (w(u)+w(v))/2, the symmetric analogue of the engine's
// node-entry costs — summary hubs make trees expensive on whichever side
// they sit.
package gst

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"wikisearch/internal/graph"
)

// MaxKeywords bounds l; the DP state space is n·2^l.
const MaxKeywords = 12

// Options configures a DPBF run.
type Options struct {
	// K is the number of answer trees (distinct roots) to return.
	K int
	// MaxStates caps queue pops as a safety valve; 0 means no cap.
	MaxStates int
}

// Tree is one exact answer: a minimum-cost connected tree covering every
// keyword group.
type Tree struct {
	Root  graph.NodeID
	Cost  float64
	Nodes []graph.NodeID
	// Edges are (child, parent) pairs of the tree, oriented toward the root.
	Edges [][2]graph.NodeID
}

// Result carries the answers and search-effort counters.
type Result struct {
	Trees  []Tree
	Popped int // states processed
}

type state struct {
	v    graph.NodeID
	set  uint32
	cost float64
}

type pq []state

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].cost < p[j].cost }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(state)) }
func (p *pq) Pop() any          { o := *p; n := len(o); s := o[n-1]; *p = o[:n-1]; return s }

type parentKind uint8

const (
	kindSource parentKind = iota
	kindGrow
	kindMerge
)

// parent records how a state's best cost was reached, for reconstruction.
type parent struct {
	kind     parentKind
	fromV    graph.NodeID // grow: the previous root
	fromSet  uint32       // grow: previous state's set; merge: first half
	otherSet uint32       // merge: second half
}

// EdgeCost is the symmetric tree edge cost between u and v.
func EdgeCost(weights []float64, u, v graph.NodeID) float64 {
	return 1 + (weights[u]+weights[v])/2
}

// Search runs DPBF over the bi-directed graph.
func Search(g *graph.Graph, weights []float64, sources [][]graph.NodeID, opts Options) (*Result, error) {
	l := len(sources)
	if l == 0 {
		return nil, fmt.Errorf("gst: no keyword groups")
	}
	if l > MaxKeywords {
		return nil, fmt.Errorf("gst: %d keyword groups exceeds maximum %d (state space is n·2^l)", l, MaxKeywords)
	}
	if opts.K <= 0 {
		opts.K = 1
	}
	full := uint32(1)<<uint(l) - 1

	cost := map[uint64]float64{}
	parents := map[uint64]parent{}
	settled := map[uint64]bool{}
	key := func(v graph.NodeID, s uint32) uint64 { return uint64(v)<<uint(l) | uint64(s) }

	var q pq
	push := func(v graph.NodeID, s uint32, c float64, p parent) {
		k := key(v, s)
		if old, ok := cost[k]; ok && old <= c {
			return
		}
		cost[k] = c
		parents[k] = p
		heap.Push(&q, state{v, s, c})
	}

	for i, src := range sources {
		for _, v := range src {
			push(v, uint32(1)<<uint(i), 0, parent{kind: kindSource})
		}
	}

	res := &Result{}
	foundRoots := map[graph.NodeID]bool{}

	for q.Len() > 0 {
		if opts.MaxStates > 0 && res.Popped >= opts.MaxStates {
			break
		}
		st := heap.Pop(&q).(state)
		k := key(st.v, st.set)
		if settled[k] || st.cost > cost[k] {
			continue
		}
		settled[k] = true
		res.Popped++

		if st.set == full && !foundRoots[st.v] {
			foundRoots[st.v] = true
			tr := buildTree(st.v, st.set, parents, l)
			tr.Cost = st.cost
			res.Trees = append(res.Trees, tr)
			if len(res.Trees) >= opts.K {
				break
			}
		}

		// Edge growth: re-root the tree at each neighbor.
		g.ForEachNeighbor(st.v, func(u graph.NodeID, _ graph.RelID, _ bool) {
			push(u, st.set, st.cost+EdgeCost(weights, st.v, u), parent{
				kind: kindGrow, fromV: st.v, fromSet: st.set,
			})
		})
		// Tree merge: combine with settled disjoint subsets at this root.
		rest := full &^ st.set
		for sub := rest; sub > 0; sub = (sub - 1) & rest {
			ok := key(st.v, sub)
			if c2, have := cost[ok]; have && settled[ok] {
				push(st.v, st.set|sub, st.cost+c2, parent{
					kind: kindMerge, fromSet: st.set, otherSet: sub,
				})
			}
		}
	}
	sort.Slice(res.Trees, func(i, j int) bool {
		if res.Trees[i].Cost != res.Trees[j].Cost {
			return res.Trees[i].Cost < res.Trees[j].Cost
		}
		return res.Trees[i].Root < res.Trees[j].Root
	})
	return res, nil
}

// buildTree reconstructs the tree of state (root, set) from parent records.
func buildTree(root graph.NodeID, set uint32, parents map[uint64]parent, l int) Tree {
	key := func(v graph.NodeID, s uint32) uint64 { return uint64(v)<<uint(l) | uint64(s) }
	nodes := map[graph.NodeID]bool{}
	var edges [][2]graph.NodeID
	var walk func(v graph.NodeID, s uint32)
	walk = func(v graph.NodeID, s uint32) {
		nodes[v] = true
		p := parents[key(v, s)]
		switch p.kind {
		case kindGrow:
			edges = append(edges, [2]graph.NodeID{p.fromV, v})
			walk(p.fromV, p.fromSet)
		case kindMerge:
			walk(v, p.fromSet)
			walk(v, p.otherSet)
		case kindSource:
		}
	}
	walk(root, set)
	t := Tree{Root: root, Edges: edges}
	t.Nodes = make([]graph.NodeID, 0, len(nodes))
	for v := range nodes {
		t.Nodes = append(t.Nodes, v)
	}
	sort.Slice(t.Nodes, func(i, j int) bool { return t.Nodes[i] < t.Nodes[j] })
	return t
}

// OptimalCost returns the exact minimum Group Steiner Tree cost, or +Inf
// when the groups cannot be connected.
func OptimalCost(g *graph.Graph, weights []float64, sources [][]graph.NodeID) (float64, error) {
	res, err := Search(g, weights, sources, Options{K: 1})
	if err != nil {
		return 0, err
	}
	if len(res.Trees) == 0 {
		return math.Inf(1), nil
	}
	return res.Trees[0].Cost, nil
}
