package analysis

import (
	"go/ast"
	"go/types"
)

// NoCopyAnalyzer flags value copies of types that must stay put: types
// annotated //wikisearch:nocopy (SearchState, Bitset, ByteArray, Matrix —
// their slices are shared with concurrent workers, so a copy silently
// aliases live atomic storage), plus any type containing a sync primitive
// or sync/atomic value (the vet Lock/Unlock convention, applied
// transitively through struct fields and arrays).
//
// Reported copy sites: value receivers, value parameters and results,
// assignments from value-reading expressions, range values, call arguments,
// and method values bound to a value receiver.
var NoCopyAnalyzer = &Analyzer{
	Name: "nocopy",
	Doc:  "values of nocopy types (annotated, or containing sync primitives) must not be copied",
	Run:  runNoCopy,
}

// atomicValueTypes are the sync/atomic value types (each embeds noCopy, but
// the explicit list keeps detection independent of stdlib internals).
var atomicValueTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

func runNoCopy(pass *Pass) {
	c := &noCopyChecker{pass: pass, memo: map[types.Type]int{}}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if def, ok := info.Defs[fd.Name].(*types.Func); ok {
				if sig, ok := def.Type().(*types.Signature); ok {
					c.checkSignature(fd, sig)
				}
			}
			if fd.Body != nil {
				inspectWithStack(fd.Body, c.check)
			}
		}
	}
}

type noCopyChecker struct {
	pass *Pass
	memo map[types.Type]int // 0 unvisited, 1 in progress, 2 no, 3 yes
}

// isNoCopy reports whether values of t must not be copied.
func (c *noCopyChecker) isNoCopy(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	switch c.memo[t] {
	case 1, 2:
		return false // cycle or known-copyable
	case 3:
		return true
	}
	c.memo[t] = 1
	res := c.isNoCopyUncached(t)
	if res {
		c.memo[t] = 3
	} else {
		c.memo[t] = 2
	}
	return res
}

func (c *noCopyChecker) isNoCopyUncached(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			if c.pass.Prog.Index.NoCopy[obj.Pkg().Path()+"."+obj.Name()] {
				return true
			}
			if obj.Pkg().Path() == "sync/atomic" && atomicValueTypes[obj.Name()] {
				return true
			}
		}
		if hasLockUnlock(t) {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for f := range u.Fields() {
			if c.isNoCopy(f.Type()) {
				return true
			}
		}
	case *types.Array:
		return c.isNoCopy(u.Elem())
	}
	return false
}

// hasLockUnlock implements the vet convention: a type whose pointer method
// set has niladic Lock and Unlock methods is a lock and must not be copied.
func hasLockUnlock(t types.Type) bool {
	pt := types.NewPointer(t)
	return niladicMethod(pt, "Lock") && niladicMethod(pt, "Unlock")
}

func niladicMethod(t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, false, nil, name)
	f, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

// typeDisplay renders a type for a message.
func typeDisplay(t types.Type) string {
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// checkSignature flags value receivers, parameters and results of nocopy
// type on a function declaration.
func (c *noCopyChecker) checkSignature(fd *ast.FuncDecl, sig *types.Signature) {
	if recv := sig.Recv(); recv != nil && c.copiesValue(recv.Type()) {
		name := recv.Name()
		if name == "" || name == "_" {
			name = typeDisplay(recv.Type())
		}
		c.pass.Reportf(recv.Pos(), "value receiver %s copies nocopy type %s", name, typeDisplay(recv.Type()))
	}
	c.checkTuple(sig)
}

// checkTuple flags value params/results (shared with FuncLit signatures).
func (c *noCopyChecker) checkTuple(sig *types.Signature) {
	for p := range sig.Params().Variables() {
		if c.copiesValue(p.Type()) {
			c.pass.Reportf(p.Pos(), "parameter %s copies nocopy type %s", p.Name(), typeDisplay(p.Type()))
		}
	}
	for r := range sig.Results().Variables() {
		if c.copiesValue(r.Type()) {
			c.pass.Reportf(r.Pos(), "result copies nocopy type %s", typeDisplay(r.Type()))
		}
	}
}

// copiesValue reports whether a slot of type t holds a nocopy value by
// value (pointers, slices, maps of nocopy types are fine).
func (c *noCopyChecker) copiesValue(t types.Type) bool {
	if t == nil {
		return false
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return false
	}
	return c.isNoCopy(t)
}

// valueRead reports whether e reads an existing value (as opposed to
// creating one): identifiers, field selections, indexing, dereference.
func valueRead(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func (c *noCopyChecker) check(n ast.Node, stack []ast.Node) {
	info := c.pass.Pkg.Info
	switch e := n.(type) {
	case *ast.FuncLit:
		if sig, ok := types.Unalias(info.Types[e].Type).(*types.Signature); ok {
			c.checkTuple(sig)
		}
	case *ast.AssignStmt:
		if len(e.Lhs) != len(e.Rhs) {
			return
		}
		for i, rhs := range e.Rhs {
			if _, blank := blankIdent(e.Lhs[i]); blank {
				continue
			}
			if valueRead(rhs) && c.copiesValue(exprType(info, rhs)) {
				c.pass.Reportf(rhs.Pos(), "assignment copies nocopy type %s", typeDisplay(exprType(info, rhs)))
			}
		}
	case *ast.ValueSpec:
		for _, rhs := range e.Values {
			if valueRead(rhs) && c.copiesValue(exprType(info, rhs)) {
				c.pass.Reportf(rhs.Pos(), "assignment copies nocopy type %s", typeDisplay(exprType(info, rhs)))
			}
		}
	case *ast.RangeStmt:
		if e.Value == nil {
			return
		}
		if _, blank := blankIdent(e.Value); blank {
			return
		}
		vt := exprType(info, e.Value)
		if vt == nil {
			// With := the value ident is a definition, not a typed expr.
			if id, ok := ast.Unparen(e.Value).(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					vt = obj.Type()
				}
			}
		}
		if c.copiesValue(vt) {
			c.pass.Reportf(e.Value.Pos(), "range value copies nocopy type %s", typeDisplay(vt))
		}
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
			return
		}
		for _, arg := range e.Args {
			if valueRead(arg) && c.copiesValue(exprType(info, arg)) {
				c.pass.Reportf(arg.Pos(), "argument copies nocopy type %s", typeDisplay(exprType(info, arg)))
			}
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok || sel.Kind() != types.MethodVal {
			return
		}
		if parent, ok := parentOf(stack).(*ast.CallExpr); ok && ast.Unparen(parent.Fun) == e {
			return // ordinary method call
		}
		f, ok := sel.Obj().(*types.Func)
		if !ok {
			return
		}
		msig, ok := f.Type().(*types.Signature)
		if !ok || msig.Recv() == nil {
			return
		}
		rt := msig.Recv().Type()
		if _, isPtr := types.Unalias(rt).(*types.Pointer); isPtr {
			return // method value binds &x: no copy
		}
		if c.copiesValue(rt) {
			c.pass.Reportf(e.Pos(), "method value copies nocopy receiver %s", typeDisplay(rt))
		}
	}
}

func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func blankIdent(e ast.Expr) (*ast.Ident, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return id, ok && id.Name == "_"
}
