package analysis

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestDirectivesFixture pins the validator's findings over the seeded
// fixture. The findings land on the directive comments themselves, so the
// expectations are listed here (keyed by the directive text on the flagged
// line) instead of as // want comments — a line cannot hold both the
// offending comment and a want comment.
func TestDirectivesFixture(t *testing.T) {
	prog, err := LoadFixtureDir("testdata/directives")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range prog.Packages {
		for _, e := range pkg.Errs {
			t.Fatalf("load error: %v", e)
		}
	}
	expected := map[string]string{
		"//wikisearch:hotpath":  `misplaced directive //wikisearch:hotpath: applies to func declarations, found on a field`,
		"//wikisearch:hotpth":   `unknown directive //wikisearch:hotpth`,
		"// wikisearch:hotpath": `malformed directive "// wikisearch:hotpath"`,
		"//wikisearch:allocok":  `misplaced directive //wikisearch:allocok: applies to line declarations, found on a type`,
		"//wikisearch:nocopy":   `misplaced directive //wikisearch:nocopy: applies to type declarations, found on a field`,
		"//wikisearch:writer":   `misplaced directive //wikisearch:writer: applies to func declarations, found on a type`,
	}
	diags := RunAnalyzers(prog, All())
	lineText := fixtureLines(t, prog)
	seen := map[string]bool{}
	for _, d := range diags {
		if d.Analyzer != "directives" {
			t.Errorf("unexpected %s finding: %s", d.Analyzer, d.Message)
			continue
		}
		line := strings.TrimSpace(lineText[prog.Fset.Position(d.Pos).Line])
		want, ok := expected[line]
		if !ok {
			t.Errorf("unexpected directives finding on %q: %s", line, d.Message)
			continue
		}
		if !regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(d.Message) {
			t.Errorf("finding on %q = %q, want it to contain %q", line, d.Message, want)
		}
		seen[line] = true
	}
	for line := range expected {
		if !seen[line] {
			t.Errorf("no directives finding on line %q", line)
		}
	}
}

// fixtureLines returns the 1-indexed source lines of the single fixture file.
func fixtureLines(t *testing.T, prog *Program) []string {
	t.Helper()
	if len(prog.Packages) != 1 || len(prog.Packages[0].Files) != 1 {
		t.Fatalf("expected a single-file fixture")
	}
	pos := prog.Fset.Position(prog.Packages[0].Files[0].Pos())
	data, err := os.ReadFile(pos.Filename)
	if err != nil {
		t.Fatal(err)
	}
	return append([]string{""}, strings.Split(string(data), "\n")...)
}
