package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// The result cache makes warm `make lint` cheap: analyzing the module means
// parsing and type-checking every package plus its stdlib imports (seconds),
// while hashing the source tree is milliseconds. The key covers everything
// the findings depend on — every .go file (testdata included, so analyzer
// and fixture edits invalidate too), go.mod, the pattern list, the analyzer
// set, the Go version and a schema tag — so a hit can only replay findings
// that a fresh run would reproduce byte for byte.
const cacheSchema = "wikilint-cache-v1"

// CachedDiagnostic is one finding with its position resolved to
// file/line/column, the serializable form stored in the result cache and
// consumed by the output formatters.
type CachedDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// ResolveDiagnostics renders raw diagnostics into their serializable
// positioned form, with File relative to the module root when possible.
func ResolveDiagnostics(prog *Program, diags []Diagnostic) []CachedDiagnostic {
	out := make([]CachedDiagnostic, 0, len(diags))
	for _, d := range diags {
		p := prog.Fset.Position(d.Pos)
		file := p.Filename
		if prog.ModuleDir != "" {
			if rel, err := filepath.Rel(prog.ModuleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		out = append(out, CachedDiagnostic{
			File: file, Line: p.Line, Col: p.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	return out
}

// FindModuleDir returns the root of the module enclosing dir.
func FindModuleDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	modDir, _, err := findModule(abs)
	return modDir, err
}

// CacheKey hashes everything a run's findings depend on and returns the
// hex-encoded digest.
func CacheKey(moduleDir string, patterns []string, analyzers []*Analyzer) (string, error) {
	h := sha256.New()
	io.WriteString(h, cacheSchema+"\n")
	io.WriteString(h, runtime.Version()+"\n")
	for _, p := range patterns {
		fmt.Fprintf(h, "pat %s\n", p)
	}
	for _, a := range analyzers {
		fmt.Fprintf(h, "analyzer %s\n", a.Name)
	}
	var files []string
	err := filepath.WalkDir(moduleDir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != moduleDir && (strings.HasPrefix(name, ".") || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") || d.Name() == "go.mod" {
			files = append(files, p)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(files)
	for _, p := range files {
		data, err := os.ReadFile(p)
		if err != nil {
			return "", err
		}
		rel, err := filepath.Rel(moduleDir, p)
		if err != nil {
			rel = p
		}
		fmt.Fprintf(h, "file %s %d\n", filepath.ToSlash(rel), len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// DefaultCacheDir returns the per-user wikilint cache directory.
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	return filepath.Join(base, "wikilint")
}

// LookupCache returns the findings stored under key, or found=false on any
// miss or decode problem (a corrupt entry is just a miss).
func LookupCache(cacheDir, key string) (diags []CachedDiagnostic, found bool) {
	data, err := os.ReadFile(filepath.Join(cacheDir, key+".json"))
	if err != nil {
		return nil, false
	}
	if json.Unmarshal(data, &diags) != nil {
		return nil, false
	}
	return diags, true
}

// SaveCache stores the findings under key. Best-effort: the entry is
// regenerated on the next miss, so callers may ignore the error.
func SaveCache(cacheDir, key string, diags []CachedDiagnostic) error {
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return err
	}
	if diags == nil {
		diags = []CachedDiagnostic{}
	}
	data, err := json.Marshal(diags)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(cacheDir, key+".json"), data, 0o644) //wikisearch:volatile cache entry, regenerated on the next miss
}
