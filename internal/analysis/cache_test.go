package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// writeModule lays out a throwaway module with one package.
func writeModule(t *testing.T, dir, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module cachetest\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

const dirtySrc = `package main

import "os"

func report(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
`

const cleanSrc = `package main

import "os"

func report(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) //wikisearch:volatile throwaway report
}
`

// TestCacheInvalidation proves the content-hash cache replays findings on a
// hit and re-analyzes after a source edit: the key must change when a file
// changes, the stale entry must not be served for the new key, and a fresh
// run over the edited tree must produce the new result.
func TestCacheInvalidation(t *testing.T) {
	mod := t.TempDir()
	cacheDir := t.TempDir()
	writeModule(t, mod, dirtySrc)
	analyzers := All()
	patterns := []string{"./..."}

	run := func() []CachedDiagnostic {
		prog, err := LoadPackages(mod, patterns)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range prog.Packages {
			for _, e := range pkg.Errs {
				t.Fatalf("load error: %v", e)
			}
		}
		return ResolveDiagnostics(prog, RunAnalyzers(prog, analyzers))
	}

	key1, err := CacheKey(mod, patterns, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if _, hit := LookupCache(cacheDir, key1); hit {
		t.Fatal("empty cache reported a hit")
	}
	diags1 := run()
	if len(diags1) != 1 || diags1[0].Analyzer != "durability" {
		t.Fatalf("want one durability finding from the dirty module, got %+v", diags1)
	}
	if err := SaveCache(cacheDir, key1, diags1); err != nil {
		t.Fatal(err)
	}
	cached, hit := LookupCache(cacheDir, key1)
	if !hit || len(cached) != 1 || cached[0] != diags1[0] {
		t.Fatalf("cache replay mismatch: hit=%v got %+v want %+v", hit, cached, diags1)
	}

	// Edit the file: the key must change so the next run re-analyzes.
	writeModule(t, mod, cleanSrc)
	key2, err := CacheKey(mod, patterns, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if key2 == key1 {
		t.Fatal("cache key unchanged after editing a source file")
	}
	if _, hit := LookupCache(cacheDir, key2); hit {
		t.Fatal("edited module hit the stale cache entry")
	}
	diags2 := run()
	if len(diags2) != 0 {
		t.Fatalf("want clean re-analysis after the fix, got %+v", diags2)
	}
	if err := SaveCache(cacheDir, key2, diags2); err != nil {
		t.Fatal(err)
	}
	cached2, hit := LookupCache(cacheDir, key2)
	if !hit || len(cached2) != 0 {
		t.Fatalf("clean entry replay mismatch: hit=%v got %+v", hit, cached2)
	}

	// The old entry is still intact under its own key.
	if old, hit := LookupCache(cacheDir, key1); !hit || len(old) != 1 {
		t.Fatalf("original entry lost: hit=%v got %+v", hit, old)
	}
}

// TestCacheKeyCoversAnalyzerSet proves enabling a different analyzer set
// cannot replay results computed under another.
func TestCacheKeyCoversAnalyzerSet(t *testing.T) {
	mod := t.TempDir()
	writeModule(t, mod, cleanSrc)
	all, err := CacheKey(mod, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	subset, err := CacheKey(mod, []string{"./..."}, All()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if all == subset {
		t.Fatal("cache key ignores the analyzer set")
	}
	other, err := CacheKey(mod, []string{"./internal/..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	if all == other {
		t.Fatal("cache key ignores the pattern list")
	}
}
