package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicFieldAnalyzer enforces the //wikisearch:atomic field discipline: a
// field so annotated holds lock-free shared state (the node-keyword matrix
// words, the frontier bitset words), and every element access must go
// through sync/atomic — a plain read of a concurrently-written word is a
// data race under the Go memory model even when all writers write the same
// value (the paper's monotone-update argument is only sound on top of
// atomic accesses).
//
// Allowed uses of an annotated field F:
//
//   - &x.F[i] (or &x.F for scalar fields) passed to a sync/atomic function;
//   - aliasing into a local — p := &x.F[i], s := x.F, s := x.F[a:b] — whose
//     own uses are then checked under the same discipline;
//   - len(x.F) / cap(x.F) and comparisons against nil (header reads);
//   - composite-literal initialization (the object is not shared yet);
//   - anything inside a function annotated //wikisearch:exclusive, whose
//     documentation must state the exclusive-access contract;
//   - returning the field (or a re-slice) from a function annotated
//     //wikisearch:atomicalias; locals initialized from such a function's
//     result inherit the discipline at the caller.
//
// Everything else — plain indexing, plain writes, range loops, aliases
// escaping into fields or calls — is reported.
var AtomicFieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc:  "annotated atomic fields must only be accessed via sync/atomic",
	Run:  runAtomicField,
}

// taintKind classifies a local that aliases atomic storage.
type taintKind int

const (
	taintSlice taintKind = iota + 1 // slice of atomic words
	taintPtr                        // pointer to one atomic word
)

func runAtomicField(pass *Pass) {
	ix := pass.Prog.Index
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			dirs := ix.funcDirectives(fd)
			if dirs["exclusive"] {
				continue
			}
			c := &atomicChecker{pass: pass, fn: fd, aliasOK: dirs["atomicalias"]}
			c.gatherTaints(fd.Body)
			inspectWithStack(fd.Body, c.check)
		}
	}
}

type atomicChecker struct {
	pass    *Pass
	fn      *ast.FuncDecl
	aliasOK bool // enclosing func is //wikisearch:atomicalias
	taints  map[types.Object]taintKind
}

// atomicFieldKey returns the index key of the field a selector resolves to,
// or "" when it is not an annotated field.
func (c *atomicChecker) atomicFieldKey(sel *ast.SelectorExpr) string {
	s := c.pass.Pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return ""
	}
	recv := types.Unalias(s.Recv())
	if p, ok := recv.(*types.Pointer); ok {
		recv = types.Unalias(p.Elem())
	}
	key := namedKey(recv)
	if key == "" {
		return ""
	}
	key += "." + s.Obj().Name()
	if !c.pass.Prog.Index.Atomic[key] {
		return ""
	}
	return key
}

// isAtomicAliasCall reports whether e is a call to an //wikisearch:atomicalias
// function.
func (c *atomicChecker) isAtomicAliasCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return c.pass.Prog.Index.Alias[keyOf(calleeOf(c.pass.Pkg.Info, call))]
}

// isTaintedIdent reports whether e is an identifier carrying the given taint.
func (c *atomicChecker) isTaintedIdent(e ast.Expr, kind taintKind) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && c.taints[c.pass.Pkg.Info.Uses[id]] == kind
}

// isAtomicSliceExpr reports whether e designates atomic word storage as a
// slice: an annotated field selector, a tainted local, or a re-slice of one.
func (c *atomicChecker) isAtomicSliceExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return c.atomicFieldKey(x) != ""
	case *ast.Ident:
		return c.isTaintedIdent(x, taintSlice)
	case *ast.SliceExpr:
		return c.isAtomicSliceExpr(x.X)
	}
	return false
}

// isAtomicAddr reports whether e is &S[i] for atomic slice storage S — an
// expression producing a pointer into atomic storage.
func (c *atomicChecker) isAtomicAddr(e ast.Expr) bool {
	un, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	idx, ok := ast.Unparen(un.X).(*ast.IndexExpr)
	if !ok {
		return false
	}
	return c.isAtomicSliceExpr(idx.X)
}

// gatherTaints records locals that alias atomic storage: slices assigned
// from atomicalias calls, from the field itself or a re-slice, and pointers
// assigned from &storage[i]. Two sweeps propagate through chained
// assignments.
func (c *atomicChecker) gatherTaints(body *ast.BlockStmt) {
	c.taints = map[types.Object]taintKind{}
	info := c.pass.Pkg.Info
	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		obj := objOf(lhs)
		if obj == nil {
			return
		}
		switch {
		case c.isAtomicAliasCall(rhs) || c.isAtomicSliceExpr(rhs):
			c.taints[obj] = taintSlice
		case c.isAtomicAddr(rhs):
			c.taints[obj] = taintPtr
		}
	}
	for range 2 {
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						mark(st.Lhs[i], st.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i := range st.Names {
						mark(st.Names[i], st.Values[i])
					}
				}
			}
			return true
		})
	}
}

// check inspects one node with its ancestor stack.
func (c *atomicChecker) check(n ast.Node, stack []ast.Node) {
	info := c.pass.Pkg.Info
	switch e := n.(type) {
	case *ast.SelectorExpr:
		key := c.atomicFieldKey(e)
		if key == "" {
			return
		}
		c.checkAccess(e, stack, "atomic field "+shortFieldName(key), taintSlice)
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return
		}
		kind, ok := c.taints[obj]
		if !ok {
			return
		}
		if isAssignLHS(e, stack) {
			return // rebinding the local, not touching the storage
		}
		c.checkAccess(e, stack, e.Name+" (aliases atomic storage)", kind)
	case *ast.CallExpr:
		if !c.isAtomicAliasCall(e) {
			return
		}
		switch parentOf(stack).(type) {
		case *ast.AssignStmt, *ast.ValueSpec:
			return // taint-tracked at the caller
		case *ast.ReturnStmt:
			if c.aliasOK {
				return
			}
		}
		c.pass.Reportf(e.Pos(),
			"result of atomicalias call escapes without the atomic discipline (assign it to a local or annotate the enclosing function //wikisearch:atomicalias)")
	}
}

// checkAccess validates one use of an expression that designates atomic
// storage, climbing the wrapper chain [SliceExpr]* [IndexExpr] [&] to the
// consuming context.
func (c *atomicChecker) checkAccess(e ast.Expr, stack []ast.Node, what string, kind taintKind) {
	i := len(stack) - 2
	cur := ast.Node(e)
	skipWrappers := func() {
		for i >= 0 {
			switch p := stack[i].(type) {
			case *ast.ParenExpr:
				if p.X == cur {
					cur = p
					i--
					continue
				}
			case *ast.SliceExpr:
				// Re-slicing atomic word storage keeps the alias a slice.
				if kind == taintSlice && p.X == cur {
					cur = p
					i--
					continue
				}
			}
			break
		}
	}
	skipWrappers()
	indexed := false
	if kind == taintSlice && i >= 0 {
		if ix, ok := stack[i].(*ast.IndexExpr); ok && ix.X == cur {
			cur = ix
			indexed = true
			i--
			skipWrappers()
		}
	}
	addressed := false
	if i >= 0 {
		if un, ok := stack[i].(*ast.UnaryExpr); ok && un.Op == token.AND && un.X == cur {
			cur = un
			addressed = true
			i--
			skipWrappers()
		}
	}
	if i >= 0 {
		switch p := stack[i].(type) {
		case *ast.CallExpr:
			if argOf(p, cur) {
				switch {
				case isSyncAtomicCall(c.pass.Pkg.Info, p) && (addressed || kind == taintPtr && !indexed):
					return // atomic access
				case isLenCap(c.pass.Pkg.Info, p) && !indexed && !addressed:
					return // len/cap reads the header only
				}
			}
		case *ast.BinaryExpr:
			// Nil comparisons read the header only.
			if !indexed && !addressed && (p.Op == token.EQL || p.Op == token.NEQ) {
				other := p.X
				if p.X == cur {
					other = p.Y
				}
				if isNil(c.pass.Pkg.Info, other) {
					return
				}
			}
		case *ast.ReturnStmt:
			if !indexed && !addressed && c.aliasOK {
				return // //wikisearch:atomicalias: the caller inherits the discipline
			}
		case *ast.AssignStmt:
			// Alias creation into a plain local — p := &x.F[i], s := x.F,
			// s := x.F[a:b] — is allowed: the local is taint-tracked, so
			// the alias stays under the discipline.
			if addressed == indexed && len(p.Lhs) == len(p.Rhs) {
				for j, rhs := range p.Rhs {
					if ast.Unparen(rhs) == cur || rhs == cur {
						if _, ok := ast.Unparen(p.Lhs[j]).(*ast.Ident); ok {
							return
						}
					}
				}
			}
		case *ast.ValueSpec:
			if addressed == indexed {
				return // var s = x.F: names are idents, taint-tracked
			}
		case *ast.RangeStmt:
			if p.X == cur {
				c.pass.Reportf(e.Pos(), "plain read of %s; use sync/atomic", what)
				return
			}
		}
	}
	switch {
	case isWriteTarget(cur, stack, i):
		c.pass.Reportf(e.Pos(), "plain write to %s; use sync/atomic", what)
	case indexed:
		c.pass.Reportf(e.Pos(), "plain read of %s; use sync/atomic", what)
	default:
		c.pass.Reportf(e.Pos(), "alias of %s escapes; only sync/atomic access is allowed", what)
	}
}

// shortFieldName renders "pkg/path.Type.field" as "Type.field".
func shortFieldName(key string) string {
	dots := 0
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '.' {
			dots++
			if dots == 2 {
				return key[i+1:]
			}
		}
	}
	return key
}

// parentOf returns the node above the current one, or nil.
func parentOf(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}

// argOf reports whether e is one of call's arguments.
func argOf(call *ast.CallExpr, e ast.Node) bool {
	for _, a := range call.Args {
		if a == e || ast.Unparen(a) == e {
			return true
		}
	}
	return false
}

// isAssignLHS reports whether ident e is a direct assignment target.
func isAssignLHS(e ast.Expr, stack []ast.Node) bool {
	p, ok := parentOf(stack).(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range p.Lhs {
		if ast.Unparen(lhs) == e {
			return true
		}
	}
	return false
}

// isWriteTarget reports whether cur (below stack index i) is assigned to or
// incremented.
func isWriteTarget(cur ast.Node, stack []ast.Node, i int) bool {
	if i < 0 {
		return false
	}
	switch p := stack[i].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == cur {
				return true
			}
		}
	case *ast.IncDecStmt:
		return ast.Unparen(p.X) == cur
	}
	return false
}

// isSyncAtomicCall reports whether call invokes a sync/atomic function.
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeOf(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic"
}

// isLenCap reports whether call is builtin len or cap.
func isLenCap(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && (b.Name() == "len" || b.Name() == "cap")
}

// isNil reports whether e is the untyped nil.
func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}
