// Package ctxhandler is a wikilint test fixture: each want comment is an
// expected ctxhandler finding on that line.
package ctxhandler

import (
	"context"
	"net/http"
	"time"
)

// Engine is a stand-in for the search engine.
type Engine struct{}

// SearchContext runs a query under ctx.
func (e *Engine) SearchContext(ctx context.Context, q string) int {
	_ = ctx
	return len(q)
}

// Search runs a query detached from any caller context.
//
//wikisearch:bgcontext
func (e *Engine) Search(q string) int {
	return e.SearchContext(context.Background(), q)
}

// Good threads the request context.
func Good(e *Engine, w http.ResponseWriter, r *http.Request) {
	_ = e.SearchContext(r.Context(), r.URL.Query().Get("q"))
}

// Derived wraps the request context with a timeout.
func Derived(e *Engine, w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	_ = e.SearchContext(ctx, "q")
}

// Rewrapped derives twice and stores intermediate contexts.
func Rewrapped(e *Engine, w http.ResponseWriter, r *http.Request) {
	base := r.Context()
	ctx := context.WithValue(base, "k", "v")
	_ = e.SearchContext(ctx, "q")
}

// Background drops the request context.
func Background(e *Engine, w http.ResponseWriter, r *http.Request) {
	_ = e.SearchContext(context.Background(), "q") // want `handler passes Background`
}

// Todo drops the request context.
func Todo(e *Engine, w http.ResponseWriter, r *http.Request) {
	_ = e.SearchContext(context.TODO(), "q") // want `handler passes TODO`
}

// Blocking calls the bgcontext variant.
func Blocking(e *Engine, w http.ResponseWriter, r *http.Request) {
	_ = e.Search("q") // want `handler calls Engine\.Search, which supplies context\.Background`
}

// Detached builds a context unrelated to the request.
func Detached(e *Engine, w http.ResponseWriter, r *http.Request) {
	ctx := context.Background()
	_ = e.SearchContext(ctx, "q") // want `handler passes a context not derived from the request`
}

// NilCtx passes nil.
func NilCtx(e *Engine, w http.ResponseWriter, r *http.Request) {
	_ = e.SearchContext(nil, "q") // want `handler passes a nil context`
}
