// Package singlewriter is a wikilint test fixture: each want comment is an
// expected singlewriter finding on that line.
package singlewriter

// Ring is a single-writer event ring: Record owns the slots and cursor,
// Drain is the blessed read-side accessor.
type Ring struct {
	//wikisearch:singlewriter
	slots []int64
	//wikisearch:singlewriter
	pos int
}

// NewRing constructs the ring; composite literals are always fine (the
// value is not shared yet).
func NewRing(n int) *Ring {
	return &Ring{slots: make([]int64, n)}
}

// Record is the owning writer: full access.
//
//wikisearch:writer
func (r *Ring) Record(v int64) {
	r.slots[r.pos%len(r.slots)] = v
	r.pos++
}

// Drain reads through the blessed accessor.
//
//wikisearch:drain
func (r *Ring) Drain(dst []int64) []int64 {
	for i := 0; i < r.pos && i < len(r.slots); i++ {
		dst = append(dst, r.slots[i])
	}
	return dst
}

// Peek reads outside the accessors.
func (r *Ring) Peek() int64 {
	return r.slots[0] // want `read of single-writer field Ring.slots outside a //wikisearch:drain accessor`
}

// Clobber writes outside the owner.
func (r *Ring) Clobber() {
	r.pos = 0 // want `write to single-writer field Ring.pos outside its //wikisearch:writer owner`
}

// Bump increments outside the owner.
func (r *Ring) Bump() {
	r.pos++ // want `write to single-writer field Ring.pos outside its //wikisearch:writer owner`
}

// DrainBad mutates inside a read-only accessor.
//
//wikisearch:drain
func (r *Ring) DrainBad() {
	r.pos = 0 // want `write to single-writer field Ring.pos inside a //wikisearch:drain accessor`
}

// Alias hands out write capability.
func (r *Ring) Alias() *int {
	return &r.pos // want `address of single-writer field Ring.pos taken outside its //wikisearch:writer owner`
}
