// Package lifecycle is a wikilint test fixture: each want comment is an
// expected lifecycle finding on that line.
package lifecycle

import (
	"context"
	"sync"
)

func spin() {}

// Leak launches a literal goroutine with no shutdown tie.
func Leak() {
	go func() { // want `goroutine is not tied to a shutdown mechanism`
		spin()
	}()
}

// LeakNamed launches a resolvable callee with no shutdown tie.
func LeakNamed() {
	go spin() // want `goroutine is not tied to a shutdown mechanism`
}

// Dynamic launches through a function value: unresolvable, must be marked.
func Dynamic(f func()) {
	go f() // want `goroutine body cannot be resolved statically`
}

// Joined signals a WaitGroup: the launcher can join it.
func Joined(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		spin()
	}()
}

// CtxTied observes cancellation.
func CtxTied(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// worker drains a channel until the sender closes it.
func worker(ch chan int) {
	for range ch {
	}
}

// PoolJoin launches a resolvable callee whose body ranges over a channel.
func PoolJoin(ch chan int) {
	go worker(ch)
}

// Reports rendezvouses with the receiver through a send.
func Reports(out chan<- error) {
	go func() {
		out <- nil
	}()
}

// DaemonLine uses the line escape.
func DaemonLine() {
	go spin() //wikisearch:daemon fixture: intentionally unjoined
}

// DaemonFunc launches daemons by design; the function-level escape covers
// every go statement inside.
//
//wikisearch:daemon
func DaemonFunc() {
	go spin()
}
