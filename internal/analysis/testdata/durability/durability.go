// Package durability is a wikilint test fixture: each want comment is an
// expected durability finding on that line.
package durability

import "os"

// WriteBad creates a file, never syncs it, and discards the Close error.
func WriteBad(path string, data []byte) error {
	f, err := os.Create(path) // want `file opened for writing but never fsynced`
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Close() // want `discarded error from Close on a written file`
	return nil
}

// WriteGood follows the fsync-atomic-write contract: sync before close,
// every error observed, the error-path close annotated.
func WriteGood(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() //wikisearch:volatile error path: the write already failed
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //wikisearch:volatile error path: the sync already failed
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(path, path+".done"); err != nil {
		return err
	}
	return nil
}

// Move discards the commit error of the atomic-write rename.
func Move(src, dst string) {
	os.Rename(src, dst) // want `discarded error from os.Rename`
}

// WriteFileBad uses the helper that never fsyncs.
func WriteFileBad(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile does not fsync`
}

// Report is intentionally non-durable and says so.
func Report(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) //wikisearch:volatile fixture report, regenerated on every run
}

// Scratch opts a whole written file out of the contract.
func Scratch(path string) error {
	f, err := os.Create(path) //wikisearch:volatile scratch file, removed after use
	if err != nil {
		return err
	}
	f.Write([]byte("tmp"))
	if err := f.Close(); err != nil {
		return err
	}
	return os.Remove(path)
}

// ReadOnly opens without write intent: not tracked by the contract.
func ReadOnly(path string) ([]byte, error) {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 8)
	_, err = f.Read(buf)
	return buf, err
}

// Append opens with explicit write flags.
func Append(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644) // want `file opened for writing but never fsynced`
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
