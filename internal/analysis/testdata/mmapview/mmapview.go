// Package mmapview is a wikilint test fixture: each want comment is an
// expected mmapview finding on that line.
package mmapview

import "unsafe"

// Mapping owns the mapped bytes; its Close anchors the holder chain.
//
//wikisearch:viewholder
type Mapping struct {
	data  []byte
	words []int64 // view field: allowed, the holder reaches Close
	dict  *Dict
}

// Close releases the mapping.
func (m *Mapping) Close() error {
	m.data = nil
	return nil
}

// Dict has no Close of its own but is held by Mapping, so the owner's
// Close reaches it.
//
//wikisearch:viewholder
type Dict struct {
	names []string
}

// Orphan has no Close and no anchored owner.
//
//wikisearch:viewholder
type Orphan struct { // want `viewholder Orphan is not reachable from any Close`
	words []int64
}

// plain is an ordinary struct: views must not be stored into it.
type plain struct {
	words []int64
}

// Words mints a zero-copy view over the mapping: the blessed helper.
//
//wikisearch:mmapview
func Words(m *Mapping, n int) []int64 {
	return unsafe.Slice((*int64)(unsafe.Pointer(&m.data[0])), n)
}

// BadMint forges a view outside an annotated minter.
func BadMint(m *Mapping, n int) {
	_ = unsafe.Slice((*int64)(unsafe.Pointer(&m.data[0])), n) // want `unsafe view minted outside a //wikisearch:mmapview function`
}

// LocalUse keeps the view function-scoped: fine.
func LocalUse(m *Mapping, n int) int64 {
	v := Words(m, n)
	sum := int64(0)
	for _, x := range v {
		sum += x
	}
	return sum
}

// StoreHolder parks views inside viewholders: fine on both paths.
func StoreHolder(m *Mapping, n int) {
	m.words = Words(m, n)
	m.dict = &Dict{}
}

// StorePlain leaks a view into a non-holder field.
func StorePlain(m *Mapping, n int) *plain {
	p := &plain{}
	p.words = Words(m, n) // want `mmap view stored into field of plain`
	return p
}

// LiteralPlain leaks a view through a composite literal.
func LiteralPlain(m *Mapping, n int) *plain {
	return &plain{
		words: Words(m, n), // want `mmap view stored into composite literal of plain`
	}
}

var global []int64

// StoreGlobal leaks a view into a package-level variable.
func StoreGlobal(m *Mapping, n int) {
	global = Words(m, n) // want `mmap view stored into package-level variable global`
}

// Leak returns a view from an unannotated function.
func Leak(m *Mapping, n int) []int64 {
	v := Words(m, n)
	return v // want `mmap view returned from a function not annotated //wikisearch:mmapview`
}

// Head re-slices and returns: annotated, so the caller inherits tracking.
//
//wikisearch:mmapview
func Head(m *Mapping, n int) []int64 {
	return Words(m, n)[:1]
}

// Clobber writes through the view into read-only pages.
func Clobber(m *Mapping, n int) {
	v := Words(m, n)
	v[0] = 1 // want `write through mmap view v`
}
