// Package hotpathalloc is a wikilint test fixture: each want comment is an
// expected hotpathalloc finding on that line.
package hotpathalloc

import (
	"fmt"
	"sort"
	"sync"
)

// Ring is a fixed-capacity buffer reused across queries.
type Ring struct {
	mu  sync.Mutex
	buf []int
}

// Push appends into the amortized buffer; self-append is allowed.
//
//wikisearch:hotpath
func (r *Ring) Push(v int) {
	r.mu.Lock()
	r.buf = append(r.buf, v)
	r.mu.Unlock()
}

// Grow allocates on the hot path.
//
//wikisearch:hotpath
func (r *Ring) Grow(n int) {
	r.buf = make([]int, n) // want `hot path function Ring\.Grow: make allocates`
}

// Fresh allocates a new Ring.
//
//wikisearch:hotpath
func Fresh() *Ring {
	return new(Ring) // want `new allocates`
}

// Bind creates a method value on the hot path.
//
//wikisearch:hotpath
func (r *Ring) Bind() func(int) {
	return r.Push // want `method value allocates`
}

// Bad collects one allocating construct per line.
//
//wikisearch:hotpath
func Bad(n int) []int {
	s := []int{1, 2, 3} // want `slice literal allocates`
	m := map[int]int{}  // want `map literal allocates`
	m[n] = 1            // want `map write may allocate`
	p := &Ring{}        // want `&composite literal allocates`
	_ = p
	go helper(n)                  // want `go statement allocates` `goroutine is not tied to a shutdown mechanism`
	fn := func() int { return n } // want `closure captures n and allocates`
	_ = fn
	return append(s, 4) // want `append may reallocate`
}

// Concat allocates a new string.
//
//wikisearch:hotpath
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// Box boxes an int into an interface.
//
//wikisearch:hotpath
func Box(v int) any {
	return v // want `interface conversion boxes a value and allocates`
}

// Bytes converts a string on the hot path.
//
//wikisearch:hotpath
func Bytes(s string) []byte {
	return []byte(s) // want `conversion from string allocates`
}

// Debug prints on the hot path.
//
//wikisearch:hotpath
func Debug(v int) {
	println(v) // want `println allocates`
}

// Spread calls a variadic function without spreading.
//
//wikisearch:hotpath
func Spread(a, b int) int {
	return maxOf(a, b) // want `variadic call allocates its argument slice`
}

// Finish calls a coldpath function (allowed) and an unlisted stdlib
// function (flagged).
//
//wikisearch:hotpath
func Finish(v int) {
	if v < 0 {
		_ = report(v)
	}
	_ = sort.SearchInts(nil, v) // want `call to sort\.SearchInts is not allowlisted`
}

// Transit reaches an unannotated allocating function.
//
//wikisearch:hotpath
func Transit(n int) []int {
	return fill(n)
}

// Warm allocates once behind a documented suppression.
//
//wikisearch:hotpath
func Warm(n int) []int {
	return make([]int, n) //wikisearch:allocok documented one-time warmup
}

// fill is unannotated but reachable from the hot path.
func fill(n int) []int {
	return make([]int, n) // want `function fill \(reachable from hot path\): make allocates`
}

// report formats a result off the hot path.
//
//wikisearch:coldpath diagnostics only
func report(v int) string {
	return fmt.Sprintf("%d", v)
}

func helper(n int) { _ = n }

func maxOf(vs ...int) int {
	best := 0
	for _, v := range vs {
		if v > best {
			best = v
		}
	}
	return best
}
