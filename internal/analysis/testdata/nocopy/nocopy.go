// Package nocopy is a wikilint test fixture: each want comment is an
// expected nocopy finding on that line.
package nocopy

import (
	"sync"
	"sync/atomic"
)

// Buf is pooled state whose backing array is shared with workers.
//
//wikisearch:nocopy
type Buf struct {
	words []uint64
}

// Guarded embeds a mutex, making it nocopy by the vet convention.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Nested contains a nocopy value transitively.
type Nested struct {
	g Guarded
}

// Counter embeds an atomic counter.
type Counter struct {
	hits atomic.Uint64
}

// Size has a value receiver.
func (b Buf) Size() int { // want `value receiver b copies nocopy type Buf`
	return len(b.words)
}

// Reset takes a pointer receiver (fine).
func (b *Buf) Reset() { b.words = b.words[:0] }

// Lock uses the mutex (fine: pointer receiver).
func (g *Guarded) Lock() { g.mu.Lock() }

// Unlock releases the mutex.
func (g *Guarded) Unlock() { g.mu.Unlock() }

// Consume copies its parameter.
func Consume(b Buf) int { // want `parameter b copies nocopy type Buf`
	return len(b.words)
}

// Produce returns a Buf by value.
func Produce() (b Buf) { // want `result copies nocopy type Buf`
	return b
}

// Copy assigns by value through a dereference.
func Copy(src *Buf) {
	local := *src // want `assignment copies nocopy type Buf`
	_ = local
}

// Snapshot copies a struct containing an atomic value.
func Snapshot(c *Counter) {
	snap := *c // want `assignment copies nocopy type Counter`
	_ = snap
}

// Iterate ranges over a slice of Guarded by value.
func Iterate(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want `range value copies nocopy type Guarded`
		total += g.n
	}
	return total
}

// IterateOK ranges by index (fine).
func IterateOK(gs []Guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

// Forward dereferences a transitively-nocopy field into an argument.
func Forward(n *Nested) {
	sink(n.g) // want `argument copies nocopy type Guarded`
}

// Bind binds a value-receiver method.
func Bind(b *Buf) func() int {
	return b.Size // want `method value copies nocopy receiver Buf`
}

// Each builds a callback that takes Guarded by value.
func Each(gs []Guarded) {
	fn := func(g Guarded) int { return g.n } // want `parameter g copies nocopy type Guarded`
	for i := range gs {
		_ = fn(gs[i]) // want `argument copies nocopy type Guarded`
	}
}

func sink(v any) { _ = v }

// Mapping owns an OS memory mapping, like storage's v3 dump mapping: the
// data slice aliases pages that Close unmaps, so a value copy lets the
// original be closed while the copy still hands out views into unmapped
// memory.
//
//wikisearch:nocopy
type Mapping struct {
	data   []byte
	closed bool
}

// Close releases the mapping (pointer receiver: fine).
func (m *Mapping) Close() { m.closed = true }

// Holder embeds a Mapping by value, so it is transitively nocopy.
type Holder struct {
	m Mapping
}

// Snapshot copies the mapping owner.
func SnapshotMapping(m *Mapping) {
	dup := *m // want `assignment copies nocopy type Mapping`
	_ = dup
}

// Spill passes a mapping-holding struct by value.
func Spill(h *Holder) {
	sink(*h) // want `argument copies nocopy type Holder`
}
