// Package directives is a wikilint test fixture for the directives
// validator. Findings land on the directive comments themselves, so the
// expectations live in directivecheck_test.go rather than in want comments
// (a line cannot carry both the offending comment and a want comment).
package directives

import "sync/atomic"

// Counter pairs a valid field directive with an invalid one.
type Counter struct {
	//wikisearch:atomic
	hits uint64
	//wikisearch:hotpath
	miss uint64 // BAD: hotpath is a func directive, found on a field
}

// Incr bumps the counter.
//
//wikisearch:hotpath
func Incr(c *Counter) {
	atomic.AddUint64(&c.hits, 1)
}

// Typo carries a misspelled directive name.
//
//wikisearch:hotpth
func Typo() {}

// Spaced carries a directive detached by whitespace.
//
// wikisearch:hotpath
func Spaced() {}

// Stray puts a line-only directive on a type.
//
//wikisearch:allocok
type Stray struct{}

// Field-level nocopy is stale: the directive applies to types.
type Holder struct {
	//wikisearch:nocopy
	mu int
}

// StrayWriter puts the single-writer owner directive on a type; the
// writer role belongs to func declarations (see mutate.go's compactor).
//
//wikisearch:writer
type StrayWriter struct{}
