// Package atomicfield is a wikilint test fixture: each want comment is an
// expected atomicfield finding on that line.
package atomicfield

import "sync/atomic"

// Flags is a shared, concurrently-updated word array.
type Flags struct {
	//wikisearch:atomic
	words []uint64
}

// NewFlags builds a Flags before it is shared.
//
//wikisearch:exclusive construction precedes publication
func NewFlags(n int) *Flags {
	f := &Flags{words: make([]uint64, (n+63)/64)}
	for i := range f.words {
		f.words[i] = 0
	}
	return f
}

// Words exposes the raw words; callers inherit the atomic discipline.
//
//wikisearch:atomicalias
func (f *Flags) Words() []uint64 {
	return f.words
}

// Set sets bit i atomically.
func (f *Flags) Set(i int) {
	atomic.OrUint64(&f.words[i>>6], 1<<(uint(i)&63))
}

// Spin updates one word through a tracked pointer alias.
func (f *Flags) Spin(i int) {
	p := &f.words[i>>6]
	for {
		old := atomic.LoadUint64(p)
		if atomic.CompareAndSwapUint64(p, old, old|1) {
			return
		}
	}
}

// Len is a header read.
func (f *Flags) Len() int { return len(f.words) }

// Peek reads a word without atomics.
func (f *Flags) Peek(i int) uint64 {
	return f.words[i] // want `plain read of atomic field Flags\.words`
}

// Stomp writes a word without atomics.
func (f *Flags) Stomp(i int) {
	f.words[i] = 0 // want `plain write to atomic field Flags\.words`
}

// Walk ranges over live storage.
func (f *Flags) Walk() uint64 {
	var sum uint64
	for _, w := range f.words { // want `plain read of atomic field Flags\.words`
		sum += w
	}
	return sum
}

// Leak returns raw storage without the atomicalias annotation.
func (f *Flags) Leak() []uint64 {
	return f.words // want `alias of atomic field Flags\.words escapes`
}

// Sum reads every word atomically through a slice alias.
func Sum(f *Flags) uint64 {
	var sum uint64
	words := f.Words()
	for i := 0; i < len(words); i++ {
		sum += atomic.LoadUint64(&words[i])
	}
	return sum
}

// BadSum reads the alias without atomics.
func BadSum(f *Flags) uint64 {
	var sum uint64
	words := f.Words()
	for i := 0; i < len(words); i++ {
		sum += words[i] // want `plain read of words \(aliases atomic storage\)`
	}
	return sum
}

// BadDeref dereferences a word pointer without atomics.
func BadDeref(f *Flags) uint64 {
	p := &f.words[0]
	return *p // want `alias of p \(aliases atomic storage\) escapes`
}

// Escape hands raw storage to an arbitrary callee.
func Escape(f *Flags) {
	consume(f.Words()) // want `result of atomicalias call escapes`
}

func consume(ws []uint64) int { return len(ws) }
