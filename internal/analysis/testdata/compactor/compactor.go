// Package compactor is a wikilint test fixture for the live-mutation
// writer/compactor discipline (mutate.go): delta state owned by annotated
// //wikisearch:writer functions, and a background compact loop that must
// be joined through a stop/done channel pair. Each want comment is an
// expected finding on that line.
package compactor

// Compactor models the mutator: a delta only its writer methods may
// touch, and a background loop folding the delta into the base.
type Compactor struct {
	//wikisearch:singlewriter
	delta []int
	//wikisearch:singlewriter
	published int

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	ticks int // plain field: fine to touch anywhere
}

// New starts the background compactor; the loop is tied to stop and
// joined through done in Close, so lifecycle stays silent.
func New() *Compactor {
	c := &Compactor{
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go c.loop()
	return c
}

// loop waits for ripened deltas until Close signals stop.
//
//wikisearch:writer
func (c *Compactor) loop() {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			return
		case <-c.wake:
			c.compact()
		}
	}
}

// Close stops the loop and joins it.
func (c *Compactor) Close() {
	close(c.stop)
	<-c.done
}

// Apply is the owning writer of the delta.
//
//wikisearch:writer
func (c *Compactor) Apply(v int) {
	c.delta = append(c.delta, v)
	if len(c.delta) > 64 {
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
}

// compact folds and resets the delta; called from the loop, which owns
// the writer role for the whole iteration.
//
//wikisearch:writer
func (c *Compactor) compact() {
	c.published += len(c.delta)
	c.delta = c.delta[:0]
}

// Pending reads through the blessed drain accessor.
//
//wikisearch:drain
func (c *Compactor) Pending() int {
	return len(c.delta)
}

// LeakyNew forgets the stop/done tie: the loop spins forever with no
// join or cancel signal in sight.
func LeakyNew() *Compactor {
	c := &Compactor{}
	go func() { // want `goroutine is not tied to a shutdown mechanism`
		for {
			c.ticks++
		}
	}()
	return c
}

// Rogue mutates the delta outside the annotated writers.
func (c *Compactor) Rogue() {
	c.delta = nil // want `write to single-writer field Compactor.delta outside its //wikisearch:writer owner`
}

// PeekPublished reads outside the drain accessors.
func (c *Compactor) PeekPublished() int {
	return c.published // want `read of single-writer field Compactor.published outside a //wikisearch:drain accessor`
}
