package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MmapViewAnalyzer polices the zero-copy views the v3 dump loader mints over
// mmap'd memory (unsafe.Slice / unsafe.String headers pointing into the
// mapping). A view is only valid while the mapping is alive, so the
// analyzer keeps views from outliving the Close that unmaps them:
//
//   - unsafe.Slice / unsafe.String may only be called inside a function
//     annotated //wikisearch:mmapview (the blessed minting helpers);
//   - a view — the result of a mmapview function or unsafe minting call,
//     tracked through locals and re-slices — may be passed to calls and
//     held in locals freely, but must not be stored into a field of a
//     struct type lacking //wikisearch:viewholder, into a composite
//     literal of such a type, or into a package-level variable;
//   - returning a view is reserved to mmapview functions (the caller then
//     inherits the tracking);
//   - writes through a view (v[i] = x, or indexing a viewholder's field)
//     are flagged: the pages are mapped read-only and writes fault;
//   - every //wikisearch:viewholder type must be droppable: it needs a
//     Close method, or it must appear as a field of an anchored
//     viewholder so the owner's Close reaches it.
var MmapViewAnalyzer = &Analyzer{
	Name: "mmapview",
	Doc:  "unsafe mmap views must stay inside annotated minters and viewholders",
	Run:  runMmapView,
}

func runMmapView(pass *Pass) {
	ix := pass.Prog.Index
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &mmapChecker{pass: pass, minter: ix.funcDirectives(fd)["mmapview"]}
			c.gatherTaints(fd.Body)
			inspectWithStack(fd.Body, c.check)
		}
	}
	reportUnanchoredHolders(pass)
}

type mmapChecker struct {
	pass   *Pass
	minter bool // enclosing func is //wikisearch:mmapview
	taints map[types.Object]bool
}

// isUnsafeViewCall reports whether call is unsafe.Slice or unsafe.String —
// the two builtins that forge a slice/string header over raw memory.
func isUnsafeViewCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	b, ok := info.Uses[sel.Sel].(*types.Builtin)
	if !ok || (b.Name() != "Slice" && b.Name() != "String") {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "unsafe"
}

// mmapCalleeOf resolves a call's static callee like calleeOf, additionally
// stripping explicit generic instantiation (view[float64](...)).
func mmapCalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(f.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(f.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isViewCall reports whether e is a call that produces a view: an unsafe
// minting builtin or a //wikisearch:mmapview function.
func (c *mmapChecker) isViewCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	info := c.pass.Pkg.Info
	if isUnsafeViewCall(info, call) {
		return true
	}
	return c.pass.Prog.Index.MmapView[keyOf(mmapCalleeOf(info, call))]
}

// isViewExpr reports whether e designates a view: a minting call, a tainted
// local, or a re-slice of either.
func (c *mmapChecker) isViewExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return c.taints[c.pass.Pkg.Info.Uses[x]]
	case *ast.CallExpr:
		return c.isViewCall(x)
	case *ast.SliceExpr:
		return c.isViewExpr(x.X)
	}
	return false
}

// gatherTaints records locals holding views. Two sweeps propagate through
// chained assignments.
func (c *mmapChecker) gatherTaints(body *ast.BlockStmt) {
	c.taints = map[types.Object]bool{}
	info := c.pass.Pkg.Info
	mark := func(lhs, rhs ast.Expr) {
		if !c.isViewExpr(rhs) {
			return
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			c.taints[obj] = true
		}
	}
	for range 2 {
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						mark(st.Lhs[i], st.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i := range st.Names {
						mark(st.Names[i], st.Values[i])
					}
				}
			}
			return true
		})
	}
}

func (c *mmapChecker) check(n ast.Node, stack []ast.Node) {
	info := c.pass.Pkg.Info
	switch e := n.(type) {
	case *ast.CallExpr:
		if isUnsafeViewCall(info, e) && !c.minter {
			c.pass.Reportf(e.Pos(),
				"unsafe view minted outside a //wikisearch:mmapview function")
		}
	case *ast.AssignStmt:
		if len(e.Lhs) != len(e.Rhs) {
			return
		}
		for i := range e.Lhs {
			if c.isViewExpr(e.Rhs[i]) {
				c.checkStore(e.Lhs[i])
			}
		}
	case *ast.ReturnStmt:
		if c.minter {
			return
		}
		for _, r := range e.Results {
			if c.isViewExpr(r) {
				c.pass.Reportf(r.Pos(),
					"mmap view returned from a function not annotated //wikisearch:mmapview")
			}
		}
	case *ast.CompositeLit:
		c.checkLiteral(e)
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil || !c.taints[obj] {
			return
		}
		c.checkWriteThrough(e, stack)
	}
}

// checkStore validates the target of an assignment whose RHS is a view:
// locals and slice elements are fine (still function-scoped), fields of
// non-viewholder types and package-level variables let the view outlive the
// mapping.
func (c *mmapChecker) checkStore(lhs ast.Expr) {
	info := c.pass.Pkg.Info
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := info.Defs[l]
		if obj == nil {
			obj = info.Uses[l]
		}
		v, ok := obj.(*types.Var)
		if ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			c.pass.Reportf(lhs.Pos(),
				"mmap view stored into package-level variable %s outlives the mapping", l.Name)
		}
	case *ast.SelectorExpr:
		sel := info.Selections[l]
		if sel == nil || sel.Kind() != types.FieldVal {
			return
		}
		key := recvTypeKey(sel)
		if key == "" || c.pass.Prog.Index.ViewHolder[key] {
			return
		}
		c.pass.Reportf(lhs.Pos(),
			"mmap view stored into field of %s, which is not annotated //wikisearch:viewholder",
			shortTypeName(key))
	}
}

// checkLiteral flags views packed into composite literals of named
// non-viewholder types (anonymous structs and slice/map literals of
// builtin element types stay function-scoped and are fine).
func (c *mmapChecker) checkLiteral(lit *ast.CompositeLit) {
	tv, ok := c.pass.Pkg.Info.Types[lit]
	if !ok {
		return
	}
	t := types.Unalias(tv.Type)
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = types.Unalias(p.Elem())
	}
	key := namedKey(t)
	if key == "" || c.pass.Prog.Index.ViewHolder[key] {
		return
	}
	for _, elt := range lit.Elts {
		v := elt
		if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
			v = kv.Value
		}
		if c.isViewExpr(v) {
			c.pass.Reportf(v.Pos(),
				"mmap view stored into composite literal of %s, which is not annotated //wikisearch:viewholder",
				shortTypeName(key))
		}
	}
}

// checkWriteThrough flags writes through a view-carrying local: the mapped
// pages are read-only, so v[i] = x faults at runtime.
func (c *mmapChecker) checkWriteThrough(e *ast.Ident, stack []ast.Node) {
	i := len(stack) - 2
	cur := ast.Node(e)
	for i >= 0 {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			if p.X == cur {
				cur = p
				i--
				continue
			}
		case *ast.IndexExpr:
			if p.X == cur {
				cur = p
				i--
				continue
			}
		case *ast.SliceExpr:
			if p.X == cur {
				cur = p
				i--
				continue
			}
		}
		break
	}
	if cur == ast.Node(e) {
		return // bare use: reads and passing around are fine
	}
	if isWriteTarget(cur, stack, i) {
		c.pass.Reportf(e.Pos(),
			"write through mmap view %s: the mapped pages are read-only", e.Name)
	}
}

// reportUnanchoredHolders verifies that every viewholder type declared in
// this package is reachable from a Close: it either has a Close method or
// is held as a field by an anchored viewholder.
func reportUnanchoredHolders(pass *Pass) {
	ix := pass.Prog.Index
	anchored := map[string]bool{}
	for key := range ix.ViewHolder {
		if holderHasClose(pass.Prog, key) {
			anchored[key] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for h := range ix.ViewHolder {
			if !anchored[h] {
				continue
			}
			for _, f := range ix.HolderFields[h] {
				if ix.ViewHolder[f] && !anchored[f] {
					anchored[f] = true
					changed = true
				}
			}
		}
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !directivesOf(gd.Doc, ts.Doc, ts.Comment)["viewholder"] {
					continue
				}
				key := pass.Pkg.Path + "." + ts.Name.Name
				if !anchored[key] {
					pass.Reportf(ts.Pos(),
						"viewholder %s is not reachable from any Close (add a Close method or hold it from an anchored viewholder)",
						ts.Name.Name)
				}
			}
		}
	}
}

// holderHasClose reports whether the named type behind a "pkg.Type" key has
// a Close method (value or pointer receiver).
func holderHasClose(prog *Program, key string) bool {
	i := strings.LastIndex(key, ".")
	if i < 0 {
		return false
	}
	pkg := prog.byPath[key[:i]]
	if pkg == nil || pkg.Types == nil {
		return false
	}
	tn, ok := pkg.Types.Scope().Lookup(key[i+1:]).(*types.TypeName)
	if !ok {
		return false
	}
	m, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, pkg.Types, "Close")
	_, ok = m.(*types.Func)
	return ok
}

// recvTypeKey renders the receiver type of a field selection as "pkg.Type".
func recvTypeKey(sel *types.Selection) string {
	recv := types.Unalias(sel.Recv())
	if p, ok := recv.(*types.Pointer); ok {
		recv = types.Unalias(p.Elem())
	}
	return namedKey(recv)
}

// shortTypeName renders "pkg/path.Type" as "Type".
func shortTypeName(key string) string {
	if i := strings.LastIndex(key, "."); i >= 0 {
		return key[i+1:]
	}
	return key
}
