package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DurabilityAnalyzer enforces the fsync-atomic-write contract: a file the
// engine creates is only durable once its data is fsync'd and every error
// along the way has been observed. Silent data loss here is worse than a
// crash — a truncated dump that loads is a corrupted index. Per function:
//
//   - locals opened for writing (os.Create, or os.OpenFile with write
//     flags) are tracked; calling Close or Sync on one as a bare statement
//     discards the flush error and is flagged (a deferred Close is
//     accepted as the error-path backstop — the success path must still
//     check explicitly);
//   - os.Rename as a bare statement discards the commit error and is
//     flagged;
//   - a function that opens a file for writing but never calls Sync leaves
//     the data in the page cache across a crash and is flagged at the
//     opening call;
//   - os.WriteFile never fsyncs and is always flagged.
//
// Sites that genuinely do not need durability (benchmark reports, debug
// visualizations, best-effort cleanup) carry a //wikisearch:volatile line
// directive with the rationale.
var DurabilityAnalyzer = &Analyzer{
	Name: "durability",
	Doc:  "created or renamed files must have checked Sync/Close errors on all paths",
	Run:  runDurability,
}

func runDurability(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &durChecker{pass: pass}
			c.gatherWriters(fd.Body)
			c.checkBody(fd.Body)
		}
	}
}

type durChecker struct {
	pass    *Pass
	writers map[types.Object]token.Pos // written file local → opening call pos
	synced  bool                       // body contains f.Sync() on a tracked file
}

// volatileLine reports whether the line at pos carries //wikisearch:volatile.
func (c *durChecker) volatileLine(pos token.Pos) bool {
	return c.pass.Prog.Index.LineDirective("volatile", c.pass.Prog.Fset, pos)
}

// isOSCall reports whether call is os.<name>.
func isOSCall(info *types.Info, call *ast.CallExpr, name string) bool {
	f := calleeOf(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "os" && f.Name() == name
}

// opensForWrite reports whether call opens a file with write intent:
// os.Create always, os.OpenFile when its flags name O_WRONLY / O_RDWR /
// O_CREATE / O_APPEND / O_TRUNC (or cannot be read syntactically, in which
// case write intent is assumed).
func opensForWrite(info *types.Info, call *ast.CallExpr) bool {
	if isOSCall(info, call, "Create") {
		return true
	}
	if !isOSCall(info, call, "OpenFile") || len(call.Args) < 2 {
		return false
	}
	writeIntent := false
	unknown := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			switch id.Name {
			case "O_WRONLY", "O_RDWR", "O_CREATE", "O_APPEND", "O_TRUNC":
				writeIntent = true
			case "O_RDONLY", "os", "syscall":
				// read-only flags and package qualifiers
			default:
				unknown = true // computed flags: assume write intent
			}
		}
		return true
	})
	return writeIntent || unknown
}

// gatherWriters records locals bound to files opened for writing.
func (c *durChecker) gatherWriters(body *ast.BlockStmt) {
	c.writers = map[types.Object]token.Pos{}
	info := c.pass.Pkg.Info
	bind := func(lhs ast.Expr, call *ast.CallExpr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			c.writers[obj] = call.Pos()
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Rhs) != 1 || len(st.Lhs) < 1 {
			return true
		}
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok || !opensForWrite(info, call) {
			return true
		}
		bind(st.Lhs[0], call)
		return true
	})
}

// trackedCall returns the method name if call is f.<Close|Sync>() on a
// tracked written file.
func (c *durChecker) trackedCall(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") {
		return ""
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, tracked := c.writers[c.pass.Pkg.Info.Uses[id]]; !tracked {
		return ""
	}
	return sel.Sel.Name
}

func (c *durChecker) checkBody(body *ast.BlockStmt) {
	info := c.pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(st.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := c.trackedCall(call); name != "" && !c.volatileLine(call.Pos()) {
				c.pass.Reportf(call.Pos(),
					"discarded error from %s on a written file; the flush error is the durability signal", name)
			}
			if isOSCall(info, call, "Rename") && !c.volatileLine(call.Pos()) {
				c.pass.Reportf(call.Pos(),
					"discarded error from os.Rename; the commit of an atomic write must be checked")
			}
		case *ast.CallExpr:
			if c.trackedCall(st) == "Sync" {
				c.synced = true
			}
			if isOSCall(info, st, "WriteFile") && !c.volatileLine(st.Pos()) {
				c.pass.Reportf(st.Pos(),
					"os.WriteFile does not fsync; use the atomic write helper or annotate //wikisearch:volatile")
			}
		}
		return true
	})
	if c.synced {
		return
	}
	for _, pos := range c.writers {
		if !c.volatileLine(pos) {
			c.pass.Reportf(pos,
				"file opened for writing but never fsynced; data may be lost on crash (call Sync or annotate //wikisearch:volatile)")
		}
	}
}
