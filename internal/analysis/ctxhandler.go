package analysis

import (
	"go/ast"
	"go/types"
)

// CtxHandlerAnalyzer enforces request-context threading in HTTP handlers:
// any function with a *net/http.Request parameter that calls into
// context-accepting code must pass a context derived from r.Context()
// (possibly wrapped by context.WithTimeout and friends). Passing
// context.Background(), context.TODO(), or calling a function annotated
// //wikisearch:bgcontext (one that supplies its own background context,
// like Engine.Search) detaches the work from the request: client
// disconnects and middleware deadlines stop propagating — the exact bug
// class fixed ad hoc in the server hardening PR.
var CtxHandlerAnalyzer = &Analyzer{
	Name: "ctxhandler",
	Doc:  "HTTP handlers must thread the request context into engine calls",
	Run:  runCtxHandler,
}

func runCtxHandler(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var sig *types.Signature
			if def, ok := info.Defs[fd.Name].(*types.Func); ok {
				sig, _ = def.Type().(*types.Signature)
			}
			if sig == nil || !hasRequestParam(sig) {
				continue
			}
			h := &ctxChecker{pass: pass}
			h.gatherGood(fd.Body)
			inspectWithStack(fd.Body, h.check)
		}
	}
}

// hasRequestParam reports whether sig has a *net/http.Request parameter.
func hasRequestParam(sig *types.Signature) bool {
	for p := range sig.Params().Variables() {
		if isRequestPtr(p.Type()) {
			return true
		}
	}
	return false
}

func isRequestPtr(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	return ok && namedKey(types.Unalias(p.Elem())) == "net/http.Request"
}

func isContextType(t types.Type) bool {
	return t != nil && namedKey(types.Unalias(t)) == "context.Context"
}

type ctxChecker struct {
	pass *Pass
	good map[types.Object]bool // locals holding request-derived contexts
}

// contextDerivers are context package functions whose result inherits the
// goodness of their first argument.
var contextDerivers = map[string]bool{
	"context..WithCancel":   true,
	"context..WithTimeout":  true,
	"context..WithDeadline": true,
	"context..WithValue":    true,
}

// isGoodExpr reports whether e evaluates to a request-derived context.
func (h *ctxChecker) isGoodExpr(e ast.Expr) bool {
	info := h.pass.Pkg.Info
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return h.good[info.Uses[x]]
	case *ast.CallExpr:
		f := calleeOf(info, x)
		if f == nil {
			return false
		}
		// r.Context()
		if f.Name() == "Context" {
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := info.Types[sel.X]; ok && isRequestPtr(tv.Type) {
					return true
				}
			}
		}
		// context.WithX(good, ...)
		if contextDerivers[keyOf(f)] && len(x.Args) > 0 {
			return h.isGoodExpr(x.Args[0])
		}
	}
	return false
}

// gatherGood runs a two-sweep fixpoint collecting locals assigned from
// request-derived context expressions.
func (h *ctxChecker) gatherGood(body *ast.BlockStmt) {
	h.good = map[types.Object]bool{}
	info := h.pass.Pkg.Info
	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	for range 2 {
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				switch {
				case len(st.Lhs) == len(st.Rhs):
					for i := range st.Lhs {
						if h.isGoodExpr(st.Rhs[i]) {
							if obj := objOf(st.Lhs[i]); obj != nil {
								h.good[obj] = true
							}
						}
					}
				case len(st.Rhs) == 1:
					// ctx, cancel := context.WithTimeout(...)
					if h.isGoodExpr(st.Rhs[0]) {
						if obj := objOf(st.Lhs[0]); obj != nil {
							h.good[obj] = true
						}
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i := range st.Names {
						if h.isGoodExpr(st.Values[i]) {
							if obj := objOf(st.Names[i]); obj != nil {
								h.good[obj] = true
							}
						}
					}
				}
			}
			return true
		})
	}
}

func (h *ctxChecker) check(n ast.Node, stack []ast.Node) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	info := h.pass.Pkg.Info
	f := calleeOf(info, call)
	if f == nil {
		return
	}
	if h.pass.Prog.Index.BgContext[keyOf(f)] {
		h.pass.Reportf(call.Pos(),
			"handler calls %s, which supplies context.Background (//wikisearch:bgcontext) and drops the request context; call the context-taking variant with r.Context()",
			funcDisplay(f))
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 || len(call.Args) == 0 {
		return
	}
	if !isContextType(sig.Params().At(0).Type()) {
		return
	}
	arg := ast.Unparen(call.Args[0])
	switch x := arg.(type) {
	case *ast.CallExpr:
		cf := calleeOf(info, x)
		ck := keyOf(cf)
		if ck == "context..Background" || ck == "context..TODO" {
			h.pass.Reportf(arg.Pos(),
				"handler passes %s; derive the context from r.Context() instead", cf.Name())
			return
		}
		if !h.isGoodExpr(arg) {
			return // unknown call result: stay silent
		}
	case *ast.Ident:
		if tv, ok := info.Types[arg]; ok && tv.IsNil() {
			h.pass.Reportf(arg.Pos(), "handler passes a nil context; derive it from r.Context()")
			return
		}
		if !h.good[info.Uses[x]] {
			h.pass.Reportf(arg.Pos(),
				"handler passes a context not derived from the request; derive it from r.Context()")
		}
	}
}
