// Package analysis is a self-contained static-analysis driver and analyzer
// suite enforcing the engine's concurrency and hot-path invariants: the
// lock-free bottom-up search is only correct if every access to the shared
// arrays goes through the blessed atomic helpers, and the zero-allocation
// kernel is only zero-allocation while nobody adds an allocating construct
// to an annotated hot function. Those invariants used to live in comments
// and dynamic guards; this package machine-checks them on every `make lint`.
//
// The driver is built on the standard library only (go/parser, go/types and
// the go/importer source importer) — the repository's stdlib-only rule
// excludes golang.org/x/tools. Source directives recognized by the suite
// are documented in DESIGN.md §8 and §13:
//
//	//wikisearch:atomic       struct field: elements only via sync/atomic
//	//wikisearch:atomicalias  func: result aliases atomic storage
//	//wikisearch:exclusive    func: exempt from the atomic discipline
//	                          (documented exclusive access)
//	//wikisearch:hotpath      func: must be transitively allocation-free
//	//wikisearch:coldpath     func: stops the hotpath transitive walk
//	//wikisearch:allocok      line: suppress one hotpathalloc finding
//	//wikisearch:nocopy       type: values must never be copied
//	//wikisearch:bgcontext    func: supplies context.Background; must not be
//	                          called from HTTP handlers
//	//wikisearch:mmapview     func: may mint unsafe views over a mapping
//	//wikisearch:viewholder   type: may hold mmap views; must reach a Close
//	//wikisearch:singlewriter struct field: one annotated writer, reads via
//	                          annotated drain accessors
//	//wikisearch:writer       func: the owning writer of singlewriter fields
//	//wikisearch:drain        func: blessed read-side accessor for
//	                          singlewriter fields
//	//wikisearch:daemon       func or line: goroutine intentionally lives
//	                          for the process lifetime
//	//wikisearch:volatile     line: file write intentionally non-durable
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one named check run over every package of a Program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) execution: the package under
// inspection plus the whole Program for cross-package lookups.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicFieldAnalyzer,
		HotPathAllocAnalyzer,
		NoCopyAnalyzer,
		CtxHandlerAnalyzer,
		MmapViewAnalyzer,
		SingleWriterAnalyzer,
		LifecycleAnalyzer,
		DurabilityAnalyzer,
		DirectivesAnalyzer,
	}
}

// RunAnalyzers runs the analyzers over every target package of prog and
// returns the deduplicated findings in file/line order. Packages with parse
// or type errors are skipped (the caller reports Package.Errs separately).
func RunAnalyzers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		if len(pkg.Errs) > 0 || pkg.Types == nil {
			continue
		}
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags})
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := prog.Fset.Position(diags[i].Pos), prog.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	seen := map[string]bool{}
	out := diags[:0]
	for _, d := range diags {
		key := fmt.Sprintf("%v|%s|%s", d.Pos, d.Analyzer, d.Message)
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	return out
}
