package analysis

import (
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// wantExpectation is one parsed `// want "regex"` comment.
type wantExpectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	source  string
	matched bool
}

// parseWants extracts want expectations from every comment in prog. A want
// comment has the form
//
//	// want "regex" `another regex`
//
// and expects each listed pattern to match a distinct diagnostic reported
// on the same line.
func parseWants(t *testing.T, prog *Program) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, pat := range splitQuoted(t, pos, rest) {
						rx, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						wants = append(wants, &wantExpectation{
							file:   pos.Filename,
							line:   pos.Line,
							rx:     rx,
							source: pat,
						})
					}
				}
			}
		}
	}
	return wants
}

// splitQuoted splits `"a" "b"` / backquoted segments into their contents.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		quote := s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want comment near %q", pos, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated quote in want comment %q", pos, s)
		}
		out = append(out, s[1:1+end])
		s = s[end+2:]
	}
}

// checkExpectations runs the analyzers over prog and matches the findings
// against the want comments: every diagnostic must be expected, and every
// expectation must fire.
func checkExpectations(t *testing.T, prog *Program, analyzers []*Analyzer) {
	t.Helper()
	for _, pkg := range prog.Packages {
		for _, e := range pkg.Errs {
			t.Fatalf("%s: load error: %v", pkg.Path, e)
		}
	}
	wants := parseWants(t, prog)
	diags := RunAnalyzers(prog, analyzers)
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.source)
		}
	}
}

// checkFixture loads testdata/<name> and checks it against its want
// comments with the full analyzer suite (asserting both that the targeted
// analyzer fires and that the others stay silent).
func checkFixture(t *testing.T, name string) {
	t.Helper()
	prog, err := LoadFixtureDir("testdata/" + name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	checkExpectations(t, prog, All())
}

func TestAtomicFieldFixture(t *testing.T)  { checkFixture(t, "atomicfield") }
func TestHotPathAllocFixture(t *testing.T) { checkFixture(t, "hotpathalloc") }
func TestNoCopyFixture(t *testing.T)       { checkFixture(t, "nocopy") }
func TestCtxHandlerFixture(t *testing.T)   { checkFixture(t, "ctxhandler") }
func TestMmapViewFixture(t *testing.T)     { checkFixture(t, "mmapview") }
func TestSingleWriterFixture(t *testing.T) { checkFixture(t, "singlewriter") }
func TestLifecycleFixture(t *testing.T)    { checkFixture(t, "lifecycle") }
func TestDurabilityFixture(t *testing.T)   { checkFixture(t, "durability") }
func TestCompactorFixture(t *testing.T)    { checkFixture(t, "compactor") }

// TestAnalyzerNamesUnique guards the registry against copy-paste clashes.
func TestAnalyzerNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 9 {
		t.Errorf("expected at least 9 analyzers, got %d", len(seen))
	}
}

// TestDirectiveParsing covers the comment-scanning corner cases.
func TestDirectiveParsing(t *testing.T) {
	dirs := directivesOf(nil)
	if dirs != nil {
		t.Errorf("directivesOf(nil) = %v, want nil", dirs)
	}
	prog, err := LoadFixtureDir("testdata/atomicfield")
	if err != nil {
		t.Fatal(err)
	}
	ix := prog.Index
	var atomicKeys, aliasKeys []string
	for k := range ix.Atomic {
		atomicKeys = append(atomicKeys, k)
	}
	for k := range ix.Alias {
		aliasKeys = append(aliasKeys, k)
	}
	wantAtomic := "fixture/atomicfield.Flags.words"
	if len(atomicKeys) != 1 || atomicKeys[0] != wantAtomic {
		t.Errorf("Atomic keys = %v, want [%s]", atomicKeys, wantAtomic)
	}
	wantAlias := "fixture/atomicfield.Flags.Words"
	if len(aliasKeys) != 1 || aliasKeys[0] != wantAlias {
		t.Errorf("Alias keys = %v, want [%s]", aliasKeys, wantAlias)
	}
}

// TestShortFieldName pins the message rendering helper.
func TestShortFieldName(t *testing.T) {
	for in, want := range map[string]string{
		"wikisearch/internal/parallel.Bitset.words": "Bitset.words",
		"a.B.c": "B.c",
		"odd":   "odd",
	} {
		if got := shortFieldName(in); got != want {
			t.Errorf("shortFieldName(%q) = %q, want %q", in, got, want)
		}
	}
}
