package analysis

import "testing"

// TestRepositoryClean loads every package of this module — the same walk
// cmd/wikilint performs — and asserts the analyzer suite reports nothing:
// the tree's //wikisearch annotations and the invariants they promise hold.
// A finding here means a hot path grew an allocation, an atomic field
// gained a plain access, a nocopy value was copied, or a handler stopped
// threading its request context.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	prog, err := LoadPackages("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range prog.Packages {
		for _, e := range pkg.Errs {
			t.Fatalf("%s: load error: %v", pkg.Path, e)
		}
	}
	for _, d := range RunAnalyzers(prog, All()) {
		t.Errorf("%s: %s: %s", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
