package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package under analysis: its parsed files with
// comments, the types.Package, and the full types.Info the analyzers consult.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Errs collects parse and type errors. A package with errors is still
	// returned (analyzers skip it) so the driver can report every broken
	// package in one run.
	Errs []error
}

// Program is a loaded set of packages sharing one FileSet plus the
// module-wide directive and function-declaration index the cross-package
// analyzers (hotpathalloc's transitive walk, ctxhandler's bgcontext lookup)
// need.
type Program struct {
	Fset       *token.FileSet
	ModulePath string // empty for fixture loads
	ModuleDir  string
	Packages   []*Package // analysis targets, in load order
	Index      *Index

	byPath  map[string]*Package
	loading map[string]bool
	stdImp  types.ImporterFrom
}

// LoadPackages loads the packages matched by patterns (directory paths,
// optionally ending in "/..." for a recursive walk) rooted at dir, which
// must lie inside a Go module. Module-internal imports are type-checked from
// the module source; everything else resolves through the stdlib source
// importer, so the loader needs no dependencies outside the standard
// library.
func LoadPackages(dir string, patterns []string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	prog := newProgram(modPath, modDir)
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = abs
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(abs, base)
		}
		if recursive {
			walkGoDirs(base, func(d string) {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			})
		} else if !seen[base] {
			seen[base] = true
			dirs = append(dirs, base)
		}
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		rel, err := filepath.Rel(modDir, d)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module %s", d, modDir)
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := prog.ensure(path, d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			prog.Packages = append(prog.Packages, pkg)
		}
	}
	prog.Index = buildIndex(prog)
	return prog, nil
}

// LoadFixtureDir loads a single, self-contained package directory (an
// analyzer test fixture). Fixture imports resolve through the stdlib source
// importer only.
func LoadFixtureDir(dir string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	prog := newProgram("", "")
	pkg, err := prog.ensure("fixture/"+filepath.Base(abs), abs)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	prog.Packages = append(prog.Packages, pkg)
	prog.Index = buildIndex(prog)
	return prog, nil
}

func newProgram(modPath, modDir string) *Program {
	// The stdlib source importer type-checks dependencies from $GOROOT/src;
	// disabling cgo selects the pure-Go variants (netgo etc.) so the import
	// never needs the cgo preprocessor.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	prog := &Program{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  modDir,
		byPath:     map[string]*Package{},
		loading:    map[string]bool{},
	}
	prog.stdImp = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return prog
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module directory and module path.
func findModule(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		gm := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gm); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					mp := strings.TrimSpace(rest)
					if unq, err := strconv.Unquote(mp); err == nil {
						mp = unq
					}
					return d, mp, nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s has no module line", gm)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// walkGoDirs visits every directory under root that contains .go files,
// skipping hidden directories, testdata and vendor trees (the go command's
// "./..." convention).
func walkGoDirs(root string, visit func(dir string)) {
	filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") {
			visit(filepath.Dir(p))
		}
		return nil
	})
}

// internalDir maps a module-internal import path to its directory, or ""
// when the path is not module-internal.
func (prog *Program) internalDir(path string) string {
	if prog.ModulePath == "" {
		return ""
	}
	if path == prog.ModulePath {
		return prog.ModuleDir
	}
	if rest, ok := strings.CutPrefix(path, prog.ModulePath+"/"); ok {
		return filepath.Join(prog.ModuleDir, filepath.FromSlash(rest))
	}
	return ""
}

// ensure parses and type-checks the package at dir (memoized by import
// path). Returns (nil, nil) for directories without buildable Go files.
func (prog *Program) ensure(path, dir string) (*Package, error) {
	if p, ok := prog.byPath[path]; ok {
		return p, nil
	}
	if prog.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	prog.loading[path] = true
	defer delete(prog.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	if len(bp.GoFiles) == 0 {
		return nil, nil
	}
	pkg := &Package{Path: path, Dir: dir}
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			pkg.Errs = append(pkg.Errs, err)
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}
	// Load module-internal imports first so the type checker finds them in
	// the cache (and so index entries exist for cross-package analyzers
	// even when the import chain is the only reference).
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if d := prog.internalDir(ip); d != "" {
				if _, err := prog.ensure(ip, d); err != nil {
					return nil, err
				}
			}
		}
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: &progImporter{prog},
		Error: func(err error) {
			pkg.Errs = append(pkg.Errs, err)
		},
	}
	pkg.Types, _ = conf.Check(path, prog.Fset, pkg.Files, pkg.Info)
	prog.byPath[path] = pkg
	return pkg, nil
}

// progImporter resolves module-internal imports from the program's own
// type-checked packages and defers everything else (the standard library)
// to the source importer.
type progImporter struct{ prog *Program }

func (im *progImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, im.prog.ModuleDir, 0)
}

func (im *progImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if d := im.prog.internalDir(path); d != "" {
		pkg, err := im.prog.ensure(path, d)
		if err != nil {
			return nil, err
		}
		if pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("analysis: cannot import %s", path)
		}
		return pkg.Types, nil
	}
	return im.prog.stdImp.ImportFrom(path, srcDir, mode)
}
