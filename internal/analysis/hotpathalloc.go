package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAllocAnalyzer enforces the //wikisearch:hotpath contract: an
// annotated function, and everything it statically calls, must be free of
// allocating constructs. The warm search path (flat kernel, Pool dispatch,
// Bitset/ByteArray accessors) is guarded dynamically by AllocsPerRun tests,
// but those only exercise the paths a benchmark happens to hit; this
// analyzer covers every branch.
//
// Flagged constructs: make/new, map and slice literals, &composite{},
// non-self append (x = append(x, ...) is allowed — amortized by the
// steady-state guards), go statements, variable-capturing closures, method
// values, map writes, string concatenation and string<->[]byte conversions,
// interface boxing (arguments, assignments, returns, conversions),
// non-spread variadic calls, and calls to functions whose body the walk
// cannot see and that are not on the allowlist (sync/atomic, math/bits,
// mutex lock/unlock, slices.Sort, runtime.Gosched/GOMAXPROCS).
//
// //wikisearch:coldpath on a callee stops the walk (slow branch, documented
// as such); //wikisearch:allocok on the offending line suppresses a single
// finding.
var HotPathAllocAnalyzer = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "hotpath-annotated functions must be transitively allocation-free",
	Run:  runHotPathAlloc,
}

// allowedCalls are bodyless (stdlib) functions trusted not to allocate.
var allowedCalls = map[string]bool{
	"sync.Mutex.Lock":      true,
	"sync.Mutex.Unlock":    true,
	"sync.Mutex.TryLock":   true,
	"sync.RWMutex.Lock":    true,
	"sync.RWMutex.Unlock":  true,
	"sync.RWMutex.RLock":   true,
	"sync.RWMutex.RUnlock": true,
	"sync.Once.Do":         true,
	"sync.WaitGroup.Add":   true,
	"sync.WaitGroup.Done":  true,
	"sync.WaitGroup.Wait":  true,
	"slices..Sort":         true,
	"runtime..Gosched":     true,
	"runtime..GOMAXPROCS":  true,
	// The trace clock: monotonic reads, no allocation.
	"time..Now":   true,
	"time..Since": true,
}

// allowedCallPkgs are whole packages trusted not to allocate.
var allowedCallPkgs = map[string]bool{
	"sync/atomic": true,
	"math/bits":   true,
}

func runHotPathAlloc(pass *Pass) {
	c := &hotChecker{pass: pass, ix: pass.Prog.Index, checked: map[string]bool{}}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := c.ix.ByDecl[fd]
			if fi == nil || !fi.Directives["hotpath"] {
				continue
			}
			c.scan(fi, true)
		}
	}
}

type hotChecker struct {
	pass    *Pass
	ix      *Index
	checked map[string]bool // function keys already scanned this pass
}

// report files a finding unless the line carries //wikisearch:allocok.
func (c *hotChecker) report(pos token.Pos, format string, args ...any) {
	if c.ix.AllocOK(c.pass.Prog.Fset, pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// displayName renders a FuncInfo as Recv.Name or Name.
func displayName(fi *FuncInfo) string {
	recv := recvBaseName(fi.Decl)
	if recv != "" {
		return recv + "." + fi.Decl.Name.Name
	}
	return fi.Decl.Name.Name
}

// funcDisplay renders a types.Func for a message (pkg.Name or Type.Name).
func funcDisplay(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := types.Unalias(sig.Recv().Type())
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + f.Name()
		}
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}

// scan walks one function body for allocating constructs, descending into
// statically-resolved module-internal callees.
func (c *hotChecker) scan(fi *FuncInfo, root bool) {
	if c.checked[fi.Key] {
		return
	}
	c.checked[fi.Key] = true
	where := fmt.Sprintf("hot path function %s", displayName(fi))
	if !root {
		where = fmt.Sprintf("function %s (reachable from hot path)", displayName(fi))
	}
	info := fi.Pkg.Info
	var rootSig *types.Signature
	if def, ok := info.Defs[fi.Decl.Name].(*types.Func); ok {
		rootSig, _ = def.Type().(*types.Signature)
	}
	inspectWithStack(fi.Decl.Body, func(n ast.Node, stack []ast.Node) {
		switch e := n.(type) {
		case *ast.CallExpr:
			c.checkCall(fi, e, stack, where)
		case *ast.CompositeLit:
			switch types.Unalias(info.Types[e].Type).Underlying().(type) {
			case *types.Map:
				c.report(e.Pos(), "%s: map literal allocates", where)
			case *types.Slice:
				c.report(e.Pos(), "%s: slice literal allocates", where)
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					c.report(e.Pos(), "%s: &composite literal allocates", where)
				}
			}
		case *ast.GoStmt:
			c.report(e.Pos(), "%s: go statement allocates", where)
		case *ast.FuncLit:
			if capt := capturedVar(info, fi.Pkg, e); capt != "" {
				c.report(e.Pos(), "%s: closure captures %s and allocates", where, capt)
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.MethodVal {
				if parent, ok := parentOf(stack).(*ast.CallExpr); !ok || ast.Unparen(parent.Fun) != e {
					c.report(e.Pos(), "%s: method value allocates", where)
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isStringType(info, e) && info.Types[e].Value == nil {
				c.report(e.Pos(), "%s: string concatenation allocates", where)
			}
		case *ast.AssignStmt:
			c.checkAssign(info, e, where)
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(e.X).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
				c.report(e.Pos(), "%s: map write may allocate", where)
			}
		case *ast.ReturnStmt:
			c.checkReturn(info, rootSig, e, stack, where)
		}
	})
}

// checkAssign flags map writes, string +=, and interface boxing on
// assignment.
func (c *hotChecker) checkAssign(info *types.Info, st *ast.AssignStmt, where string) {
	for _, lhs := range st.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
			c.report(lhs.Pos(), "%s: map write may allocate", where)
		}
	}
	if st.Tok == token.ADD_ASSIGN && len(st.Lhs) == 1 && isStringType(info, st.Lhs[0]) {
		c.report(st.Pos(), "%s: string concatenation allocates", where)
	}
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		var lt types.Type
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && st.Tok == token.DEFINE {
			if obj := info.Defs[id]; obj != nil {
				lt = obj.Type()
			}
		} else if tv, ok := info.Types[lhs]; ok {
			lt = tv.Type
		}
		c.checkBoxing(info, lt, st.Rhs[i], where)
	}
}

// checkReturn flags interface boxing at return sites, using the nearest
// enclosing function literal's signature (or the root declaration's).
func (c *hotChecker) checkReturn(info *types.Info, rootSig *types.Signature, ret *ast.ReturnStmt, stack []ast.Node, where string) {
	sig := rootSig
	for i := len(stack) - 2; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			if s, ok := types.Unalias(info.Types[lit].Type).(*types.Signature); ok {
				sig = s
			}
			break
		}
	}
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		c.checkBoxing(info, sig.Results().At(i).Type(), res, where)
	}
}

// checkCall handles builtins, conversions, allowlisting, descent into
// module-internal callees, and boxing/variadic allocation at the call site.
func (c *hotChecker) checkCall(fi *FuncInfo, call *ast.CallExpr, stack []ast.Node, where string) {
	info := fi.Pkg.Info
	// Type conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(info, tv.Type, call, where)
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.report(call.Pos(), "%s: make allocates", where)
			case "new":
				c.report(call.Pos(), "%s: new allocates", where)
			case "append":
				if !isSelfAppend(call, stack) {
					c.report(call.Pos(), "%s: append may reallocate; only x = append(x, ...) is allowed", where)
				}
			case "print", "println":
				c.report(call.Pos(), "%s: %s allocates", where, b.Name())
			}
			return
		}
	}
	f := calleeOf(info, call)
	if f == nil {
		// Dynamic call through a function value: the target is unknown, but
		// boxing and variadic allocation at this site are still visible.
		c.checkCallSite(info, call, where)
		return
	}
	if f.Pkg() != nil && allowedCallPkgs[f.Pkg().Path()] {
		return
	}
	key := keyOf(f)
	if allowedCalls[key] {
		return
	}
	if isInterfaceMethod(f) {
		c.checkCallSite(info, call, where)
		return
	}
	callee := c.ix.Funcs[key]
	if callee == nil || callee.Decl.Body == nil {
		c.report(call.Pos(), "%s: call to %s is not allowlisted as allocation-free", where, funcDisplay(f))
		return
	}
	if !callee.Directives["hotpath"] && !callee.Directives["coldpath"] {
		c.scan(callee, false)
	}
	c.checkCallSite(info, call, where)
}

// checkCallSite flags variadic-slice and argument-boxing allocation for a
// call whose target is trusted or separately scanned.
func (c *hotChecker) checkCallSite(info *types.Info, call *ast.CallExpr, where string) {
	sig, ok := types.Unalias(info.Types[call.Fun].Type).(*types.Signature)
	if !ok {
		return
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
		c.report(call.Pos(), "%s: variadic call allocates its argument slice", where)
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < np-1 || (i == np-1 && !sig.Variadic()):
			pt = sig.Params().At(i).Type()
		case sig.Variadic() && call.Ellipsis != token.NoPos && i == np-1:
			pt = sig.Params().At(i).Type() // spread: slice passed as-is
		case sig.Variadic():
			if sl, ok := types.Unalias(sig.Params().At(np - 1).Type()).Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		c.checkBoxing(info, pt, arg, where)
	}
}

// checkConversion flags string<->[]byte/[]rune conversions and conversions
// into interface types.
func (c *hotChecker) checkConversion(info *types.Info, target types.Type, call *ast.CallExpr, where string) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if tv, ok := info.Types[ast.Unparen(call)]; ok && tv.Value != nil {
		return // constant conversion
	}
	tu := types.Unalias(target).Underlying()
	au := types.Type(nil)
	if tv, ok := info.Types[arg]; ok && tv.Type != nil {
		au = types.Unalias(tv.Type).Underlying()
	}
	switch t := tu.(type) {
	case *types.Basic:
		if t.Info()&types.IsString != 0 {
			if _, ok := au.(*types.Slice); ok {
				c.report(call.Pos(), "%s: conversion to string allocates", where)
			}
		}
	case *types.Slice:
		if b, ok := au.(*types.Basic); ok && b.Info()&types.IsString != 0 {
			c.report(call.Pos(), "%s: conversion from string allocates", where)
		}
	case *types.Interface:
		c.checkBoxing(info, target, arg, where)
	}
}

// checkBoxing flags storing a concrete, non-pointer-shaped value into an
// interface-typed slot (the conversion heap-allocates the boxed copy).
func (c *hotChecker) checkBoxing(info *types.Info, target types.Type, val ast.Expr, where string) {
	if target == nil {
		return
	}
	if _, ok := types.Unalias(target).Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := info.Types[val]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	vt := types.Unalias(tv.Type)
	if _, ok := vt.Underlying().(*types.Interface); ok {
		return // interface-to-interface: no boxing
	}
	if pointerShaped(vt) {
		return
	}
	c.report(val.Pos(), "%s: interface conversion boxes a value and allocates", where)
}

// pointerShaped reports whether values of t fit in a pointer word (stored
// directly in an interface without boxing).
func pointerShaped(t types.Type) bool {
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isSelfAppend reports whether call is the RHS of x = append(x, ...).
func isSelfAppend(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 {
		return false
	}
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.AssignStmt:
			if len(p.Lhs) == 1 && len(p.Rhs) == 1 && ast.Unparen(p.Rhs[0]) == call {
				return types.ExprString(p.Lhs[0]) == types.ExprString(call.Args[0])
			}
			return false
		default:
			return false
		}
	}
	return false
}

// isMapIndex reports whether idx indexes a map.
func isMapIndex(info *types.Info, idx *ast.IndexExpr) bool {
	tv, ok := info.Types[idx.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := types.Unalias(tv.Type).Underlying().(*types.Map)
	return isMap
}

// isStringType reports whether e has string type.
func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := types.Unalias(tv.Type).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturedVar returns the name of a variable the function literal captures
// from an enclosing function scope, or "".
func capturedVar(info *types.Info, pkg *Package, lit *ast.FuncLit) string {
	var captured string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal (params, locals)
		}
		if pkg.Types != nil && v.Parent() == pkg.Types.Scope() {
			return true // package-level variable: direct access, no capture
		}
		captured = v.Name()
		return false
	})
	return captured
}
