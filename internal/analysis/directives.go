package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const directivePrefix = "//wikisearch:"

// FuncInfo is one indexed function declaration with its directives.
type FuncInfo struct {
	Key        string // pkgpath.Recv.Name ("" receiver for plain functions)
	Decl       *ast.FuncDecl
	Pkg        *Package
	Directives map[string]bool
}

// Index is the module-wide directive and declaration index shared by the
// analyzers: hotpathalloc walks call chains across packages through Funcs,
// atomicfield consults the annotated-field and alias-function sets, nocopy
// the annotated types, ctxhandler the bgcontext functions.
type Index struct {
	Funcs     map[string]*FuncInfo
	ByDecl    map[*ast.FuncDecl]*FuncInfo
	Atomic    map[string]bool // "pkg.Type.field" with //wikisearch:atomic
	Alias     map[string]bool // func keys with //wikisearch:atomicalias
	NoCopy    map[string]bool // "pkg.Type" with //wikisearch:nocopy
	BgContext map[string]bool // func keys with //wikisearch:bgcontext
	allocOK   map[string]map[int]bool
}

// AllocOK reports whether the line holding pos carries a
// //wikisearch:allocok suppression comment.
func (ix *Index) AllocOK(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	return ix.allocOK[p.Filename][p.Line]
}

// directivesOf extracts wikisearch directives from comment groups. A
// directive is a comment line `//wikisearch:NAME` optionally followed by a
// rationale after a space.
func directivesOf(groups ...*ast.CommentGroup) map[string]bool {
	var dirs map[string]bool
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			name, _, _ := strings.Cut(rest, " ")
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if dirs == nil {
				dirs = map[string]bool{}
			}
			dirs[name] = true
		}
	}
	return dirs
}

// recvBaseName returns the receiver's base type name ("" for plain
// functions), stripping pointers, parens and type parameters.
func recvBaseName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return ""
	}
	t := decl.Recv.List[0].Type
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.ParenExpr:
			t = e.X
		case *ast.IndexExpr:
			t = e.X
		case *ast.IndexListExpr:
			t = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

func funcKey(pkgPath, recv, name string) string {
	return pkgPath + "." + recv + "." + name
}

// buildIndex scans every loaded package (targets and module-internal
// dependencies) for declarations and directives.
func buildIndex(prog *Program) *Index {
	ix := &Index{
		Funcs:     map[string]*FuncInfo{},
		ByDecl:    map[*ast.FuncDecl]*FuncInfo{},
		Atomic:    map[string]bool{},
		Alias:     map[string]bool{},
		NoCopy:    map[string]bool{},
		BgContext: map[string]bool{},
		allocOK:   map[string]map[int]bool{},
	}
	for _, pkg := range prog.byPath {
		if pkg == nil {
			continue
		}
		for _, f := range pkg.Files {
			ix.scanFile(prog, pkg, f)
		}
	}
	return ix
}

func (ix *Index) scanFile(prog *Program, pkg *Package, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, directivePrefix+"allocok") {
				p := prog.Fset.Position(c.Pos())
				m := ix.allocOK[p.Filename]
				if m == nil {
					m = map[int]bool{}
					ix.allocOK[p.Filename] = m
				}
				m[p.Line] = true
			}
		}
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			fi := &FuncInfo{
				Key:        funcKey(pkg.Path, recvBaseName(d), d.Name.Name),
				Decl:       d,
				Pkg:        pkg,
				Directives: directivesOf(d.Doc),
			}
			ix.Funcs[fi.Key] = fi
			ix.ByDecl[d] = fi
			if fi.Directives["atomicalias"] {
				ix.Alias[fi.Key] = true
			}
			if fi.Directives["bgcontext"] {
				ix.BgContext[fi.Key] = true
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tdirs := directivesOf(d.Doc, ts.Doc, ts.Comment)
				if tdirs["nocopy"] {
					ix.NoCopy[pkg.Path+"."+ts.Name.Name] = true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, field := range st.Fields.List {
					fdirs := directivesOf(field.Doc, field.Comment)
					if !fdirs["atomic"] {
						continue
					}
					for _, name := range field.Names {
						ix.Atomic[pkg.Path+"."+ts.Name.Name+"."+name.Name] = true
					}
				}
			}
		}
	}
}

// funcDirectives returns the directives of the declaration enclosing the
// given FuncDecl, or nil.
func (ix *Index) funcDirectives(decl *ast.FuncDecl) map[string]bool {
	if fi := ix.ByDecl[decl]; fi != nil {
		return fi.Directives
	}
	return nil
}

// calleeOf returns the *types.Func a call expression statically resolves to
// (a declared function or a method on a concrete or interface receiver), or
// nil for dynamic calls through function values and for builtins and type
// conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified function
		}
	}
	return nil
}

// keyOf renders a *types.Func as an index key, or "" when it has no
// package (error.Err and friends).
func keyOf(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	recv := ""
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name()
		}
	}
	return funcKey(f.Pkg().Path(), recv, f.Name())
}

// isInterfaceMethod reports whether f is declared on an interface (so a
// call through it is dynamic dispatch).
func isInterfaceMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// inspectWithStack walks root invoking fn with the ancestor stack; the
// visited node is the top of the stack.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		fn(n, stack)
		return true
	})
}

// namedKey renders a named type as "pkgpath.Name", or "".
func namedKey(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}
