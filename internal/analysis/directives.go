package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const directivePrefix = "//wikisearch:"

// FuncInfo is one indexed function declaration with its directives.
type FuncInfo struct {
	Key        string // pkgpath.Recv.Name ("" receiver for plain functions)
	Decl       *ast.FuncDecl
	Pkg        *Package
	Directives map[string]bool
}

// Index is the module-wide directive and declaration index shared by the
// analyzers: hotpathalloc walks call chains across packages through Funcs,
// atomicfield consults the annotated-field and alias-function sets, nocopy
// the annotated types, ctxhandler the bgcontext functions, mmapview the
// view-minting functions and viewholder types, singlewriter the annotated
// fields.
type Index struct {
	Funcs        map[string]*FuncInfo
	ByDecl       map[*ast.FuncDecl]*FuncInfo
	Atomic       map[string]bool // "pkg.Type.field" with //wikisearch:atomic
	Alias        map[string]bool // func keys with //wikisearch:atomicalias
	NoCopy       map[string]bool // "pkg.Type" with //wikisearch:nocopy
	BgContext    map[string]bool // func keys with //wikisearch:bgcontext
	MmapView     map[string]bool // func keys with //wikisearch:mmapview
	SingleWriter map[string]bool // "pkg.Type.field" with //wikisearch:singlewriter
	ViewHolder   map[string]bool // "pkg.Type" with //wikisearch:viewholder
	// HolderFields maps a viewholder type key to the type keys of its
	// same-package named field types (pointers/slices stripped), the edges
	// the mmapview anchoring fixpoint walks toward a Close method.
	HolderFields map[string][]string
	lines        map[string]map[string]map[int]bool // directive → file → line
}

// AllocOK reports whether the line holding pos carries a
// //wikisearch:allocok suppression comment.
func (ix *Index) AllocOK(fset *token.FileSet, pos token.Pos) bool {
	return ix.LineDirective("allocok", fset, pos)
}

// LineDirective reports whether the line holding pos carries the given
// line-scoped //wikisearch directive (allocok, daemon, volatile).
func (ix *Index) LineDirective(name string, fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	return ix.lines[name][p.Filename][p.Line]
}

// lineDirectives are the directives recorded by source line rather than by
// declaration: they suppress or scope one finding at one site.
var lineDirectives = map[string]bool{
	"allocok":  true,
	"daemon":   true,
	"volatile": true,
}

// directivesOf extracts wikisearch directives from comment groups. A
// directive is a comment line `//wikisearch:NAME` optionally followed by a
// rationale after a space.
func directivesOf(groups ...*ast.CommentGroup) map[string]bool {
	var dirs map[string]bool
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			name, _, _ := strings.Cut(rest, " ")
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if dirs == nil {
				dirs = map[string]bool{}
			}
			dirs[name] = true
		}
	}
	return dirs
}

// recvBaseName returns the receiver's base type name ("" for plain
// functions), stripping pointers, parens and type parameters.
func recvBaseName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return ""
	}
	t := decl.Recv.List[0].Type
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.ParenExpr:
			t = e.X
		case *ast.IndexExpr:
			t = e.X
		case *ast.IndexListExpr:
			t = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

func funcKey(pkgPath, recv, name string) string {
	return pkgPath + "." + recv + "." + name
}

// buildIndex scans every loaded package (targets and module-internal
// dependencies) for declarations and directives.
func buildIndex(prog *Program) *Index {
	ix := &Index{
		Funcs:        map[string]*FuncInfo{},
		ByDecl:       map[*ast.FuncDecl]*FuncInfo{},
		Atomic:       map[string]bool{},
		Alias:        map[string]bool{},
		NoCopy:       map[string]bool{},
		BgContext:    map[string]bool{},
		MmapView:     map[string]bool{},
		SingleWriter: map[string]bool{},
		ViewHolder:   map[string]bool{},
		HolderFields: map[string][]string{},
		lines:        map[string]map[string]map[int]bool{},
	}
	for _, pkg := range prog.byPath {
		if pkg == nil {
			continue
		}
		for _, f := range pkg.Files {
			ix.scanFile(prog, pkg, f)
		}
	}
	return ix
}

func (ix *Index) scanFile(prog *Program, pkg *Package, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			name, _, _ := strings.Cut(rest, " ")
			name = strings.TrimSpace(name)
			if !lineDirectives[name] {
				continue
			}
			p := prog.Fset.Position(c.Pos())
			byFile := ix.lines[name]
			if byFile == nil {
				byFile = map[string]map[int]bool{}
				ix.lines[name] = byFile
			}
			m := byFile[p.Filename]
			if m == nil {
				m = map[int]bool{}
				byFile[p.Filename] = m
			}
			m[p.Line] = true
		}
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			fi := &FuncInfo{
				Key:        funcKey(pkg.Path, recvBaseName(d), d.Name.Name),
				Decl:       d,
				Pkg:        pkg,
				Directives: directivesOf(d.Doc),
			}
			ix.Funcs[fi.Key] = fi
			ix.ByDecl[d] = fi
			if fi.Directives["atomicalias"] {
				ix.Alias[fi.Key] = true
			}
			if fi.Directives["bgcontext"] {
				ix.BgContext[fi.Key] = true
			}
			if fi.Directives["mmapview"] {
				ix.MmapView[fi.Key] = true
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tdirs := directivesOf(d.Doc, ts.Doc, ts.Comment)
				typeKey := pkg.Path + "." + ts.Name.Name
				if tdirs["nocopy"] {
					ix.NoCopy[typeKey] = true
				}
				if tdirs["viewholder"] {
					ix.ViewHolder[typeKey] = true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, field := range st.Fields.List {
					if tdirs["viewholder"] {
						if base := fieldBaseIdent(field.Type); base != "" {
							ix.HolderFields[typeKey] = append(ix.HolderFields[typeKey], pkg.Path+"."+base)
						}
					}
					fdirs := directivesOf(field.Doc, field.Comment)
					if fdirs["atomic"] {
						for _, name := range field.Names {
							ix.Atomic[typeKey+"."+name.Name] = true
						}
					}
					if fdirs["singlewriter"] {
						for _, name := range field.Names {
							ix.SingleWriter[typeKey+"."+name.Name] = true
						}
					}
				}
			}
		}
	}
}

// funcDirectives returns the directives of the declaration enclosing the
// given FuncDecl, or nil.
func (ix *Index) funcDirectives(decl *ast.FuncDecl) map[string]bool {
	if fi := ix.ByDecl[decl]; fi != nil {
		return fi.Directives
	}
	return nil
}

// calleeOf returns the *types.Func a call expression statically resolves to
// (a declared function or a method on a concrete or interface receiver), or
// nil for dynamic calls through function values and for builtins and type
// conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified function
		}
	}
	return nil
}

// keyOf renders a *types.Func as an index key, or "" when it has no
// package (error.Err and friends).
func keyOf(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	recv := ""
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name()
		}
	}
	return funcKey(f.Pkg().Path(), recv, f.Name())
}

// isInterfaceMethod reports whether f is declared on an interface (so a
// call through it is dynamic dispatch).
func isInterfaceMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// inspectWithStack walks root invoking fn with the ancestor stack; the
// visited node is the top of the stack.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		fn(n, stack)
		return true
	})
}

// fieldBaseIdent strips pointers, slices, arrays and parens off a struct
// field's type expression down to a bare same-package identifier, or "".
// Used to record the anchoring edges between viewholder types.
func fieldBaseIdent(t ast.Expr) string {
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.ParenExpr:
			t = e.X
		case *ast.ArrayType:
			t = e.Elt
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// namedKey renders a named type as "pkgpath.Name", or "".
func namedKey(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}
