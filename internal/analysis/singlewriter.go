package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SingleWriterAnalyzer encodes the per-worker buffer discipline the trace
// rings, the shard frontier-exchange route buffers and the top-down scratch
// rely on: a field annotated //wikisearch:singlewriter is written by exactly
// one goroutine (the owning worker) without synchronization, and readers
// only see it through an explicit publish/drain point. The race detector
// cannot prove this at test scale — a wrong-shard buffer write is a latent
// corruption, not a reproducible race — so the ownership is checked
// lexically:
//
//   - functions annotated //wikisearch:writer are the owning writer; they
//     may read and write the field freely;
//   - functions annotated //wikisearch:drain are the blessed read-side
//     accessors; they may read the field but any write is flagged;
//   - everywhere else, any access to the field (read or write) is flagged —
//     go through the annotated accessors;
//   - composite-literal construction is always fine: the value is not
//     shared yet.
var SingleWriterAnalyzer = &Analyzer{
	Name: "singlewriter",
	Doc:  "single-writer fields are only touched by their annotated writer and drain accessors",
	Run:  runSingleWriter,
}

func runSingleWriter(pass *Pass) {
	ix := pass.Prog.Index
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			dirs := ix.funcDirectives(fd)
			if dirs["writer"] {
				continue // the owning writer has full access
			}
			c := &swChecker{pass: pass, drain: dirs["drain"]}
			inspectWithStack(fd.Body, c.check)
		}
	}
}

type swChecker struct {
	pass  *Pass
	drain bool // enclosing func is //wikisearch:drain
}

func (c *swChecker) check(n ast.Node, stack []ast.Node) {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return
	}
	s := c.pass.Pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	key := recvTypeKey(s)
	if key == "" {
		return
	}
	key += "." + s.Obj().Name()
	if !c.pass.Prog.Index.SingleWriter[key] {
		return
	}
	// Climb the wrapper chain (parens, indexing, re-slicing) to the
	// consuming context to decide read vs write.
	i := len(stack) - 2
	cur := ast.Node(sel)
	for i >= 0 {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			if p.X == cur {
				cur = p
				i--
				continue
			}
		case *ast.IndexExpr:
			if p.X == cur {
				cur = p
				i--
				continue
			}
		case *ast.SliceExpr:
			if p.X == cur {
				cur = p
				i--
				continue
			}
		}
		break
	}
	what := shortFieldName(key)
	if isWriteTarget(cur, stack, i) {
		if c.drain {
			c.pass.Reportf(sel.Pos(),
				"write to single-writer field %s inside a //wikisearch:drain accessor", what)
		} else {
			c.pass.Reportf(sel.Pos(),
				"write to single-writer field %s outside its //wikisearch:writer owner", what)
		}
		return
	}
	// &x.f aliases the storage with write capability: only the writer may.
	if i >= 0 {
		if un, ok := stack[i].(*ast.UnaryExpr); ok && un.Op == token.AND && un.X == cur && !c.drain {
			c.pass.Reportf(sel.Pos(),
				"address of single-writer field %s taken outside its //wikisearch:writer owner", what)
			return
		}
	}
	if !c.drain {
		c.pass.Reportf(sel.Pos(),
			"read of single-writer field %s outside a //wikisearch:drain accessor", what)
	}
}
