package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LifecycleAnalyzer requires every goroutine launched in non-test code to be
// tied to a shutdown mechanism, so the server, coordinator and batcher paths
// cannot leak workers past Engine.Close / graceful shutdown. A go statement
// is accepted when:
//
//   - its line carries //wikisearch:daemon (intentionally process-lifetime,
//     with the rationale in the comment), or the enclosing function is
//     annotated //wikisearch:daemon;
//   - the goroutine body (a function literal, or the body of a statically
//     resolved in-module callee) contains a recognized join/cancel signal:
//     a Done() call on a sync.WaitGroup, a range over a channel, a channel
//     receive or send, or any use of a context.Context value.
//
// Goroutines whose body cannot be resolved (dynamic calls, out-of-module
// callees like http.Server.Serve) must use the daemon escape: the analyzer
// cannot see their termination condition.
var LifecycleAnalyzer = &Analyzer{
	Name: "lifecycle",
	Doc:  "every go statement must be tied to a shutdown mechanism or marked daemon",
	Run:  runLifecycle,
}

func runLifecycle(pass *Pass) {
	ix := pass.Prog.Index
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			daemon := ix.funcDirectives(fd)["daemon"]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if daemon || ix.LineDirective("daemon", pass.Prog.Fset, gs.Pos()) {
					return true
				}
				checkGoStmt(pass, gs)
				return true
			})
		}
	}
}

func checkGoStmt(pass *Pass, gs *ast.GoStmt) {
	body, info := goroutineBody(pass, gs.Call)
	if body == nil {
		pass.Reportf(gs.Pos(),
			"goroutine body cannot be resolved statically; annotate the line //wikisearch:daemon with a rationale")
		return
	}
	if hasShutdownSignal(body, info) {
		return
	}
	pass.Reportf(gs.Pos(),
		"goroutine is not tied to a shutdown mechanism (context, WaitGroup, channel join, or //wikisearch:daemon)")
}

// goroutineBody resolves the block a go statement executes: the literal's
// body, or the declared body of a statically resolved in-module callee,
// with the types.Info of the package the body lives in.
func goroutineBody(pass *Pass, call *ast.CallExpr) (*ast.BlockStmt, *types.Info) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, pass.Pkg.Info
	}
	fi := pass.Prog.Index.Funcs[keyOf(calleeOf(pass.Pkg.Info, call))]
	if fi == nil || fi.Decl.Body == nil {
		return nil, nil
	}
	return fi.Decl.Body, fi.Pkg.Info
}

// hasShutdownSignal reports whether body contains any construct tying the
// goroutine's lifetime to an external signal.
func hasShutdownSignal(body *ast.BlockStmt, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.RangeStmt:
			// range over a channel terminates when the channel closes.
			if isChanExpr(info, e.X) {
				found = true
			}
		case *ast.SendStmt:
			found = true // rendezvous with a receiver
		case *ast.UnaryExpr:
			if isChanRecv(info, e) {
				found = true
			}
		case *ast.CallExpr:
			if isWaitGroupDone(info, e) {
				found = true
			}
		case *ast.Ident:
			// Any use of a context.Context value: the goroutine observes
			// cancellation (ctx.Done/ctx.Err or passes ctx downstream).
			if obj := info.Uses[e]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	_, isChan := types.Unalias(tv.Type).Underlying().(*types.Chan)
	return isChan
}

func isChanRecv(info *types.Info, e *ast.UnaryExpr) bool {
	if e.Op != token.ARROW {
		return false
	}
	return isChanExpr(info, e.X)
}

// isWaitGroupDone reports whether call is wg.Done() on a sync.WaitGroup.
func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	f := calleeOf(info, call)
	if f == nil || f.Name() != "Done" || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := types.Unalias(sig.Recv().Type())
	if p, ok := recv.(*types.Pointer); ok {
		recv = types.Unalias(p.Elem())
	}
	return namedKey(recv) == "sync.WaitGroup"
}
