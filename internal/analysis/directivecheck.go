package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// DirectivesAnalyzer validates every //wikisearch: directive in the tree:
// unknown names, misspellings (a directive comment that no analyzer reads
// is silently dead — worse than absent, because it documents an invariant
// nobody checks) and directives attached to the wrong kind of declaration
// (a field directive left on a line after the field was inlined away, a
// func directive stranded above a type after a refactor) are all errors.
var DirectivesAnalyzer = &Analyzer{
	Name: "directives",
	Doc:  "every //wikisearch: directive must be known and attached to the right declaration kind",
	Run:  runDirectives,
}

// directiveAttach maps each known directive to the declaration kinds it may
// annotate. "line" means a free-standing or trailing comment scoping one
// statement.
var directiveAttach = map[string][]string{
	"atomic":       {"field"},
	"atomicalias":  {"func"},
	"exclusive":    {"func"},
	"hotpath":      {"func"},
	"coldpath":     {"func"},
	"bgcontext":    {"func"},
	"mmapview":     {"func"},
	"writer":       {"func"},
	"drain":        {"func"},
	"daemon":       {"func", "line"},
	"nocopy":       {"type"},
	"viewholder":   {"type"},
	"singlewriter": {"field"},
	"allocok":      {"line"},
	"volatile":     {"line"},
}

// nearMissRe matches comments that look like a directive but are malformed
// (whitespace between // and the prefix, which detaches the directive from
// the toolchain's pragma convention and silently disables it).
var nearMissRe = regexp.MustCompile(`^//[ \t]+wikisearch:`)

func runDirectives(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		attach := attachmentMap(file)
		for _, cg := range file.Comments {
			kind := attach[cg]
			if kind == "" {
				kind = "line"
			}
			for _, c := range cg.List {
				checkDirectiveComment(pass, c, kind)
			}
		}
	}
}

// attachmentMap classifies each doc/trailing comment group by the kind of
// declaration it annotates.
func attachmentMap(file *ast.File) map[*ast.CommentGroup]string {
	attach := map[*ast.CommentGroup]string{}
	set := func(cg *ast.CommentGroup, kind string) {
		if cg != nil {
			attach[cg] = kind
		}
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			set(d.Doc, "func")
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			set(d.Doc, "type")
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				set(ts.Doc, "type")
				set(ts.Comment, "type")
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, field := range st.Fields.List {
					set(field.Doc, "field")
					set(field.Comment, "field")
				}
			}
		}
	}
	return attach
}

func checkDirectiveComment(pass *Pass, c *ast.Comment, kind string) {
	rest, ok := strings.CutPrefix(c.Text, directivePrefix)
	if !ok {
		if nearMissRe.MatchString(c.Text) {
			pass.Reportf(c.Pos(),
				"malformed directive %q: write //wikisearch:NAME with no space after //", firstLine(c.Text))
		}
		return
	}
	name, _, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	allowed, known := directiveAttach[name]
	if !known {
		pass.Reportf(c.Pos(), "unknown directive //wikisearch:%s (known: %s)", name, knownDirectives())
		return
	}
	for _, k := range allowed {
		if k == kind {
			return
		}
	}
	pass.Reportf(c.Pos(),
		"misplaced directive //wikisearch:%s: applies to %s declarations, found on a %s",
		name, strings.Join(allowed, "/"), kind)
}

func knownDirectives() string {
	names := make([]string, 0, len(directiveAttach))
	for n := range directiveAttach {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
