package bench

import (
	"context"
	"fmt"
	"time"

	"wikisearch"
)

// AblationStats aggregates answer-quality signals for one configuration.
type AblationStats struct {
	Config string
	// AvgNodes is the mean answer-graph size.
	AvgNodes float64
	// AvgWeight is the mean degree-of-summary weight over answer nodes —
	// higher means more hub nodes inside answers (less informative).
	AvgWeight float64
	// AvgPruned is the mean number of nodes the level-cover removed.
	AvgPruned float64
	// AvgDepth is the mean answer depth; TotalMs the mean search time.
	AvgDepth float64
	TotalMs  float64
	Answers  float64
}

// AblationLevelCover quantifies the level-cover strategy (§V-C): the same
// workload with and without pruning. Without it answers carry every
// extracted hitting-path node, so they are larger and heavier.
func (e *Env) AblationLevelCover(knum int) (Table, []AblationStats, error) {
	queries := e.Workload(knum, e.Cfg.QueriesPerSetting)
	stats := make([]AblationStats, 0, 2)
	for _, disable := range []bool{false, true} {
		s, err := e.ablationRun(queries, func(q *wikisearch.Query) {
			q.DisableLevelCover = disable
		})
		if err != nil {
			return Table{}, nil, err
		}
		if disable {
			s.Config = "without level-cover"
		} else {
			s.Config = "with level-cover"
		}
		stats = append(stats, s)
	}
	return ablationTable("ablation/level-cover",
		"Level-cover pruning ablation on "+e.KB.Name, stats), stats, nil
}

// AblationActivation quantifies the minimum-activation-level mechanism
// (§IV): disabling it degrades the search to plain multi-BFS, which the
// paper warns produces arbitrary answers — visible here as much heavier
// answer nodes (summary hubs flood in).
func (e *Env) AblationActivation(knum int) (Table, []AblationStats, error) {
	queries := e.Workload(knum, e.Cfg.QueriesPerSetting)
	stats := make([]AblationStats, 0, 2)
	for _, disable := range []bool{false, true} {
		s, err := e.ablationRun(queries, func(q *wikisearch.Query) {
			q.DisableActivation = disable
		})
		if err != nil {
			return Table{}, nil, err
		}
		if disable {
			s.Config = "without activation levels"
		} else {
			s.Config = "with activation levels"
		}
		stats = append(stats, s)
	}
	return ablationTable("ablation/activation",
		"Minimum-activation-level ablation on "+e.KB.Name, stats), stats, nil
}

func (e *Env) ablationRun(queries []string, mutate func(*wikisearch.Query)) (AblationStats, error) {
	var s AblationStats
	var answers, nodes int
	var weightSum float64
	for _, qtext := range queries {
		q := wikisearch.Query{Text: qtext, TopK: e.Cfg.TopK, Alpha: e.Cfg.Alpha, Threads: e.Cfg.Threads}
		mutate(&q)
		res, err := e.Eng.Search(context.Background(), q)
		if err != nil {
			return s, err
		}
		s.TotalMs += float64(res.Total) / float64(time.Millisecond)
		for i := range res.Answers {
			a := &res.Answers[i]
			answers++
			nodes += len(a.Nodes)
			s.AvgPruned += float64(a.PrunedNodes)
			s.AvgDepth += float64(a.Depth)
			for _, n := range a.Nodes {
				weightSum += n.Weight
			}
		}
	}
	nq := float64(len(queries))
	s.TotalMs /= nq
	s.Answers = float64(answers) / nq
	if answers > 0 {
		s.AvgNodes = float64(nodes) / float64(answers)
		s.AvgPruned /= float64(answers)
		s.AvgDepth /= float64(answers)
	}
	if nodes > 0 {
		s.AvgWeight = weightSum / float64(nodes)
	}
	return s, nil
}

func ablationTable(id, title string, stats []AblationStats) Table {
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"config", "avg nodes/answer", "avg node weight", "avg pruned", "avg depth", "total ms"},
	}
	for _, s := range stats {
		t.Rows = append(t.Rows, []string{
			s.Config,
			fmt.Sprintf("%.2f", s.AvgNodes),
			fmt.Sprintf("%.4f", s.AvgWeight),
			fmt.Sprintf("%.2f", s.AvgPruned),
			fmt.Sprintf("%.2f", s.AvgDepth),
			fmt.Sprintf("%.3f", s.TotalMs),
		})
	}
	return t
}

// AblationBaselines contrasts BANKS-I (purely backward, distance-ordered)
// with BANKS-II (bidirectional, activation-ordered) — the progression §II
// describes — plus CPU-Par as the reference.
func (e *Env) AblationBaselines(knum int) (Table, error) {
	queries := e.Workload(knum, e.Cfg.QueriesPerSetting)
	t := Table{
		ID:     "ablation/baselines",
		Title:  "Baseline comparison on " + e.KB.Name,
		Header: []string{"system", "avg total ms", "avg answers", "avg visited"},
	}
	type row struct {
		name    string
		ms      float64
		answers float64
		visited float64
	}
	rows := []row{}
	for _, bidi := range []bool{false, true} {
		r := row{name: "BANKS-I"}
		if bidi {
			r.name = "BANKS-II"
		}
		for _, q := range queries {
			res, err := e.Eng.SearchBANKS(q, e.Cfg.TopK, bidi, e.Cfg.BanksMaxVisits)
			if err != nil {
				return t, err
			}
			r.ms += float64(res.Elapsed) / float64(time.Millisecond)
			r.answers += float64(len(res.Trees))
			r.visited += float64(res.Visited)
		}
		n := float64(len(queries))
		r.ms, r.answers, r.visited = r.ms/n, r.answers/n, r.visited/n
		rows = append(rows, r)
	}
	// DPBF: the exact Group Steiner Tree DP, state-capped like BANKS is
	// visit-capped (its state space is n·2^l).
	dp := row{name: "DPBF-Exact"}
	for _, q := range queries {
		res, err := e.Eng.SearchExactGST(q, e.Cfg.TopK, 400000)
		if err != nil {
			return t, err
		}
		dp.ms += float64(res.Elapsed) / float64(time.Millisecond)
		dp.answers += float64(len(res.Trees))
		dp.visited += float64(res.Popped)
	}
	nq := float64(len(queries))
	dp.ms, dp.answers, dp.visited = dp.ms/nq, dp.answers/nq, dp.visited/nq
	rows = append(rows, dp)

	cp, err := e.measure(VCPU, queries, e.Cfg.TopK, e.Cfg.Alpha, e.Cfg.Threads)
	if err != nil {
		return t, err
	}
	rows = append(rows, row{name: VCPU, ms: cp.TotalMs, answers: cp.Answers})
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.name,
			fmt.Sprintf("%.3f", r.ms),
			fmt.Sprintf("%.1f", r.answers),
			fmt.Sprintf("%.0f", r.visited),
		})
	}
	return t, nil
}
