package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMutateBenchTinyShape runs a miniature live-mutation benchmark and
// pins the report contract: three points in static/idle/stream order, a
// mutation stream that actually moved (ops and publishes recorded), and
// penalty percentages derived from the static baseline.
func TestMutateBenchTinyShape(t *testing.T) {
	rep, err := MutateBench(MutateBenchConfig{
		Preset:       "tiny-sim",
		Clients:      4,
		Ops:          48,
		BatchOps:     4,
		PublishEvery: time.Millisecond,
		CompactEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(rep.Points))
	}
	for i, mode := range []string{"static", "idle", "stream"} {
		p := rep.Points[i]
		if p.Mode != mode {
			t.Fatalf("point %d mode = %q, want %q", i, p.Mode, mode)
		}
		if p.QPS <= 0 || p.WallMs <= 0 || p.Ops != 48 {
			t.Fatalf("%s point not measured: %+v", mode, p)
		}
	}
	stream := rep.Points[2]
	if stream.MutationOps == 0 || stream.Publishes == 0 {
		t.Fatalf("mutation stream idle: %+v", stream)
	}
	static, idle := rep.Points[0], rep.Points[1]
	wantIdle := (static.QPS - idle.QPS) / static.QPS * 100
	if rep.IdlePenaltyPct != wantIdle {
		t.Fatalf("idle penalty = %v, want %v", rep.IdlePenaltyPct, wantIdle)
	}

	tbl := MutateBenchTable(rep)
	text := tbl.String()
	for _, want := range []string{"static", "idle", "stream", "idle penalty", "stream penalty"} {
		if !strings.Contains(text, want) {
			t.Fatalf("table missing %q:\n%s", want, text)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_mutate.json")
	if err := WriteMutateBench(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back MutateBenchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != 3 || back.Points[2].Publishes != stream.Publishes {
		t.Fatalf("round-trip mismatch: %+v", back.Points)
	}
}
