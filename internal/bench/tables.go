package bench

import (
	"fmt"
	"math/rand"

	"wikisearch/internal/core"
	"wikisearch/internal/graph"
)

// DatasetStats is a Table II row.
type DatasetStats struct {
	Name      string
	Nodes     int
	Edges     int
	AvgDist   float64
	Deviation float64
}

// Table2 reproduces Table II: dataset sizes and the sampled average
// shortest distance with its deviation.
func Table2(envs []*Env) (Table, []DatasetStats) {
	t := Table{
		ID:     "table2",
		Title:  "Dataset statistics (Table II)",
		Header: []string{"dataset", "# nodes", "# edges", "A", "Deviation"},
	}
	var stats []DatasetStats
	for _, e := range envs {
		s := graph.SampleAverageDistance(e.KB.Graph, e.Cfg.SamplePairs,
			rand.New(rand.NewSource(e.Cfg.Seed)))
		row := DatasetStats{
			Name:      e.KB.Name,
			Nodes:     e.KB.Graph.NumNodes(),
			Edges:     e.KB.Graph.NumEdges(),
			AvgDist:   s.Mean,
			Deviation: s.Deviation,
		}
		stats = append(stats, row)
		t.Rows = append(t.Rows, []string{
			row.Name,
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%d", row.Edges),
			fmt.Sprintf("%.2f", row.AvgDist),
			fmt.Sprintf("%.2f", row.Deviation),
		})
	}
	return t, stats
}

// Fig3 reproduces Fig. 3: the distribution of nodes over minimum activation
// levels for several α values (buckets 0,1,2,3,≥4).
func (e *Env) Fig3(alphas []float64) (Table, map[string][]float64) {
	if len(alphas) == 0 {
		alphas = []float64{0.05, 0.1, 0.4}
	}
	const buckets = 5
	t := Table{
		ID:     "fig3",
		Title:  fmt.Sprintf("Node distribution over minimum activation levels on %s (Fig. 3)", e.KB.Name),
		Header: []string{"alpha", "0", "1", "2", "3", ">=4"},
	}
	raw := map[string][]float64{}
	n := float64(e.KB.Graph.NumNodes())
	for _, a := range alphas {
		dist := e.Eng.ActivationDistribution(a, buckets)
		key := fmt.Sprintf("alpha-%.2f", a)
		row := []string{key}
		var fracs []float64
		for _, c := range dist {
			f := float64(c) / n
			fracs = append(fracs, f)
			row = append(row, fmt.Sprintf("%.1f%%", 100*f))
		}
		raw[key] = fracs
		t.Rows = append(t.Rows, row)
	}
	return t, raw
}

// StorageCost is a Table IV row.
type StorageCost struct {
	Name string
	// PreStorage is the resident dataset: CSR arrays + node weights.
	PreStorage int64
	// MaxRunning adds the per-query structures at Knum=8, Topk=50:
	// FIdentifier, CIdentifier and the node-keyword matrix.
	MaxRunning int64
}

// Table4 reproduces Table IV: pre-storage and maximum running storage of
// the GPU implementation (Knum=8, Topk=50).
func Table4(envs []*Env, knum int) (Table, []StorageCost) {
	if knum <= 0 {
		knum = 8
	}
	t := Table{
		ID:     "table4",
		Title:  fmt.Sprintf("Running storage cost on the (simulated) GPU (Knum=%d, Topk=50) (Table IV)", knum),
		Header: []string{"dataset", "pre-storage", "max. running storage"},
	}
	var costs []StorageCost
	for _, e := range envs {
		g := e.KB.Graph
		n, m := int64(g.NumNodes()), int64(g.NumEdges())
		// CSR: two offset arrays of (n+1) int64, two endpoint and two
		// relation arrays of m int32; weights one float64 per node.
		pre := 2*8*(n+1) + 4*4*m + 8*n
		// Running: FIdentifier + CIdentifier bitsets and the n×q matrix.
		running := pre + 2*(n/8+8) + n*int64(knum)
		costs = append(costs, StorageCost{Name: e.KB.Name, PreStorage: pre, MaxRunning: running})
		t.Rows = append(t.Rows, []string{e.KB.Name, fmtBytes(pre), fmtBytes(running)})
	}
	return t, costs
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// Table5 reproduces Table V: the effectiveness queries with their average
// keyword frequency on each dataset.
func Table5(envs []*Env) Table {
	t := Table{
		ID:     "table5",
		Title:  "Effectiveness queries and average keyword frequencies (Table V)",
		Header: []string{"query", "keywords"},
	}
	for _, e := range envs {
		t.Header = append(t.Header, "kwf("+e.KB.Name+")")
	}
	if len(envs) == 0 {
		return t
	}
	for qi, p := range envs[0].KB.Planted {
		row := []string{p.ID, joinWords(p.Keywords)}
		for _, e := range envs {
			pq := e.KB.Planted[qi]
			total := 0
			for _, kw := range pq.Keywords {
				total += e.Eng.KeywordFrequency(kw)
			}
			row = append(row, fmt.Sprintf("%d", total/len(pq.Keywords)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func joinWords(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

// MatrixFootprint returns the §V-B storage arithmetic for an n-node,
// q-keyword query: the matrix size and its simulated transfer time at the
// given bandwidth. It reproduces the paper's "300MB in ~25ms" example with
// one deviation: our rows are padded to whole 8-byte words (so the kernel
// tests a row per atomic load), which rounds the 30M × 10 example up to
// 480MB / ~40ms.
func MatrixFootprint(n, q int, bandwidth float64) (bytes int64, seconds float64) {
	m := core.NewMatrix(n, q)
	bytes = m.ByteSize()
	if bandwidth > 0 {
		seconds = float64(bytes) / bandwidth
	}
	return bytes, seconds
}
