package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"wikisearch"
)

// ObsBenchConfig sizes the tracing-overhead benchmark: the batched
// closed-loop workload of BatchBench runs twice — tracing off and tracing
// on — and the report compares sustained QPS. Tracing is the engine's
// always-on default, so this measures what every production search pays
// for its trace: the acceptance bar is ≤2% on the warm batched path.
type ObsBenchConfig struct {
	Preset  string        // dataset preset (default "tiny-sim")
	Clients int           // concurrent closed-loop clients (default 32)
	Ops     int           // searches measured per side (default 512)
	Window  time.Duration // coalescing window (default 200µs)
	Seed    int64         // workload seed (default 1)
	Skew    float64       // Zipf exponent of the query stream (default 1.4)
}

// Defaults fills unset fields.
func (c ObsBenchConfig) Defaults() ObsBenchConfig {
	if c.Preset == "" {
		c.Preset = "tiny-sim"
	}
	if c.Clients <= 0 {
		c.Clients = 32
	}
	if c.Ops <= 0 {
		c.Ops = 512
	}
	if c.Window <= 0 {
		c.Window = 200 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Skew <= 1 {
		c.Skew = 1.4
	}
	return c
}

// ObsBenchPoint is one measured side.
type ObsBenchPoint struct {
	Mode   string  `json:"mode"` // "tracing-off" or "tracing-on"
	Ops    int     `json:"ops"`
	WallMs float64 `json:"wall_ms"`
	QPS    float64 `json:"qps"`
	// Traces counts the query traces the collector assembled during the
	// side's fastest pass (tracing-on only): one per search completes the
	// exactly-once contract under batching.
	Traces int64 `json:"traces,omitempty"`
}

// ObsBenchReport is the benchmark outcome, serialized to BENCH_obs.json by
// `benchrunner -exp obs`.
type ObsBenchReport struct {
	Config  ObsBenchConfig  `json:"config"`
	Env     RunEnv          `json:"env"`
	Queries int             `json:"distinct_queries"`
	Points  []ObsBenchPoint `json:"points"`
	// OverheadPct is how much QPS tracing costs: (off−on)/off × 100.
	// Negative values are measurement noise in tracing's favor.
	OverheadPct float64 `json:"overhead_pct"`
}

// ObsBench measures the throughput cost of always-on tracing on the warm
// batched search path with an identical concurrent workload per side.
func ObsBench(cfg ObsBenchConfig) (*ObsBenchReport, error) {
	cfg = cfg.Defaults()
	env, err := NewEnv(Config{Preset: cfg.Preset, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	pool := batchBenchWorkload(env.KB, env.Ix, cfg.Seed)
	if len(pool) == 0 {
		return nil, fmt.Errorf("bench: empty obs workload")
	}
	env.Eng.EnableBatching(wikisearch.BatchOptions{Window: cfg.Window})
	defer env.Eng.DisableBatching()

	// Warm the engine (level cache, pooled states, trace rings) outside the
	// clock, with tracing in its default on state.
	for _, q := range pool[:min(len(pool), 8)] {
		if _, err := env.Eng.Search(context.Background(), q); err != nil {
			return nil, err
		}
	}

	rep := &ObsBenchReport{
		Config:  cfg,
		Env:     CaptureEnv(cfg.Preset, env.KB.Graph.NumNodes(), env.KB.Graph.NumEdges()),
		Queries: len(pool),
	}
	sched := batchBenchSchedule(cfg.Ops, len(pool), cfg.Skew, cfg.Seed)

	// The two sides alternate pass by pass and each keeps its fastest, so
	// machine-level drift (frequency scaling, background load) lands on
	// both equally: the slower passes measure interference, not the
	// tracing cost.
	const passes = 3
	measure := func(pt *ObsBenchPoint, tracing bool) error {
		env.Eng.SetTracing(tracing)
		defer env.Eng.SetTracing(true)
		var traces atomic.Int64
		if tracing {
			env.Eng.Traces().SetObserver(func(*wikisearch.QueryTrace) { traces.Add(1) })
			defer env.Eng.Traces().SetObserver(nil)
		}
		wall, err := batchBenchDrive(env.Eng, pool, sched, cfg.Clients)
		if err != nil {
			return err
		}
		if ms := float64(wall) / float64(time.Millisecond); pt.WallMs == 0 || ms < pt.WallMs {
			pt.WallMs = ms
			pt.QPS = float64(cfg.Ops) / wall.Seconds()
			pt.Traces = traces.Load()
		}
		return nil
	}

	off := ObsBenchPoint{Mode: "tracing-off", Ops: cfg.Ops}
	on := ObsBenchPoint{Mode: "tracing-on", Ops: cfg.Ops}
	for pass := 0; pass < passes; pass++ {
		if err := measure(&off, false); err != nil {
			return nil, err
		}
		if err := measure(&on, true); err != nil {
			return nil, err
		}
	}
	rep.Points = append(rep.Points, off, on)
	if off.QPS > 0 {
		rep.OverheadPct = (off.QPS - on.QPS) / off.QPS * 100
	}
	return rep, nil
}

// ObsBenchTable renders the report for benchrunner.
func ObsBenchTable(r *ObsBenchReport) Table {
	t := Table{
		ID: "obs",
		Title: fmt.Sprintf("Tracing overhead on the warm batched path, %s (%d clients, window %v, zipf %.2f)",
			r.Config.Preset, r.Config.Clients, r.Config.Window, r.Config.Skew),
		Header: []string{"mode", "QPS", "wall ms", "traces"},
	}
	for _, p := range r.Points {
		tr := "-"
		if p.Mode == "tracing-on" {
			tr = fmt.Sprintf("%d", p.Traces)
		}
		t.Rows = append(t.Rows, []string{
			p.Mode, fmt.Sprintf("%.0f", p.QPS), fmt.Sprintf("%.1f", p.WallMs), tr,
		})
	}
	t.Rows = append(t.Rows, []string{"overhead", fmt.Sprintf("%.2f%%", r.OverheadPct), "-", "-"})
	return t
}

// WriteObsBench serializes the report as indented JSON.
func WriteObsBench(path string, r *ObsBenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644) //wikisearch:volatile benchmark report, regenerated on every run
}
