package bench

import "runtime"

// RunEnv records the toolchain, machine shape and dataset a benchmark ran
// on. Every BENCH_*.json report embeds one, so numbers captured on
// different checkouts or machines stay comparable at a glance instead of
// silently mixing core counts or graph sizes.
type RunEnv struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	// Dataset/Nodes/Edges identify the measured graph; Dataset is the
	// preset name ("wiki2017-sim", ...) or a synthetic-workload label.
	Dataset string `json:"dataset,omitempty"`
	Nodes   int    `json:"nodes,omitempty"`
	Edges   int    `json:"edges,omitempty"`
}

// CaptureEnv snapshots the current process environment plus the dataset
// identity for stamping into a benchmark report.
func CaptureEnv(dataset string, nodes, edges int) RunEnv {
	return RunEnv{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		Dataset:    dataset,
		Nodes:      nodes,
		Edges:      edges,
	}
}
