package bench

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"wikisearch/internal/graph"
)

func tinyEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(Config{Preset: "tiny-sim", QueriesPerSetting: 3, BanksMaxVisits: 20000, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestNewEnvRejectsUnknownPreset(t *testing.T) {
	if _, err := NewEnv(Config{Preset: "nope"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestTable2(t *testing.T) {
	env := tinyEnv(t)
	env.Cfg.SamplePairs = 200
	tbl, stats := Table2([]*Env{env})
	if len(stats) != 1 || len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if stats[0].Nodes != env.KB.Graph.NumNodes() || stats[0].AvgDist <= 0 {
		t.Fatalf("stats = %+v", stats[0])
	}
	if !strings.Contains(tbl.String(), "tiny-sim") {
		t.Fatal("table text missing dataset name")
	}
}

func TestFig3(t *testing.T) {
	env := tinyEnv(t)
	tbl, raw := env.Fig3(nil)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for key, fracs := range raw {
		sum := 0.0
		for _, f := range fracs {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s: distribution sums to %v", key, sum)
		}
	}
	// Fig. 3 property: larger α ⇒ more nodes at level 0.
	if raw["alpha-0.40"][0] < raw["alpha-0.05"][0] {
		t.Fatal("larger alpha should not decrease the level-0 mass")
	}
}

func TestExp1TinyShape(t *testing.T) {
	env := tinyEnv(t)
	tables, runs, err := env.Exp1VaryKnum([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(PhaseNames) {
		t.Fatalf("panels = %d, want %d", len(tables), len(PhaseNames))
	}
	// Every variant measured at every x.
	for _, v := range EfficiencyVariants {
		for _, x := range []string{"2", "3"} {
			r, ok := FindRun(runs, v, x)
			if !ok {
				t.Fatalf("missing run %s @%s", v, x)
			}
			if r.TotalMs <= 0 {
				t.Fatalf("run %s@%s has no time", v, x)
			}
			if v != VBanks && r.Answers == 0 {
				t.Fatalf("run %s@%s returned no answers", v, x)
			}
		}
	}
}

func TestExp2Exp3Tables(t *testing.T) {
	env := tinyEnv(t)
	tbl, runs, err := env.Exp2VaryTopk([]int{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(EfficiencyVariants) || len(runs) != 2*len(EfficiencyVariants) {
		t.Fatalf("rows=%d runs=%d", len(tbl.Rows), len(runs))
	}
	tbl3, runs3, err := env.Exp3VaryAlpha([]float64{0.1, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl3.Rows) != len(EfficiencyVariants) || len(runs3) != 2*len(EfficiencyVariants) {
		t.Fatalf("alpha rows=%d runs=%d", len(tbl3.Rows), len(runs3))
	}
}

func TestExp4Threads(t *testing.T) {
	env := tinyEnv(t)
	tables, runs, err := env.Exp4VaryThreads([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(PhaseNames) {
		t.Fatalf("panels = %d", len(tables))
	}
	if _, ok := FindRun(runs, VCPU, "1"); !ok {
		t.Fatal("missing CPU-Par run at Tnum=1")
	}
	if _, ok := FindRun(runs, VBanks, "1"); ok {
		t.Fatal("BANKS must not appear in the thread sweep")
	}
}

func TestTable4Storage(t *testing.T) {
	env := tinyEnv(t)
	tbl, costs := Table4([]*Env{env}, 8)
	if len(costs) != 1 || len(tbl.Rows) != 1 {
		t.Fatal("missing rows")
	}
	if costs[0].MaxRunning <= costs[0].PreStorage {
		t.Fatal("running storage must exceed pre-storage")
	}
}

func TestTable5(t *testing.T) {
	env := tinyEnv(t)
	tbl := Table5([]*Env{env})
	if len(tbl.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(tbl.Rows))
	}
	// Q11's rare keywords must have far lower kwf than Q10's.
	var kwfQ10, kwfQ11 string
	for _, r := range tbl.Rows {
		if r[0] == "Q10" {
			kwfQ10 = r[2]
		}
		if r[0] == "Q11" {
			kwfQ11 = r[2]
		}
	}
	if kwfQ10 == "" || kwfQ11 == "" {
		t.Fatal("missing Q10/Q11 rows")
	}
}

func TestEffectivenessTiny(t *testing.T) {
	env := tinyEnv(t)
	tables, cells, err := env.Effectiveness([]float64{0.1}, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	if len(cells) != 11*2 { // 11 queries × (BANKS + one α)
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Precision < 0 || c.Precision > 1 {
			t.Fatalf("precision out of range: %+v", c)
		}
	}
}

func TestAblations(t *testing.T) {
	env := tinyEnv(t)
	tbl, stats, err := env.AblationLevelCover(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 || len(tbl.Rows) != 2 {
		t.Fatalf("level-cover ablation rows = %d", len(tbl.Rows))
	}
	with, without := stats[0], stats[1]
	if with.Config != "with level-cover" || without.Config != "without level-cover" {
		t.Fatalf("configs = %q / %q", with.Config, without.Config)
	}
	// Without pruning answers cannot shrink, and nothing is reported pruned.
	if without.AvgNodes < with.AvgNodes {
		t.Fatalf("unpruned answers smaller: %v < %v", without.AvgNodes, with.AvgNodes)
	}
	if without.AvgPruned != 0 {
		t.Fatalf("unpruned run reports %v pruned nodes", without.AvgPruned)
	}

	tbl, stats, err = env.AblationActivation(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatal("missing activation ablation stats")
	}
	if stats[0].Answers == 0 || stats[1].Answers == 0 {
		t.Fatal("ablation produced no answers")
	}
	_ = tbl

	bt, err := env.AblationBaselines(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(bt.Rows) != 4 {
		t.Fatalf("baseline rows = %d, want 4", len(bt.Rows))
	}
}

func TestRepetition(t *testing.T) {
	env := tinyEnv(t)
	stats, err := env.Repetition("Q4", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("systems = %d", len(stats))
	}
	for _, s := range stats {
		if s.MeanJaccard < 0 || s.MeanJaccard > 1 {
			t.Fatalf("%s: jaccard = %v", s.System, s.MeanJaccard)
		}
		if s.Answers > 0 && s.MaxNodeRecurrence < 1 {
			t.Fatalf("%s: recurrence = %d with %d answers", s.System, s.MaxNodeRecurrence, s.Answers)
		}
	}
	if _, err := env.Repetition("Q99", 10); err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestJaccard(t *testing.T) {
	a := []graph.NodeID{1, 2, 3}
	b := []graph.NodeID{2, 3, 4}
	if j := jaccard(a, b); j < 0.499 || j > 0.501 {
		t.Fatalf("jaccard = %v, want 0.5", j)
	}
	if j := jaccard(a, a); j != 1 {
		t.Fatalf("self jaccard = %v", j)
	}
	if j := jaccard(nil, nil); j != 0 {
		t.Fatalf("empty jaccard = %v", j)
	}
	// Duplicates in one set must not inflate the measure.
	if j := jaccard([]graph.NodeID{1, 1, 2}, []graph.NodeID{2, 2}); j < 0.499 || j > 0.501 {
		t.Fatalf("dup jaccard = %v", j)
	}
}

func TestScaling(t *testing.T) {
	tbl, points, err := Scaling(Config{QueriesPerSetting: 2, Knum: 3, Threads: 2}, []int{1500, 3000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || len(tbl.Rows) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[1].Nodes <= points[0].Nodes {
		t.Fatal("sizes not increasing")
	}
	for _, p := range points {
		if p.TotalMs <= 0 || p.Answers <= 0 {
			t.Fatalf("point = %+v", p)
		}
	}
}

func TestCoreBenchTinyShape(t *testing.T) {
	cfg := CoreBenchConfig{
		Nodes: 600, Edges: 4000, Qs: []int{3}, Tnums: []int{1, 2},
		Kwf: 20, TopK: 30, MaxLevel: 32, Repeats: 1, Seed: 7,
	}
	rep, err := CoreBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(cfg.Qs) * len(cfg.Tnums); len(rep.Points) != want {
		t.Fatalf("points = %d, want %d", len(rep.Points), want)
	}
	if want := len(cfg.Qs) * len(cfg.Tnums); len(rep.Speedups) != want {
		t.Fatalf("speedups = %d, want %d", len(rep.Speedups), want)
	}
	for _, p := range rep.Points {
		if p.NsPerOp <= 0 || p.ExpandNsPerOp <= 0 || p.EdgesScanned <= 0 {
			t.Fatalf("empty point: %+v", p)
		}
		// The per-column reference kernel never scans fewer edges than the
		// flattened kernel on the same query.
		if p.Kernel == "reference" && p.EdgesScanned < rep.Points[0].EdgesScanned {
			t.Fatalf("reference scanned fewer edges than flat: %+v", p)
		}
	}
	for _, s := range rep.Speedups {
		if s.Total <= 0 || s.Expand <= 0 {
			t.Fatalf("empty speedup: %+v", s)
		}
	}
	if len(rep.Table().Rows) != len(rep.Points) || len(rep.SpeedupTable().Rows) != len(rep.Speedups) {
		t.Fatal("table rows do not match measurements")
	}
	path := t.TempDir() + "/core.json"
	if err := WriteCoreBench(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back CoreBenchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(rep.Points) || back.Config.Nodes != cfg.Nodes {
		t.Fatal("report did not round-trip")
	}
}

func TestMatrixFootprint(t *testing.T) {
	// §V-B example: 30M nodes × 10 keywords, with rows padded to whole
	// words (stride 16): 480MB, ~40ms at 12GB/s.
	bytes, sec := MatrixFootprint(30_000_000, 10, 12e9)
	if bytes != 480_000_000 {
		t.Fatalf("bytes = %d", bytes)
	}
	if sec < 0.035 || sec > 0.045 {
		t.Fatalf("transfer = %v s", sec)
	}
}

func TestTableString(t *testing.T) {
	tbl := Table{ID: "x", Title: "t", Header: []string{"a", "b"}, Rows: [][]string{{"1", "22"}}}
	s := tbl.String()
	if !strings.Contains(s, "== x — t ==") || !strings.Contains(s, "22") {
		t.Fatalf("table render:\n%s", s)
	}
}
