package bench

import (
	"fmt"

	"wikisearch"
	"wikisearch/internal/gen"
	"wikisearch/internal/text"
)

// ScalingPoint is one measurement of the graph-size sweep.
type ScalingPoint struct {
	Nodes   int
	Edges   int
	TotalMs float64
	Answers float64
}

// Scaling measures CPU-Par total time across a family of growing graphs
// (the paper's implicit wiki2017 → wiki2018 axis, extended): the Central
// Graph search should grow roughly linearly with graph size because the
// bottom-up stage is bounded by d levels of frontier work, which is the
// property behind the paper's "real-time search on graphs of this size"
// claim (§I).
func Scaling(cfg Config, sizes []int) (Table, []ScalingPoint, error) {
	cfg = cfg.Defaults()
	if len(sizes) == 0 {
		sizes = []int{15000, 30000, 60000, 120000}
	}
	t := Table{
		ID:     "scaling",
		Title:  "CPU-Par total time vs graph size (Knum=" + fmt.Sprint(cfg.Knum) + ")",
		Header: []string{"nodes", "edges", "avg total ms", "avg answers"},
	}
	var points []ScalingPoint
	for _, n := range sizes {
		kb := gen.Generate(gen.Config{
			Name:      fmt.Sprintf("scale-%d", n),
			Seed:      cfg.Seed + int64(n),
			Nodes:     n,
			AvgDegree: 8,
			VocabSize: n / 8,
		})
		eng, err := wikisearch.NewEngine(kb.Graph, wikisearch.EngineOptions{
			DistanceSamplePairs: 500, Seed: cfg.Seed,
		})
		if err != nil {
			return t, nil, err
		}
		env := &Env{Cfg: cfg, KB: kb, Eng: eng, Ix: text.BuildIndex(kb.Graph)}
		queries := env.Workload(cfg.Knum, cfg.QueriesPerSetting)
		r, err := env.measure(VCPU, queries, cfg.TopK, cfg.Alpha, cfg.Threads)
		if err != nil {
			return t, nil, err
		}
		p := ScalingPoint{
			Nodes:   kb.Graph.NumNodes(),
			Edges:   kb.Graph.NumEdges(),
			TotalMs: r.TotalMs,
			Answers: r.Answers,
		}
		points = append(points, p)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.Nodes), fmt.Sprint(p.Edges),
			fmt.Sprintf("%.3f", p.TotalMs), fmt.Sprintf("%.1f", p.Answers),
		})
	}
	return t, points, nil
}
