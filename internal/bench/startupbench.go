package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"wikisearch"
)

// StartupBenchConfig sizes the cold-start benchmark: one dataset prepared
// once, saved in both dump formats, then repeatedly loaded from scratch.
// "Cold" here means a fresh LoadEngine against the OS page cache — the
// v2 decode cost it measures (allocate + copy + validate every array) is
// paid identically warm or cold, while v3's mmap maps pages lazily.
type StartupBenchConfig struct {
	Preset  string `json:"preset"`  // dataset preset; default "wiki2018-sim"
	Seed    int64  `json:"seed"`    // generation seed override
	Repeats int    `json:"repeats"` // loads averaged per format (default 5)
	Threads int    `json:"threads"` // engine preparation parallelism
}

// Defaults fills unset fields.
func (c StartupBenchConfig) Defaults() StartupBenchConfig {
	if c.Preset == "" {
		c.Preset = "wiki2018-sim"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Repeats <= 0 {
		c.Repeats = 5
	}
	return c
}

// StartupBenchPoint is one format's measured startup profile.
type StartupBenchPoint struct {
	Format    string  `json:"format"`
	FileBytes int64   `json:"file_bytes"`
	LoadMode  string  `json:"load_mode"` // decode / mmap / read
	LoadMsMin float64 `json:"load_ms_min"`
	LoadMsAvg float64 `json:"load_ms_avg"`
	// FirstQueryMs is load plus one warm-up search — the user-visible
	// time to first answer on a fresh process.
	FirstQueryMs float64 `json:"first_query_ms"`
}

// StartupBenchReport is the full outcome, serialized to BENCH_startup.json
// by `benchrunner -exp startup`.
type StartupBenchReport struct {
	Config StartupBenchConfig  `json:"config"`
	Env    RunEnv              `json:"env"`
	Nodes  int                 `json:"nodes"`
	Edges  int                 `json:"edges"`
	Points []StartupBenchPoint `json:"points"`
	// Speedup is v2 min-load-time over v3 min-load-time.
	Speedup float64 `json:"speedup"`
}

// StartupBench prepares one engine, saves it in both formats and measures
// LoadEngine latency for each. The v3 point also verifies the loaded
// engine took the mmap path where the platform provides it.
func StartupBench(cfg StartupBenchConfig) (*StartupBenchReport, error) {
	cfg = cfg.Defaults()
	ds, err := wikisearch.GenerateDataset(wikisearch.DatasetConfig{Preset: cfg.Preset, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	eng, err := wikisearch.NewEngine(ds.Graph, wikisearch.EngineOptions{Threads: cfg.Threads})
	if err != nil {
		return nil, err
	}
	eng.SetName(ds.Name)

	dir, err := os.MkdirTemp("", "wikisearch-startup-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	rep := &StartupBenchReport{
		Config: cfg,
		Env:    CaptureEnv(cfg.Preset, ds.Graph.NumNodes(), ds.Graph.NumEdges()),
		Nodes:  ds.Graph.NumNodes(),
		Edges:  ds.Graph.NumEdges(),
	}
	var v2Min, v3Min float64
	for _, fm := range []struct {
		name   string
		format wikisearch.DumpFormat
	}{
		{"v2", wikisearch.FormatV2},
		{"v3", wikisearch.FormatV3},
	} {
		path := filepath.Join(dir, "kb."+fm.name+".wskb")
		if err := eng.SaveFormat(path, fm.format); err != nil {
			return nil, err
		}
		pt, err := measureStartup(path, fm.name, cfg.Repeats)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, *pt)
		switch fm.name {
		case "v2":
			v2Min = pt.LoadMsMin
		case "v3":
			v3Min = pt.LoadMsMin
		}
	}
	if v3Min > 0 {
		rep.Speedup = v2Min / v3Min
	}
	return rep, nil
}

// measureStartup loads path repeats times from scratch, closing each
// engine before the next load, and once more to time load+first-search.
func measureStartup(path, format string, repeats int) (*StartupBenchPoint, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	pt := &StartupBenchPoint{Format: format, FileBytes: st.Size()}

	var totalMs float64
	pt.LoadMsMin = -1
	for i := 0; i < repeats; i++ {
		t0 := time.Now()
		e, err := wikisearch.LoadEngine(path, wikisearch.EngineOptions{})
		if err != nil {
			return nil, err
		}
		ms := float64(time.Since(t0)) / float64(time.Millisecond)
		pt.LoadMode = e.LoadInfo().Mode
		if err := e.Close(); err != nil {
			return nil, err
		}
		totalMs += ms
		if pt.LoadMsMin < 0 || ms < pt.LoadMsMin {
			pt.LoadMsMin = ms
		}
	}
	pt.LoadMsAvg = totalMs / float64(repeats)

	t0 := time.Now()
	e, err := wikisearch.LoadEngine(path, wikisearch.EngineOptions{})
	if err != nil {
		return nil, err
	}
	defer e.Close()
	if _, err := e.Search(context.Background(), wikisearch.Query{Text: "research article", TopK: 5, Threads: 2}); err != nil {
		// Some generated vocabularies may miss the probe terms; the load
		// timing above is the headline number either way.
		pt.FirstQueryMs = float64(time.Since(t0)) / float64(time.Millisecond)
		return pt, nil
	}
	pt.FirstQueryMs = float64(time.Since(t0)) / float64(time.Millisecond)
	return pt, nil
}

// Table renders the report for the terminal.
func (r *StartupBenchReport) Table() Table {
	t := Table{
		ID: "startup",
		Title: fmt.Sprintf("Cold-start latency, %s (%d nodes, %d edges): v2 decode vs v3 mmap",
			r.Config.Preset, r.Nodes, r.Edges),
		Header: []string{"format", "mode", "file MB", "load ms (min)", "load ms (avg)", "first query ms"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			p.Format,
			p.LoadMode,
			fmt.Sprintf("%.1f", float64(p.FileBytes)/(1<<20)),
			fmt.Sprintf("%.2f", p.LoadMsMin),
			fmt.Sprintf("%.2f", p.LoadMsAvg),
			fmt.Sprintf("%.2f", p.FirstQueryMs),
		})
	}
	t.Rows = append(t.Rows, []string{"speedup", "", "", fmt.Sprintf("%.1fx", r.Speedup), "", ""})
	return t
}

// WriteStartupBench serializes the report as indented JSON.
func WriteStartupBench(path string, r *StartupBenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644) //wikisearch:volatile benchmark report, regenerated on every run
}
