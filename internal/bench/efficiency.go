package bench

import (
	"fmt"
)

// EfficiencyVariants is Fig. 6/7's series order.
var EfficiencyVariants = []string{VGPU, VCPU, VCPUD, VBanks}

// Exp1VaryKnum reproduces Fig. 6 (wiki2017) / Fig. 7 (wiki2018): per-phase
// profile and total time for every variant while the number of keywords
// varies. Returns one table per phase panel plus the raw runs.
func (e *Env) Exp1VaryKnum(knums []int) ([]Table, []Run, error) {
	if len(knums) == 0 {
		knums = []int{2, 4, 6, 8, 10}
	}
	var runs []Run
	for _, knum := range knums {
		queries := e.Workload(knum, e.Cfg.QueriesPerSetting)
		for _, v := range EfficiencyVariants {
			if v == VBanks {
				// BANKS has no phase breakdown; measured for Total only.
			}
			r, err := e.measure(v, queries, e.Cfg.TopK, e.Cfg.Alpha, e.Cfg.Threads)
			if err != nil {
				return nil, nil, err
			}
			r.X = fmt.Sprint(knum)
			runs = append(runs, r)
		}
	}
	return phasePanels("exp1", fmt.Sprintf("Vary Knum on %s (Fig. 6/7)", e.KB.Name), "Knum", knums, runs), runs, nil
}

// Exp2VaryTopk reproduces Fig. 8 row 1: total time while k varies.
func (e *Env) Exp2VaryTopk(topks []int) (Table, []Run, error) {
	if len(topks) == 0 {
		topks = []int{1, 10, 20, 30, 40, 50}
	}
	queries := e.Workload(e.Cfg.Knum, e.Cfg.QueriesPerSetting)
	var runs []Run
	for _, k := range topks {
		for _, v := range EfficiencyVariants {
			r, err := e.measure(v, queries, k, e.Cfg.Alpha, e.Cfg.Threads)
			if err != nil {
				return Table{}, nil, err
			}
			r.X = fmt.Sprint(k)
			runs = append(runs, r)
		}
	}
	ints := topks
	return totalPanel("exp2", fmt.Sprintf("Vary Topk on %s (Fig. 8)", e.KB.Name), "Topk", intsToStrings(ints), runs), runs, nil
}

// Exp3VaryAlpha reproduces Fig. 8 row 2: total time while α varies.
func (e *Env) Exp3VaryAlpha(alphas []float64) (Table, []Run, error) {
	if len(alphas) == 0 {
		alphas = []float64{0.05, 0.1, 0.2, 0.3, 0.4}
	}
	queries := e.Workload(e.Cfg.Knum, e.Cfg.QueriesPerSetting)
	var runs []Run
	var xs []string
	for _, a := range alphas {
		x := fmt.Sprintf("%.2f", a)
		xs = append(xs, x)
		// BANKS-II does not depend on α; the paper still plots it as a
		// flat reference line, so it is measured once per α here too.
		for _, v := range EfficiencyVariants {
			r, err := e.measure(v, queries, e.Cfg.TopK, a, e.Cfg.Threads)
			if err != nil {
				return Table{}, nil, err
			}
			r.X = x
			runs = append(runs, r)
		}
	}
	return totalPanel("exp3", fmt.Sprintf("Vary alpha on %s (Fig. 8)", e.KB.Name), "alpha", xs, runs), runs, nil
}

// Exp4VaryThreads reproduces Fig. 9/10: per-phase profile while Tnum
// varies. Only the CPU variants depend on Tnum for the bottom-up stage;
// GPU-Par is included because its top-down stage runs on the CPU (§VI-A).
func (e *Env) Exp4VaryThreads(threads []int) ([]Table, []Run, error) {
	if len(threads) == 0 {
		threads = []int{1, 2, 5, 10, 20, 30, 40, 50}
	}
	queries := e.Workload(e.Cfg.Knum, e.Cfg.QueriesPerSetting)
	var runs []Run
	for _, tn := range threads {
		for _, v := range []string{VGPU, VCPU, VCPUD} {
			r, err := e.measure(v, queries, e.Cfg.TopK, e.Cfg.Alpha, tn)
			if err != nil {
				return nil, nil, err
			}
			r.X = fmt.Sprint(tn)
			runs = append(runs, r)
		}
	}
	return phasePanels("exp4", fmt.Sprintf("Vary Tnum on %s (Fig. 9/10)", e.KB.Name), "Tnum", threads, runs), runs, nil
}

// phasePanels lays runs out as Fig. 6/7/9/10: one table per phase, rows =
// variants, columns = x values.
func phasePanels(id, title, xname string, xs []int, runs []Run) []Table {
	var tables []Table
	for _, phase := range PhaseNames {
		t := Table{
			ID:     id + "/" + phase,
			Title:  title + " — " + phase + " (ms)",
			Header: append([]string{"variant \\ " + xname}, intsToStrings(xs)...),
		}
		for _, v := range EfficiencyVariants {
			row := []string{v}
			present := false
			for _, x := range intsToStrings(xs) {
				val, ok := lookup(runs, v, x)
				if !ok {
					continue
				}
				present = true
				if phase == "Total" {
					row = append(row, msCapped(val))
				} else if p, ok := val.Phases[phase]; ok {
					row = append(row, ms(p))
				} else {
					row = append(row, "-")
				}
			}
			if present {
				t.Rows = append(t.Rows, row)
			}
		}
		tables = append(tables, t)
	}
	return tables
}

// totalPanel lays runs out as Fig. 8: total time only.
func totalPanel(id, title, xname string, xs []string, runs []Run) Table {
	t := Table{
		ID:     id,
		Title:  title + " — Total time (ms)",
		Header: append([]string{"variant \\ " + xname}, xs...),
	}
	for _, v := range EfficiencyVariants {
		row := []string{v}
		for _, x := range xs {
			if val, ok := lookup(runs, v, x); ok {
				row = append(row, msCapped(val))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// msCapped renders a total with a trailing '*' when some BANKS queries hit
// the visit cap (the timing is then a lower bound).
func msCapped(r Run) string {
	s := ms(r.TotalMs)
	if r.CapHits > 0 {
		s += "*"
	}
	return s
}

func lookup(runs []Run, variant, x string) (Run, bool) {
	for _, r := range runs {
		if r.Variant == variant && r.X == x {
			return r, true
		}
	}
	return Run{}, false
}

func intsToStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprint(x)
	}
	return out
}

// FindRun retrieves an averaged measurement from a run list (test helper).
func FindRun(runs []Run, variant, x string) (Run, bool) { return lookup(runs, variant, x) }
