package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"wikisearch"
	"wikisearch/internal/graph"
)

// MutateBenchConfig sizes the live-mutation throughput benchmark: the same
// closed-loop Zipf query swarm as the batching benchmark is driven through
// one engine three times — static (no mutator), idle (mutator open, empty
// delta), and stream (a concurrent writer publishing small batches while
// the clients search). The static-versus-idle comparison prices the
// epoch-pinning machinery itself; static-versus-stream prices searching
// through live overlays plus publish churn.
type MutateBenchConfig struct {
	Preset  string  // dataset preset (default "tiny-sim")
	Clients int     // concurrent closed-loop clients (default 32)
	Ops     int     // searches measured per side (default 512)
	Seed    int64   // workload seed (default 1)
	Skew    float64 // Zipf exponent of the query stream (default 1.4)
	// BatchOps is the number of mutations the stream writer applies per
	// publish (default 8); PublishEvery is the pause between publishes
	// (default 2ms), so the stream side sees a steady epoch turnover
	// rather than one giant delta.
	BatchOps     int
	PublishEvery time.Duration
	// CompactEvery publishes between compactions on the stream side
	// (default 8): the clock covers overlay search, publish, and the
	// occasional full compaction, the complete live-update duty cycle.
	CompactEvery int
}

// Defaults fills unset fields.
func (c MutateBenchConfig) Defaults() MutateBenchConfig {
	if c.Preset == "" {
		c.Preset = "tiny-sim"
	}
	if c.Clients <= 0 {
		c.Clients = 32
	}
	if c.Ops <= 0 {
		c.Ops = 512
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Skew <= 1 {
		c.Skew = 1.4
	}
	if c.BatchOps <= 0 {
		c.BatchOps = 8
	}
	if c.PublishEvery <= 0 {
		c.PublishEvery = 2 * time.Millisecond
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = 8
	}
	return c
}

// MutateBenchPoint is one measured side.
type MutateBenchPoint struct {
	Mode        string  `json:"mode"` // "static", "idle" or "stream"
	Ops         int     `json:"ops"`
	WallMs      float64 `json:"wall_ms"`
	QPS         float64 `json:"qps"`
	MutationOps int     `json:"mutation_ops,omitempty"` // stream side: ops applied
	Publishes   int64   `json:"publishes,omitempty"`    // stream side: epochs published
	Compactions int64   `json:"compactions,omitempty"`  // stream side: full compactions
}

// MutateBenchReport is the benchmark outcome, serialized to
// BENCH_mutate.json by `benchrunner -exp mutate`.
type MutateBenchReport struct {
	Config  MutateBenchConfig  `json:"config"`
	Env     RunEnv             `json:"env"`
	Queries int                `json:"distinct_queries"`
	Points  []MutateBenchPoint `json:"points"`
	// IdlePenaltyPct is how much QPS an open-but-idle mutator costs over
	// the static engine: (static−idle)/static·100. The epoch pin is two
	// atomics per search, so this should sit inside run-to-run noise.
	IdlePenaltyPct float64 `json:"idle_penalty_pct"`
	// StreamPenaltyPct is the same ratio for the live mutation stream.
	StreamPenaltyPct float64 `json:"stream_penalty_pct"`
}

// mutateBenchStream applies small mutation batches and publishes them until
// stop closes, compacting every CompactEvery-th publish. Mutations are
// append-heavy (new nodes wired to random existing ones) so the overlay the
// searchers read through keeps growing between compactions.
func mutateBenchStream(mut *wikisearch.Mutator, g *graph.Graph, cfg MutateBenchConfig, stop <-chan struct{}) (ops int, err error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	rel := g.RelName(0)
	base := g.NumNodes()
	publishes := 0
	for n := 0; ; n++ {
		select {
		case <-stop:
			return ops, nil
		default:
		}
		for i := 0; i < cfg.BatchOps; i++ {
			switch rng.Intn(4) {
			case 0:
				id, e := mut.AddNode(fmt.Sprintf("live node %d", ops), "benchmark mutation stream vertex")
				if e != nil {
					return ops, e
				}
				if e := mut.AddEdge(id, graph.NodeID(rng.Intn(base)), rel); e != nil {
					return ops, e
				}
				ops++ // the paired edge
			case 1:
				v := graph.NodeID(rng.Intn(base))
				if e := mut.SetKeywords(v, g.Label(v), g.Description(v)); e != nil {
					return ops, e
				}
			default:
				if e := mut.AddEdge(graph.NodeID(rng.Intn(base)), graph.NodeID(rng.Intn(base)), rel); e != nil {
					return ops, e
				}
			}
			ops++
		}
		publishes++
		if publishes%cfg.CompactEvery == 0 {
			_, err = mut.Compact()
		} else {
			_, err = mut.Publish()
		}
		if err != nil {
			return ops, err
		}
		select {
		case <-stop:
			return ops, nil
		case <-time.After(cfg.PublishEvery):
		}
	}
}

// MutateBench measures search throughput against a static engine, an idle
// mutator, and a live mutation stream on identical workloads.
func MutateBench(cfg MutateBenchConfig) (*MutateBenchReport, error) {
	cfg = cfg.Defaults()
	env, err := NewEnv(Config{Preset: cfg.Preset, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	pool := batchBenchWorkload(env.KB, env.Ix, cfg.Seed)
	if len(pool) == 0 {
		return nil, fmt.Errorf("bench: empty mutate workload")
	}
	sched := batchBenchSchedule(cfg.Ops, len(pool), cfg.Skew, cfg.Seed)

	rep := &MutateBenchReport{
		Config:  cfg,
		Env:     CaptureEnv(cfg.Preset, env.KB.Graph.NumNodes(), env.KB.Graph.NumEdges()),
		Queries: len(pool),
	}

	// Warm the engine (level cache, pooled states) outside the clock.
	for _, q := range pool[:min(len(pool), 8)] {
		if _, err := env.Eng.Search(context.Background(), q); err != nil {
			return nil, err
		}
	}

	// Each comparison side runs twice and keeps the faster pass: the
	// workload is deterministic, so the slower pass only measures machine
	// interference, not the mutation machinery under test.
	const passes = 2
	measure := func(mode string) (MutateBenchPoint, error) {
		p := MutateBenchPoint{Mode: mode, Ops: cfg.Ops}
		for pass := 0; pass < passes; pass++ {
			wall, err := batchBenchDrive(env.Eng, pool, sched, cfg.Clients)
			if err != nil {
				return p, err
			}
			if ms := float64(wall) / float64(time.Millisecond); p.WallMs == 0 || ms < p.WallMs {
				p.WallMs = ms
				p.QPS = float64(cfg.Ops) / wall.Seconds()
			}
		}
		return p, nil
	}

	static, err := measure("static")
	if err != nil {
		return nil, err
	}
	rep.Points = append(rep.Points, static)

	// Idle: the mutator is open (auto-compaction off so nothing moves) and
	// the delta is empty, so every search still takes the epoch-pin path.
	mut, err := env.Eng.NewMutator(wikisearch.MutatorOptions{CompactAfterOps: -1})
	if err != nil {
		return nil, err
	}
	idle, err := measure("idle")
	if err != nil {
		mut.Close()
		return nil, err
	}
	rep.Points = append(rep.Points, idle)

	// Stream: a single writer publishes small batches while the swarm
	// searches. One timed pass — the mutation stream makes the two passes
	// non-identical, so "keep the faster" would just reward a lazy stream.
	var (
		stop      = make(chan struct{})
		streamErr error
		streamOps int
		wg        sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		streamOps, streamErr = mutateBenchStream(mut, env.KB.Graph, cfg, stop)
	}()
	wall, err := batchBenchDrive(env.Eng, pool, sched, cfg.Clients)
	close(stop)
	wg.Wait()
	if err == nil {
		err = streamErr
	}
	if err != nil {
		mut.Close()
		return nil, err
	}
	st := mut.Stats()
	if err := mut.Close(); err != nil {
		return nil, err
	}
	stream := MutateBenchPoint{
		Mode:        "stream",
		Ops:         cfg.Ops,
		WallMs:      float64(wall) / float64(time.Millisecond),
		QPS:         float64(cfg.Ops) / wall.Seconds(),
		MutationOps: streamOps,
		Publishes:   st.Publishes,
		Compactions: st.Compactions,
	}
	rep.Points = append(rep.Points, stream)

	if static.QPS > 0 {
		rep.IdlePenaltyPct = (static.QPS - idle.QPS) / static.QPS * 100
		rep.StreamPenaltyPct = (static.QPS - stream.QPS) / static.QPS * 100
	}
	return rep, nil
}

// MutateBenchTable renders the report for benchrunner.
func MutateBenchTable(r *MutateBenchReport) Table {
	t := Table{
		ID: "mutate",
		Title: fmt.Sprintf("Search throughput under live mutations on %s (%d clients, %d ops/publish, compact every %d)",
			r.Config.Preset, r.Config.Clients, r.Config.BatchOps, r.Config.CompactEvery),
		Header: []string{"mode", "QPS", "wall ms", "mutation ops", "publishes", "compactions"},
	}
	for _, p := range r.Points {
		mo, pub, cmp := "-", "-", "-"
		if p.Mode == "stream" {
			mo = fmt.Sprintf("%d", p.MutationOps)
			pub = fmt.Sprintf("%d", p.Publishes)
			cmp = fmt.Sprintf("%d", p.Compactions)
		}
		t.Rows = append(t.Rows, []string{
			p.Mode, fmt.Sprintf("%.0f", p.QPS), fmt.Sprintf("%.1f", p.WallMs), mo, pub, cmp,
		})
	}
	t.Rows = append(t.Rows, []string{"idle penalty", fmt.Sprintf("%.1f%%", r.IdlePenaltyPct), "-", "-", "-", "-"})
	t.Rows = append(t.Rows, []string{"stream penalty", fmt.Sprintf("%.1f%%", r.StreamPenaltyPct), "-", "-", "-", "-"})
	return t
}

// WriteMutateBench serializes the report as indented JSON.
func WriteMutateBench(path string, r *MutateBenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644) //wikisearch:volatile benchmark report, regenerated on every run
}
