package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"wikisearch"
)

// ShardBenchConfig sizes the sharded-search benchmark: the same wiki-sim
// efficiency workload replays through the engine once on the solo path and
// once per shard count, and the report compares sustained QPS plus the
// coordinator's per-level exchange cost. Both sides get the same Tnum
// thread budget, so the comparison is equal-core: the measured difference
// is what edge-cut partitioning buys (or costs) at identical parallelism,
// not a parallelism shift.
type ShardBenchConfig struct {
	Preset  string `json:"preset"`  // dataset preset (default "wiki2017-sim")
	Shards  []int  `json:"shards"`  // shard counts swept (default 2, 4)
	Knum    int    `json:"knum"`    // keywords per query (default 4)
	Queries int    `json:"queries"` // distinct workload queries (default 10)
	Rounds  int    `json:"rounds"`  // workload replays per measured pass (default 4)
	Threads int    `json:"threads"` // Tnum per search, both sides (default 2)
	TopK    int    `json:"topk"`    // answers requested (default 20)
	Seed    int64  `json:"seed"`    // workload seed (default 1)
	Passes  int    `json:"passes"`  // interleaved passes, fastest kept (default 3)
}

// Defaults fills unset fields.
func (c ShardBenchConfig) Defaults() ShardBenchConfig {
	if c.Preset == "" {
		c.Preset = "wiki2017-sim"
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{2, 4}
	}
	if c.Knum <= 0 {
		c.Knum = 4
	}
	if c.Queries <= 0 {
		c.Queries = 10
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	if c.Threads <= 0 {
		c.Threads = 2
	}
	if c.TopK <= 0 {
		c.TopK = 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Passes <= 0 {
		c.Passes = 3
	}
	return c
}

// ShardBenchPoint is one measured side: the solo baseline or one shard
// count. The exchange/merge columns come from the coordinator's own
// monotonic spans summed over the side's fastest pass, so the per-level
// exchange cost is measured inside the engine, not inferred from wall time.
type ShardBenchPoint struct {
	Mode    string  `json:"mode"` // "solo" or "shards-N"
	Shards  int     `json:"shards,omitempty"`
	Ops     int     `json:"ops"`
	WallMs  float64 `json:"wall_ms"`
	QPS     float64 `json:"qps"`
	Speedup float64 `json:"speedup_vs_solo,omitempty"`
	// Levels and Messages total over the pass; ExchangeMs/MergeMs are the
	// coordinator's time applying boundary activations and merging Central
	// Nodes, and ExchangeUsPerLevel = ExchangeMs / Levels is the headline
	// per-BFS-level cross-shard exchange cost.
	Levels             int64   `json:"levels,omitempty"`
	Messages           int64   `json:"exchange_messages,omitempty"`
	ExchangeMs         float64 `json:"exchange_ms,omitempty"`
	ExchangeUsPerLevel float64 `json:"exchange_us_per_level,omitempty"`
	MergeMs            float64 `json:"merge_ms,omitempty"`
	AvgImbalance       float64 `json:"avg_imbalance,omitempty"`
	CutEdges           int     `json:"cut_edges,omitempty"`
}

// ShardBenchReport is the benchmark outcome, serialized to BENCH_shard.json
// by `benchrunner -exp shard`.
type ShardBenchReport struct {
	Config  ShardBenchConfig  `json:"config"`
	Env     RunEnv            `json:"env"`
	Queries int               `json:"distinct_queries"`
	Points  []ShardBenchPoint `json:"points"`
	// BestSpeedup is the best sharded QPS over solo QPS.
	BestSpeedup float64 `json:"best_speedup"`
}

// shardBenchDrive replays the workload rounds times on one engine
// configuration and returns the wall time plus the summed per-query shard
// telemetry (zero for the solo side).
func shardBenchDrive(eng *wikisearch.Engine, pool []wikisearch.Query, rounds int) (time.Duration, ShardBenchPoint, error) {
	var agg ShardBenchPoint
	var imbalance float64
	var sharded int
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, q := range pool {
			res, err := eng.Search(context.Background(), q)
			if err != nil {
				return 0, agg, err
			}
			if sh := res.Shard; sh != nil {
				sharded++
				agg.Levels += int64(sh.Levels)
				agg.Messages += sh.Messages
				agg.ExchangeMs += float64(sh.Exchange) / float64(time.Millisecond)
				agg.MergeMs += float64(sh.Merge) / float64(time.Millisecond)
				imbalance += sh.Imbalance
			}
		}
	}
	wall := time.Since(start)
	if sharded > 0 {
		agg.AvgImbalance = imbalance / float64(sharded)
	}
	if agg.Levels > 0 {
		agg.ExchangeUsPerLevel = agg.ExchangeMs * 1e3 / float64(agg.Levels)
	}
	return wall, agg, nil
}

// ShardBench measures solo-versus-sharded throughput on one engine with an
// identical sequential workload. The sides interleave pass by pass and
// each keeps its fastest, so slow machine-level drift lands on all of them
// equally; the engine's coordinator cache makes the per-pass mode switches
// cheap (the partition is built once per shard count, on the first pass).
// Every pass re-warms briefly and forces a collection before the clock, so
// neither mode-switch GC debt nor the other side's cache residue lands
// inside a timed drive.
func ShardBench(cfg ShardBenchConfig) (*ShardBenchReport, error) {
	cfg = cfg.Defaults()
	env, err := NewEnv(Config{Preset: cfg.Preset, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer env.Eng.Close()
	var pool []wikisearch.Query
	for _, text := range env.Workload(cfg.Knum, cfg.Queries) {
		pool = append(pool, wikisearch.Query{Text: text, TopK: cfg.TopK, Threads: cfg.Threads})
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("bench: empty shard workload")
	}
	ops := len(pool) * cfg.Rounds

	rep := &ShardBenchReport{
		Config:  cfg,
		Env:     CaptureEnv(cfg.Preset, env.KB.Graph.NumNodes(), env.KB.Graph.NumEdges()),
		Queries: len(pool),
	}

	// One side per mode, measured once per pass; each keeps its fastest
	// pass (wall time and that pass's telemetry together).
	sides := []ShardBenchPoint{{Mode: "solo", Ops: ops}}
	for _, n := range cfg.Shards {
		sides = append(sides, ShardBenchPoint{Mode: fmt.Sprintf("shards-%d", n), Shards: n, Ops: ops})
	}

	measure := func(pt *ShardBenchPoint, first bool) error {
		if pt.Shards > 0 {
			if err := env.Eng.EnableSharding(pt.Shards); err != nil {
				return err
			}
		} else {
			env.Eng.DisableSharding()
		}
		// Warm the side outside the clock: the full workload on the first
		// pass (pooled runs, level caches, the partition's first-touch page
		// faults), a short re-warm on later ones. The forced collection
		// pays mode-switch GC debt before the clock starts, not inside a
		// measured drive.
		warm := pool
		if !first && len(warm) > 2 {
			warm = warm[:2]
		}
		if _, _, err := shardBenchDrive(env.Eng, warm, 1); err != nil {
			return err
		}
		runtime.GC()
		wall, agg, err := shardBenchDrive(env.Eng, pool, cfg.Rounds)
		if err != nil {
			return err
		}
		if ms := float64(wall) / float64(time.Millisecond); pt.WallMs == 0 || ms < pt.WallMs {
			pt.WallMs = ms
			pt.QPS = float64(ops) / wall.Seconds()
			pt.Levels = agg.Levels
			pt.Messages = agg.Messages
			pt.ExchangeMs = agg.ExchangeMs
			pt.ExchangeUsPerLevel = agg.ExchangeUsPerLevel
			pt.MergeMs = agg.MergeMs
			pt.AvgImbalance = agg.AvgImbalance
			if st, ok := env.Eng.ShardStats(); ok {
				pt.CutEdges = st.CutEdges
			}
		}
		return nil
	}

	for pass := 0; pass < cfg.Passes; pass++ {
		for i := range sides {
			if err := measure(&sides[i], pass == 0); err != nil {
				return nil, err
			}
		}
	}
	env.Eng.DisableSharding()

	solo := sides[0].QPS
	for i := range sides {
		if sides[i].Shards > 0 && solo > 0 {
			sides[i].Speedup = sides[i].QPS / solo
			if sides[i].Speedup > rep.BestSpeedup {
				rep.BestSpeedup = sides[i].Speedup
			}
		}
		rep.Points = append(rep.Points, sides[i])
	}
	return rep, nil
}

// ShardBenchTable renders the report for benchrunner.
func ShardBenchTable(r *ShardBenchReport) Table {
	t := Table{
		ID: "shard",
		Title: fmt.Sprintf("Sharded search on %s (%d queries × %d rounds, knum=%d, Tnum=%d, equal-core)",
			r.Config.Preset, r.Queries, r.Config.Rounds, r.Config.Knum, r.Config.Threads),
		Header: []string{"mode", "QPS", "wall ms", "vs solo", "exchange µs/level", "messages", "merge ms", "imbalance", "cut edges"},
	}
	for _, p := range r.Points {
		sp, ex, ms, mg, im, cut := "-", "-", "-", "-", "-", "-"
		if p.Shards > 0 {
			sp = fmt.Sprintf("%.2fx", p.Speedup)
			ex = fmt.Sprintf("%.1f", p.ExchangeUsPerLevel)
			ms = fmt.Sprintf("%d", p.Messages)
			mg = fmt.Sprintf("%.1f", p.MergeMs)
			im = fmt.Sprintf("%.2f", p.AvgImbalance)
			cut = fmt.Sprintf("%d", p.CutEdges)
		}
		t.Rows = append(t.Rows, []string{
			p.Mode, fmt.Sprintf("%.1f", p.QPS), fmt.Sprintf("%.1f", p.WallMs), sp, ex, ms, mg, im, cut,
		})
	}
	return t
}

// WriteShardBench serializes the report as indented JSON.
func WriteShardBench(path string, r *ShardBenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644) //wikisearch:volatile benchmark report, regenerated on every run
}
