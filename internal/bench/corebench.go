package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"wikisearch/internal/core"
	"wikisearch/internal/graph"
)

// CoreBenchConfig sizes the search-kernel micro-benchmark: the flattened
// expansion kernel versus the per-column reference kernel, swept over
// keyword counts and thread counts on one seeded random graph. The default
// workload mixes q-1 frequent, co-occurring terms with one rare term (the
// paper's high-kwf regime), so the BFS waves overlap and multi-column
// expansion has work to amortize.
type CoreBenchConfig struct {
	Nodes    int   `json:"nodes"`
	Edges    int   `json:"edges"`
	Qs       []int `json:"qs"`    // keyword counts swept
	Tnums    []int `json:"tnums"` // thread counts swept
	Kwf      int   `json:"kwf"`   // source nodes per keyword (Table V's kwf)
	TopK     int   `json:"topk"`
	MaxLevel int   `json:"max_level"`
	Repeats  int   `json:"repeats"` // measured queries per setting
	Seed     int64 `json:"seed"`
}

// Defaults fills unset fields with the standard sweep.
func (c CoreBenchConfig) Defaults() CoreBenchConfig {
	if c.Nodes <= 0 {
		c.Nodes = 10000
	}
	if c.Edges <= 0 {
		c.Edges = 120000
	}
	if len(c.Qs) == 0 {
		c.Qs = []int{3, 4, 6}
	}
	if len(c.Tnums) == 0 {
		c.Tnums = []int{1, 2, 4}
		if n := runtime.NumCPU(); n > 4 {
			c.Tnums = append(c.Tnums, n)
		}
	}
	if c.Kwf <= 0 {
		c.Kwf = 200
	}
	if c.TopK <= 0 {
		c.TopK = 400
	}
	if c.MaxLevel <= 0 {
		c.MaxLevel = 64
	}
	if c.Repeats <= 0 {
		c.Repeats = 5
	}
	if c.Seed == 0 {
		c.Seed = 99
	}
	return c
}

// CoreBenchPoint is one measured (kernel, Tnum, q) setting, averaged over
// Repeats warm single-query bottom-up runs.
type CoreBenchPoint struct {
	Kernel        string  `json:"kernel"`
	Tnum          int     `json:"tnum"`
	Q             int     `json:"q"`
	NsPerOp       int64   `json:"ns_per_op"`        // whole bottom-up stage
	ExpandNsPerOp int64   `json:"expand_ns_per_op"` // expansion phase only
	EdgesScanned  int64   `json:"edges_scanned_per_op"`
	EdgesPerSec   float64 `json:"edges_per_sec"`
	AllocsPerOp   float64 `json:"allocs_per_op"` // 0 at steady state
	Levels        int     `json:"levels"`
	FrontierTotal int64   `json:"frontier_total"`
}

// CoreBenchSpeedup is the reference/flat ratio at one (q, Tnum) setting.
type CoreBenchSpeedup struct {
	Q      int     `json:"q"`
	Tnum   int     `json:"tnum"`
	Total  float64 `json:"total"`  // bottom-up wall-time ratio
	Expand float64 `json:"expand"` // expansion-phase ratio
}

// CoreBenchReport is the full benchmark outcome, serialized to
// BENCH_core.json by `make bench`.
type CoreBenchReport struct {
	Config   CoreBenchConfig    `json:"config"`
	Env      RunEnv             `json:"env"`
	Points   []CoreBenchPoint   `json:"points"`
	Speedups []CoreBenchSpeedup `json:"speedups"`
}

var kernelNames = map[core.KernelKind]string{
	core.KernelFlat:      "flat",
	core.KernelReference: "reference",
}

// CoreBench runs the kernel sweep. Every setting searches the same graph
// with the same sources, on a warm reusable state, so the points are
// directly comparable and the allocation figures reflect steady-state
// serving.
func CoreBench(cfg CoreBenchConfig) (*CoreBenchReport, error) {
	cfg = cfg.Defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	gb := graph.NewBuilder()
	for i := 0; i < cfg.Nodes; i++ {
		gb.AddNode(fmt.Sprintf("n%d", i), "")
	}
	// A ring-with-window graph: edges connect nearby node indices, so the
	// graph has locality and a large diameter. The frequent terms' hub waves
	// saturate their neighborhoods almost immediately, while the rare term's
	// clustered wave then travels level by level through that saturated
	// territory, minting Central Nodes as it goes — on a random Erdős–Rényi
	// graph (diameter ~log n) the search would end before the steady state
	// the kernels are compared in ever develops.
	const window = 50
	rels := []graph.RelID{gb.Rel("a"), gb.Rel("b"), gb.Rel("c")}
	for i := 0; i < cfg.Edges; i++ {
		src := rng.Intn(cfg.Nodes)
		dst := (src + 1 + rng.Intn(window)) % cfg.Nodes
		gb.AddEdge(graph.NodeID(src), graph.NodeID(dst), rels[rng.Intn(3)])
	}
	g, err := gb.Build()
	if err != nil {
		return nil, err
	}
	levels := make([]uint8, cfg.Nodes)
	weights := make([]float64, cfg.Nodes)
	for i := range levels {
		levels[i] = uint8(rng.Intn(4))
		weights[i] = rng.Float64()
	}

	rep := &CoreBenchReport{Config: cfg, Env: CaptureEnv("ring-window", g.NumNodes(), g.NumEdges())}
	flatAt := map[[2]int]*CoreBenchPoint{} // (q, tnum) → flat point

	for _, q := range cfg.Qs {
		// The query mixes q-1 frequent, co-occurring terms with one rare
		// term — the common shape of real keyword queries, where several
		// domain terms share the same hub entities and one selective term
		// narrows the answer. The frequent terms draw their sources from a
		// single pool of hub nodes spread over the whole graph, so their BFS
		// waves travel together and every expanding node carries ~q-1 active
		// columns; the per-column reference kernel re-walks each adjacency
		// once per active column, while the flat kernel's single pass covers
		// them all. The rare term's clustered wave is what mints Central
		// Nodes (no hub is central on its own) and ends the search.
		frequent := cfg.Nodes / 4 // hub pool: one node in four
		hubs := make([]graph.NodeID, 0, frequent)
		for j := 0; j < frequent; j++ {
			hubs = append(hubs, graph.NodeID((j*cfg.Nodes/frequent+rng.Intn(7))%cfg.Nodes))
		}
		sources := make([][]graph.NodeID, q)
		terms := make([]string, q)
		for i := range sources {
			seen := map[graph.NodeID]bool{}
			if i < q-1 {
				for len(sources[i]) < frequent*4/5 {
					v := hubs[rng.Intn(len(hubs))]
					if !seen[v] {
						seen[v] = true
						sources[i] = append(sources[i], v)
					}
				}
			} else {
				for len(sources[i]) < cfg.Kwf {
					v := graph.NodeID(rng.Intn(cfg.Kwf * 2))
					if !seen[v] {
						seen[v] = true
						sources[i] = append(sources[i], v)
					}
				}
			}
			terms[i] = fmt.Sprintf("t%d", i)
		}
		in := core.Input{G: g, Weights: weights, Levels: levels, Terms: terms, Sources: sources}

		for _, tnum := range cfg.Tnums {
			for _, kernel := range []core.KernelKind{core.KernelFlat, core.KernelReference} {
				p := core.Params{TopK: cfg.TopK, Threads: tnum, MaxLevel: cfg.MaxLevel, Kernel: kernel}
				pt, err := measureKernel(in, p, cfg.Repeats)
				if err != nil {
					return nil, err
				}
				pt.Q = q
				rep.Points = append(rep.Points, *pt)
				if kernel == core.KernelFlat {
					flatAt[[2]int{q, tnum}] = pt
				} else if fl := flatAt[[2]int{q, tnum}]; fl != nil {
					sp := CoreBenchSpeedup{Q: q, Tnum: tnum}
					if fl.NsPerOp > 0 {
						sp.Total = float64(pt.NsPerOp) / float64(fl.NsPerOp)
					}
					if fl.ExpandNsPerOp > 0 {
						sp.Expand = float64(pt.ExpandNsPerOp) / float64(fl.ExpandNsPerOp)
					}
					rep.Speedups = append(rep.Speedups, sp)
				}
			}
		}
	}
	return rep, nil
}

// measureKernel times Repeats warm bottom-up runs of one setting.
func measureKernel(in core.Input, p core.Params, repeats int) (*CoreBenchPoint, error) {
	ss := core.NewSearchState()
	defer ss.Close()
	for i := 0; i < 2; i++ { // warm buffers, caps and workers
		if _, err := ss.BottomUp(in, p); err != nil {
			return nil, err
		}
	}
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	var expandNs, edges, frontier int64
	var levels int
	t0 := time.Now()
	for i := 0; i < repeats; i++ {
		if _, err := ss.BottomUp(in, p); err != nil {
			return nil, err
		}
		prof := ss.Profile()
		expandNs += int64(prof.Phases[core.PhaseExpand])
		edges += prof.EdgesScanned
		frontier += prof.FrontierTotal
		levels = prof.Levels
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)

	pt := &CoreBenchPoint{
		Kernel:        kernelNames[p.Kernel],
		Tnum:          p.Threads,
		NsPerOp:       elapsed.Nanoseconds() / int64(repeats),
		ExpandNsPerOp: expandNs / int64(repeats),
		EdgesScanned:  edges / int64(repeats),
		AllocsPerOp:   float64(ms1.Mallocs-ms0.Mallocs) / float64(repeats),
		Levels:        levels,
		FrontierTotal: frontier / int64(repeats),
	}
	if s := elapsed.Seconds(); s > 0 {
		pt.EdgesPerSec = float64(edges) / s
	}
	return pt, nil
}

// Table renders the report for the terminal.
func (r *CoreBenchReport) Table() Table {
	t := Table{
		ID:     "core",
		Title:  "Expansion kernel: flat vs reference (warm state, bottom-up stage only)",
		Header: []string{"q", "Tnum", "kernel", "ns/op", "expand ns/op", "edges/op", "Medges/s", "allocs/op"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Q),
			fmt.Sprintf("%d", p.Tnum),
			p.Kernel,
			fmt.Sprintf("%d", p.NsPerOp),
			fmt.Sprintf("%d", p.ExpandNsPerOp),
			fmt.Sprintf("%d", p.EdgesScanned),
			fmt.Sprintf("%.1f", p.EdgesPerSec/1e6),
			fmt.Sprintf("%.1f", p.AllocsPerOp),
		})
	}
	return t
}

// SpeedupTable renders the reference/flat ratios.
func (r *CoreBenchReport) SpeedupTable() Table {
	t := Table{
		ID:     "core/speedup",
		Title:  "Flat-kernel speedup over the reference kernel (ratio > 1 = flat faster)",
		Header: []string{"q", "Tnum", "bottom-up", "expansion"},
	}
	for _, s := range r.Speedups {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", s.Q),
			fmt.Sprintf("%d", s.Tnum),
			fmt.Sprintf("%.2fx", s.Total),
			fmt.Sprintf("%.2fx", s.Expand),
		})
	}
	return t
}

// WriteCoreBench serializes the report as indented JSON.
func WriteCoreBench(path string, r *CoreBenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644) //wikisearch:volatile benchmark report, regenerated on every run
}
