// Package bench is the benchmark harness that regenerates every table and
// figure of the paper's §VI on the synthetic datasets (see DESIGN.md's
// per-experiment index). Each experiment returns structured Tables that
// cmd/benchrunner prints and bench_test.go asserts shape properties on.
package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"wikisearch"
	"wikisearch/internal/eval"
	"wikisearch/internal/gen"
	"wikisearch/internal/text"
)

// Config sizes a harness run. The defaults keep a full run laptop-friendly;
// raise QueriesPerSetting (the paper uses 50) and BanksMaxVisits for closer
// replication.
type Config struct {
	Preset            string // dataset preset; default "wiki2017-sim"
	QueriesPerSetting int    // efficiency queries averaged per setting (default 10)
	Seed              int64
	Threads           int // Tnum default (paper: 30)
	TopK              int
	Knum              int
	Alpha             float64
	// BanksMaxVisits caps BANKS queue pops per query — the analogue of the
	// paper's 500-second timeout (default 100,000; BANKS frequently hits
	// it, as it frequently hit the paper's limit).
	BanksMaxVisits int
	// SamplePairs for Table II distance estimation (paper: 10,000).
	SamplePairs int
}

// Defaults fills unset fields with Table III's values scaled to this
// harness.
func (c Config) Defaults() Config {
	if c.Preset == "" {
		c.Preset = "wiki2017-sim"
	}
	if c.QueriesPerSetting <= 0 {
		c.QueriesPerSetting = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.TopK <= 0 {
		c.TopK = 20
	}
	if c.Knum <= 0 {
		c.Knum = 6
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.1
	}
	if c.BanksMaxVisits <= 0 {
		c.BanksMaxVisits = 100000
	}
	if c.SamplePairs <= 0 {
		c.SamplePairs = 10000
	}
	return c
}

// Env is a prepared dataset + engine pair reused across experiments.
type Env struct {
	Cfg Config
	KB  *gen.KB
	Eng *wikisearch.Engine
	Ix  *text.Index
}

// NewEnv generates the dataset and prepares the engine.
func NewEnv(cfg Config) (*Env, error) {
	cfg = cfg.Defaults()
	var gcfg gen.Config
	switch cfg.Preset {
	case "wiki2017-sim":
		gcfg = gen.Wiki2017Sim()
	case "wiki2018-sim":
		gcfg = gen.Wiki2018Sim()
	case "tiny-sim":
		gcfg = gen.TinySim()
	default:
		return nil, fmt.Errorf("bench: unknown preset %q", cfg.Preset)
	}
	kb := gen.Generate(gcfg)
	eng, err := wikisearch.NewEngine(kb.Graph, wikisearch.EngineOptions{
		DistanceSamplePairs: 2000,
		Seed:                cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	eng.SetName(kb.Name)
	return &Env{Cfg: cfg, KB: kb, Eng: eng, Ix: text.BuildIndex(kb.Graph)}, nil
}

// Workload returns the efficiency workload for a keyword count.
func (e *Env) Workload(knum, count int) []string {
	return gen.EfficiencyWorkload(e.KB, e.Ix, knum, count, e.Cfg.Seed).Queries
}

// Variant names, in the paper's presentation order.
const (
	VGPU   = "GPU-Par"
	VCPU   = "CPU-Par"
	VCPUD  = "CPU-Par-d"
	VBanks = "BANKS-II"
)

// PhaseNames are the Fig. 6/7 panels plus the total.
var PhaseNames = []string{
	"Initialization", "Enqueuing Frontiers", "Identifying Central Nodes",
	"Expansion", "Top-down Processing", "Total",
}

// Run is one averaged measurement: per-phase and total milliseconds for one
// variant at one x-axis setting.
type Run struct {
	Variant string
	X       string // the varied parameter's value, e.g. "6" for Knum=6
	Phases  map[string]float64
	TotalMs float64
	// Answers is the average answer count, a sanity signal.
	Answers float64
	// CapHits counts queries on which BANKS-II hit its visit cap — those
	// timings are lower bounds, like the paper's 500-second timeouts.
	CapHits int
}

// measure runs the variant over the workload and averages.
func (e *Env) measure(variant string, queries []string, topk int, alpha float64, threads int) (Run, error) {
	r := Run{Variant: variant, Phases: map[string]float64{}}
	if len(queries) == 0 {
		return r, fmt.Errorf("bench: empty workload")
	}
	for _, q := range queries {
		switch variant {
		case VBanks:
			res, err := e.Eng.SearchBANKS(q, topk, true, e.Cfg.BanksMaxVisits)
			if err != nil {
				return r, err
			}
			ms := float64(res.Elapsed) / float64(time.Millisecond)
			r.TotalMs += ms
			r.Answers += float64(len(res.Trees))
			if res.Visited >= e.Cfg.BanksMaxVisits {
				r.CapHits++
			}
		default:
			var v wikisearch.Variant
			switch variant {
			case VGPU:
				v = wikisearch.GPUPar
			case VCPU:
				v = wikisearch.CPUPar
			case VCPUD:
				v = wikisearch.CPUParD
			default:
				return r, fmt.Errorf("bench: unknown variant %q", variant)
			}
			res, err := e.Eng.Search(context.Background(), wikisearch.Query{
				Text: q, TopK: topk, Alpha: alpha, Threads: threads, Variant: v,
			})
			if err != nil {
				return r, err
			}
			for name, d := range res.Phases {
				r.Phases[name] += float64(d) / float64(time.Millisecond)
			}
			r.TotalMs += float64(res.Total) / float64(time.Millisecond)
			r.Answers += float64(len(res.Answers))
		}
	}
	n := float64(len(queries))
	for name := range r.Phases {
		r.Phases[name] /= n
	}
	r.TotalMs /= n
	r.Answers /= n
	return r, nil
}

// Oracles returns the effectiveness oracles for the planted queries.
func (e *Env) Oracles() []*eval.Oracle {
	out := make([]*eval.Oracle, 0, len(e.KB.Planted))
	for i := range e.KB.Planted {
		out = append(out, eval.NewOracle(&e.KB.Planted[i], e.Ix))
	}
	return out
}

// Table is a formatted experiment result.
type Table struct {
	ID     string // experiment id, e.g. "fig6/expansion"
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func ms(v float64) string { return fmt.Sprintf("%.3f", v) }
