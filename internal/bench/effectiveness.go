package bench

import (
	"context"
	"fmt"
	"strings"

	"wikisearch"
	"wikisearch/internal/gen"
	"wikisearch/internal/graph"
)

// RepetitionStats quantifies §VI-B's repetition observation ("the node …
// appears in 16 different answers of top-20, contributing the keyword
// 'gradient' 16 times"): how much the top-k answers of each system overlap
// each other, and how often the single most repeated node recurs.
type RepetitionStats struct {
	System string
	// MeanJaccard is the average pairwise Jaccard overlap of top-k answer
	// node sets (1 = identical answers, 0 = disjoint).
	MeanJaccard float64
	// MaxNodeRecurrence is the count of the single most repeated node
	// across the top-k answers.
	MaxNodeRecurrence int
	Answers           int
}

// Repetition measures answer-set overlap for one planted query at top-k,
// for BANKS-II and for Central Graphs at the default α.
func (e *Env) Repetition(queryID string, k int) ([]RepetitionStats, error) {
	var p *gen.PlantedQuery
	for i := range e.KB.Planted {
		if e.KB.Planted[i].ID == queryID {
			p = &e.KB.Planted[i]
		}
	}
	if p == nil {
		return nil, fmt.Errorf("bench: unknown query %q", queryID)
	}
	queryText := strings.Join(p.Keywords, " ")

	var out []RepetitionStats
	bfull, err := e.Eng.Search(context.Background(), wikisearch.Query{
		Text: queryText, TopK: k, Variant: wikisearch.BANKS,
		Bidirectional: true, MaxVisits: e.Cfg.BanksMaxVisits,
	})
	if err != nil {
		return nil, err
	}
	bres := bfull.Banks
	bsets := make([][]graph.NodeID, 0, len(bres.Trees))
	for _, t := range bres.Trees {
		bsets = append(bsets, t.Nodes)
	}
	out = append(out, repetitionOf(VBanks, bsets))

	res, err := e.Eng.Search(context.Background(), wikisearch.Query{Text: queryText, TopK: k, Alpha: e.Cfg.Alpha, Threads: e.Cfg.Threads})
	if err != nil {
		return nil, err
	}
	csets := make([][]graph.NodeID, 0, len(res.Answers))
	for i := range res.Answers {
		csets = append(csets, res.Answers[i].NodeIDs())
	}
	out = append(out, repetitionOf("Central Graphs", csets))
	return out, nil
}

func repetitionOf(system string, sets [][]graph.NodeID) RepetitionStats {
	st := RepetitionStats{System: system, Answers: len(sets)}
	counts := map[graph.NodeID]int{}
	for _, s := range sets {
		for _, v := range s {
			counts[v]++
		}
	}
	for _, c := range counts {
		if c > st.MaxNodeRecurrence {
			st.MaxNodeRecurrence = c
		}
	}
	pairs, sum := 0, 0.0
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			sum += jaccard(sets[i], sets[j])
			pairs++
		}
	}
	if pairs > 0 {
		st.MeanJaccard = sum / float64(pairs)
	}
	return st
}

func jaccard(a, b []graph.NodeID) float64 {
	set := map[graph.NodeID]bool{}
	for _, v := range a {
		set[v] = true
	}
	inter := 0
	union := len(set)
	seen := map[graph.NodeID]bool{}
	for _, v := range b {
		if seen[v] {
			continue
		}
		seen[v] = true
		if set[v] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// PrecisionCell is one bar of Fig. 11/12: the top-k precision of one
// system on one query.
type PrecisionCell struct {
	Query     string
	System    string // "BANKS-II" or "alpha-0.05" etc.
	K         int
	Precision float64
}

// Effectiveness reproduces Fig. 11 (wiki2017) / Fig. 12 (wiki2018): top-k
// precision of BANKS-II versus WikiSearch at several α settings on the
// planted Table V queries, judged by the ground-truth oracle. One table is
// returned per k.
func (e *Env) Effectiveness(alphas []float64, ks []int) ([]Table, []PrecisionCell, error) {
	if len(alphas) == 0 {
		alphas = []float64{0.05, 0.1, 0.4}
	}
	if len(ks) == 0 {
		ks = []int{5, 10, 20}
	}
	maxK := 0
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	oracles := e.Oracles()
	var cells []PrecisionCell

	for qi := range e.KB.Planted {
		p := &e.KB.Planted[qi]
		queryText := strings.Join(p.Keywords, " ")
		oracle := oracles[qi]

		// BANKS-II answers once at the largest k.
		bfull, err := e.Eng.Search(context.Background(), wikisearch.Query{
			Text: queryText, TopK: maxK, Variant: wikisearch.BANKS,
			Bidirectional: true, MaxVisits: e.Cfg.BanksMaxVisits,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: BANKS on %s: %w", p.ID, err)
		}
		bres := bfull.Banks
		bsets := make([][]graph.NodeID, 0, len(bres.Trees))
		for _, tr := range bres.Trees {
			bsets = append(bsets, tr.Nodes)
		}
		for _, k := range ks {
			cells = append(cells, PrecisionCell{
				Query: p.ID, System: VBanks, K: k,
				Precision: oracle.PrecisionAtK(bsets, k),
			})
		}

		for _, a := range alphas {
			res, err := e.Eng.Search(context.Background(), wikisearch.Query{
				Text: queryText, TopK: maxK, Alpha: a, Threads: e.Cfg.Threads,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("bench: %s α=%.2f: %w", p.ID, a, err)
			}
			sets := make([][]graph.NodeID, 0, len(res.Answers))
			for i := range res.Answers {
				sets = append(sets, res.Answers[i].NodeIDs())
			}
			sys := fmt.Sprintf("alpha-%.2f", a)
			for _, k := range ks {
				cells = append(cells, PrecisionCell{
					Query: p.ID, System: sys, K: k,
					Precision: oracle.PrecisionAtK(sets, k),
				})
			}
		}
	}

	systems := []string{VBanks}
	for _, a := range alphas {
		systems = append(systems, fmt.Sprintf("alpha-%.2f", a))
	}
	var tables []Table
	for _, k := range ks {
		t := Table{
			ID:     fmt.Sprintf("effectiveness/top-%d", k),
			Title:  fmt.Sprintf("Top-%d precision on %s (Fig. 11/12)", k, e.KB.Name),
			Header: append([]string{"query"}, systems...),
		}
		for qi := range e.KB.Planted {
			q := e.KB.Planted[qi].ID
			row := []string{q}
			for _, sys := range systems {
				for _, c := range cells {
					if c.Query == q && c.System == sys && c.K == k {
						row = append(row, fmt.Sprintf("%.0f%%", 100*c.Precision))
						break
					}
				}
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables, cells, nil
}
