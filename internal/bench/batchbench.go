package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wikisearch"
	"wikisearch/internal/gen"
	"wikisearch/internal/graph"
	"wikisearch/internal/text"
)

// BatchBenchConfig sizes the shared-frontier batching throughput benchmark:
// a closed-loop swarm of concurrent clients drives the same short-query
// workload through the engine twice — solo and with batching enabled — and
// the report compares sustained QPS. Per-execution parallelism is pinned to
// Tnum=1 on both sides, so the measured gain is the work amortized by
// multiplexing queries into one expansion, not a parallelism shift.
type BatchBenchConfig struct {
	Preset  string        // dataset preset (default "tiny-sim")
	Clients int           // concurrent closed-loop clients (default 32)
	Ops     int           // searches measured per side (default 512)
	Window  time.Duration // coalescing window (default 200µs)
	Seed    int64         // workload seed (default 1)
	// Skew is the Zipf exponent of the query stream (default 1.4): real
	// keyword-search traffic is strongly popularity-skewed, and repeats of
	// a hot query arriving inside one coalescing window are exactly what
	// the batcher collapses into a single column group.
	Skew float64
}

// Defaults fills unset fields.
func (c BatchBenchConfig) Defaults() BatchBenchConfig {
	if c.Preset == "" {
		c.Preset = "tiny-sim"
	}
	if c.Clients <= 0 {
		c.Clients = 32
	}
	if c.Ops <= 0 {
		c.Ops = 512
	}
	if c.Window <= 0 {
		c.Window = 200 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Skew <= 1 {
		c.Skew = 1.4
	}
	return c
}

// BatchBenchPoint is one measured side.
type BatchBenchPoint struct {
	Mode         string  `json:"mode"` // "solo" or "batched"
	Ops          int     `json:"ops"`
	WallMs       float64 `json:"wall_ms"`
	QPS          float64 `json:"qps"`
	Batches      int     `json:"batches,omitempty"`       // launched batches (batched side)
	AvgOccupancy float64 `json:"avg_occupancy,omitempty"` // queries per launched batch
	AvgDistinct  float64 `json:"avg_distinct,omitempty"`  // column groups per launched batch
	SoloLaunches int     `json:"solo_launches,omitempty"` // batches that degenerated to one query
}

// BatchBenchReport is the benchmark outcome, serialized to BENCH_batch.json
// by `benchrunner -exp batch`.
type BatchBenchReport struct {
	Config  BatchBenchConfig  `json:"config"`
	Env     RunEnv            `json:"env"`
	Queries int               `json:"distinct_queries"`
	Points  []BatchBenchPoint `json:"points"`
	// Speedup is batched QPS over solo QPS.
	Speedup float64 `json:"speedup"`
}

// batchBenchWorkload builds the query pool: short queries (1–3 keywords)
// mixing a handful of frequent keywords with a rare tail, the Zipfian
// shape of a real query stream. Concurrent queries then share their
// expensive frequent-keyword waves, which is exactly the work a shared
// batch expansion scans once instead of once per query; the rare keywords
// keep the queries distinct.
func batchBenchWorkload(kb *gen.KB, ix *text.Index, seed int64) []wikisearch.Query {
	g := kb.Graph
	rng := rand.New(rand.NewSource(seed))

	// Harvest raw tokens (what a user would type) and rank them by posting
	// size. Raw tokens matter: stems are not stable under re-stemming.
	type term struct {
		raw  string
		freq int
	}
	var terms []term
	seen := map[string]bool{}
	for i := 0; i < 4*g.NumNodes() && len(terms) < 512; i++ {
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		for _, raw := range text.Tokenize(g.Label(v) + " " + g.Description(v)) {
			if text.IsStopword(raw) {
				continue
			}
			norm := text.Normalize(raw)
			if len(norm) == 0 || seen[norm[0]] {
				continue
			}
			seen[norm[0]] = true
			if f := ix.Frequency(raw); f > 0 {
				terms = append(terms, term{raw, f})
			}
		}
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].freq > terms[j].freq })
	nfreq := min(4, len(terms))
	frequent := terms[:nfreq]
	var rare []term
	for _, t := range terms[nfreq:] {
		if t.freq <= max(10, g.NumNodes()/100) {
			rare = append(rare, t)
			if len(rare) == 16 {
				break
			}
		}
	}

	var pool []wikisearch.Query
	for i := 0; i < 32 && len(frequent) > 0; i++ {
		words := []string{frequent[rng.Intn(len(frequent))].raw}
		for n := rng.Intn(3); n > 0 && len(rare) > 0; n-- {
			words = append(words, rare[rng.Intn(len(rare))].raw)
		}
		pool = append(pool, wikisearch.Query{Text: strings.Join(words, " "), TopK: 20, Threads: 1})
	}
	return pool
}

// batchBenchSchedule draws the per-op query indices: a Zipf-distributed
// stream over the pool, hot queries first. Both sides replay the exact same
// schedule, so the comparison isolates the execution strategy.
func batchBenchSchedule(ops, poolSize int, skew float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed + 7))
	z := rand.NewZipf(rng, skew, 1, uint64(poolSize-1))
	sched := make([]int, ops)
	for i := range sched {
		sched[i] = int(z.Uint64())
	}
	return sched
}

// batchBenchDrive replays the schedule through eng with the given number of
// closed-loop clients and returns the wall time.
func batchBenchDrive(eng *wikisearch.Engine, pool []wikisearch.Query, sched []int, clients int) (time.Duration, error) {
	var next atomic.Int64
	var firstErr atomic.Pointer[error]
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sched) {
					return
				}
				if _, err := eng.Search(context.Background(), pool[sched[i]]); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if p := firstErr.Load(); p != nil {
		return wall, *p
	}
	return wall, nil
}

// BatchBench measures solo-versus-batched throughput on one engine with an
// identical concurrent workload.
func BatchBench(cfg BatchBenchConfig) (*BatchBenchReport, error) {
	cfg = cfg.Defaults()
	env, err := NewEnv(Config{Preset: cfg.Preset, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	pool := batchBenchWorkload(env.KB, env.Ix, cfg.Seed)
	if len(pool) == 0 {
		return nil, fmt.Errorf("bench: empty batch workload")
	}

	// Warm the engine (level cache, pooled states) outside the clock.
	for _, q := range pool[:min(len(pool), 8)] {
		if _, err := env.Eng.Search(context.Background(), q); err != nil {
			return nil, err
		}
	}

	rep := &BatchBenchReport{
		Config:  cfg,
		Env:     CaptureEnv(cfg.Preset, env.KB.Graph.NumNodes(), env.KB.Graph.NumEdges()),
		Queries: len(pool),
	}
	sched := batchBenchSchedule(cfg.Ops, len(pool), cfg.Skew, cfg.Seed)

	// Each side runs twice and the faster pass is kept: the workload is
	// deterministic, so the slower pass only measures scheduler or machine
	// interference, not the execution strategy.
	const passes = 2

	env.Eng.DisableBatching()
	solo := BatchBenchPoint{Mode: "solo", Ops: cfg.Ops}
	for pass := 0; pass < passes; pass++ {
		wall, err := batchBenchDrive(env.Eng, pool, sched, cfg.Clients)
		if err != nil {
			return nil, err
		}
		if ms := float64(wall) / float64(time.Millisecond); solo.WallMs == 0 || ms < solo.WallMs {
			solo.WallMs = ms
			solo.QPS = float64(cfg.Ops) / wall.Seconds()
		}
	}
	rep.Points = append(rep.Points, solo)

	batched := BatchBenchPoint{Mode: "batched", Ops: cfg.Ops}
	for pass := 0; pass < passes; pass++ {
		var mu sync.Mutex
		var batches, soloLaunches, queriesServed, distinctServed int
		env.Eng.EnableBatching(wikisearch.BatchOptions{
			Window: cfg.Window,
			Observer: func(ex wikisearch.BatchExecution) {
				mu.Lock()
				batches++
				queriesServed += ex.Queries
				distinctServed += ex.Distinct
				if ex.Solo {
					soloLaunches++
				}
				mu.Unlock()
			},
		})
		wall, err := batchBenchDrive(env.Eng, pool, sched, cfg.Clients)
		env.Eng.DisableBatching()
		if err != nil {
			return nil, err
		}
		mu.Lock()
		if ms := float64(wall) / float64(time.Millisecond); batched.WallMs == 0 || ms < batched.WallMs {
			batched.WallMs = ms
			batched.QPS = float64(cfg.Ops) / wall.Seconds()
			batched.Batches = batches
			batched.SoloLaunches = soloLaunches
			batched.AvgOccupancy = 0
			batched.AvgDistinct = 0
			if batches > 0 {
				batched.AvgOccupancy = float64(queriesServed) / float64(batches)
				batched.AvgDistinct = float64(distinctServed) / float64(batches)
			}
		}
		mu.Unlock()
	}
	rep.Points = append(rep.Points, batched)
	if solo.QPS > 0 {
		rep.Speedup = batched.QPS / solo.QPS
	}
	return rep, nil
}

// BatchBenchTable renders the report for benchrunner.
func BatchBenchTable(r *BatchBenchReport) Table {
	t := Table{
		ID: "batch",
		Title: fmt.Sprintf("Shared-frontier batching throughput on %s (%d clients, Tnum=1, window %v, zipf %.2f)",
			r.Config.Preset, r.Config.Clients, r.Config.Window, r.Config.Skew),
		Header: []string{"mode", "QPS", "wall ms", "batches", "avg occupancy", "avg distinct", "solo launches"},
	}
	for _, p := range r.Points {
		occ, dis, b, s := "-", "-", "-", "-"
		if p.Mode == "batched" {
			occ = fmt.Sprintf("%.2f", p.AvgOccupancy)
			dis = fmt.Sprintf("%.2f", p.AvgDistinct)
			b = fmt.Sprintf("%d", p.Batches)
			s = fmt.Sprintf("%d", p.SoloLaunches)
		}
		t.Rows = append(t.Rows, []string{
			p.Mode, fmt.Sprintf("%.0f", p.QPS), fmt.Sprintf("%.1f", p.WallMs), b, occ, dis, s,
		})
	}
	t.Rows = append(t.Rows, []string{"speedup", fmt.Sprintf("%.2fx", r.Speedup), "-", "-", "-", "-", "-"})
	return t
}

// WriteBatchBench serializes the report as indented JSON.
func WriteBatchBench(path string, r *BatchBenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644) //wikisearch:volatile benchmark report, regenerated on every run
}
