// Package text implements the keyword pipeline the paper's engine depends
// on: tokenization, stopword filtering and word stemming ("over 5 million
// keywords after stopping word filtering and word stemming", §II), plus the
// inverted keyword → node index that seeds each BFS instance with its source
// set T_i.
package text

import (
	"strings"
	"unicode"
)

// Tokenize lower-cases s and splits it into maximal runs of letters and
// digits. Everything else (punctuation, CJK-less symbol noise, whitespace)
// is a separator.
func Tokenize(s string) []string {
	var out []string
	start := -1
	lower := strings.ToLower(s)
	for i, r := range lower {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, lower[start:])
	}
	return out
}

// Normalize runs the full pipeline on raw text: tokenize, drop stopwords,
// stem. The result is the keyword-term sequence used for both indexing and
// querying, so the two always agree.
func Normalize(s string) []string {
	toks := Tokenize(s)
	out := toks[:0]
	for _, t := range toks {
		if IsStopword(t) {
			continue
		}
		t = Stem(t)
		if t == "" {
			continue
		}
		out = append(out, t)
	}
	return out
}
