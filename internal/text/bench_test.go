package text

import (
	"fmt"
	"testing"

	"wikisearch/internal/graph"
)

func BenchmarkStem(b *testing.B) {
	words := []string{
		"relational", "databases", "internationalization", "mining",
		"supervised", "classification", "retrieval", "gradient", "sky",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Stem(words[i%len(words)])
	}
}

func BenchmarkTokenize(b *testing.B) {
	const s = "An Efficient Parallel Keyword Search Engine on Knowledge Graphs (ICDE 2019)"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Tokenize(s)
	}
}

func BenchmarkNormalize(b *testing.B) {
	const s = "the statistical relational learning of knowledge graphs and databases"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Normalize(s)
	}
}

func BenchmarkBuildIndex(b *testing.B) {
	gb := graph.NewBuilder()
	for i := 0; i < 2000; i++ {
		gb.AddNode(fmt.Sprintf("entity %d keyword search engine", i), "knowledge graph node")
	}
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildIndex(g)
	}
}
