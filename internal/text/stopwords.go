package text

// stopwords is a standard English stopword list (the classic SMART-derived
// core set), matching the paper's "stopping word filtering" preprocessing.
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range []string{
		"a", "about", "above", "after", "again", "against", "all", "am",
		"an", "and", "any", "are", "aren", "as", "at", "be", "because",
		"been", "before", "being", "below", "between", "both", "but", "by",
		"can", "cannot", "could", "couldn", "did", "didn", "do", "does",
		"doesn", "doing", "don", "down", "during", "each", "few", "for",
		"from", "further", "had", "hadn", "has", "hasn", "have", "haven",
		"having", "he", "her", "here", "hers", "herself", "him", "himself",
		"his", "how", "i", "if", "in", "into", "is", "isn", "it", "its",
		"itself", "just", "me", "more", "most", "mustn", "my", "myself",
		"no", "nor", "not", "now", "of", "off", "on", "once", "only", "or",
		"other", "ought", "our", "ours", "ourselves", "out", "over", "own",
		"same", "shan", "she", "should", "shouldn", "so", "some", "such",
		"than", "that", "the", "their", "theirs", "them", "themselves",
		"then", "there", "these", "they", "this", "those", "through", "to",
		"too", "under", "until", "up", "very", "was", "wasn", "we", "were",
		"weren", "what", "when", "where", "which", "while", "who", "whom",
		"why", "with", "won", "would", "wouldn", "you", "your", "yours",
		"yourself", "yourselves",
	} {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the (already lower-cased) token is filtered
// out of the keyword vocabulary.
func IsStopword(w string) bool {
	_, ok := stopwords[w]
	return ok
}
