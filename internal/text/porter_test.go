package text

import (
	"testing"
	"testing/quick"
)

// Vectors from Porter's paper and the reference implementation's vocabulary.
func TestStemVectors(t *testing.T) {
	cases := map[string]string{
		// Step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// Step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// Step 1c
		"happy": "happi",
		"sky":   "sky",
		// Step 2
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// Step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// Step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// Step 5
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// General IR words used throughout the experiments.
		"databases":   "databas",
		"indexing":    "index",
		"ranking":     "rank",
		"searching":   "search",
		"learning":    "learn",
		"retrieval":   "retriev",
		"mining":      "mine",
		"translation": "translat",
		"inference2":  "inference2", // non-letters pass through untouched? digits allowed
	}
	delete(cases, "inference2")
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndNonASCII(t *testing.T) {
	for _, w := range []string{"", "a", "go", "db"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
	for _, w := range []string{"naïve", "café", "日本語"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged (non-ASCII)", w, got)
		}
	}
}

func TestStemConflatesInflections(t *testing.T) {
	// The property that matters for search: morphological variants of one
	// word map to the same stem, so index terms and query terms agree.
	groups := [][]string{
		{"database", "databases"},
		{"search", "searches", "searching", "searched"},
		{"index", "indexes", "indexing", "indexed"},
		{"graph", "graphs"},
		{"learn", "learning", "learned", "learns"},
		{"retrieval", "retrievals"},
		{"network", "networks"},
		{"translation", "translations"},
		{"keyword", "keywords"},
		{"engine", "engines"},
	}
	for _, g := range groups {
		want := Stem(g[0])
		for _, w := range g[1:] {
			if got := Stem(w); got != want {
				t.Errorf("Stem(%q) = %q, want %q (same as %q)", w, got, want, g[0])
			}
		}
	}
}

func TestStemNeverGrows(t *testing.T) {
	f := func(b []byte) bool {
		// Constrain to lowercase ASCII words.
		w := make([]byte, 0, len(b))
		for _, c := range b {
			w = append(w, 'a'+c%26)
		}
		s := Stem(string(w))
		return len(s) <= len(w)+1 // step 1b can append 'e' after shrinking by >=2; net never grows by more than... assert conservative bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStemDeterministic(t *testing.T) {
	f := func(b []byte) bool {
		w := make([]byte, 0, len(b))
		for _, c := range b {
			w = append(w, 'a'+c%26)
		}
		return Stem(string(w)) == Stem(string(w))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
