package text

import (
	"slices"

	"wikisearch/internal/graph"
)

// Overlay is an immutable patch over a base Index for live graph mutations.
// It holds fully merged posting lists for exactly the terms whose node sets
// changed, so a lookup through the overlay is a single map probe with no
// per-query merging, and terms outside the delta fall through to the base
// index untouched. An Overlay is built once per epoch publication and never
// modified afterwards; concurrent readers need no synchronization.
type Overlay struct {
	terms     map[string][]graph.NodeID // merged posting per affected term; empty slice = term now matches nothing
	newTerms  int                       // affected terms absent from the base index
	emptied   int                       // base terms whose posting became empty
	postDelta int                       // (term, node) pair count delta vs the base
	maxLen    int                       // longest merged posting in the overlay
}

// Postings returns the merged posting list for term if the overlay covers
// it. ok=false means the term is unaffected and the base index answers.
func (o *Overlay) Postings(term string) ([]graph.NodeID, bool) {
	p, ok := o.terms[term]
	return p, ok
}

// NumAffected returns how many terms the overlay covers.
func (o *Overlay) NumAffected() int { return len(o.terms) }

// TermsDelta returns the adjustment to the base vocabulary size: terms the
// delta introduced minus base terms it emptied.
func (o *Overlay) TermsDelta() int { return o.newTerms - o.emptied }

// PostingsDelta returns the adjustment to the base (term, node) pair count.
func (o *Overlay) PostingsDelta() int { return o.postDelta }

// MaxPostingLen returns the longest posting among affected terms. The
// effective maximum of an overlaid index is max(base, overlay) — a best
// effort that can overstate when the delta shrank the base's longest list;
// compaction restores the exact statistic.
func (o *Overlay) MaxPostingLen() int { return o.maxLen }

// NodeTerms returns the de-duplicated normalized term set of one node's
// label and description — the unit the index (and its overlays) are built
// from.
func NodeTerms(label, desc string) map[string]struct{} {
	set := make(map[string]struct{}, 8)
	for _, t := range Normalize(label) {
		set[t] = struct{}{}
	}
	for _, t := range Normalize(desc) {
		set[t] = struct{}{}
	}
	return set
}

// OverlayBuilder accumulates per-node text changes and derives an Overlay
// against a base index. It is single-writer, like graph.DeltaBuilder.
//
// State is last-write-wins per (term, node): a later NodeRetext of the same
// node (with the previous call's new text as its old text) overrides the
// earlier diff, so chained retexts compose to the final-vs-base diff.
type OverlayBuilder struct {
	base *Index
	// state[term][v] records whether v's final text contains term; only
	// (term, node) pairs whose membership changed in some diff appear here.
	state map[string]map[graph.NodeID]bool
}

// NewOverlayBuilder returns an empty builder over base.
func NewOverlayBuilder(base *Index) *OverlayBuilder {
	return &OverlayBuilder{
		base:  base,
		state: make(map[string]map[graph.NodeID]bool),
	}
}

func (b *OverlayBuilder) mark(term string, v graph.NodeID, present bool) {
	s := b.state[term]
	if s == nil {
		s = make(map[graph.NodeID]bool, 4)
		b.state[term] = s
	}
	s[v] = present
}

// NodeAdded records a node appended past the base graph with the given text.
func (b *OverlayBuilder) NodeAdded(v graph.NodeID, label, desc string) {
	for t := range NodeTerms(label, desc) {
		b.mark(t, v, true)
	}
}

// NodeRetext records a base node whose label/description changed. Terms in
// both old and new text keep their prior state; the rest flip membership.
func (b *OverlayBuilder) NodeRetext(v graph.NodeID, oldLabel, oldDesc, newLabel, newDesc string) {
	oldT := NodeTerms(oldLabel, oldDesc)
	newT := NodeTerms(newLabel, newDesc)
	for t := range oldT {
		if _, keep := newT[t]; !keep {
			b.mark(t, v, false)
		}
	}
	for t := range newT {
		if _, had := oldT[t]; !had {
			b.mark(t, v, true)
		}
	}
}

// Empty reports whether no text changes were recorded.
func (b *OverlayBuilder) Empty() bool { return len(b.state) == 0 }

// Build merges the accumulated changes against the base index into an
// immutable Overlay. The builder may keep accumulating afterwards; the
// returned Overlay shares nothing mutable with it.
func (b *OverlayBuilder) Build() *Overlay {
	ov := &Overlay{terms: make(map[string][]graph.NodeID, len(b.state))}
	for t, nodes := range b.state {
		base := b.base.LookupTerm(t)
		merged := make([]graph.NodeID, 0, len(base)+len(nodes))
		for _, v := range base {
			if present, touched := nodes[v]; touched && !present {
				continue
			}
			merged = append(merged, v)
		}
		for v, present := range nodes {
			if !present {
				continue
			}
			if _, inBase := slices.BinarySearch(base, v); inBase {
				continue // already kept above
			}
			merged = append(merged, v)
		}
		slices.Sort(merged)
		ov.terms[t] = merged
		if base == nil && len(merged) > 0 {
			ov.newTerms++
		}
		if base != nil && len(merged) == 0 {
			ov.emptied++
		}
		ov.postDelta += len(merged) - len(base)
		if len(merged) > ov.maxLen {
			ov.maxLen = len(merged)
		}
	}
	return ov
}
