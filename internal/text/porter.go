package text

// Stem applies the classic Porter stemming algorithm (Porter, 1980) to a
// lower-case ASCII word. Words shorter than three letters are returned
// unchanged, as in the reference implementation. Non-ASCII input is
// returned unchanged.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c < 'a' || c > 'z' {
			if c < '0' || c > '9' {
				return word
			}
		}
	}
	s := stemmer{b: []byte(word)}
	s.step1ab()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5()
	return string(s.b)
}

// stemmer holds the working buffer; all steps shrink or rewrite its tail.
type stemmer struct {
	b []byte
}

// cons reports whether b[i] is a consonant under Porter's definition:
// a,e,i,o,u are vowels; y is a consonant at position 0 or when the previous
// letter is a vowel.
func (s *stemmer) cons(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.cons(i - 1)
	}
	return true
}

// m measures the number of VC sequences in b[0:end] — the [C](VC)^m[V]
// measure of the paper.
func (s *stemmer) m(end int) int {
	n, i := 0, 0
	for i < end && s.cons(i) {
		i++
	}
	if i >= end {
		return 0
	}
	for {
		for i < end && !s.cons(i) {
			i++
		}
		if i >= end {
			return n
		}
		n++
		for i < end && s.cons(i) {
			i++
		}
		if i >= end {
			return n
		}
	}
}

// hasVowel reports whether b[0:end] contains a vowel.
func (s *stemmer) hasVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !s.cons(i) {
			return true
		}
	}
	return false
}

// doubleCons reports whether b ends (at index i) with a double consonant.
func (s *stemmer) doubleCons(i int) bool {
	return i >= 1 && s.b[i] == s.b[i-1] && s.cons(i)
}

// cvc reports whether the three letters ending at i are
// consonant-vowel-consonant with the final consonant not w, x or y.
func (s *stemmer) cvc(i int) bool {
	if i < 2 || !s.cons(i) || s.cons(i-1) || !s.cons(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether the buffer ends with suf.
func (s *stemmer) hasSuffix(suf string) bool {
	n := len(s.b) - len(suf)
	if n < 0 {
		return false
	}
	return string(s.b[n:]) == suf
}

// stemEnd returns the length of the stem if suf is removed.
func (s *stemmer) stemEnd(suf string) int { return len(s.b) - len(suf) }

// replace swaps the suffix (assumed present) for rep.
func (s *stemmer) replace(suf, rep string) {
	s.b = append(s.b[:s.stemEnd(suf)], rep...)
}

// r replaces suf with rep when the measure of the remaining stem is > 0.
// It returns true when suf matched (whether or not the replacement fired),
// so rule lists stop at the first matching suffix, as Porter specifies.
func (s *stemmer) r(suf, rep string) bool {
	if !s.hasSuffix(suf) {
		return false
	}
	if s.m(s.stemEnd(suf)) > 0 {
		s.replace(suf, rep)
	}
	return true
}

func (s *stemmer) step1ab() {
	// Step 1a.
	if s.hasSuffix("s") {
		switch {
		case s.hasSuffix("sses"):
			s.replace("sses", "ss")
		case s.hasSuffix("ies"):
			s.replace("ies", "i")
		case s.hasSuffix("ss"):
			// keep
		default:
			s.replace("s", "")
		}
	}
	// Step 1b.
	if s.hasSuffix("eed") {
		if s.m(s.stemEnd("eed")) > 0 {
			s.replace("eed", "ee")
		}
		return
	}
	applied := false
	if s.hasSuffix("ed") && s.hasVowel(s.stemEnd("ed")) {
		s.replace("ed", "")
		applied = true
	} else if s.hasSuffix("ing") && s.hasVowel(s.stemEnd("ing")) {
		s.replace("ing", "")
		applied = true
	}
	if !applied {
		return
	}
	switch {
	case s.hasSuffix("at"):
		s.replace("at", "ate")
	case s.hasSuffix("bl"):
		s.replace("bl", "ble")
	case s.hasSuffix("iz"):
		s.replace("iz", "ize")
	case s.doubleCons(len(s.b) - 1):
		switch s.b[len(s.b)-1] {
		case 'l', 's', 'z':
		default:
			s.b = s.b[:len(s.b)-1]
		}
	case s.m(len(s.b)) == 1 && s.cvc(len(s.b)-1):
		s.b = append(s.b, 'e')
	}
}

func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.hasVowel(len(s.b)-1) {
		s.b[len(s.b)-1] = 'i'
	}
}

func (s *stemmer) step2() {
	if len(s.b) < 3 {
		return
	}
	// Dispatch on the penultimate letter, as in the reference code.
	switch s.b[len(s.b)-2] {
	case 'a':
		_ = s.r("ational", "ate") || s.r("tional", "tion")
	case 'c':
		_ = s.r("enci", "ence") || s.r("anci", "ance")
	case 'e':
		_ = s.r("izer", "ize")
	case 'l':
		_ = s.r("abli", "able") || s.r("alli", "al") || s.r("entli", "ent") ||
			s.r("eli", "e") || s.r("ousli", "ous")
	case 'o':
		_ = s.r("ization", "ize") || s.r("ation", "ate") || s.r("ator", "ate")
	case 's':
		_ = s.r("alism", "al") || s.r("iveness", "ive") || s.r("fulness", "ful") ||
			s.r("ousness", "ous")
	case 't':
		_ = s.r("aliti", "al") || s.r("iviti", "ive") || s.r("biliti", "ble")
	}
}

func (s *stemmer) step3() {
	switch s.b[len(s.b)-1] {
	case 'e':
		_ = s.r("icate", "ic") || s.r("ative", "") || s.r("alize", "al")
	case 'i':
		_ = s.r("iciti", "ic")
	case 'l':
		_ = s.r("ical", "ic") || s.r("ful", "")
	case 's':
		_ = s.r("ness", "")
	}
}

// r2 removes suf when the remaining stem has measure > 1; returns true when
// suf matched.
func (s *stemmer) r2(suf string) bool {
	if !s.hasSuffix(suf) {
		return false
	}
	if s.m(s.stemEnd(suf)) > 1 {
		s.replace(suf, "")
	}
	return true
}

func (s *stemmer) step4() {
	if len(s.b) < 3 {
		return
	}
	switch s.b[len(s.b)-2] {
	case 'a':
		_ = s.r2("al")
	case 'c':
		_ = s.r2("ance") || s.r2("ence")
	case 'e':
		_ = s.r2("er")
	case 'i':
		_ = s.r2("ic")
	case 'l':
		_ = s.r2("able") || s.r2("ible")
	case 'n':
		_ = s.r2("ant") || s.r2("ement") || s.r2("ment") || s.r2("ent")
	case 'o':
		if s.hasSuffix("ion") {
			end := s.stemEnd("ion")
			if end > 0 && (s.b[end-1] == 's' || s.b[end-1] == 't') && s.m(end) > 1 {
				s.replace("ion", "")
			}
		} else {
			_ = s.r2("ou")
		}
	case 's':
		_ = s.r2("ism")
	case 't':
		_ = s.r2("ate") || s.r2("iti")
	case 'u':
		_ = s.r2("ous")
	case 'v':
		_ = s.r2("ive")
	case 'z':
		_ = s.r2("ize")
	}
}

func (s *stemmer) step5() {
	// Step 5a.
	if s.b[len(s.b)-1] == 'e' {
		a := s.m(len(s.b) - 1)
		if a > 1 || (a == 1 && !s.cvc(len(s.b)-2)) {
			s.b = s.b[:len(s.b)-1]
		}
	}
	// Step 5b.
	n := len(s.b) - 1
	if n > 0 && s.b[n] == 'l' && s.doubleCons(n) && s.m(len(s.b)) > 1 {
		s.b = s.b[:n]
	}
}
