package text

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"wikisearch/internal/graph"
)

// buildTextGraph builds a graph with the given node texts and no edges.
func buildTextGraph(t *testing.T, labels, descs []string) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	for i := range labels {
		b.AddNode(labels[i], descs[i])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// lookupThrough resolves a term through overlay-then-base, the way the
// engine's snapshot does.
func lookupThrough(ix *Index, ov *Overlay, term string) []graph.NodeID {
	if ov != nil {
		if p, ok := ov.Postings(term); ok {
			return p
		}
	}
	return ix.LookupTerm(term)
}

// TestOverlayMatchesRebuild mutates node text randomly and checks that every
// term in either vocabulary resolves identically through the overlay and
// through a fresh index of the final text.
func TestOverlayMatchesRebuild(t *testing.T) {
	words := []string{"database", "graph", "keyword", "search", "engine",
		"parallel", "wiki", "knowledge", "system", "query"}
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			text := func() string {
				n := 1 + rng.Intn(3)
				s := ""
				for i := 0; i < n; i++ {
					if i > 0 {
						s += " "
					}
					s += words[rng.Intn(len(words))]
				}
				return s
			}
			n := 6 + rng.Intn(6)
			labels := make([]string, n)
			descs := make([]string, n)
			for i := range labels {
				labels[i], descs[i] = text(), text()
			}
			base := buildTextGraph(t, labels, descs)
			ix := BuildIndex(base)

			b := NewOverlayBuilder(ix)
			// Retext some base nodes, append some new ones.
			for i := 0; i < 4; i++ {
				v := graph.NodeID(rng.Intn(n))
				nl, nd := text(), text()
				b.NodeRetext(v, labels[v], descs[v], nl, nd)
				labels[v], descs[v] = nl, nd
			}
			for i := 0; i < 3; i++ {
				nl, nd := text(), text()
				b.NodeAdded(graph.NodeID(len(labels)), nl, nd)
				labels = append(labels, nl)
				descs = append(descs, nd)
			}
			ov := b.Build()
			fresh := BuildIndex(buildTextGraph(t, labels, descs))

			vocab := map[string]struct{}{}
			for _, w := range words {
				for _, term := range Normalize(w) {
					vocab[term] = struct{}{}
				}
			}
			for term := range vocab {
				got := lookupThrough(ix, ov, term)
				want := fresh.LookupTerm(term)
				gotC, wantC := slices.Clone(got), slices.Clone(want)
				if len(gotC) == 0 && len(wantC) == 0 {
					continue
				}
				if !slices.Equal(gotC, wantC) {
					t.Errorf("term %q: overlay %v, fresh %v", term, gotC, wantC)
				}
			}
			if got, want := ix.NumTerms()+ov.TermsDelta(), fresh.NumTerms(); got != want {
				t.Errorf("TermsDelta: overlaid vocab %d, fresh %d", got, want)
			}
			if got, want := ix.TotalPostings()+ov.PostingsDelta(), fresh.TotalPostings(); got != want {
				t.Errorf("PostingsDelta: overlaid postings %d, fresh %d", got, want)
			}
		})
	}
}

// TestOverlayUntouchedTermsFallThrough pins that terms outside the delta are
// not covered by the overlay (lookups must alias base storage).
func TestOverlayUntouchedTermsFallThrough(t *testing.T) {
	g := buildTextGraph(t, []string{"alpha database", "beta graph"}, []string{"", ""})
	ix := BuildIndex(g)
	b := NewOverlayBuilder(ix)
	b.NodeRetext(0, "alpha database", "", "alpha keyword", "")
	ov := b.Build()
	if _, covered := ov.Postings(normOne(t, "graph")); covered {
		t.Error("unaffected term covered by overlay")
	}
	if _, covered := ov.Postings(normOne(t, "database")); !covered {
		t.Error("removed term not covered by overlay")
	}
	if _, covered := ov.Postings(normOne(t, "keyword")); !covered {
		t.Error("added term not covered by overlay")
	}
	if _, covered := ov.Postings(normOne(t, "alpha")); covered {
		t.Error("term present in both old and new text should not be covered")
	}
	if ov.TermsDelta() != 0 {
		t.Errorf("TermsDelta = %d, want 0 (one term added, one emptied)", ov.TermsDelta())
	}
}

func normOne(t *testing.T, w string) string {
	t.Helper()
	terms := Normalize(w)
	if len(terms) != 1 {
		t.Fatalf("Normalize(%q) = %v, want one term", w, terms)
	}
	return terms[0]
}
