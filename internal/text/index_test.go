package text

import (
	"reflect"
	"sort"
	"testing"

	"wikisearch/internal/graph"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"SPARQL 1.1 (RDF query-language)", []string{"sparql", "1", "1", "rdf", "query", "language"}},
		{"", nil},
		{"   ", nil},
		{"XPath2", []string{"xpath2"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeDropsStopwordsAndStems(t *testing.T) {
	got := Normalize("The Databases of the Knowledge Graphs")
	want := []string{"databas", "knowledg", "graph"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Normalize = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "of", "and", "is"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false", w)
		}
	}
	for _, w := range []string{"database", "graph", "xml"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true", w)
		}
	}
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	b.AddNode("SQL", "query language for relational databases") // 0
	b.AddNode("SPARQL", "RDF query language")                   // 1
	b.AddNode("XPath", "XML path language")                     // 2
	b.AddNode("RDF", "resource description framework")          // 3
	b.AddNode("Query language", "")                             // 4
	b.AddEdgeNamed(0, 4, "instance of")
	b.AddEdgeNamed(1, 4, "instance of")
	b.AddEdgeNamed(2, 4, "instance of")
	b.AddEdgeNamed(1, 3, "designed for")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildIndexAndLookup(t *testing.T) {
	g := testGraph(t)
	ix := BuildIndex(g)
	if ix.NumTerms() == 0 {
		t.Fatal("empty vocabulary")
	}
	// "query" appears in nodes 0 (desc), 1 (desc), 4 (label).
	got := ix.Lookup("query")
	want := []graph.NodeID{0, 1, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Lookup(query) = %v, want %v", got, want)
	}
	// Lookup normalizes: "Languages" stems to "languag" like "language".
	if !reflect.DeepEqual(ix.Lookup("Languages"), ix.Lookup("language")) {
		t.Fatal("lookup not normalization-invariant")
	}
	// RDF: node 1 (desc) and node 3 (label).
	if got := ix.Lookup("rdf"); !reflect.DeepEqual(got, []graph.NodeID{1, 3}) {
		t.Fatalf("Lookup(rdf) = %v", got)
	}
	if ix.Lookup("zebra") != nil {
		t.Fatal("unknown term should return nil")
	}
	if ix.Frequency("query") != 3 {
		t.Fatalf("Frequency(query) = %d", ix.Frequency("query"))
	}
}

func TestIndexNoDuplicatePostings(t *testing.T) {
	// A node whose label and description share a term must appear once.
	b := graph.NewBuilder()
	b.AddNode("database database", "the database")
	g, _ := b.Build()
	ix := BuildIndex(g)
	if got := ix.Lookup("database"); len(got) != 1 {
		t.Fatalf("Lookup = %v, want single posting", got)
	}
}

func TestIndexPostingsSorted(t *testing.T) {
	g := testGraph(t)
	ix := BuildIndex(g)
	for id := int32(0); id < int32(ix.NumTerms()); id++ {
		p := ix.LookupTerm(ix.TermName(id))
		if !sort.SliceIsSorted(p, func(i, j int) bool { return p[i] < p[j] }) {
			t.Fatalf("posting list for %q unsorted: %v", ix.TermName(id), p)
		}
	}
}

func TestQueryTerms(t *testing.T) {
	got := QueryTerms("XML relational search")
	want := []string{"xml", "relat", "search"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("QueryTerms = %v, want %v", got, want)
	}
	// Duplicates and stopwords collapse.
	got = QueryTerms("the search of search searches")
	if !reflect.DeepEqual(got, []string{"search"}) {
		t.Fatalf("QueryTerms dedup = %v", got)
	}
	if QueryTerms("the of and") != nil && len(QueryTerms("the of and")) != 0 {
		t.Fatal("all-stopword query should yield no terms")
	}
}

func TestIndexStats(t *testing.T) {
	g := testGraph(t)
	ix := BuildIndex(g)
	if ix.TotalPostings() <= 0 || ix.MaxPostingLen() <= 0 {
		t.Fatal("index stats not populated")
	}
	if ix.MaxPostingLen() > ix.TotalPostings() {
		t.Fatal("MaxPostingLen > TotalPostings")
	}
}

func TestIndexExportFromParts(t *testing.T) {
	g := testGraph(t)
	ix := BuildIndex(g)
	names, postings := ix.Export()
	ix2, err := FromParts(names, postings)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.NumTerms() != ix.NumTerms() || ix2.TotalPostings() != ix.TotalPostings() ||
		ix2.MaxPostingLen() != ix.MaxPostingLen() {
		t.Fatalf("stats differ after round trip")
	}
	for _, name := range names {
		if !reflect.DeepEqual(ix.LookupTerm(name), ix2.LookupTerm(name)) {
			t.Fatalf("postings for %q differ", name)
		}
	}
	// Error paths.
	if _, err := FromParts([]string{"a"}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FromParts([]string{"a", "a"}, make([][]graph.NodeID, 2)); err == nil {
		t.Fatal("duplicate term accepted")
	}
}
