package text

import (
	"fmt"
	"sort"

	"wikisearch/internal/graph"
)

// Index is the inverted keyword index mapping each normalized term to the
// sorted list of nodes whose label or description contains it. Each query
// keyword t_i resolves through the index to its source node set T_i, which
// seeds BFS instance B_i (§III).
type Index struct {
	ids       map[string]int32
	names     []string
	postings  [][]graph.NodeID
	maxLen    int
	totalPost int
}

// BuildIndex indexes every node's label and description.
func BuildIndex(g *graph.Graph) *Index {
	ix := &Index{ids: make(map[string]int32)}
	n := g.NumNodes()
	// Per-node de-duplication scratch.
	seen := make(map[int32]struct{}, 16)
	for v := 0; v < n; v++ {
		clear(seen)
		addTerms := func(s string) {
			for _, term := range Normalize(s) {
				id, ok := ix.ids[term]
				if !ok {
					id = int32(len(ix.names))
					ix.ids[term] = id
					ix.names = append(ix.names, term)
					ix.postings = append(ix.postings, nil)
				}
				if _, dup := seen[id]; dup {
					continue
				}
				seen[id] = struct{}{}
				ix.postings[id] = append(ix.postings[id], graph.NodeID(v))
			}
		}
		addTerms(g.Label(graph.NodeID(v)))
		addTerms(g.Description(graph.NodeID(v)))
	}
	for _, p := range ix.postings {
		if len(p) > ix.maxLen {
			ix.maxLen = len(p)
		}
		ix.totalPost += len(p)
	}
	return ix
}

// NumTerms returns the vocabulary size (distinct keywords after stopword
// filtering and stemming).
func (ix *Index) NumTerms() int { return len(ix.names) }

// TotalPostings returns the number of (term, node) pairs.
func (ix *Index) TotalPostings() int { return ix.totalPost }

// MaxPostingLen returns the longest posting list (most frequent keyword).
func (ix *Index) MaxPostingLen() int { return ix.maxLen }

// TermName returns the normalized term with the given id.
func (ix *Index) TermName(id int32) string { return ix.names[id] }

// LookupTerm returns the posting list for an already-normalized term. The
// returned slice is sorted ascending, aliases index storage, and must not be
// modified. Nil means the term is unknown.
func (ix *Index) LookupTerm(term string) []graph.NodeID {
	id, ok := ix.ids[term]
	if !ok {
		return nil
	}
	return ix.postings[id]
}

// Lookup normalizes a raw keyword and returns the union of posting lists of
// its normalized terms (a raw keyword like "databases" normalizes to one
// term; a phrase-like raw keyword may normalize to several).
func (ix *Index) Lookup(raw string) []graph.NodeID {
	terms := Normalize(raw)
	switch len(terms) {
	case 0:
		return nil
	case 1:
		return ix.LookupTerm(terms[0])
	}
	set := map[graph.NodeID]struct{}{}
	for _, t := range terms {
		for _, v := range ix.LookupTerm(t) {
			set[v] = struct{}{}
		}
	}
	out := make([]graph.NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Frequency returns the keyword frequency of a raw keyword — the number of
// nodes containing it (the kwf columns of Table V).
func (ix *Index) Frequency(raw string) int { return len(ix.Lookup(raw)) }

// Export returns the index's term names and posting lists for
// serialization. The slices alias index storage and must not be modified.
func (ix *Index) Export() (names []string, postings [][]graph.NodeID) {
	return ix.names, ix.postings
}

// FromParts reassembles an Index from serialized term names and posting
// lists (postings must be sorted ascending, as Export produces them).
func FromParts(names []string, postings [][]graph.NodeID) (*Index, error) {
	if len(names) != len(postings) {
		return nil, fmt.Errorf("text: %d names for %d posting lists", len(names), len(postings))
	}
	ix := &Index{
		ids:      make(map[string]int32, len(names)),
		names:    names,
		postings: postings,
	}
	for i, n := range names {
		if _, dup := ix.ids[n]; dup {
			return nil, fmt.Errorf("text: duplicate term %q", n)
		}
		ix.ids[n] = int32(i)
		if len(postings[i]) > ix.maxLen {
			ix.maxLen = len(postings[i])
		}
		ix.totalPost += len(postings[i])
	}
	return ix, nil
}

// QueryTerms normalizes a whole query string into its unique keyword terms,
// preserving first-occurrence order. This defines the q BFS instances of a
// query (duplicate and stopword terms collapse).
func QueryTerms(q string) []string {
	terms := Normalize(q)
	seen := make(map[string]struct{}, len(terms))
	out := terms[:0]
	for _, t := range terms {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
