package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"wikisearch"
)

// statusWriter records the status code and byte count of a response.
type statusWriter struct {
	http.ResponseWriter
	code  int // 0 until the first write
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// instrument builds the middleware chain for one route. Every route gets
// panic recovery, a request ID, the access log and the request counter;
// search routes additionally get the in-flight gauge, the concurrency
// limiter and the per-request deadline.
func (s *Server) instrument(h http.Handler, search bool) http.Handler {
	if search {
		h = s.withTimeout(h)
		h = s.withLimit(h)
		h = s.withInFlight(h)
	}
	return s.withObservability(h)
}

// withObservability assigns a request ID (threaded into the context so the
// engine's traces link back to the request), recovers panics, counts the
// request by status code and writes the structured access log line.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.nextReqID.Add(1)
		r = r.WithContext(wikisearch.WithRequestID(r.Context(), id))
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Request-ID", strconv.FormatUint(id, 10))
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				s.met.panics.Inc()
				s.slog.Error("panic recovered",
					"req", id, "panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
				if sw.code == 0 {
					if isV1(r) {
						s.v1Error(sw, http.StatusInternalServerError, "internal", "internal server error")
					} else {
						http.Error(sw, "internal server error", http.StatusInternalServerError)
					}
				}
			}
			code := sw.code
			if code == 0 {
				// Nothing was written: the handler dropped the response
				// because the client disconnected. nginx's 499.
				code = 499
			}
			s.met.countRequest(code)
			s.slog.Info("request",
				"req", id,
				"method", r.Method,
				"uri", r.URL.RequestURI(),
				"status", code,
				"bytes", sw.bytes,
				"duration", time.Since(start).Round(time.Microsecond))
		}()
		next.ServeHTTP(sw, r)
	})
}

// withInFlight tracks the number of searches currently executing.
func (s *Server) withInFlight(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.met.inFlight.Inc()
		defer s.met.inFlight.Dec()
		next.ServeHTTP(w, r)
	})
}

// withLimit bounds concurrent searches, failing fast with 503 instead of
// queueing unboundedly under overload (admission control).
func (s *Server) withLimit(next http.Handler) http.Handler {
	if s.sem == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			next.ServeHTTP(w, r)
		default:
			s.met.limited.Inc()
			w.Header().Set("Retry-After", "1")
			if isV1(r) {
				s.v1Error(w, http.StatusServiceUnavailable, "overloaded", "server at capacity, retry shortly")
			} else {
				s.error(w, http.StatusServiceUnavailable, "server at capacity, retry shortly")
			}
		}
	})
}

// withTimeout bounds each search by the configured deadline. The engine
// checks the context between BFS levels, so a timed-out search stops
// doing work shortly after the deadline, and the handler maps the
// context error to 504.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	if s.cfg.Timeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
