package server

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"wikisearch"
)

// TestDebugTraceEndpoints: after a search, the trace shows up in
// /v1/debug/traces, is fetchable by its request ID with a well-formed span
// tree, and exports valid Chrome trace_event JSON.
func TestDebugTraceEndpoints(t *testing.T) {
	s := testServer(t)

	sw := get(t, s, "/v1/search?q=sparql+rdf")
	if sw.Code != http.StatusOK {
		t.Fatalf("search status = %d: %s", sw.Code, sw.Body)
	}
	reqID := sw.Header().Get("X-Request-ID")
	if reqID == "" {
		t.Fatal("search response missing X-Request-ID")
	}

	// The listing endpoint: the search's trace is in the recent ring.
	w := get(t, s, "/v1/debug/traces")
	if w.Code != http.StatusOK {
		t.Fatalf("traces status = %d: %s", w.Code, w.Body)
	}
	var listEnv struct {
		Stats struct {
			SlowThresholdMs float64                  `json:"slow_threshold_ms"`
			Recent          []*wikisearch.QueryTrace `json:"recent"`
			Slow            []*wikisearch.QueryTrace `json:"slow"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &listEnv); err != nil {
		t.Fatal(err)
	}
	list := listEnv.Stats
	if list.SlowThresholdMs != 500 { // the server default
		t.Fatalf("slow_threshold_ms = %v, want 500", list.SlowThresholdMs)
	}
	if len(list.Recent) == 0 {
		t.Fatalf("recent ring empty after a search: %s", w.Body)
	}
	if list.Recent[0].Query != "sparql rdf" {
		t.Fatalf("newest trace is %q, want the search just run", list.Recent[0].Query)
	}

	// Fetch by request ID: the handler context must carry the middleware's
	// request ID through the engine into the trace.
	w = get(t, s, "/v1/debug/trace?req="+reqID)
	if w.Code != http.StatusOK {
		t.Fatalf("trace by req status = %d: %s", w.Code, w.Body)
	}
	var oneEnv struct {
		Stats struct {
			Trace *wikisearch.QueryTrace `json:"trace"`
			Tree  *wikisearch.TraceSpan  `json:"tree"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &oneEnv); err != nil {
		t.Fatal(err)
	}
	one := oneEnv.Stats
	if one.Trace == nil || one.Tree == nil {
		t.Fatalf("trace/tree missing: %s", w.Body)
	}
	if got := strconv.FormatUint(one.Trace.RequestID, 10); got != reqID {
		t.Fatalf("trace request id %s, want %s", got, reqID)
	}
	if one.Tree.Name != "search" || len(one.Tree.Children) == 0 {
		t.Fatalf("span tree not assembled: %+v", one.Tree)
	}

	// Chrome trace_event export: complete events only, one process, a
	// leading metadata span naming the query.
	w = get(t, s, "/v1/debug/trace?id="+strconv.FormatUint(one.Trace.ID, 10)+"&format=chrome")
	if w.Code != http.StatusOK {
		t.Fatalf("chrome trace status = %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("chrome trace content type = %q", ct)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(bytes.NewReader(w.Body.Bytes())).Decode(&chrome); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) < 2 {
		t.Fatalf("chrome trace has %d events", len(chrome.TraceEvents))
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 1 || ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("malformed chrome event: %+v", ev)
		}
	}
	if chrome.TraceEvents[0].Name != "search" || chrome.TraceEvents[0].Args["query"] != "sparql rdf" {
		t.Fatalf("chrome trace missing the query metadata span: %+v", chrome.TraceEvents[0])
	}

	// Error surface: no selector is a 400, an aged-out id is a 404.
	if w := get(t, s, "/v1/debug/trace"); w.Code != http.StatusBadRequest {
		t.Fatalf("missing selector status = %d", w.Code)
	}
	if w := get(t, s, "/v1/debug/trace?id=999999"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown id status = %d", w.Code)
	}
}

// TestDebugTracesDisabled: with tracing switched off, the endpoints still
// answer (empty rings / 404), never 500.
func TestDebugTracesDisabled(t *testing.T) {
	s := testServer(t)
	s.eng.SetTracing(false)
	if _, err := s.eng.Search(t.Context(), wikisearch.Query{Text: "sparql rdf"}); err != nil {
		t.Fatal(err)
	}
	w := get(t, s, "/v1/debug/traces")
	if w.Code != http.StatusOK {
		t.Fatalf("traces status = %d", w.Code)
	}
	var list struct {
		Stats struct {
			Recent []json.RawMessage `json:"recent"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Stats.Recent) != 0 {
		t.Fatalf("tracing off but %d traces collected", len(list.Stats.Recent))
	}
}

// TestSlowQueryLog: a search slower than the threshold emits one structured
// slog line with the per-phase breakdown and bumps the counter.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	cfg := Config{
		Logger:    log.New(&buf, "", 0),
		SlowQuery: time.Nanosecond, // everything is slow
	}
	s := NewWithConfig(testEngine(t), cfg)

	if w := get(t, s, "/v1/search?q=sparql+rdf"); w.Code != http.StatusOK {
		t.Fatalf("search status = %d", w.Code)
	}
	out := buf.String()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, `query="sparql rdf"`) {
		t.Fatalf("no slow-query line logged:\n%s", out)
	}
	for _, field := range []string{"duration_ms=", "batched=", "expand_ms=", "topdown_ms="} {
		if !strings.Contains(out, field) {
			t.Fatalf("slow-query line missing %s:\n%s", field, out)
		}
	}
	if got := s.met.slowQueries.Value(); got == 0 {
		t.Fatal("slow query counter not bumped")
	}
}

// syncBuffer guards a bytes.Buffer for use as a concurrent slog sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
