package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRouteSpecGolden pins docs/api.md to the registered mux routes: the
// route table between the routes:begin/end markers must list exactly the
// (method, path, description) triples the server registers. Adding,
// renaming, or removing a handler without updating the spec fails here.
func TestRouteSpecGolden(t *testing.T) {
	spec := filepath.Join("..", "..", "docs", "api.md")
	raw, err := os.ReadFile(spec)
	if err != nil {
		t.Fatalf("route spec missing: %v", err)
	}
	_, rest, found := strings.Cut(string(raw), "<!-- routes:begin")
	if !found {
		t.Fatal("docs/api.md has no routes:begin marker")
	}
	table, _, found := strings.Cut(rest, "<!-- routes:end -->")
	if !found {
		t.Fatal("docs/api.md has no routes:end marker")
	}

	documented := map[string]string{} // "METHOD PATH" -> description
	var order []string
	for _, line := range strings.Split(table, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") || strings.HasPrefix(line, "|--") {
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		if len(cells) != 3 {
			t.Fatalf("route table row needs 3 cells: %q", line)
		}
		method := strings.TrimSpace(cells[0])
		path := strings.TrimSpace(cells[1])
		doc := strings.TrimSpace(cells[2])
		if method == "Method" { // header row
			continue
		}
		key := method + " " + path
		if _, dup := documented[key]; dup {
			t.Fatalf("route %q documented twice", key)
		}
		documented[key] = doc
		order = append(order, key)
	}

	registered := testServer(t).Routes()
	for _, r := range registered {
		key := r.Method + " " + r.Pattern
		doc, ok := documented[key]
		if !ok {
			t.Errorf("route %q is registered but missing from docs/api.md", key)
			continue
		}
		if doc != r.Doc {
			t.Errorf("route %q description drifted:\n  docs/api.md: %q\n  registered:  %q", key, doc, r.Doc)
		}
		delete(documented, key)
	}
	for key := range documented {
		t.Errorf("route %q is documented in docs/api.md but not registered", key)
	}
	if t.Failed() {
		t.Log("update the table between the routes:begin/end markers in docs/api.md to match Server.Routes()")
	}

	// The documented table is sorted like Routes(): by path, then method.
	sorted := append([]string(nil), order...)
	sortRouteKeys(sorted)
	for i := range order {
		if order[i] != sorted[i] {
			t.Fatalf("docs/api.md route table is not sorted by path then method: %q before %q", order[i], sorted[i])
		}
	}
}

func sortRouteKeys(keys []string) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && routeKeyLess(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

func routeKeyLess(a, b string) bool {
	am, ap, _ := strings.Cut(a, " ")
	bm, bp, _ := strings.Cut(b, " ")
	if ap != bp {
		return ap < bp
	}
	return am < bm
}

// TestRoutesServed: every route in the table answers something other than
// the mux's 404, i.e. the table is live.
func TestRoutesServed(t *testing.T) {
	s := testServer(t)
	for _, r := range s.Routes() {
		path := strings.ReplaceAll(r.Pattern, "{$}", "")
		w := get(t, s, path)
		if w.Code == 404 && !strings.HasPrefix(r.Pattern, "/v1/debug") {
			t.Errorf("route %s %s answered 404: %s", r.Method, r.Pattern, w.Body)
		}
	}
	// And an unregistered path still 404s.
	if w := get(t, s, "/nope"); w.Code != 404 {
		t.Errorf("unregistered path answered %d", w.Code)
	}
}
