package server

import (
	"net/http"
	"strconv"
	"time"

	"wikisearch"
	"wikisearch/internal/trace"
)

// debugTracesStats is the stats block of the GET /v1/debug/traces
// envelope: the most recent traces plus the retained slow ones, newest
// first.
type debugTracesStats struct {
	SlowThresholdMs float64                  `json:"slow_threshold_ms"`
	Recent          []*wikisearch.QueryTrace `json:"recent"`
	Slow            []*wikisearch.QueryTrace `json:"slow"`
}

// handleDebugTraces serves the trace capture rings in the /v1 envelope.
// Traces are summaries here (events elided); fetch one by id from
// /v1/debug/trace for the tree.
func (s *Server) handleDebugTraces(w http.ResponseWriter, _ *http.Request) {
	tr := s.eng.Traces()
	if tr == nil {
		s.v1Error(w, http.StatusNotFound, "unavailable", "tracing is not available on this engine")
		return
	}
	resp := debugTracesStats{
		SlowThresholdMs: float64(tr.SlowThreshold()) / float64(time.Millisecond),
		Recent:          tr.Recent(),
		Slow:            tr.Slow(),
	}
	if resp.Recent == nil {
		resp.Recent = []*wikisearch.QueryTrace{}
	}
	if resp.Slow == nil {
		resp.Slow = []*wikisearch.QueryTrace{}
	}
	s.json(w, http.StatusOK, v1Envelope{Stats: &resp})
}

// debugTraceStats is the stats block of the GET /v1/debug/trace envelope:
// the trace summary plus its assembled span tree.
type debugTraceStats struct {
	Trace *wikisearch.QueryTrace `json:"trace"`
	Tree  *wikisearch.TraceSpan  `json:"tree"`
}

// handleDebugTrace serves one trace by id (or by request id via req=).
// format=chrome returns the Chrome trace_event JSON loadable in
// chrome://tracing and Perfetto.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.eng.Traces()
	if tr == nil {
		s.v1Error(w, http.StatusNotFound, "unavailable", "tracing is not available on this engine")
		return
	}
	var qt *wikisearch.QueryTrace
	switch {
	case r.URL.Query().Get("id") != "":
		id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
		if err != nil {
			s.v1Error(w, http.StatusBadRequest, "bad_request", "id must be an integer")
			return
		}
		qt = tr.Get(id)
	case r.URL.Query().Get("req") != "":
		id, err := strconv.ParseUint(r.URL.Query().Get("req"), 10, 64)
		if err != nil {
			s.v1Error(w, http.StatusBadRequest, "bad_request", "req must be an integer")
			return
		}
		qt = tr.FindRequest(id)
	default:
		s.v1Error(w, http.StatusBadRequest, "bad_request", "missing id or req parameter")
		return
	}
	if qt == nil {
		s.v1Error(w, http.StatusNotFound, "not_found", "no such trace (the capture rings are bounded; it may have aged out)")
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		// The Chrome trace_event export is a foreign format by design —
		// loadable in chrome://tracing — so it skips the envelope.
		w.Header().Set("Content-Type", "application/json")
		if err := qt.WriteChrome(w); err != nil {
			s.log.Printf("server: chrome trace: %v", err)
		}
		return
	}
	s.json(w, http.StatusOK, v1Envelope{Stats: &debugTraceStats{Trace: qt, Tree: qt.Tree()}})
}

// observeTrace is installed as the trace collector's observer when the
// slow-query log is enabled: any search over the threshold gets one
// structured line with its identity, knobs, batch occupancy and per-phase
// breakdown — enough to diagnose it without replaying.
func (s *Server) observeTrace(qt *wikisearch.QueryTrace) {
	if qt.Duration < s.cfg.SlowQuery {
		return
	}
	s.met.slowQueries.Inc()
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	s.slog.Warn("slow query",
		"trace", qt.ID,
		"req", qt.RequestID,
		"query", qt.Query,
		"terms", qt.Terms,
		"variant", qt.Variant,
		"k", qt.TopK,
		"alpha", qt.Alpha,
		"lambda", qt.Lambda,
		"duration_ms", ms(int64(qt.Duration)),
		"answers", qt.Answers,
		"err", qt.Err,
		"batched", qt.Batched,
		"batch_queries", qt.BatchQueries,
		"batch_columns", qt.BatchColumns,
		"batch_wait_ms", ms(int64(qt.BatchWait)),
		"init_ms", ms(qt.PhaseNs(trace.KindInit)),
		"enqueue_ms", ms(qt.PhaseNs(trace.KindEnqueue)),
		"identify_ms", ms(qt.PhaseNs(trace.KindIdentify)),
		"expand_ms", ms(qt.PhaseNs(trace.KindExpand)),
		"topdown_ms", ms(qt.PhaseNs(trace.KindTopDown)),
		"shards", qt.Shards,
		"shard_messages", qt.ShardMessages,
		"shard_imbalance", qt.ShardImbalance,
		"exchange_ms", ms(qt.PhaseNs(trace.KindExchange)),
		"merge_ms", ms(qt.PhaseNs(trace.KindMerge)),
	)
}
