package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update. Golden files pin the /v1 wire format: any change to the
// envelope shows up as a reviewable diff.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/server -run V1 -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("golden mismatch for %s:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// normalizeJSON re-encodes body with deterministic indentation after
// zeroing the named top-level "stats" fields (timings and sampled values
// vary run to run; the schema is what the golden files pin).
func normalizeJSON(t *testing.T, body []byte, zeroStats ...string) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if stats, ok := m["stats"].(map[string]any); ok {
		for _, f := range zeroStats {
			if _, present := stats[f]; !present {
				t.Fatalf("stats field %q missing from %s", f, body)
			}
			stats[f] = 0
		}
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func TestV1SearchGolden(t *testing.T) {
	s := testServer(t)
	w := get(t, s, "/v1/search?q=xml+rdf+sql&k=3")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", w.Code, w.Body)
	}
	if w.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("X-Cache = %q", w.Header().Get("X-Cache"))
	}
	checkGolden(t, "v1_search.json", normalizeJSON(t, w.Body.Bytes(), "total_ms"))

	// Error envelopes are fully deterministic; no normalization.
	w = get(t, s, "/v1/search?q=xml&k=0")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d body %s", w.Code, w.Body)
	}
	checkGolden(t, "v1_search_bad_request.json", w.Body.Bytes())

	w = get(t, s, "/v1/search?q=zzzznothing")
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d body %s", w.Code, w.Body)
	}
	checkGolden(t, "v1_search_unprocessable.json", w.Body.Bytes())
}

func TestV1StatsGolden(t *testing.T) {
	w := get(t, testServer(t), "/v1/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", w.Code, w.Body)
	}
	checkGolden(t, "v1_stats.json", normalizeJSON(t, w.Body.Bytes(), "avg_distance"))
}

// TestV1SearchMatchesLegacy: both routes run the same parse and the same
// engine call; only the envelope differs.
func TestV1SearchMatchesLegacy(t *testing.T) {
	s := testServer(t)
	legacy := get(t, s, "/search?q=xml+rdf+sql&k=3")
	var lr SearchResponse
	if err := json.Unmarshal(legacy.Body.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	v1 := get(t, s, "/v1/search?q=xml+rdf+sql&k=3")
	var vr V1SearchResponse
	if err := json.Unmarshal(v1.Body.Bytes(), &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Error != nil || vr.Stats == nil {
		t.Fatalf("v1 envelope: %+v", vr)
	}
	if len(vr.Results) != len(lr.Answers) || vr.Stats.Depth != lr.Depth ||
		vr.Stats.Candidates != lr.Candidates ||
		strings.Join(vr.Stats.Terms, " ") != strings.Join(lr.Terms, " ") {
		t.Fatalf("v1 disagrees with legacy:\nv1 %+v\nlegacy %+v", vr, lr)
	}
}

// TestV1ErrorStatuses walks the error contract: every failure mode answers
// with the documented status and stable error code.
func TestV1ErrorStatuses(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		path string
		code int
		ec   string
	}{
		{"/v1/search", http.StatusBadRequest, "bad_request"},
		{"/v1/search?q=xml&k=abc", http.StatusBadRequest, "bad_request"},
		{"/v1/search?q=xml&k=9999", http.StatusBadRequest, "bad_request"},
		{"/v1/search?q=xml&alpha=0", http.StatusBadRequest, "bad_request"},
		{"/v1/search?q=xml&lambda=2", http.StatusBadRequest, "bad_request"},
		{"/v1/search?q=xml&variant=tpu", http.StatusBadRequest, "bad_request"},
		{"/v1/search?q=zzzznothing", http.StatusUnprocessableEntity, "unprocessable"},
	}
	for _, c := range cases {
		w := get(t, s, c.path)
		if w.Code != c.code {
			t.Errorf("%s: status = %d, want %d (body %s)", c.path, w.Code, c.code, w.Body)
		}
		var resp V1SearchResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Errorf("%s: invalid JSON: %v", c.path, err)
			continue
		}
		if resp.Error == nil || resp.Error.Code != c.ec || resp.Error.Message == "" {
			t.Errorf("%s: error block = %+v, want code %q", c.path, resp.Error, c.ec)
		}
	}
}

// TestV1Timeout: a deadline overrun is a 504 with code "timeout".
func TestV1Timeout(t *testing.T) {
	s := testServerWith(t, Config{Timeout: time.Nanosecond})
	w := get(t, s, "/v1/search?q=xml+rdf+sql")
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d body %s", w.Code, w.Body)
	}
	var resp V1SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Code != "timeout" {
		t.Fatalf("error block = %+v", resp.Error)
	}
}

// TestV1Overloaded: the admission-control rejection keeps the envelope on
// versioned routes.
func TestV1Overloaded(t *testing.T) {
	s := testServerWith(t, Config{MaxInFlight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	h := s.withLimit(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		once.Do(func() { close(entered) })
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/search?q=xml", nil))
	}()
	<-entered
	defer func() { close(release); <-done }()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/search?q=xml", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", w.Code)
	}
	var resp V1SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Code != "overloaded" {
		t.Fatalf("error block = %+v", resp.Error)
	}
}

// TestV1PanicEnvelope: a recovered panic on a versioned route answers with
// the envelope, not the legacy plain-text 500.
func TestV1PanicEnvelope(t *testing.T) {
	s := testServer(t)
	h := s.instrument(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}), false)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/search?q=xml", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", w.Code)
	}
	var resp V1SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("panic body is not the envelope: %v\n%s", err, w.Body)
	}
	if resp.Error == nil || resp.Error.Code != "internal" {
		t.Fatalf("error block = %+v", resp.Error)
	}
}

// TestBatchMetricsExported: with batching on (the default), served
// searches feed the batch occupancy and coalescing histograms.
func TestBatchMetricsExported(t *testing.T) {
	s := testServer(t)
	var wg sync.WaitGroup
	for _, q := range []string{"xml+rdf", "sparql+rdf", "sql+query", "xml+xquery"} {
		wg.Add(1)
		go func(q string) {
			defer wg.Done()
			get(t, s, "/v1/search?q="+q)
		}(q)
	}
	wg.Wait()
	// The batch observer fires on the batch goroutine after results are
	// delivered; poll briefly instead of racing it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		out := get(t, s, "/metrics").Body.String()
		missing := ""
		for _, want := range []string{
			"wikisearch_batch_occupancy_count",
			"wikisearch_batch_columns_count",
			"wikisearch_batch_coalesce_seconds_count",
		} {
			if !strings.Contains(out, want) {
				missing = want
				break
			}
		}
		if missing == "" {
			var total float64
			for _, line := range strings.Split(out, "\n") {
				if strings.HasPrefix(line, "wikisearch_batch_occupancy_count ") {
					if _, err := fmtSscan(line, &total); err != nil {
						t.Fatalf("parse %q: %v", line, err)
					}
				}
			}
			if total >= 1 {
				return
			}
			missing = "wikisearch_batch_occupancy_count >= 1"
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never showed %s:\n%s", missing, out)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBatchingDisabled: a negative BatchWindow turns coalescing off; the
// batch histograms stay empty while searches still succeed.
func TestBatchingDisabled(t *testing.T) {
	s := testServerWith(t, Config{BatchWindow: -1})
	if w := get(t, s, "/v1/search?q=xml+rdf+sql"); w.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", w.Code, w.Body)
	}
	if got := s.met.batchQueries.Count(); got != 0 {
		t.Fatalf("batch occupancy count = %d with batching disabled", got)
	}
}

// fmtSscan parses the single float value off a metrics exposition line.
func fmtSscan(line string, v *float64) (int, error) {
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return 0, errBadLine
	}
	return 1, json.Unmarshal([]byte(fields[1]), v)
}

var errBadLine = os.ErrInvalid
