package server

import (
	"strconv"

	"wikisearch"
	"wikisearch/internal/metrics"
)

// serverMetrics is the service's measurement surface, exposed at
// GET /metrics in Prometheus text format. Per-phase search latency comes
// straight from the engine's Result.Phases profile (Fig. 6/7 of the paper)
// through the search observer, so every later performance PR can read its
// effect off the histograms.
type serverMetrics struct {
	reg *metrics.Registry

	requests   *metrics.CounterVec // by status code
	inFlight   *metrics.Gauge      // searches currently executing
	limited    *metrics.Counter    // fast-fail 503 rejections
	timeouts   *metrics.Counter    // searches past the deadline (504)
	clientGone *metrics.Counter    // requests abandoned by the client
	panics     *metrics.Counter    // recovered handler panics

	cacheHits   *metrics.Counter
	cacheMisses *metrics.Counter

	searchSeconds *metrics.Histogram    // engine-side total search time
	phaseSeconds  *metrics.HistogramVec // per-phase profile, by phase name
	searchErrors  *metrics.Counter      // engine searches that returned an error

	batchQueries  *metrics.Histogram // occupancy: queries per launched batch
	batchColumns  *metrics.Histogram // occupancy: keyword columns per launched batch
	batchCoalesce *metrics.Histogram // time a batch stayed open before launch
	batchSolo     *metrics.Counter   // batches that degenerated to one query

	kbMappedBytes *metrics.Gauge      // live KB mapping size (0 unless mmap-loaded)
	kbLoadMode    *metrics.CounterVec // 1 on the label of the load mode in use

	shardMessages *metrics.Histogram // boundary activations exchanged per sharded query
	shardExchange *metrics.Histogram // per-query frontier-exchange wall time
	shardMerge    *metrics.Histogram // per-query global merge + absorb wall time
	shardStall    *metrics.Histogram // slowest-shard stall per sharded query
	shardImbal    *metrics.Histogram // max/mean shard busy-time ratio per query

	slowQueries *metrics.Counter // searches over the slow-query threshold

	epoch         *metrics.Gauge     // current search epoch id
	epochPinned   *metrics.Gauge     // searches pinning the current epoch
	epochsOldLive *metrics.Gauge     // replaced epochs still pinned
	epochsRetired *metrics.Gauge     // replaced epochs fully drained (cumulative)
	deltaNodes    *metrics.Gauge     // overlay: nodes added since compaction
	deltaEdges    *metrics.Gauge     // overlay: net edge delta since compaction
	deltaTerms    *metrics.Gauge     // keyword overlay: affected index terms
	publishes     *metrics.Counter   // epoch publications (delta views)
	compactions   *metrics.Counter   // epoch publications that compacted
	publishSecs   *metrics.Histogram // snapshot build + install wall time
}

func newServerMetrics() *serverMetrics {
	r := metrics.NewRegistry()
	// Go runtime health (goroutines, heap, GC pauses, scheduler latency)
	// refreshes itself on every scrape via the registry's hook.
	metrics.NewRuntimeCollector(r)
	return &serverMetrics{
		reg: r,
		requests: r.CounterVec("wikisearch_http_requests_total",
			"HTTP requests served, by status code.", "code"),
		inFlight: r.Gauge("wikisearch_http_in_flight",
			"Search requests currently being served."),
		limited: r.Counter("wikisearch_http_limited_total",
			"Search requests rejected with 503 by the concurrency limiter."),
		timeouts: r.Counter("wikisearch_http_timeouts_total",
			"Search requests that exceeded the per-request deadline."),
		clientGone: r.Counter("wikisearch_http_client_gone_total",
			"Search requests abandoned because the client disconnected."),
		panics: r.Counter("wikisearch_http_panics_total",
			"Handler panics recovered by the middleware."),
		cacheHits: r.Counter("wikisearch_cache_hits_total",
			"Searches served from the query-result cache (including deduplicated concurrent queries)."),
		cacheMisses: r.Counter("wikisearch_cache_misses_total",
			"Searches that had to run the engine."),
		searchSeconds: r.Histogram("wikisearch_search_seconds",
			"Engine search latency (sum of all phases).", nil),
		phaseSeconds: r.HistogramVec("wikisearch_search_phase_seconds",
			"Engine search latency per algorithm phase.", "phase", nil),
		searchErrors: r.Counter("wikisearch_search_errors_total",
			"Engine searches that returned an error."),
		batchQueries: r.Histogram("wikisearch_batch_occupancy",
			"Queries multiplexed into one launched batch.",
			[]float64{1, 2, 3, 4, 5, 6, 7, 8}),
		batchColumns: r.Histogram("wikisearch_batch_columns",
			"Keyword columns occupied by one launched batch.",
			[]float64{1, 2, 4, 8, 16, 32, 64}),
		batchCoalesce: r.Histogram("wikisearch_batch_coalesce_seconds",
			"Time a batch stayed open collecting queries before launching.",
			[]float64{25e-6, 50e-6, 100e-6, 200e-6, 500e-6, 1e-3, 5e-3, 25e-3}),
		batchSolo: r.Counter("wikisearch_batch_solo_total",
			"Launched batches that held a single query and ran the solo path."),
		kbMappedBytes: r.Gauge("wikisearch_kb_mapped_bytes",
			"Bytes of the knowledge-base dump held in a live memory mapping (0 unless mmap-loaded)."),
		kbLoadMode: r.CounterVec("wikisearch_kb_load_info",
			"How the knowledge base got into memory: 1 on the mode in use (decode, mmap, read, memory).", "mode"),
		shardMessages: r.Histogram("wikisearch_shard_exchange_messages",
			"Cross-shard boundary activations exchanged by one sharded search.",
			[]float64{0, 1, 8, 64, 512, 4096, 32768, 262144}),
		shardExchange: r.Histogram("wikisearch_shard_exchange_seconds",
			"Wall time one sharded search spent applying cross-shard frontier messages.",
			[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}),
		shardMerge: r.Histogram("wikisearch_shard_merge_seconds",
			"Wall time one sharded search spent in the global central merge and matrix absorption.",
			[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}),
		shardStall: r.Histogram("wikisearch_shard_stall_seconds",
			"Per-query wait the slowest shard imposed on the rest (max busy time minus mean).",
			[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}),
		shardImbal: r.Histogram("wikisearch_shard_imbalance",
			"Per-query shard busy-time imbalance: max/mean over shards (1 = perfectly balanced).",
			[]float64{1, 1.1, 1.25, 1.5, 2, 3, 5, 10}),
		slowQueries: r.Counter("wikisearch_slow_queries_total",
			"Searches whose end-to-end engine time exceeded the slow-query threshold."),
		epoch: r.Gauge("wikisearch_epoch",
			"Current search epoch id (advances on every live-mutation publish)."),
		epochPinned: r.Gauge("wikisearch_epoch_pinned",
			"In-flight searches pinning the current epoch."),
		epochsOldLive: r.Gauge("wikisearch_epochs_old_live",
			"Replaced epochs still held alive by in-flight searches."),
		epochsRetired: r.Gauge("wikisearch_epochs_retired_total",
			"Replaced epochs whose last pinned search drained (cumulative)."),
		deltaNodes: r.Gauge("wikisearch_delta_nodes",
			"Nodes added by the unmerged mutation delta (0 after compaction)."),
		deltaEdges: r.Gauge("wikisearch_delta_edges",
			"Net edge change carried by the unmerged mutation delta (0 after compaction)."),
		deltaTerms: r.Gauge("wikisearch_delta_terms",
			"Index terms overridden by the keyword overlay (0 after compaction)."),
		publishes: r.Counter("wikisearch_publishes_total",
			"Epoch publications that installed a delta view (Mutator.Publish)."),
		compactions: r.Counter("wikisearch_compactions_total",
			"Epoch publications that installed a freshly compacted flat snapshot."),
		publishSecs: r.Histogram("wikisearch_publish_seconds",
			"Wall time to build and install one published snapshot.",
			[]float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10}),
	}
}

// observeEpoch refreshes the epoch and delta gauges; runs on every
// /metrics scrape.
func (m *serverMetrics) observeEpoch(st wikisearch.EpochStats) {
	m.epoch.Set(int64(st.Epoch))
	m.epochPinned.Set(st.Pinned)
	m.epochsOldLive.Set(int64(st.OldLive))
	m.epochsRetired.Set(st.Retired)
	m.deltaNodes.Set(int64(st.DeltaNodes))
	m.deltaEdges.Set(int64(st.DeltaEdges))
	m.deltaTerms.Set(int64(st.DeltaTerms))
}

// observePublish records one epoch publication; installed as part of the
// publish observer when mutation is enabled.
func (m *serverMetrics) observePublish(info wikisearch.PublishInfo) {
	if info.Compacted {
		m.compactions.Inc()
	} else {
		m.publishes.Inc()
	}
	m.publishSecs.Observe(info.Duration.Seconds())
}

// observeLoad records how the engine's dump was loaded; called once at
// server construction.
func (m *serverMetrics) observeLoad(info wikisearch.LoadInfo) {
	m.kbMappedBytes.Set(info.MappedBytes)
	mode := info.Mode
	if mode == "" {
		mode = "memory" // engine built in process, no dump involved
	}
	m.kbLoadMode.With(mode).Inc()
}

// observeSearch is installed as the engine's SearchObserver: every
// Search outcome feeds the latency histograms.
func (m *serverMetrics) observeSearch(_ wikisearch.Query, res *wikisearch.Result, err error) {
	if err != nil {
		m.searchErrors.Inc()
		return
	}
	m.searchSeconds.Observe(res.Total.Seconds())
	for phase, d := range res.Phases {
		m.phaseSeconds.With(phase).Observe(d.Seconds())
	}
	if sh := res.Shard; sh != nil {
		m.shardMessages.Observe(float64(sh.Messages))
		m.shardExchange.Observe(sh.Exchange.Seconds())
		m.shardMerge.Observe(sh.Merge.Seconds())
		m.shardStall.Observe(sh.Stall.Seconds())
		m.shardImbal.Observe(sh.Imbalance)
	}
}

// observeBatch is installed as the engine's batch observer: every launched
// batch feeds the occupancy and coalescing-latency histograms, so the
// effect of tuning Config.BatchWindow reads straight off /metrics.
func (m *serverMetrics) observeBatch(ex wikisearch.BatchExecution) {
	m.batchQueries.Observe(float64(ex.Queries))
	m.batchColumns.Observe(float64(ex.Columns))
	m.batchCoalesce.Observe(ex.Wait.Seconds())
	if ex.Solo {
		m.batchSolo.Inc()
	}
}

// countRequest records one served request by status code.
func (m *serverMetrics) countRequest(code int) {
	m.requests.With(strconv.Itoa(code)).Inc()
}
