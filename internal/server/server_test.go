package server

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wikisearch"
)

func testEngine(t *testing.T) *wikisearch.Engine {
	t.Helper()
	b := wikisearch.NewBuilder()
	sql := b.AddNode("SQL", "query language for relational databases")
	hub := b.AddNode("Query language", "")
	sparql := b.AddNode("SPARQL", "RDF query language")
	rdf := b.AddNode("RDF", "resource description framework")
	xq := b.AddNode("XQuery", "XML query language")
	b.AddEdgeNamed(sql, hub, "instance of")
	b.AddEdgeNamed(sparql, hub, "instance of")
	b.AddEdgeNamed(xq, hub, "instance of")
	b.AddEdgeNamed(sparql, rdf, "designed for")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := wikisearch.NewEngine(g, wikisearch.EngineOptions{DistanceSamplePairs: 100})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetName("test-kb")
	return eng
}

func quietConfig() Config {
	return Config{Logger: log.New(io.Discard, "", 0)}
}

func testServer(t *testing.T) *Server {
	t.Helper()
	return NewWithConfig(testEngine(t), quietConfig())
}

func testServerWith(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	return NewWithConfig(testEngine(t), cfg)
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestHealthz(t *testing.T) {
	w := get(t, testServer(t), "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
}

func TestStats(t *testing.T) {
	w := get(t, testServer(t), "/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if w.Header().Get("Deprecation") == "" ||
		w.Header().Get("Link") != `</v1/stats>; rel="successor-version"` {
		t.Fatalf("legacy route missing deprecation headers: %v", w.Header())
	}
	var st StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Dataset != "test-kb" || st.Nodes != 5 || st.Edges != 4 || st.Vocabulary == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSearchOK(t *testing.T) {
	s := testServer(t)
	for _, variant := range []string{"", "cpu", "cpu-d", "gpu", "seq"} {
		url := "/search?q=xml+rdf+sql&k=3"
		if variant != "" {
			url += "&variant=" + variant
		}
		w := get(t, s, url)
		if w.Code != http.StatusOK {
			t.Fatalf("variant %q: status = %d body %s", variant, w.Code, w.Body)
		}
		if w.Header().Get("Deprecation") == "" {
			t.Fatalf("variant %q: legacy route missing Deprecation header", variant)
		}
		var resp SearchResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Terms) != 3 || len(resp.Answers) == 0 {
			t.Fatalf("variant %q: resp = %+v", variant, resp)
		}
		a := resp.Answers[0]
		if a.Central == "" || len(a.Nodes) == 0 {
			t.Fatalf("variant %q: bad answer %+v", variant, a)
		}
		central := 0
		for _, n := range a.Nodes {
			if n.Central {
				central++
			}
		}
		if central != 1 {
			t.Fatalf("variant %q: %d central nodes", variant, central)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		path string
		code int
	}{
		{"/search", http.StatusBadRequest},                        // missing q
		{"/search?q=xml&k=0", http.StatusBadRequest},              // bad k
		{"/search?q=xml&k=9999", http.StatusBadRequest},           // bad k
		{"/search?q=xml&alpha=0", http.StatusBadRequest},          // bad alpha
		{"/search?q=xml&alpha=1.5", http.StatusBadRequest},        // bad alpha
		{"/search?q=xml&lambda=0", http.StatusBadRequest},         // bad lambda
		{"/search?q=xml&variant=tpu", http.StatusBadRequest},      // bad variant
		{"/search?q=zzzznothing", http.StatusUnprocessableEntity}, // unmatched keyword
		{"/search?q=the+of+and", http.StatusUnprocessableEntity},  // stopwords only
	}
	for _, c := range cases {
		w := get(t, s, c.path)
		if w.Code != c.code {
			t.Errorf("%s: status = %d, want %d (body %s)", c.path, w.Code, c.code, w.Body)
		}
		var e map[string]string
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e["error"] == "" {
			t.Errorf("%s: missing error payload: %s", c.path, w.Body)
		}
	}
}

// TestMalformedParamsRejected is the regression test for the silent
// parameter fallback: k=abc used to behave as if k were omitted; it must
// be a 400 so clients hear about their typos.
func TestMalformedParamsRejected(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{
		"/search?q=xml&k=abc",
		"/search?q=xml&k=1.5",
		"/search?q=xml&alpha=x",
		"/search?q=xml&lambda=x",
	} {
		w := get(t, s, path)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", path, w.Code, w.Body)
		}
		var e map[string]string
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e["error"] == "" {
			t.Errorf("%s: missing error payload: %s", path, w.Body)
		}
	}
	// Absent parameters still select the defaults.
	if w := get(t, s, "/search?q=xml"); w.Code != http.StatusOK {
		t.Fatalf("absent params: status = %d body %s", w.Code, w.Body)
	}
}

// TestDeadlineExceededMaps504 is the regression test for context errors
// being reported as 422 "unprocessable": a search that overran the
// deadline is the server's failure, not the query's.
func TestDeadlineExceededMaps504(t *testing.T) {
	s := testServerWith(t, Config{Timeout: time.Nanosecond})
	w := get(t, s, "/search?q=xml+rdf+sql")
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "deadline") {
		t.Fatalf("body = %s", w.Body)
	}
}

// TestClientCancelDropsWrite: when the client is gone there is nobody to
// answer; the handler must not write a 422 error payload into the void.
func TestClientCancelDropsWrite(t *testing.T) {
	s := testServerWith(t, Config{Timeout: -1}) // isolate cancellation from the deadline
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/search?q=xml+rdf+sql", nil).WithContext(ctx)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Body.Len() != 0 {
		t.Fatalf("wrote %q to a cancelled client", w.Body)
	}
}

func TestIndexPage(t *testing.T) {
	s := testServer(t)
	w := get(t, s, "/")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "WikiSearch") {
		t.Fatalf("index page: %d %s", w.Code, w.Body)
	}
	// With a query, results render; HTML is escaped.
	w = get(t, s, "/?q=xml+rdf+sql")
	if !strings.Contains(w.Body.String(), "answers in") {
		t.Fatalf("no results rendered: %s", w.Body)
	}
	w = get(t, s, "/?q=%3Cscript%3Ealert(1)%3C%2Fscript%3E")
	if strings.Contains(w.Body.String(), "<script>") {
		t.Fatal("query text not escaped")
	}
}

// TestRenderAnswersEscapesKeywords is the regression test for the XSS in
// the index page: answer-node keywords were rendered with %v and no
// escaping. Keywords derive from the user's query, so any HTML in them
// must come out inert.
func TestRenderAnswersEscapesKeywords(t *testing.T) {
	res := &wikisearch.Result{
		Answers: []wikisearch.Answer{{
			CentralLabel: "<b>central</b>",
			Nodes: []wikisearch.AnswerNode{{
				Label:    "<img src=x onerror=alert(1)>",
				Keywords: []string{"<script>alert(1)</script>", "sql"},
			}},
		}},
	}
	var b strings.Builder
	renderAnswers(&b, res)
	out := b.String()
	for _, bad := range []string{"<script>", "<img", "<b>central</b>"} {
		if strings.Contains(out, bad) {
			t.Errorf("unescaped %q in rendered HTML:\n%s", bad, out)
		}
	}
	if !strings.Contains(out, "&lt;script&gt;alert(1)&lt;/script&gt; sql") {
		t.Errorf("escaped keywords missing from:\n%s", out)
	}
}

// TestIndexHonorsRequestContext is the regression test for handleIndex
// calling Search with no context: under a tiny server deadline the page
// must report the timeout instead of happily searching forever.
func TestIndexHonorsRequestContext(t *testing.T) {
	s := testServerWith(t, Config{Timeout: time.Nanosecond})
	w := get(t, s, "/?q=xml+rdf+sql")
	if !strings.Contains(w.Body.String(), "deadline") {
		t.Fatalf("index ignored the request deadline: %s", w.Body)
	}
	if strings.Contains(w.Body.String(), "answers in") {
		t.Fatalf("results rendered past the deadline: %s", w.Body)
	}
}

func TestCacheHitIsServedAndFaster(t *testing.T) {
	s := testServer(t)
	const path = "/search?q=xml+rdf+sql&k=5"

	start := time.Now()
	w := get(t, s, path)
	cold := time.Since(start)
	if w.Code != http.StatusOK || w.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("cold: code %d X-Cache %q", w.Code, w.Header().Get("X-Cache"))
	}
	coldBody := w.Body.String()

	warm := cold
	var warmBody string
	for i := 0; i < 5; i++ {
		start = time.Now()
		w = get(t, s, path)
		if d := time.Since(start); d < warm {
			warm = d
		}
		if w.Code != http.StatusOK || w.Header().Get("X-Cache") != "HIT" {
			t.Fatalf("warm %d: code %d X-Cache %q", i, w.Code, w.Header().Get("X-Cache"))
		}
		warmBody = w.Body.String()
	}
	if warm > cold {
		t.Errorf("cache hit took %v, cold search took %v", warm, cold)
	}
	// The payload is identical except the cached flag.
	var coldResp, warmResp SearchResponse
	if err := json.Unmarshal([]byte(coldBody), &coldResp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(warmBody), &warmResp); err != nil {
		t.Fatal(err)
	}
	if coldResp.Cached || !warmResp.Cached {
		t.Fatalf("cached flags: cold %v warm %v", coldResp.Cached, warmResp.Cached)
	}
	if len(warmResp.Answers) != len(coldResp.Answers) {
		t.Fatalf("answers differ: cold %d warm %d", len(coldResp.Answers), len(warmResp.Answers))
	}
	// Differently normalized but identical queries share the entry.
	w = get(t, s, "/search?q=XML,+rdf...+SQL&k=5")
	if w.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("normalized-equal query missed the cache (X-Cache %q)", w.Header().Get("X-Cache"))
	}
	// A different k is a different search.
	w = get(t, s, "/search?q=xml+rdf+sql&k=6")
	if w.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("k=6 unexpectedly hit the k=5 entry")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	// Generate traffic: two cold searches, one repeat (cache hit), one
	// unprocessable query, one bad request.
	for _, path := range []string{
		"/search?q=xml+rdf+sql",
		"/search?q=sparql+rdf",
		"/search?q=xml+rdf+sql",
		"/search?q=zzzznothing",
		"/search?q=xml&k=abc",
	} {
		get(t, s, path)
	}
	w := get(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	out := w.Body.String()
	for _, want := range []string{
		`wikisearch_http_requests_total{code="200"} 3`,
		`wikisearch_http_requests_total{code="422"} 1`,
		`wikisearch_http_requests_total{code="400"} 1`,
		"wikisearch_http_in_flight 0",
		"wikisearch_cache_hits_total 1",
		"wikisearch_cache_misses_total 3", // two OK searches + the unmatched-keyword one
		"wikisearch_search_errors_total 1",
		"wikisearch_search_seconds_count 2",
		`wikisearch_search_phase_seconds_bucket{phase="Expansion",le="+Inf"} 2`,
		`wikisearch_search_phase_seconds_bucket{phase="Top-down Processing",le="+Inf"} 2`,
		"# TYPE wikisearch_search_phase_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", out)
	}
}

// TestLimiterFastFail exercises the admission control: with one slot
// occupied, the next search is rejected immediately with 503.
func TestLimiterFastFail(t *testing.T) {
	s := testServerWith(t, Config{MaxInFlight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var enteredOnce sync.Once
	h := s.withLimit(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		enteredOnce.Do(func() { close(entered) })
		<-release // closed after the 503 check; later calls pass through
		w.WriteHeader(http.StatusOK)
	}))
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/search?q=xml", nil))
	}()
	<-entered // the slot is held

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/search?q=xml", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	close(release)
	<-done

	// The slot is free again.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/search?q=xml", nil))
	if w.Code == http.StatusServiceUnavailable {
		t.Fatal("limiter leaked its slot")
	}
	if got := s.met.limited.Value(); got != 1 {
		t.Fatalf("limited counter = %d, want 1", got)
	}
}

func TestRequestIDsAssigned(t *testing.T) {
	s := testServer(t)
	a := get(t, s, "/healthz").Header().Get("X-Request-ID")
	b := get(t, s, "/healthz").Header().Get("X-Request-ID")
	if a == "" || b == "" || a == b {
		t.Fatalf("request ids = %q, %q", a, b)
	}
}

func TestPanicRecovery(t *testing.T) {
	s := testServer(t)
	h := s.instrument(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}), false)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/x", nil)) // must not crash the test binary
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", w.Code)
	}
	if s.met.panics.Value() != 1 {
		t.Fatalf("panics counter = %d, want 1", s.met.panics.Value())
	}
}

func TestUnknownRouteAndMethod(t *testing.T) {
	s := testServer(t)
	if w := get(t, s, "/nope"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown route: %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/search?q=xml", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /search: %d", w.Code)
	}
}
