package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wikisearch"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	b := wikisearch.NewBuilder()
	sql := b.AddNode("SQL", "query language for relational databases")
	hub := b.AddNode("Query language", "")
	sparql := b.AddNode("SPARQL", "RDF query language")
	rdf := b.AddNode("RDF", "resource description framework")
	xq := b.AddNode("XQuery", "XML query language")
	b.AddEdgeNamed(sql, hub, "instance of")
	b.AddEdgeNamed(sparql, hub, "instance of")
	b.AddEdgeNamed(xq, hub, "instance of")
	b.AddEdgeNamed(sparql, rdf, "designed for")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := wikisearch.NewEngine(g, wikisearch.EngineOptions{DistanceSamplePairs: 100})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetName("test-kb")
	return New(eng)
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestHealthz(t *testing.T) {
	w := get(t, testServer(t), "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
}

func TestStats(t *testing.T) {
	w := get(t, testServer(t), "/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Dataset != "test-kb" || st.Nodes != 5 || st.Edges != 4 || st.Vocabulary == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSearchOK(t *testing.T) {
	s := testServer(t)
	for _, variant := range []string{"", "cpu", "cpu-d", "gpu", "seq"} {
		url := "/search?q=xml+rdf+sql&k=3"
		if variant != "" {
			url += "&variant=" + variant
		}
		w := get(t, s, url)
		if w.Code != http.StatusOK {
			t.Fatalf("variant %q: status = %d body %s", variant, w.Code, w.Body)
		}
		var resp SearchResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Terms) != 3 || len(resp.Answers) == 0 {
			t.Fatalf("variant %q: resp = %+v", variant, resp)
		}
		a := resp.Answers[0]
		if a.Central == "" || len(a.Nodes) == 0 {
			t.Fatalf("variant %q: bad answer %+v", variant, a)
		}
		central := 0
		for _, n := range a.Nodes {
			if n.Central {
				central++
			}
		}
		if central != 1 {
			t.Fatalf("variant %q: %d central nodes", variant, central)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		path string
		code int
	}{
		{"/search", http.StatusBadRequest},                        // missing q
		{"/search?q=xml&k=0", http.StatusBadRequest},              // bad k
		{"/search?q=xml&k=9999", http.StatusBadRequest},           // bad k
		{"/search?q=xml&alpha=0", http.StatusBadRequest},          // bad alpha
		{"/search?q=xml&alpha=1.5", http.StatusBadRequest},        // bad alpha
		{"/search?q=xml&variant=tpu", http.StatusBadRequest},      // bad variant
		{"/search?q=zzzznothing", http.StatusUnprocessableEntity}, // unmatched keyword
		{"/search?q=the+of+and", http.StatusUnprocessableEntity},  // stopwords only
	}
	for _, c := range cases {
		w := get(t, s, c.path)
		if w.Code != c.code {
			t.Errorf("%s: status = %d, want %d (body %s)", c.path, w.Code, c.code, w.Body)
		}
		var e map[string]string
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e["error"] == "" {
			t.Errorf("%s: missing error payload: %s", c.path, w.Body)
		}
	}
}

func TestIndexPage(t *testing.T) {
	s := testServer(t)
	w := get(t, s, "/")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "WikiSearch") {
		t.Fatalf("index page: %d %s", w.Code, w.Body)
	}
	// With a query, results render; HTML is escaped.
	w = get(t, s, "/?q=xml+rdf+sql")
	if !strings.Contains(w.Body.String(), "answers in") {
		t.Fatalf("no results rendered: %s", w.Body)
	}
	w = get(t, s, "/?q=%3Cscript%3Ealert(1)%3C%2Fscript%3E")
	if strings.Contains(w.Body.String(), "<script>") {
		t.Fatal("query text not escaped")
	}
}

func TestUnknownRouteAndMethod(t *testing.T) {
	s := testServer(t)
	if w := get(t, s, "/nope"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown route: %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/search?q=xml", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /search: %d", w.Code)
	}
}
