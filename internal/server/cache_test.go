package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wikisearch"
)

func key(terms string) cacheKey {
	return cacheKey{terms: terms, k: 20, alpha: 0.1, lambda: 0.2}
}

func fixed(res *wikisearch.Result) func() (*wikisearch.Result, error) {
	return func() (*wikisearch.Result, error) { return res, nil }
}

func TestCacheKeyNormalization(t *testing.T) {
	a, ok := cacheKeyFor(wikisearch.Query{Text: "xml rdf sql", TopK: 5, Alpha: 0.1, Lambda: 0.2})
	if !ok {
		t.Fatal("no key for a keyword query")
	}
	b, ok := cacheKeyFor(wikisearch.Query{Text: "  XML, rdf... SQL!! ", TopK: 5, Alpha: 0.1, Lambda: 0.2})
	if !ok || a != b {
		t.Fatalf("normalized-equal queries got different keys: %+v vs %+v", a, b)
	}
	c, _ := cacheKeyFor(wikisearch.Query{Text: "xml rdf sql", TopK: 6, Alpha: 0.1, Lambda: 0.2})
	if a == c {
		t.Fatal("different k shares a key")
	}
	if _, ok := cacheKeyFor(wikisearch.Query{Text: "the of and"}); ok {
		t.Fatal("stopword-only query produced a cache key")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	ctx := context.Background()
	r1, r2, r3 := &wikisearch.Result{}, &wikisearch.Result{}, &wikisearch.Result{}
	c.do(ctx, key("a"), fixed(r1))
	c.do(ctx, key("b"), fixed(r2))
	// Touch "a" so "b" is the eviction victim.
	if _, hit, _ := c.do(ctx, key("a"), fixed(nil)); !hit {
		t.Fatal("a not cached")
	}
	c.do(ctx, key("c"), fixed(r3))
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get(key("b")); ok {
		t.Fatal("LRU victim b survived")
	}
	if _, ok := c.get(key("a")); !ok {
		t.Fatal("recently used a evicted")
	}
	if _, ok := c.get(key("c")); !ok {
		t.Fatal("newest c missing")
	}
	c.purge()
	if c.len() != 0 {
		t.Fatalf("len after purge = %d", c.len())
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newResultCache(4)
	boom := errors.New("no such keyword")
	calls := 0
	fn := func() (*wikisearch.Result, error) { calls++; return nil, boom }
	if _, _, err := c.do(context.Background(), key("a"), fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := c.do(context.Background(), key("a"), fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 || c.len() != 0 {
		t.Fatalf("calls = %d len = %d; errors must not be cached", calls, c.len())
	}
}

// waitForWaiter polls until a singleflight call for the key is registered.
func waitForWaiter(t *testing.T, c *resultCache, k cacheKey) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		_, ok := c.calls[k]
		c.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no in-flight call appeared")
}

func TestSingleflightDeduplicates(t *testing.T) {
	c := newResultCache(4)
	res := &wikisearch.Result{Candidates: 7}
	var computes atomic.Int32
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		got, hit, err := c.do(context.Background(), key("q"), func() (*wikisearch.Result, error) {
			computes.Add(1)
			<-gate
			return res, nil
		})
		if err != nil || hit || got != res {
			t.Errorf("leader: res %p hit %v err %v", got, hit, err)
		}
	}()
	waitForWaiter(t, c, key("q"))

	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		got, hit, err := c.do(context.Background(), key("q"), func() (*wikisearch.Result, error) {
			computes.Add(1)
			return &wikisearch.Result{}, nil
		})
		if err != nil || !hit || got != res {
			t.Errorf("follower: res %p hit %v err %v", got, hit, err)
		}
	}()
	close(gate)
	<-leaderDone
	<-followerDone
	if n := computes.Load(); n != 1 {
		t.Fatalf("search ran %d times for one key, want 1", n)
	}
	if got, ok := c.get(key("q")); !ok || got != res {
		t.Fatal("result not cached after singleflight")
	}
}

// TestSingleflightWaiterHonorsOwnContext: a waiter whose request dies must
// not block on the leader.
func TestSingleflightWaiterHonorsOwnContext(t *testing.T) {
	c := newResultCache(4)
	gate := make(chan struct{})
	defer close(gate)
	go c.do(context.Background(), key("q"), func() (*wikisearch.Result, error) {
		<-gate
		return &wikisearch.Result{}, nil
	})
	waitForWaiter(t, c, key("q"))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.do(ctx, key("q"), fixed(&wikisearch.Result{}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSingleflightLeaderCancelDoesNotPoison: when the leader's request is
// cancelled mid-search, waiting followers run their own search instead of
// inheriting the leader's context error.
func TestSingleflightLeaderCancelDoesNotPoison(t *testing.T) {
	c := newResultCache(4)
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.do(context.Background(), key("q"), func() (*wikisearch.Result, error) {
			<-gate
			return nil, context.Canceled // the leader's client hung up
		})
	}()
	waitForWaiter(t, c, key("q"))

	res := &wikisearch.Result{Candidates: 3}
	followerDone := make(chan struct{})
	var got *wikisearch.Result
	var hit bool
	var err error
	go func() {
		defer close(followerDone)
		got, hit, err = c.do(context.Background(), key("q"), fixed(res))
	}()
	close(gate)
	<-leaderDone
	<-followerDone
	if err != nil || hit || got != res {
		t.Fatalf("follower inherited the leader's fate: res %p hit %v err %v", got, hit, err)
	}
}

// TestSingleflightNoStampedeAfterLeaderCancel: when the leader dies on its
// own context with N waiters parked behind it, exactly ONE waiter re-runs
// the search (as the new leader) and the rest coalesce behind it or hit
// the freshly stored cache entry — fn runs exactly twice, not 1+N times.
func TestSingleflightNoStampedeAfterLeaderCancel(t *testing.T) {
	c := newResultCache(4)
	var calls atomic.Int64
	res := &wikisearch.Result{Candidates: 7}

	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.do(context.Background(), key("q"), func() (*wikisearch.Result, error) {
			calls.Add(1)
			<-gate
			return nil, context.Canceled // the leader's client hung up
		})
	}()
	waitForWaiter(t, c, key("q"))

	const followers = 16
	results := make(chan *wikisearch.Result, followers)
	errs := make(chan error, followers)
	var started sync.WaitGroup
	for i := 0; i < followers; i++ {
		started.Add(1)
		go func() {
			started.Done()
			got, _, err := c.do(context.Background(), key("q"), func() (*wikisearch.Result, error) {
				calls.Add(1)
				return res, nil
			})
			results <- got
			errs <- err
		}()
	}
	started.Wait()
	close(gate) // release the doomed leader
	<-leaderDone

	for i := 0; i < followers; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("follower error: %v", err)
		}
		if got := <-results; got != res {
			t.Fatalf("follower got %p, want %p", got, res)
		}
	}
	// One doomed leader + one re-elected leader; every other follower
	// coalesced or hit the cache.
	if n := calls.Load(); n != 2 {
		t.Fatalf("fn ran %d times, want 2 (stampede)", n)
	}
}
