package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"wikisearch"
)

// Live mutation over HTTP: POST /v1/mutate applies a batch of graph
// mutations through the engine's single-writer Mutator and (by default)
// publishes them as a new epoch snapshot, so the next search sees them.
// The endpoint exists on every server; without EnableMutation it answers
// 409 read_only, which keeps the route table identical between read-only
// and mutable deployments.
//
// Status mapping (same envelope as every /v1 route):
//
//	400 bad_request         malformed JSON, unknown op, missing/invalid fields
//	405 method_not_allowed  any method but POST
//	409 read_only           server started without mutation enabled
//	409 conflict            remove_edge of an edge the graph does not have
//	422 unprocessable       well-formed op the engine rejects (bad node id,
//	                        weight out of range)
//
// A batch is applied in order; the first failing op aborts the batch and
// nothing is published — ops before the failure stay pending in the
// mutator's delta (visible in /v1/stats pending_ops) and ride along with
// the next successful publish.

// maxMutateBody bounds the /v1/mutate request body.
const maxMutateBody = 8 << 20

// maxMutateOps bounds the ops of one /v1/mutate batch.
const maxMutateOps = 65536

// MutateOp is one mutation of a POST /v1/mutate batch. Op selects the
// operation; the other fields' use matches the Mutator method it maps to:
//
//	add_node     label, desc            → result carries the assigned node id
//	add_edge     from, to, rel
//	remove_edge  from, to, rel
//	set_keywords node, label, desc
//	reweight     node, weight
type MutateOp struct {
	Op     string   `json:"op"`
	From   *int64   `json:"from,omitempty"`
	To     *int64   `json:"to,omitempty"`
	Node   *int64   `json:"node,omitempty"`
	Rel    string   `json:"rel,omitempty"`
	Label  string   `json:"label,omitempty"`
	Desc   string   `json:"desc,omitempty"`
	Weight *float64 `json:"weight,omitempty"`
}

// V1MutateRequest is the POST /v1/mutate body.
type V1MutateRequest struct {
	Ops []MutateOp `json:"ops"`
	// Publish selects whether the batch is published as a new epoch once
	// applied (default true). false accumulates: a later batch or an
	// explicit publish makes the ops visible.
	Publish *bool `json:"publish,omitempty"`
}

// V1MutateResult is one applied op in the /v1/mutate results array.
type V1MutateResult struct {
	Op string `json:"op"`
	// Node is the id assigned by add_node (absent for other ops).
	Node *int64 `json:"node,omitempty"`
}

// V1MutateStats is the stats block of the /v1/mutate envelope.
type V1MutateStats struct {
	// Applied is the number of ops this request applied.
	Applied int `json:"applied"`
	// Published reports whether the batch was published; Epoch is the
	// epoch serving searches after this request.
	Published bool   `json:"published"`
	Epoch     uint64 `json:"epoch"`
	// PendingOps counts applied-but-unpublished ops; DeltaOps counts
	// everything since the last compaction.
	PendingOps int     `json:"pending_ops"`
	DeltaOps   int     `json:"delta_ops"`
	PublishMs  float64 `json:"publish_ms"`
}

// v1Envelope is the generic /v1 response shape for endpoints whose results
// and stats blocks are not the search payload.
type v1Envelope struct {
	Results any      `json:"results,omitempty"`
	Stats   any      `json:"stats,omitempty"`
	Error   *V1Error `json:"error,omitempty"`
}

// EnableMutation opens the engine's single-writer mutator and arms the
// POST /v1/mutate endpoint. Call it once, before serving; it fails if the
// engine cannot mutate (e.g. sharding is enabled). Every publication —
// from this server or the background compactor — purges the query-result
// cache and feeds the publish metrics.
func (s *Server) EnableMutation(o wikisearch.MutatorOptions) error {
	m, err := s.eng.NewMutator(o)
	if err != nil {
		return err
	}
	s.mut = m
	s.eng.SetPublishObserver(func(info wikisearch.PublishInfo) {
		s.PurgeCache()
		s.met.observePublish(info)
	})
	return nil
}

// Close releases the server's mutator, if mutation was enabled.
func (s *Server) Close() error {
	if s.mut == nil {
		return nil
	}
	m := s.mut
	s.mut = nil
	return m.Close()
}

func (s *Server) handleV1Mutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.v1Error(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	if s.mut == nil {
		s.v1Error(w, http.StatusConflict, "read_only",
			"this server is read-only; start wikiserve with -mutate")
		return
	}
	var req V1MutateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxMutateBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.v1Error(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}
	if len(req.Ops) == 0 {
		s.v1Error(w, http.StatusBadRequest, "bad_request", "ops must be a non-empty array")
		return
	}
	if len(req.Ops) > maxMutateOps {
		s.v1Error(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("too many ops (%d > %d)", len(req.Ops), maxMutateOps))
		return
	}
	// Structural validation up front: a batch with a malformed op is
	// rejected whole, before any mutation is applied.
	for i := range req.Ops {
		if msg := req.Ops[i].validate(); msg != "" {
			s.v1Error(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("op %d (%s): %s", i, req.Ops[i].Op, msg))
			return
		}
	}

	results := make([]V1MutateResult, 0, len(req.Ops))
	for i := range req.Ops {
		op := &req.Ops[i]
		res := V1MutateResult{Op: op.Op}
		var err error
		switch op.Op {
		case "add_node":
			var v wikisearch.NodeID
			if v, err = s.mut.AddNode(op.Label, op.Desc); err == nil {
				id := int64(v)
				res.Node = &id
			}
		case "add_edge":
			err = s.mut.AddEdge(wikisearch.NodeID(*op.From), wikisearch.NodeID(*op.To), op.Rel)
		case "remove_edge":
			err = s.mut.RemoveEdge(wikisearch.NodeID(*op.From), wikisearch.NodeID(*op.To), op.Rel)
		case "set_keywords":
			err = s.mut.SetKeywords(wikisearch.NodeID(*op.Node), op.Label, op.Desc)
		case "reweight":
			err = s.mut.Reweight(wikisearch.NodeID(*op.Node), *op.Weight)
		}
		if err != nil {
			s.mutateError(w, i, op.Op, err)
			return
		}
		results = append(results, res)
	}

	stats := V1MutateStats{Applied: len(results)}
	if req.Publish == nil || *req.Publish {
		info, err := s.mut.Publish()
		if err != nil {
			s.v1Error(w, http.StatusUnprocessableEntity, "unprocessable", err.Error())
			return
		}
		stats.Published = true
		stats.PublishMs = float64(info.Duration) / float64(time.Millisecond)
	}
	ms := s.mut.Stats()
	stats.Epoch = s.eng.Epoch()
	stats.PendingOps = ms.PendingOps
	stats.DeltaOps = ms.Ops
	s.json(w, http.StatusOK, v1Envelope{Results: results, Stats: &stats})
}

// mutateError maps an op-application failure: an edge removal the graph
// cannot satisfy is a state conflict (409, retryable after re-reading);
// everything else the engine rejects is unprocessable (422).
func (s *Server) mutateError(w http.ResponseWriter, i int, op string, err error) {
	msg := fmt.Sprintf("op %d (%s): %s", i, op, err.Error())
	if op == "remove_edge" {
		s.v1Error(w, http.StatusConflict, "conflict", msg)
		return
	}
	s.v1Error(w, http.StatusUnprocessableEntity, "unprocessable", msg)
}

// validate checks one op's shape; the returned message is empty when the
// op is well-formed and client-facing otherwise.
func (o *MutateOp) validate() string {
	needEndpoint := func() string {
		switch {
		case o.From == nil || o.To == nil:
			return "from and to are required"
		case *o.From < 0 || *o.To < 0:
			return "from and to must be non-negative"
		case o.Rel == "":
			return "rel is required"
		}
		return ""
	}
	switch o.Op {
	case "add_node":
		return ""
	case "add_edge", "remove_edge":
		return needEndpoint()
	case "set_keywords":
		if o.Node == nil {
			return "node is required"
		}
		if *o.Node < 0 {
			return "node must be non-negative"
		}
		return ""
	case "reweight":
		switch {
		case o.Node == nil:
			return "node is required"
		case *o.Node < 0:
			return "node must be non-negative"
		case o.Weight == nil:
			return "weight is required"
		}
		return ""
	case "":
		return "missing op"
	}
	return "unknown op (want add_node, add_edge, remove_edge, set_keywords or reweight)"
}
