package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wikisearch"
)

// testMutableServer builds a server with live mutation enabled.
func testMutableServer(t *testing.T) *Server {
	t.Helper()
	s := testServer(t)
	if err := s.EnableMutation(wikisearch.MutatorOptions{CompactAfterOps: -1}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	})
	return s
}

func post(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// TestV1MutateGolden pins the /v1/mutate envelope: success with assigned
// node ids, and every error shape with its status and stable code.
func TestV1MutateGolden(t *testing.T) {
	s := testMutableServer(t)
	w := post(t, s, "/v1/mutate", `{"ops": [
		{"op": "add_node", "label": "GraphQL", "desc": "API query language"},
		{"op": "add_edge", "from": 5, "to": 1, "rel": "instance of"},
		{"op": "set_keywords", "node": 3, "label": "RDF", "desc": "triple store data model"},
		{"op": "reweight", "node": 1, "weight": 0.5}
	]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", w.Code, w.Body)
	}
	checkGolden(t, "v1_mutate.json", normalizeJSON(t, w.Body.Bytes(), "publish_ms"))

	// Error envelopes are deterministic; no normalization.
	w = post(t, s, "/v1/mutate", `{"ops": [{"op": "summon", "label": "x"}]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown op status = %d body %s", w.Code, w.Body)
	}
	checkGolden(t, "v1_mutate_bad_request.json", w.Body.Bytes())

	w = post(t, s, "/v1/mutate", `{"ops": [{"op": "remove_edge", "from": 0, "to": 3, "rel": "designed for"}]}`)
	if w.Code != http.StatusConflict {
		t.Fatalf("absent-edge status = %d body %s", w.Code, w.Body)
	}
	checkGolden(t, "v1_mutate_conflict.json", w.Body.Bytes())

	w = get(t, s, "/v1/mutate")
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d body %s", w.Code, w.Body)
	}
	if w.Header().Get("Allow") != http.MethodPost {
		t.Fatalf("Allow = %q", w.Header().Get("Allow"))
	}
	checkGolden(t, "v1_mutate_method.json", w.Body.Bytes())
}

// TestV1MutateReadOnly: without EnableMutation the endpoint exists but
// answers 409 read_only.
func TestV1MutateReadOnly(t *testing.T) {
	s := testServer(t)
	w := post(t, s, "/v1/mutate", `{"ops": [{"op": "add_node", "label": "x"}]}`)
	if w.Code != http.StatusConflict {
		t.Fatalf("status = %d body %s", w.Code, w.Body)
	}
	checkGolden(t, "v1_mutate_read_only.json", w.Body.Bytes())
}

// TestV1MutateErrorStatuses walks the documented status mapping.
func TestV1MutateErrorStatuses(t *testing.T) {
	s := testMutableServer(t)
	cases := []struct {
		body string
		code int
		ec   string
	}{
		{`not json`, http.StatusBadRequest, "bad_request"},
		{`{}`, http.StatusBadRequest, "bad_request"},
		{`{"ops": []}`, http.StatusBadRequest, "bad_request"},
		{`{"ops": [{"op": ""}]}`, http.StatusBadRequest, "bad_request"},
		{`{"ops": [{"op": "add_edge", "from": 0}]}`, http.StatusBadRequest, "bad_request"},
		{`{"ops": [{"op": "add_edge", "from": -1, "to": 0, "rel": "x"}]}`, http.StatusBadRequest, "bad_request"},
		{`{"ops": [{"op": "reweight", "node": 1}]}`, http.StatusBadRequest, "bad_request"},
		{`{"ops": [{"op": "add_edge", "from": 999, "to": 0, "rel": "x"}]}`, http.StatusUnprocessableEntity, "unprocessable"},
		{`{"ops": [{"op": "reweight", "node": 1, "weight": 7}]}`, http.StatusUnprocessableEntity, "unprocessable"},
		{`{"ops": [{"op": "remove_edge", "from": 0, "to": 2, "rel": "instance of"}]}`, http.StatusConflict, "conflict"},
	}
	for _, c := range cases {
		w := post(t, s, "/v1/mutate", c.body)
		if w.Code != c.code {
			t.Errorf("%s: status = %d, want %d (body %s)", c.body, w.Code, c.code, w.Body)
			continue
		}
		var resp V1SearchResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Errorf("%s: invalid JSON: %v", c.body, err)
			continue
		}
		if resp.Error == nil || resp.Error.Code != c.ec || resp.Error.Message == "" {
			t.Errorf("%s: error block = %+v, want code %q", c.body, resp.Error, c.ec)
		}
	}
}

// TestV1MutateVisibleToSearch: a published mutation is served by the very
// next search — including through the result cache, which every publish
// purges.
func TestV1MutateVisibleToSearch(t *testing.T) {
	s := testMutableServer(t)
	if w := get(t, s, "/v1/search?q=sparql+rdf"); w.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("first search X-Cache = %q", w.Header().Get("X-Cache"))
	}
	if w := get(t, s, "/v1/search?q=sparql+rdf"); w.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("repeat search X-Cache = %q", w.Header().Get("X-Cache"))
	}

	w := post(t, s, "/v1/mutate", `{"ops": [
		{"op": "add_node", "label": "Cypher", "desc": "graph query language"},
		{"op": "add_edge", "from": 5, "to": 1, "rel": "instance of"}
	]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("mutate status = %d body %s", w.Code, w.Body)
	}
	var mr struct {
		Results []V1MutateResult `json:"results"`
		Stats   *V1MutateStats   `json:"stats"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Results) != 2 || mr.Results[0].Node == nil || *mr.Results[0].Node != 5 {
		t.Fatalf("results = %+v", mr.Results)
	}
	if mr.Stats == nil || !mr.Stats.Published || mr.Stats.Epoch != 2 {
		t.Fatalf("stats = %+v", mr.Stats)
	}

	// Publish purged the cache: the identical query re-runs the engine.
	if w := get(t, s, "/v1/search?q=sparql+rdf"); w.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("post-publish search X-Cache = %q", w.Header().Get("X-Cache"))
	}
	w = get(t, s, "/v1/search?q=cypher+graph")
	if w.Code != http.StatusOK {
		t.Fatalf("search status = %d body %s", w.Code, w.Body)
	}
	var sr V1SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) == 0 {
		t.Fatalf("mutated node not found: %s", w.Body)
	}
}

// TestV1MutateDeferredPublish: publish=false accumulates invisibly; the
// pending ops show in /v1/stats and ride with the next publishing batch.
func TestV1MutateDeferredPublish(t *testing.T) {
	s := testMutableServer(t)
	w := post(t, s, "/v1/mutate", `{"ops": [{"op": "add_node", "label": "Datalog", "desc": "deductive query language"}], "publish": false}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", w.Code, w.Body)
	}
	var mr struct {
		Stats *V1MutateStats `json:"stats"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Stats.Published || mr.Stats.Epoch != 1 || mr.Stats.PendingOps != 1 {
		t.Fatalf("stats = %+v", mr.Stats)
	}
	if w := get(t, s, "/v1/search?q=datalog+deductive"); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unpublished node visible: %d %s", w.Code, w.Body)
	}

	var st struct {
		Stats *StatsResponse `json:"stats"`
	}
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Stats.Epoch != 1 || st.Stats.Mutation == nil || st.Stats.Mutation.PendingOps != 1 {
		t.Fatalf("stats = %+v mutation = %+v", st.Stats, st.Stats.Mutation)
	}

	w = post(t, s, "/v1/mutate", `{"ops": [{"op": "add_edge", "from": 5, "to": 1, "rel": "instance of"}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", w.Code, w.Body)
	}
	if w := get(t, s, "/v1/search?q=datalog+deductive"); w.Code != http.StatusOK {
		t.Fatalf("published node not visible: %d %s", w.Code, w.Body)
	}
}

// TestMutateMetrics: publishes feed the counters and the epoch and delta
// gauges refresh on scrape.
func TestMutateMetrics(t *testing.T) {
	s := testMutableServer(t)
	if w := post(t, s, "/v1/mutate", `{"ops": [{"op": "add_node", "label": "Gremlin", "desc": "graph traversal language"}]}`); w.Code != http.StatusOK {
		t.Fatalf("mutate status = %d body %s", w.Code, w.Body)
	}
	out := get(t, s, "/metrics").Body.String()
	for _, line := range []string{
		"wikisearch_epoch 2",
		"wikisearch_publishes_total 1",
		"wikisearch_delta_nodes 1",
		"wikisearch_publish_seconds_count 1",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("metrics missing %q", line)
		}
	}
	if t.Failed() {
		t.Logf("metrics:\n%s", out)
	}
}
