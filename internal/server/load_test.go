package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentLoad drives the full middleware stack — cache hits,
// singleflight, the concurrency limiter and per-request deadlines — from
// many goroutines at once. Run under -race it is the lifecycle's thread-
// safety regression test.
func TestConcurrentLoad(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxInFlight = 4
	cfg.CacheSize = 8
	cfg.Timeout = 2 * time.Second
	s := NewWithConfig(testEngine(t), cfg)

	paths := []string{
		"/search?q=xml+rdf+sql",         // cacheable, repeated → hits
		"/search?q=xml+rdf+sql",         // identical: singleflight + cache
		"/search?q=sparql+rdf",          // second entry
		"/search?q=query+language&k=5",  // third entry
		"/search?q=xml&variant=seq",     // different variant
		"/search?q=zzzznothing",         // 422, never cached
		"/search?q=xml&k=abc",           // 400 malformed
		"/search?q=xml+rdf+sql&alpha=x", // 400 malformed
		"/",                             // HTML index
		"/?q=xml+rdf+sql",               // HTML with shared cache entry
		"/stats",                        // read-only JSON
		"/metrics",                      // exposition under load
		"/healthz",                      //
	}
	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusBadRequest:          true,
		http.StatusUnprocessableEntity: true,
		http.StatusServiceUnavailable:  true,
		http.StatusGatewayTimeout:      true,
	}

	const goroutines = 8
	const iters = 30
	var ok200 atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				path := paths[(g*iters+i)%len(paths)]
				req := httptest.NewRequest(http.MethodGet, path, nil)
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				if !allowed[w.Code] {
					t.Errorf("%s: unexpected status %d (body %s)", path, w.Code, w.Body)
					return
				}
				if w.Code == http.StatusOK {
					ok200.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if ok200.Load() == 0 {
		t.Fatal("no request succeeded under load")
	}

	// The measurement surface must reflect the storm: requests counted,
	// cache exercised, nothing left in flight.
	w := get(t, s, "/metrics")
	out := w.Body.String()
	if !strings.Contains(out, `wikisearch_http_requests_total{code="200"}`) {
		t.Errorf("missing 200 counter:\n%s", out)
	}
	if !strings.Contains(out, "wikisearch_http_in_flight 0") {
		t.Errorf("in-flight gauge not drained:\n%s", out)
	}
	if s.met.cacheHits.Value() == 0 {
		t.Error("no cache hits under repeated identical load")
	}
	if s.met.cacheMisses.Value() == 0 {
		t.Error("no cache misses recorded")
	}
	if s.cache.len() > cfg.CacheSize {
		t.Errorf("cache grew to %d entries, bound is %d", s.cache.len(), cfg.CacheSize)
	}
}

// TestConcurrentIdenticalQueriesSingleflight fires a burst of identical
// cold queries and checks they collapse into few engine searches.
func TestConcurrentIdenticalQueriesSingleflight(t *testing.T) {
	s := testServer(t)
	const burst = 16
	var wg sync.WaitGroup
	codes := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := httptest.NewRecorder()
			s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/search?q=xml+rdf+sql&k=7", nil))
			codes[i] = w.Code
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status %d", i, c)
		}
	}
	hits, misses := s.met.cacheHits.Value(), s.met.cacheMisses.Value()
	if hits+misses != burst {
		t.Fatalf("hits %d + misses %d != %d", hits, misses, burst)
	}
	// All goroutines raced the first search; without deduplication every
	// one would be a miss. Timing allows a few stragglers to start their
	// own search after the leader finished, but the bulk must share.
	if misses > burst/2 {
		t.Errorf("%d/%d engine searches for one identical burst; singleflight not deduplicating", misses, burst)
	}
	var resp SearchResponse
	w := get(t, s, "/search?q=xml+rdf+sql&k=7")
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || !resp.Cached {
		t.Fatalf("follow-up not cached: %v %s", err, w.Body)
	}
}

// TestSequentialMixedWorkload exercises every endpoint back-to-back to
// catch cross-request state leaks (a previous request's cache entry or
// status must never bleed into the next response's correctness).
func TestSequentialMixedWorkload(t *testing.T) {
	s := testServer(t)
	for round := 0; round < 3; round++ {
		for k := 1; k <= 4; k++ {
			w := get(t, s, fmt.Sprintf("/search?q=xml+rdf+sql&k=%d", k))
			if w.Code != http.StatusOK {
				t.Fatalf("round %d k=%d: %d %s", round, k, w.Code, w.Body)
			}
			wantCache := "MISS"
			if round > 0 {
				wantCache = "HIT"
			}
			if got := w.Header().Get("X-Cache"); got != wantCache {
				t.Fatalf("round %d k=%d: X-Cache %q, want %q", round, k, got, wantCache)
			}
		}
	}
	s.PurgeCache()
	if w := get(t, s, "/search?q=xml+rdf+sql&k=1"); w.Header().Get("X-Cache") != "MISS" {
		t.Fatal("purge left entries behind")
	}
}

// TestConcurrentLoadWithTinyDeadline floods a server whose deadline is so
// small that most searches die; the service must stay consistent and keep
// serving cache-independent endpoints.
func TestConcurrentLoadWithTinyDeadline(t *testing.T) {
	cfg := quietConfig()
	cfg.Timeout = time.Nanosecond
	cfg.MaxInFlight = 2
	s := NewWithConfig(testEngine(t), cfg)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				w := httptest.NewRecorder()
				s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/search?q=xml+rdf+sql", nil))
				if w.Code != http.StatusGatewayTimeout && w.Code != http.StatusServiceUnavailable {
					t.Errorf("status %d, want 504 or 503", w.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz after deadline storm: %d", w.Code)
	}
	if s.met.timeouts.Value() == 0 {
		t.Error("no timeouts recorded despite nanosecond deadline")
	}
}
