package server

import (
	"container/list"
	"context"
	"errors"
	"strings"
	"sync"

	"wikisearch"
	"wikisearch/internal/text"
)

// cacheKey identifies one logically identical search. Terms are the
// normalized keyword terms (tokenized, stopword-filtered, stemmed,
// deduplicated), so "SQL rdf" and "rdf, sql, SQL!" that normalize alike
// share an entry — but only together with identical k, α, λ and variant.
type cacheKey struct {
	terms   string
	k       int
	alpha   float64
	lambda  float64
	variant wikisearch.Variant
}

// cacheKeyFor derives the cache key for a query. ok is false when the
// query has no keywords after normalization; such queries always error and
// bypass the cache so the engine can report why.
func cacheKeyFor(q wikisearch.Query) (key cacheKey, ok bool) {
	terms := text.QueryTerms(q.Text)
	if len(terms) == 0 {
		return cacheKey{}, false
	}
	return cacheKey{
		terms:   strings.Join(terms, "\x1f"),
		k:       q.TopK,
		alpha:   q.Alpha,
		lambda:  q.Lambda,
		variant: q.Variant,
	}, true
}

type cacheEntry struct {
	key cacheKey
	res *wikisearch.Result
}

// inflightCall is one in-progress search that concurrent identical
// requests wait on instead of duplicating the work.
type inflightCall struct {
	done chan struct{} // closed when res/err are set
	res  *wikisearch.Result
	err  error
}

// resultCache is a bounded LRU of search results with singleflight
// deduplication: at most one engine search runs per key at a time, and
// results are shared. Search results are immutable once returned, so
// sharing the *Result across requests is safe.
type resultCache struct {
	max int

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element
	calls map[cacheKey]*inflightCall
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:   max,
		ll:    list.New(),
		items: map[cacheKey]*list.Element{},
		calls: map[cacheKey]*inflightCall{},
	}
}

// do returns the cached result for key, or runs fn to compute it. hit
// reports whether the result came from the cache or from another
// in-flight identical request. Waiters give up when their own ctx fires.
//
// When the leader dies on its own context (its client hung up or its
// deadline passed), that is not the waiters' fate — but they must not all
// retry at once: the first waiter back through the top of the loop finds
// no in-flight call, registers as the NEW leader and runs fn on its own
// context; the rest find that call and coalesce behind it. Without the
// re-election loop, one cancelled leader turns its N waiters into N
// simultaneous engine searches — a cache stampede on exactly the hot,
// already-deduplicated key.
func (c *resultCache) do(ctx context.Context, key cacheKey, fn func() (*wikisearch.Result, error)) (res *wikisearch.Result, hit bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			res := el.Value.(*cacheEntry).res
			c.mu.Unlock()
			return res, true, nil
		}
		if call, ok := c.calls[key]; ok {
			c.mu.Unlock()
			select {
			case <-call.done:
				if call.err == nil {
					return call.res, true, nil
				}
				if errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded) {
					// Leader died on its own context; re-enter to elect a
					// new one (or coalesce behind whoever got there first).
					continue
				}
				return nil, true, call.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		call := &inflightCall{done: make(chan struct{})}
		c.calls[key] = call
		c.mu.Unlock()

		call.res, call.err = fn()

		c.mu.Lock()
		delete(c.calls, key)
		if call.err == nil {
			c.store(key, call.res)
		}
		c.mu.Unlock()
		close(call.done)
		return call.res, false, call.err
	}
}

// store inserts under c.mu, evicting the least recently used entry past
// the bound.
func (c *resultCache) store(key cacheKey, res *wikisearch.Result) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// get reports the cached result without side effects beyond LRU ordering.
func (c *resultCache) get(key cacheKey) (*wikisearch.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// len returns the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// purge drops every cached entry (in-flight searches are unaffected).
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = map[cacheKey]*list.Element{}
}
