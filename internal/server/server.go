// Package server implements the HTTP JSON search service behind
// cmd/wikiserve — the reproduction of the paper's online WikiSearch demo,
// hardened for production traffic: per-request deadlines, concurrency
// limiting with fast-fail backpressure, an LRU query-result cache with
// singleflight deduplication, panic recovery, access logging with request
// IDs, and a Prometheus-format metrics endpoint.
//
// Endpoints:
//
//	GET /search?q=<keywords>&k=20&alpha=0.1&lambda=0.2&variant=cpu   JSON answers
//	GET /stats                                                       dataset statistics
//	GET /metrics                                                     Prometheus text metrics
//	GET /healthz                                                     liveness
//	GET /                                                            minimal HTML page
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"wikisearch"
)

// Config tunes the request lifecycle. The zero value selects production
// defaults; negative values disable the corresponding control.
type Config struct {
	// Timeout bounds each search request (default 5s; negative disables).
	Timeout time.Duration
	// MaxInFlight bounds concurrent searches; excess requests fail fast
	// with 503 (default 64; negative disables).
	MaxInFlight int
	// CacheSize bounds the query-result LRU in entries (default 256;
	// negative disables caching).
	CacheSize int
	// Logger receives access log lines and panics (default log.Default()).
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	return c
}

// Server serves search requests over one prepared engine. The engine is
// safe for concurrent searches; Server adds the request lifecycle around
// it.
type Server struct {
	eng       *wikisearch.Engine
	cfg       Config
	mux       *http.ServeMux
	log       *log.Logger
	met       *serverMetrics
	cache     *resultCache  // nil when disabled
	sem       chan struct{} // nil when unlimited
	nextReqID atomic.Uint64
}

// New builds a Server over the engine with default Config.
func New(eng *wikisearch.Engine) *Server { return NewWithConfig(eng, Config{}) }

// NewWithConfig builds a Server over the engine. It installs a search
// observer on the engine that feeds the per-phase latency histograms.
func NewWithConfig(eng *wikisearch.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		eng: eng,
		cfg: cfg,
		mux: http.NewServeMux(),
		log: cfg.Logger,
		met: newServerMetrics(),
	}
	if cfg.CacheSize > 0 {
		s.cache = newResultCache(cfg.CacheSize)
	}
	if cfg.MaxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	eng.SetSearchObserver(s.met.observeSearch)
	s.mux.Handle("GET /search", s.instrument(http.HandlerFunc(s.handleSearch), true))
	s.mux.Handle("GET /{$}", s.instrument(http.HandlerFunc(s.handleIndex), true))
	s.mux.Handle("GET /stats", s.instrument(http.HandlerFunc(s.handleStats), false))
	s.mux.Handle("GET /metrics", s.instrument(s.met.reg.Handler(), false))
	s.mux.Handle("GET /healthz", s.instrument(http.HandlerFunc(
		func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
		}), false))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// PurgeCache drops every cached query result (for when the engine's
// underlying data is swapped).
func (s *Server) PurgeCache() {
	if s.cache != nil {
		s.cache.purge()
	}
}

// SearchResponse is the /search payload.
type SearchResponse struct {
	Query      string          `json:"query"`
	Terms      []string        `json:"terms"`
	Depth      int             `json:"depth"`
	Candidates int             `json:"candidates"`
	TotalMs    float64         `json:"total_ms"`
	Cached     bool            `json:"cached"`
	Answers    []AnswerPayload `json:"answers"`
}

// AnswerPayload is one answer graph in the /search payload.
type AnswerPayload struct {
	Central string        `json:"central"`
	Score   float64       `json:"score"`
	Depth   int           `json:"depth"`
	Nodes   []NodePayload `json:"nodes"`
	Edges   []EdgePayload `json:"edges"`
}

// NodePayload is one node of an answer graph.
type NodePayload struct {
	ID       int32    `json:"id"`
	Label    string   `json:"label"`
	Keywords []string `json:"keywords,omitempty"`
	Central  bool     `json:"central,omitempty"`
}

// EdgePayload is one hitting-path edge of an answer graph.
type EdgePayload struct {
	From int32  `json:"from"`
	To   int32  `json:"to"`
	Rel  string `json:"rel"`
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Dataset     string  `json:"dataset"`
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	AvgDistance float64 `json:"avg_distance"`
	Vocabulary  int     `json:"vocabulary"`
}

// search runs one query through the cache (when enabled): repeated
// identical queries are served from the LRU, and concurrent identical
// queries share a single engine search.
func (s *Server) search(ctx context.Context, q wikisearch.Query) (res *wikisearch.Result, hit bool, err error) {
	key, ok := cacheKey{}, false
	if s.cache != nil {
		key, ok = cacheKeyFor(q)
	}
	if !ok {
		res, err = s.eng.SearchContext(ctx, q)
		return res, false, err
	}
	res, hit, err = s.cache.do(ctx, key, func() (*wikisearch.Result, error) {
		return s.eng.SearchContext(ctx, q)
	})
	if hit {
		s.met.cacheHits.Inc()
	} else {
		s.met.cacheMisses.Inc()
	}
	return res, hit, err
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		s.error(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	k, err := intParam(r, "k", 20)
	if err != nil {
		s.error(w, http.StatusBadRequest, "k must be an integer")
		return
	}
	if k < 1 || k > 200 {
		s.error(w, http.StatusBadRequest, "k must be in [1,200]")
		return
	}
	alpha, err := floatParam(r, "alpha", 0.1)
	if err != nil {
		s.error(w, http.StatusBadRequest, "alpha must be a number")
		return
	}
	if alpha <= 0 || alpha >= 1 {
		s.error(w, http.StatusBadRequest, "alpha must be in (0,1)")
		return
	}
	lambda, err := floatParam(r, "lambda", 0.2)
	if err != nil {
		s.error(w, http.StatusBadRequest, "lambda must be a number")
		return
	}
	if lambda <= 0 || lambda > 1 {
		s.error(w, http.StatusBadRequest, "lambda must be in (0,1]")
		return
	}
	variant := wikisearch.CPUPar
	switch r.URL.Query().Get("variant") {
	case "", "cpu":
	case "gpu":
		variant = wikisearch.GPUPar
	case "cpu-d":
		variant = wikisearch.CPUParD
	case "seq":
		variant = wikisearch.Sequential
	default:
		s.error(w, http.StatusBadRequest, "variant must be cpu, cpu-d, gpu or seq")
		return
	}
	res, hit, err := s.search(r.Context(), wikisearch.Query{
		Text: q, TopK: k, Alpha: alpha, Lambda: lambda, Variant: variant,
	})
	if err != nil {
		s.searchError(w, err)
		return
	}
	if hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	resp := SearchResponse{
		Query:      q,
		Terms:      res.Terms,
		Depth:      res.Depth,
		Candidates: res.Candidates,
		TotalMs:    float64(res.Total) / float64(time.Millisecond),
		Cached:     hit,
	}
	for i := range res.Answers {
		a := &res.Answers[i]
		ap := AnswerPayload{Central: a.CentralLabel, Score: a.Score, Depth: a.Depth}
		for _, n := range a.Nodes {
			ap.Nodes = append(ap.Nodes, NodePayload{
				ID: n.ID, Label: n.Label, Keywords: n.Keywords, Central: n.IsCentral,
			})
		}
		for _, e := range a.Edges {
			ap.Edges = append(ap.Edges, EdgePayload{From: e.From, To: e.To, Rel: e.Rel})
		}
		resp.Answers = append(resp.Answers, ap)
	}
	s.json(w, http.StatusOK, resp)
}

// searchError maps a SearchContext error to the right response: deadline
// overruns are the server's fault (504), a vanished client gets no
// response at all, and everything else is an unprocessable query (422).
func (s *Server) searchError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		s.met.clientGone.Inc() // client gone; drop the write
	case errors.Is(err, context.DeadlineExceeded):
		s.met.timeouts.Inc()
		s.error(w, http.StatusGatewayTimeout, "search deadline exceeded")
	default:
		s.error(w, http.StatusUnprocessableEntity, err.Error())
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.json(w, http.StatusOK, StatsResponse{
		Dataset:     s.eng.Name(),
		Nodes:       s.eng.Graph().NumNodes(),
		Edges:       s.eng.Graph().NumEdges(),
		AvgDistance: s.eng.AvgDistance(),
		Vocabulary:  s.eng.VocabSize(),
	})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!doctype html><title>WikiSearch</title>
<h1>WikiSearch — parallel keyword search on %s</h1>
<form action="/"><input name="q" size="60" value="%s" placeholder="e.g. sql rdf knowledge base">
<button>Search</button></form>`, html.EscapeString(s.eng.Name()), html.EscapeString(q))
	if q == "" {
		return
	}
	// Defaults match /search's, so both endpoints share cache entries.
	res, _, err := s.search(r.Context(), wikisearch.Query{
		Text: q, TopK: 20, Alpha: 0.1, Lambda: 0.2, Variant: wikisearch.CPUPar,
	})
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			// Client gone; nothing to render.
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Fprint(w, "<p>error: search deadline exceeded</p>")
		default:
			fmt.Fprintf(w, "<p>error: %s</p>", html.EscapeString(err.Error()))
		}
		return
	}
	renderAnswers(w, res)
}

// renderAnswers writes the index page's result list. Every string that
// originates in graph data or the user's query is HTML-escaped.
func renderAnswers(w io.Writer, res *wikisearch.Result) {
	fmt.Fprintf(w, "<p>%d answers in %v (d=%d, %d candidates)</p><ol>",
		len(res.Answers), res.Total.Round(time.Microsecond), res.Depth, res.Candidates)
	for i := range res.Answers {
		a := &res.Answers[i]
		fmt.Fprintf(w, "<li><b>%s</b> (score %.4f, depth %d)<ul>",
			html.EscapeString(a.CentralLabel), a.Score, a.Depth)
		for _, n := range a.Nodes {
			kw := ""
			if len(n.Keywords) > 0 {
				kw = fmt.Sprintf(" <i>{%s}</i>", html.EscapeString(strings.Join(n.Keywords, " ")))
			}
			fmt.Fprintf(w, "<li>%s%s</li>", html.EscapeString(n.Label), kw)
		}
		fmt.Fprint(w, "</ul></li>")
	}
	fmt.Fprint(w, "</ol>")
}

func (s *Server) json(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Printf("server: encode: %v", err)
	}
}

func (s *Server) error(w http.ResponseWriter, code int, msg string) {
	s.json(w, code, map[string]string{"error": msg})
}

// intParam parses an integer query parameter. An absent parameter yields
// the default; a present but malformed one is an error, so clients hear
// about typos instead of silently getting default behavior.
func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	return strconv.Atoi(raw)
}

// floatParam parses a float query parameter with the same absent-versus-
// malformed distinction as intParam.
func floatParam(r *http.Request, name string, def float64) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	return strconv.ParseFloat(raw, 64)
}
