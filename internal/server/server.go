// Package server implements the HTTP JSON search service behind
// cmd/wikiserve — the reproduction of the paper's online WikiSearch demo.
//
// Endpoints:
//
//	GET /search?q=<keywords>&k=20&alpha=0.1&variant=cpu   JSON answers
//	GET /stats                                            dataset statistics
//	GET /healthz                                          liveness
//	GET /                                                 minimal HTML page
package server

import (
	"encoding/json"
	"fmt"
	"html"
	"log"
	"net/http"
	"strconv"
	"time"

	"wikisearch"
)

// Server serves search requests over one prepared engine. The engine is
// safe for concurrent searches, so Server needs no locking of its own.
type Server struct {
	eng *wikisearch.Engine
	mux *http.ServeMux
}

// New builds a Server over the engine.
func New(eng *wikisearch.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /search", s.handleSearch)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SearchResponse is the /search payload.
type SearchResponse struct {
	Query      string          `json:"query"`
	Terms      []string        `json:"terms"`
	Depth      int             `json:"depth"`
	Candidates int             `json:"candidates"`
	TotalMs    float64         `json:"total_ms"`
	Answers    []AnswerPayload `json:"answers"`
}

// AnswerPayload is one answer graph in the /search payload.
type AnswerPayload struct {
	Central string        `json:"central"`
	Score   float64       `json:"score"`
	Depth   int           `json:"depth"`
	Nodes   []NodePayload `json:"nodes"`
	Edges   []EdgePayload `json:"edges"`
}

// NodePayload is one node of an answer graph.
type NodePayload struct {
	ID       int32    `json:"id"`
	Label    string   `json:"label"`
	Keywords []string `json:"keywords,omitempty"`
	Central  bool     `json:"central,omitempty"`
}

// EdgePayload is one hitting-path edge of an answer graph.
type EdgePayload struct {
	From int32  `json:"from"`
	To   int32  `json:"to"`
	Rel  string `json:"rel"`
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Dataset     string  `json:"dataset"`
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	AvgDistance float64 `json:"avg_distance"`
	Vocabulary  int     `json:"vocabulary"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		s.error(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	k := intParam(r, "k", 20)
	if k < 1 || k > 200 {
		s.error(w, http.StatusBadRequest, "k must be in [1,200]")
		return
	}
	alpha := floatParam(r, "alpha", 0.1)
	if alpha <= 0 || alpha >= 1 {
		s.error(w, http.StatusBadRequest, "alpha must be in (0,1)")
		return
	}
	variant := wikisearch.CPUPar
	switch r.URL.Query().Get("variant") {
	case "", "cpu":
	case "gpu":
		variant = wikisearch.GPUPar
	case "cpu-d":
		variant = wikisearch.CPUParD
	case "seq":
		variant = wikisearch.Sequential
	default:
		s.error(w, http.StatusBadRequest, "variant must be cpu, cpu-d, gpu or seq")
		return
	}
	res, err := s.eng.SearchContext(r.Context(), wikisearch.Query{Text: q, TopK: k, Alpha: alpha, Variant: variant})
	if err != nil {
		s.error(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := SearchResponse{
		Query:      q,
		Terms:      res.Terms,
		Depth:      res.Depth,
		Candidates: res.Candidates,
		TotalMs:    float64(res.Total) / float64(time.Millisecond),
	}
	for i := range res.Answers {
		a := &res.Answers[i]
		ap := AnswerPayload{Central: a.CentralLabel, Score: a.Score, Depth: a.Depth}
		for _, n := range a.Nodes {
			ap.Nodes = append(ap.Nodes, NodePayload{
				ID: n.ID, Label: n.Label, Keywords: n.Keywords, Central: n.IsCentral,
			})
		}
		for _, e := range a.Edges {
			ap.Edges = append(ap.Edges, EdgePayload{From: e.From, To: e.To, Rel: e.Rel})
		}
		resp.Answers = append(resp.Answers, ap)
	}
	s.json(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.json(w, http.StatusOK, StatsResponse{
		Dataset:     s.eng.Name(),
		Nodes:       s.eng.Graph().NumNodes(),
		Edges:       s.eng.Graph().NumEdges(),
		AvgDistance: s.eng.AvgDistance(),
		Vocabulary:  s.eng.VocabSize(),
	})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!doctype html><title>WikiSearch</title>
<h1>WikiSearch — parallel keyword search on %s</h1>
<form action="/"><input name="q" size="60" value="%s" placeholder="e.g. sql rdf knowledge base">
<button>Search</button></form>`, html.EscapeString(s.eng.Name()), html.EscapeString(q))
	if q == "" {
		return
	}
	res, err := s.eng.Search(wikisearch.Query{Text: q})
	if err != nil {
		fmt.Fprintf(w, "<p>error: %s</p>", html.EscapeString(err.Error()))
		return
	}
	fmt.Fprintf(w, "<p>%d answers in %v (d=%d, %d candidates)</p><ol>",
		len(res.Answers), res.Total.Round(time.Microsecond), res.Depth, res.Candidates)
	for i := range res.Answers {
		a := &res.Answers[i]
		fmt.Fprintf(w, "<li><b>%s</b> (score %.4f, depth %d)<ul>",
			html.EscapeString(a.CentralLabel), a.Score, a.Depth)
		for _, n := range a.Nodes {
			kw := ""
			if len(n.Keywords) > 0 {
				kw = fmt.Sprintf(" <i>{%v}</i>", n.Keywords)
			}
			fmt.Fprintf(w, "<li>%s%s</li>", html.EscapeString(n.Label), kw)
		}
		fmt.Fprint(w, "</ul></li>")
	}
	fmt.Fprint(w, "</ol>")
}

func (s *Server) json(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("server: encode: %v", err)
	}
}

func (s *Server) error(w http.ResponseWriter, code int, msg string) {
	s.json(w, code, map[string]string{"error": msg})
}

func intParam(r *http.Request, name string, def int) int {
	v, err := strconv.Atoi(r.URL.Query().Get(name))
	if err != nil {
		return def
	}
	return v
}

func floatParam(r *http.Request, name string, def float64) float64 {
	v, err := strconv.ParseFloat(r.URL.Query().Get(name), 64)
	if err != nil {
		return def
	}
	return v
}
