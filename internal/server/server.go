// Package server implements the HTTP JSON search service behind
// cmd/wikiserve — the reproduction of the paper's online WikiSearch demo,
// hardened for production traffic: per-request deadlines, concurrency
// limiting with fast-fail backpressure, an LRU query-result cache with
// singleflight deduplication, panic recovery, access logging with request
// IDs, and a Prometheus-format metrics endpoint.
//
// Endpoints:
//
//	GET  /v1/search?q=<keywords>&k=20&alpha=0.1&lambda=0.2&variant=cpu  versioned JSON envelope
//	GET  /v1/stats                                                      dataset statistics (envelope)
//	POST /v1/mutate                                                     live graph mutations (envelope; 409 read_only unless enabled)
//	GET  /v1/debug/traces                                               trace capture rings (envelope)
//	GET  /v1/debug/trace?id=N | req=N [&format=chrome]                  one trace's span tree (envelope)
//	GET  /search                                                        legacy answers payload (deprecated)
//	GET  /stats                                                         legacy statistics (deprecated)
//	GET  /metrics                                                       Prometheus text metrics
//	GET  /healthz                                                       liveness
//	GET  /                                                              minimal HTML page
//
// The /v1 endpoints answer with one stable envelope — {"results": …,
// "stats": …} on success, {"error": {"code", "message"}} on failure —
// with consistent status codes: 400 bad_request (malformed parameters),
// 405 method_not_allowed (wrong method on /v1/mutate), 409 read_only or
// conflict (mutation rejected by server or graph state),
// 422 unprocessable (well-formed query the engine cannot answer),
// 503 overloaded (admission control), 504 timeout (deadline overrun),
// 500 internal (recovered panic). The unversioned routes predate the
// envelope, keep their original payloads for existing clients, and are
// deprecated in favor of /v1.
//
// Concurrent searches that agree on the expansion-shaping knobs are
// coalesced into one shared bottom-up expansion (Config.BatchWindow);
// batch occupancy and coalescing latency are exported at /metrics.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html"
	"io"
	"log"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"wikisearch"
)

// Config tunes the request lifecycle. The zero value selects production
// defaults; negative values disable the corresponding control.
type Config struct {
	// Timeout bounds each search request (default 5s; negative disables).
	Timeout time.Duration
	// MaxInFlight bounds concurrent searches; excess requests fail fast
	// with 503 (default 64; negative disables).
	MaxInFlight int
	// CacheSize bounds the query-result LRU in entries (default 256;
	// negative disables caching).
	CacheSize int
	// BatchWindow is the coalescing window for shared-frontier query
	// batching: concurrent compatible searches admitted within the window
	// share one bottom-up expansion (default: the engine's 200µs; negative
	// disables batching). Results are identical either way; only the
	// latency/throughput trade moves. See DESIGN.md §9 for tuning.
	BatchWindow time.Duration
	// BatchColumns caps the total keyword columns of one batch (default 8,
	// the engine's word-wide fast path).
	BatchColumns int
	// SlowQuery is the threshold above which a search gets a structured
	// slow-query log line with its per-phase breakdown and batch occupancy
	// (default 500ms; negative disables). The same threshold selects which
	// traces the /v1/debug/traces slow ring retains.
	SlowQuery time.Duration
	// Logger receives access log lines and panics (default log.Default()).
	// Structured log output (access lines, slow queries) goes to this
	// logger's writer through log/slog.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.SlowQuery == 0 {
		c.SlowQuery = 500 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	return c
}

// Server serves search requests over one prepared engine. The engine is
// safe for concurrent searches; Server adds the request lifecycle around
// it.
type Server struct {
	eng       *wikisearch.Engine
	cfg       Config
	mux       *http.ServeMux
	log       *log.Logger
	slog      *slog.Logger // structured twin of log: access lines, slow queries
	met       *serverMetrics
	cache     *resultCache  // nil when disabled
	sem       chan struct{} // nil when unlimited
	nextReqID atomic.Uint64
	// mut is the single-writer mutation handle behind POST /v1/mutate,
	// opened by EnableMutation before serving; nil keeps the server
	// read-only (the route answers 409 read_only).
	mut *wikisearch.Mutator
	// routes records every registered route for Routes(); docs/api.md is
	// pinned to it by a golden test.
	routes []Route
}

// Route describes one registered HTTP route.
type Route struct {
	// Method is the HTTP method, or "*" when the handler accepts any
	// method and dispatches itself.
	Method string `json:"method"`
	// Pattern is the ServeMux path pattern (without the method).
	Pattern string `json:"pattern"`
	// Doc is a one-line description.
	Doc string `json:"doc"`
}

// Routes returns the server's registered route table, sorted by pattern
// then method. docs/api.md documents exactly this set; the route-spec
// golden test fails when they drift apart.
func (s *Server) Routes() []Route {
	out := make([]Route, len(s.routes))
	copy(out, s.routes)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pattern != out[j].Pattern {
			return out[i].Pattern < out[j].Pattern
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// handle registers one route on the mux and records it for Routes().
// pattern is a Go 1.22 ServeMux pattern ("GET /v1/search"); a pattern
// without a method registers for every method (the handler dispatches).
func (s *Server) handle(pattern string, h http.Handler, doc string) {
	method, path, found := strings.Cut(pattern, " ")
	if !found {
		method, path = "*", pattern
	}
	s.routes = append(s.routes, Route{Method: method, Pattern: path, Doc: doc})
	s.mux.Handle(pattern, h)
}

// New builds a Server over the engine with default Config.
func New(eng *wikisearch.Engine) *Server { return NewWithConfig(eng, Config{}) }

// NewWithConfig builds a Server over the engine. It installs a search
// observer on the engine that feeds the per-phase latency histograms and,
// unless cfg.BatchWindow is negative, enables shared-frontier query
// batching with an observer that feeds the batch metrics.
func NewWithConfig(eng *wikisearch.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		eng: eng,
		cfg: cfg,
		mux: http.NewServeMux(),
		log: cfg.Logger,
		slog: slog.New(slog.NewTextHandler(cfg.Logger.Writer(),
			&slog.HandlerOptions{Level: slog.LevelInfo})),
		met: newServerMetrics(),
	}
	if cfg.CacheSize > 0 {
		s.cache = newResultCache(cfg.CacheSize)
	}
	if cfg.MaxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	eng.SetSearchObserver(s.met.observeSearch)
	s.met.observeLoad(eng.LoadInfo())
	if tr := eng.Traces(); tr != nil {
		if cfg.SlowQuery > 0 {
			tr.SetSlowThreshold(cfg.SlowQuery)
			tr.SetObserver(s.observeTrace)
		} else {
			tr.SetSlowThreshold(1 << 62) // slow ring effectively off
		}
	}
	if cfg.BatchWindow >= 0 {
		eng.EnableBatching(wikisearch.BatchOptions{
			Window:     cfg.BatchWindow,
			MaxColumns: cfg.BatchColumns,
			Observer:   s.met.observeBatch,
		})
	}
	s.handle("GET /v1/search", s.instrument(http.HandlerFunc(s.handleV1Search), true),
		"keyword search, versioned envelope")
	s.handle("GET /v1/stats", s.instrument(http.HandlerFunc(s.handleV1Stats), false),
		"dataset, epoch and mutation statistics, versioned envelope")
	s.handle("GET /search", s.instrument(http.HandlerFunc(s.handleSearch), true),
		"legacy answers payload (deprecated; use /v1/search)")
	s.handle("GET /{$}", s.instrument(http.HandlerFunc(s.handleIndex), true),
		"minimal HTML search page")
	s.handle("GET /stats", s.instrument(http.HandlerFunc(s.handleStats), false),
		"legacy statistics payload (deprecated; use /v1/stats)")
	s.handle("GET /metrics", s.instrument(s.met.reg.Handler(), false),
		"Prometheus text metrics")
	s.handle("GET /v1/debug/traces", s.instrument(http.HandlerFunc(s.handleDebugTraces), false),
		"recent and slow trace capture rings, versioned envelope")
	s.handle("GET /v1/debug/trace", s.instrument(http.HandlerFunc(s.handleDebugTrace), false),
		"one trace's span tree by id or request id, versioned envelope")
	// Method-less on purpose: the handler maps non-POST to an enveloped
	// 405 instead of the mux's plain-text one.
	s.handle("/v1/mutate", s.instrument(http.HandlerFunc(s.handleV1Mutate), false),
		"live graph mutations (POST), versioned envelope")
	s.handle("GET /healthz", s.instrument(http.HandlerFunc(
		func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
		}), false),
		"liveness probe")
	// Epoch and delta gauges refresh on every /metrics scrape.
	s.met.reg.AddScrapeHook(func() { s.met.observeEpoch(eng.EpochStats()) })
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// PurgeCache drops every cached query result (for when the engine's
// underlying data is swapped).
func (s *Server) PurgeCache() {
	if s.cache != nil {
		s.cache.purge()
	}
}

// SearchResponse is the /search payload.
type SearchResponse struct {
	Query      string          `json:"query"`
	Terms      []string        `json:"terms"`
	Depth      int             `json:"depth"`
	Candidates int             `json:"candidates"`
	TotalMs    float64         `json:"total_ms"`
	Cached     bool            `json:"cached"`
	Answers    []AnswerPayload `json:"answers"`
}

// AnswerPayload is one answer graph in the /search payload.
type AnswerPayload struct {
	Central string        `json:"central"`
	Score   float64       `json:"score"`
	Depth   int           `json:"depth"`
	Nodes   []NodePayload `json:"nodes"`
	Edges   []EdgePayload `json:"edges"`
}

// NodePayload is one node of an answer graph.
type NodePayload struct {
	ID       int32    `json:"id"`
	Label    string   `json:"label"`
	Keywords []string `json:"keywords,omitempty"`
	Central  bool     `json:"central,omitempty"`
}

// EdgePayload is one hitting-path edge of an answer graph.
type EdgePayload struct {
	From int32  `json:"from"`
	To   int32  `json:"to"`
	Rel  string `json:"rel"`
}

// StatsResponse is the /stats payload. The load_* fields describe how the
// KB dump got into memory (absent for engines built in memory rather than
// loaded from a dump): load_mode "mmap" means the graph arrays are
// zero-copy views into a live file mapping of mapped_bytes bytes.
type StatsResponse struct {
	Dataset     string  `json:"dataset"`
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	AvgDistance float64 `json:"avg_distance"`
	Vocabulary  int     `json:"vocabulary"`
	LoadFormat  int     `json:"load_format,omitempty"`
	LoadMode    string  `json:"load_mode,omitempty"`
	MappedBytes int64   `json:"mapped_bytes,omitempty"`
	// Epoch is the search epoch currently serving queries; it advances on
	// every live-mutation publish (1 for an engine that never mutated).
	Epoch uint64 `json:"epoch"`
	// Mutation describes the live-mutation subsystem (absent on read-only
	// servers).
	Mutation *MutationPayload `json:"mutation,omitempty"`
	// Sharding describes the sharded runtime's topology and cumulative
	// serving totals, including the per-shard phase breakdown (absent when
	// the engine serves solo).
	Sharding *wikisearch.ShardStats `json:"sharding,omitempty"`
}

// MutationPayload is the mutation block of the stats payload: delta size
// and epoch lifecycle gauges for a mutable server.
type MutationPayload struct {
	// PendingOps counts applied-but-unpublished ops; DeltaOps everything
	// since the last compaction.
	PendingOps int `json:"pending_ops"`
	DeltaOps   int `json:"delta_ops"`
	// DeltaNodes/DeltaEdges/DeltaTerms describe the published snapshot's
	// overlay (all zero right after a compaction).
	DeltaNodes int `json:"delta_nodes"`
	DeltaEdges int `json:"delta_edges"`
	DeltaTerms int `json:"delta_terms"`
	// Publishes and Compactions count epoch publications by kind;
	// EpochsRetired counts epochs fully drained and released.
	Publishes     int64 `json:"publishes"`
	Compactions   int64 `json:"compactions"`
	EpochsRetired int64 `json:"epochs_retired"`
}

// V1Error is the error block of every /v1 envelope. Code is a stable
// machine-readable token (bad_request, unprocessable, timeout, overloaded,
// internal); Message is for humans and may change.
type V1Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// V1SearchStats is the stats block of the /v1/search envelope.
type V1SearchStats struct {
	Query      string   `json:"query"`
	Terms      []string `json:"terms"`
	Depth      int      `json:"depth"`
	Candidates int      `json:"candidates"`
	TotalMs    float64  `json:"total_ms"`
	Cached     bool     `json:"cached"`
}

// V1SearchResponse is the /v1/search envelope: results and stats on
// success, error on failure — never both.
type V1SearchResponse struct {
	Results []AnswerPayload `json:"results,omitempty"`
	Stats   *V1SearchStats  `json:"stats,omitempty"`
	Error   *V1Error        `json:"error,omitempty"`
}

// V1StatsResponse is the /v1/stats envelope.
type V1StatsResponse struct {
	Stats *StatsResponse `json:"stats,omitempty"`
	Error *V1Error       `json:"error,omitempty"`
}

// search runs one query through the cache (when enabled): repeated
// identical queries are served from the LRU, and concurrent identical
// queries share a single engine search.
func (s *Server) search(ctx context.Context, q wikisearch.Query) (res *wikisearch.Result, hit bool, err error) {
	key, ok := cacheKey{}, false
	if s.cache != nil {
		key, ok = cacheKeyFor(q)
	}
	if !ok {
		res, err = s.eng.Search(ctx, q)
		return res, false, err
	}
	res, hit, err = s.cache.do(ctx, key, func() (*wikisearch.Result, error) {
		return s.eng.Search(ctx, q)
	})
	if hit {
		s.met.cacheHits.Inc()
	} else {
		s.met.cacheMisses.Inc()
	}
	return res, hit, err
}

// parseSearchQuery builds a Query from the request's parameters, shared by
// the legacy /search and the /v1/search handlers. The returned message is
// empty on success and the client-facing description of the first problem
// otherwise (always a 400). Type errors keep their dedicated messages;
// range checks delegate to Query.Validate so the HTTP layer and the Go API
// can never drift apart on what a legal query is.
func parseSearchQuery(r *http.Request) (wikisearch.Query, string) {
	text := r.URL.Query().Get("q")
	if text == "" {
		return wikisearch.Query{}, "missing q parameter"
	}
	k, err := intParam(r, "k", 20)
	if err != nil {
		return wikisearch.Query{}, "k must be an integer"
	}
	alpha, err := floatParam(r, "alpha", 0.1)
	if err != nil {
		return wikisearch.Query{}, "alpha must be a number"
	}
	lambda, err := floatParam(r, "lambda", 0.2)
	if err != nil {
		return wikisearch.Query{}, "lambda must be a number"
	}
	variant := wikisearch.CPUPar
	switch r.URL.Query().Get("variant") {
	case "", "cpu":
	case "gpu":
		variant = wikisearch.GPUPar
	case "cpu-d":
		variant = wikisearch.CPUParD
	case "seq":
		variant = wikisearch.Sequential
	default:
		return wikisearch.Query{}, "variant must be cpu, cpu-d, gpu or seq"
	}
	// Zero means "engine default" to Query.Validate; the HTTP contract is
	// stricter — an explicit 0 is out of range.
	switch {
	case k == 0:
		return wikisearch.Query{}, "k must be in [1,200]"
	case alpha == 0:
		return wikisearch.Query{}, "alpha must be in (0,1)"
	case lambda == 0:
		return wikisearch.Query{}, "lambda must be in (0,1]"
	}
	q := wikisearch.Query{Text: text, TopK: k, Alpha: alpha, Lambda: lambda, Variant: variant}
	if err := q.Validate(); err != nil {
		return wikisearch.Query{}, strings.TrimPrefix(err.Error(), "wikisearch: ")
	}
	return q, ""
}

// answerPayloads converts a result's answer graphs to their JSON form,
// shared by the legacy and the /v1 search payloads.
func answerPayloads(res *wikisearch.Result) []AnswerPayload {
	var out []AnswerPayload
	for i := range res.Answers {
		a := &res.Answers[i]
		ap := AnswerPayload{Central: a.CentralLabel, Score: a.Score, Depth: a.Depth}
		for _, n := range a.Nodes {
			ap.Nodes = append(ap.Nodes, NodePayload{
				ID: n.ID, Label: n.Label, Keywords: n.Keywords, Central: n.IsCentral,
			})
		}
		for _, e := range a.Edges {
			ap.Edges = append(ap.Edges, EdgePayload{From: e.From, To: e.To, Rel: e.Rel})
		}
		out = append(out, ap)
	}
	return out
}

// deprecate stamps a legacy-route response with the RFC 9745 Deprecation
// header and a Link to the /v1 successor.
func deprecate(w http.ResponseWriter, successor string) {
	w.Header().Set("Deprecation", "@1767225600") // 2026-01-01, the /v1 release
	w.Header().Set("Link", `<`+successor+`>; rel="successor-version"`)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	deprecate(w, "/v1/search")
	q, msg := parseSearchQuery(r)
	if msg != "" {
		s.error(w, http.StatusBadRequest, msg)
		return
	}
	res, hit, err := s.search(r.Context(), q)
	if err != nil {
		s.searchError(w, err)
		return
	}
	if hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	s.json(w, http.StatusOK, SearchResponse{
		Query:      q.Text,
		Terms:      res.Terms,
		Depth:      res.Depth,
		Candidates: res.Candidates,
		TotalMs:    float64(res.Total) / float64(time.Millisecond),
		Cached:     hit,
		Answers:    answerPayloads(res),
	})
}

// handleV1Search serves the versioned search endpoint: same parameters as
// the legacy route, stable envelope out.
func (s *Server) handleV1Search(w http.ResponseWriter, r *http.Request) {
	q, msg := parseSearchQuery(r)
	if msg != "" {
		s.v1Error(w, http.StatusBadRequest, "bad_request", msg)
		return
	}
	res, hit, err := s.search(r.Context(), q)
	if err != nil {
		s.v1SearchError(w, err)
		return
	}
	if hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	results := answerPayloads(res)
	if results == nil {
		results = []AnswerPayload{} // a success envelope always carries a results array
	}
	s.json(w, http.StatusOK, V1SearchResponse{
		Results: results,
		Stats: &V1SearchStats{
			Query:      q.Text,
			Terms:      res.Terms,
			Depth:      res.Depth,
			Candidates: res.Candidates,
			TotalMs:    float64(res.Total) / float64(time.Millisecond),
			Cached:     hit,
		},
	})
}

func (s *Server) handleV1Stats(w http.ResponseWriter, _ *http.Request) {
	st := s.statsResponse()
	s.json(w, http.StatusOK, V1StatsResponse{Stats: &st})
}

// searchError maps a Search error to the right legacy response: deadline
// overruns are the server's fault (504), a vanished client gets no
// response at all, and everything else is an unprocessable query (422).
func (s *Server) searchError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		s.met.clientGone.Inc() // client gone; drop the write
	case errors.Is(err, context.DeadlineExceeded):
		s.met.timeouts.Inc()
		s.error(w, http.StatusGatewayTimeout, "search deadline exceeded")
	default:
		s.error(w, http.StatusUnprocessableEntity, err.Error())
	}
}

// v1SearchError is searchError for the versioned envelope.
func (s *Server) v1SearchError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		s.met.clientGone.Inc() // client gone; drop the write
	case errors.Is(err, context.DeadlineExceeded):
		s.met.timeouts.Inc()
		s.v1Error(w, http.StatusGatewayTimeout, "timeout", "search deadline exceeded")
	default:
		s.v1Error(w, http.StatusUnprocessableEntity, "unprocessable", err.Error())
	}
}

// statsResponse assembles the shared /stats and /v1/stats payload.
func (s *Server) statsResponse() StatsResponse {
	info := s.eng.LoadInfo()
	resp := StatsResponse{
		Dataset:     s.eng.Name(),
		Nodes:       s.eng.Graph().NumNodes(),
		Edges:       s.eng.Graph().NumEdges(),
		AvgDistance: s.eng.AvgDistance(),
		Vocabulary:  s.eng.VocabSize(),
		LoadFormat:  info.Format,
		LoadMode:    info.Mode,
		MappedBytes: info.MappedBytes,
		Epoch:       s.eng.Epoch(),
	}
	if st, ok := s.eng.ShardStats(); ok {
		resp.Sharding = &st
	}
	if s.mut != nil {
		ms := s.mut.Stats()
		es := s.eng.EpochStats()
		resp.Mutation = &MutationPayload{
			PendingOps:    ms.PendingOps,
			DeltaOps:      ms.Ops,
			DeltaNodes:    es.DeltaNodes,
			DeltaEdges:    es.DeltaEdges,
			DeltaTerms:    es.DeltaTerms,
			Publishes:     ms.Publishes,
			Compactions:   ms.Compactions,
			EpochsRetired: es.Retired,
		}
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	deprecate(w, "/v1/stats")
	s.json(w, http.StatusOK, s.statsResponse())
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!doctype html><title>WikiSearch</title>
<h1>WikiSearch — parallel keyword search on %s</h1>
<form action="/"><input name="q" size="60" value="%s" placeholder="e.g. sql rdf knowledge base">
<button>Search</button></form>`, html.EscapeString(s.eng.Name()), html.EscapeString(q))
	if q == "" {
		return
	}
	// Defaults match /search's, so both endpoints share cache entries.
	res, _, err := s.search(r.Context(), wikisearch.Query{
		Text: q, TopK: 20, Alpha: 0.1, Lambda: 0.2, Variant: wikisearch.CPUPar,
	})
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			// Client gone; nothing to render.
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Fprint(w, "<p>error: search deadline exceeded</p>")
		default:
			fmt.Fprintf(w, "<p>error: %s</p>", html.EscapeString(err.Error()))
		}
		return
	}
	renderAnswers(w, res)
}

// renderAnswers writes the index page's result list. Every string that
// originates in graph data or the user's query is HTML-escaped.
func renderAnswers(w io.Writer, res *wikisearch.Result) {
	fmt.Fprintf(w, "<p>%d answers in %v (d=%d, %d candidates)</p><ol>",
		len(res.Answers), res.Total.Round(time.Microsecond), res.Depth, res.Candidates)
	for i := range res.Answers {
		a := &res.Answers[i]
		fmt.Fprintf(w, "<li><b>%s</b> (score %.4f, depth %d)<ul>",
			html.EscapeString(a.CentralLabel), a.Score, a.Depth)
		for _, n := range a.Nodes {
			kw := ""
			if len(n.Keywords) > 0 {
				kw = fmt.Sprintf(" <i>{%s}</i>", html.EscapeString(strings.Join(n.Keywords, " ")))
			}
			fmt.Fprintf(w, "<li>%s%s</li>", html.EscapeString(n.Label), kw)
		}
		fmt.Fprint(w, "</ul></li>")
	}
	fmt.Fprint(w, "</ol>")
}

func (s *Server) json(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Printf("server: encode: %v", err)
	}
}

func (s *Server) error(w http.ResponseWriter, code int, msg string) {
	s.json(w, code, map[string]string{"error": msg})
}

// v1Error writes a /v1 error envelope: {"error": {"code", "message"}}.
func (s *Server) v1Error(w http.ResponseWriter, status int, code, msg string) {
	s.json(w, status, V1SearchResponse{Error: &V1Error{Code: code, Message: msg}})
}

// isV1 reports whether the request targets a versioned endpoint, so the
// middleware can pick the matching error body shape.
func isV1(r *http.Request) bool { return strings.HasPrefix(r.URL.Path, "/v1/") }

// intParam parses an integer query parameter. An absent parameter yields
// the default; a present but malformed one is an error, so clients hear
// about typos instead of silently getting default behavior.
func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	return strconv.Atoi(raw)
}

// floatParam parses a float query parameter with the same absent-versus-
// malformed distinction as intParam.
func floatParam(r *http.Request, name string, def float64) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	return strconv.ParseFloat(raw, 64)
}
