package banks

import (
	"fmt"
	"math/rand"
	"testing"

	"wikisearch/internal/graph"
)

func benchSetup(b *testing.B) (*graph.Graph, []float64, [][]graph.NodeID) {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	const n, m = 10000, 60000
	gb := graph.NewBuilder()
	for i := 0; i < n; i++ {
		gb.AddNode(fmt.Sprintf("n%d", i), "")
	}
	r := gb.Rel("e")
	for i := 0; i < m; i++ {
		gb.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), r)
	}
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64()
	}
	sources := make([][]graph.NodeID, 3)
	for i := range sources {
		for len(sources[i]) < 10 {
			sources[i] = append(sources[i], graph.NodeID(rng.Intn(n)))
		}
	}
	return g, w, sources
}

func BenchmarkBANKS1(b *testing.B) {
	g, w, src := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SearchBANKS1(g, w, src, Options{K: 10, MaxVisits: 20000})
	}
}

func BenchmarkBANKS2(b *testing.B) {
	g, w, src := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SearchBANKS2(g, w, src, Options{K: 10, MaxVisits: 20000})
	}
}
