// Package banks implements the Group-Steiner-Tree–approximating baselines
// the paper compares against: BANKS-I (Aditya et al., VLDB'02 — purely
// backward expanding search) and BANKS-II (Kacholia et al., VLDB'05 —
// bidirectional expansion with spreading-activation priorities).
//
// Both return rooted answer trees: a root plus one shortest backward path
// to each keyword group. Their search loops are inherently sequential —
// every step pops one node from a global priority queue whose priorities
// depend on all previous steps — which is the paper's motivation for the
// Central Graph model: "their search procedures are based on shortest paths
// and have many intrinsic dependencies during traversal" (§I).
//
// Adaptations to the node-weighted knowledge graph of this repository, kept
// deliberately aligned with how the paper weighted BANKS for comparison:
//
//   - Edge costs: entering node v costs 1 + w(v), where w is the normalized
//     degree-of-summary weight — the analogue of BANKS' log(1+indegree)
//     edge weights (summary hubs make paths long).
//   - Node prestige: 1 − w(v) (informative nodes have high prestige), used
//     to seed spreading activation in BANKS-II.
//   - Forward testing (BANKS-II): expansion of nodes whose degree exceeds
//     DegreeThreshold is deferred by damping their activation, which is the
//     role forward search plays in the original ("avoid traversing too many
//     neighbors from a node in backward direction").
package banks

import (
	"container/heap"
	"math"
	"sort"

	"wikisearch/internal/graph"
)

// Options configures a BANKS search.
type Options struct {
	K int // top-k answer trees to return
	// MaxVisits caps total queue pops as a safety valve; 0 means no cap.
	MaxVisits int
	// Decay is the spreading-activation attenuation per hop (BANKS-II
	// defaults to 0.5); ignored by BANKS-I.
	Decay float64
	// DegreeThreshold defers backward expansion of higher-degree nodes
	// (BANKS-II's forward-testing role); ignored by BANKS-I. 0 disables.
	DegreeThreshold int
	// TerminationCheckEvery controls how often the top-k termination bound
	// is recomputed (a full scan of the priority queue — intentionally the
	// same costly check the paper observed, §VI-A).
	TerminationCheckEvery int
}

func (o Options) defaults() Options {
	if o.K <= 0 {
		o.K = 20
	}
	if o.Decay <= 0 || o.Decay >= 1 {
		o.Decay = 0.5
	}
	if o.TerminationCheckEvery <= 0 {
		o.TerminationCheckEvery = 256
	}
	return o
}

// Tree is one answer: a root with a shortest backward path to every keyword
// group, scored by the sum of root-to-leaf path costs (lower is better).
type Tree struct {
	Root  graph.NodeID
	Score float64
	// Paths[i] is the root → keyword-i leaf path (root first).
	Paths [][]graph.NodeID
	// Nodes is the deduplicated union of path nodes.
	Nodes []graph.NodeID
}

// item is a priority-queue entry: one pending expansion of node for the
// keyword's backward iterator.
type item struct {
	node     graph.NodeID
	keyword  int
	dist     float64
	priority float64 // pop order key: dist for BANKS-I, −activation for BANKS-II
}

type pq []item

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].priority < p[j].priority }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(item)) }
func (p *pq) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }

// searcher carries one BANKS run.
type searcher struct {
	g       *graph.Graph
	weights []float64
	sources [][]graph.NodeID
	opts    Options
	banks2  bool

	dist   []map[graph.NodeID]float64      // per keyword: best known distance
	parent []map[graph.NodeID]graph.NodeID // per keyword: next hop toward group
	queue  pq

	// roots maps candidate root → best known score, for dedup/update.
	roots map[graph.NodeID]float64

	Visited int // total pops, reported for the efficiency experiments
}

func newSearcher(g *graph.Graph, weights []float64, sources [][]graph.NodeID, opts Options, banks2 bool) *searcher {
	q := len(sources)
	s := &searcher{
		g:       g,
		weights: weights,
		sources: sources,
		opts:    opts.defaults(),
		banks2:  banks2,
		dist:    make([]map[graph.NodeID]float64, q),
		parent:  make([]map[graph.NodeID]graph.NodeID, q),
		roots:   map[graph.NodeID]float64{},
	}
	for i := 0; i < q; i++ {
		s.dist[i] = map[graph.NodeID]float64{}
		s.parent[i] = map[graph.NodeID]graph.NodeID{}
		for _, v := range sources[i] {
			s.dist[i][v] = 0
			s.queue = append(s.queue, item{node: v, keyword: i, dist: 0, priority: s.priority(v, 0, 0)})
		}
	}
	heap.Init(&s.queue)
	return s
}

// prestige is the BANKS node-prestige analogue: informative (low-weight)
// nodes have prestige near 1, summary hubs near 0.
func (s *searcher) prestige(v graph.NodeID) float64 { return 1 - s.weights[v] }

// cost is the edge cost of entering node v.
func (s *searcher) cost(v graph.NodeID) float64 { return 1 + s.weights[v] }

// priority computes the pop-order key for an expansion of v at distance d,
// hops steps from its group. BANKS-I pops in pure distance order; BANKS-II
// pops by spreading activation (highest first), damped for high-degree
// nodes (forward-testing deferral).
func (s *searcher) priority(v graph.NodeID, d float64, hops int) float64 {
	if !s.banks2 {
		return d
	}
	act := s.prestige(v) * math.Pow(s.opts.Decay, float64(hops))
	if s.opts.DegreeThreshold > 0 && s.g.Degree(v) > s.opts.DegreeThreshold {
		act *= 0.1
	}
	return -act
}

// hops recovers the path length (in edges) from v back to keyword i's
// group; used only to attenuate activation.
func (s *searcher) hops(v graph.NodeID, i int) int {
	h := 0
	for {
		p, ok := s.parent[i][v]
		if !ok {
			return h
		}
		v = p
		h++
	}
}

// run executes the search loop until the top-k termination condition
// proves no better tree remains, the queue empties, or MaxVisits fires.
func (s *searcher) run() []Tree {
	q := len(s.sources)
	checkCountdown := s.opts.TerminationCheckEvery
	for s.queue.Len() > 0 {
		if s.opts.MaxVisits > 0 && s.Visited >= s.opts.MaxVisits {
			break
		}
		it := heap.Pop(&s.queue).(item)
		if d, ok := s.dist[it.keyword][it.node]; !ok || it.dist > d {
			continue // stale entry superseded by a shorter path
		}
		s.Visited++

		// Relax bi-directed neighbors: backward expansion of the iterator.
		s.g.ForEachNeighbor(it.node, func(nb graph.NodeID, _ graph.RelID, _ bool) {
			nd := it.dist + s.cost(nb)
			if old, ok := s.dist[it.keyword][nb]; ok && old <= nd {
				return
			}
			// Shorter path found. If nb had already been expanded this is
			// the recursive improvement broadcast the paper describes —
			// realized by re-queueing nb so its subtree re-relaxes.
			s.dist[it.keyword][nb] = nd
			s.parent[it.keyword][nb] = it.node
			heap.Push(&s.queue, item{
				node:     nb,
				keyword:  it.keyword,
				dist:     nd,
				priority: s.priority(nb, nd, s.hops(nb, it.keyword)),
			})
			s.updateRoot(nb)
		})
		s.updateRoot(it.node)

		checkCountdown--
		if checkCountdown <= 0 {
			checkCountdown = s.opts.TerminationCheckEvery
			if s.canTerminate(q) {
				break
			}
		}
	}
	return s.collect()
}

// updateRoot records v as a candidate root when every keyword group has
// reached it, keeping the best score seen.
func (s *searcher) updateRoot(v graph.NodeID) {
	score := 0.0
	for i := range s.sources {
		d, ok := s.dist[i][v]
		if !ok {
			return
		}
		score += d
	}
	if old, ok := s.roots[v]; !ok || score < old {
		s.roots[v] = score
	}
}

// canTerminate implements the top-k termination check: the k-th best known
// score is compared against an optimistic bound on any undiscovered tree —
// the sum over keywords of the smallest queued distance. The scan over the
// whole queue is the "very inefficient" check of §VI-A, reproduced
// faithfully.
func (s *searcher) canTerminate(q int) bool {
	if len(s.roots) < s.opts.K {
		return false
	}
	minDist := make([]float64, q)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	for _, it := range s.queue {
		if d, ok := s.dist[it.keyword][it.node]; ok && d < it.dist {
			continue
		}
		if it.dist < minDist[it.keyword] {
			minDist[it.keyword] = it.dist
		}
	}
	bound := 0.0
	for _, d := range minDist {
		if math.IsInf(d, 1) {
			// This iterator is exhausted: no new tree can include it more
			// cheaply than existing distances; treat as zero contribution.
			continue
		}
		bound += d
	}
	kth := s.kthScore()
	return kth <= bound
}

func (s *searcher) kthScore() float64 {
	scores := make([]float64, 0, len(s.roots))
	for _, sc := range s.roots {
		scores = append(scores, sc)
	}
	sort.Float64s(scores)
	if len(scores) < s.opts.K {
		return math.Inf(1)
	}
	return scores[s.opts.K-1]
}

// collect assembles the top-k answer trees from candidate roots.
func (s *searcher) collect() []Tree {
	type cand struct {
		root  graph.NodeID
		score float64
	}
	cands := make([]cand, 0, len(s.roots))
	for r, sc := range s.roots {
		cands = append(cands, cand{r, sc})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		return cands[i].root < cands[j].root
	})
	if len(cands) > s.opts.K {
		cands = cands[:s.opts.K]
	}
	out := make([]Tree, 0, len(cands))
	for _, c := range cands {
		out = append(out, s.buildTree(c.root, c.score))
	}
	return out
}

func (s *searcher) buildTree(root graph.NodeID, score float64) Tree {
	t := Tree{Root: root, Score: score}
	seen := map[graph.NodeID]struct{}{}
	for i := range s.sources {
		path := []graph.NodeID{root}
		v := root
		for {
			p, ok := s.parent[i][v]
			if !ok {
				break
			}
			path = append(path, p)
			v = p
		}
		t.Paths = append(t.Paths, path)
		for _, n := range path {
			seen[n] = struct{}{}
		}
	}
	t.Nodes = make([]graph.NodeID, 0, len(seen))
	for n := range seen {
		t.Nodes = append(t.Nodes, n)
	}
	sort.Slice(t.Nodes, func(i, j int) bool { return t.Nodes[i] < t.Nodes[j] })
	return t
}

// Result carries the answers plus search-effort counters for the
// efficiency experiments.
type Result struct {
	Trees   []Tree
	Visited int
}

// SearchBANKS1 runs the purely backward, distance-ordered BANKS-I search.
func SearchBANKS1(g *graph.Graph, weights []float64, sources [][]graph.NodeID, opts Options) *Result {
	s := newSearcher(g, weights, sources, opts, false)
	trees := s.run()
	return &Result{Trees: trees, Visited: s.Visited}
}

// SearchBANKS2 runs the bidirectional, activation-ordered BANKS-II search.
func SearchBANKS2(g *graph.Graph, weights []float64, sources [][]graph.NodeID, opts Options) *Result {
	s := newSearcher(g, weights, sources, opts, true)
	trees := s.run()
	return &Result{Trees: trees, Visited: s.Visited}
}
