package banks

import (
	"fmt"
	"math/rand"
	"testing"

	"wikisearch/internal/graph"
)

// chain builds s0 — m1 — m2 — s1 with zero weights.
func chain(t *testing.T, n int) (*graph.Graph, []float64) {
	t.Helper()
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("v%d", i), "")
	}
	r := b.Rel("e")
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), r)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, make([]float64, n)
}

func TestBanks1FindsConnectionTree(t *testing.T) {
	g, w := chain(t, 5)
	res := SearchBANKS1(g, w, [][]graph.NodeID{{0}, {4}}, Options{K: 1})
	if len(res.Trees) != 1 {
		t.Fatalf("trees = %d, want 1", len(res.Trees))
	}
	tr := res.Trees[0]
	// Every node on the chain ties at score 4 (unit costs, 4 edges split
	// between the two keyword paths); whichever root wins the tie, the
	// score is the optimum.
	if tr.Score != 4 {
		t.Fatalf("score = %v, want 4", tr.Score)
	}
	if len(tr.Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(tr.Paths))
	}
	if len(tr.Nodes) != 5 {
		t.Fatalf("tree covers %d nodes, want 5", len(tr.Nodes))
	}
}

func TestBanks2SameAnswerSetOnSmallGraph(t *testing.T) {
	g, w := chain(t, 7)
	srcs := [][]graph.NodeID{{0}, {6}}
	r1 := SearchBANKS1(g, w, srcs, Options{K: 3})
	r2 := SearchBANKS2(g, w, srcs, Options{K: 3})
	if len(r1.Trees) == 0 || len(r2.Trees) == 0 {
		t.Fatal("no trees")
	}
	// Both must find the same best score (both are exhaustive on a tiny
	// graph); BANKS-II visits in different order but converges.
	if r1.Trees[0].Score != r2.Trees[0].Score {
		t.Fatalf("best scores differ: %v vs %v", r1.Trees[0].Score, r2.Trees[0].Score)
	}
}

func TestBanksRootContainingKeyword(t *testing.T) {
	// A single node holding both keywords is a zero-cost answer.
	b := graph.NewBuilder()
	b.AddNode("both", "")
	b.AddNode("other", "")
	b.AddEdgeNamed(0, 1, "e")
	g, _ := b.Build()
	res := SearchBANKS1(g, []float64{0, 0}, [][]graph.NodeID{{0}, {0}}, Options{K: 1})
	if len(res.Trees) != 1 || res.Trees[0].Root != 0 || res.Trees[0].Score != 0 {
		t.Fatalf("trees = %+v", res.Trees)
	}
}

func TestBanksSummaryWeightLengthensPaths(t *testing.T) {
	// Two 2-hop routes; the route through the heavy node must lose.
	b := graph.NewBuilder()
	b.AddNode("s0", "")
	b.AddNode("heavy", "")
	b.AddNode("light", "")
	b.AddNode("s1", "")
	r := b.Rel("e")
	b.AddEdge(0, 1, r)
	b.AddEdge(1, 3, r)
	b.AddEdge(0, 2, r)
	b.AddEdge(2, 3, r)
	g, _ := b.Build()
	w := []float64{0, 0.9, 0.1, 0}
	res := SearchBANKS1(g, w, [][]graph.NodeID{{0}, {3}}, Options{K: 1})
	for _, n := range res.Trees[0].Nodes {
		if n == 1 {
			t.Fatalf("best tree routes through the heavy node: %v", res.Trees[0].Nodes)
		}
	}
	for _, n := range res.Trees[0].Nodes {
		if n == 2 {
			return // routed through the light node, as expected
		}
	}
	t.Fatalf("best tree does not use the light route: %v", res.Trees[0].Nodes)
}

func TestBanksDisconnectedKeywords(t *testing.T) {
	b := graph.NewBuilder()
	b.AddNode("a", "")
	b.AddNode("b", "")
	g, _ := b.Build()
	res := SearchBANKS2(g, []float64{0, 0}, [][]graph.NodeID{{0}, {1}}, Options{K: 5})
	if len(res.Trees) != 0 {
		t.Fatalf("found trees across components: %+v", res.Trees)
	}
}

func TestBanksMaxVisitsCap(t *testing.T) {
	g, w := randomGraph(t, 200, 800, 1)
	res := SearchBANKS2(g, w, [][]graph.NodeID{{0}, {1}, {2}}, Options{K: 50, MaxVisits: 10})
	if res.Visited > 10 {
		t.Fatalf("visited %d > cap 10", res.Visited)
	}
}

func randomGraph(t *testing.T, n, m int, seed int64) (*graph.Graph, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("v%d", i), "")
	}
	r := b.Rel("e")
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), r)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.Float64()
	}
	return g, w
}

func TestBanks1TopKSortedAndBounded(t *testing.T) {
	g, w := randomGraph(t, 150, 600, 7)
	srcs := [][]graph.NodeID{{0, 5}, {10, 20}, {30}}
	res := SearchBANKS1(g, w, srcs, Options{K: 10})
	if len(res.Trees) > 10 {
		t.Fatalf("returned %d trees > k", len(res.Trees))
	}
	for i := 1; i < len(res.Trees); i++ {
		if res.Trees[i].Score < res.Trees[i-1].Score {
			t.Fatal("scores not ascending")
		}
	}
	// Every tree must connect all keyword groups: path ends in a source.
	for _, tr := range res.Trees {
		for i, p := range tr.Paths {
			leaf := p[len(p)-1]
			found := false
			for _, s := range srcs[i] {
				if s == leaf {
					found = true
				}
			}
			if !found {
				t.Fatalf("tree rooted at %d: path %d ends at %d, not a keyword-%d source", tr.Root, i, leaf, i)
			}
		}
	}
}

func TestBanks1ExactOnSmallGraphs(t *testing.T) {
	// BANKS-I's best tree score must equal the brute-force optimum
	// min over roots of Σ_i dist(root, group_i).
	for seed := int64(0); seed < 10; seed++ {
		g, w := randomGraph(t, 30, 80, seed)
		srcs := [][]graph.NodeID{{1}, {2}}
		res := SearchBANKS1(g, w, srcs, Options{K: 1})
		best := bruteBest(g, w, srcs)
		if len(res.Trees) == 0 {
			if best >= 0 {
				t.Fatalf("seed %d: BANKS-I found nothing, brute force %v", seed, best)
			}
			continue
		}
		if diff := res.Trees[0].Score - best; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("seed %d: BANKS-I best %v != brute force %v", seed, res.Trees[0].Score, best)
		}
	}
}

// bruteBest runs Dijkstra from every group and sums distances per root.
func bruteBest(g *graph.Graph, w []float64, srcs [][]graph.NodeID) float64 {
	n := g.NumNodes()
	dist := make([][]float64, len(srcs))
	for i, src := range srcs {
		dist[i] = dijkstra(g, w, src)
	}
	best := -1.0
	for v := 0; v < n; v++ {
		total := 0.0
		ok := true
		for i := range srcs {
			if dist[i][v] < 0 {
				ok = false
				break
			}
			total += dist[i][v]
		}
		if ok && (best < 0 || total < best) {
			best = total
		}
	}
	return best
}

func dijkstra(g *graph.Graph, w []float64, src []graph.NodeID) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = -1
	}
	type qi struct {
		v graph.NodeID
		d float64
	}
	var q []qi
	for _, s := range src {
		dist[s] = 0
		q = append(q, qi{s, 0})
	}
	for len(q) > 0 {
		bi := 0
		for i := range q {
			if q[i].d < q[bi].d {
				bi = i
			}
		}
		cur := q[bi]
		q = append(q[:bi], q[bi+1:]...)
		if cur.d > dist[cur.v] {
			continue
		}
		g.ForEachNeighbor(cur.v, func(nb graph.NodeID, _ graph.RelID, _ bool) {
			nd := cur.d + 1 + w[nb]
			if dist[nb] < 0 || nd < dist[nb] {
				dist[nb] = nd
				q = append(q, qi{nb, nd})
			}
		})
	}
	return dist
}
