package shard

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"wikisearch/internal/core"
	"wikisearch/internal/graph"
	"wikisearch/internal/trace"
)

// shardScenario builds a random graph, activation levels, dyadic weights and
// a random multi-keyword query, deterministic in seed (the internal/core
// equivalence generator, rebuilt here against the public API).
func shardScenario(t testing.TB, seed int64) (core.Input, core.Params) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 20 + rng.Intn(60)
	m := n + rng.Intn(3*n)
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("n%d", i), "")
	}
	rels := []graph.RelID{b.Rel("r0"), b.Rel("r1"), b.Rel("r2")}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), rels[rng.Intn(3)])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	levels := make([]uint8, n)
	weights := make([]float64, n)
	for i := range levels {
		levels[i] = uint8(rng.Intn(4))
		weights[i] = float64(rng.Intn(1024)) / 1024
	}
	q := 2 + rng.Intn(3)
	sources := make([][]graph.NodeID, q)
	terms := make([]string, q)
	for i := range sources {
		terms[i] = fmt.Sprintf("t%d", i)
		sz := 1 + rng.Intn(4)
		seen := map[graph.NodeID]bool{}
		for len(sources[i]) < sz {
			v := graph.NodeID(rng.Intn(n))
			if !seen[v] {
				seen[v] = true
				sources[i] = append(sources[i], v)
			}
		}
		sort.Slice(sources[i], func(a, b int) bool { return sources[i][a] < sources[i][b] })
	}
	in := core.Input{G: g, Weights: weights, Levels: levels, Terms: terms, Sources: sources}
	p := core.Params{TopK: 1 + rng.Intn(8), Threads: 1, MaxLevel: 16}
	return in, p
}

type answerFingerprint struct {
	central graph.NodeID
	depth   int
	score   float64
	nodes   string
	edges   string
}

func fingerprint(a *core.Answer) answerFingerprint {
	ids := a.NodeIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	es := make([]string, len(a.Edges))
	for i, e := range a.Edges {
		es[i] = fmt.Sprintf("%d>%d:%d:%v:%x", e.From, e.To, e.Rel, e.Forward, e.Keywords)
	}
	sort.Strings(es)
	return answerFingerprint{a.Central, a.Depth, math.Round(a.Score*1e9) / 1e9, fmt.Sprint(ids), fmt.Sprint(es)}
}

func resultsEqual(t *testing.T, label string, a, b *core.Result) {
	t.Helper()
	if a.DepthD != b.DepthD {
		t.Fatalf("%s: d mismatch %d vs %d", label, a.DepthD, b.DepthD)
	}
	if a.CentralCandidates != b.CentralCandidates {
		t.Fatalf("%s: candidates %d vs %d", label, a.CentralCandidates, b.CentralCandidates)
	}
	if len(a.Answers) != len(b.Answers) {
		t.Fatalf("%s: answer counts %d vs %d", label, len(a.Answers), len(b.Answers))
	}
	for i := range a.Answers {
		fa, fb := fingerprint(a.Answers[i]), fingerprint(b.Answers[i])
		if fa != fb {
			t.Fatalf("%s: answer %d differs:\n  %+v\n  %+v", label, i, fa, fb)
		}
	}
}

// TestShardedSoloEquivalence is the tentpole's ground truth: at shard counts
// 1, 2, 4 and 8, at Tnum=1 and Tnum=GOMAXPROCS, the sharded coordinator
// returns bit-identical results to the solo engine — and walks exactly the
// same search: identical level count, total frontier size and edges scanned
// (the monotone termination and exchange protocol add no work and lose none).
func TestShardedSoloEquivalence(t *testing.T) {
	threads := []int{1}
	if g := runtime.GOMAXPROCS(0); g > 1 {
		threads = append(threads, g)
	} else {
		threads = append(threads, 4)
	}
	for seed := int64(0); seed < 25; seed++ {
		in, p := shardScenario(t, seed)
		ref, err := core.Search(in, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 4, 8} {
			top, err := NewTopology(in.G, k)
			if err != nil {
				t.Fatal(err)
			}
			co := NewCoordinator(top)
			for _, tn := range threads {
				pp := p
				pp.Threads = tn
				res, info, _, _, err := co.Search(in, pp, false)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("seed %d shards=%d T=%d", seed, k, tn)
				resultsEqual(t, label, ref, res)
				if res.Profile.Levels != ref.Profile.Levels {
					t.Fatalf("%s: levels %d vs solo %d", label, res.Profile.Levels, ref.Profile.Levels)
				}
				if res.Profile.FrontierTotal != ref.Profile.FrontierTotal {
					t.Fatalf("%s: frontier %d vs solo %d", label, res.Profile.FrontierTotal, ref.Profile.FrontierTotal)
				}
				if res.Profile.EdgesScanned != ref.Profile.EdgesScanned {
					t.Fatalf("%s: edges %d vs solo %d", label, res.Profile.EdgesScanned, ref.Profile.EdgesScanned)
				}
				if info.Shards != k || info.Levels != res.Profile.Levels {
					t.Fatalf("%s: info %+v inconsistent with profile", label, info)
				}
				if k == 1 && info.Messages != 0 {
					t.Fatalf("%s: single shard exchanged %d messages", label, info.Messages)
				}
			}
			co.Close()
		}
	}
}

// TestShardedReferenceKernelEquivalence repeats the equivalence property with
// the per-column reference kernel, which has its own ghost-hit branch.
func TestShardedReferenceKernelEquivalence(t *testing.T) {
	for seed := int64(30); seed < 40; seed++ {
		in, p := shardScenario(t, seed)
		p.Kernel = core.KernelReference
		ref, err := core.Search(in, p)
		if err != nil {
			t.Fatal(err)
		}
		top, err := NewTopology(in.G, 2)
		if err != nil {
			t.Fatal(err)
		}
		co := NewCoordinator(top)
		res, _, _, _, err := co.Search(in, p, false)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, fmt.Sprintf("seed %d reference kernel", seed), ref, res)
		co.Close()
	}
}

// TestShardedDeterministic: repeated sharded runs of one query on a warm
// coordinator are byte-identical (pooled Runs carry no state across queries,
// and the lock-free exchange introduces no schedule dependence).
func TestShardedDeterministic(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		in, p := shardScenario(t, seed)
		p.Threads = 8
		top, err := NewTopology(in.G, 4)
		if err != nil {
			t.Fatal(err)
		}
		co := NewCoordinator(top)
		a, _, _, _, err := co.Search(in, p, false)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			b, _, _, _, err := co.Search(in, p, false)
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, fmt.Sprintf("seed %d rep %d", seed, rep), a, b)
		}
		co.Close()
	}
}

// TestShardedThreadReuse drives one coordinator across queries with changing
// thread budgets, so pooled Runs are rebuilt under reuse.
func TestShardedThreadReuse(t *testing.T) {
	in, p := shardScenario(t, 55)
	ref, err := core.Search(in, p)
	if err != nil {
		t.Fatal(err)
	}
	top, err := NewTopology(in.G, 4)
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(top)
	defer co.Close()
	for i, tn := range []int{1, 8, 2, 1, 4, 8, 1} {
		pp := p
		pp.Threads = tn
		res, _, _, _, err := co.Search(in, pp, false)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, fmt.Sprintf("query %d T=%d", i, tn), ref, res)
	}
	if st := co.Stats(); st.Queries != 7 || st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestShardedTracingSpans: a traced sharded query yields the coordinator's
// merge spans (and exchange spans whenever messages crossed shards) alongside
// the shards' own kernel spans.
func TestShardedTracingSpans(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in, p := shardScenario(t, seed)
		top, err := NewTopology(in.G, 4)
		if err != nil {
			t.Fatal(err)
		}
		co := NewCoordinator(top)
		_, info, events, _, err := co.Search(in, p, true)
		if err != nil {
			t.Fatal(err)
		}
		var kinds [32]int
		for _, e := range events {
			kinds[e.Kind]++
		}
		if kinds[trace.KindMerge] == 0 {
			t.Fatalf("seed %d: no merge spans in %d events", seed, len(events))
		}
		if info.Messages > 0 && kinds[trace.KindExchange] == 0 {
			t.Fatalf("seed %d: %d messages exchanged but no exchange spans", seed, info.Messages)
		}
		if kinds[trace.KindEnqueue] == 0 || kinds[trace.KindTopDown] == 0 {
			t.Fatalf("seed %d: shard kernel spans missing (%d events)", seed, len(events))
		}
		co.Close()
	}
}

// TestShardedCancellation: a cancelled context stops the coordinator between
// levels with the context's error.
func TestShardedCancellation(t *testing.T) {
	in, p := shardScenario(t, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Ctx = ctx
	top, err := NewTopology(in.G, 2)
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(top)
	defer co.Close()
	if _, _, _, _, err := co.Search(in, p, false); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The coordinator and its pooled Run must remain serviceable.
	p.Ctx = nil
	res, _, _, _, err := co.Search(in, p, false)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Search(in, p)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "post-cancel reuse", ref, res)
}

// TestShardExchangeAllocationFree is the sharded counterpart of the solo
// allocation guard: on a warm Run, the whole level-synchronous loop — shard
// begin, boundary exchange, enqueue, identify, central merge, expand with
// message routing, and the final matrix absorption — performs zero heap
// allocations, with tracing on.
func TestShardExchangeAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	for _, tn := range []int{1, 4} {
		t.Run(fmt.Sprintf("threads=%d", tn), func(t *testing.T) {
			in, p := shardScenario(t, 7)
			p.Threads = tn
			p = p.Defaults()
			top, err := NewTopology(in.G, 4)
			if err != nil {
				t.Fatal(err)
			}
			co := NewCoordinator(top)
			defer co.Close()
			r := co.acquire(p.Threads)
			defer co.release(r)
			for i := 0; i < 3; i++ { // warm states, buffers and caps
				if err := co.bottomUp(r, in, p, true); err != nil {
					t.Fatal(err)
				}
				if _, err := r.merge.FinishMerge(r.depth); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(50, func() {
				if err := co.bottomUp(r, in, p, true); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("warm sharded bottom-up allocates %.1f times per query, want 0", allocs)
			}
		})
	}
}
