//go:build race

package shard

// raceEnabled reports whether the race detector is compiled in; allocation
// guards skip under -race because race instrumentation itself allocates.
const raceEnabled = true
