package shard

import (
	"sync"
	"time"

	"wikisearch/internal/core"
	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
	"wikisearch/internal/trace"
)

// RunInfo summarizes one sharded query for metrics and the slow-query log.
type RunInfo struct {
	Shards   int
	Levels   int
	Messages int64 // boundary activations exchanged
	Exchange time.Duration
	Merge    time.Duration
	// Imbalance is max/mean of the shards' busy time (1.0 = perfectly
	// balanced); Stall is max−mean — the wait the slowest shard imposed on
	// the rest across the level barriers.
	Imbalance float64
	Stall     time.Duration
	PerShard  []ShardRun
}

// ShardRun is one shard's share of a query.
type ShardRun struct {
	Frontier int64
	Edges    int64
	Busy     time.Duration
}

// ShardStat is one shard's cumulative serving totals.
type ShardStat struct {
	Owned         int     `json:"owned"`
	Ghosts        int     `json:"ghosts"`
	Edges         int     `json:"edges"`
	FrontierTotal int64   `json:"frontier_total"`
	EdgesScanned  int64   `json:"edges_scanned"`
	BusyMs        float64 `json:"busy_ms"`
}

// Stats is a coordinator snapshot for /v1/stats.
type Stats struct {
	Shards     int         `json:"shards"`
	CutEdges   int         `json:"cut_edges"`
	Queries    int64       `json:"queries"`
	Levels     int64       `json:"levels"`
	Messages   int64       `json:"exchange_messages"`
	ExchangeMs float64     `json:"exchange_ms"`
	MergeMs    float64     `json:"merge_ms"`
	PerShard   []ShardStat `json:"per_shard"`
}

// Coordinator executes sharded searches over one Topology. It pools fully
// warmed Runs (per-shard SearchStates, exchange buffers, the merge state),
// so the warm sharded bottom-up is allocation-free like the solo path. Safe
// for concurrent use: each query checks out its own Run.
type Coordinator struct {
	top  *Topology
	runs sync.Pool

	mu       sync.Mutex // cold-path cumulative totals (once per query)
	queries  int64
	levels   int64
	messages int64
	exchange time.Duration
	merged   time.Duration
	totals   []shardTotals
}

type shardTotals struct {
	frontier int64
	edges    int64
	busy     time.Duration
}

// NewCoordinator returns a coordinator over top.
func NewCoordinator(top *Topology) *Coordinator {
	return &Coordinator{top: top, totals: make([]shardTotals, top.N)}
}

// Topology returns the coordinator's sharded graph view.
func (c *Coordinator) Topology() *Topology { return c.top }

// Run is one query's worth of sharded execution state: N pooled shard
// SearchStates plus the merge state, the coordinator's fork/join pool, its
// trace buffer, and the per-(source,destination) exchange buffers. All
// fork/join bodies are prebound so the warm loop allocates nothing. A Run
// must not be copied: a copy aliases every buffer.
//
//wikisearch:nocopy
type Run struct {
	co      *Coordinator
	threads int
	pool    *parallel.Pool
	buf     trace.Buffer

	states []*core.SearchState
	merge  *core.SearchState

	// Per-query working set, written by the coordinator between fork/join
	// barriers and read by the prebound bodies after them.
	qin     []core.Input
	qp      core.Params
	mergeIn core.Input
	mergeP  core.Params
	level   int
	fronts  []int
	newC    [][]graph.NodeID
	// outBuf and route are written only by the owning expand worker of
	// their source-shard slot (the prebound closures built in newRun);
	// between levels the coordinator reads them after the pool join.
	//
	//wikisearch:singlewriter
	outBuf [][]core.BoundaryMsg // per source shard: drained activations
	//wikisearch:singlewriter
	route  [][][]core.BoundaryMsg // [source][destination] exchange buckets
	srcs   [][][]graph.NodeID     // per shard, per keyword: local source ids
	cursor []int                  // k-way central merge cursors

	prof  core.Profile
	depth int
	msgs  int64

	initThunks []func()
	enqueueFn  func(int)
	identifyFn func(int)
	expandFn   func(int)
	applyFn    func(int)
	absorbFn   func(int)
}

// coordWorkers sizes the coordinator pool: one slot per shard, capped by the
// query's thread budget.
func coordWorkers(n, threads int) int {
	if threads < n {
		return threads
	}
	return n
}

// newRun builds one pooled Run: states, exchange buffers and the prebound
// phase closures. The closures are the owning writers of the write-
// partitioned outBuf/route exchange buffers: expandFn(s) alone writes the
// [s] slots, and applyFn reads the [*][d] column after the expand join.
//
//wikisearch:writer
func (c *Coordinator) newRun(threads int) *Run {
	n := c.top.N
	r := &Run{co: c, threads: threads}
	r.states = make([]*core.SearchState, n)
	for s := range r.states {
		r.states[s] = core.NewSearchState()
	}
	r.merge = core.NewSearchState()
	r.pool = parallel.NewPool(coordWorkers(n, threads))
	r.buf.Ensure(r.pool.Workers())
	r.pool.SetTrace(&r.buf)
	r.qin = make([]core.Input, n)
	r.fronts = make([]int, n)
	r.newC = make([][]graph.NodeID, n)
	r.outBuf = make([][]core.BoundaryMsg, n)
	r.route = make([][][]core.BoundaryMsg, n)
	for s := range r.route {
		r.route[s] = make([][]core.BoundaryMsg, n)
	}
	r.srcs = make([][][]graph.NodeID, n)
	r.cursor = make([]int, n)

	r.initThunks = make([]func(), n+1)
	for s := 0; s < n; s++ {
		s := s
		r.initThunks[s] = func() {
			r.states[s].BeginShard(r.qin[s], r.qp, c.top.Part.Shards[s].Owned)
		}
	}
	r.initThunks[n] = func() { r.merge.BeginMerge(r.mergeIn, r.mergeP) }
	r.enqueueFn = func(s int) { r.fronts[s] = r.states[s].ShardEnqueue() }
	r.identifyFn = func(s int) { r.newC[s] = r.states[s].ShardIdentify() }
	r.expandFn = func(s int) {
		r.states[s].ShardExpand()
		out := r.states[s].DrainBoundary(r.outBuf[s][:0])
		r.outBuf[s] = out
		route := r.route[s]
		for d := range route {
			route[d] = route[d][:0]
		}
		// Messages are drained under the sender's ghost-local id; one probe
		// into the compact per-ghost table yields both the destination shard
		// and the node's local id there, so the routed message is already in
		// the owner's coordinates.
		owned := c.top.Part.Shards[s].Owned
		ghosts := c.top.routes[s]
		for _, m := range out {
			rt := ghosts[int(m.Node)-owned]
			route[rt.dest] = append(route[rt.dest], core.BoundaryMsg{Node: graph.NodeID(rt.local), Cols: m.Cols})
		}
	}
	r.applyFn = func(d int) {
		for s := range r.states {
			if msgs := r.route[s][d]; len(msgs) != 0 {
				r.states[d].ApplyBoundary(msgs, r.level)
			}
		}
	}
	r.absorbFn = func(s int) {
		sh := c.top.Part.Shards[s]
		r.merge.AbsorbShard(r.states[s], sh.L2G, sh.Owned)
	}
	return r
}

// acquire checks a warm Run out of the pool, rebuilding its coordinator pool
// if the thread budget changed.
func (c *Coordinator) acquire(threads int) *Run {
	if v := c.runs.Get(); v != nil {
		r := v.(*Run)
		if r.threads != threads {
			r.pool.Close()
			r.pool = parallel.NewPool(coordWorkers(c.top.N, threads))
			r.buf.Ensure(r.pool.Workers())
			r.pool.SetTrace(&r.buf)
			r.threads = threads
		}
		return r
	}
	return c.newRun(threads)
}

func (c *Coordinator) release(r *Run) {
	for _, st := range r.states {
		st.EndShard()
	}
	r.merge.EndShard()
	for s := range r.qin {
		r.qin[s] = core.Input{}
	}
	r.mergeIn = core.Input{}
	c.runs.Put(r)
}

// buildSources scatters the query's global source lists into per-shard local
// lists. Every shard copy of a source node — owned or ghost — is included:
// ghost copies must be marked hit-0 and counted in the shard's contains
// masks so the kernel's keyword/activation gates decide exactly as solo
// (the owner shard alone enqueues the node).
func (r *Run) buildSources(sources [][]graph.NodeID) {
	n := r.co.top.N
	shards := r.co.top.Part.Shards
	q := len(sources)
	for s := 0; s < n; s++ {
		for len(r.srcs[s]) < q {
			r.srcs[s] = append(r.srcs[s], nil)
		}
		r.srcs[s] = r.srcs[s][:q]
		for i := range r.srcs[s] {
			r.srcs[s][i] = r.srcs[s][i][:0]
		}
	}
	for i, list := range sources {
		for _, v := range list {
			for s := 0; s < n; s++ {
				if lo := shards[s].G2L[v]; lo >= 0 {
					r.srcs[s][i] = append(r.srcs[s][i], graph.NodeID(lo))
				}
			}
		}
	}
}

// mergeCentrals k-way merges the shards' newly identified centrals —
// ascending local id per shard, hence ascending global id after translation
// — into the merge state in ascending global order, reproducing the solo
// run's per-level identification order exactly. Returns the number merged.
func (r *Run) mergeCentrals(level int) int {
	n := len(r.states)
	shards := r.co.top.Part.Shards
	for s := 0; s < n; s++ {
		r.cursor[s] = 0
	}
	added := 0
	for {
		best := -1
		var bg graph.NodeID
		for s := 0; s < n; s++ {
			cs := r.newC[s]
			if r.cursor[s] >= len(cs) {
				continue
			}
			g := shards[s].L2G[cs[r.cursor[s]]]
			if best == -1 || g < bg {
				best, bg = s, g
			}
		}
		if best == -1 {
			return added
		}
		r.cursor[best]++
		r.merge.AddCentral(bg, level)
		added++
	}
}

// bottomUp runs the level-synchronous sharded bottom-up stage: per level the
// boundary exchange, the per-shard enqueue, the per-shard identify, the
// global central merge, the monotone termination check, and the per-shard
// expand with message routing — mirroring the solo loop's phase order and
// stopping conditions statement for statement, so the sharded run terminates
// at exactly the solo depth d. On return r.depth, r.prof and r.msgs are set
// and the merge state holds the absorbed global matrix and central set.
// bottomUp reads the exchange buffers only between pool joins (the pending
// count after expand), never concurrently with the writers.
//
//wikisearch:drain
func (c *Coordinator) bottomUp(r *Run, in core.Input, p core.Params, tracing bool) error {
	top := c.top
	n := top.N
	shardLevels, err := top.levelsFor(in.Levels)
	if err != nil {
		return err
	}
	st := p.Threads / n
	if st < 1 {
		st = 1
	}
	r.qp = p
	r.qp.Threads = st
	r.qp.Ctx = nil // shards never poll the context; the coordinator does
	r.mergeIn = in
	r.mergeP = p
	r.buildSources(in.Sources)
	for s := 0; s < n; s++ {
		r.qin[s] = core.Input{G: top.Part.Shards[s].G, Levels: shardLevels[s], Sources: r.srcs[s]}
		r.states[s].SetTracing(tracing)
	}
	r.merge.SetTracing(tracing)
	r.buf.SetEnabled(tracing)
	r.buf.Reset()
	r.prof = core.Profile{}
	r.depth = 0
	r.msgs = 0

	t0 := trace.Now()
	r.pool.Run(r.initThunks...)
	t1 := trace.Now()
	r.prof.Phases[core.PhaseInit] = time.Duration(t1 - t0)
	r.buf.Record(0, trace.KindInit, t0, t1, -1, 0, int64(len(in.Sources)), 0)

	level := 0
	pending := 0
	for {
		if p.Ctx != nil {
			if err := p.Ctx.Err(); err != nil {
				return err
			}
		}
		lvl0 := trace.Now()
		r.level = level
		if pending > 0 {
			r.pool.For(n, r.applyFn)
			r.msgs += int64(pending)
			e1 := trace.Now()
			r.prof.Phases[core.PhaseExchange] += time.Duration(e1 - lvl0)
			r.buf.Record(0, trace.KindExchange, lvl0, e1, level, 1, int64(pending), 0)
			pending = 0
		}

		e1 := trace.Now()
		r.pool.For(n, r.enqueueFn)
		n1 := trace.Now()
		r.prof.Phases[core.PhaseEnqueue] += time.Duration(n1 - e1)
		front := 0
		for _, f := range r.fronts {
			front += f
		}
		if front == 0 {
			// Graph exhausted everywhere: fewer than k Central Graphs exist.
			r.depth = level
			r.buf.Record(0, trace.KindLevel, lvl0, trace.Now(), level, 1, 0, 0)
			break
		}

		r.pool.For(n, r.identifyFn)
		i1 := trace.Now()
		r.prof.Phases[core.PhaseIdentify] += time.Duration(i1 - n1)
		added := r.mergeCentrals(level)
		m1 := trace.Now()
		r.prof.Phases[core.PhaseMerge] += time.Duration(m1 - i1)
		total := r.merge.CentralCount()
		r.buf.Record(0, trace.KindMerge, i1, m1, level, 1, int64(added), int64(total))
		r.prof.Levels++
		if total >= p.TopK || level >= p.MaxLevel {
			// Monotone termination: the merged central count is exactly the
			// solo count at this level (every shard's owned rows match the
			// solo matrix at identify time), so d is fixed here iff the solo
			// loop fixes it here.
			r.depth = level
			r.buf.Record(0, trace.KindLevel, lvl0, trace.Now(), level, 1, int64(front), 0)
			break
		}

		r.pool.For(n, r.expandFn)
		x1 := trace.Now()
		r.prof.Phases[core.PhaseExpand] += time.Duration(x1 - m1)
		for s := range r.outBuf {
			pending += len(r.outBuf[s])
		}
		r.buf.Record(0, trace.KindExpand, m1, x1, level, 1, int64(front), int64(pending))
		r.buf.Record(0, trace.KindLevel, lvl0, x1, level, 1, int64(front), 0)
		level++
	}

	a0 := trace.Now()
	r.pool.For(n, r.absorbFn)
	a1 := trace.Now()
	r.prof.Phases[core.PhaseMerge] += time.Duration(a1 - a0)
	r.buf.Record(0, trace.KindMerge, a0, a1, -1, 1, int64(top.G.NumNodes()), int64(r.merge.CentralCount()))
	for s := 0; s < n; s++ {
		sp := r.states[s].Profile()
		r.prof.FrontierTotal += sp.FrontierTotal
		r.prof.EdgesScanned += sp.EdgesScanned
	}
	r.buf.Record(0, trace.KindBottomUp, t0, a1, -1, 0, r.prof.FrontierTotal, r.prof.EdgesScanned)
	return nil
}

// Search runs one sharded query end to end: the level-synchronous bottom-up
// over all shards, then the unchanged top-down extraction on the absorbed
// global state. Results are bit-identical to the solo engine. The returned
// events (tracing only) combine the coordinator's spans with every shard's.
func (c *Coordinator) Search(in core.Input, p core.Params, tracing bool) (*core.Result, *RunInfo, []trace.Event, int, error) {
	p = p.Defaults()
	r := c.acquire(p.Threads)
	defer c.release(r)
	if err := c.bottomUp(r, in, p, tracing); err != nil {
		return nil, nil, nil, 0, err
	}
	res, err := r.merge.FinishMerge(r.depth)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	r.prof.Phases[core.PhaseTopDown] = r.merge.Profile().Phases[core.PhaseTopDown]
	res.Profile = r.prof

	info := &RunInfo{
		Shards:   c.top.N,
		Levels:   r.prof.Levels,
		Messages: r.msgs,
		Exchange: r.prof.Phases[core.PhaseExchange],
		Merge:    r.prof.Phases[core.PhaseMerge],
		PerShard: make([]ShardRun, c.top.N),
	}
	var maxBusy, sumBusy time.Duration
	for s := 0; s < c.top.N; s++ {
		sp := r.states[s].Profile()
		busy := sp.Phases[core.PhaseInit] + sp.Phases[core.PhaseEnqueue] +
			sp.Phases[core.PhaseIdentify] + sp.Phases[core.PhaseExpand]
		info.PerShard[s] = ShardRun{Frontier: sp.FrontierTotal, Edges: sp.EdgesScanned, Busy: busy}
		sumBusy += busy
		if busy > maxBusy {
			maxBusy = busy
		}
	}
	if mean := sumBusy / time.Duration(c.top.N); mean > 0 {
		info.Imbalance = float64(maxBusy) / float64(mean)
		info.Stall = maxBusy - mean
	} else {
		info.Imbalance = 1
	}

	var events []trace.Event
	dropped := 0
	if tracing {
		events, dropped = r.buf.Drain(nil)
		for _, st := range r.states {
			var d int
			events, d = st.DrainTrace(events)
			dropped += d
		}
		var d int
		events, d = r.merge.DrainTrace(events)
		dropped += d
	}

	c.mu.Lock()
	c.queries++
	c.levels += int64(r.prof.Levels)
	c.messages += r.msgs
	c.exchange += r.prof.Phases[core.PhaseExchange]
	c.merged += r.prof.Phases[core.PhaseMerge]
	for s := range c.totals {
		c.totals[s].frontier += info.PerShard[s].Frontier
		c.totals[s].edges += info.PerShard[s].Edges
		c.totals[s].busy += info.PerShard[s].Busy
	}
	c.mu.Unlock()
	return res, info, events, dropped, nil
}

// Stats snapshots the coordinator's cumulative serving totals plus the
// static topology shape.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Shards:     c.top.N,
		CutEdges:   c.top.Part.CutEdges,
		Queries:    c.queries,
		Levels:     c.levels,
		Messages:   c.messages,
		ExchangeMs: float64(c.exchange) / float64(time.Millisecond),
		MergeMs:    float64(c.merged) / float64(time.Millisecond),
		PerShard:   make([]ShardStat, c.top.N),
	}
	for s := range st.PerShard {
		sh := c.top.Part.Shards[s]
		st.PerShard[s] = ShardStat{
			Owned:         sh.Owned,
			Ghosts:        sh.Ghosts(),
			Edges:         sh.Edges,
			FrontierTotal: c.totals[s].frontier,
			EdgesScanned:  c.totals[s].edges,
			BusyMs:        float64(c.totals[s].busy) / float64(time.Millisecond),
		}
	}
	return st
}

// Close releases every pooled Run's worker goroutines (best effort: Runs
// checked out concurrently are finalized by their pools instead).
func (c *Coordinator) Close() {
	for {
		v := c.runs.Get()
		if v == nil {
			return
		}
		r := v.(*Run)
		r.pool.Close()
		for _, st := range r.states {
			st.Close()
		}
		r.merge.Close()
	}
}
